// Structural invariant analyzer — the self-check machinery behind the
// aggressively incremental hot paths (delta-patched GPMA views, the
// eid-remapped coefficient cache, the executor's stack protocol). Every
// checker re-derives an invariant from first principles and reports where
// the live structure disagrees:
//
//   * check_csr             — CSR well-formedness: monotone row offsets,
//                             in-bounds columns, edge labels a permutation
//                             of 0..m-1 (slot-ordered in gapped views).
//   * check_transpose       — forward/backward views describe the SAME
//                             edge set, matched through the shared labels.
//   * check_degree_order    — node_ids is a true permutation in the
//                             canonical (degree desc, id asc) order the
//                             paper's no-relabel scheduling relies on.
//   * check_degrees         — the degree arrays equal per-row live counts.
//   * check_gcn_coef        — the per-snapshot coefficient cache is
//                             bit-identical to a from-scratch recompute.
//   * check_snapshot_view   — all of the above over one SnapshotView.
//   * check_pma             — PMA key order/density/leaf-count agreement.
//   * check_pma_view_agreement — the gapped view arrays mirror the PMA
//                             slot array exactly (the invariant the
//                             incremental patch path must preserve).
//   * check_program         — IR sanity: in-range inputs, finite
//                             constants, and a derivable backward rule for
//                             every input (the autodiff contract).
//   * check_protocol_trace  — Algorithm-1 stack discipline replayed from
//                             an executor event trace: pushes and pops
//                             LIFO-balanced, drained at sequence end.
//   * check_executor_drained — both executor stacks empty right now.
//   * check_graph_at / check_graph — whole-object sweep over one / every
//                             timestamp, including the PMA cross-checks
//                             for GPMAGraph.
//   * check_wal             — serving write-ahead log: header, per-record
//                             CRC framing, a start record first, strictly
//                             monotonic time/version, and torn-tail
//                             detection.
//
// Checkers are read-only and allocation-light (O(V+E) scratch); they are
// wired behind STGRAPH_VALIDATE=1 (verify/validate.hpp), the
// `stgraph_check` CLI, and the seeded-corruption tests in
// tests/test_verify.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/ir.hpp"
#include "gpma/pma.hpp"
#include "graph/stgraph_base.hpp"
#include "verify/report.hpp"

namespace stgraph::core {
class TemporalExecutor;
}

namespace stgraph::verify {

/// CSR well-formedness of one adjacency direction. `which` labels findings
/// (e.g. "in_view"). Checks: non-null arrays, monotone row offsets
/// (compact: ro[0]=0 and ro[n]=m; gapped: ro[n] = slot capacity), columns
/// in bounds, eids a permutation of 0..m-1, and in gapped views that
/// column/eid gaps coincide and live eids ascend in slot order (the
/// relabel-in-slot-order contract).
Report check_csr(const CsrView& v, const std::string& which = "csr");

/// Forward and backward views agree edge-for-edge through the shared
/// labels: in_view (rows = dst) and out_view (rows = src) must induce the
/// same eid -> (src, dst) mapping.
Report check_transpose(const CsrView& in_view, const CsrView& out_view);

/// `order` is a permutation of 0..n-1 sorted canonically by
/// (deg[v] desc, v asc) — the strict total order both the full sort and
/// the incremental order repair must produce.
Report check_degree_order(const uint32_t* order, const uint32_t* deg,
                          uint32_t n, const std::string& which);

/// `deg[v]` equals the number of live (non-gap) slots of row v.
Report check_degrees(const CsrView& v, const uint32_t* deg,
                     const std::string& which);

/// The eid-indexed GCN-norm cache equals a from-scratch recompute from the
/// in-view and in-degrees, bit for bit. No-op when the view carries no
/// cache.
Report check_gcn_coef(const SnapshotView& v);

/// Composite check of everything a SnapshotView promises its kernels.
Report check_snapshot_view(const SnapshotView& v);

/// PMA structural invariants (sorted unique keys, density bounds) plus
/// per-leaf live-count agreement with the slot array.
Report check_pma(const Pma& pma);

/// The gapped out-view arrays mirror the PMA slot array exactly: same
/// capacity, gap pattern, and per-slot (src, dst) keys — the invariant the
/// delta-bounded incremental patch must preserve.
Report check_pma_view_agreement(const Pma& pma, const SnapshotView& v);

/// IR sanity: inputs in range, coefficient kinds valid, constants finite,
/// max-aggregation shape restrictions, and a backward rule derivable for
/// every feature input.
Report check_program(const compiler::Program& p);

/// Replay an executor event trace (TemporalExecutor::set_trace) and check
/// the Algorithm-1 protocol: Graph-Stack pops LIFO-match their pushes,
/// State-Stack tickets pop in reverse push order, and both stacks drain by
/// the end of the trace (aborts clear them).
Report check_protocol_trace(const std::vector<std::string>& trace);

/// Both executor stacks are empty right now (between-sequence invariant).
Report check_executor_drained(const core::TemporalExecutor& ex);

/// Position `g` at timestamp t and run every applicable checker on the
/// resulting view (plus the PMA cross-checks when `g` is a GPMAGraph).
Report check_graph_at(STGraphBase& g, uint32_t t);

/// check_graph_at over every timestamp, then a return sweep to t=0 so
/// delta-replaying formats also verify their backward roll.
Report check_graph(STGraphBase& g);

/// Serving WAL ("STGW") well-formedness: readable header, CRC-valid
/// records, a kStart record first (with defined features), per-record
/// feature matrices shaped consistently, time advancing by exactly one and
/// version strictly monotonic across records. A torn tail (trailing bytes
/// that fail length/CRC checks — the crash case) is reported as a finding
/// so the tool surfaces it, with a note that recover() truncates it.
Report check_wal(const std::string& path);

}  // namespace stgraph::verify
