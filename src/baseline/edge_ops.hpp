// Edge-parallel message-passing primitives — the PyG "message-reduce"
// paradigm the paper contrasts with the vertex-centric approach. GNN
// processing materializes an [E, F] message tensor per convolution (node
// features duplicated per edge), scales it by per-edge coefficients, then
// scatter-reduces into the destination rows with atomics.
//
// Memory semantics mirror what the paper measured in PyG-T: the [E, F]
// message tensor of every timestamp stays saved in the autograd graph
// until that timestamp's backward runs, so memory grows with sequence
// length × edge count (Figure 6's steep baseline curve).
#pragma once

#include "baseline/coo_graph.hpp"
#include "tensor/tensor.hpp"

namespace stgraph::baseline {

/// messages[e] = x[src[e]] — the per-edge feature duplication. The output
/// is charged to MemCategory::kEdgeMessage so memory benches can attribute
/// it. Backward scatter-adds the incoming gradient to x's rows.
Tensor gather_messages(const Tensor& x, const CooSnapshot& g);

/// out[e] = messages[e] * coef[e]; `coef` is a per-edge scalar array (GCN
/// normalization in the baseline conv). The backward node retains the
/// message tensor (torch.mul's conservative saved-tensor behaviour — the
/// retention PyG-T exhibits).
Tensor scale_messages(const Tensor& messages, const Tensor& coef);

/// out[v] = Σ_{e: dst[e]=v} messages[e] — scatter-add reduction with
/// atomics. Backward gathers the output gradient back per edge.
Tensor scatter_add(const Tensor& messages, const CooSnapshot& g);

/// Per-edge symmetric GCN norm 1/sqrt((din(src)+1)(din(dst)+1)), with
/// optional per-edge weights folded in — recomputed every forward call,
/// exactly as PyG's gcn_norm does. Returns a [E] tensor.
Tensor gcn_norm(const CooSnapshot& g, const float* edge_weights = nullptr);

/// x scaled per destination row by 1/(din+1): the self-loop contribution
/// of GCN with symmetric normalization.
Tensor self_loop_contribution(const Tensor& x, const CooSnapshot& g);

}  // namespace stgraph::baseline
