#include "nn/optim.hpp"

#include <cmath>

#include "runtime/parallel.hpp"

namespace stgraph::nn {

void Optimizer::zero_grad() {
  for (Parameter& p : params_) p.tensor.zero_grad();
}

Sgd::Sgd(std::vector<Parameter> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Parameter& p : params_)
      velocity_.push_back(Tensor::zeros(p.tensor.shape()));
  }
}

void Sgd::step() {
  NoGradGuard ng;
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& w = params_[pi].tensor;
    Tensor g = w.grad();
    if (!g.defined()) continue;
    float* pw = w.data();
    const float* pg = g.data();
    const std::size_t n = static_cast<std::size_t>(w.numel());
    if (momentum_ == 0.0f) {
      device::parallel_for_ranges(n, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) pw[i] -= lr_ * pg[i];
      });
    } else {
      float* pv = velocity_[pi].data();
      device::parallel_for_ranges(n, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          pv[i] = momentum_ * pv[i] + pg[i];
          pw[i] -= lr_ * pv[i];
        }
      });
    }
  }
}

Adam::Adam(std::vector<Parameter> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params), lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter& p : params_) {
    m_.push_back(Tensor::zeros(p.tensor.shape()));
    v_.push_back(Tensor::zeros(p.tensor.shape()));
  }
}

void Adam::step() {
  NoGradGuard ng;
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& w = params_[pi].tensor;
    Tensor g = w.grad();
    if (!g.defined()) continue;
    float* pw = w.data();
    const float* pg = g.data();
    float* pm = m_[pi].data();
    float* pv = v_[pi].data();
    const std::size_t n = static_cast<std::size_t>(w.numel());
    device::parallel_for_ranges(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        pm[i] = beta1_ * pm[i] + (1.0f - beta1_) * pg[i];
        pv[i] = beta2_ * pv[i] + (1.0f - beta2_) * pg[i] * pg[i];
        const float mhat = pm[i] / bc1;
        const float vhat = pv[i] / bc2;
        pw[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      }
    });
  }
}

}  // namespace stgraph::nn
