#include "core/graph_stack.hpp"

#include "util/check.hpp"

namespace stgraph::core {

uint32_t GraphStack::pop() {
  STG_CHECK(!stack_.empty(), "Graph Stack pop on empty stack");
  const uint32_t t = stack_.back();
  stack_.pop_back();
  return t;
}

uint32_t GraphStack::top() const {
  STG_CHECK(!stack_.empty(), "Graph Stack top on empty stack");
  return stack_.back();
}

}  // namespace stgraph::core
