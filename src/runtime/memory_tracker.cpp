#include "runtime/memory_tracker.hpp"

#include <sstream>

namespace stgraph {

const char* mem_category_name(MemCategory c) {
  switch (c) {
    case MemCategory::kTensor: return "tensor";
    case MemCategory::kGraph: return "graph";
    case MemCategory::kPma: return "pma";
    case MemCategory::kEdgeMessage: return "edge_msg";
    case MemCategory::kScratch: return "scratch";
    default: return "?";
  }
}

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::allocate(std::size_t bytes, MemCategory cat) {
  allocs_.fetch_add(1, std::memory_order_relaxed);
  std::size_t cur = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Peak update with CAS loop: multiple threads may race here.
  std::size_t prev = peak_.load(std::memory_order_relaxed);
  while (cur > prev &&
         !peak_.compare_exchange_weak(prev, cur, std::memory_order_relaxed)) {
  }
  auto& cc = by_cat_[static_cast<size_t>(cat)];
  std::size_t ccur = cc.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  auto& cp = peak_by_cat_[static_cast<size_t>(cat)];
  std::size_t cprev = cp.load(std::memory_order_relaxed);
  while (ccur > cprev &&
         !cp.compare_exchange_weak(cprev, ccur, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::release(std::size_t bytes, MemCategory cat) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
  by_cat_[static_cast<size_t>(cat)].fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::reset_peak() {
  peak_.store(current_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  for (size_t c = 0; c < static_cast<size_t>(MemCategory::kCount); ++c) {
    peak_by_cat_[c].store(by_cat_[c].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
}

std::string MemoryTracker::summary() const {
  auto mib = [](std::size_t b) { return static_cast<double>(b) / (1024.0 * 1024.0); };
  std::ostringstream oss;
  oss << "current=" << mib(current_bytes()) << "MiB peak=" << mib(peak_bytes())
      << "MiB [";
  for (size_t c = 0; c < static_cast<size_t>(MemCategory::kCount); ++c) {
    if (c) oss << " ";
    oss << mem_category_name(static_cast<MemCategory>(c)) << "="
        << mib(by_cat_[c].load(std::memory_order_relaxed)) << "MiB";
  }
  oss << "]";
  return oss.str();
}

}  // namespace stgraph
