// STGraph-Training (Algorithm 1): sequence-chunked TGNN training over a
// temporally-aware executor.
//
// Per sequence: the forward loop positions the graph object per timestamp
// (pushing DTDG snapshots onto the Graph Stack), layers push saved state
// onto the State Stack, and the accumulated loss is backpropagated — the
// autograd engine visits timestamps in LIFO order, so the executor's
// stacks drain exactly in reverse, which verify_drained() asserts after
// every sequence.
//
// The trainer is a fault-tolerant runtime (docs/internals.md §7):
//
//   * Checkpoint/resume — with `checkpoint_every_n_sequences` set, the
//     full training state (parameters, Adam moments, LR, RNG stream,
//     hidden state, epoch + sequence cursor) is written atomically to
//     `checkpoint_path` at sequence boundaries; `resume(path)` restarts a
//     killed run at the exact boundary and reproduces the uninterrupted
//     run bit for bit.
//   * Numerical guards — a non-finite loss or gradient after backward
//     skips the optimizer step, rolls parameters and hidden state back to
//     the sequence entry, and after `lr_halve_after_failures` consecutive
//     failures halves the learning rate. Counters surface in
//     EpochStats::failures.
//   * Exception safety — a throw mid-sequence (including injected
//     faults, see util/failpoint.hpp) unwinds through
//     TemporalExecutor::abort_sequence(), leaving the executor reusable.
#pragma once

#include <memory>
#include <string>

#include "core/executor.hpp"
#include "datasets/signal.hpp"
#include "nn/models.hpp"
#include "nn/optim.hpp"
#include "util/rng.hpp"

namespace stgraph::core {

enum class Task { kNodeRegression, kLinkPrediction };

struct TrainConfig {
  uint32_t epochs = 1;
  uint32_t sequence_length = 8;
  float lr = 1e-2f;
  Task task = Task::kNodeRegression;
  /// State-Stack backward-needs pruning (Figure 6 ablation switch).
  bool state_pruning = true;

  // ---- fault tolerance --------------------------------------------------
  /// Write a full-state checkpoint to `checkpoint_path` every N completed
  /// sequences (counted from the epoch start). 0 disables checkpointing.
  uint32_t checkpoint_every_n_sequences = 0;
  std::string checkpoint_path;
  /// Detect non-finite loss/gradients after backward; skip + roll back.
  bool numerical_guards = true;
  /// Halve the LR after this many consecutive guarded failures.
  uint32_t lr_halve_after_failures = 3;
  /// Global-norm gradient clipping before each step; 0 disables.
  float max_grad_norm = 0.0f;
  /// Seed of the trainer-owned RNG stream (checkpointed with the run).
  uint64_t seed = 0x5354475261ULL;
};

/// Numerical-guard counters, cumulative since construction (or since the
/// state restored by resume() started counting).
struct FailureStats {
  uint64_t non_finite_losses = 0;  // sequences whose loss was NaN/Inf
  uint64_t non_finite_grads = 0;   // sequences with a NaN/Inf gradient
  uint64_t skipped_steps = 0;      // optimizer steps skipped + rolled back
  uint64_t lr_halvings = 0;        // times the guard halved the LR
};

struct EpochStats {
  double loss = 0.0;                  // mean per-timestamp loss
  double seconds = 0.0;               // wall clock for the epoch
  double graph_update_seconds = 0.0;  // Figure 9: snapshot construction
  double gnn_seconds = 0.0;           // Figure 9: everything else
  // GPMAGraph-only split of graph_update_seconds (zero for other graphs):
  // Algorithm-2 delta replay vs snapshot-view maintenance, plus how often
  // the view refresh took the delta-bounded incremental path vs a full
  // rebuild.
  double position_seconds = 0.0;
  double view_seconds = 0.0;
  uint64_t incremental_view_updates = 0;
  uint64_t full_view_rebuilds = 0;
  // Pipeline phase split (PR 8): model compute time per direction, plus
  // how the bounded-staleness prefetch behaved — `stall_seconds` is time
  // Get-Graph spent blocked on an in-flight background prepare, and
  // hits/misses count timestamps served from a published snapshot vs
  // prepared inline on the critical path.
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  double stall_seconds = 0.0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;
  // Per-op tape profile deltas for the epoch (PR 9, fusing tape compiler):
  // tape_* counts the elementwise/activation tensor ops the autograd tape
  // executed and the intermediate bytes they materialized; fused_* counts
  // fused-region executions and their (single) output buffers. Fusion
  // shrinks tape_op_count/tape_bytes and moves work into fused_*.
  uint64_t tape_op_count = 0;
  uint64_t tape_bytes = 0;
  uint64_t fused_op_count = 0;
  uint64_t fused_bytes = 0;
  FailureStats failures;              // cumulative guard counters
};

class STGraphTrainer {
 public:
  STGraphTrainer(STGraphBase& graph, nn::TemporalModel& model,
                 const datasets::TemporalSignal& signal, TrainConfig config);

  /// One full training epoch (all sequences); returns stats.
  EpochStats train_epoch();

  /// Run the remaining epochs (config.epochs minus any already completed
  /// by a resumed state); returns per-epoch stats.
  std::vector<EpochStats> train();

  /// Mean per-timestamp loss without training (evaluation pass).
  double evaluate();

  /// Export-for-serving reference: a forward-only pass over every
  /// timestamp with a fresh hidden state, returning the model output at
  /// each t. This is exactly the computation serve::Server performs when
  /// it replays the same snapshot sequence from a checkpoint of this
  /// model, so the serving parity test compares against it bit for bit.
  /// Runs with autograd disabled and the executor in inference mode; the
  /// trainer's own hidden state and cursors are untouched.
  std::vector<Tensor> evaluate_outputs();

  /// Restore full training state from a checkpoint written by this
  /// config (same TrainConfig/model/dataset — enforced via the state's
  /// config hash). Training continues at the exact sequence boundary the
  /// state was captured at.
  void resume(const std::string& path);

  /// Write a full-state checkpoint now (between-sequences state).
  void save_checkpoint(const std::string& path) const;

  /// Epochs fully completed so far (advanced by train_epoch/resume).
  uint32_t completed_epochs() const { return epoch_cursor_; }

  const FailureStats& failure_stats() const { return failures_; }

  TemporalExecutor& executor() { return executor_; }
  nn::Adam& optimizer() { return optimizer_; }

 private:
  EpochStats run_epoch(bool training);
  uint64_t config_hash() const;
  void write_train_state(const std::string& path, uint32_t next_sequence,
                         double epoch_loss_total, uint64_t epoch_steps) const;

  STGraphBase& graph_;
  nn::TemporalModel& model_;
  const datasets::TemporalSignal& signal_;
  TrainConfig config_;
  TemporalExecutor executor_;
  nn::Adam optimizer_;
  Rng rng_;

  // ---- resumable position (see docs/internals.md §7) --------------------
  Tensor h_;                     // hidden state carried across sequences
  uint32_t epoch_cursor_ = 0;    // epochs fully completed
  uint32_t sequence_cursor_ = 0;  // mid-epoch restart point (0 = fresh)
  double pending_loss_total_ = 0.0;  // restored epoch accumulators
  uint64_t pending_steps_ = 0;
  uint32_t consecutive_failures_ = 0;
  FailureStats failures_;
};

}  // namespace stgraph::core
