// Annotated mutex wrappers: the lock types the concurrency layer uses so
// Clang Thread Safety Analysis (-Wthread-safety, see
// util/thread_annotations.hpp) can prove lock discipline. libstdc++'s
// std::mutex carries no capability annotations, so locks taken through it
// are invisible to the analysis; Mutex/MutexLock are zero-overhead
// wrappers that make every acquire/release visible.
//
//   class Buffered {
//     Mutex mu_{"Buffered::mu_"};
//     std::deque<Item> items_ STG_GUARDED_BY(mu_);
//     void push(Item it) {
//       MutexLock lock(mu_);
//       items_.push_back(std::move(it));   // provably under mu_
//     }
//   };
//
// The same wrappers carry the DYNAMIC half of the lock discipline: the
// stgraph::analyze lock-order / blocking-hazard analyzer
// (runtime/analyze.hpp, armed by STGRAPH_DEADLOCK=1). The constructor's
// site label ("Buffered::mu_" above) names the lock in acquisition-order
// reports; disarmed, every hook is one relaxed load + a predicted branch,
// so these compile down to the plain wrappers on the hot path. Label every
// long-lived Mutex — unlabeled instances are tracked, but report as
// anonymous per-instance sites.
//
// Condition waits use ConditionVariable, whose wait() re-establishes the
// capability assertion after the native condition variable gives the lock
// back. The serving runtime's deadline discipline needs bounded blocking,
// so Mutex wraps std::timed_mutex (try_lock_for) and ConditionVariable
// wraps std::condition_variable_any (wait_for) — a client that cannot get
// the execution lock before its deadline is shed instead of parked.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "runtime/analyze.hpp"
#include "util/thread_annotations.hpp"

namespace stgraph {

/// std::timed_mutex with capability annotations (timed_mutex rather than
/// mutex so deadline-bounded paths can bail out instead of blocking
/// forever; the uncontended fast path is the same futex acquire).
class STG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// `site` labels this lock in analyzer reports — pass a string literal
  /// naming the declaration, e.g. "serve::Server::exec_mu_". All instances
  /// sharing a label are one site (the analysis is per program location).
  explicit Mutex(const char* site) : site_(site) {}
  ~Mutex() {
    if (analyze::armed()) analyze::on_mutex_destroyed(this);
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STG_ACQUIRE() {
    if (analyze::armed()) {
      analyze::on_lock_attempt(this, site_);
      mu_.lock();
      analyze::on_locked(this, site_, /*blocking=*/true);
      return;
    }
    mu_.lock();
  }
  void unlock() STG_RELEASE() {
    if (analyze::armed()) analyze::on_unlocked(this);
    mu_.unlock();
  }
  bool try_lock() STG_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
    if (ok && analyze::armed())
      analyze::on_locked(this, site_, /*blocking=*/false);
    return ok;
  }
  /// Bounded acquire: true iff the lock was taken before `timeout` passed.
  /// Non-wedging, so the analyzer records the hold but no order edge.
  bool try_lock_for(std::chrono::nanoseconds timeout) STG_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock_for(timeout);
    if (ok && analyze::armed())
      analyze::on_locked(this, site_, /*blocking=*/false);
    return ok;
  }

  /// The wrapped std::timed_mutex, for interop that the analysis cannot
  /// follow (ConditionVariable waits go through here).
  std::timed_mutex& native() { return mu_; }
  const char* site() const { return site_; }

 private:
  std::timed_mutex mu_;
  const char* site_ = nullptr;
};

/// Scoped lock (std::unique_lock semantics: movable-from-nothing, always
/// owns for its full scope here — no deferred/adopted states, which keeps
/// the capability tracking trivially sound).
class STG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STG_ACQUIRE(mu)
      : mu_(&mu), lock_(mu.native(), std::defer_lock) {
    if (analyze::armed()) {
      analyze::on_lock_attempt(mu_, mu_->site());
      lock_.lock();
      analyze::on_locked(mu_, mu_->site(), /*blocking=*/true);
    } else {
      lock_.lock();
    }
  }
  ~MutexLock() STG_RELEASE() {
    if (analyze::armed()) analyze::on_unlocked(mu_);
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying unique_lock, for condition-variable interop.
  std::unique_lock<std::timed_mutex>& native() { return lock_; }
  Mutex& mutex() { return *mu_; }

 private:
  Mutex* mu_;
  std::unique_lock<std::timed_mutex> lock_;
};

/// Deadline-bounded scoped lock: tries to acquire for at most `timeout`
/// and records whether it succeeded. Callers MUST check owns() before
/// touching guarded state — the STG_ACQUIRE annotation tells the analysis
/// the capability is held (the conditional-acquire pattern it cannot
/// model), so the owns() check is the human half of the contract. A
/// non-owning instance releases nothing. Bounded, so the analyzer records
/// the hold but no order edge (a timed acquire sheds instead of wedging).
class STG_SCOPED_CAPABILITY MutexTimedLock {
 public:
  MutexTimedLock(Mutex& mu, std::chrono::nanoseconds timeout) STG_ACQUIRE(mu)
      : mu_(&mu), lock_(mu.native(), std::defer_lock) {
    owns_ = timeout.count() > 0 && lock_.try_lock_for(timeout);
    if (owns_ && analyze::armed())
      analyze::on_locked(mu_, mu_->site(), /*blocking=*/false);
  }
  ~MutexTimedLock() STG_RELEASE() {
    if (owns_ && analyze::armed()) analyze::on_unlocked(mu_);
  }
  MutexTimedLock(const MutexTimedLock&) = delete;
  MutexTimedLock& operator=(const MutexTimedLock&) = delete;

  bool owns() const { return owns_; }

 private:
  Mutex* mu_;
  std::unique_lock<std::timed_mutex> lock_;
  bool owns_ = false;
};

/// Condition variable that waits against a MutexLock. The native wait
/// unlocks and relocks outside the analysis's view; from the caller's
/// perspective the capability is held continuously across wait(), which is
/// exactly how the analysis models it — and how the dynamic analyzer's
/// held-set models it too. Waiting while holding any OTHER Mutex is a
/// blocking hazard (the second lock is stalled for an unbounded time) and
/// is reported by the armed analyzer. Deliberately predicate-free: a
/// predicate lambda would be analyzed as a separate function that does not
/// hold the capability, so callers spin `while (!cond) cv.wait(lock);`
/// with the condition read in their own (capability-holding) scope.
/// condition_variable_any pairs with the timed_mutex underneath Mutex.
class ConditionVariable {
 public:
  void wait(MutexLock& lock) {
    if (analyze::armed()) analyze::on_cv_wait(&lock.mutex(), "cv-wait");
    cv_.wait(lock.native());
  }
  /// Bounded wait; returns false on timeout (spurious wakes return true —
  /// callers re-check their predicate either way). Bounded, but a held
  /// second lock still stalls for up to `timeout`, so the hazard check
  /// applies the same as wait().
  bool wait_for(MutexLock& lock, std::chrono::nanoseconds timeout) {
    if (analyze::armed()) analyze::on_cv_wait(&lock.mutex(), "cv-wait-for");
    return cv_.wait_for(lock.native(), timeout) == std::cv_status::no_timeout;
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace stgraph
