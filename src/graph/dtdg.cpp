#include "graph/dtdg.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace stgraph {
namespace {
inline uint64_t edge_key(uint32_t s, uint32_t d) {
  return (static_cast<uint64_t>(s) << 32) | d;
}
}  // namespace

EdgeList DtdgEvents::snapshot_edges(uint32_t t) const {
  STG_CHECK(t < num_timestamps(), "snapshot ", t, " out of range ",
            num_timestamps());
  // Multiset semantics are not needed: the windowing preprocessor
  // deduplicates, so a plain map from key to multiplicity guards against
  // malformed inputs instead.
  std::unordered_map<uint64_t, uint32_t> present;
  present.reserve(base_edges.size() * 2);
  for (const auto& [s, d] : base_edges) ++present[edge_key(s, d)];
  for (uint32_t i = 0; i < t; ++i) {
    for (const auto& [s, d] : deltas[i].additions) ++present[edge_key(s, d)];
    for (const auto& [s, d] : deltas[i].deletions) {
      auto it = present.find(edge_key(s, d));
      STG_CHECK(it != present.end() && it->second > 0,
                "delta deletes non-existent edge (", s, ",", d, ") at t=",
                i + 1);
      if (--it->second == 0) present.erase(it);
    }
  }
  EdgeList out;
  out.reserve(present.size());
  for (const auto& [key, mult] : present) {
    for (uint32_t m = 0; m < mult; ++m)
      out.emplace_back(static_cast<uint32_t>(key >> 32),
                       static_cast<uint32_t>(key & 0xFFFFFFFFu));
  }
  std::sort(out.begin(), out.end());
  return out;
}

double DtdgEvents::mean_percent_change() const {
  if (deltas.empty()) return 0.0;
  double total = 0.0;
  std::size_t size = base_edges.size();
  for (const EdgeDelta& d : deltas) {
    const std::size_t change = d.additions.size() + d.deletions.size();
    total += size ? static_cast<double>(change) / static_cast<double>(size)
                  : 0.0;
    size += d.additions.size();
    size -= d.deletions.size();
  }
  return 100.0 * total / static_cast<double>(deltas.size());
}

DtdgEvents window_edge_stream(
    uint32_t num_nodes,
    const std::vector<std::pair<uint32_t, uint32_t>>& stream,
    double percent_change, double initial_fraction) {
  STG_CHECK(percent_change > 0.0 && percent_change <= 100.0,
            "percent_change must be in (0, 100]");
  STG_CHECK(initial_fraction > 0.0 && initial_fraction <= 1.0,
            "initial_fraction must be in (0, 1]");
  STG_CHECK(!stream.empty(), "empty edge stream");

  // Deduplicate the stream while preserving order: repeated interactions
  // (common in the SNAP temporal datasets) would otherwise make window
  // membership ambiguous.
  std::vector<std::pair<uint32_t, uint32_t>> uniq;
  uniq.reserve(stream.size());
  {
    std::unordered_map<uint64_t, bool> seen;
    seen.reserve(stream.size() * 2);
    for (const auto& [s, d] : stream) {
      if (!seen.emplace(edge_key(s, d), true).second) continue;
      uniq.emplace_back(s, d);
    }
  }

  DtdgEvents events;
  events.num_nodes = num_nodes;
  const std::size_t n = uniq.size();
  const std::size_t window =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   static_cast<double>(n) * initial_fraction));
  const std::size_t slide = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(window) *
                                  percent_change / 100.0 / 2.0));
  // Each slide adds `slide` new edges and removes `slide` old ones, so the
  // change between consecutive snapshots is 2*slide/window ≈ percent_change.

  events.base_edges.assign(uniq.begin(), uniq.begin() + window);
  std::size_t lo = 0, hi = window;
  while (hi + slide <= n) {
    EdgeDelta delta;
    delta.deletions.assign(uniq.begin() + lo, uniq.begin() + lo + slide);
    delta.additions.assign(uniq.begin() + hi, uniq.begin() + hi + slide);
    lo += slide;
    hi += slide;
    events.deltas.push_back(std::move(delta));
  }
  return events;
}

}  // namespace stgraph
