#include "serve/server.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "tensor/ops.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace stgraph::serve {

using clock = std::chrono::steady_clock;

namespace {
double micros_between(clock::time_point a, clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}
}  // namespace

Server::Server(STGraphBase& graph, nn::TemporalModel& model, ServeConfig cfg)
    : graph_(graph),
      model_(model),
      cfg_(std::move(cfg)),
      executor_(graph),
      queue_(cfg_.queue_capacity) {
  STG_CHECK(cfg_.max_batch > 0, "serve: max_batch must be positive");
  STG_CHECK(cfg_.queue_capacity > 0, "serve: queue_capacity must be positive");
}

Server::~Server() { stop(); }

void Server::load(const std::string& path) {
  install(std::make_shared<const ModelSnapshot>(ModelSnapshot::load(path)));
}

void Server::install(std::shared_ptr<const ModelSnapshot> snap) {
  STG_CHECK(snap != nullptr, "serve: cannot install a null snapshot");
  MutexLock lk(exec_mu_);
  snap->install(model_);  // copies params into the live module + eval()
  snapshot_ = std::move(snap);
  stats_.record_swap();
  if (version_ != 0) {
    // Live swap: bump the version so the cached step (computed with the
    // old weights) can never serve another batch.
    ++version_;
    publish_view_locked();
  }
}

std::shared_ptr<const ModelSnapshot> Server::snapshot() const {
  MutexLock lk(exec_mu_);
  return snapshot_;
}

void Server::start(Tensor features) {
  STG_CHECK(!running(), "serve: server already running");
  MutexLock lk(exec_mu_);
  STG_CHECK(features.defined() &&
                features.rows() == static_cast<int64_t>(graph_.num_nodes()),
            "serve: start features must have one row per node (",
            graph_.num_nodes(), "), got ",
            features.defined() ? features.rows() : 0);
  time_ = cfg_.start_time;
  STG_CHECK(time_ < graph_.num_timestamps(), "serve: start_time ", time_,
            " outside the graph's ", graph_.num_timestamps(), " timestamps");
  features_ = std::move(features);
  hidden_ = (cfg_.resume_hidden && snapshot_ && snapshot_->hidden().defined())
                ? snapshot_->hidden().clone()
                : model_.initial_state(features_.rows());
  model_.eval();
  executor_.set_inference_mode(true);

  // Build the live edge membership set from the snapshot we start at; it is
  // the server's source of truth for delta validation from here on.
  const SnapshotView view = graph_.get_graph(time_);
  edges_.clear();
  edges_.reserve(static_cast<std::size_t>(view.num_edges) * 2);
  const CsrView& out = view.out_view;
  for (uint32_t s = 0; s < out.num_nodes; ++s)
    for (uint32_t j = out.row_offset[s]; j < out.row_offset[s + 1]; ++j)
      if (out.col_indices[j] != kSpace)
        edges_.insert(edge_key(s, out.col_indices[j]));
  STG_CHECK(edges_.size() == view.num_edges,
            "serve: edge membership scan found ", edges_.size(),
            " edges but the snapshot reports ", view.num_edges);

  version_ = 1;
  step_version_ = 0;
  publish_view_locked();
  queue_.reopen();
  running_.store(true, std::memory_order_release);
  exec_thread_ = std::thread(&Server::exec_loop, this);
  STG_LOG_INFO << "serve: started at t=" << time_ << " ("
               << graph_.format_name() << ", " << view.num_edges
               << " edges, max_batch=" << cfg_.max_batch << ")";
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  queue_.close();  // pushes fail; queued requests drain, then the loop exits
  if (exec_thread_.joinable()) exec_thread_.join();
  STG_LOG_INFO << "serve: stopped after "
               << stats_.report(queue_.max_depth()).requests << " requests";
}

PredictResult Server::predict(std::vector<uint32_t> nodes) {
  STG_CHECK(running(), "serve: predict() on a stopped server");
  PredictRequest req;
  req.nodes = std::move(nodes);
  req.enqueued = clock::now();
  std::future<PredictResult> fut = req.promise.get_future();
  if (!queue_.push(std::move(req))) {
    stats_.record_rejected();
    throw StgError("serve: request queue full (capacity " +
                   std::to_string(cfg_.queue_capacity) +
                   ") — request rejected");
  }
  return fut.get();  // rethrows the batch's failure, if any
}

void Server::ingest(const EdgeDelta& delta, Tensor next_features) {
  STG_CHECK(running(), "serve: ingest() on a stopped server");
  Timer timer;
  MutexLock lk(exec_mu_);
  const auto n = static_cast<uint32_t>(graph_.num_nodes());
  STG_CHECK(next_features.defined() &&
                next_features.rows() == static_cast<int64_t>(n) &&
                next_features.cols() == features_.cols(),
            "serve: ingest features must be [", n, ", ", features_.cols(),
            "]");

  // ---- validate the whole delta BEFORE touching anything ----------------
  // A delta that fails any check (or the injected fault below) must leave
  // the read view on the previous consistent snapshot.
  std::unordered_set<uint64_t> batch_del;
  batch_del.reserve(delta.deletions.size() * 2);
  for (const auto& [s, d] : delta.deletions) {
    STG_CHECK(s < n && d < n, "serve: delta deletes edge (", s, ",", d,
              ") outside the ", n, "-node graph");
    const uint64_t k = edge_key(s, d);
    STG_CHECK(edges_.count(k) != 0, "serve: delta deletes non-existent edge (",
              s, ",", d, ")");
    STG_CHECK(batch_del.insert(k).second, "serve: delta deletes edge (", s,
              ",", d, ") twice");
  }
  std::unordered_set<uint64_t> batch_add;
  batch_add.reserve(delta.additions.size() * 2);
  for (const auto& [s, d] : delta.additions) {
    STG_CHECK(s < n && d < n, "serve: delta adds edge (", s, ",", d,
              ") outside the ", n, "-node graph");
    const uint64_t k = edge_key(s, d);
    STG_CHECK(edges_.count(k) == 0, "serve: delta re-adds existing edge (", s,
              ",", d, ")");
    STG_CHECK(batch_del.count(k) == 0 && batch_add.insert(k).second,
              "serve: delta lists edge (", s, ",", d, ") more than once");
  }

  STG_FAILPOINT("serve.delta.apply",
                throw StgError("failpoint serve.delta.apply fired at t=" +
                               std::to_string(time_)));

  // h_{t+1} is a function of (x_t, h_t) on snapshot t — compute it before
  // the graph moves. Reuses the cached step when a batch already ran here.
  if (ensure_step_locked()) stats_.record_cache_hit();

  const uint32_t next = time_ + 1;
  const bool has_edges = !delta.additions.empty() || !delta.deletions.empty();
  if (has_edges) {
    STG_CHECK(graph_.supports_append(), "serve: ", graph_.format_name(),
              " cannot ingest edge deltas");
    STG_CHECK(next == graph_.num_timestamps(),
              "serve: can only append at the head of the timeline (t=", next,
              ", head=", graph_.num_timestamps(), ")");
    graph_.append_delta(delta);
  } else if (graph_.supports_append() && next == graph_.num_timestamps()) {
    graph_.append_delta(delta);  // empty delta: structure carries over
  } else {
    STG_CHECK(next < graph_.num_timestamps(), "serve: no timestamp ", next,
              " to advance to and ", graph_.format_name(),
              " cannot append one");
  }

  // ---- commit point ------------------------------------------------------
  hidden_ = step_h_next_;
  features_ = std::move(next_features);
  time_ = next;
  ++version_;
  step_version_ = 0;
  for (uint64_t k : batch_del) edges_.erase(k);
  for (uint64_t k : batch_add) edges_.insert(k);
  publish_view_locked();
  stats_.record_ingest(delta.additions.size() + delta.deletions.size(),
                       timer.seconds());
}

ReadView Server::read_view() const {
  MutexLock lk(view_mu_);
  return view_;
}

StatsReport Server::stats() const {
  return stats_.report(queue_.max_depth());
}

void Server::publish_view_locked() {
  MutexLock lk(view_mu_);
  view_ = {time_, version_, static_cast<uint32_t>(edges_.size())};
}

bool Server::ensure_step_locked() {
  if (step_version_ == version_) return true;
  NoGradGuard ng;  // covers whichever thread runs the step (thread-local)
  Timer timer;
  executor_.begin_forward_step(time_);
  const float* weights =
      cfg_.edge_weights.empty() ? nullptr : cfg_.edge_weights.data();
  auto [out, h_next] = model_.step(executor_, features_, hidden_, weights);
  step_out_ = out;
  step_h_next_ = h_next;
  step_version_ = version_;
  stats_.record_forward(timer.seconds());
  return false;
}

void Server::exec_loop() {
  NoGradGuard ng;
  while (true) {
    std::vector<PredictRequest> batch = queue_.pop_batch(cfg_.max_batch);
    if (batch.empty()) return;  // queue closed and drained
    stats_.record_batch(batch.size());

    MutexLock lk(exec_mu_);
    std::size_t done = 0;
    try {
      STG_FAILPOINT("serve.batch.dispatch",
                    throw StgError("failpoint serve.batch.dispatch fired"));
      if (ensure_step_locked()) stats_.record_cache_hit();
      const auto fulfilled = clock::now();
      for (; done < batch.size(); ++done) {
        PredictRequest& req = batch[done];
        PredictResult res;
        res.timestamp = time_;
        res.version = version_;
        for (uint32_t node : req.nodes)
          STG_CHECK(node < graph_.num_nodes(), "serve: predict node ", node,
                    " outside the ", graph_.num_nodes(), "-node graph");
        res.outputs = req.nodes.empty()
                          ? step_out_
                          : ops::gather_rows(step_out_, req.nodes);
        res.queue_micros = micros_between(req.enqueued, fulfilled);
        res.total_micros = micros_between(req.enqueued, clock::now());
        stats_.record_request(res.total_micros,
                              static_cast<uint64_t>(res.outputs.rows()));
        req.promise.set_value(std::move(res));
      }
    } catch (...) {
      // A failed dispatch fails this batch's outstanding requests but the
      // server keeps serving; a throw mid-forward may have left the
      // executor mid-step, so unwind it and drop the step cache.
      executor_.abort_sequence();
      step_version_ = 0;
      stats_.record_failed(batch.size() - done);
      const std::exception_ptr ep = std::current_exception();
      for (; done < batch.size(); ++done)
        batch[done].promise.set_exception(ep);
    }
  }
}

}  // namespace stgraph::serve
