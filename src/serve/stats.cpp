#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace stgraph::serve {

namespace {

std::size_t bucket_for(double micros) {
  if (micros < 1.0) return 0;
  const auto us = static_cast<uint64_t>(micros);
  std::size_t b = 0;
  // floor(log2(us)): 64 - clz, minus one for the leading bit itself.
  for (uint64_t v = us; v > 1; v >>= 1) ++b;
  return std::min(b, LatencyHistogram::kBuckets - 1);
}

void atomic_max(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < value &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void LatencyHistogram::record(double micros) {
  if (micros < 0.0 || !std::isfinite(micros)) micros = 0.0;
  buckets_[bucket_for(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<uint64_t>(micros), std::memory_order_relaxed);
  atomic_max(max_us_, static_cast<uint64_t>(micros));
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_us_.fetch_add(other.sum_us_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  atomic_max(max_us_, other.max_us_.load(std::memory_order_relaxed));
}

double LatencyHistogram::mean_micros() const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double LatencyHistogram::percentile(double p) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the sample we want, 1-based; p=100 -> the last sample.
  const auto rank = static_cast<uint64_t>(
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(n))));
  uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper bound of bucket b: 2^(b+1) µs (bucket 0 is [0, 2) µs).
      return static_cast<double>(uint64_t{1} << (b + 1));
    }
  }
  return max_micros();
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
  max_us_.store(0, std::memory_order_relaxed);
}

void ServerStats::configure(std::vector<uint16_t> tenant_ids,
                            std::size_t num_readers) {
  if (tenant_ids.empty()) tenant_ids.push_back(0);
  if (num_readers == 0) num_readers = 1;
  tenant_ids_ = std::move(tenant_ids);
  tenant_ = std::vector<TenantCounters>(tenant_ids_.size());
  reader_hist_ = std::vector<LatencyHistogram>(num_readers);
  reader_ = std::vector<ReaderCounters>(num_readers);
}

void ServerStats::record_issued(std::size_t tenant_slot) {
  tenant_[tenant_slot].issued.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::record_request(double total_micros, uint64_t output_rows,
                                 std::size_t tenant_slot, std::size_t reader) {
  if (reader == kNoReader)
    latency_.record(total_micros);
  else
    reader_hist_[reader].record(total_micros);
  requests_.fetch_add(1, std::memory_order_relaxed);
  rows_.fetch_add(output_rows, std::memory_order_relaxed);
  tenant_[tenant_slot].requests.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::record_batch(std::size_t occupancy) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_requests_.fetch_add(occupancy, std::memory_order_relaxed);
}

void ServerStats::record_forward(double seconds) {
  forward_passes_.fetch_add(1, std::memory_order_relaxed);
  forward_ns_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                        std::memory_order_relaxed);
}

void ServerStats::record_cache_hit() {
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::record_failed(uint64_t n, std::size_t tenant_slot) {
  failed_.fetch_add(n, std::memory_order_relaxed);
  if (tenant_slot != kNoTenant)
    tenant_[tenant_slot].failed.fetch_add(n, std::memory_order_relaxed);
}

void ServerStats::record_shed(ShedReason reason, uint64_t n,
                              std::size_t tenant_slot) {
  shed_[static_cast<std::size_t>(reason)].fetch_add(n,
                                                    std::memory_order_relaxed);
  if (tenant_slot != kNoTenant)
    tenant_[tenant_slot].shed[static_cast<std::size_t>(reason)].fetch_add(
        n, std::memory_order_relaxed);
}

void ServerStats::record_stale_served(double total_micros,
                                      uint64_t output_rows,
                                      std::size_t tenant_slot) {
  latency_.record(total_micros);
  stale_served_.fetch_add(1, std::memory_order_relaxed);
  rows_.fetch_add(output_rows, std::memory_order_relaxed);
  tenant_[tenant_slot].stale.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::record_circuit_trip() {
  circuit_trips_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::record_watchdog_stall() {
  watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::record_wal_append(uint64_t bytes) {
  wal_records_.fetch_add(1, std::memory_order_relaxed);
  wal_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void ServerStats::set_recovery(uint64_t records, double seconds) {
  recovered_records_.store(records, std::memory_order_relaxed);
  recovery_ns_.store(static_cast<uint64_t>(seconds * 1e9),
                     std::memory_order_relaxed);
}

void ServerStats::record_ingest(uint64_t edges, double seconds) {
  deltas_applied_.fetch_add(1, std::memory_order_relaxed);
  delta_edges_.fetch_add(edges, std::memory_order_relaxed);
  ingest_ns_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

void ServerStats::record_swap() {
  snapshot_swaps_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::mark_serving_started(int64_t steady_ns) {
  serving_started_ns_.store(steady_ns, std::memory_order_relaxed);
  for (auto& r : reader_) r.busy_ns.store(0, std::memory_order_relaxed);
}

void ServerStats::add_reader_busy(std::size_t reader, uint64_t busy_ns) {
  reader_[reader].busy_ns.fetch_add(busy_ns, std::memory_order_relaxed);
}

StatsReport ServerStats::report(std::size_t max_queue_depth,
                                HealthState health,
                                int64_t steady_now_ns) const {
  StatsReport r;
  r.requests = requests_.load(std::memory_order_relaxed);
  r.rows = rows_.load(std::memory_order_relaxed);
  r.failed = failed_.load(std::memory_order_relaxed);
  r.shed_queue_full = shed(ShedReason::kQueueFull);
  r.shed_deadline_expired = shed(ShedReason::kDeadlineExpired);
  r.shed_draining = shed(ShedReason::kDraining);
  r.shed_circuit_open = shed(ShedReason::kCircuitOpen);
  r.shed_total = r.shed_queue_full + r.shed_deadline_expired +
                 r.shed_draining + r.shed_circuit_open;
  r.rejected = r.shed_total;
  r.stale_served = stale_served_.load(std::memory_order_relaxed);
  r.circuit_trips = circuit_trips_.load(std::memory_order_relaxed);
  r.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
  r.health = to_string(health);

  // Aggregate latency: the shared histogram (stale reads, legacy callers)
  // plus every reader's private histogram. merge() is associative, so this
  // is the same distribution a single shared histogram would have seen.
  LatencyHistogram merged;
  merged.merge(latency_);
  for (const auto& h : reader_hist_) merged.merge(h);
  r.p50_us = merged.percentile(50.0);
  r.p95_us = merged.percentile(95.0);
  r.p99_us = merged.percentile(99.0);
  r.p999_us = merged.percentile(99.9);
  r.mean_us = merged.mean_micros();
  r.max_us = merged.max_micros();

  r.tenants.reserve(tenant_ids_.size());
  for (std::size_t s = 0; s < tenant_ids_.size(); ++s) {
    const TenantCounters& c = tenant_[s];
    TenantReport t;
    t.id = tenant_ids_[s];
    t.issued = c.issued.load(std::memory_order_relaxed);
    t.requests = c.requests.load(std::memory_order_relaxed);
    t.stale_served = c.stale.load(std::memory_order_relaxed);
    t.failed = c.failed.load(std::memory_order_relaxed);
    t.shed_queue_full = c.shed[0].load(std::memory_order_relaxed);
    t.shed_deadline_expired = c.shed[1].load(std::memory_order_relaxed);
    t.shed_draining = c.shed[2].load(std::memory_order_relaxed);
    t.shed_circuit_open = c.shed[3].load(std::memory_order_relaxed);
    t.shed_total = t.shed_queue_full + t.shed_deadline_expired +
                   t.shed_draining + t.shed_circuit_open;
    r.tenants.push_back(t);
  }

  r.reader_threads = reader_.size();
  const int64_t started = serving_started_ns_.load(std::memory_order_relaxed);
  const double wall_ns =
      (started > 0 && steady_now_ns > started)
          ? static_cast<double>(steady_now_ns - started)
          : 0.0;
  r.reader_utilization.reserve(reader_.size());
  for (const auto& rc : reader_) {
    const double busy =
        static_cast<double>(rc.busy_ns.load(std::memory_order_relaxed));
    r.reader_utilization.push_back(
        wall_ns > 0.0 ? std::min(1.0, busy / wall_ns) : 0.0);
  }

  r.batches = batches_.load(std::memory_order_relaxed);
  const uint64_t br = batch_requests_.load(std::memory_order_relaxed);
  r.batch_occupancy =
      r.batches ? static_cast<double>(br) / static_cast<double>(r.batches)
                : 0.0;
  r.max_queue_depth = max_queue_depth;
  r.forward_passes = forward_passes_.load(std::memory_order_relaxed);
  r.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  r.forward_seconds =
      static_cast<double>(forward_ns_.load(std::memory_order_relaxed)) * 1e-9;
  r.deltas_applied = deltas_applied_.load(std::memory_order_relaxed);
  r.delta_edges = delta_edges_.load(std::memory_order_relaxed);
  r.ingest_seconds =
      static_cast<double>(ingest_ns_.load(std::memory_order_relaxed)) * 1e-9;
  r.delta_edges_per_sec =
      r.ingest_seconds > 0.0
          ? static_cast<double>(r.delta_edges) / r.ingest_seconds
          : 0.0;
  r.wal_records = wal_records_.load(std::memory_order_relaxed);
  r.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
  r.recovered_records = recovered_records_.load(std::memory_order_relaxed);
  r.recovery_seconds =
      static_cast<double>(recovery_ns_.load(std::memory_order_relaxed)) * 1e-9;
  r.snapshot_swaps = snapshot_swaps_.load(std::memory_order_relaxed);
  return r;
}

std::string StatsReport::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"requests\": " << requests << ",\n";
  os << "  \"rows\": " << rows << ",\n";
  os << "  \"failed\": " << failed << ",\n";
  os << "  \"rejected\": " << rejected << ",\n";
  os << "  \"shed\": {\"queue_full\": " << shed_queue_full
     << ", \"deadline_expired\": " << shed_deadline_expired
     << ", \"draining\": " << shed_draining
     << ", \"circuit_open\": " << shed_circuit_open
     << ", \"total\": " << shed_total << "},\n";
  os << "  \"tenants\": [";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantReport& t = tenants[i];
    if (i) os << ", ";
    os << "{\"id\": " << t.id << ", \"issued\": " << t.issued
       << ", \"requests\": " << t.requests
       << ", \"stale_served\": " << t.stale_served
       << ", \"failed\": " << t.failed
       << ", \"shed\": {\"queue_full\": " << t.shed_queue_full
       << ", \"deadline_expired\": " << t.shed_deadline_expired
       << ", \"draining\": " << t.shed_draining
       << ", \"circuit_open\": " << t.shed_circuit_open
       << ", \"total\": " << t.shed_total << "}}";
  }
  os << "],\n";
  os << "  \"stale_served\": " << stale_served << ",\n";
  os << "  \"circuit_trips\": " << circuit_trips << ",\n";
  os << "  \"watchdog_stalls\": " << watchdog_stalls << ",\n";
  os << "  \"health\": \"" << health << "\",\n";
  os << "  \"latency_us\": {\"p50\": " << p50_us << ", \"p95\": " << p95_us
     << ", \"p99\": " << p99_us << ", \"p999\": " << p999_us
     << ", \"mean\": " << mean_us << ", \"max\": " << max_us << "},\n";
  os << "  \"batches\": " << batches << ",\n";
  os << "  \"batch_occupancy\": " << batch_occupancy << ",\n";
  os << "  \"max_queue_depth\": " << max_queue_depth << ",\n";
  os << "  \"reader_threads\": " << reader_threads << ",\n";
  os << "  \"reader_utilization\": [";
  for (std::size_t i = 0; i < reader_utilization.size(); ++i)
    os << (i ? ", " : "") << reader_utilization[i];
  os << "],\n";
  os << "  \"forward_passes\": " << forward_passes << ",\n";
  os << "  \"cache_hits\": " << cache_hits << ",\n";
  os << "  \"forward_seconds\": " << forward_seconds << ",\n";
  os << "  \"deltas_applied\": " << deltas_applied << ",\n";
  os << "  \"delta_edges\": " << delta_edges << ",\n";
  os << "  \"ingest_seconds\": " << ingest_seconds << ",\n";
  os << "  \"delta_edges_per_sec\": " << delta_edges_per_sec << ",\n";
  os << "  \"wal_records\": " << wal_records << ",\n";
  os << "  \"wal_bytes\": " << wal_bytes << ",\n";
  os << "  \"recovered_records\": " << recovered_records << ",\n";
  os << "  \"recovery_seconds\": " << recovery_seconds << ",\n";
  os << "  \"snapshot_swaps\": " << snapshot_swaps << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace stgraph::serve
