// Grid-style parallel primitives — the CPU analogue of CUDA kernel
// launches. `parallel_for` plays the role of a 1-D grid launch;
// `KernelStats` counts launches the way the original system counts kernel
// invocations (used by the fusion ablation bench: fewer launches == fused).
//
// Two flavors exist for each primitive:
//   * templated overloads (preferred, used by run_kernel and the view
//     builders): the callable is kept on the caller's stack and reaches the
//     workers through ThreadPool::run_on_lanes_raw, so a launch allocates
//     nothing and constructs no std::function;
//   * std::function overloads (kept for call sites that already hold a
//     type-erased callable).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>

#include "runtime/thread_pool.hpp"

namespace stgraph::device {

/// Global launch statistics (reset per measured region in benches).
struct KernelStats {
  std::atomic<uint64_t> launches{0};
  std::atomic<uint64_t> total_threads{0};
  static KernelStats& instance();
  void reset() { launches = 0; total_threads = 0; }
};

namespace detail {
inline void count_launch(std::size_t n) {
  auto& stats = KernelStats::instance();
  stats.launches.fetch_add(1, std::memory_order_relaxed);
  stats.total_threads.fetch_add(n, std::memory_order_relaxed);
}

/// Lane count a launch may actually use from the current thread. On a pool
/// lane (i.e. inside another launch) ThreadPool::run_on_lanes_raw executes
/// the job inline on ONE lane only, so grid math sized with the full
/// pool.lanes() would silently drop every chunk but the first. Nested
/// launches therefore see exactly 1 effective lane: they run serially,
/// inline, over their FULL index range. This is the enforced contract for
/// nesting (shard workers launching per-shard kernels rely on it); see
/// test_runtime NestedParallel* for the regression tests.
inline unsigned effective_lanes(const ThreadPool& pool) {
  return ThreadPool::on_pool_lane() ? 1u : pool.lanes();
}
}  // namespace detail

/// Launch `fn(begin, end)` over contiguous index ranges — the analogue of a
/// thread-block processing a tile. Lower per-element overhead than
/// parallel_for; preferred in kernels. Non-allocating: `fn` stays on the
/// caller's stack.
template <typename Fn>
void parallel_for_ranges(std::size_t n, Fn&& fn, std::size_t grain = 1024) {
  if (n == 0) return;
  detail::count_launch(n);
  auto& pool = ThreadPool::instance();
  const unsigned lanes = detail::effective_lanes(pool);
  if (lanes == 1 || n <= grain) {
    fn(std::size_t{0}, n);
    return;
  }
  struct Ctx {
    Fn& fn;
    std::size_t n, chunk;
  } ctx{fn, n, (n + lanes - 1) / lanes};
  pool.run_on_lanes_raw(
      [](void* c, unsigned lane) {
        auto& x = *static_cast<Ctx*>(c);
        const std::size_t begin = static_cast<std::size_t>(lane) * x.chunk;
        if (begin >= x.n) return;
        x.fn(begin, std::min(x.n, begin + x.chunk));
      },
      &ctx);
}

/// Launch `fn(i)` for i in [0, n). Static block partitioning across lanes;
/// below `grain` elements the launch runs inline (launch overhead would
/// dominate, mirroring how tiny kernels are not worth a grid launch).
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 1024) {
  parallel_for_ranges(
      n,
      [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(i);
      },
      grain);
}

/// Launch `fn(i)` for i in [0, n) with ROUND-ROBIN lane assignment (lane k
/// processes k, k+L, k+2L, ...). This emulates GPU warp scheduling: when
/// work items are sorted by descending cost (degree-ordered vertices),
/// striding balances lanes where contiguous blocks would not.
template <typename Fn>
void parallel_for_strided(std::size_t n, Fn&& fn, std::size_t grain = 512) {
  if (n == 0) return;
  detail::count_launch(n);
  auto& pool = ThreadPool::instance();
  const unsigned lanes = detail::effective_lanes(pool);
  if (lanes == 1 || n <= grain) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  struct Ctx {
    Fn& fn;
    std::size_t n;
    unsigned lanes;
  } ctx{fn, n, lanes};
  pool.run_on_lanes_raw(
      [](void* c, unsigned lane) {
        auto& x = *static_cast<Ctx*>(c);
        for (std::size_t i = lane; i < x.n; i += x.lanes) x.fn(i);
      },
      &ctx);
}

/// Launch `fn(row, tile)` over the (rows × tiles) grid in row-major item
/// order with ROUND-ROBIN lane assignment — the 2-D form of
/// parallel_for_strided. Item coordinates are maintained incrementally
/// (per-lane start divmod, then a subtractive carry per step) so the grid
/// loop performs no per-item hardware division; at large rows × tiles the
/// div/mod pair is measurable against a fused kernel body.
template <typename Fn>
void parallel_for_2d_strided(std::size_t rows, std::size_t tiles, Fn&& fn,
                             std::size_t grain = 512) {
  const std::size_t n = rows * tiles;
  if (n == 0) return;
  detail::count_launch(n);
  auto& pool = ThreadPool::instance();
  const unsigned lanes = detail::effective_lanes(pool);
  if (lanes == 1 || n <= grain) {
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t t = 0; t < tiles; ++t) fn(r, t);
    return;
  }
  struct Ctx {
    Fn& fn;
    std::size_t n, tiles;
    unsigned lanes;
  } ctx{fn, n, tiles, lanes};
  pool.run_on_lanes_raw(
      [](void* c, unsigned lane) {
        auto& x = *static_cast<Ctx*>(c);
        if (lane >= x.n) return;
        // One divmod per lane to find the starting cell, then stride by
        // `lanes` with a carry loop (lanes/tiles are both small, so the
        // while rarely iterates more than a few times).
        std::size_t r = lane / x.tiles;
        std::size_t t = lane % x.tiles;
        for (std::size_t i = lane; i < x.n; i += x.lanes) {
          x.fn(r, t);
          t += x.lanes;
          while (t >= x.tiles) {
            t -= x.tiles;
            ++r;
          }
        }
      },
      &ctx);
}

/// Type-erased overloads (declared after the templates so a lambda call
/// site picks the non-allocating template via overload resolution).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1024);
void parallel_for_ranges(std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain = 1024);
void parallel_for_strided(std::size_t n,
                          const std::function<void(std::size_t)>& fn,
                          std::size_t grain = 512);

/// Parallel sum-reduction of fn(i) over [0, n).
double parallel_reduce_sum(std::size_t n,
                           const std::function<double(std::size_t)>& fn,
                           std::size_t grain = 4096);

/// Number of parallel lanes available to a launch issued from the current
/// thread. Inside a pool job (nested use) this is 1 — nested launches run
/// serially inline over their full range; sizing per-lane scratch with this
/// value is therefore always consistent with how the launch executes.
unsigned lane_count();

/// No-op on the CPU substrate (kernels are synchronous) but kept so call
/// sites read like the CUDA original.
inline void synchronize() {}

}  // namespace stgraph::device
