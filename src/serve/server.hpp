// Streaming inference server (the serve subsystem's core): owns a frozen
// TemporalModel over a live graph object and exposes two concurrent entry
// points —
//
//   predict(nodes)  — micro-batched inference, sync (blocking) or async
//                     (predict_async, completion callback — what the
//                     network front-end uses). Requests land in bounded
//                     per-tenant queues; N replicated READER threads pop
//                     them in weighted-round-robin micro-batches of up to
//                     ServeConfig::max_batch and serve an entire batch
//                     from at most ONE forward pass. The step output for
//                     the current server version is computed once (by
//                     whichever reader gets there first, on its own
//                     inference-mode TemporalExecutor under the exec
//                     lock), then PUBLISHED as an immutable snapshot —
//                     every other reader serves row gathers from the
//                     published step without touching the exec lock, so
//                     predict() throughput scales with reader count while
//                     outputs stay bit-identical to the single-executor
//                     path (the pass runs once per version either way).
//
//   ingest(delta, x) — the single WRITER path: advance the timeline by one
//                      step: validate the edge delta against the live edge
//                      set, compute h_{t+1} from (x_t, h_t) on the OLD
//                      snapshot, journal the step to the WAL (when armed),
//                      append the delta to the graph, commit the new
//                      (time, features, hidden) and bump the version.
//                      Validation happens before any mutation, so a
//                      rejected or fault-injected delta leaves the
//                      published read view on the previous consistent
//                      snapshot.
//
// Overload & failure posture (docs/serving.md "Failure semantics"):
//   * every request carries a deadline (ServeConfig::default_deadline_ms,
//     per-call override) enforced at admission (queue-delay early shed),
//     at dequeue (expired requests never execute) and at completion;
//   * per-tenant bounded lanes + an AdmissionController shed with a typed
//     ShedReason taxonomy (queue_full / deadline_expired / draining /
//     circuit_open) counted per reason AND per tenant in ServerStats — no
//     request is ever silently dropped;
//   * a circuit breaker trips after consecutive batch failures or
//     non-finite outputs; while open, predict() serves the last-good
//     cached step (version-tagged stale) instead of erroring, and a
//     cooldown admits a probe batch that closes the circuit on success;
//   * a watchdog thread detects stalled reader loops, fails the circuit,
//     and flushes parked requests rather than hanging clients;
//   * with ServeConfig::wal_path set, every committed step is journaled
//     (CRC-framed, fsync'd) and recover(checkpoint, wal) replays the log
//     on top of an STGT snapshot to republish a bit-identical read view
//     after kill -9, truncating any torn tail first.
//
// Consistency model: exec_mu_ serializes all model/graph/executor access
// (one model instance; graph positioning mutates shared state, so the
// forward pass itself is single-stream, per the paper's execution model).
// What clients observe without that lock: the published ReadView, the
// ModelSnapshot handle, the last-good stale step, and the published
// current-version step (pub_mu_, a pointer copy) — all swap atomically.
// Failpoints: serve.checkpoint.load (in ModelSnapshot::load),
// serve.delta.apply, serve.batch.dispatch, serve.batch.delay (injected
// latency), serve.step.poison (NaN output), serve.wal.append.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/executor.hpp"
#include "graph/stgraph_base.hpp"
#include "nn/models.hpp"
#include "runtime/mutex.hpp"
#include "serve/admission.hpp"
#include "serve/health.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/request_queue.hpp"
#include "serve/stats.hpp"
#include "serve/wal.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace stgraph::serve {

struct ServeConfig {
  std::size_t max_batch = 16;       ///< micro-batch ceiling per dispatch
  std::size_t queue_capacity = 1024;///< per-lane bound before load shedding
  uint32_t start_time = 0;          ///< timestamp start() positions at
  bool resume_hidden = false;       ///< seed h from the snapshot's carried
                                    ///< hidden state instead of initial_state
  std::vector<float> edge_weights;  ///< optional per-edge weights (by eid)

  // ---- replicated readers ------------------------------------------------
  /// Reader threads serving predict() concurrently. Each has its own
  /// inference-mode TemporalExecutor and latency histogram; all serve the
  /// same published step, so outputs are reader-count-invariant.
  std::size_t num_readers = 1;

  // ---- tenants -----------------------------------------------------------
  /// Tenant lanes (id, WRR weight, per-lane capacity). Empty = a single
  /// default tenant {id 0, weight 1, queue_capacity}. Requests carrying an
  /// unknown tenant id share the first lane.
  std::vector<TenantLane> tenants;

  // ---- deadlines & admission control ------------------------------------
  /// Default per-request deadline for predict() and ingest(); 0 = none.
  /// Per-call overloads override it.
  double default_deadline_ms = 0.0;
  /// Concurrent-ingest quota (waiters included); exceeding it sheds the
  /// call with queue_full. 0 disables the quota.
  std::size_t max_inflight_ingests = 4;

  // ---- circuit breaker & degraded mode ----------------------------------
  /// Consecutive batch failures (dispatch faults, non-finite outputs) that
  /// trip the circuit into DEGRADED / stale-serving mode.
  uint32_t circuit_failure_threshold = 3;
  /// How long the circuit stays open before one probe batch is admitted.
  double circuit_cooldown_ms = 250.0;
  /// Scan every fresh forward output for NaN/Inf and fail the batch (and
  /// eventually the circuit) instead of serving poison.
  bool check_outputs = true;

  // ---- watchdog ----------------------------------------------------------
  /// Watchdog poll period; 0 disables the watchdog thread.
  double watchdog_interval_ms = 100.0;
  /// A batch older than this without a heartbeat counts as a stalled
  /// reader loop: the circuit fails and parked requests are flushed.
  double watchdog_stall_ms = 2000.0;

  // ---- durability --------------------------------------------------------
  /// When non-empty, journal the start step and every committed ingest to
  /// this write-ahead log; recover() replays it after a crash.
  std::string wal_path;
  /// fsync the WAL after every Nth record (1 = every record; 0 = never).
  uint32_t wal_sync_every = 1;
};

/// Snapshot-consistent summary of what the server is currently serving.
/// version bumps on every committed ingest and every snapshot install;
/// a PredictResult carries the version its outputs were computed at.
struct ReadView {
  uint32_t time = 0;
  uint64_t version = 0;
  uint32_t num_edges = 0;
};

/// Immutable forward-pass output for one server version, shared by every
/// reader thread as shared_ptr<const PublishedStep> — the lock-free read
/// path of the replicated-reader design.
struct PublishedStep {
  Tensor out;            ///< full [num_nodes, out_features] step output
  uint32_t time = 0;
  uint64_t version = 0;
};

/// Per-call options for the async predict path.
struct PredictOptions {
  uint16_t tenant = 0;
  /// < 0: use ServeConfig::default_deadline_ms; 0: no deadline; > 0: this
  /// many milliseconds of budget.
  double deadline_ms = -1.0;
};

class Server {
 public:
  /// The graph and model outlive the server; the server owns its own
  /// executors (inference mode) so a trainer's executor is never shared.
  Server(STGraphBase& graph, nn::TemporalModel& model, ServeConfig cfg = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Load an STGT checkpoint and install it (serve.checkpoint.load
  /// failpoint fires inside). Callable before start() or live.
  void load(const std::string& path);
  /// Swap the active model snapshot: copies the frozen parameters into the
  /// live module under the exec lock and bumps the version, so in-flight
  /// batches finish on the old weights and the next batch runs on the new
  /// ones — the atomic snapshot swap.
  void install(std::shared_ptr<const ModelSnapshot> snap);
  std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// Begin serving at cfg.start_time with the given node features
  /// ([num_nodes, F]). Spawns the reader threads (and the watchdog, when
  /// enabled); arms the WAL when cfg.wal_path is set.
  void start(Tensor features);
  /// Graceful shutdown: close the queues, promptly reject everything still
  /// queued with a `draining` shed (never execute it, never leave a client
  /// parked), drain the readers, sync the WAL, join the threads.
  /// Idempotent; the destructor calls it.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Crash recovery: install the STGT checkpoint, then replay `wal_path`
  /// (truncating a torn tail first) — the kStart record restores the exact
  /// start features/hidden, each kIngest record re-runs the committed
  /// step, and the server resumes serving AND journaling into the same
  /// log. The republished read view is bit-identical to a process that
  /// never crashed at the same timestep. Call instead of load()+start().
  void recover(const std::string& checkpoint_path,
               const std::string& wal_path);

  /// Blocking predict under the config's default deadline. Empty `nodes`
  /// returns the full output matrix; otherwise one row per listed node.
  /// Throws ShedError when the request is shed (typed reason) and StgError
  /// when the batch failed (fault injection, bad node id). While the
  /// circuit is open, returns the last-good step with `stale = true`.
  PredictResult predict(std::vector<uint32_t> nodes = {});
  /// predict() with a per-call deadline override (<= 0 disables).
  PredictResult predict(std::vector<uint32_t> nodes,
                        std::chrono::nanoseconds deadline);
  /// Blocking predict with full per-call options (tenant + deadline).
  PredictResult predict(std::vector<uint32_t> nodes,
                        const PredictOptions& opts);

  /// Non-blocking submission: `done` is invoked exactly once — with the
  /// result, or with the typed exception a blocking predict() would have
  /// thrown — from whichever thread completes the request (possibly the
  /// calling thread, on an admission shed). The network front-end's
  /// request path; never parks a thread per in-flight request.
  void predict_async(std::vector<uint32_t> nodes, const PredictOptions& opts,
                     PredictCallback done);

  /// Advance the served timeline by one timestep (synchronous, called from
  /// any thread) under the config's default deadline. For appendable
  /// graphs the delta extends the timeline; a graph with precomputed
  /// snapshots (static-temporal) only accepts empty deltas and steps
  /// within its existing history.
  void ingest(const EdgeDelta& delta, Tensor next_features);
  /// ingest() with a per-call deadline override (<= 0 disables).
  void ingest(const EdgeDelta& delta, Tensor next_features,
              std::chrono::nanoseconds deadline);

  ReadView read_view() const;
  HealthState health() const {
    return health_.load(std::memory_order_acquire);
  }
  StatsReport stats() const;
  std::size_t num_readers() const { return readers_.size(); }

 private:
  using clock = std::chrono::steady_clock;

  /// One replicated reader: a private inference-mode executor (used only
  /// when this reader is the one refreshing the step, under exec_mu_).
  /// Latency histograms and busy-time counters live in ServerStats, keyed
  /// by reader index.
  struct ReaderContext {
    explicit ReaderContext(STGraphBase& graph) : executor(graph) {
      executor.set_inference_mode(true);
    }
    core::TemporalExecutor executor;
  };

  static std::vector<TenantLane> make_lanes(const ServeConfig& cfg);

  void reader_loop(std::size_t reader_idx);
  void process_batch(std::size_t reader_idx,
                     std::vector<PredictRequest> batch);
  void watchdog_loop();
  void submit_predict(std::vector<uint32_t> nodes, uint16_t tenant,
                      int64_t budget_ns, PredictCallback done);
  PredictResult predict_blocking(std::vector<uint32_t> nodes, uint16_t tenant,
                                 int64_t budget_ns);
  void serve_stale(PredictRequest& req) STG_EXCLUDES(stale_mu_);
  void ingest_with_deadline(const EdgeDelta& delta, Tensor next_features,
                            int64_t budget_ns);
  void ingest_locked(const EdgeDelta& delta, Tensor next_features,
                     const Timer& timer) STG_REQUIRES(exec_mu_);
  /// Run (or reuse) the forward pass for the current version on `exec`.
  /// Returns true when the cached step was reused. Fresh outputs are
  /// NaN-checked and become the last-good stale fallback.
  bool ensure_step_locked(core::TemporalExecutor& exec)
      STG_REQUIRES(exec_mu_) STG_EXCLUDES(stale_mu_);
  void publish_view_locked() STG_REQUIRES(exec_mu_) STG_EXCLUDES(view_mu_);
  /// Lock-free copy of the published step (pub_mu_ pointer copy only).
  std::shared_ptr<const PublishedStep> published_step() const
      STG_EXCLUDES(pub_mu_);
  /// Slow path: compute (or reuse) the step for the current version under
  /// exec_mu_ on this reader's executor, publish it, return it.
  std::shared_ptr<const PublishedStep> refresh_step(std::size_t reader_idx)
      STG_EXCLUDES(exec_mu_, pub_mu_);

  // ---- circuit breaker ----------------------------------------------------
  /// True while the circuit is open and the cooldown has not elapsed
  /// (after cooldown, requests pass through as probes).
  bool circuit_blocks_now() const;
  /// Force the circuit open (failure threshold reached or watchdog stall).
  void trip_circuit();
  void note_batch_failure();
  void note_batch_success();
  void touch_heartbeat() {
    heartbeat_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now().time_since_epoch())
            .count(),
        std::memory_order_release);
  }
  int64_t default_deadline_ns() const {
    return static_cast<int64_t>(cfg_.default_deadline_ms * 1e6);
  }

  static uint64_t edge_key(uint32_t s, uint32_t d) {
    return (static_cast<uint64_t>(s) << 32) | d;
  }

  STGraphBase& graph_;
  nn::TemporalModel& model_;
  ServeConfig cfg_;
  /// Writer-path executor (ingest/recover compute h_{t+1} on it).
  core::TemporalExecutor executor_ STG_GUARDED_BY(exec_mu_);
  TenantQueueSet queue_;
  AdmissionController admission_;
  ServerStats stats_;
  /// Replicated reader contexts — sized at construction, immutable after.
  std::vector<std::unique_ptr<ReaderContext>> readers_;
  std::vector<std::thread> reader_threads_;
  std::thread watchdog_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<HealthState> health_{HealthState::kStarting};

  // ---- circuit breaker state (atomics: read by clients without locks) ----
  std::atomic<uint32_t> consecutive_failures_{0};
  std::atomic<bool> circuit_open_{false};
  std::atomic<int64_t> circuit_open_until_ns_{0};
  /// Last liveness signal from any reader thread (steady-clock ns).
  std::atomic<int64_t> heartbeat_ns_{0};
  /// Readers currently inside a batch.
  std::atomic<uint32_t> busy_readers_{0};

  // ---- watchdog signalling ------------------------------------------------
  Mutex wd_mu_{"serve::Server::wd_mu_"};
  ConditionVariable wd_cv_;
  bool wd_stop_ STG_GUARDED_BY(wd_mu_) = false;

  /// Serializes all model/graph/executor access; acquired before view_mu_,
  /// pub_mu_ and stale_mu_.
  mutable Mutex exec_mu_ STG_ACQUIRED_BEFORE(view_mu_, stale_mu_, pub_mu_){
      "serve::Server::exec_mu_"};
  std::shared_ptr<const ModelSnapshot> snapshot_ STG_GUARDED_BY(exec_mu_);
  /// Live edge set (delta validation).
  std::unordered_set<uint64_t> edges_ STG_GUARDED_BY(exec_mu_);
  /// x_t of the current timestep.
  Tensor features_ STG_GUARDED_BY(exec_mu_);
  /// h_t entering the current timestep.
  Tensor hidden_ STG_GUARDED_BY(exec_mu_);
  uint32_t time_ STG_GUARDED_BY(exec_mu_) = 0;
  /// 0 = not started; bumped per ingest/install.
  uint64_t version_ STG_GUARDED_BY(exec_mu_) = 0;
  /// Cached model output for step_version_.
  Tensor step_out_ STG_GUARDED_BY(exec_mu_);
  /// Cached next hidden for step_version_.
  Tensor step_h_next_ STG_GUARDED_BY(exec_mu_);
  /// 0 = cache invalid.
  uint64_t step_version_ STG_GUARDED_BY(exec_mu_) = 0;
  /// Write-ahead log (null when durability is off or during replay).
  std::unique_ptr<wal::Writer> wal_ STG_GUARDED_BY(exec_mu_);
  /// recover() in progress: start() must not truncate/journal the log the
  /// replay is reading. Only touched with the server stopped.
  bool recovering_ = false;
  /// Hidden state recover() restores instead of initial_state().
  Tensor start_hidden_override_;

  mutable Mutex view_mu_{"serve::Server::view_mu_"};
  ReadView view_ STG_GUARDED_BY(view_mu_);
  /// Mirror of version_ readable without exec_mu_ (readers' staleness
  /// check); written only inside publish_view_locked().
  std::atomic<uint64_t> live_version_{0};

  /// Published current-version step (readers' lock-free serve path).
  mutable Mutex pub_mu_{"serve::Server::pub_mu_"};
  std::shared_ptr<const PublishedStep> published_ STG_GUARDED_BY(pub_mu_);

  /// Last-good step for stale-but-bounded reads while the circuit is open.
  mutable Mutex stale_mu_{"serve::Server::stale_mu_"};
  Tensor last_good_out_ STG_GUARDED_BY(stale_mu_);
  uint32_t last_good_time_ STG_GUARDED_BY(stale_mu_) = 0;
  uint64_t last_good_version_ STG_GUARDED_BY(stale_mu_) = 0;
};

}  // namespace stgraph::serve
