// stgraph-dataset-tool — command-line dataset utility built on the public
// loaders and the I/O module; the kind of companion binary a released
// framework ships for dataset preparation.
//
//   generate <name> <out.stg>       synthesize a Table-II dataset and save
//   inspect  <file.stg|.dtdg>       print structure + degree statistics
//   window   <edges.txt> <pct> <out.dtdg>
//                                   read a SNAP-style edge list, window it
//                                   into DTDG snapshots at <pct>% change
//   reorder  <edges.txt> <out.txt>  RCM-relabel an edge list for locality
//
// Build & run:  ./build/examples/dataset_tool generate HC /tmp/hc.stg
#include <cstring>
#include <iostream>

#include "datasets/synthetic.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "io/serialize.hpp"

using namespace stgraph;

namespace {

int usage() {
  std::cerr
      << "usage:\n"
      << "  dataset_tool generate <WVM|WO|HC|MB|PM> <out.stg>\n"
      << "  dataset_tool inspect <file.stg|file.dtdg>\n"
      << "  dataset_tool window <edges.txt> <percent_change> <out.dtdg>\n"
      << "  dataset_tool reorder <edges.txt> <out.txt>\n";
  return 2;
}

datasets::StaticTemporalDataset generate_by_name(const std::string& name) {
  datasets::StaticLoadOptions opts;
  opts.num_timestamps = 50;
  opts.feature_size = 8;
  if (name == "WVM") return datasets::load_wikimath(opts);
  if (name == "WO") return datasets::load_windmill(opts);
  if (name == "HC") return datasets::load_chickenpox(opts);
  if (name == "MB") return datasets::load_montevideo_bus(opts);
  if (name == "PM") return datasets::load_pedalme(opts);
  throw StgError("unknown dataset name '" + name +
                 "' (expected WVM, WO, HC, MB or PM)");
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

int cmd_generate(const std::string& name, const std::string& out) {
  const auto ds = generate_by_name(name);
  io::save_static_dataset(ds, out);
  std::cout << "wrote " << out << ": " << summarize_graph(ds.num_nodes, ds.edges)
            << ", T=" << ds.num_timestamps
            << ", F=" << ds.signal.feature_size() << "\n";
  return 0;
}

int cmd_inspect(const std::string& path) {
  if (ends_with(path, ".dtdg")) {
    const DtdgEvents ev = io::load_dtdg(path);
    std::cout << "DTDG: " << ev.num_nodes << " nodes, "
              << ev.base_edges.size() << " base edges, "
              << ev.num_timestamps() << " snapshots, mean change "
              << ev.mean_percent_change() << "%\n";
    std::cout << "base snapshot: "
              << summarize_graph(ev.num_nodes, ev.base_edges) << "\n";
    const EdgeList last = ev.snapshot_edges(ev.num_timestamps() - 1);
    std::cout << "last snapshot: " << summarize_graph(ev.num_nodes, last)
              << "\n";
    return 0;
  }
  const auto ds = io::load_static_dataset(path);
  std::cout << "static-temporal dataset '" << ds.name << "': "
            << summarize_graph(ds.num_nodes, ds.edges) << "\n"
            << "signal: T=" << ds.signal.num_timestamps()
            << " F=" << ds.signal.feature_size()
            << (ds.signal.edge_weights.empty() ? " (unweighted)"
                                               : " (edge-weighted)")
            << "\n";
  return 0;
}

int cmd_window(const std::string& edges_path, double pct,
               const std::string& out) {
  uint32_t n = 0;
  const EdgeList stream = io::read_edge_list(edges_path, &n);
  std::cout << "read " << stream.size() << " interactions over " << n
            << " nodes\n";
  const DtdgEvents ev = window_edge_stream(n, stream, pct);
  io::save_dtdg(ev, out);
  std::cout << "wrote " << out << ": " << ev.num_timestamps()
            << " snapshots at " << ev.mean_percent_change()
            << "% mean change\n";
  return 0;
}

int cmd_reorder(const std::string& edges_path, const std::string& out) {
  uint32_t n = 0;
  const EdgeList edges = io::read_edge_list(edges_path, &n);
  const double before = mean_edge_span(n, edges);
  const EdgeList relabelled = relabel_edges(edges, rcm_order(n, edges));
  const double after = mean_edge_span(n, relabelled);
  io::write_edge_list(relabelled, out);
  std::cout << "RCM reorder: mean edge span " << before << " -> " << after
            << " (" << (before > 0 ? 100.0 * (1.0 - after / before) : 0.0)
            << "% reduction), wrote " << out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 4 && std::strcmp(argv[1], "generate") == 0)
      return cmd_generate(argv[2], argv[3]);
    if (argc >= 3 && std::strcmp(argv[1], "inspect") == 0)
      return cmd_inspect(argv[2]);
    if (argc >= 5 && std::strcmp(argv[1], "window") == 0)
      return cmd_window(argv[2], std::stod(argv[3]), argv[4]);
    if (argc >= 4 && std::strcmp(argv[1], "reorder") == 0)
      return cmd_reorder(argv[2], argv[3]);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
