// On-disk formats: STGraph ships dataset loaders (paper §VI-3); this
// module provides the disk half — a small, versioned, little-endian
// binary container used for
//
//   * static-temporal datasets (graph + per-timestamp signal),
//   * DTDG event sets (base edges + deltas),
//   * model checkpoints (named parameter tensors),
//
// plus a plain-text edge-list reader for ingesting SNAP-style
// `src dst [timestamp]` files, which is the format the paper's dynamic
// datasets are distributed in.
//
// All readers validate magic, version and structural invariants and throw
// StgError with a precise message on malformed input — including files
// truncated at any byte boundary — loaders are a user-facing surface and
// garbage files must not fault. All writers publish atomically through
// io::Writer's temp + fsync + rename path (see io/binary_format.hpp), so
// no on-disk format can ever be observed half-written. Full training-run
// state (optimizer, RNG, cursor) lives in io/train_state.hpp.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "datasets/synthetic.hpp"
#include "nn/module.hpp"

namespace stgraph::io {

// ---- static-temporal datasets ------------------------------------------
void save_static_dataset(const datasets::StaticTemporalDataset& ds,
                         const std::string& path);
datasets::StaticTemporalDataset load_static_dataset(const std::string& path);

// ---- DTDG event sets ------------------------------------------------------
void save_dtdg(const DtdgEvents& events, const std::string& path);
DtdgEvents load_dtdg(const std::string& path);

// ---- model checkpoints -----------------------------------------------------
/// Save every parameter of `module` (by dotted name) to `path`.
void save_checkpoint(const nn::Module& module, const std::string& path);
/// Load a checkpoint into `module`: every parameter name must be present
/// with a matching shape (strict, like torch.load_state_dict default).
void load_checkpoint(nn::Module& module, const std::string& path);
/// Module-free checkpoint read: the raw (name, tensor) pairs in file
/// order. Used by `stgraph_check` to audit a checkpoint without knowing
/// the model architecture that produced it.
std::vector<std::pair<std::string, Tensor>> load_checkpoint_tensors(
    const std::string& path);

// ---- plain-text edge lists ----------------------------------------------
/// Parse `src dst [timestamp]` lines ('#'/'%' comments allowed). Rows are
/// returned in timestamp order when timestamps are present, else file
/// order. Node ids are compacted to 0..n-1; `num_nodes_out` receives n.
EdgeList read_edge_list(const std::string& path, uint32_t* num_nodes_out);
void write_edge_list(const EdgeList& edges, const std::string& path);

}  // namespace stgraph::io
