#include "compiler/kernel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "compiler/kernel_engine.hpp"
#include "compiler/passes.hpp"
#include "runtime/parallel.hpp"
#include "runtime/simd.hpp"
#include "util/check.hpp"

namespace stgraph::compiler {

namespace {

// Canonical multiplication order for coefficient products. eval_coefs
// multiplies left-to-right, and the specialized engine hoists the prefix of
// factors that only depend on the row; float multiplication commutes
// bitwise but does not associate, so both paths agree bit-for-bit only if
// they multiply in the same order. Sorting coefs into this canonical rank
// (stably, inside compile() — the optimizer passes are order-preserving and
// tested structurally) makes the hoisted prefix a literal prefix of the
// reference evaluation.
int coef_rank(CoefKind k) {
  switch (k) {
    case CoefKind::kConst: return 0;
    case CoefKind::kInvDegree: return 1;
    case CoefKind::kInvDegreeP1: return 2;
    case CoefKind::kGcnNorm: return 3;
    case CoefKind::kEdgeWeight: return 4;
  }
  return 5;
}

void canonicalize(std::vector<Coef>& coefs) {
  std::stable_sort(coefs.begin(), coefs.end(),
                   [](const Coef& a, const Coef& b) {
                     return coef_rank(a.kind) < coef_rank(b.kind);
                   });
}

// Classify one canonical-ordered coef product into a TermPlan. Returns
// false when the product exceeds what the plan can represent (factor
// counts beyond uint8_t — no real program comes close).
bool make_plan(const std::vector<Coef>& coefs, int input, TermPlan& tp) {
  tp = TermPlan{};
  tp.input = input;
  auto bump = [](uint8_t& n) {
    if (n == 0xFF) return false;
    ++n;
    return true;
  };
  for (const Coef& c : coefs) {
    switch (c.kind) {
      case CoefKind::kConst:
        tp.c0 *= c.value;  // left-to-right, same as eval_coefs
        break;
      case CoefKind::kInvDegree:
        if (!bump(tp.inv_deg)) return false;
        break;
      case CoefKind::kInvDegreeP1:
        if (!bump(tp.inv_deg_p1)) return false;
        break;
      case CoefKind::kGcnNorm:
        if (!bump(tp.gcn)) return false;
        break;
      case CoefKind::kEdgeWeight:
        if (!bump(tp.edge_w)) return false;
        break;
    }
  }
  return true;
}

}  // namespace

KernelSpec compile(Program p) {
  KernelSpec spec;
  spec.program = optimize(std::move(p));
  if (spec.program.agg == AggKind::kMax) {
    STG_CHECK(spec.program.terms.size() == 1,
              "max aggregation supports exactly one message term");
    STG_CHECK(spec.program.out_scale > 0.0f,
              "max aggregation requires a positive output scale");
  } else {
    STG_CHECK(spec.program.agg == AggKind::kSum,
              "mean lowering should leave only sum aggregation");
  }
  spec.num_inputs = spec.program.num_inputs();
  for (MessageTerm& t : spec.program.terms) canonicalize(t.coefs);
  canonicalize(spec.program.self_coefs);
  auto scan = [&](const std::vector<Coef>& coefs) {
    for (const Coef& c : coefs) {
      if (c.kind == CoefKind::kEdgeWeight) spec.uses_edge_weight = true;
      if (c.kind == CoefKind::kGcnNorm || c.kind == CoefKind::kInvDegree ||
          c.kind == CoefKind::kInvDegreeP1)
        spec.uses_degrees = true;
    }
  };
  for (const MessageTerm& t : spec.program.terms) scan(t.coefs);
  if (spec.program.include_self) scan(spec.program.self_coefs);

  spec.specializable =
      spec.program.terms.size() <= kMaxSpecializedTerms;
  spec.plans.reserve(spec.program.terms.size());
  for (const MessageTerm& t : spec.program.terms) {
    TermPlan tp;
    if (!make_plan(t.coefs, t.input, tp)) spec.specializable = false;
    spec.plans.push_back(tp);
  }
  if (spec.program.include_self &&
      !make_plan(spec.program.self_coefs, 0, spec.self_plan))
    spec.specializable = false;
  return spec;
}

namespace {

// Evaluate a coefficient product for edge producer→consumer.
inline float eval_coefs(const std::vector<Coef>& coefs, uint32_t producer,
                        uint32_t consumer, uint32_t eid,
                        const uint32_t* in_deg, const float* edge_w) {
  float c = 1.0f;
  for (const Coef& k : coefs) {
    switch (k.kind) {
      case CoefKind::kConst:
        c *= k.value;
        break;
      case CoefKind::kGcnNorm:
        c *= gcn_norm_coef(in_deg[producer], in_deg[consumer]);
        break;
      case CoefKind::kInvDegree: {
        const uint32_t d = in_deg[consumer];
        c *= d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
        break;
      }
      case CoefKind::kInvDegreeP1:
        c *= 1.0f / static_cast<float>(in_deg[consumer] + 1);
        break;
      case CoefKind::kEdgeWeight:
        c *= edge_w[eid];
        break;
    }
  }
  return c;
}

// Max-aggregation forward: element-wise max over neighbor candidates
// (plus the optional self candidate), recording the winning producer per
// (row, feature) cell into argmax_out.
inline void process_row_max(const KernelSpec& spec, const KernelArgs& a,
                            uint32_t row, uint32_t f0, uint32_t f1) {
  const Program& p = spec.program;
  float* orow = a.out + static_cast<std::size_t>(row) * a.num_feats;
  uint32_t* arow = a.argmax_out + static_cast<std::size_t>(row) * a.num_feats;
  for (uint32_t f = f0; f < f1; ++f) {
    orow[f] = -std::numeric_limits<float>::infinity();
    arow[f] = kSpace;
  }
  const MessageTerm& term = p.terms[0];
  const uint32_t start = a.view.row_offset[row];
  const uint32_t end = a.view.row_offset[row + 1];
  for (uint32_t j = start; j < end; ++j) {
    const uint32_t col = a.view.col_indices[j];
    if (a.view.has_gaps && col == kSpace) continue;
    const uint32_t eid = a.view.eids ? a.view.eids[j] : j;
    const float c =
        eval_coefs(term.coefs, col, row, eid, a.in_degrees, a.edge_weights);
    const float* src =
        a.inputs[term.input] + static_cast<std::size_t>(col) * a.num_feats;
    for (uint32_t f = f0; f < f1; ++f) {
      const float val = c * src[f];
      if (val > orow[f]) {
        orow[f] = val;
        arow[f] = col;
      }
    }
  }
  if (p.include_self) {
    const float c = eval_coefs(p.self_coefs, row, row, 0, a.in_degrees,
                               a.edge_weights);
    const float* src =
        a.self_features + static_cast<std::size_t>(row) * a.num_feats;
    for (uint32_t f = f0; f < f1; ++f) {
      const float val = c * src[f];
      if (val > orow[f]) {
        orow[f] = val;
        arow[f] = row;
      }
    }
  }
  for (uint32_t f = f0; f < f1; ++f) {
    if (arow[f] == kSpace) {
      orow[f] = 0.0f;  // no candidates: empty max defined as 0
    } else {
      orow[f] *= p.out_scale;
    }
  }
}

// Max-aggregation backward over the transposed view (rows are producers):
// gradient flows only along recorded argmax edges.
inline void process_row_max_bwd(const KernelSpec& spec, const KernelArgs& a,
                                uint32_t row, uint32_t f0, uint32_t f1) {
  const Program& p = spec.program;
  float* orow = a.out + static_cast<std::size_t>(row) * a.num_feats;
  for (uint32_t f = f0; f < f1; ++f) orow[f] = 0.0f;
  const MessageTerm& term = p.terms[0];
  const uint32_t start = a.view.row_offset[row];
  const uint32_t end = a.view.row_offset[row + 1];
  for (uint32_t j = start; j < end; ++j) {
    const uint32_t col = a.view.col_indices[j];  // consumer vertex
    if (a.view.has_gaps && col == kSpace) continue;
    const uint32_t eid = a.view.eids ? a.view.eids[j] : j;
    const uint32_t* amax =
        a.argmax_in + static_cast<std::size_t>(col) * a.num_feats;
    const float* grad =
        a.inputs[term.input] + static_cast<std::size_t>(col) * a.num_feats;
    float c = 0.0f;
    bool have_c = false;
    for (uint32_t f = f0; f < f1; ++f) {
      if (amax[f] != row) continue;
      if (!have_c) {
        c = eval_coefs(term.coefs, row, col, eid, a.in_degrees,
                       a.edge_weights) *
            p.out_scale;
        have_c = true;
      }
      orow[f] += c * grad[f];
    }
  }
  if (p.include_self) {
    // The consumer `row` itself may have picked its self candidate.
    const uint32_t* amax =
        a.argmax_in + static_cast<std::size_t>(row) * a.num_feats;
    const float* grad =
        a.self_features + static_cast<std::size_t>(row) * a.num_feats;
    const float c = eval_coefs(p.self_coefs, row, row, 0, a.in_degrees,
                               a.edge_weights) *
                    p.out_scale;
    for (uint32_t f = f0; f < f1; ++f) {
      if (amax[f] == row) orow[f] += c * grad[f];
    }
  }
}

// Process one row's aggregation over feature columns [f0, f1).
inline void process_row(const KernelSpec& spec, const KernelArgs& a,
                        uint32_t row, uint32_t f0, uint32_t f1) {
  if (spec.program.max_backward) {
    process_row_max_bwd(spec, a, row, f0, f1);
    return;
  }
  if (spec.program.agg == AggKind::kMax) {
    process_row_max(spec, a, row, f0, f1);
    return;
  }
  const Program& p = spec.program;
  float* orow = a.out + static_cast<std::size_t>(row) * a.num_feats;
  for (uint32_t f = f0; f < f1; ++f) orow[f] = 0.0f;

  const uint32_t start = a.view.row_offset[row];
  const uint32_t end = a.view.row_offset[row + 1];
  for (uint32_t j = start; j < end; ++j) {
    const uint32_t col = a.view.col_indices[j];
    if (a.view.has_gaps && col == kSpace) continue;  // skip SPACE slots
    const uint32_t eid = a.view.eids ? a.view.eids[j] : j;
    const uint32_t producer = a.producer_is_col ? col : row;
    const uint32_t consumer = a.producer_is_col ? row : col;
    for (const MessageTerm& t : p.terms) {
      const float c = eval_coefs(t.coefs, producer, consumer, eid,
                                 a.in_degrees, a.edge_weights) *
                      p.out_scale;
      if (c == 0.0f) continue;
      const float* src =
          a.inputs[t.input] + static_cast<std::size_t>(col) * a.num_feats;
      for (uint32_t f = f0; f < f1; ++f) orow[f] += c * src[f];
    }
  }
  if (p.include_self) {
    // Self loop: producer == consumer == row in both directions.
    const float c = eval_coefs(p.self_coefs, row, row, 0, a.in_degrees,
                               a.edge_weights) *
                    p.out_scale;
    const float* src =
        a.self_features + static_cast<std::size_t>(row) * a.num_feats;
    for (uint32_t f = f0; f < f1; ++f) orow[f] += c * src[f];
  }
  if (a.epilogue_bias != nullptr) {
    for (uint32_t f = f0; f < f1; ++f) orow[f] += a.epilogue_bias[f];
  }
}

void validate_args(const KernelSpec& spec, const KernelArgs& args) {
  STG_CHECK(args.out != nullptr && args.inputs != nullptr,
            "kernel launched without output/input buffers");
  STG_CHECK(!spec.uses_edge_weight || args.edge_weights != nullptr,
            "program uses edge weights but none were bound");
  STG_CHECK(!spec.uses_degrees || args.in_degrees != nullptr,
            "program uses degrees but no degree array was bound");
  STG_CHECK(!spec.program.include_self || args.self_features != nullptr,
            "program has a self term but self_features is unbound");
  STG_CHECK(spec.program.agg != AggKind::kMax || spec.program.max_backward ||
                args.argmax_out != nullptr,
            "max-aggregation forward needs an argmax_out buffer");
  STG_CHECK(!spec.program.max_backward || args.argmax_in != nullptr,
            "max-aggregation backward needs the recorded argmax_in");
  STG_CHECK(args.epilogue_bias == nullptr ||
                (spec.program.agg == AggKind::kSum && !spec.program.max_backward),
            "epilogue_bias is only defined for sum aggregation");
}

}  // namespace

void run_kernel_reference(const KernelSpec& spec, const KernelArgs& args) {
  validate_args(spec, args);
  const uint32_t n = args.view.num_nodes;
  const uint32_t F = args.num_feats;
  const uint32_t* order = args.view.node_ids;

  if (F < kFeatureTileThreshold) {
    // One vertex per work item, degree-sorted order, strided lanes.
    device::parallel_for_strided(n, [&](std::size_t i) {
      const uint32_t row = order ? order[i] : static_cast<uint32_t>(i);
      process_row(spec, args, row, 0, F);
    });
  } else {
    // Feature-adaptive: (vertex × feature tile) grid.
    const uint32_t tiles = (F + kFeatureTile - 1) / kFeatureTile;
    device::parallel_for_strided(
        static_cast<std::size_t>(n) * tiles, [&](std::size_t item) {
          const std::size_t i = item / tiles;
          const uint32_t tile = static_cast<uint32_t>(item % tiles);
          const uint32_t row = order ? order[i] : static_cast<uint32_t>(i);
          const uint32_t f0 = tile * kFeatureTile;
          const uint32_t f1 = std::min(F, f0 + kFeatureTile);
          process_row(spec, args, row, f0, f1);
        });
  }
}

void run_kernel(const KernelSpec& spec, const KernelArgs& args) {
  if (!spec.specializable) {
    run_kernel_reference(spec, args);
    return;
  }
  validate_args(spec, args);
  if (simd::enabled()) {
    detail::run_engine_native(spec, args);
  } else {
    detail::run_engine_scalar(spec, args);
  }
}

}  // namespace stgraph::compiler
