#include "core/trainer.hpp"

#include "gpma/gpma_graph.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace stgraph::core {

STGraphTrainer::STGraphTrainer(STGraphBase& graph, nn::TemporalModel& model,
                               const datasets::TemporalSignal& signal,
                               TrainConfig config)
    : graph_(graph),
      model_(model),
      signal_(signal),
      config_(config),
      executor_(graph),
      optimizer_(model.parameters(), config.lr) {
  STG_CHECK(signal_.num_timestamps() >= 1, "signal has no timestamps");
  STG_CHECK(config_.sequence_length >= 1, "sequence length must be positive");
  STG_CHECK(config_.task != Task::kNodeRegression || signal_.has_node_targets(),
            "node regression requires node targets in the signal");
  STG_CHECK(config_.task != Task::kLinkPrediction || signal_.has_link_samples(),
            "link prediction requires link samples in the signal");
  executor_.set_state_pruning(config_.state_pruning);
}

EpochStats STGraphTrainer::run_epoch(bool training) {
  const uint32_t T =
      std::min<uint32_t>(signal_.num_timestamps(), graph_.num_timestamps());
  const float* edge_weights =
      signal_.edge_weights.empty() ? nullptr : signal_.edge_weights.data();

  Timer epoch_timer;
  // Figure 9 attribution: snapshot-construction time accumulates in the
  // executor's positioning timer (which wraps Get-Graph / Algorithm 2 and
  // the Algorithm-3 rebuilds); reset so this epoch's share is isolated.
  executor_.positioning_timer().reset();
  if (auto* gpma = dynamic_cast<GpmaGraph*>(&graph_)) {
    gpma->update_timer().reset();
  }

  double loss_total = 0.0;
  uint32_t steps = 0;
  Tensor h;  // carried across sequences, detached (truncated BPTT)

  for (uint32_t seq_start = 0; seq_start < T;
       seq_start += config_.sequence_length) {
    const uint32_t seq_end =
        std::min(T, seq_start + config_.sequence_length);

    Tensor loss_acc;
    for (uint32_t t = seq_start; t < seq_end; ++t) {
      executor_.begin_forward_step(t);
      const Tensor& x = signal_.features[t];
      if (!h.defined()) h = model_.initial_state(x.rows());
      auto [out, h_next] = model_.step(executor_, x, h, edge_weights);
      h = h_next;

      Tensor loss_t;
      if (config_.task == Task::kNodeRegression) {
        loss_t = ops::mse_loss(out, signal_.targets[t]);
      } else {
        const datasets::LinkSamples& ls = signal_.links[t];
        Tensor logits = nn::link_logits(out, ls.src, ls.dst);
        loss_t = ops::bce_with_logits_loss(logits, ls.labels);
      }
      loss_acc = loss_acc.defined() ? ops::add(loss_acc, loss_t) : loss_t;
      ++steps;
    }

    loss_total += loss_acc.item();
    if (training) {
      optimizer_.zero_grad();
      loss_acc.backward();
      optimizer_.step();
      executor_.verify_drained();
    }
    h = h.detach();  // truncate BPTT at the sequence boundary
  }

  EpochStats stats;
  stats.loss = steps ? loss_total / steps : 0.0;
  stats.seconds = epoch_timer.seconds();
  stats.graph_update_seconds = executor_.positioning_timer().total_seconds();
  stats.gnn_seconds = stats.seconds - stats.graph_update_seconds;
  return stats;
}

EpochStats STGraphTrainer::train_epoch() { return run_epoch(/*training=*/true); }

std::vector<EpochStats> STGraphTrainer::train() {
  std::vector<EpochStats> stats;
  stats.reserve(config_.epochs);
  for (uint32_t e = 0; e < config_.epochs; ++e) stats.push_back(train_epoch());
  return stats;
}

double STGraphTrainer::evaluate() {
  NoGradGuard ng;
  return run_epoch(/*training=*/false).loss;
}

}  // namespace stgraph::core
