// Parallel sorting — the Thrust/CUB `sort` analogue used by the GPMA batch
// update path (updates must be key-sorted before leaf partitioning) and by
// the degree-sort that builds the `node_ids` processing-order array.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace stgraph::device {

/// LSD radix sort of 64-bit keys (stable). Fast path for PMA update
/// batches where keys are (src << 32 | dst).
void radix_sort(std::vector<uint64_t>& keys);

/// Stable radix sort of (key, payload) pairs by key.
void radix_sort_pairs(std::vector<uint64_t>& keys,
                      std::vector<uint64_t>& payload);

/// Parallel comparison sort of an index permutation [0, n) ordered by
/// `less`. Used for degree sorting where the comparator reads a degree
/// array. Merge-based: per-lane std::sort then pairwise merges.
std::vector<uint32_t> sort_indices(
    std::size_t n, const std::function<bool(uint32_t, uint32_t)>& less);

}  // namespace stgraph::device
