// Graph Stack (paper §V-B): for DTDGs the executor records which snapshot
// (timestamp) each forward step used, so the corresponding backward step
// re-materializes the same snapshot. Static-temporal graphs never touch
// it (Algorithm 1: "if G is DTDG").
#pragma once

#include <cstdint>
#include <vector>

namespace stgraph::core {

class GraphStack {
 public:
  void push(uint32_t timestamp) { stack_.push_back(timestamp); }
  uint32_t pop();
  uint32_t top() const;
  bool empty() const { return stack_.empty(); }
  std::size_t depth() const { return stack_.size(); }

  /// Drop every recorded snapshot (executor abort path).
  void clear() { stack_.clear(); }

 private:
  std::vector<uint32_t> stack_;
};

}  // namespace stgraph::core
