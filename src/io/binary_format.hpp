// Shared machinery for STGraph's little-endian binary containers: an
// atomic file writer and a bounds-checked reader, used by every on-disk
// format (datasets, DTDG events, model checkpoints, train states).
//
// Durability contract (Writer): bytes go to `<path>.tmp.<pid>`; finish()
// flushes, fsyncs, and rename(2)s the temp file over `path`, so a crash at
// any point leaves either the old file or the new one — never a torn mix.
// An unfinished Writer removes its temp file on destruction. With
// `crc_footer` every payload byte feeds a CRC-32 that finish() appends as
// a 4-byte footer.
//
// Corruption contract (Reader): the whole file is slurped up front, every
// read is bounds-checked against the remaining bytes, and element counts
// are validated against the remaining payload before any allocation — a
// file truncated at ANY byte boundary throws StgError, never UB or OOM.
// With `crc_footer` the footer is verified before the first field is
// parsed, so torn writes (e.g. a short write that survived a rename) are
// detected up front.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>

#include "tensor/tensor.hpp"

namespace stgraph::io {

// The formats are defined as little-endian; on a big-endian host these
// would need byte swaps, which we guard against rather than silently
// corrupting.
static_assert(std::endian::native == std::endian::little,
              "serializers assume a little-endian host");

class Writer {
 public:
  explicit Writer(const std::string& path, bool crc_footer = false);
  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  template <typename T>
  void scalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(T));
  }
  void bytes(const void* data, std::size_t n);
  void str(const std::string& s) {
    scalar<uint32_t>(static_cast<uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  /// Flush + fsync the temp file, then rename it into place. Failpoint
  /// "io.write.short" truncates the temp file first, simulating a torn
  /// write that made it through the rename (tests CRC/truncation
  /// detection on the read side).
  void finish();

 private:
  std::string path_;
  std::string tmp_path_;
  uint32_t crc_ = 0;
  bool crc_footer_ = false;
  bool finished_ = false;
  struct OutFile;  // hides <fstream> from the header
  struct OutFileDeleter {
    void operator()(OutFile* f) const;
  };
  std::unique_ptr<OutFile, OutFileDeleter> out_;
};

class Reader {
 public:
  explicit Reader(const std::string& path, bool crc_footer = false);

  template <typename T>
  T scalar() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    bytes(&v, sizeof(T));
    return v;
  }
  void bytes(void* data, std::size_t n);
  std::string str(uint32_t max_len = 1u << 20);
  /// Read and validate the (magic, version) header every container opens
  /// with.
  void expect_magic(uint32_t magic, uint32_t version);

  /// Payload bytes not yet consumed (excludes a verified CRC footer).
  std::size_t remaining() const { return buf_.size() - pos_; }
  /// Validate a claimed element count against the remaining payload:
  /// `count * elem_size` bytes must still be available. Makes reserve()
  /// after the check safe on corrupt files.
  void expect_payload(uint64_t count, std::size_t elem_size,
                      const char* what);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string buf_;
  std::size_t pos_ = 0;
};

// ---- shared field helpers -----------------------------------------------
/// Tensor wire format: u32 rank, i64 dims, raw float32 payload.
void write_tensor(Writer& w, const Tensor& t);
Tensor read_tensor(Reader& r);

}  // namespace stgraph::io
