// Quickstart: train a TGCN on a small static-temporal graph in ~40 lines
// of user code. Shows the three core pieces of the public API:
//
//   1. a graph object (here StaticTemporalGraph) implementing the
//      STGraphBase abstraction,
//   2. a TGNN model built from the layer APIs (TGCNRegressor = TGCN cell +
//      linear head),
//   3. the Algorithm-1 trainer driving the temporally-aware executor.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "graph/static_graph.hpp"
#include "nn/models.hpp"
#include "util/rng.hpp"

int main() {
  using namespace stgraph;

  // 1. Load a dataset (synthetic Hungary-Chickenpox equivalent: 20 county
  //    nodes, ~100 adjacency edges, weekly case-count signal).
  datasets::StaticLoadOptions opts;
  opts.feature_size = 4;      // 4 lags of the signal per node
  opts.num_timestamps = 48;
  datasets::StaticTemporalDataset ds = datasets::load_chickenpox(opts);
  std::cout << "dataset " << ds.name << ": " << ds.num_nodes << " nodes, "
            << ds.edges.size() << " edges, " << ds.num_timestamps
            << " timestamps\n";

  // 2. Build the graph object and the model.
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(42);
  nn::TGCNRegressor model(opts.feature_size, /*hidden=*/16, rng);
  std::cout << "model parameters: " << model.parameter_count() << "\n";

  // 3. Train with the Algorithm-1 loop.
  core::TrainConfig cfg;
  cfg.epochs = 20;
  cfg.sequence_length = 8;
  cfg.lr = 1e-2f;
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);

  for (uint32_t epoch = 1; epoch <= cfg.epochs; ++epoch) {
    const core::EpochStats stats = trainer.train_epoch();
    if (epoch == 1 || epoch % 5 == 0) {
      std::cout << "epoch " << epoch << "  mse " << stats.loss << "  ("
                << stats.seconds * 1e3 << " ms)\n";
    }
  }
  std::cout << "final evaluation mse: " << trainer.evaluate() << "\n";
  return 0;
}
