// NOTE: this translation unit is built with -ffp-contract=off (see
// src/CMakeLists.txt): the fusing compiler's interpreter replays these
// formulas and the parity contract requires neither path to gain an FMA
// the other lacks. The FMA-hungry GEMM kernel lives in tensor/gemm.cpp
// with default contraction.
#include "tensor/ops.hpp"

#include <cmath>

#include "autograd/engine.hpp"
#include "runtime/parallel.hpp"
#include "tensor/ew_scalar.hpp"
#include "tensor/gemm.hpp"
#include "tensor/op_profile.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph::ops {
namespace {

using autograd::LambdaNode;

// Elementwise map kernel: out[i] = f(a[i]).
template <typename F>
Tensor unary_map(const Tensor& a, F f,
                 OpClass cls = OpClass::kElementwise) {
  Tensor out = Tensor::empty(a.shape());
  ProfileScope prof(cls, static_cast<uint64_t>(out.numel()) * sizeof(float));
  const float* pa = a.data();
  float* po = out.data();
  device::parallel_for_ranges(static_cast<std::size_t>(a.numel()),
                              [&](std::size_t b, std::size_t e) {
                                for (std::size_t i = b; i < e; ++i)
                                  po[i] = f(pa[i]);
                              });
  return out;
}

// Elementwise zip kernel: out[i] = f(a[i], b[i]).
template <typename F>
Tensor binary_map(const Tensor& a, const Tensor& b, F f,
                  OpClass cls = OpClass::kElementwise) {
  STG_CHECK(same_shape(a, b), "elementwise op shape mismatch: ",
            shape_str(a.shape()), " vs ", shape_str(b.shape()));
  Tensor out = Tensor::empty(a.shape());
  ProfileScope prof(cls, static_cast<uint64_t>(out.numel()) * sizeof(float));
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  device::parallel_for_ranges(static_cast<std::size_t>(a.numel()),
                              [&](std::size_t lo, std::size_t hi) {
                                for (std::size_t i = lo; i < hi; ++i)
                                  po[i] = f(pa[i], pb[i]);
                              });
  return out;
}

// Attach a lambda-backed autograd node consuming `inputs`.
template <typename Fn>
void attach(Tensor& out, const char* name,
            std::initializer_list<Tensor> inputs, Fn&& fn) {
  if (!NoGradGuard::grad_enabled()) return;
  auto node = std::make_shared<LambdaNode>(name, std::forward<Fn>(fn));
  bool any = false;
  for (const Tensor& t : inputs) any = node->add_input(t) || any;
  if (any) node->set_output(out);
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = binary_map(a, b, [](float x, float y) { return x + y; });
  attach(out, "add", {a, b}, [](const Tensor& g) {
    return std::vector<Tensor>{g, g};
  });
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = binary_map(a, b, [](float x, float y) { return x - y; });
  attach(out, "sub", {a, b}, [](const Tensor& g) {
    return std::vector<Tensor>{g, mul_scalar(g.detach(), -1.0f)};
  });
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = binary_map(a, b, [](float x, float y) { return x * y; });
  // Save handles (shares storage, PyTorch-style) — keeps operands alive
  // until backward without copying.
  attach(out, "mul", {a, b}, [a, b](const Tensor& g) {
    NoGradGuard ng;
    return std::vector<Tensor>{mul(g, b), mul(g, a)};
  });
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out = unary_map(a, [s](float x) { return x + s; });
  attach(out, "add_scalar", {a},
         [](const Tensor& g) { return std::vector<Tensor>{g}; });
  return out;
}

Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out = unary_map(a, [s](float x) { return x * s; });
  attach(out, "mul_scalar", {a}, [s](const Tensor& g) {
    NoGradGuard ng;
    return std::vector<Tensor>{mul_scalar(g, s)};
  });
  return out;
}

Tensor div(const Tensor& a, const Tensor& b) {
  Tensor out = binary_map(a, b, [](float x, float y) { return x / y; });
  attach(out, "div", {a, b}, [a, b](const Tensor& g) {
    NoGradGuard ng;
    // d(a/b)/da = 1/b ; d(a/b)/db = -a/b².
    Tensor ga = div(g, b);
    Tensor gb = binary_map(a, b, [](float x, float y) { return -x / (y * y); });
    return std::vector<Tensor>{ga, mul(g, gb)};
  });
  return out;
}

Tensor scale(const Tensor& x, const Tensor& scalar) {
  STG_CHECK(scalar.defined() && scalar.numel() == 1,
            "scale expects a one-element scalar tensor");
  const float s = scalar.item();
  Tensor out = unary_map(x, [s](float v) { return v * s; });
  attach(out, "scale", {x, scalar}, [x, scalar](const Tensor& g) {
    NoGradGuard ng;
    Tensor gx = mul_scalar(g, scalar.item());
    // grad wrt the scalar = <g, x>.
    Tensor gs = sum(mul(g, x));
    return std::vector<Tensor>{gx, reshape(gs, scalar.shape())};
  });
  return out;
}

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  STG_CHECK(x.dim() == 2 && bias.dim() == 1 && bias.size(0) == x.cols(),
            "add_bias expects x [N,F] and bias [F], got ",
            shape_str(x.shape()), " and ", shape_str(bias.shape()));
  Tensor out = Tensor::empty(x.shape());
  ProfileScope prof(OpClass::kElementwise,
                    static_cast<uint64_t>(out.numel()) * sizeof(float));
  const float* px = x.data();
  const float* pb = bias.data();
  float* po = out.data();
  const std::size_t f = static_cast<std::size_t>(x.cols());
  device::parallel_for_ranges(
      static_cast<std::size_t>(x.rows()), [&](std::size_t b, std::size_t e) {
        for (std::size_t r = b; r < e; ++r)
          for (std::size_t c = 0; c < f; ++c)
            po[r * f + c] = px[r * f + c] + pb[c];
      });
  const int64_t fcols = x.cols();
  attach(out, "add_bias", {x, bias}, [fcols](const Tensor& g) {
    // grad_bias = column sums of g.
    Tensor gb = Tensor::zeros({fcols});
    const float* pg = g.data();
    float* pgb = gb.data();
    const std::size_t f2 = static_cast<std::size_t>(fcols);
    const std::size_t rows = static_cast<std::size_t>(g.rows());
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < f2; ++c) pgb[c] += pg[r * f2 + c];
    return std::vector<Tensor>{g, gb};
  });
  return out;
}

Tensor one_minus(const Tensor& x) {
  Tensor out = unary_map(x, [](float v) { return 1.0f - v; });
  attach(out, "one_minus", {x}, [](const Tensor& g) {
    NoGradGuard ng;
    return std::vector<Tensor>{mul_scalar(g, -1.0f)};
  });
  return out;
}

Tensor sigmoid(const Tensor& x) {
  // Stable formula shared with the fused interpreter (tensor/ew_scalar.hpp).
  Tensor out = unary_map(x, ewmath::sigmoid, OpClass::kActivation);
  // Save the input handle and recompute σ at backward time: saving the
  // output handle inside its own grad node would create an ownership
  // cycle, and a detached copy would double activation memory.
  attach(out, "sigmoid", {x}, [x](const Tensor& g) {
    NoGradGuard ng;
    Tensor d = binary_map(
        x, g,
        [](float v, float gg) {
          const float y = ewmath::sigmoid(v);
          return gg * y * (1.0f - y);
        },
        OpClass::kActivation);
    return std::vector<Tensor>{d};
  });
  return out;
}

Tensor tanh_op(const Tensor& x) {
  Tensor out = unary_map(
      x, [](float v) { return std::tanh(v); }, OpClass::kActivation);
  attach(out, "tanh", {x}, [x](const Tensor& g) {
    NoGradGuard ng;
    Tensor d = binary_map(
        x, g,
        [](float v, float gg) {
          const float y = std::tanh(v);
          return gg * (1.0f - y * y);
        },
        OpClass::kActivation);
    return std::vector<Tensor>{d};
  });
  return out;
}

Tensor relu(const Tensor& x) {
  Tensor out = unary_map(x, ewmath::relu, OpClass::kActivation);
  attach(out, "relu", {x}, [x](const Tensor& g) {
    NoGradGuard ng;
    Tensor d = binary_map(
        x, g, [](float v, float gg) { return v > 0 ? gg : 0.0f; },
        OpClass::kActivation);
    return std::vector<Tensor>{d};
  });
  return out;
}

Tensor leaky_relu(const Tensor& x, float slope) {
  Tensor out = unary_map(
      x, [slope](float v) { return ewmath::leaky_relu(v, slope); },
      OpClass::kActivation);
  attach(out, "leaky_relu", {x}, [x, slope](const Tensor& g) {
    NoGradGuard ng;
    Tensor d = binary_map(
        x, g,
        [slope](float v, float gg) { return v > 0 ? gg : slope * gg; },
        OpClass::kActivation);
    return std::vector<Tensor>{d};
  });
  return out;
}

Tensor exp_op(const Tensor& x) {
  Tensor out = unary_map(
      x, [](float v) { return std::exp(v); }, OpClass::kActivation);
  attach(out, "exp", {x}, [x](const Tensor& g) {
    NoGradGuard ng;
    Tensor d = binary_map(
        x, g, [](float v, float gg) { return gg * std::exp(v); },
        OpClass::kActivation);
    return std::vector<Tensor>{d};
  });
  return out;
}

Tensor softmax(const Tensor& x) {
  STG_CHECK(x.dim() == 1 && x.numel() > 0, "softmax expects a rank-1 tensor");
  // Stable softmax: shift by the max.
  float mx = x.at(0);
  for (int64_t i = 1; i < x.numel(); ++i) mx = std::max(mx, x.at(i));
  Tensor out = unary_map(
      x, [mx](float v) { return std::exp(v - mx); }, OpClass::kActivation);
  float denom = 0;
  for (int64_t i = 0; i < out.numel(); ++i) denom += out.data()[i];
  for (int64_t i = 0; i < out.numel(); ++i) out.data()[i] /= denom;
  Tensor saved = out.detach();
  attach(out, "softmax", {x}, [saved](const Tensor& g) {
    NoGradGuard ng;
    // dL/dx_i = y_i (g_i - Σ_j g_j y_j).
    double dot = 0;
    for (int64_t j = 0; j < saved.numel(); ++j)
      dot += static_cast<double>(g.at(j)) * saved.at(j);
    Tensor gx = binary_map(saved, g, [dot](float y, float gg) {
      return y * (gg - static_cast<float>(dot));
    });
    return std::vector<Tensor>{gx};
  });
  return out;
}

Tensor element(const Tensor& x, int64_t index) {
  STG_CHECK(x.dim() == 1 && index >= 0 && index < x.numel(),
            "element(", index, ") on ", shape_str(x.shape()));
  Tensor out = Tensor::full({1}, x.at(index));
  const int64_t n = x.numel();
  attach(out, "element", {x}, [n, index](const Tensor& g) {
    Tensor gx = Tensor::zeros({n});
    gx.data()[index] = g.item();
    return std::vector<Tensor>{gx};
  });
  return out;
}

using detail::gemm;  // tensor/gemm.cpp — its own TU, default FP contraction

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  Tensor out = gemm(a, b, trans_a, trans_b);
  attach(out, "matmul", {a, b}, [a, b, trans_a, trans_b](const Tensor& g) {
    NoGradGuard ng;
    // C = op(A) op(B); standard transpose-case table for dA and dB.
    Tensor ga, gb;
    if (!trans_a) {
      ga = trans_b ? gemm(g, b, false, false) : gemm(g, b, false, true);
    } else {
      ga = trans_b ? gemm(b, g, true, true) : gemm(b, g, false, true);
    }
    if (!trans_b) {
      gb = trans_a ? gemm(a, g, false, false) : gemm(a, g, true, false);
    } else {
      gb = trans_a ? gemm(g, a, true, true) : gemm(g, a, true, false);
    }
    return std::vector<Tensor>{ga, gb};
  });
  return out;
}

Tensor cat_cols(const Tensor& a, const Tensor& b) {
  STG_CHECK(a.dim() == 2 && b.dim() == 2 && a.rows() == b.rows(),
            "cat_cols needs matching row counts: ", shape_str(a.shape()),
            " vs ", shape_str(b.shape()));
  const int64_t n = a.rows(), fa = a.cols(), fb = b.cols();
  Tensor out = Tensor::empty({n, fa + fb});
  profile_record(OpClass::kShape,
                 static_cast<uint64_t>(out.numel()) * sizeof(float));
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  device::parallel_for_ranges(
      static_cast<std::size_t>(n), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          std::copy(pa + r * fa, pa + (r + 1) * fa, po + r * (fa + fb));
          std::copy(pb + r * fb, pb + (r + 1) * fb, po + r * (fa + fb) + fa);
        }
      });
  attach(out, "cat_cols", {a, b}, [n, fa, fb](const Tensor& g) {
    NoGradGuard ng;
    return std::vector<Tensor>{slice_cols(g, 0, fa),
                               slice_cols(g, fa, fa + fb)};
  });
  return out;
}

Tensor slice_cols(const Tensor& x, int64_t begin, int64_t end) {
  STG_CHECK(x.dim() == 2 && begin >= 0 && begin <= end && end <= x.cols(),
            "slice_cols [", begin, ",", end, ") on ", shape_str(x.shape()));
  const int64_t n = x.rows(), f = x.cols(), w = end - begin;
  Tensor out = Tensor::empty({n, w});
  profile_record(OpClass::kShape,
                 static_cast<uint64_t>(out.numel()) * sizeof(float));
  const float* px = x.data();
  float* po = out.data();
  device::parallel_for_ranges(
      static_cast<std::size_t>(n), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r)
          std::copy(px + r * f + begin, px + r * f + end, po + r * w);
      });
  attach(out, "slice_cols", {x}, [n, f, begin, w](const Tensor& g) {
    Tensor gx = Tensor::zeros({n, f});
    const float* pg = g.data();
    float* pgx = gx.data();
    for (int64_t r = 0; r < n; ++r)
      std::copy(pg + r * w, pg + (r + 1) * w, pgx + r * f + begin);
    return std::vector<Tensor>{gx};
  });
  return out;
}

Tensor slice_rows(const Tensor& x, int64_t begin, int64_t end) {
  STG_CHECK(x.dim() == 2 && begin >= 0 && begin <= end && end <= x.rows(),
            "slice_rows [", begin, ",", end, ") on ", shape_str(x.shape()));
  const int64_t f = x.cols(), h = end - begin;
  Tensor out = Tensor::empty({h, f});
  profile_record(OpClass::kShape,
                 static_cast<uint64_t>(out.numel()) * sizeof(float));
  std::copy(x.data() + begin * f, x.data() + end * f, out.data());
  const int64_t rows = x.rows();
  attach(out, "slice_rows", {x}, [rows, f, begin, h](const Tensor& g) {
    Tensor gx = Tensor::zeros({rows, f});
    std::copy(g.data(), g.data() + h * f, gx.data() + begin * f);
    return std::vector<Tensor>{gx};
  });
  return out;
}

Tensor gather_rows(const Tensor& x, const std::vector<uint32_t>& index) {
  STG_CHECK(x.dim() == 2, "gather_rows needs a rank-2 tensor");
  const int64_t f = x.cols();
  const int64_t m = static_cast<int64_t>(index.size());
  Tensor out = Tensor::empty({m, f});
  profile_record(OpClass::kShape,
                 static_cast<uint64_t>(out.numel()) * sizeof(float));
  const float* px = x.data();
  float* po = out.data();
  device::parallel_for_ranges(
      static_cast<std::size_t>(m), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          STG_DCHECK(index[r] < static_cast<uint32_t>(x.rows()),
                     "gather_rows index out of range");
          std::copy(px + index[r] * f, px + (index[r] + 1) * f, po + r * f);
        }
      });
  const int64_t rows = x.rows();
  std::vector<uint32_t> idx = index;
  attach(out, "gather_rows", {x}, [rows, f, idx](const Tensor& g) {
    Tensor gx = Tensor::zeros({rows, f});
    const float* pg = g.data();
    float* pgx = gx.data();
    for (size_t r = 0; r < idx.size(); ++r)
      for (int64_t c = 0; c < f; ++c) pgx[idx[r] * f + c] += pg[r * f + c];
    return std::vector<Tensor>{gx};
  });
  return out;
}

Tensor reshape(const Tensor& x, Shape new_shape) {
  int64_t n = 1;
  for (int64_t d : new_shape) n *= d;
  STG_CHECK(n == x.numel(), "reshape to ", shape_str(new_shape),
            " from ", x.numel(), " elements");
  Tensor out = Tensor::empty(new_shape);
  profile_record(OpClass::kShape,
                 static_cast<uint64_t>(out.numel()) * sizeof(float));
  std::copy(x.data(), x.data() + x.numel(), out.data());
  Shape old = x.shape();
  attach(out, "reshape", {x}, [old](const Tensor& g) {
    NoGradGuard ng;
    return std::vector<Tensor>{reshape(g, old)};
  });
  return out;
}

Tensor sum(const Tensor& x) {
  ProfileScope prof(OpClass::kReduction, sizeof(float));
  const double total = device::parallel_reduce_sum(
      static_cast<std::size_t>(x.numel()),
      [p = x.data()](std::size_t i) { return static_cast<double>(p[i]); });
  Tensor out = Tensor::full({1}, static_cast<float>(total));
  Shape sh = x.shape();
  attach(out, "sum", {x}, [sh](const Tensor& g) {
    return std::vector<Tensor>{Tensor::full(sh, g.item())};
  });
  return out;
}

Tensor mean(const Tensor& x) {
  const int64_t n = x.numel();
  STG_CHECK(n > 0, "mean of empty tensor");
  Tensor s = sum(x);
  return mul_scalar(s, 1.0f / static_cast<float>(n));
}

Tensor row_sum(const Tensor& x) {
  STG_CHECK(x.dim() == 2, "row_sum needs a rank-2 tensor");
  const int64_t n = x.rows(), f = x.cols();
  Tensor out = Tensor::empty({n});
  ProfileScope prof(OpClass::kReduction,
                    static_cast<uint64_t>(n) * sizeof(float));
  const float* px = x.data();
  float* po = out.data();
  device::parallel_for_ranges(
      static_cast<std::size_t>(n), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          float acc = 0.0f;
          for (int64_t c = 0; c < f; ++c) acc += px[r * f + c];
          po[r] = acc;
        }
      });
  attach(out, "row_sum", {x}, [n, f](const Tensor& g) {
    Tensor gx = Tensor::empty({n, f});
    const float* pg = g.data();
    float* pgx = gx.data();
    for (int64_t r = 0; r < n; ++r)
      for (int64_t c = 0; c < f; ++c) pgx[r * f + c] = pg[r];
    return std::vector<Tensor>{gx};
  });
  return out;
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  STG_CHECK(same_shape(pred, target), "mse_loss shape mismatch: ",
            shape_str(pred.shape()), " vs ", shape_str(target.shape()));
  const std::size_t n = static_cast<std::size_t>(pred.numel());
  ProfileScope prof(OpClass::kReduction, sizeof(float));
  const float* pp = pred.data();
  const float* pt = target.data();
  const double total = device::parallel_reduce_sum(n, [&](std::size_t i) {
    const double d = static_cast<double>(pp[i]) - pt[i];
    return d * d;
  });
  Tensor out = Tensor::full({1}, static_cast<float>(total / n));
  attach(out, "mse_loss", {pred}, [pred, target, n](const Tensor& g) {
    NoGradGuard ng;
    const float scale = 2.0f * g.item() / static_cast<float>(n);
    Tensor gp = binary_map(pred, target, [scale](float p, float t) {
      return scale * (p - t);
    });
    return std::vector<Tensor>{gp};
  });
  return out;
}

Tensor bce_with_logits_loss(const Tensor& logits, const Tensor& targets) {
  STG_CHECK(same_shape(logits, targets), "bce loss shape mismatch: ",
            shape_str(logits.shape()), " vs ", shape_str(targets.shape()));
  const std::size_t n = static_cast<std::size_t>(logits.numel());
  ProfileScope prof(OpClass::kReduction, sizeof(float));
  const float* pz = logits.data();
  const float* py = targets.data();
  const double total = device::parallel_reduce_sum(n, [&](std::size_t i) {
    // Stable form: max(z,0) - z y + log1p(exp(-|z|)).
    const double z = pz[i], y = py[i];
    return std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::abs(z)));
  });
  Tensor out = Tensor::full({1}, static_cast<float>(total / n));
  attach(out, "bce_with_logits", {logits}, [logits, targets, n](const Tensor& g) {
    NoGradGuard ng;
    const float scale = g.item() / static_cast<float>(n);
    Tensor gz = binary_map(logits, targets, [scale](float z, float y) {
      return scale * (ewmath::sigmoid(z) - y);
    });
    return std::vector<Tensor>{gz};
  });
  return out;
}

Tensor dropout(const Tensor& x, float p, Rng& rng, bool training) {
  STG_CHECK(p >= 0.0f && p < 1.0f, "dropout probability must be in [0, 1)");
  if (!training || p == 0.0f) return x;
  Tensor mask = Tensor::empty(x.shape());
  float* pm = mask.data();
  const float keep = 1.0f - p;
  for (int64_t i = 0; i < x.numel(); ++i)
    pm[i] = rng.bernoulli(keep) ? 1.0f / keep : 0.0f;  // inverted dropout
  return mul(x, mask);
}

}  // namespace stgraph::ops
