// Figure 7: per-epoch time vs feature size on the five DTDGs at 5%
// snapshot change — STGraph-Naive vs STGraph-GPMA vs PyG-T. Expected
// shape: Naive fastest; GPMA behind PyG-T at small F (graph-update time
// dominates) and crossing over as F grows; crossover earlier on denser
// datasets (sx-mathoverflow, reddit-title).
#include <iostream>

#include "common.hpp"

using namespace stgraph;
using namespace stgraph::bench;

int main(int argc, char** argv) {
  BenchOptions opts = parse_options(argc, argv);

  datasets::DynamicLoadOptions dyo;
  dyo.scale = opts.scale_dynamic;

  CsvWriter csv({"dataset", "feature_size", "naive_epoch_s", "gpma_epoch_s",
                 "pygt_epoch_s", "naive_speedup", "gpma_speedup"});

  for (const auto& ds : datasets::load_all_dynamic(dyo)) {
    const DtdgEvents events = datasets::make_dtdg(ds, /*percent_change=*/5.0);
    for (int64_t F : feature_sweep(opts)) {
      dyo.feature_size = F;
      const datasets::TemporalSignal signal =
          datasets::make_dynamic_signal(events, dyo);
      const RunResult naive =
          run_dtdg(events, signal, System::kStgraphNaive, opts);
      const RunResult gpma =
          run_dtdg(events, signal, System::kStgraphGpma, opts);
      const RunResult pygt = run_dtdg(events, signal, System::kPygt, opts);
      csv.add_row(
          {ds.name, std::to_string(F),
           CsvWriter::fmt(naive.per_epoch_seconds, 4),
           CsvWriter::fmt(gpma.per_epoch_seconds, 4),
           CsvWriter::fmt(pygt.per_epoch_seconds, 4),
           CsvWriter::fmt(
               pygt.per_epoch_seconds / std::max(naive.per_epoch_seconds, 1e-9),
               2),
           CsvWriter::fmt(
               pygt.per_epoch_seconds / std::max(gpma.per_epoch_seconds, 1e-9),
               2)});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  emit("fig7_dtdg_time_vs_feature", csv, opts);
  return 0;
}
