// Vertex reordering for memory locality. The paper's §V-B motivates
// STGraph's auxiliary node_ids array by how *expensive* full relabelling
// is on dynamic graphs (feature rows would have to be permuted per
// snapshot); this module provides the relabelling machinery for the
// static case where it IS worthwhile — preprocess once, then every
// gather in every epoch touches memory in a friendlier order:
//
//   * bfs_order      — breadth-first layering from a pseudo-peripheral
//                      seed (good baseline locality),
//   * rcm_order      — reverse Cuthill–McKee: BFS with degree-sorted
//                      tie-breaking, reversed; the classic bandwidth
//                      reducer,
//   * apply_permutation / relabel_edges — rewrite an edge list (and
//                      feature matrices) under a new vertex numbering.
//
// The locality effect is measured by bench_micro_kernels' reordering
// ablation; correctness (permutation round-trips, invariance of training
// results) is covered in tests/test_reorder.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dtdg.hpp"
#include "tensor/tensor.hpp"

namespace stgraph {

/// order[new_id] = old_id. Every vertex appears exactly once; isolated
/// vertices are appended in id order.
using VertexOrder = std::vector<uint32_t>;

/// Breadth-first order over the undirected view of `edges`, started from
/// a pseudo-peripheral vertex of each connected component.
VertexOrder bfs_order(uint32_t num_nodes, const EdgeList& edges);

/// Reverse Cuthill–McKee order (BFS + ascending-degree neighbor
/// expansion, then reversed).
VertexOrder rcm_order(uint32_t num_nodes, const EdgeList& edges);

/// Inverse permutation: perm[old_id] = new_id for an order array.
std::vector<uint32_t> inverse_order(const VertexOrder& order);

/// Relabel an edge list under `order` (order[new] = old).
EdgeList relabel_edges(const EdgeList& edges, const VertexOrder& order);

/// Permute the rows of a [N, F] feature tensor: out[new] = x[order[new]].
Tensor permute_rows(const Tensor& x, const VertexOrder& order);

/// Mean |new(u) - new(v)| over edges — the locality figure of merit the
/// orderings minimize (proportional to expected gather distance).
double mean_edge_span(uint32_t num_nodes, const EdgeList& edges);

/// Split [0, weights.size()) into `parts` contiguous ranges of near-equal
/// total weight (the range-partitioner primitive behind vertex sharding,
/// graph/shard.hpp). Returns parts+1 monotone bounds with bounds[0] = 0 and
/// bounds[parts] = weights.size(); range p is [bounds[p], bounds[p+1]) and
/// may be empty when parts exceeds the number of positive-weight items.
/// Cut points are the smallest prefixes reaching p/parts of the total
/// weight, so the result is deterministic for a given weight vector.
std::vector<uint32_t> balanced_ranges(const std::vector<uint64_t>& weights,
                                      uint32_t parts);

}  // namespace stgraph
