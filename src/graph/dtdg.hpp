// Discrete-time dynamic graph event representation: a base edge set plus,
// per subsequent timestamp, the edge additions and deletions that turn
// snapshot t-1 into snapshot t. This is the on-disk/preprocessed format
// both NaiveGraph (which materializes every snapshot) and GPMAGraph (which
// replays deltas into the PMA on demand) are constructed from.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace stgraph {

using EdgeList = std::vector<std::pair<uint32_t, uint32_t>>;

/// Additions/deletions turning snapshot t-1 into snapshot t.
struct EdgeDelta {
  EdgeList additions;
  EdgeList deletions;
};

/// Full DTDG description. timestamps = 1 + deltas.size().
struct DtdgEvents {
  uint32_t num_nodes = 0;
  EdgeList base_edges;             // snapshot 0
  std::vector<EdgeDelta> deltas;   // deltas[t-1] produces snapshot t

  uint32_t num_timestamps() const {
    return static_cast<uint32_t>(deltas.size()) + 1;
  }

  /// Materialize the edge set of snapshot t by replaying deltas (host-side;
  /// used by NaiveGraph preprocessing and by tests as ground truth).
  EdgeList snapshot_edges(uint32_t t) const;

  /// Mean |delta| / |snapshot| over all deltas — the "percentage change"
  /// knob of Figures 8/9.
  double mean_percent_change() const;
};

/// Build a DtdgEvents from a timestamped edge stream using the paper's
/// windowing rule: the first snapshot is the first `initial_fraction` of
/// the stream; subsequent snapshots slide the window so each consecutive
/// pair differs by `percent_change` of the window size (additions of new
/// edges at the head, deletions of the oldest at the tail).
DtdgEvents window_edge_stream(
    uint32_t num_nodes,
    const std::vector<std::pair<uint32_t, uint32_t>>& stream,
    double percent_change, double initial_fraction = 0.5);

}  // namespace stgraph
