// stgraph_check — standalone structural auditor for every on-disk STGraph
// artifact. Sniffs the 4-byte magic, loads the file with the production
// readers, then runs the verify:: invariant analyzers over everything the
// artifact implies:
//
//   STGS (static-temporal dataset) — build a StaticTemporalGraph from the
//        edges and check its snapshot view; check the signal for NaNs.
//   STGD (DTDG event set)          — build BOTH DTDG formats (NaiveGraph,
//        GPMAGraph) and sweep every timestamp, including the PMA
//        cross-checks and a backward roll to t=0.
//   STGC (model checkpoint)        — module-free tensor read; names
//        unique, shapes non-degenerate, values finite.
//   STGT (training-run state)      — CRC-validated load; parameters,
//        moments and hidden state finite, moment arrays aligned.
//   STGW (serving write-ahead log) — per-record CRC framing, a start
//        record first, time advancing by one and version strictly
//        monotonic, torn-tail detection.
//
// Under STGRAPH_DEADLOCK=1 the concurrency analyzer (runtime/analyze.hpp)
// is armed for the run, and its findings — lock-order cycles and
// blocking-while-locked hazards observed while the production readers and
// graph builders exercised their worker threads — are folded into the same
// exit gate as the structural checkers.
//
// Exit status: 0 when every invariant holds, 1 on violations, 2 on
// usage/man I/O errors. Intended both as a debugging tool and as the CI
// hook behind `run_all.sh validate`.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/naive_graph.hpp"
#include "graph/static_graph.hpp"
#include "io/serialize.hpp"
#include "io/train_state.hpp"
#include "runtime/analyze.hpp"
#include "serve/wal.hpp"
#include "util/check.hpp"
#include "verify/invariants.hpp"

namespace {

using namespace stgraph;

constexpr uint32_t kMagicStatic = 0x53544753;  // "STGS"
constexpr uint32_t kMagicDtdg = 0x53544744;    // "STGD"
constexpr uint32_t kMagicCkpt = 0x53544743;    // "STGC"
constexpr uint32_t kMagicTrain = 0x53544754;   // "STGT"
constexpr uint32_t kMagicWal = 0x53544757;     // "STGW"

uint32_t sniff_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw StgError("cannot open '" + path + "'");
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in.good())
    throw StgError("'" + path + "' is shorter than a 4-byte magic");
  return magic;
}

void check_finite(verify::Report& r, const Tensor& t, const std::string& what) {
  r.note_check();
  const float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i)
    if (!std::isfinite(p[i])) {
      r.fail("check_finite", what + " holds a non-finite value at flat index " +
                                 std::to_string(i));
      return;
    }
}

verify::Report audit_static(const std::string& path) {
  const datasets::StaticTemporalDataset ds = io::load_static_dataset(path);
  std::printf("STGS static-temporal dataset '%s': %u nodes, %zu edges, %u "
              "timestamps\n",
              ds.name.c_str(), ds.num_nodes, ds.edges.size(),
              ds.num_timestamps);
  StaticTemporalGraph g(ds.num_nodes, ds.edges, ds.num_timestamps);
  verify::Report r = verify::check_graph(g);
  for (uint32_t t = 0; t < ds.num_timestamps && t < ds.signal.features.size();
       ++t)
    check_finite(r, ds.signal.features[t], "signal t=" + std::to_string(t));
  return r;
}

verify::Report audit_dtdg(const std::string& path) {
  const DtdgEvents events = io::load_dtdg(path);
  std::printf("STGD event set: %u nodes, %zu base edges, %u timestamps\n",
              events.num_nodes, events.base_edges.size(),
              events.num_timestamps());
  verify::Report r;
  {
    NaiveGraph naive(events);
    r.merge(verify::check_graph(naive));
  }
  {
    GpmaGraph gpma(events);
    r.merge(verify::check_graph(gpma));
  }
  return r;
}

verify::Report audit_checkpoint(const std::string& path) {
  const auto tensors = io::load_checkpoint_tensors(path);
  std::printf("STGC checkpoint: %zu parameter tensors\n", tensors.size());
  verify::Report r;
  std::vector<std::string> seen;
  for (const auto& [name, t] : tensors) {
    r.note_check();
    for (const std::string& s : seen)
      if (s == name)
        r.fail("audit_checkpoint", "duplicate parameter name '" + name + "'");
    seen.push_back(name);
    if (t.numel() <= 0)
      r.fail("audit_checkpoint", "parameter '" + name + "' is empty");
    check_finite(r, t, "parameter '" + name + "'");
  }
  return r;
}

verify::Report audit_train_state(const std::string& path) {
  const io::TrainState st = io::load_train_state(path);
  std::printf("STGT train state: epoch %u, next sequence %u, %zu parameters, "
              "lr %g\n",
              st.epoch, st.next_sequence, st.params.size(), st.lr);
  verify::Report r;
  r.note_check();
  if (st.moment1.size() != st.params.size() ||
      st.moment2.size() != st.params.size())
    r.fail("audit_train_state",
           "optimizer moments misaligned: " + std::to_string(st.params.size()) +
               " params vs " + std::to_string(st.moment1.size()) + "/" +
               std::to_string(st.moment2.size()) + " moment tensors");
  r.note_check();
  if (!std::isfinite(st.lr) || st.lr < 0.0f)
    r.fail("audit_train_state",
           "learning rate is " + std::to_string(st.lr));
  for (const nn::Parameter& p : st.params)
    check_finite(r, p.tensor, "parameter '" + p.name + "'");
  for (std::size_t i = 0; i < st.moment1.size(); ++i)
    check_finite(r, st.moment1[i], "moment1[" + std::to_string(i) + "]");
  for (std::size_t i = 0; i < st.moment2.size(); ++i)
    check_finite(r, st.moment2[i], "moment2[" + std::to_string(i) + "]");
  if (st.hidden.numel() > 0) check_finite(r, st.hidden, "carried hidden state");
  return r;
}

verify::Report audit_wal(const std::string& path) {
  const serve::wal::ReadResult rr = serve::wal::read(path);
  std::printf("STGW write-ahead log: %zu records, %llu/%llu valid bytes%s\n",
              rr.records.size(),
              static_cast<unsigned long long>(rr.valid_bytes),
              static_cast<unsigned long long>(rr.total_bytes),
              rr.torn_tail ? " (torn tail)" : "");
  return verify::check_wal(path);
}

int run(const std::string& path) {
  const uint32_t magic = sniff_magic(path);
  verify::Report r;
  switch (magic) {
    case kMagicStatic: r = audit_static(path); break;
    case kMagicDtdg: r = audit_dtdg(path); break;
    case kMagicCkpt: r = audit_checkpoint(path); break;
    case kMagicTrain: r = audit_train_state(path); break;
    case kMagicWal: r = audit_wal(path); break;
    default:
      throw StgError("'" + path + "' has unknown magic 0x" + [&] {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%08X", magic);
        return std::string(buf);
      }() + " (expected STGS, STGD, STGC, STGT or STGW)");
  }
  std::printf("%s: %s\n", path.c_str(), r.to_string().c_str());
  return r.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: stgraph_check <file>...\n"
                 "  audits STGraph binary artifacts (datasets, DTDG event "
                 "sets, checkpoints,\n  training states, serving WALs) "
                 "against the structural invariant\n  analyzers in "
                 "src/verify/\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    try {
      rc = std::max(rc, run(argv[i]));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "stgraph_check: %s\n", e.what());
      rc = 2;
    }
  }
  // Armed runs audit the auditors: the worker threads the loads spun up
  // (GPMA pipeline, thread pool) ran under the lock-order analyzer, and
  // its findings gate the exit status like any structural violation.
  if (stgraph::analyze::armed()) {
    const stgraph::verify::Report cr = stgraph::analyze::as_report();
    std::printf("concurrency: %s\n", cr.to_string().c_str());
    if (!cr.ok()) rc = std::max(rc, 1);
  }
  return rc;
}
