#include "graph/naive_graph.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "util/check.hpp"
#include "verify/invariants.hpp"
#include "verify/validate.hpp"

namespace stgraph {

NaiveGraph::NaiveGraph(const DtdgEvents& events)
    : num_nodes_(events.num_nodes) {
  snapshots_.reserve(events.num_timestamps());
  for (uint32_t t = 0; t < events.num_timestamps(); ++t) {
    // Edges are relabelled 0..m_t-1 per snapshot; the paper notes this
    // preprocessing cost (and the double storage) as NaiveGraph's downside.
    const EdgeList edges = events.snapshot_edges(t);
    std::vector<CooEdge> coo;
    coo.reserve(edges.size());
    uint32_t eid = 0;
    for (const auto& [s, d] : edges) coo.push_back({s, d, eid++});
    snapshots_.push_back(build_snapshot(num_nodes_, coo));
  }
}

void NaiveGraph::append_delta(const EdgeDelta& delta) {
  STG_CHECK(!snapshots_.empty(), "cannot append to an empty NaiveGraph");
  // Recover the head snapshot's edge set from its out-CSR (rows = src,
  // cols ascending because the constructor sorts each snapshot's edges).
  const GraphSnapshot& prev = snapshots_.back();
  std::unordered_set<uint64_t> present;
  present.reserve(prev.num_edges * 2);
  {
    const uint32_t* ro = prev.out_csr.row_offset.data();
    const uint32_t* pc = prev.out_csr.col_indices.data();
    for (uint32_t s = 0; s < num_nodes_; ++s)
      for (uint32_t j = ro[s]; j < ro[s + 1]; ++j)
        present.insert((static_cast<uint64_t>(s) << 32) | pc[j]);
  }
  for (const auto& [s, d] : delta.deletions) {
    STG_CHECK(s < num_nodes_ && d < num_nodes_,
              "appended delta deletes edge (", s, ",", d, ") outside the ",
              num_nodes_, "-node graph");
    STG_CHECK(present.erase((static_cast<uint64_t>(s) << 32) | d) == 1,
              "appended delta deletes non-existent edge (", s, ",", d, ")");
  }
  for (const auto& [s, d] : delta.additions) {
    STG_CHECK(s < num_nodes_ && d < num_nodes_, "appended delta adds edge (",
              s, ",", d, ") outside the ", num_nodes_, "-node graph");
    STG_CHECK(present.insert((static_cast<uint64_t>(s) << 32) | d).second,
              "appended delta re-adds existing edge (", s, ",", d, ")");
  }

  // Same deterministic labelling as the constructor: edges sorted by
  // (src, dst), eids 0..m-1 in that order.
  EdgeList edges;
  edges.reserve(present.size());
  for (uint64_t key : present)
    edges.emplace_back(static_cast<uint32_t>(key >> 32),
                       static_cast<uint32_t>(key & 0xFFFFFFFFu));
  std::sort(edges.begin(), edges.end());
  std::vector<CooEdge> coo;
  coo.reserve(edges.size());
  uint32_t eid = 0;
  for (const auto& [s, d] : edges) coo.push_back({s, d, eid++});
  GraphSnapshot snap = build_snapshot(num_nodes_, coo);
  snapshots_.push_back(std::move(snap));  // commit point

  // STGRAPH_VALIDATE: audit the newly materialized snapshot before it can
  // serve a request.
  if (verify::validation_enabled()) {
    const uint32_t t = static_cast<uint32_t>(snapshots_.size()) - 1;
    verify::require_ok(verify::check_snapshot_view(get_graph(t)),
                       "NaiveGraph::append_delta(t=" + std::to_string(t) +
                           ")");
  }
}

uint32_t NaiveGraph::num_edges_at(uint32_t t) const {
  return snapshot(t).num_edges;
}

const GraphSnapshot& NaiveGraph::snapshot(uint32_t t) const {
  STG_CHECK(t < snapshots_.size(), "timestamp ", t, " out of range ",
            snapshots_.size());
  return snapshots_[t];
}

SnapshotView NaiveGraph::get_graph(uint32_t t) {
  const GraphSnapshot& s = snapshot(t);
  SnapshotView v;
  v.in_view = view_of(s.in_csr);
  v.out_view = view_of(s.out_csr);
  v.in_degrees = s.in_degrees.data();
  v.out_degrees = s.out_degrees.data();
  v.gcn_coef = s.gcn_coef.empty() ? nullptr : s.gcn_coef.data();
  v.num_nodes = s.num_nodes;
  v.num_edges = s.num_edges;
  return v;
}

SnapshotView NaiveGraph::get_backward_graph(uint32_t t) { return get_graph(t); }

std::size_t NaiveGraph::device_bytes() const {
  std::size_t total = 0;
  for (const GraphSnapshot& s : snapshots_) total += s.device_bytes();
  return total;
}

}  // namespace stgraph
