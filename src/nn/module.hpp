// Module base class — parameter registration and train/eval mode, the
// same contract PyG-T layers rely on from torch.nn.Module.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace stgraph::nn {

/// Named parameter handle.
struct Parameter {
  std::string name;
  Tensor tensor;
};

class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters, including those of registered submodules,
  /// with dotted names ("conv_z.linear.weight").
  std::vector<Parameter> parameters() const;

  void train() { set_training(true); }
  void eval() { set_training(false); }
  bool is_training() const { return training_; }

  /// Pre-order traversal of this module and every registered descendant,
  /// with dotted paths ("" for this module itself, "tgcn.conv_z" for a
  /// grandchild). Lets callers audit per-module state from the outside —
  /// the eval()-propagation regression test walks this to assert a parent
  /// eval() flipped every leaf, and serving uses it to verify a frozen
  /// model really is out of training mode.
  std::vector<std::pair<std::string, const Module*>> named_modules() const;

  void zero_grad();
  /// Total parameter count (for model summaries).
  int64_t parameter_count() const;

 protected:
  /// Register a leaf parameter (the tensor must be a requires-grad leaf).
  Tensor register_parameter(const std::string& name, Tensor t);
  /// Register a child module for recursive parameter collection.
  void register_module(const std::string& name, Module* child);

  /// Overriders must forward to Module::set_training — that call is what
  /// recurses into registered children, and a parent's eval()/train() is
  /// required to flip every descendant (dropout layers read the flag).
  virtual void set_training(bool training);

 private:
  std::vector<Parameter> own_params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace stgraph::nn
