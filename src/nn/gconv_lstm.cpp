#include "nn/gconv_lstm.hpp"

#include "compiler/fusion.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph::nn {

GConvLSTM::GConvLSTM(int64_t in_features, int64_t out_features, int k,
                     Rng& rng)
    : in_(in_features),
      out_(out_features),
      conv_xi_(in_features, out_features, k, rng),
      conv_hi_(out_features, out_features, k, rng, /*bias=*/false),
      conv_xf_(in_features, out_features, k, rng),
      conv_hf_(out_features, out_features, k, rng, /*bias=*/false),
      conv_xc_(in_features, out_features, k, rng),
      conv_hc_(out_features, out_features, k, rng, /*bias=*/false),
      conv_xo_(in_features, out_features, k, rng),
      conv_ho_(out_features, out_features, k, rng, /*bias=*/false) {
  register_module("conv_xi", &conv_xi_);
  register_module("conv_hi", &conv_hi_);
  register_module("conv_xf", &conv_xf_);
  register_module("conv_hf", &conv_hf_);
  register_module("conv_xc", &conv_xc_);
  register_module("conv_hc", &conv_hc_);
  register_module("conv_xo", &conv_xo_);
  register_module("conv_ho", &conv_ho_);
}

Tensor GConvLSTM::initial_state(int64_t num_nodes) const {
  return Tensor::zeros({num_nodes, out_});
}

std::pair<Tensor, Tensor> GConvLSTM::forward(core::TemporalExecutor& exec,
                                             const Tensor& x, const Tensor& h_in,
                                             const Tensor& c_in,
                                             const float* edge_weights) const {
  Tensor h = h_in.defined() ? h_in : initial_state(x.rows());
  Tensor c = c_in.defined() ? c_in : initial_state(x.rows());
  namespace fu = compiler::fusion;
  // Gate regions run through the fusing tape compiler (fused single-pass
  // interpreter, or node-by-node ops:: replay under STGRAPH_FUSION=off).
  Tensor i = fu::sigmoid_add(conv_xi_.forward(exec, x, edge_weights),
                             conv_hi_.forward(exec, h, edge_weights));
  Tensor f = fu::sigmoid_add(conv_xf_.forward(exec, x, edge_weights),
                             conv_hf_.forward(exec, h, edge_weights));
  Tensor g = fu::tanh_add(conv_xc_.forward(exec, x, edge_weights),
                          conv_hc_.forward(exec, h, edge_weights));
  Tensor c_next = fu::lstm_cell_state(f, c, i, g);
  Tensor o = fu::sigmoid_add(conv_xo_.forward(exec, x, edge_weights),
                             conv_ho_.forward(exec, h, edge_weights));
  Tensor h_next = fu::mul_tanh(o, c_next);
  return {h_next, c_next};
}

GConvLSTMRegressor::GConvLSTMRegressor(int64_t in_features, int64_t hidden,
                                       int k, Rng& rng)
    : hidden_(hidden), lstm_(in_features, hidden, k, rng),
      head_(hidden, 1, rng) {
  register_module("lstm", &lstm_);
  register_module("head", &head_);
}

Tensor GConvLSTMRegressor::initial_state(int64_t num_nodes) const {
  return Tensor::zeros({num_nodes, 2 * hidden_});
}

std::pair<Tensor, Tensor> GConvLSTMRegressor::step(
    core::TemporalExecutor& exec, const Tensor& x, const Tensor& state,
    const float* edge_weights) {
  STG_CHECK(state.defined() && state.cols() == 2 * hidden_,
            "packed LSTM state must be [N, 2*hidden]");
  Tensor h = ops::slice_cols(state, 0, hidden_);
  Tensor c = ops::slice_cols(state, hidden_, 2 * hidden_);
  auto [h_next, c_next] = lstm_.forward(exec, x, h, c, edge_weights);
  Tensor packed = ops::cat_cols(h_next, c_next);
  return {head_.forward(ops::relu(h_next)), packed};
}

}  // namespace stgraph::nn
