// Ready-made TGNN models on top of the layer APIs (the paper's "TGNN layer
// APIs + model building blocks" deliverable). Both benchmark tasks are
// covered:
//   * TGCNRegressor — TGCN + ReLU + Linear head, node regression with MSE
//     (the static-temporal benchmark),
//   * TGCNEncoder — TGCN producing node embeddings scored with dot
//     products, link prediction with BCE (the DTDG benchmark).
#pragma once

#include "core/executor.hpp"
#include "nn/gcn.hpp"
#include "nn/linear.hpp"
#include "nn/tgcn.hpp"

namespace stgraph::nn {

/// Interface the Algorithm-1 trainer drives: one timestep in, (output,
/// next hidden state) out.
class TemporalModel : public Module {
 public:
  virtual std::pair<Tensor, Tensor> step(core::TemporalExecutor& exec,
                                         const Tensor& x, const Tensor& h,
                                         const float* edge_weights) = 0;
  virtual Tensor initial_state(int64_t num_nodes) const = 0;
};

class TGCNRegressor final : public TemporalModel {
 public:
  TGCNRegressor(int64_t in_features, int64_t hidden, Rng& rng);
  std::pair<Tensor, Tensor> step(core::TemporalExecutor& exec, const Tensor& x,
                                 const Tensor& h,
                                 const float* edge_weights) override;
  Tensor initial_state(int64_t num_nodes) const override {
    return tgcn_.initial_state(num_nodes);
  }

 private:
  TGCN tgcn_;
  Linear head_;
};

class TGCNEncoder final : public TemporalModel {
 public:
  TGCNEncoder(int64_t in_features, int64_t hidden, Rng& rng);
  std::pair<Tensor, Tensor> step(core::TemporalExecutor& exec, const Tensor& x,
                                 const Tensor& h,
                                 const float* edge_weights) override;
  Tensor initial_state(int64_t num_nodes) const override {
    return tgcn_.initial_state(num_nodes);
  }

 private:
  TGCN tgcn_;
};

/// Dot-product link scores: logits[i] = <h[src[i]], h[dst[i]]>.
Tensor link_logits(const Tensor& h, const std::vector<uint32_t>& src,
                   const std::vector<uint32_t>& dst);

}  // namespace stgraph::nn
