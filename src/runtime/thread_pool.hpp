// Persistent worker pool backing all "kernel launches" in the CPU device
// substrate. One pool per process (like one CUDA context); workers park on
// a condition variable between launches.
//
// Thread count comes from STGRAPH_NUM_THREADS if set, otherwise
// hardware_concurrency. With a single hardware thread the pool degrades to
// inline execution (zero workers) so tests remain fast on tiny machines.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace stgraph {

class ThreadPool {
 public:
  /// The process-wide pool.
  static ThreadPool& instance();

  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel lanes = workers + the calling thread.
  unsigned lanes() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// True on a thread currently executing inside a pool launch (any lane,
  /// including lane 0 on the launching thread). Nested launches from such a
  /// thread run inline on one lane only, so grid math (chunk sizing, stride
  /// counts) MUST use an effective lane count of 1 — see
  /// device::lane_count() and the parallel_for* primitives, which all check
  /// this flag. Using lanes() directly for chunk sizing inside a pool job
  /// silently drops work.
  static bool on_pool_lane() { return in_pool_job_; }

  /// Marks the current thread as a pool lane for the guard's lifetime, so
  /// every parallel_for* it issues runs serially inline (1 effective lane)
  /// and never touches the pool's launch protocol. run_on_lanes_raw is a
  /// single-launcher protocol (generation_/pending_ handshake): two threads
  /// launching concurrently corrupt the rendezvous. Auxiliary threads that
  /// must run pool-using code concurrently with the main thread (the GPMA
  /// pipeline prefetch worker) wrap their work in a ScopedInline instead.
  class ScopedInline {
   public:
    ScopedInline() : prev_(in_pool_job_) { in_pool_job_ = true; }
    ~ScopedInline() { in_pool_job_ = prev_; }
    ScopedInline(const ScopedInline&) = delete;
    ScopedInline& operator=(const ScopedInline&) = delete;

   private:
    bool prev_;
  };

  /// Run fn(lane) on every lane (0..lanes-1) and wait for completion.
  /// The calling thread executes lane 0. Reentrant calls (fn itself calling
  /// run_on_lanes) execute inline on the calling lane to avoid deadlock.
  void run_on_lanes(const std::function<void(unsigned)>& fn);

  /// Type-erased launch used by the non-allocating templated parallel
  /// primitives: `fn(ctx, lane)` runs on every lane with `ctx` pointing at
  /// a caller-owned callable, so no std::function is constructed per
  /// launch. Same inline/reentrant semantics as run_on_lanes.
  using RawJob = void (*)(void* ctx, unsigned lane);
  void run_on_lanes_raw(RawJob fn, void* ctx);

 private:
  void worker_loop(unsigned lane);

  std::vector<std::thread> workers_;
  Mutex mu_{"runtime::ThreadPool::mu_"};
  ConditionVariable cv_start_;
  ConditionVariable cv_done_;
  RawJob job_fn_ STG_GUARDED_BY(mu_) = nullptr;
  void* job_ctx_ STG_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ STG_GUARDED_BY(mu_) = 0;
  unsigned pending_ STG_GUARDED_BY(mu_) = 0;
  bool stop_ STG_GUARDED_BY(mu_) = false;
  static thread_local bool in_pool_job_;
};

}  // namespace stgraph
