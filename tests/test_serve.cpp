// Serving subsystem tests: bit-exact parity between serve::Server and the
// trainer's export-for-serving reference pass, snapshot install/swap
// semantics, delta validation and fault injection (a failed delta must
// leave the read view on the previous consistent snapshot), micro-batch
// dispatch failure handling, and the stats/histogram/queue building blocks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/naive_graph.hpp"
#include "nn/models.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

constexpr int64_t kFeat = 6;
constexpr int64_t kHidden = 8;
const char* kCkpt = "/tmp/stgraph_test_serve.stgt";

DtdgEvents tiny_events() {
  DtdgEvents ev;
  ev.num_nodes = 10;
  for (uint32_t i = 0; i < 10; ++i)
    ev.base_edges.emplace_back(i, (i + 1) % 10);  // directed ring
  EdgeDelta d1;
  d1.additions = {{0, 5}, {1, 6}, {2, 7}};
  EdgeDelta d2;
  d2.deletions = {{0, 1}, {1, 2}};
  d2.additions = {{1, 0}, {2, 1}};
  EdgeDelta d3;
  d3.additions = {{3, 8}, {4, 9}};
  d3.deletions = {{2, 7}};
  ev.deltas = {d1, d2, d3};
  return ev;
}

datasets::DynamicLoadOptions signal_opts() {
  datasets::DynamicLoadOptions opts;
  opts.feature_size = kFeat;
  opts.link_samples_per_step = 16;
  return opts;
}

DtdgEvents base_only(const DtdgEvents& ev) {
  return DtdgEvents{ev.num_nodes, ev.base_edges, {}};
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0)
      << what << ": outputs are not bit-identical";
}

/// Train a TGCNEncoder on the full event timeline, checkpoint it, and
/// return the trainer's forward-only reference outputs per timestamp.
std::vector<Tensor> train_and_checkpoint(const DtdgEvents& events,
                                         const datasets::TemporalSignal& sig) {
  GpmaGraph graph(events);
  Rng rng(3);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.sequence_length = 4;
  cfg.lr = 2e-2f;
  cfg.task = core::Task::kLinkPrediction;
  core::STGraphTrainer trainer(graph, model, sig, cfg);
  trainer.train();
  trainer.save_checkpoint(kCkpt);
  return trainer.evaluate_outputs();
}

class ServeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    failpoint::disable_all();
    std::remove(kCkpt);
  }
};

/// Drive a freshly-checkpointed model through a server that starts from the
/// base snapshot only and streams the deltas in; every predict() must be
/// bit-identical to the trainer's reference pass at the same timestamp.
void run_parity(STGraphBase& graph, const DtdgEvents& events,
                const datasets::TemporalSignal& sig,
                const std::vector<Tensor>& ref) {
  Rng rng(999);  // weights are overwritten by the checkpoint
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  server.load(kCkpt);
  server.start(sig.features[0]);
  const auto T = static_cast<uint32_t>(ref.size());
  for (uint32_t t = 0; t < T; ++t) {
    serve::PredictResult full = server.predict();
    EXPECT_EQ(full.timestamp, t);
    expect_bitwise_equal(full.outputs, ref[t],
                         "t=" + std::to_string(t) + " on " +
                             graph.format_name());
    if (t + 1 < T) server.ingest(events.deltas[t], sig.features[t + 1]);
  }
  server.stop();
  const serve::StatsReport report = server.stats();
  EXPECT_EQ(report.requests, T);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.deltas_applied, T - 1);
}

TEST_F(ServeTest, PredictMatchesTrainerEvaluateOutputsBitExactOnGpma) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  const std::vector<Tensor> ref = train_and_checkpoint(events, sig);
  ASSERT_EQ(ref.size(), events.num_timestamps());
  GpmaGraph graph(base_only(events));
  run_parity(graph, events, sig, ref);
}

TEST_F(ServeTest, PredictMatchesTrainerEvaluateOutputsBitExactOnNaive) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  const std::vector<Tensor> ref = train_and_checkpoint(events, sig);
  NaiveGraph graph(base_only(events));
  run_parity(graph, events, sig, ref);
}

TEST_F(ServeTest, SubsetPredictGathersRowsOfTheFullOutput) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  GpmaGraph graph(base_only(events));
  Rng rng(5);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  server.start(sig.features[0]);
  serve::PredictResult full = server.predict();
  serve::PredictResult sub = server.predict({7, 2, 2});
  ASSERT_EQ(sub.outputs.rows(), 3);
  ASSERT_EQ(sub.outputs.cols(), full.outputs.cols());
  const std::vector<uint32_t> want = {7, 2, 2};
  for (std::size_t i = 0; i < want.size(); ++i)
    for (int64_t c = 0; c < full.outputs.cols(); ++c)
      EXPECT_EQ(sub.outputs.data()[i * full.outputs.cols() + c],
                full.outputs.data()[want[i] * full.outputs.cols() + c]);
  // Both rode the same cached forward pass (one fresh execution total).
  EXPECT_EQ(server.stats().forward_passes, 1u);
  server.stop();
}

TEST_F(ServeTest, LiveSnapshotInstallSwapsWeightsAndBumpsVersion) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  train_and_checkpoint(events, sig);

  GpmaGraph graph(base_only(events));
  Rng rng(17);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  server.load(kCkpt);
  server.start(sig.features[0]);
  const serve::PredictResult before = server.predict();

  // A differently-initialized model produces a second, distinct snapshot.
  Rng rng2(4242);
  nn::TGCNEncoder other(kFeat, kHidden, rng2);
  io::TrainState st;
  st.params = other.parameters();
  auto snap =
      std::make_shared<const serve::ModelSnapshot>(
          serve::ModelSnapshot::from_train_state(st));
  server.install(snap);
  EXPECT_EQ(server.snapshot(), snap);

  const serve::PredictResult after = server.predict();
  EXPECT_GT(after.version, before.version);
  EXPECT_EQ(after.timestamp, before.timestamp);  // time did not move
  bool any_diff = false;
  for (int64_t i = 0; i < after.outputs.numel(); ++i)
    any_diff |= after.outputs.data()[i] != before.outputs.data()[i];
  EXPECT_TRUE(any_diff) << "swapped weights must change the outputs";
  server.stop();
  EXPECT_EQ(server.stats().snapshot_swaps, 2u);
}

TEST_F(ServeTest, CheckpointLoadFailpointPropagates) {
  const DtdgEvents events = tiny_events();
  GpmaGraph graph(base_only(events));
  Rng rng(5);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  failpoint::enable("serve.checkpoint.load", failpoint::Spec::always());
  EXPECT_THROW(server.load("/tmp/does_not_matter.stgt"), StgError);
}

TEST_F(ServeTest, FailedDeltaApplyLeavesReadViewOnPreviousSnapshot) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  GpmaGraph graph(base_only(events));
  Rng rng(5);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  server.start(sig.features[0]);
  const serve::PredictResult before = server.predict();
  const serve::ReadView view0 = server.read_view();

  failpoint::enable("serve.delta.apply", failpoint::Spec::once());
  EXPECT_THROW(server.ingest(events.deltas[0], sig.features[1]), StgError);

  // The read view and the graph are still the previous consistent snapshot.
  const serve::ReadView view1 = server.read_view();
  EXPECT_EQ(view1.time, view0.time);
  EXPECT_EQ(view1.version, view0.version);
  EXPECT_EQ(view1.num_edges, view0.num_edges);
  EXPECT_EQ(graph.num_timestamps(), 1u);
  const serve::PredictResult still = server.predict();
  expect_bitwise_equal(still.outputs, before.outputs,
                       "predict after failed ingest");

  // The same delta applies cleanly once the fault is gone.
  server.ingest(events.deltas[0], sig.features[1]);
  EXPECT_EQ(server.read_view().time, 1u);
  EXPECT_EQ(graph.num_timestamps(), 2u);
  server.stop();
}

TEST_F(ServeTest, InvalidDeltasAreRejectedBeforeAnyMutation) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  GpmaGraph graph(base_only(events));
  Rng rng(5);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  server.start(sig.features[0]);
  const serve::ReadView view0 = server.read_view();

  EdgeDelta missing_del;
  missing_del.deletions = {{5, 0}};  // ring has (5,6), not (5,0)
  EXPECT_THROW(server.ingest(missing_del, sig.features[1]), StgError);

  EdgeDelta readd;
  readd.additions = {{0, 1}};  // already present in the base ring
  EXPECT_THROW(server.ingest(readd, sig.features[1]), StgError);

  EdgeDelta oob;
  oob.additions = {{0, 99}};
  EXPECT_THROW(server.ingest(oob, sig.features[1]), StgError);

  EdgeDelta dup;
  dup.additions = {{0, 4}, {0, 4}};
  EXPECT_THROW(server.ingest(dup, sig.features[1]), StgError);

  EXPECT_EQ(server.read_view().version, view0.version);
  EXPECT_EQ(graph.num_timestamps(), 1u);

  server.ingest(events.deltas[0], sig.features[1]);  // valid delta still lands
  EXPECT_EQ(server.read_view().time, 1u);
  server.stop();
}

TEST_F(ServeTest, BatchDispatchFailpointFailsTheBatchButServingContinues) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  GpmaGraph graph(base_only(events));
  Rng rng(5);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  server.start(sig.features[0]);

  failpoint::enable("serve.batch.dispatch", failpoint::Spec::once());
  EXPECT_THROW(server.predict(), StgError);
  const serve::PredictResult ok = server.predict();  // next batch is fine
  EXPECT_EQ(ok.outputs.rows(), 10);
  server.stop();
  const serve::StatsReport report = server.stats();
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.requests, 1u);
}

TEST_F(ServeTest, OutOfRangePredictNodeFailsTheRequestNotTheServer) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  GpmaGraph graph(base_only(events));
  Rng rng(5);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::ServeConfig cfg;
  cfg.circuit_failure_threshold = 2;
  cfg.circuit_cooldown_ms = 60000;
  serve::Server server(graph, model, cfg);
  server.start(sig.features[0]);
  // Bad node ids are a client error, not an execution fault: repeated
  // offenders must not accumulate circuit-breaker failures and push the
  // server into stale-serving for everyone else.
  EXPECT_THROW(server.predict({12345}), StgError);
  EXPECT_THROW(server.predict({12345}), StgError);
  EXPECT_THROW(server.predict({12345}), StgError);
  EXPECT_EQ(server.health(), serve::HealthState::kHealthy);
  const serve::PredictResult ok = server.predict({3});
  EXPECT_EQ(ok.outputs.rows(), 1);
  EXPECT_FALSE(ok.stale);
  server.stop();
  const serve::StatsReport report = server.stats();
  EXPECT_EQ(report.circuit_trips, 0u);
  EXPECT_EQ(report.failed, 3u);
}

TEST_F(ServeTest, StoppedServerRejectsPredictAndIngest) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  GpmaGraph graph(base_only(events));
  Rng rng(5);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  EXPECT_THROW(server.predict(), StgError);  // never started
  server.start(sig.features[0]);
  server.predict();
  server.stop();
  EXPECT_THROW(server.predict(), StgError);
  EXPECT_THROW(server.ingest(events.deltas[0], sig.features[1]), StgError);
}

TEST_F(ServeTest, EmptyDeltaExtendsAnAppendableTimeline) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  GpmaGraph graph(base_only(events));
  Rng rng(5);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  server.start(sig.features[0]);
  const uint32_t edges_before = server.read_view().num_edges;
  server.ingest(EdgeDelta{}, sig.features[1]);
  EXPECT_EQ(server.read_view().time, 1u);
  EXPECT_EQ(server.read_view().num_edges, edges_before);
  EXPECT_EQ(graph.num_timestamps(), 2u);
  EXPECT_EQ(graph.num_edges_at(1), graph.num_edges_at(0));
  server.stop();
}

TEST_F(ServeTest, CircuitBreakerTripsServesStaleAndClosesOnSuccess) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  GpmaGraph graph(base_only(events));
  Rng rng(5);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::ServeConfig cfg;
  cfg.circuit_failure_threshold = 2;
  cfg.circuit_cooldown_ms = 60000;  // no half-open probe during this test
  serve::Server server(graph, model, cfg);
  server.start(sig.features[0]);
  EXPECT_EQ(server.health(), serve::HealthState::kHealthy);
  const serve::PredictResult good = server.predict();  // primes last-good
  EXPECT_FALSE(good.stale);

  failpoint::enable("serve.batch.dispatch", failpoint::Spec::always());
  EXPECT_THROW(server.predict(), StgError);  // consecutive failure 1
  EXPECT_THROW(server.predict(), StgError);  // failure 2 — circuit opens
  EXPECT_EQ(server.health(), serve::HealthState::kDegraded);

  // Open circuit: predicts divert to the last-good step, version-tagged
  // stale, without touching the (still failing) execution path.
  const serve::PredictResult stale = server.predict();
  EXPECT_TRUE(stale.stale);
  EXPECT_EQ(stale.version, good.version);
  EXPECT_EQ(stale.timestamp, good.timestamp);
  expect_bitwise_equal(stale.outputs, good.outputs, "stale full read");
  const serve::PredictResult sub = server.predict({4, 1});
  EXPECT_TRUE(sub.stale);
  ASSERT_EQ(sub.outputs.rows(), 2);

  // A successful forward (here via ingest, which runs the same step)
  // closes the circuit and restores HEALTHY.
  failpoint::disable_all();
  server.ingest(events.deltas[0], sig.features[1]);
  EXPECT_EQ(server.health(), serve::HealthState::kHealthy);
  const serve::PredictResult fresh = server.predict();
  EXPECT_FALSE(fresh.stale);
  EXPECT_EQ(fresh.timestamp, 1u);

  server.stop();
  const serve::StatsReport report = server.stats();
  EXPECT_EQ(report.circuit_trips, 1u);
  EXPECT_EQ(report.stale_served, 2u);
  EXPECT_EQ(report.failed, 2u);
  EXPECT_EQ(report.requests, 2u);  // the pre-trip and post-close predicts
}

TEST_F(ServeTest, NonFiniteOutputsFailTheBatchInsteadOfServingPoison) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  GpmaGraph graph(base_only(events));
  Rng rng(5);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  server.start(sig.features[0]);

  failpoint::enable("serve.step.poison", failpoint::Spec::once());
  EXPECT_THROW(server.predict(), StgError);  // NaN scan rejects the step
  const serve::PredictResult ok = server.predict();  // cache was dropped
  EXPECT_FALSE(ok.stale);
  for (int64_t i = 0; i < ok.outputs.numel(); ++i)
    ASSERT_TRUE(std::isfinite(ok.outputs.data()[i]));
  server.stop();
  EXPECT_EQ(server.stats().failed, 1u);
}

TEST_F(ServeTest, ShedsAreTypedCountedAndAccountedInTheReport) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  GpmaGraph graph(base_only(events));
  Rng rng(5);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  EXPECT_EQ(server.health(), serve::HealthState::kStarting);

  // Rejections off a non-running server are typed draining sheds.
  try {
    server.predict();
    FAIL() << "predict on a stopped server must throw";
  } catch (const serve::ShedError& e) {
    EXPECT_EQ(e.reason(), serve::ShedReason::kDraining);
  }
  server.start(sig.features[0]);
  server.predict();
  server.stop();
  EXPECT_THROW(server.predict(), serve::ShedError);
  EXPECT_THROW(server.ingest(events.deltas[0], sig.features[1]),
               serve::ShedError);

  const serve::StatsReport report = server.stats();
  EXPECT_EQ(report.shed_draining, 3u);
  EXPECT_EQ(report.shed_total, 3u);
  EXPECT_EQ(report.rejected, report.shed_total);  // back-compat alias
  EXPECT_EQ(report.requests, 1u);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"shed\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline_expired\""), std::string::npos);
  EXPECT_NE(json.find("\"health\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
}

// ---- building blocks ------------------------------------------------------

TEST(TenantQueueSet, BoundedPushPopAndClose) {
  using Push = serve::TenantQueueSet::PushResult;
  serve::TenantQueueSet q({}, 2);  // single default lane, capacity 2
  EXPECT_EQ(q.num_lanes(), 1u);
  serve::PredictRequest a, b, c;
  EXPECT_EQ(q.push(std::move(a)), Push::kOk);
  EXPECT_EQ(q.push(std::move(b)), Push::kOk);
  EXPECT_EQ(q.push(std::move(c)), Push::kFull);  // full: load shed
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.max_depth(), 2u);

  EXPECT_EQ(q.pop_batch(8).size(), 2u);  // drains up to max_batch
  q.close();
  EXPECT_TRUE(q.pop_batch(8).empty());  // closed and drained
  serve::PredictRequest d;
  EXPECT_EQ(q.push(std::move(d)), Push::kClosed);  // draining
  q.reopen();
  serve::PredictRequest e;
  EXPECT_EQ(q.push(std::move(e)), Push::kOk);
}

TEST(TenantQueueSet, WeightedRoundRobinSharesDequeues) {
  // Tenant 7 has 3× the weight of tenant 9: under saturation a batch
  // alternates 3-from-7, 1-from-9.
  serve::TenantQueueSet q(
      {serve::TenantLane{7, 3, 0}, serve::TenantLane{9, 1, 0}}, 16);
  EXPECT_EQ(q.num_lanes(), 2u);
  EXPECT_EQ(q.lane_of(7), 0u);
  EXPECT_EQ(q.lane_of(9), 1u);
  EXPECT_EQ(q.lane_of(12345), 0u);  // unknown tenants share the first lane
  for (int i = 0; i < 8; ++i) {
    serve::PredictRequest r;
    r.tenant = (i % 2) ? 9 : 7;
    r.tenant_slot = q.lane_of(r.tenant);
    ASSERT_EQ(q.push(std::move(r)), serve::TenantQueueSet::PushResult::kOk);
  }
  EXPECT_EQ(q.lane_depth(0), 4u);
  EXPECT_EQ(q.lane_depth(1), 4u);
  const std::vector<serve::PredictRequest> batch = q.pop_batch(4);
  ASSERT_EQ(batch.size(), 4u);
  int from7 = 0, from9 = 0;
  for (const auto& r : batch) (r.tenant == 7 ? from7 : from9)++;
  EXPECT_EQ(from7, 3);
  EXPECT_EQ(from9, 1);
  // Second batch drains the remainder, still interleaving by weight: one
  // leftover from tenant 7, then tenant 9's backlog — the low-weight lane
  // is never starved once the heavy lane empties.
  const std::vector<serve::PredictRequest> rest = q.pop_batch(16);
  ASSERT_EQ(rest.size(), 4u);
  from7 = from9 = 0;
  for (const auto& r : rest) (r.tenant == 7 ? from7 : from9)++;
  EXPECT_EQ(from7, 1);
  EXPECT_EQ(from9, 3);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(LatencyHistogram, MergeIsAssociativeAndQuantileStable) {
  // The same 100 samples recorded whole vs sharded across three
  // histograms (the per-reader layout) and merged in two different
  // orders: counts, buckets and every percentile must agree.
  serve::LatencyHistogram whole, a, b, c;
  for (int i = 0; i < 50; ++i) { whole.record(100.0); a.record(100.0); }
  for (int i = 0; i < 48; ++i) { whole.record(100.0); b.record(100.0); }
  whole.record(5000.0);
  b.record(5000.0);
  whole.record(70000.0);
  c.record(70000.0);

  serve::LatencyHistogram ab_c;  // (a + b) + c
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  serve::LatencyHistogram c_ba;  // c + (b + a)
  c_ba.merge(c);
  c_ba.merge(b);
  c_ba.merge(a);

  for (const auto* m : {&ab_c, &c_ba}) {
    EXPECT_EQ(m->count(), whole.count());
    EXPECT_EQ(m->percentile(50), whole.percentile(50));
    EXPECT_EQ(m->percentile(99), whole.percentile(99));
    EXPECT_EQ(m->percentile(100), whole.percentile(100));
    EXPECT_EQ(m->max_micros(), whole.max_micros());
    EXPECT_NEAR(m->mean_micros(), whole.mean_micros(), 1e-9);
    for (std::size_t bkt = 0; bkt < serve::LatencyHistogram::kBuckets; ++bkt)
      EXPECT_EQ(m->bucket_count(bkt), whole.bucket_count(bkt));
  }
}

TEST(ServerStats, PerTenantAccountingIdentityHolds) {
  serve::ServerStats stats;
  stats.configure({1, 2}, 2);
  // Tenant slot 0 (id 1): 3 issued = 1 fulfilled + 1 stale + 1 shed.
  stats.record_issued(0);
  stats.record_issued(0);
  stats.record_issued(0);
  stats.record_request(10.0, 1, 0, /*reader=*/0);
  stats.record_stale_served(10.0, 1, 0);
  stats.record_shed(serve::ShedReason::kQueueFull, 1, 0);
  // Tenant slot 1 (id 2): 2 issued = 1 failed + 1 shed.
  stats.record_issued(1);
  stats.record_issued(1);
  stats.record_failed(1, 1);
  stats.record_shed(serve::ShedReason::kDeadlineExpired, 1, 1);
  // Ingest-path sheds are global-only: no tenant identity is polluted.
  stats.record_shed(serve::ShedReason::kQueueFull, 1,
                    serve::ServerStats::kNoTenant);

  const serve::StatsReport r = stats.report(0);
  ASSERT_EQ(r.tenants.size(), 2u);
  for (const auto& t : r.tenants)
    EXPECT_EQ(t.issued, t.requests + t.stale_served + t.failed + t.shed_total)
        << "tenant " << t.id;
  EXPECT_EQ(r.tenants[0].id, 1u);
  EXPECT_EQ(r.tenants[0].issued, 3u);
  EXPECT_EQ(r.tenants[1].failed, 1u);
  EXPECT_EQ(r.tenants[1].shed_deadline_expired, 1u);
  EXPECT_EQ(r.shed_queue_full, 2u);  // tenant + ingest-path shed
  EXPECT_EQ(r.reader_threads, 2u);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"tenants\""), std::string::npos);
  EXPECT_NE(json.find("\"reader_utilization\""), std::string::npos);
}

TEST(LatencyHistogram, PercentilesLandInPowerOfTwoBuckets) {
  serve::LatencyHistogram h;
  EXPECT_EQ(h.percentile(99), 0.0);  // empty
  for (int i = 0; i < 98; ++i) h.record(100.0);   // bucket [64,128)
  h.record(5000.0);                               // bucket [4096,8192)
  h.record(70000.0);                              // bucket [65536,131072)
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(50), 128.0);
  EXPECT_EQ(h.percentile(99), 8192.0);
  EXPECT_EQ(h.percentile(100), 131072.0);
  EXPECT_EQ(h.max_micros(), 70000.0);
  EXPECT_NEAR(h.mean_micros(), (98 * 100.0 + 5000.0 + 70000.0) / 100.0, 1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(ServerStatsReport, JsonCarriesTheCounters) {
  serve::ServerStats stats;
  stats.record_request(100.0, 10);
  stats.record_batch(1);
  stats.record_forward(0.5);
  stats.record_ingest(12, 0.25);
  const serve::StatsReport r = stats.report(3);
  EXPECT_EQ(r.requests, 1u);
  EXPECT_EQ(r.deltas_applied, 1u);
  EXPECT_DOUBLE_EQ(r.delta_edges_per_sec, 48.0);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"requests\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"delta_edges_per_sec\": 48"), std::string::npos);
  EXPECT_NE(json.find("\"max_queue_depth\": 3"), std::string::npos);
}

}  // namespace
}  // namespace stgraph
