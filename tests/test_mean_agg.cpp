// Mean-aggregation property tests: the mean-lowering pass must make
// agg_mean numerically equal to a dense mean over in-neighbors, forward
// and backward, across feature sizes and both adjacency directions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "compiler/autodiff.hpp"
#include "compiler/kernel.hpp"
#include "compiler/passes.hpp"
#include "compiler/trace.hpp"
#include "graph/dtdg.hpp"
#include "graph/static_graph.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using namespace compiler;

struct MeanCase {
  uint32_t nodes;
  int edges;
  int64_t feats;
  uint64_t seed;
};

class MeanAgg : public ::testing::TestWithParam<MeanCase> {};

TEST_P(MeanAgg, MatchesDenseMeanWithSelfTerm) {
  const MeanCase p = GetParam();
  Rng rng(p.seed);
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> dedup;
  for (int i = 0; i < p.edges * 4 && static_cast<int>(edges.size()) < p.edges;
       ++i) {
    uint32_t s = rng.next_below(p.nodes), d = rng.next_below(p.nodes);
    if (s == d || !dedup.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  StaticTemporalGraph graph(p.nodes, edges, 1);
  SnapshotView view = graph.get_graph(0);

  KernelSpec spec = compile(trace([](VertexContext& v) -> AggExpr {
    return v.agg_mean(v.src_feature(0)).with_self_loop(v.constant(0.5f));
  }));

  std::vector<float> x(p.nodes * p.feats);
  for (auto& val : x) val = rng.normal();
  std::vector<float> out(x.size());

  KernelArgs args;
  args.view = view.in_view;
  args.in_degrees = view.in_degrees;
  const float* inputs[1] = {x.data()};
  args.inputs = inputs;
  args.self_features = x.data();
  args.out = out.data();
  args.num_feats = static_cast<uint32_t>(p.feats);
  args.producer_is_col = true;
  run_kernel(spec, args);

  // Dense reference: mean over in-neighbors (0 for isolated) + 0.5·x[v].
  std::vector<uint32_t> din(p.nodes, 0);
  for (const auto& [u, v] : edges) ++din[v];
  for (uint32_t v = 0; v < p.nodes; ++v) {
    for (int64_t f = 0; f < p.feats; ++f) {
      float acc = 0;
      for (const auto& [s, d] : edges)
        if (d == v) acc += x[s * p.feats + f];
      const float mean_part = din[v] ? acc / static_cast<float>(din[v]) : 0.0f;
      const float want = mean_part + 0.5f * x[v * p.feats + f];
      ASSERT_NEAR(out[v * p.feats + f], want, 1e-4f) << v << "," << f;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MeanAgg,
    ::testing::Values(MeanCase{10, 30, 1, 1}, MeanCase{20, 80, 7, 2},
                      MeanCase{30, 60, 64, 3},   // feature-tile path
                      MeanCase{5, 0, 3, 4},      // edgeless: self term only
                      MeanCase{40, 200, 16, 5}));

TEST(MeanAgg, BackwardIsAdjointOfForward) {
  // <Mean(X), G> == <X, Meanᵀ(G)> — validates InvDegree orientation in
  // the role-swapped backward kernel.
  Rng rng(11);
  const uint32_t n = 18;
  const int64_t F = 4;
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> dedup;
  for (int i = 0; i < 80; ++i) {
    uint32_t s = rng.next_below(n), d = rng.next_below(n);
    if (s == d || !dedup.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  StaticTemporalGraph graph(n, edges, 1);
  SnapshotView view = graph.get_graph(0);

  Program fwd_prog = optimize(trace([](VertexContext& v) -> AggExpr {
    return v.agg_mean(v.src_feature(0));
  }));
  KernelSpec fwd = compile(fwd_prog);
  KernelSpec bwd = compile(differentiate(fwd_prog));

  std::vector<float> x(n * F), g(n * F), lx(n * F), ltg(n * F);
  for (auto& v : x) v = rng.normal();
  for (auto& v : g) v = rng.normal();

  KernelArgs a;
  a.in_degrees = view.in_degrees;
  a.num_feats = F;
  {
    a.view = view.in_view;
    const float* in[1] = {x.data()};
    a.inputs = in;
    a.self_features = x.data();
    a.out = lx.data();
    a.producer_is_col = true;
    run_kernel(fwd, a);
  }
  {
    a.view = view.out_view;
    const float* in[1] = {g.data()};
    a.inputs = in;
    a.self_features = g.data();
    a.out = ltg.data();
    a.producer_is_col = false;
    run_kernel(bwd, a);
  }
  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    lhs += double(lx[i]) * g[i];
    rhs += double(x[i]) * ltg[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::abs(lhs)));
}

}  // namespace
}  // namespace stgraph
