// The fusing tape compiler's execution layer. A FusedOp owns one traced,
// optimized elementwise program plus its derived backward; calling it runs
// the whole region as ONE pass over the feature arrays (intermediates live
// in registers, never materialized) and attaches a single autograd node
// whose backward runs the derived gradient program in one more pass.
//
// Bit-parity contract (tests/test_fusion.cpp):
//
//   * STGRAPH_FUSION=off replays the SAME optimized program node-by-node
//     through the ops:: tape — losses, parameters, and gradients are
//     memcmp-equal against the fused path. Both interpreters share the
//     scalar formulas in tensor/ew_scalar.hpp, and both TUs compile with
//     -ffp-contract=off so no path gains an FMA the other lacks.
//   * Collapsing a region to one node preserves the engine's gradient
//     accumulation order: the replayed region occupies a contiguous run of
//     autograd sequence numbers, so all in-region contributions to any
//     producer arrive adjacently (decreasing-seq order) — exactly the
//     left-associative fold differentiate_elementwise emits. Out-of-region
//     consumers keep their relative arrival position either way.
//   * A kBias input's gradient is reduced per column serially over rows,
//     the order ops::add_bias's backward uses (parallel only across
//     columns, which are independent).
//   * Non-finite propagation is covered too (the fuzz salts NaN and Inf),
//     with one carve-out: when BOTH operands of a binary op are NaN with
//     different bit patterns, IEEE lets hardware return either payload and
//     C does not pin operand order, so the resulting NaN's sign/payload is
//     codegen-dependent on every path. As long as a single NaN pattern is
//     in flight (a propagated qNaN, or the ffc00000 indefinite that
//     invalid ops produce) parity is exact.
//
// Compiled programs are cached per (program signature, rows, cols): the
// steady state of a training loop performs zero compilation work, which the
// cache's hit/miss/compile counters let tests assert. STGRAPH_VALIDATE=1
// audits every cache hit against the live view shape so a stale program
// (e.g. after a snapshot view change that a bad key would alias) fails
// loudly at the lookup instead of corrupting a step.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "compiler/autodiff.hpp"
#include "compiler/ir.hpp"
#include "compiler/trace.hpp"
#include "tensor/tensor.hpp"

namespace stgraph::compiler::fusion {

/// Interpreter capacity: programs beyond this node count are rejected at
/// FusedOp construction (the largest real cell region is ~30 backward
/// nodes). Register file = kMaxEwNodes × kEwBlock floats on the stack.
inline constexpr int kMaxEwNodes = 64;
inline constexpr int kEwBlock = 64;

/// True unless STGRAPH_FUSION is set to a falsy value ("off", "0",
/// "false", ""). Read once and cached; set_fusion_enabled overrides.
bool fusion_enabled();
void set_fusion_enabled(bool on);

struct FusionStats {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;      // == programs compiled into the cache
  uint64_t fused_forward = 0;     // fused forward launches
  uint64_t fused_backward = 0;    // fused backward launches
  uint64_t unfused_replays = 0;   // off-path region replays through ops::
  uint64_t scratch_acquires = 0;  // bias-grad scratch requests
  uint64_t scratch_reuses = 0;    // ... served from the arena free list
};
FusionStats fusion_stats();
void reset_fusion_stats();

std::size_t fusion_cache_size();
void clear_fusion_cache();

/// Test hook for the STGRAPH_VALIDATE audit: overwrite the recorded shape
/// of every cached program so the next validated lookup sees a signature
/// whose plan no longer matches the live tensors (the stale-program
/// regression scenario).
void debug_corrupt_cached_shapes(int64_t rows, int64_t cols);

/// One traced region. Construction traces, optimizes, and differentiates
/// the program once; operator() dispatches per call on fusion_enabled().
class FusedOp {
 public:
  FusedOp(std::string name, const std::function<EwExpr(EwTracer&)>& build);

  /// Execute on `inputs` (kMat inputs [N,F], kBias inputs [F], in program
  /// input-slot order). Fused: one pass + one autograd node. Unfused: the
  /// same program replayed through ops::.
  Tensor operator()(const std::vector<Tensor>& inputs) const;

  const std::string& name() const { return name_; }
  const EwProgram& forward_program() const { return fwd_; }
  const EwBackward& backward_program() const { return bwd_; }
  uint64_t signature() const { return sig_; }

 private:
  std::string name_;
  EwProgram fwd_;       // single-output program (replay / parity oracle)
  /// fwd_ with its outputs extended by the transcendental values the
  /// backward reads back (bwd_.saved) — what the fused path executes.
  EwProgram fwd_exec_;
  EwBackward bwd_;
  uint64_t sig_ = 0;
};

/// Raw blocked interpreter (no autograd): evaluate `p` elementwise over
/// rows×cols, writing one [rows,cols] array per program output. Exposed
/// for the parity fuzz tests.
void run_ew_program(const EwProgram& p, const float* const* inputs,
                    int64_t rows, int64_t cols, float* const* outputs);

/// Replay an optimized single-output program node-by-node through the
/// ops:: tape (the STGRAPH_FUSION=off path and the parity oracle).
Tensor replay_unfused(const EwProgram& p, const std::vector<Tensor>& inputs);

// ---- the cell regions the nn/ layers route through the compiler ----------
// Each is a static FusedOp traced at first use. Single leftover ops
// (e.g. GRU's r⊙h) stay on the plain tape — a one-node "region" would
// only add dispatch overhead.

/// σ(a + b)
Tensor sigmoid_add(const Tensor& a, const Tensor& b);
/// tanh(a + b)
Tensor tanh_add(const Tensor& a, const Tensor& b);
/// z⊙h + (1−z)⊙c — the GRU state blend.
Tensor gate_combine(const Tensor& z, const Tensor& h, const Tensor& c);
/// f⊙c + i⊙g — the LSTM cell-state update.
Tensor lstm_cell_state(const Tensor& f, const Tensor& c, const Tensor& i,
                       const Tensor& g);
/// o⊙tanh(c) — the LSTM hidden-state readout.
Tensor mul_tanh(const Tensor& o, const Tensor& c);
/// σ(x + bias) — fused linear epilogue (bias broadcast over rows).
Tensor bias_sigmoid(const Tensor& x, const Tensor& bias);
/// tanh(x + bias)
Tensor bias_tanh(const Tensor& x, const Tensor& bias);

}  // namespace stgraph::compiler::fusion
