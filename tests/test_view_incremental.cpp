// Delta-bounded incremental view maintenance: the patched snapshot arrays
// must be bit-identical to a from-scratch rebuild after any sequence of
// forward/backward rolls — same slot arrays, same edge labels, same row
// offsets, same reverse CSR, same degree orders. A sequential host-side
// reference (independent of the device primitives) pins the canonical
// layout so the suite also proves lane-count independence: ctest runs the
// whole binary a second time under STGRAPH_NUM_THREADS=1 and both runs
// must agree with the same reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <vector>

#include "gpma/gpma_graph.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

EdgeList random_stream(uint32_t nodes, std::size_t events, uint64_t seed) {
  Rng rng(seed);
  EdgeList stream;
  for (std::size_t i = 0; i < events; ++i)
    stream.emplace_back(static_cast<uint32_t>(rng.next_below(nodes)),
                        static_cast<uint32_t>(rng.next_below(nodes)));
  return stream;
}

// Assert every array of two snapshot views is bit-identical (gaps
// included) — not just set-equal.
void expect_views_identical(const GpmaGraph& gi, const GpmaGraph& gf,
                            const SnapshotView& a, const SnapshotView& b) {
  ASSERT_EQ(a.num_edges, b.num_edges);
  ASSERT_EQ(a.num_nodes, b.num_nodes);
  const std::size_t cap = gi.pma().capacity();
  ASSERT_EQ(cap, gf.pma().capacity());
  const uint32_t n = a.num_nodes;
  const uint32_t m = a.num_edges;
  EXPECT_TRUE(std::equal(a.out_view.row_offset, a.out_view.row_offset + n + 1,
                         b.out_view.row_offset));
  EXPECT_TRUE(std::equal(a.out_view.col_indices, a.out_view.col_indices + cap,
                         b.out_view.col_indices));
  EXPECT_TRUE(
      std::equal(a.out_view.eids, a.out_view.eids + cap, b.out_view.eids));
  EXPECT_TRUE(std::equal(a.out_view.node_ids, a.out_view.node_ids + n,
                         b.out_view.node_ids));
  EXPECT_TRUE(std::equal(a.in_view.row_offset, a.in_view.row_offset + n + 1,
                         b.in_view.row_offset));
  EXPECT_TRUE(std::equal(a.in_view.col_indices, a.in_view.col_indices + m,
                         b.in_view.col_indices));
  EXPECT_TRUE(std::equal(a.in_view.eids, a.in_view.eids + m, b.in_view.eids));
  EXPECT_TRUE(std::equal(a.in_view.node_ids, a.in_view.node_ids + n,
                         b.in_view.node_ids));
  EXPECT_TRUE(std::equal(a.in_degrees, a.in_degrees + n, b.in_degrees));
  EXPECT_TRUE(std::equal(a.out_degrees, a.out_degrees + n, b.out_degrees));
}

// Rebuild every view array sequentially on the host from the PMA slot
// array alone, and assert the served view matches. This is an independent
// implementation of the canonical layout: labels in slot order, row
// offsets = first live slot with source >= row, reverse lists in
// ascending source order, orders sorted by (degree desc, id asc).
void expect_matches_reference(const GpmaGraph& g, const SnapshotView& v) {
  const std::vector<uint64_t> slots = g.pma().slots().to_host();
  const uint32_t n = v.num_nodes;
  const std::size_t cap = slots.size();
  std::vector<uint32_t> col(cap), eids(cap), ro(n + 1);
  std::vector<uint32_t> ind(n, 0), outd(n, 0);
  uint32_t next_eid = 0, next_row = 0;
  for (std::size_t i = 0; i < cap; ++i) {
    if (slots[i] == Pma::kEmptyKey) {
      col[i] = kSpace;
      eids[i] = kSpace;
      continue;
    }
    const uint32_t s = edge_key_src(slots[i]);
    const uint32_t d = edge_key_dst(slots[i]);
    while (next_row <= s) ro[next_row++] = static_cast<uint32_t>(i);
    col[i] = d;
    eids[i] = next_eid++;
    ++outd[s];
    ++ind[d];
  }
  while (next_row <= n) ro[next_row++] = static_cast<uint32_t>(cap);
  ASSERT_EQ(next_eid, v.num_edges);

  EXPECT_TRUE(std::equal(ro.begin(), ro.end(), v.out_view.row_offset));
  EXPECT_TRUE(std::equal(col.begin(), col.end(), v.out_view.col_indices));
  EXPECT_TRUE(std::equal(eids.begin(), eids.end(), v.out_view.eids));
  EXPECT_TRUE(std::equal(ind.begin(), ind.end(), v.in_degrees));
  EXPECT_TRUE(std::equal(outd.begin(), outd.end(), v.out_degrees));

  // Reverse CSR: exclusive scan of in-degrees, scatter in slot order.
  std::vector<uint32_t> r_ro(n + 1, 0);
  for (uint32_t d = 0; d < n; ++d) r_ro[d + 1] = r_ro[d] + ind[d];
  std::vector<uint32_t> cursor(r_ro.begin(), r_ro.begin() + n);
  std::vector<uint32_t> r_col(next_eid), r_eids(next_eid);
  for (std::size_t i = 0; i < cap; ++i) {
    if (slots[i] == Pma::kEmptyKey) continue;
    const uint32_t d = edge_key_dst(slots[i]);
    const uint32_t loc = cursor[d]++;
    r_col[loc] = edge_key_src(slots[i]);
    r_eids[loc] = eids[i];
  }
  EXPECT_TRUE(std::equal(r_ro.begin(), r_ro.end(), v.in_view.row_offset));
  EXPECT_TRUE(std::equal(r_col.begin(), r_col.end(), v.in_view.col_indices));
  EXPECT_TRUE(std::equal(r_eids.begin(), r_eids.end(), v.in_view.eids));

  // Degree orders under the canonical strict total order.
  std::vector<uint32_t> fwd(n), bwd(n);
  for (uint32_t i = 0; i < n; ++i) fwd[i] = bwd[i] = i;
  std::sort(fwd.begin(), fwd.end(), [&](uint32_t a, uint32_t b) {
    return ind[a] != ind[b] ? ind[a] > ind[b] : a < b;
  });
  std::sort(bwd.begin(), bwd.end(), [&](uint32_t a, uint32_t b) {
    return outd[a] != outd[b] ? outd[a] > outd[b] : a < b;
  });
  EXPECT_TRUE(std::equal(fwd.begin(), fwd.end(), v.in_view.node_ids));
  EXPECT_TRUE(std::equal(bwd.begin(), bwd.end(), v.out_view.node_ids));
}

TEST(ViewIncremental, BitIdenticalToFullRebuildAcrossRolls) {
  DtdgEvents ev = window_edge_stream(120, random_stream(120, 4000, 2024), 0.03);
  GpmaGraph inc(ev);
  GpmaGraph full(ev);
  full.set_incremental_views(false);
  const uint32_t T = ev.num_timestamps();
  ASSERT_GT(T, 4u);

  // fwd -> bwd -> fwd roll pattern (exercises the Algorithm-2 cache
  // save/restore on the turns), then random jumps.
  std::vector<uint32_t> schedule;
  for (uint32_t t = 0; t < T; ++t) schedule.push_back(t);
  for (uint32_t t = T; t-- > 0;) schedule.push_back(t);
  for (uint32_t t = 0; t < T; ++t) schedule.push_back(t);
  Rng rng(7);
  for (int i = 0; i < 24; ++i)
    schedule.push_back(static_cast<uint32_t>(rng.next_below(T)));

  for (uint32_t t : schedule) {
    SnapshotView a = inc.get_graph(t);
    SnapshotView b = full.get_graph(t);
    expect_views_identical(inc, full, a, b);
    if (HasFailure()) FAIL() << "views diverged at timestamp " << t;
  }
  // The whole point: the small-delta rolls must actually have taken the
  // incremental path.
  EXPECT_GT(inc.incremental_view_updates(), 0u);
  EXPECT_EQ(full.incremental_view_updates(), 0u);
  EXPECT_GT(full.full_view_rebuilds(), 0u);
}

TEST(ViewIncremental, MatchesSequentialReferenceEverywhere) {
  DtdgEvents ev = window_edge_stream(80, random_stream(80, 2500, 91), 0.05);
  GpmaGraph g(ev);
  const uint32_t T = ev.num_timestamps();
  for (uint32_t t = 0; t < T; ++t) expect_matches_reference(g, g.get_graph(t));
  for (uint32_t t = T; t-- > 0;) expect_matches_reference(g, g.get_graph(t));
  for (uint32_t t = 0; t < T; ++t) expect_matches_reference(g, g.get_graph(t));
  EXPECT_GT(g.incremental_view_updates(), 0u);
}

TEST(ViewIncremental, CacheRestoreForcesAFullRebuild) {
  DtdgEvents ev = window_edge_stream(60, random_stream(60, 1500, 13), 0.05);
  GpmaGraph g(ev);
  const uint32_t T = ev.num_timestamps();
  g.get_graph(T - 1);              // roll to the head
  g.get_graph(0);                  // backward roll saves the cache at T-1
  g.reset_update_stats();
  g.get_graph(T - 1);              // forward roll restores the cached PMA
  // The restored PMA's dirty bitmap describes a different history than the
  // current views, so serving it through the incremental path would hand
  // out stale arrays. The refresh right after a restore must be a full
  // rebuild.
  EXPECT_GE(g.full_view_rebuilds(), 1u);
  expect_matches_reference(g, g.get_graph(T - 1));
}

TEST(ViewIncremental, AppendedDeltasServeFreshViewsThroughTheCache) {
  DtdgEvents ev = window_edge_stream(50, random_stream(50, 1000, 5), 0.05);
  GpmaGraph inc(ev);
  GpmaGraph full(ev);
  full.set_incremental_views(false);
  const uint32_t T = ev.num_timestamps();
  inc.get_graph(T - 1);
  full.get_graph(T - 1);

  // Build a valid streamed delta: delete a few live edges, add a few
  // absent ones.
  EdgeList head = ev.snapshot_edges(T - 1);
  std::set<std::pair<uint32_t, uint32_t>> live(head.begin(), head.end());
  EdgeDelta d;
  for (std::size_t i = 0; i < 3 && i < head.size(); ++i)
    d.deletions.push_back(head[i]);
  Rng rng(17);
  while (d.additions.size() < 5) {
    std::pair<uint32_t, uint32_t> e{
        static_cast<uint32_t>(rng.next_below(50)),
        static_cast<uint32_t>(rng.next_below(50))};
    if (live.insert(e).second) d.additions.push_back(e);
  }
  inc.append_delta(d);
  full.append_delta(d);
  ASSERT_EQ(inc.num_timestamps(), T + 1);

  // Serve the appended timestamp, then bounce through the cached region
  // and back; every stop must agree with the full-rebuild twin and with
  // the sequential reference.
  for (uint32_t t : {T, 0u, T, T - 1, T}) {
    SnapshotView a = inc.get_graph(t);
    SnapshotView b = full.get_graph(t);
    expect_views_identical(inc, full, a, b);
    expect_matches_reference(inc, a);
    if (HasFailure()) FAIL() << "views diverged at timestamp " << t;
  }
}

TEST(ViewIncremental, ThresholdZeroDisablesTheIncrementalPath) {
  setenv("STGRAPH_VIEW_REBUILD_THRESHOLD", "0", 1);
  DtdgEvents ev = window_edge_stream(40, random_stream(40, 800, 3), 0.05);
  GpmaGraph g(ev);  // threshold is read at construction
  unsetenv("STGRAPH_VIEW_REBUILD_THRESHOLD");
  const uint32_t T = ev.num_timestamps();
  for (uint32_t t = 0; t < T; ++t) expect_matches_reference(g, g.get_graph(t));
  EXPECT_EQ(g.incremental_view_updates(), 0u);
  EXPECT_GT(g.full_view_rebuilds(), 0u);
}

}  // namespace
}  // namespace stgraph
