// Result type of the structural invariant analyzer (src/verify/): every
// `verify::check_*` returns a Report — the list of invariant violations it
// found, tagged with the checker that found them, plus a count of checks
// actually evaluated (so "OK" can be distinguished from "nothing ran").
// Reports compose with merge(), print with to_string(), and gate with
// ok(); the STGRAPH_VALIDATE hooks (verify/validate.hpp) turn a failing
// report into an StgError at the mutation site that produced it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stgraph::verify {

/// One invariant violation: which checker, and what it saw.
struct Finding {
  std::string checker;
  std::string message;
};

class Report {
 public:
  /// True iff no checker recorded a violation.
  bool ok() const { return findings_.empty(); }

  /// Record a violation. Each checker caps its own reporting (a corrupted
  /// array yields a handful of representative findings, not one per slot).
  void fail(std::string checker, std::string message);

  /// Count one evaluated invariant (cheap bookkeeping so callers can tell
  /// an OK report apart from a checker that skipped everything).
  void note_check() { ++checks_run_; }

  /// Fold `other` into this report (findings append, check counts add).
  void merge(Report other);

  const std::vector<Finding>& findings() const { return findings_; }
  uint64_t checks_run() const { return checks_run_; }

  /// "OK (N invariants checked)" or a line-per-finding summary.
  std::string to_string() const;

 private:
  std::vector<Finding> findings_;
  uint64_t checks_run_ = 0;
};

}  // namespace stgraph::verify
