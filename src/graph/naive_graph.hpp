// NaiveGraph (paper §V-C): every DTDG snapshot fully materialized as a
// device-resident GraphSnapshot during preprocessing — forward CSR,
// reverse CSR, shared edge labels, degree arrays and degree-sorted
// node_ids all prebuilt. get_graph() is an index lookup (fastest variant);
// the cost is O(T · (V + E)) device memory, which is what Figure 8
// measures against GPMAGraph.
#pragma once

#include <vector>

#include "graph/dtdg.hpp"
#include "graph/stgraph_base.hpp"

namespace stgraph {

class NaiveGraph final : public STGraphBase {
 public:
  explicit NaiveGraph(const DtdgEvents& events);

  uint32_t num_nodes() const override { return num_nodes_; }
  uint32_t num_edges_at(uint32_t t) const override;
  uint32_t num_timestamps() const override {
    return static_cast<uint32_t>(snapshots_.size());
  }
  bool is_dynamic() const override { return true; }
  std::string format_name() const override { return "NaiveGraph"; }

  SnapshotView get_graph(uint32_t t) override;
  SnapshotView get_backward_graph(uint32_t t) override;

  std::size_t device_bytes() const override;

  /// Streaming ingestion: materialize snapshot T from snapshot T-1 plus
  /// `delta` (the same relabel-and-rebuild preprocessing the constructor
  /// runs, applied incrementally). The delta is fully validated against
  /// the current edge set and the new snapshot is built before anything
  /// is published — strong exception guarantee.
  bool supports_append() const override { return true; }
  void append_delta(const EdgeDelta& delta) override;

  const GraphSnapshot& snapshot(uint32_t t) const;

 private:
  uint32_t num_nodes_ = 0;
  std::vector<GraphSnapshot> snapshots_;
};

}  // namespace stgraph
