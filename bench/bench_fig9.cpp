// Figure 9: percentage breakup of STGraph-GPMA's total processing time
// into GNN processing time and graph update time, per DTDG, across
// feature sizes (5% snapshot change). Expected shape: the graph-update
// share shrinks as the feature size grows.
#include <iostream>

#include "common.hpp"

using namespace stgraph;
using namespace stgraph::bench;

int main(int argc, char** argv) {
  BenchOptions opts = parse_options(argc, argv);

  datasets::DynamicLoadOptions dyo;
  dyo.scale = opts.scale_dynamic;

  CsvWriter csv({"dataset", "feature_size", "update_s", "gnn_s",
                 "update_pct", "gnn_pct"});

  for (const auto& ds : datasets::load_all_dynamic(dyo)) {
    const DtdgEvents events = datasets::make_dtdg(ds, 5.0);
    for (int64_t F : feature_sweep(opts)) {
      dyo.feature_size = F;
      const datasets::TemporalSignal signal =
          datasets::make_dynamic_signal(events, dyo);
      const RunResult gpma =
          run_dtdg(events, signal, System::kStgraphGpma, opts);
      const double total = gpma.graph_update_seconds + gpma.gnn_seconds;
      csv.add_row({ds.name, std::to_string(F),
                   CsvWriter::fmt(gpma.graph_update_seconds, 4),
                   CsvWriter::fmt(gpma.gnn_seconds, 4),
                   CsvWriter::fmt(100.0 * gpma.graph_update_seconds /
                                      std::max(total, 1e-9),
                                  1),
                   CsvWriter::fmt(100.0 * gpma.gnn_seconds /
                                      std::max(total, 1e-9),
                                  1)});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  emit("fig9_gpma_time_breakup", csv, opts);
  return 0;
}
