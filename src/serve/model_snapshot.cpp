#include "serve/model_snapshot.hpp"

#include "util/failpoint.hpp"

namespace stgraph::serve {

ModelSnapshot ModelSnapshot::from_train_state(const io::TrainState& state) {
  ModelSnapshot snap;
  snap.params_.reserve(state.params.size());
  for (const nn::Parameter& p : state.params) {
    // clone() drops autograd history and shares nothing with the source —
    // the snapshot must stay frozen even if the producing trainer keeps
    // stepping the same tensors.
    snap.params_.push_back({p.name, p.tensor.clone()});
  }
  if (state.hidden.defined()) snap.hidden_ = state.hidden.clone();
  snap.config_hash_ = state.config_hash;
  snap.source_epoch_ = state.epoch;
  return snap;
}

ModelSnapshot ModelSnapshot::load(const std::string& path) {
  STG_FAILPOINT("serve.checkpoint.load",
                throw StgError("failpoint serve.checkpoint.load fired for " +
                               path));
  return from_train_state(io::load_train_state(path));
}

int64_t ModelSnapshot::parameter_count() const {
  int64_t n = 0;
  for (const nn::Parameter& p : params_) n += p.tensor.numel();
  return n;
}

void ModelSnapshot::install(nn::Module& model) const {
  auto live = model.parameters();
  io::restore_parameters(live, params_, "model snapshot");
  model.eval();
}

}  // namespace stgraph::serve
