// Temporal signal containers — the analogue of PyG-T's
// StaticGraphTemporalSignal / DynamicGraphTemporalSignal iterators. A
// signal carries, per timestamp, the node features the model consumes and
// the supervision targets of the benchmark task (node regression for
// static-temporal graphs, link prediction for DTDGs).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace stgraph::datasets {

/// Positive + negative vertex pairs with 0/1 labels for one timestamp's
/// link-prediction step.
struct LinkSamples {
  std::vector<uint32_t> src;
  std::vector<uint32_t> dst;
  Tensor labels;  // [P], 1 for positive pairs, 0 for sampled negatives
};

/// Per-timestamp features + targets over a fixed node set.
struct TemporalSignal {
  std::vector<Tensor> features;       // T × [N, F]
  std::vector<Tensor> targets;        // node regression: T × [N, 1]
  std::vector<LinkSamples> links;     // link prediction: T entries
  /// Static graphs: per-edge weights shared by all timestamps, indexed by
  /// the edge labels both CSRs share. Empty when unweighted.
  std::vector<float> edge_weights;

  uint32_t num_timestamps() const {
    return static_cast<uint32_t>(features.size());
  }
  int64_t feature_size() const {
    return features.empty() ? 0 : features[0].cols();
  }
  bool has_node_targets() const { return !targets.empty(); }
  bool has_link_samples() const { return !links.empty(); }

  std::size_t device_bytes() const;
};

/// Temporal split at `train_ratio` of the timestamps (PyG-T's
/// temporal_signal_split): the first part trains, the remainder
/// evaluates. Tensors are shared, not copied; static edge weights are
/// carried into both halves.
std::pair<TemporalSignal, TemporalSignal> temporal_signal_split(
    const TemporalSignal& signal, double train_ratio);

}  // namespace stgraph::datasets
