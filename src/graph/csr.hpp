// CSR storage for graph snapshots, matching the paper's Figure 3 layout:
// row_offset / col_indices / eids plus the auxiliary `node_ids` array that
// lists vertices in descending degree order. STGraph processes vertices in
// `node_ids` order instead of relabelling the graph — high-degree vertices
// are scheduled first so their long neighbor lists overlap with many short
// ones (the paper's load-balancing argument), and feature vectors never
// need to be permuted.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "runtime/device_buffer.hpp"

namespace stgraph {

/// Sentinel marking an empty PMA slot inside a gapped column array.
inline constexpr uint32_t kSpace = 0xFFFFFFFFu;

/// The GCN symmetric normalization coefficient for an edge u→v,
/// 1/sqrt((din(u)+1)(din(v)+1)). This single definition is shared by the
/// interpreted kernel, the specialized engine, and every per-snapshot
/// edge-coefficient cache builder so cached and inline values are
/// bit-identical (the product commutes, so argument order is free).
inline float gcn_norm_coef(uint32_t din_u, uint32_t din_v) {
  const float dp = static_cast<float>(din_u + 1);
  const float dc = static_cast<float>(din_v + 1);
  return 1.0f / std::sqrt(dp * dc);
}

/// Edge in COO form with its label (eid). Labels are shared between the
/// forward and backward CSRs so per-edge data (weights) resolves
/// identically in both passes.
struct CooEdge {
  uint32_t src;
  uint32_t dst;
  uint32_t eid;
};

/// One direction of adjacency in CSR form, device-resident.
struct Csr {
  uint32_t num_nodes = 0;
  uint32_t num_edges = 0;
  DeviceBuffer<uint32_t> row_offset;   // num_nodes + 1
  DeviceBuffer<uint32_t> col_indices;  // num_edges (may contain kSpace in gapped views)
  DeviceBuffer<uint32_t> eids;         // num_edges, shared edge labels
  /// Vertices in descending row-degree order — the processing order.
  DeviceBuffer<uint32_t> node_ids;

  Csr() = default;
  Csr(Csr&&) = default;
  Csr& operator=(Csr&&) = default;
  Csr(const Csr&) = delete;
  Csr& operator=(const Csr&) = delete;
  Csr clone() const;

  std::size_t device_bytes() const {
    return row_offset.bytes() + col_indices.bytes() + eids.bytes() +
           node_ids.bytes();
  }
};

/// Non-owning, kernel-facing view of one adjacency direction.
struct CsrView {
  uint32_t num_nodes = 0;
  uint32_t num_edges = 0;
  const uint32_t* row_offset = nullptr;
  const uint32_t* col_indices = nullptr;
  const uint32_t* eids = nullptr;
  /// Processing order; null means natural order.
  const uint32_t* node_ids = nullptr;
  /// True when col_indices may contain kSpace sentinels (gapped PMA view).
  bool has_gaps = false;
  // ---- optional vertex sharding (see graph/shard.hpp) -------------------
  /// When num_shards > 1, `shard_order` concatenates the per-shard
  /// processing orders (each shard's rows in descending row-degree order)
  /// and `shard_bounds` (num_shards + 1 entries) delimits shard s as
  /// shard_order[shard_bounds[s] .. shard_bounds[s+1]). Rows are disjoint
  /// across shards, so the kernel engine may process shards on different
  /// lanes while keeping every per-row reduction serial — output rows are
  /// written by exactly one lane and stay bit-identical to the unsharded
  /// schedule. num_shards <= 1 means unsharded (fields may be null).
  const uint32_t* shard_order = nullptr;
  const uint32_t* shard_bounds = nullptr;
  uint32_t num_shards = 1;
};

CsrView view_of(const Csr& csr);

/// Build a CSR keyed by `src` (out-adjacency) from unsorted COO edges.
/// Counting sort by row: exclusive scan of degrees, then scatter.
Csr build_csr(uint32_t num_nodes, const std::vector<CooEdge>& edges);

/// Build the reverse CSR (keyed by dst) with the SAME eids.
Csr build_reverse_csr(uint32_t num_nodes, const std::vector<CooEdge>& edges);

/// Degree array of the row dimension of `csr` (row_offset deltas).
std::vector<uint32_t> csr_degrees(const Csr& csr);

/// Fill csr.node_ids with vertices sorted by descending degree (stable, so
/// equal-degree vertices keep id order and results are deterministic).
void degree_sort(Csr& csr);

/// A fully materialized snapshot: both directions + degree arrays.
/// This is what NaiveGraph stores per timestamp (the memory-hungry path).
struct GraphSnapshot {
  uint32_t num_nodes = 0;
  uint32_t num_edges = 0;
  Csr out_csr;  // rows = src; used by the backward pass (out-neighbors)
  Csr in_csr;   // rows = dst; used by the forward pass (in-neighbors)
  DeviceBuffer<uint32_t> in_degrees;
  DeviceBuffer<uint32_t> out_degrees;
  /// Per-edge GCN-norm cache indexed by eid (see gcn_norm_coef). Built once
  /// per snapshot so kernels with kGcnNorm coefs skip the per-edge rsqrt.
  DeviceBuffer<float> gcn_coef;

  GraphSnapshot() = default;
  GraphSnapshot(GraphSnapshot&&) = default;
  GraphSnapshot& operator=(GraphSnapshot&&) = default;
  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  std::size_t device_bytes() const {
    return out_csr.device_bytes() + in_csr.device_bytes() +
           in_degrees.bytes() + out_degrees.bytes() + gcn_coef.bytes();
  }
};

/// Build a full snapshot (both CSRs, degree sort, shared eids 0..m-1 in the
/// order edges appear in `edges` — callers control labelling).
GraphSnapshot build_snapshot(uint32_t num_nodes,
                             const std::vector<CooEdge>& edges);

}  // namespace stgraph
