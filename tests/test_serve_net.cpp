// Loopback end-to-end tests for the network serving front-end: binary
// predict/ingest/stats/health round trips that stay bit-identical to the
// trainer's reference pass, the JSON fallback, concurrent clients against
// replicated readers while ingest and snapshot installs run, torn-read /
// short-write fault injection, protocol-error hangups, drain-on-stop
// semantics for parked requests, and fd-count parity across a full
// start/traffic/stop cycle.
#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "net/client.hpp"
#include "net/frontend.hpp"
#include "nn/models.hpp"
#include "serve/server.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

constexpr int64_t kFeat = 6;
constexpr int64_t kHidden = 8;
const char* kCkpt = "/tmp/stgraph_test_serve_net.stgt";

DtdgEvents tiny_events() {
  DtdgEvents ev;
  ev.num_nodes = 10;
  for (uint32_t i = 0; i < 10; ++i)
    ev.base_edges.emplace_back(i, (i + 1) % 10);  // directed ring
  EdgeDelta d1;
  d1.additions = {{0, 5}, {1, 6}, {2, 7}};
  EdgeDelta d2;
  d2.deletions = {{0, 1}, {1, 2}};
  d2.additions = {{1, 0}, {2, 1}};
  EdgeDelta d3;
  d3.additions = {{3, 8}, {4, 9}};
  d3.deletions = {{2, 7}};
  ev.deltas = {d1, d2, d3};
  return ev;
}

datasets::DynamicLoadOptions signal_opts() {
  datasets::DynamicLoadOptions opts;
  opts.feature_size = kFeat;
  opts.link_samples_per_step = 16;
  return opts;
}

DtdgEvents base_only(const DtdgEvents& ev) {
  return DtdgEvents{ev.num_nodes, ev.base_edges, {}};
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0)
      << what << ": outputs are not bit-identical";
}

std::vector<Tensor> train_and_checkpoint(const DtdgEvents& events,
                                         const datasets::TemporalSignal& sig) {
  GpmaGraph graph(events);
  Rng rng(3);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.sequence_length = 4;
  cfg.lr = 2e-2f;
  cfg.task = core::Task::kLinkPrediction;
  core::STGraphTrainer trainer(graph, model, sig, cfg);
  trainer.train();
  trainer.save_checkpoint(kCkpt);
  return trainer.evaluate_outputs();
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  DIR* d = opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  while (readdir(d) != nullptr) ++n;
  closedir(d);
  return n;
}

/// Everything one loopback test needs: graph, model, server, frontend.
/// Declaration order matters — the signal and graph feed the server.
struct NetRig {
  DtdgEvents events;
  datasets::TemporalSignal sig;
  GpmaGraph graph;
  Rng rng;
  nn::TGCNEncoder model;
  std::unique_ptr<serve::Server> server;
  std::unique_ptr<net::Frontend> frontend;

  explicit NetRig(serve::ServeConfig cfg = {}, net::FrontendConfig fcfg = {})
      : events(tiny_events()),
        sig(datasets::make_dynamic_signal(events, signal_opts())),
        graph(base_only(events)),
        rng(999),
        model(kFeat, kHidden, rng) {
    server = std::make_unique<serve::Server>(graph, model, cfg);
    frontend = std::make_unique<net::Frontend>(*server, std::move(fcfg));
  }

  ~NetRig() { stop(); }

  void start() {
    server->start(sig.features[0]);
    frontend->start();
  }

  void stop() {
    if (frontend->running()) frontend->stop();
    if (server->running()) server->stop();
  }

  net::Client connect(double timeout_ms = 5000.0) {
    return net::Client("127.0.0.1", frontend->port(), timeout_ms);
  }
};

class ServeNetTest : public ::testing::Test {
 protected:
  void TearDown() override {
    failpoint::disable_all();
    std::remove(kCkpt);
  }
};

TEST_F(ServeNetTest, PredictAndIngestOverLoopbackMatchTheTrainerBitExact) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  const std::vector<Tensor> ref = train_and_checkpoint(events, sig);

  serve::ServeConfig cfg;
  cfg.num_readers = 2;
  NetRig rig(cfg);
  rig.server->load(kCkpt);
  rig.start();

  net::Client client = rig.connect();
  const auto T = static_cast<uint32_t>(ref.size());
  for (uint32_t t = 0; t < T; ++t) {
    net::PredictWire full = client.predict();
    EXPECT_EQ(full.time, t);
    EXPECT_FALSE(full.stale);
    expect_bitwise_equal(full.outputs, ref[t],
                         "t=" + std::to_string(t) + " over loopback");

    // Row-subset predict gathers rows of the same published step.
    net::PredictWire sub = client.predict({7, 2});
    ASSERT_EQ(sub.outputs.rows(), 2);
    for (int64_t c = 0; c < full.outputs.cols(); ++c) {
      EXPECT_EQ(sub.outputs.data()[c],
                full.outputs.data()[7 * full.outputs.cols() + c]);
      EXPECT_EQ(sub.outputs.data()[full.outputs.cols() + c],
                full.outputs.data()[2 * full.outputs.cols() + c]);
    }

    if (t + 1 < T) {
      net::IngestWire ing =
          client.ingest(events.deltas[t], sig.features[t + 1]);
      EXPECT_EQ(ing.time, t + 1);
      EXPECT_GT(ing.version, 0u);
    }
  }

  const std::string health = client.health_json();
  EXPECT_NE(health.find("\"health\""), std::string::npos);
  EXPECT_NE(health.find("\"version\""), std::string::npos);
  const std::string stats = client.stats_json();
  EXPECT_NE(stats.find("\"tenants\""), std::string::npos);
  EXPECT_NE(stats.find("\"reader_utilization\""), std::string::npos);

  rig.stop();
  const net::FrontendStats fs = rig.frontend->stats();
  EXPECT_EQ(fs.accepted, 1u);
  EXPECT_EQ(fs.closed, 1u);
  EXPECT_EQ(fs.protocol_errors, 0u);
  EXPECT_GE(fs.frames_in, 2u * T);
  EXPECT_EQ(fs.frames_out, fs.frames_in);  // every request got an answer
}

TEST_F(ServeNetTest, JsonFallbackAnswersOneLinePerRequest) {
  NetRig rig;
  rig.start();

  net::Client client = rig.connect();
  const std::string health = client.json_round_trip("{\"op\": \"health\"}");
  EXPECT_EQ(health.front(), '{');
  EXPECT_NE(health.find("\"health\""), std::string::npos);

  const std::string pred =
      client.json_round_trip("{\"op\": \"predict\", \"nodes\": [1, 3]}");
  EXPECT_NE(pred.find("\"outputs\""), std::string::npos);
  EXPECT_NE(pred.find("\"version\""), std::string::npos);

  // A bad request answers with an error line and KEEPS the connection —
  // newline framing survives where binary framing could not.
  const std::string err = client.json_round_trip("{\"op\": \"reboot\"}");
  EXPECT_NE(err.find("\"error\""), std::string::npos);
  EXPECT_NE(err.find("bad_request"), std::string::npos);

  const std::string stats = client.json_round_trip("{\"op\": \"stats\"}");
  EXPECT_EQ(stats.front(), '{');
  EXPECT_EQ(stats.find('\n'), std::string::npos);  // folded to one line

  EXPECT_EQ(rig.frontend->stats().json_lines_in, 4u);
}

TEST_F(ServeNetTest, GarbageBytesGetATypedErrorFrameThenTheBootPrintsClose) {
  NetRig rig;
  rig.start();

  net::Client client = rig.connect(/*timeout_ms=*/2000.0);
  const char garbage[] = "GET / HTTP/1.0\r\n\r\n";
  client.send_raw(garbage, sizeof(garbage) - 1);

  const std::vector<uint8_t> raw = client.read_until_close();
  net::FrameDecoder dec;
  dec.feed(raw.data(), raw.size());
  net::Frame f;
  std::string line;
  ASSERT_EQ(dec.next(&f, &line), net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(f.verb, net::Verb::kError);
  std::string message;
  EXPECT_EQ(net::parse_error(f.payload, &message),
            net::ErrorCode::kBadRequest);
  EXPECT_NE(message.find("magic"), std::string::npos);

  // The frontend must have dropped the connection after the goodbye.
  for (int i = 0; i < 500 && rig.frontend->connections() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(rig.frontend->connections(), 0u);
  EXPECT_EQ(rig.frontend->stats().protocol_errors, 1u);
}

TEST_F(ServeNetTest, ConcurrentClientsIngestAndInstallStayBitExact) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  const std::vector<Tensor> ref = train_and_checkpoint(events, sig);

  serve::ServeConfig cfg;
  cfg.num_readers = 4;
  cfg.tenants = {{1, 3, 0}, {2, 1, 0}};
  NetRig rig(cfg);
  rig.server->load(kCkpt);
  rig.start();

  std::atomic<bool> go{true};
  std::atomic<uint64_t> ok{0}, shed{0};
  std::atomic<int> mismatches{0};

  // Predict clients: every response must be the reference output for the
  // timestamp it is tagged with, no matter which reader served it or how
  // far ingest has advanced meanwhile.
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      net::Client client = rig.connect();
      const uint16_t tenant = c % 2 == 0 ? 1 : 2;
      while (go.load(std::memory_order_acquire)) {
        try {
          net::PredictWire w = client.predict({}, tenant);
          if (w.time >= ref.size() ||
              std::memcmp(w.outputs.data(), ref[w.time].data(),
                          static_cast<std::size_t>(w.outputs.numel()) *
                              sizeof(float)) != 0)
            mismatches.fetch_add(1);
          ok.fetch_add(1);
        } catch (const net::NetError&) {
          shed.fetch_add(1);  // typed shed crossing the wire is fine
        }
      }
    });
  }

  // One ingest client advances the timeline over the same socket layer,
  // and the main thread re-installs the current snapshot between steps —
  // the atomic swap must never produce a non-reference output.
  {
    net::Client ingest_client = rig.connect();
    for (uint32_t t = 0; t + 1 < ref.size(); ++t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      rig.server->install(rig.server->snapshot());
      net::IngestWire ing =
          ingest_client.ingest(events.deltas[t], sig.features[t + 1]);
      EXPECT_EQ(ing.time, t + 1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }

  go.store(false, std::memory_order_release);
  for (auto& th : clients) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(ok.load(), 0u);

  rig.stop();

  // Per-tenant accounting identity across the whole run: everything issued
  // is accounted for exactly once.
  const serve::StatsReport report = rig.server->stats();
  for (const auto& tr : report.tenants) {
    EXPECT_EQ(tr.issued, tr.requests + tr.stale_served + tr.failed +
                             tr.shed_total)
        << "tenant " << tr.id;
  }
}

TEST_F(ServeNetTest, TornReadsAndShortWritesStillDeliverEveryFrame) {
  const DtdgEvents events = tiny_events();
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, signal_opts());
  const std::vector<Tensor> ref = train_and_checkpoint(events, sig);

  NetRig rig;
  rig.server->load(kCkpt);
  rig.start();

  // Every recv() on the frontend now returns a single byte and every
  // send() writes a single byte: the decoder reassembles, the write queue
  // drains via EPOLLOUT, and the payload still arrives bit-exact.
  failpoint::enable("net.read.torn", failpoint::Spec::always());
  failpoint::enable("net.write.short", failpoint::Spec::always());

  net::Client client = rig.connect(/*timeout_ms=*/30000.0);
  for (int i = 0; i < 3; ++i) {
    net::PredictWire w = client.predict();
    EXPECT_EQ(w.time, 0u);
    expect_bitwise_equal(w.outputs, ref[0], "torn round trip");
  }
  const std::string health = client.health_json();
  EXPECT_NE(health.find("\"health\""), std::string::npos);

  failpoint::disable_all();
  rig.stop();
  EXPECT_EQ(rig.frontend->stats().protocol_errors, 0u);
}

TEST_F(ServeNetTest, AcceptFailpointDropsTheClientButNotTheFrontend) {
  NetRig rig;
  rig.start();

  failpoint::enable("net.accept", failpoint::Spec::once());
  {
    // This connect succeeds at TCP level but the frontend drops the
    // accepted fd before registering it; the client sees EOF.
    net::Client doomed = rig.connect(/*timeout_ms=*/2000.0);
    EXPECT_TRUE(doomed.read_until_close().empty());
  }
  failpoint::disable_all();

  // The frontend survives and serves the next client normally.
  net::Client client = rig.connect();
  EXPECT_NE(client.health_json().find("\"health\""), std::string::npos);
  EXPECT_EQ(rig.frontend->connections(), 1u);
}

TEST_F(ServeNetTest, ServerStopRejectsParkedRequestsWithDrainingErrors) {
  serve::ServeConfig cfg;
  cfg.num_readers = 1;
  cfg.max_batch = 1;  // one request per (delayed) batch, the rest stay parked
  NetRig rig(cfg);
  rig.start();

  // Slow every batch so requests pile up parked behind the reader.
  failpoint::enable("serve.batch.delay", failpoint::Spec::always());

  net::Client client = rig.connect(/*timeout_ms=*/5000.0);
  constexpr int kInflight = 6;
  for (uint64_t rid = 1; rid <= kInflight; ++rid) {
    net::Frame req;
    req.verb = net::Verb::kPredict;
    req.request_id = rid;
    req.payload = net::build_predict_request({});
    const std::vector<uint8_t> bytes = net::encode_frame(req);
    client.send_raw(bytes.data(), bytes.size());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Stop the SERVER while the frontend and the client connection live on:
  // every parked request must resolve — fulfilled or shed as draining —
  // and the answers must still reach the socket. Then stop the frontend so
  // the client reads a clean EOF after the final flush.
  rig.server->stop();
  rig.frontend->stop();

  int fulfilled = 0, draining = 0;
  net::FrameDecoder dec;
  std::vector<uint8_t> raw = client.read_until_close();
  dec.feed(raw.data(), raw.size());
  net::Frame f;
  std::string line;
  while (dec.next(&f, &line) == net::FrameDecoder::Status::kFrame) {
    if (f.verb == net::Verb::kPredictResp) {
      ++fulfilled;
    } else {
      ASSERT_EQ(f.verb, net::Verb::kError);
      std::string message;
      EXPECT_EQ(net::parse_error(f.payload, &message),
                net::ErrorCode::kDraining);
      ++draining;
    }
  }
  EXPECT_EQ(fulfilled + draining, kInflight);
  EXPECT_GT(draining, 0) << "stop() should have caught parked requests";

  failpoint::disable_all();
  rig.stop();
}

TEST_F(ServeNetTest, IngestDuringStopGetsTheTypedDrainingError) {
  NetRig rig;
  rig.start();
  net::Client client = rig.connect(/*timeout_ms=*/5000.0);
  client.ingest(rig.events.deltas[0], rig.sig.features[1]);

  // Hold stop() in the window where the ingest worker is already joined
  // but the loop thread still serves frames: an INGEST landing there must
  // get the typed draining reject, not sit forever in a queue nobody
  // drains.
  failpoint::enable("net.stop.ingest_window", failpoint::Spec::always());
  std::thread stopper([&] { rig.frontend->stop(); });
  bool drained = false;
  for (int i = 0; i < 500 && !drained; ++i) {
    try {
      // Empty deltas keep the timeline appendable no matter how many land
      // before stop() flips the flag.
      client.ingest(EdgeDelta{}, rig.sig.features[1]);
    } catch (const net::NetError& e) {
      EXPECT_EQ(e.code(), net::ErrorCode::kDraining);
      drained = true;
    } catch (const StgError&) {
      break;  // frontend finished stopping before we hit the window
    }
  }
  stopper.join();
  EXPECT_TRUE(drained) << "INGEST in the stop window was not rejected";
  failpoint::disable_all();
  rig.stop();
}

TEST_F(ServeNetTest, FullCycleLeaksNoFileDescriptors) {
  const std::size_t before = open_fd_count();
  {
    NetRig rig;
    rig.start();
    {
      std::vector<net::Client> clients;
      for (int i = 0; i < 4; ++i) clients.push_back(rig.connect());
      for (auto& c : clients) {
        c.predict();
        c.health_json();
      }
      EXPECT_EQ(rig.frontend->connections(), 4u);
    }  // clients close their ends; server reaps on EOF or at stop()
    rig.stop();
    EXPECT_EQ(rig.frontend->stats().accepted, 4u);
    EXPECT_EQ(rig.frontend->stats().closed, 4u);
  }
  EXPECT_EQ(open_fd_count(), before)
      << "fd count changed across a start/traffic/stop cycle";
}

}  // namespace
}  // namespace stgraph
