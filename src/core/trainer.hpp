// STGraph-Training (Algorithm 1): sequence-chunked TGNN training over a
// temporally-aware executor.
//
// Per sequence: the forward loop positions the graph object per timestamp
// (pushing DTDG snapshots onto the Graph Stack), layers push saved state
// onto the State Stack, and the accumulated loss is backpropagated — the
// autograd engine visits timestamps in LIFO order, so the executor's
// stacks drain exactly in reverse, which verify_drained() asserts after
// every sequence.
#pragma once

#include <memory>

#include "core/executor.hpp"
#include "datasets/signal.hpp"
#include "nn/models.hpp"
#include "nn/optim.hpp"

namespace stgraph::core {

enum class Task { kNodeRegression, kLinkPrediction };

struct TrainConfig {
  uint32_t epochs = 1;
  uint32_t sequence_length = 8;
  float lr = 1e-2f;
  Task task = Task::kNodeRegression;
  /// State-Stack backward-needs pruning (Figure 6 ablation switch).
  bool state_pruning = true;
};

struct EpochStats {
  double loss = 0.0;                  // mean per-timestamp loss
  double seconds = 0.0;               // wall clock for the epoch
  double graph_update_seconds = 0.0;  // Figure 9: snapshot construction
  double gnn_seconds = 0.0;           // Figure 9: everything else
};

class STGraphTrainer {
 public:
  STGraphTrainer(STGraphBase& graph, nn::TemporalModel& model,
                 const datasets::TemporalSignal& signal, TrainConfig config);

  /// One full training epoch (all sequences); returns stats.
  EpochStats train_epoch();

  /// Run `config.epochs` epochs; returns per-epoch stats.
  std::vector<EpochStats> train();

  /// Mean per-timestamp loss without training (evaluation pass).
  double evaluate();

  TemporalExecutor& executor() { return executor_; }

 private:
  EpochStats run_epoch(bool training);

  STGraphBase& graph_;
  nn::TemporalModel& model_;
  const datasets::TemporalSignal& signal_;
  TrainConfig config_;
  TemporalExecutor executor_;
  nn::Adam optimizer_;
};

}  // namespace stgraph::core
