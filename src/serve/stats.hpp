// Serving observability (the serve subsystem's stats surface): per-request
// latency percentiles from a fixed-bucket histogram, micro-batch
// occupancy, queue pressure, delta-ingestion throughput, and the
// robustness counters (typed shed reasons, stale reads, circuit trips,
// watchdog stalls, WAL volume, recovery cost). Everything is lock-free
// (atomic counters and buckets) so the hot predict path never takes a
// lock to record a sample, and report() can be called from any thread
// while the server runs. The JSON form of a report is what
// `run_all.sh serve-smoke` writes to BENCH_serve.json, what
// bench_serve_robust writes to BENCH_serve_robust.json, and what the
// network front-end's STATS verb returns on the wire.
//
// Reader replication: each replicated reader thread records request
// latency into its OWN LatencyHistogram (no shared cache line on the hot
// path); report() merges the per-reader histograms with the shared one
// (stale reads recorded from client threads) via LatencyHistogram::merge.
// Merge is associative and order-independent — bucket-wise addition — so
// the aggregate percentiles are independent of reader count.
//
// Accounting invariant (asserted by the chaos harness, per tenant AND in
// aggregate): every predict the server ever accepted a call for lands in
// exactly one of
//   requests (fulfilled) | stale_served | failed | shed[reason],
// so `issued == requests + stale_served + failed + shed_total` — nothing
// is silently dropped.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/health.hpp"
#include "util/thread_annotations.hpp"

namespace stgraph::serve {

// Concurrency contract: every member of LatencyHistogram and ServerStats
// is a std::atomic touched with relaxed ordering — there is deliberately
// no lock for Clang Thread Safety Analysis to track here (the analysis
// sees atomics as unguarded by design). The TSan job is what exercises
// this file's lock-freedom claims; the lint job proves the rest of the
// serve layer never reaches these counters while holding exec_mu_ out of
// order (see Server's STG_ACQUIRED_BEFORE chain).

/// Fixed-bucket log-2 latency histogram: bucket i counts samples in
/// [2^i, 2^(i+1)) microseconds, so 40 buckets span 1 µs to ~12.7 days.
/// percentile() returns the upper bound of the bucket holding the
/// requested rank — resolution is a factor of two, which is what a serving
/// dashboard needs (is p99 1 ms or 1 s?), at the cost of zero allocation
/// and O(1) recording.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(double micros);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double mean_micros() const;
  double max_micros() const {
    return static_cast<double>(max_us_.load(std::memory_order_relaxed));
  }
  /// p in (0, 100]; returns 0 when no samples were recorded.
  double percentile(double p) const;
  void reset();

  /// Fold `other`'s samples into this histogram: bucket-wise addition plus
  /// count/sum/max. Associative and commutative (each field merges through
  /// + or max), so per-reader-thread histograms aggregate into one report
  /// in any order with identical percentiles — the property the reader
  /// replication design relies on. `other` may be concurrently recording;
  /// the merge reads each cell once (relaxed), which can lag in-flight
  /// samples but never tears.
  void merge(const LatencyHistogram& other);

  /// Raw bucket occupancy (tests: merge associativity, quantile checks).
  uint64_t bucket_count(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// Per-tenant slice of the request accounting, reported per tenant id so
/// the identity `issued == requests + stale_served + failed + shed_total`
/// can be asserted for every tenant independently.
struct TenantReport {
  uint16_t id = 0;
  uint64_t issued = 0;        ///< predicts submitted under this tenant
  uint64_t requests = 0;      ///< fulfilled from a fresh step
  uint64_t stale_served = 0;  ///< answered from the last-good step
  uint64_t failed = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline_expired = 0;
  uint64_t shed_draining = 0;
  uint64_t shed_circuit_open = 0;
  uint64_t shed_total = 0;
};

/// One coherent read of the counters (values are sampled independently —
/// a report taken mid-flight can be off by in-flight requests, never torn).
struct StatsReport {
  // ---- request path ----------------------------------------------------
  uint64_t requests = 0;        ///< fulfilled predict() calls (fresh step)
  uint64_t rows = 0;            ///< output rows served across all requests
  uint64_t failed = 0;          ///< requests failed (dispatch fault, bad node)
  uint64_t rejected = 0;        ///< total shed requests (= shed_total)
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  double mean_us = 0.0, max_us = 0.0;
  // ---- load shedding (typed rejection taxonomy) ------------------------
  uint64_t shed_queue_full = 0;       ///< bounded queue / quota exceeded
  uint64_t shed_deadline_expired = 0; ///< at admission, dequeue or completion
  uint64_t shed_draining = 0;         ///< rejected during stop()
  uint64_t shed_circuit_open = 0;     ///< circuit open, no stale step
  uint64_t shed_total = 0;
  // ---- per-tenant breakdown --------------------------------------------
  std::vector<TenantReport> tenants;
  // ---- degraded mode ---------------------------------------------------
  uint64_t stale_served = 0;    ///< predicts answered from the last-good step
  uint64_t circuit_trips = 0;   ///< circuit open transitions
  uint64_t watchdog_stalls = 0; ///< exec-loop stalls the watchdog flagged
  std::string health = "starting";
  // ---- batching --------------------------------------------------------
  uint64_t batches = 0;         ///< micro-batches dispatched
  double batch_occupancy = 0.0; ///< mean requests per dispatched batch
  std::size_t max_queue_depth = 0;
  // ---- replicated readers ----------------------------------------------
  uint64_t reader_threads = 0;
  /// Fraction of wall time (since start()) each reader spent inside a
  /// batch; the headroom signal the load generator reports alongside
  /// throughput.
  std::vector<double> reader_utilization;
  // ---- execution -------------------------------------------------------
  uint64_t forward_passes = 0;  ///< fresh forward executions
  uint64_t cache_hits = 0;      ///< batches/ingests served from the cached step
  double forward_seconds = 0.0;
  // ---- ingestion -------------------------------------------------------
  uint64_t deltas_applied = 0;
  uint64_t delta_edges = 0;     ///< additions + deletions across all batches
  double ingest_seconds = 0.0;
  double delta_edges_per_sec = 0.0;
  // ---- durability ------------------------------------------------------
  uint64_t wal_records = 0;     ///< records appended this run
  uint64_t wal_bytes = 0;
  uint64_t recovered_records = 0;  ///< WAL records replayed by recover()
  double recovery_seconds = 0.0;   ///< wall time of the last recover()
  // ---- snapshot lifecycle ----------------------------------------------
  uint64_t snapshot_swaps = 0;

  std::string to_json() const;
};

/// Thread-safe counter bundle owned by serve::Server.
///
/// Tenant slots and reader histograms are sized once by configure()
/// (called from the Server constructor, before any thread can record) and
/// never resized, so every record_* stays lock-free. `tenant_slot` is the
/// dense index the server resolves from a tenant id at admission; slot 0
/// is the default tenant. `reader` selects the per-reader histogram;
/// kNoReader records into the shared histogram (stale reads, which are
/// served from client threads).
class ServerStats {
 public:
  static constexpr std::size_t kNoReader = ~std::size_t{0};
  /// record_shed / record_failed with kNoTenant update only the global
  /// counters — used by the ingest path, whose sheds are not part of any
  /// tenant's predict accounting identity.
  static constexpr std::size_t kNoTenant = ~std::size_t{0};

  ServerStats() { configure({0}, 1); }

  /// Size the per-tenant and per-reader slots. Must be called before any
  /// recording thread exists (Server constructor).
  void configure(std::vector<uint16_t> tenant_ids, std::size_t num_readers);

  void record_issued(std::size_t tenant_slot);
  void record_request(double total_micros, uint64_t output_rows,
                      std::size_t tenant_slot = 0,
                      std::size_t reader = kNoReader);
  void record_batch(std::size_t occupancy);
  void record_forward(double seconds);
  void record_cache_hit();
  void record_failed(uint64_t n, std::size_t tenant_slot = kNoTenant);
  void record_shed(ShedReason reason, uint64_t n = 1,
                   std::size_t tenant_slot = kNoTenant);
  void record_stale_served(double total_micros, uint64_t output_rows,
                           std::size_t tenant_slot = 0);
  void record_circuit_trip();
  void record_watchdog_stall();
  void record_ingest(uint64_t edges, double seconds);
  void record_wal_append(uint64_t bytes);
  void set_recovery(uint64_t records, double seconds);
  void record_swap();

  /// Reader-thread liveness accounting: stamp the serving start (start()),
  /// and add the wall time reader `r` spent processing a batch.
  void mark_serving_started(int64_t steady_ns);
  void add_reader_busy(std::size_t reader, uint64_t busy_ns);

  const LatencyHistogram& latency() const { return latency_; }
  LatencyHistogram& reader_latency(std::size_t reader) {
    return reader_hist_[reader];
  }
  uint64_t shed(ShedReason reason) const {
    return shed_[static_cast<std::size_t>(reason)].load(
        std::memory_order_relaxed);
  }
  /// `max_queue_depth` comes from the request queue, which tracks it;
  /// `health` from the server's state machine; `steady_now_ns` anchors the
  /// reader-utilization denominators.
  StatsReport report(std::size_t max_queue_depth,
                     HealthState health = HealthState::kStarting,
                     int64_t steady_now_ns = 0) const;

 private:
  struct TenantCounters {
    std::atomic<uint64_t> issued{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> stale{0};
    std::atomic<uint64_t> failed{0};
    std::array<std::atomic<uint64_t>, 4> shed{};
  };
  struct ReaderCounters {
    std::atomic<uint64_t> busy_ns{0};
  };

  LatencyHistogram latency_;
  std::vector<uint16_t> tenant_ids_;
  std::vector<TenantCounters> tenant_;
  std::vector<LatencyHistogram> reader_hist_;
  std::vector<ReaderCounters> reader_;
  std::atomic<int64_t> serving_started_ns_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> failed_{0};
  std::array<std::atomic<uint64_t>, 4> shed_{};
  std::atomic<uint64_t> stale_served_{0};
  std::atomic<uint64_t> circuit_trips_{0};
  std::atomic<uint64_t> watchdog_stalls_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_requests_{0};
  std::atomic<uint64_t> forward_passes_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> forward_ns_{0};
  std::atomic<uint64_t> deltas_applied_{0};
  std::atomic<uint64_t> delta_edges_{0};
  std::atomic<uint64_t> ingest_ns_{0};
  std::atomic<uint64_t> wal_records_{0};
  std::atomic<uint64_t> wal_bytes_{0};
  std::atomic<uint64_t> recovered_records_{0};
  std::atomic<uint64_t> recovery_ns_{0};
  std::atomic<uint64_t> snapshot_swaps_{0};
};

}  // namespace stgraph::serve
