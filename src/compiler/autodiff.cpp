#include "compiler/autodiff.hpp"

#include "compiler/passes.hpp"
#include "util/check.hpp"

namespace stgraph::compiler {

Program differentiate(const Program& p, int input) {
  if (p.agg == AggKind::kMax) {
    // d max / d x flows only along the argmax edge of each (vertex,
    // feature) pair; the backward program is the same (single) term over
    // the transposed graph with argmax routing enabled.
    STG_CHECK(p.terms.size() == 1 && p.terms[0].input == input,
              "max aggregation supports exactly one message term");
    Program b;
    b.agg = AggKind::kMax;
    b.max_backward = true;
    MessageTerm bt;
    bt.coefs = p.terms[0].coefs;
    bt.input = 0;  // gather grad_out
    b.terms.push_back(std::move(bt));
    if (p.include_self && p.self_input == input) {
      b.include_self = true;
      b.self_coefs = p.self_coefs;
      b.self_input = 0;
    }
    b.out_scale = p.out_scale;
    return fold_constants(std::move(b));
  }
  STG_CHECK(p.agg == AggKind::kSum,
            "differentiate expects an optimized (mean-lowered) program");
  Program b;
  b.agg = AggKind::kSum;
  // d out[v] / d x[u] for edge u→v is the coef product — unchanged. The
  // backward program gathers g (slot 0) along the transposed graph; the
  // kernel's role-swap flag keeps each coefficient evaluated with the same
  // (u, v) orientation it had in the forward pass.
  for (const MessageTerm& t : p.terms) {
    if (t.input != input) continue;
    MessageTerm bt;
    bt.coefs = t.coefs;
    bt.input = 0;  // gather grad_out
    b.terms.push_back(std::move(bt));
  }
  if (p.include_self && p.self_input == input) {
    b.include_self = true;
    b.self_coefs = p.self_coefs;
    b.self_input = 0;
  }
  b.out_scale = p.out_scale;
  STG_CHECK(!b.terms.empty() || b.include_self,
            "program does not depend on input ", input);
  if (b.terms.empty()) {
    // Self-only dependency: keep a zero-coefficient neighbor term out of
    // the IR; the kernel handles empty term lists.
  }
  return optimize(std::move(b));
}

// ---- elementwise-program autodiff ----------------------------------------

namespace {

/// Node-emission helper for the backward program under construction.
struct EwEmitter {
  EwProgram* prog;
  int emit(EwOp op, int a, int b = -1, float imm = 0.0f) {
    EwNode n;
    n.op = op;
    n.a = a;
    n.b = b;
    n.imm = imm;
    prog->nodes.push_back(n);
    return static_cast<int>(prog->nodes.size()) - 1;
  }
};

}  // namespace

EwBackward differentiate_elementwise(const EwProgram& fwd) {
  STG_CHECK(fwd.outputs.size() == 1,
            "elementwise autodiff expects a single-output forward program");
  for (const EwNode& n : fwd.nodes)
    STG_CHECK(n.op != EwOp::kNeg && n.op != EwOp::kReluGrad &&
                  n.op != EwOp::kLeakyGrad,
              "gradient-only op in a forward elementwise program");
  // A kBias input must feed exactly one kAddBias consumer: its gradient is
  // a column reduction, and merging two reductions pointwise would change
  // the accumulation order the unfused tape performs.
  {
    std::vector<int> bias_uses(fwd.inputs.size(), 0);
    for (const EwNode& n : fwd.nodes) {
      if (n.op != EwOp::kAddBias) continue;
      const EwNode& bn = fwd.nodes[static_cast<size_t>(n.b)];
      ++bias_uses[static_cast<size_t>(bn.input)];
    }
    for (size_t i = 0; i < fwd.inputs.size(); ++i)
      STG_CHECK(fwd.inputs[i] != EwInputKind::kBias || bias_uses[i] <= 1,
                "bias input ", i, " feeds more than one add_bias");
  }

  EwBackward bw;
  // Recompute prefix: the forward nodes verbatim (same ids), reading the
  // same input slots — EXCEPT transcendental nodes, whose values the
  // forward pass materializes as extra outputs and the backward reads back
  // as inputs (same bits, no re-evaluated exponential). Unreferenced
  // recomputes are dead-code-eliminated below.
  bw.prog.nodes = fwd.nodes;
  bw.prog.inputs = fwd.inputs;
  bw.prog.inputs.push_back(EwInputKind::kMat);  // grad_out slot
  for (size_t i = 0; i < fwd.nodes.size(); ++i) {
    const EwOp op = fwd.nodes[i].op;
    if (op != EwOp::kSigmoid && op != EwOp::kTanh && op != EwOp::kExp)
      continue;
    EwNode& rn = bw.prog.nodes[i];
    rn.op = EwOp::kInput;
    rn.a = rn.b = -1;
    rn.input = static_cast<int>(bw.prog.inputs.size());
    bw.prog.inputs.push_back(EwInputKind::kMat);
    bw.saved.push_back(static_cast<int>(i));
  }
  EwEmitter e{&bw.prog};
  EwNode gin;
  gin.op = EwOp::kInput;
  gin.input = fwd.num_inputs();
  bw.prog.nodes.push_back(gin);
  const int grad_out = static_cast<int>(bw.prog.nodes.size()) - 1;

  // Pending gradient contributions per forward node, in arrival order —
  // the order autograd::run_backward's add_pending receives them when the
  // program is replayed through ops:: (consumers visited in decreasing
  // creation order; per consumer, operand edges in registration order).
  std::vector<std::vector<int>> pending(fwd.nodes.size());
  pending[static_cast<size_t>(fwd.outputs[0])].push_back(grad_out);

  bw.input_grads.assign(fwd.inputs.size(), -1);

  for (size_t i = fwd.nodes.size(); i-- > 0;) {
    if (pending[i].empty()) continue;
    // Left-associative fold in arrival order == the engine's clone-then-+=
    // accumulation.
    int g = pending[i][0];
    for (size_t k = 1; k < pending[i].size(); ++k)
      g = e.emit(EwOp::kAdd, g, pending[i][k]);
    const EwNode& n = fwd.nodes[i];
    const int fi = static_cast<int>(i);  // recomputed forward value node id
    switch (n.op) {
      case EwOp::kInput:
        bw.input_grads[static_cast<size_t>(n.input)] = g;
        break;
      case EwOp::kAdd:
        pending[static_cast<size_t>(n.a)].push_back(g);
        pending[static_cast<size_t>(n.b)].push_back(g);
        break;
      case EwOp::kSub:
        pending[static_cast<size_t>(n.a)].push_back(g);
        pending[static_cast<size_t>(n.b)].push_back(
            e.emit(EwOp::kMulS, g, -1, -1.0f));
        break;
      case EwOp::kMul:
        pending[static_cast<size_t>(n.a)].push_back(
            e.emit(EwOp::kMul, g, n.b));
        pending[static_cast<size_t>(n.b)].push_back(
            e.emit(EwOp::kMul, g, n.a));
        break;
      case EwOp::kDiv: {
        // ga = g / b ; gb = g · ((−a) / b²) — neg BEFORE the divide, the
        // association ops.cpp's “-x / (y * y)” evaluates. The order matters
        // bitwise: for a NaN numerator, −(a/b²) flips the sign bit of the
        // propagated NaN while (−a)/b² flips it before the divide, and the
        // two disagree. Parity fuzz salts NaN, so match exactly.
        pending[static_cast<size_t>(n.a)].push_back(
            e.emit(EwOp::kDiv, g, n.b));
        const int bb = e.emit(EwOp::kMul, n.b, n.b);
        const int na = e.emit(EwOp::kNeg, n.a);
        const int t = e.emit(EwOp::kDiv, na, bb);
        pending[static_cast<size_t>(n.b)].push_back(
            e.emit(EwOp::kMul, g, t));
        break;
      }
      case EwOp::kAddS:
        pending[static_cast<size_t>(n.a)].push_back(g);
        break;
      case EwOp::kMulS:
        pending[static_cast<size_t>(n.a)].push_back(
            e.emit(EwOp::kMulS, g, -1, n.imm));
        break;
      case EwOp::kOneMinus:
        pending[static_cast<size_t>(n.a)].push_back(
            e.emit(EwOp::kMulS, g, -1, -1.0f));
        break;
      case EwOp::kSigmoid: {
        // (g·σ)·(1−σ) — association copied from ops.cpp's sigmoid VJP.
        const int gy = e.emit(EwOp::kMul, g, fi);
        const int om = e.emit(EwOp::kOneMinus, fi);
        pending[static_cast<size_t>(n.a)].push_back(
            e.emit(EwOp::kMul, gy, om));
        break;
      }
      case EwOp::kTanh: {
        // g·(1−y²).
        const int yy = e.emit(EwOp::kMul, fi, fi);
        const int om = e.emit(EwOp::kOneMinus, yy);
        pending[static_cast<size_t>(n.a)].push_back(
            e.emit(EwOp::kMul, g, om));
        break;
      }
      case EwOp::kRelu:
        pending[static_cast<size_t>(n.a)].push_back(
            e.emit(EwOp::kReluGrad, n.a, g));
        break;
      case EwOp::kLeakyRelu:
        pending[static_cast<size_t>(n.a)].push_back(
            e.emit(EwOp::kLeakyGrad, n.a, g, n.imm));
        break;
      case EwOp::kExp:
        // g·exp(x): the recomputed forward node IS exp(x).
        pending[static_cast<size_t>(n.a)].push_back(
            e.emit(EwOp::kMul, g, fi));
        break;
      case EwOp::kAddBias:
        pending[static_cast<size_t>(n.a)].push_back(g);
        // Pointwise bias gradient; the executor column-reduces it with the
        // same serial-over-rows order as ops::add_bias's backward.
        pending[static_cast<size_t>(n.b)].push_back(g);
        break;
      case EwOp::kNeg:
      case EwOp::kReluGrad:
      case EwOp::kLeakyGrad:
        STG_CHECK(false, "gradient-only op in forward program");
    }
  }

  // Outputs = per-input gradients (in input order, skipping zero-grad
  // slots), then DCE the unused recompute prefix and remap.
  for (int gid : bw.input_grads)
    if (gid >= 0) bw.prog.outputs.push_back(gid);
  bw.prog = ew_eliminate_dead(std::move(bw.prog));
  size_t next_out = 0;
  for (size_t i = 0; i < bw.input_grads.size(); ++i)
    if (bw.input_grads[i] >= 0)
      bw.input_grads[i] = bw.prog.outputs[next_out++];
  return bw;
}

BackwardNeeds backward_needs(const Program& p) {
  BackwardNeeds n;
  // Coefficients never reference feature values in this IR family, so the
  // backward kernel is independent of the forward inputs and outputs. Max
  // aggregation additionally needs the recorded argmax routing.
  n.input_features = false;
  n.output_values = false;
  n.graph = true;
  n.argmax = p.agg == AggKind::kMax;
  return n;
}

}  // namespace stgraph::compiler
