// Deterministic fault injection (the failpoint pattern from FreeBSD /
// TiKV): named points in the code where tests — or an operator via the
// STGRAPH_FAILPOINTS environment variable — can force a failure action to
// run (throw mid-sequence, shorten a write, poison a gradient, ...).
//
// A failpoint is declared inline at the fault site:
//
//   STG_FAILPOINT("io.write.short", truncate_temp_file());
//
// and is inert (one mutex-guarded map lookup on a cold path) until a test
// enables it:
//
//   failpoint::enable("io.write.short", failpoint::Spec::always());
//   failpoint::enable("trainer.sequence.end", failpoint::Spec::on_nth(3));
//
// or the environment does:
//
//   STGRAPH_FAILPOINTS="io.write.short=always;trainer.sequence.end=on:3"
//
// Triggers are counted per enable() so tests are deterministic: `on:N`
// fires exactly on the Nth hit after enabling, `every:N` on every Nth.
// The chaos-harness triggers are randomized but reproducible: `p:0.01`
// fires each hit with probability 0.01 and `1inN` with probability 1/N,
// both drawn from one process-wide PRNG seeded by set_seed() /
// $STGRAPH_FAILPOINT_SEED (default 0) — the same seed replays the same
// fire schedule for a fixed hit sequence.
// Naming convention: dotted lowercase `<subsystem>.<site>.<effect>`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stgraph::failpoint {

/// Trigger specification: when, in terms of hit indices counted from the
/// moment of enable(), the failpoint fires.
struct Spec {
  enum class Mode {
    kAlways,    // every hit
    kOnNth,     // exactly the Nth hit (1-based), once
    kEveryNth,  // hits N, 2N, 3N, ...
    kProb,      // each hit independently with probability p
  };
  Mode mode = Mode::kAlways;
  uint64_t n = 1;
  double p = 0.0;  // kProb only

  static Spec always() { return {Mode::kAlways, 1, 0.0}; }
  static Spec once() { return {Mode::kOnNth, 1, 0.0}; }
  static Spec on_nth(uint64_t n) { return {Mode::kOnNth, n, 0.0}; }
  static Spec every_nth(uint64_t n) { return {Mode::kEveryNth, n, 0.0}; }
  /// Fire each hit with probability `p` (chaos-style randomized faults).
  static Spec prob(double p) { return {Mode::kProb, 1, p}; }
  /// Fire each hit with probability 1/n — the `1inN` spec syntax.
  static Spec one_in(uint64_t n) {
    return {Mode::kProb, n, 1.0 / static_cast<double>(n)};
  }
};

/// Arm `name` with `spec`; resets the point's per-enable hit counter.
void enable(const std::string& name, Spec spec);
/// Disarm `name` (hit counting continues; the point never fires).
void disable(const std::string& name);
/// Disarm everything — call from test teardown.
void disable_all();

/// Parse a spec list of the form
/// "name[=always|once|on:N|every:N|p:F|1inN]" separated by ';' or ',' and
/// enable each entry. Throws StgError on a malformed spec. Called
/// automatically for $STGRAPH_FAILPOINTS on the first should_fire();
/// exposed for tests.
void activate_from_spec(const std::string& spec_list);

/// Reseed the PRNG behind the probabilistic triggers (p:F / 1inN). The
/// default seed is $STGRAPH_FAILPOINT_SEED (or 0), read once at startup;
/// chaos runs call this per-iteration so every seed replays exactly.
void set_seed(uint64_t seed);

/// Core query: registers `name` on first call, counts the hit, and
/// returns whether the armed trigger (if any) fires. Thread-safe.
bool should_fire(const char* name);

/// Total hits of `name` since process start (0 if never hit).
uint64_t hit_count(const std::string& name);
/// Total fires of `name` since process start.
uint64_t fire_count(const std::string& name);
/// Names of every failpoint hit or enabled so far (sorted).
std::vector<std::string> registered();

}  // namespace stgraph::failpoint

/// Evaluate `action` when the named failpoint fires. The action may throw,
/// mutate state, or return from the enclosing function.
#define STG_FAILPOINT(name, action)                \
  do {                                             \
    if (::stgraph::failpoint::should_fire(name)) { \
      action;                                      \
    }                                              \
  } while (0)
