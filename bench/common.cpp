#include "common.hpp"

#include <cstring>
#include <functional>
#include <iostream>

#include "baseline/trainer.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/naive_graph.hpp"
#include "graph/static_graph.hpp"
#include "runtime/memory_tracker.hpp"
#include "util/rng.hpp"

namespace stgraph::bench {

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(std::strlen(prefix));
      return std::nullopt;
    };
    if (auto v = value("--scale-static=")) opts.scale_static = std::stod(*v);
    else if (auto v2 = value("--scale-dynamic=")) opts.scale_dynamic = std::stod(*v2);
    else if (auto v3 = value("--timestamps=")) opts.timestamps = std::stoul(*v3);
    else if (auto v4 = value("--epochs=")) opts.epochs = std::stoul(*v4);
    else if (auto v5 = value("--warmup=")) opts.warmup_epochs = std::stoul(*v5);
    else if (auto v6 = value("--seq-len=")) opts.sequence_length = std::stoul(*v6);
    else if (auto v7 = value("--csv-dir=")) opts.csv_dir = *v7;
    else if (arg == "--full") {
      opts.full = true;
      opts.scale_static = 1.0;
      opts.scale_dynamic = 0.2;
      opts.timestamps = 100;
      opts.epochs = 5;
    } else if (arg == "--help") {
      std::cout << "options: --scale-static=F --scale-dynamic=F "
                   "--timestamps=N --epochs=N --warmup=N --seq-len=N "
                   "--csv-dir=DIR --full\n";
      std::exit(0);
    }
  }
  return opts;
}

const char* system_name(System s) {
  switch (s) {
    case System::kStgraphStatic: return "STGraph";
    case System::kStgraphNaive: return "STGraph-Naive";
    case System::kStgraphGpma: return "STGraph-GPMA";
    case System::kPygt: return "PyG-T";
  }
  return "?";
}

namespace {
constexpr uint64_t kModelSeed = 0xBEEF;

RunResult measure_epochs(const std::function<core::EpochStats()>& epoch_fn,
                         const BenchOptions& opts) {
  for (uint32_t w = 0; w < opts.warmup_epochs; ++w) epoch_fn();
  RunResult r;
  for (uint32_t e = 0; e < opts.epochs; ++e) {
    const core::EpochStats s = epoch_fn();
    r.per_epoch_seconds += s.seconds;
    r.graph_update_seconds += s.graph_update_seconds;
    r.gnn_seconds += s.gnn_seconds;
    r.position_seconds += s.position_seconds;
    r.view_seconds += s.view_seconds;
    r.incremental_view_updates += s.incremental_view_updates;
    r.full_view_rebuilds += s.full_view_rebuilds;
    r.forward_seconds += s.forward_seconds;
    r.backward_seconds += s.backward_seconds;
    r.stall_seconds += s.stall_seconds;
    r.prefetch_hits += s.prefetch_hits;
    r.prefetch_misses += s.prefetch_misses;
    r.tape_op_count += s.tape_op_count;
    r.tape_bytes += s.tape_bytes;
    r.fused_op_count += s.fused_op_count;
    r.fused_bytes += s.fused_bytes;
    r.final_loss = s.loss;
  }
  r.per_epoch_seconds /= opts.epochs;
  r.graph_update_seconds /= opts.epochs;
  r.gnn_seconds /= opts.epochs;
  r.position_seconds /= opts.epochs;
  r.view_seconds /= opts.epochs;
  r.forward_seconds /= opts.epochs;
  r.backward_seconds /= opts.epochs;
  r.stall_seconds /= opts.epochs;
  r.tape_op_count /= opts.epochs;
  r.tape_bytes /= opts.epochs;
  r.fused_op_count /= opts.epochs;
  r.fused_bytes /= opts.epochs;
  return r;
}
}  // namespace

RunResult run_static(const datasets::StaticTemporalDataset& ds,
                     const datasets::TemporalSignal& signal, System system,
                     const BenchOptions& opts, int64_t hidden) {
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = opts.sequence_length;
  cfg.task = core::Task::kNodeRegression;

  Rng rng(kModelSeed);
  RunResult result;
  PeakMemoryRegion region;  // graph + model constructed inside the region

  if (system == System::kPygt) {
    baseline::PygtTemporalGraph graph(ds.num_nodes, ds.edges,
                                      ds.num_timestamps);
    baseline::PygTemporalModel model(signal.feature_size(), hidden, rng,
                                     /*head=*/true);
    baseline::PygtTrainer trainer(graph, model, signal, cfg);
    result = measure_epochs([&] { return trainer.train_epoch(); }, opts);
  } else {
    StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
    nn::TGCNRegressor model(signal.feature_size(), hidden, rng);
    core::STGraphTrainer trainer(graph, model, signal, cfg);
    result = measure_epochs([&] { return trainer.train_epoch(); }, opts);
  }
  result.peak_device_mib = region.peak() / (1024.0 * 1024.0);
  return result;
}

RunResult run_dtdg(const DtdgEvents& events,
                   const datasets::TemporalSignal& signal, System system,
                   const BenchOptions& opts, int64_t hidden) {
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = opts.sequence_length;
  cfg.task = core::Task::kLinkPrediction;

  Rng rng(kModelSeed);
  RunResult result;
  PeakMemoryRegion region;

  if (system == System::kPygt) {
    baseline::PygtTemporalGraph graph(events);
    baseline::PygTemporalModel model(signal.feature_size(), hidden, rng,
                                     /*head=*/false);
    baseline::PygtTrainer trainer(graph, model, signal, cfg);
    result = measure_epochs([&] { return trainer.train_epoch(); }, opts);
  } else if (system == System::kStgraphNaive) {
    NaiveGraph graph(events);
    nn::TGCNEncoder model(signal.feature_size(), hidden, rng);
    core::STGraphTrainer trainer(graph, model, signal, cfg);
    result = measure_epochs([&] { return trainer.train_epoch(); }, opts);
  } else {
    GpmaGraph graph(events);
    nn::TGCNEncoder model(signal.feature_size(), hidden, rng);
    core::STGraphTrainer trainer(graph, model, signal, cfg);
    result = measure_epochs([&] { return trainer.train_epoch(); }, opts);
  }
  result.peak_device_mib = region.peak() / (1024.0 * 1024.0);
  return result;
}

void emit(const std::string& bench_name, const CsvWriter& csv,
          const BenchOptions& opts) {
  std::cout << "== " << bench_name << " ==\n" << csv.to_table() << "\n";
  if (!opts.csv_dir.empty()) {
    const std::string path = opts.csv_dir + "/" + bench_name + ".csv";
    if (csv.save(path)) {
      std::cout << "(wrote " << path << ")\n";
    } else {
      std::cerr << "failed to write " << path << "\n";
    }
  }
}

std::vector<int64_t> feature_sweep(const BenchOptions& opts) {
  if (opts.full) return {8, 16, 32, 64, 128, 256};
  return {4, 8, 16, 32, 64};
}

}  // namespace stgraph::bench
