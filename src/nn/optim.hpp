// Optimizers over Module parameter lists: SGD (+momentum) and Adam (the
// paper's training harness uses Adam, PyTorch defaults).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace stgraph::nn {

class Optimizer {
 public:
  Optimizer(std::vector<Parameter> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;
  virtual void step() = 0;
  void zero_grad();

  /// Current learning rate (mutable for schedulers).
  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

  /// The parameter list this optimizer updates (checkpointing, guards).
  const std::vector<Parameter>& params() const { return params_; }

 protected:
  std::vector<Parameter> params_;
  float lr_;
};

/// Global-norm gradient clipping (torch.nn.utils.clip_grad_norm_): if the
/// L2 norm over ALL gradients exceeds `max_norm`, every gradient is scaled
/// by max_norm / norm in place; below the threshold nothing is touched.
/// Parameters without an accumulated gradient are skipped. Returns the
/// pre-clip global norm.
float clip_grad_norm(const std::vector<Parameter>& params, float max_norm);

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter> params, float lr = 1e-2f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

  // ---- checkpointable state (io::TrainState) ------------------------------
  /// Bias-correction step counter t.
  int64_t step_count() const { return t_; }
  void set_step_count(int64_t t) { t_ = t; }
  /// First/second moment tensors, aligned with params() order.
  const std::vector<Tensor>& moment1() const { return m_; }
  const std::vector<Tensor>& moment2() const { return v_; }
  /// Overwrite the moment buffers (resume); shapes must match.
  void restore_moments(const std::vector<Tensor>& m,
                       const std::vector<Tensor>& v);

 private:
  float beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace stgraph::nn
