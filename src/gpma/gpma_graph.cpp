#include "gpma/gpma_graph.hpp"

#include <atomic>

#include "runtime/parallel.hpp"
#include "runtime/scan.hpp"
#include "runtime/sort.hpp"
#include "util/check.hpp"

namespace stgraph {

void reverse_gpma(uint32_t num_nodes, const DeviceBuffer<uint32_t>& row_offset,
                  const DeviceBuffer<uint32_t>& col,
                  const DeviceBuffer<uint32_t>& eids,
                  const DeviceBuffer<uint32_t>& in_degrees, uint32_t num_edges,
                  DeviceBuffer<uint32_t>& r_row_offset,
                  DeviceBuffer<uint32_t>& r_col,
                  DeviceBuffer<uint32_t>& r_eids) {
  // Line 1: cursor array = inclusive prefix sum of in-degrees. Entry v
  // marks the END of v's neighbor list; the atomic_sub scatter walks each
  // cursor back to the list's start.
  r_row_offset = DeviceBuffer<uint32_t>(num_nodes + 1, MemCategory::kGraph);
  device::inclusive_scan(in_degrees.data(), r_row_offset.data(), num_nodes);
  r_row_offset[num_nodes] = num_edges;
  STG_CHECK(num_nodes == 0 || r_row_offset[num_nodes - 1] == num_edges,
            "in-degree sum ", num_nodes ? r_row_offset[num_nodes - 1] : 0,
            " != edge count ", num_edges);

  // Lines 2-3: allocate output arrays.
  r_col = DeviceBuffer<uint32_t>(num_edges, MemCategory::kGraph);
  r_eids = DeviceBuffer<uint32_t>(num_edges, MemCategory::kGraph);

  // Lines 4-16: parallel scatter over source vertices.
  uint32_t* cursor = r_row_offset.data();
  const uint32_t* ro = row_offset.data();
  const uint32_t* pc = col.data();
  const uint32_t* pe = eids.data();
  uint32_t* rc = r_col.data();
  uint32_t* re = r_eids.data();
  device::parallel_for_ranges(
      num_nodes, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const uint32_t start = ro[i];
          const uint32_t end = ro[i + 1];
          for (uint32_t j = start; j < end; ++j) {
            const uint32_t dst = pc[j];
            if (dst == kSpace) continue;  // line 10: skip gap slots
            const uint32_t eid = pe[j];
            // Line 11: atomic_sub so threads sharing a destination do not
            // overwrite each other's slot.
            std::atomic_ref<uint32_t> cell(cursor[dst]);
            const uint32_t loc = cell.fetch_sub(1, std::memory_order_relaxed) - 1;
            rc[loc] = static_cast<uint32_t>(i);
            re[loc] = eid;
          }
        }
      },
      /*grain=*/256);
  // After the scatter every cursor has walked back to its list start, so
  // r_row_offset is exactly the reverse row-offset array.
}

GpmaGraph::GpmaGraph(const DtdgEvents& events) : num_nodes_(events.num_nodes) {
  // Base snapshot: one batch insert of all base edges.
  std::vector<uint64_t> base_keys;
  base_keys.reserve(events.base_edges.size());
  std::vector<uint32_t> in_deg(num_nodes_, 0), out_deg(num_nodes_, 0);
  for (const auto& [s, d] : events.base_edges) {
    base_keys.push_back(make_edge_key(s, d));
    ++out_deg[s];
    ++in_deg[d];
  }
  const std::size_t inserted = pma_.insert_batch(std::move(base_keys));
  STG_CHECK(inserted == events.base_edges.size(),
            "base edge list contains duplicates");
  in_deg_ = DeviceBuffer<uint32_t>(in_deg, MemCategory::kPma);
  out_deg_ = DeviceBuffer<uint32_t>(out_deg, MemCategory::kPma);

  // Upload deltas (this is the entire per-timestamp structural storage —
  // the memory win over NaiveGraph).
  edges_at_.push_back(static_cast<uint32_t>(events.base_edges.size()));
  deltas_.reserve(events.deltas.size());
  for (const EdgeDelta& d : events.deltas) {
    DeviceDelta dd;
    std::vector<uint64_t> add, del;
    add.reserve(d.additions.size());
    del.reserve(d.deletions.size());
    for (const auto& [s, dn] : d.additions) add.push_back(make_edge_key(s, dn));
    for (const auto& [s, dn] : d.deletions) del.push_back(make_edge_key(s, dn));
    dd.additions = DeviceBuffer<uint64_t>(add, MemCategory::kGraph);
    dd.deletions = DeviceBuffer<uint64_t>(del, MemCategory::kGraph);
    edges_at_.push_back(edges_at_.back() +
                        static_cast<uint32_t>(add.size()) -
                        static_cast<uint32_t>(del.size()));
    deltas_.push_back(std::move(dd));
  }
  rebuild_views();
}

void GpmaGraph::append_delta(const EdgeDelta& delta) {
  // Validate everything before mutating: after the push_backs below the
  // new timestamp is committed and the PMA will replay it on demand.
  for (const auto& [s, d] : delta.additions)
    STG_CHECK(s < num_nodes_ && d < num_nodes_, "appended delta adds edge (",
              s, ",", d, ") outside the ", num_nodes_, "-node graph");
  for (const auto& [s, d] : delta.deletions)
    STG_CHECK(s < num_nodes_ && d < num_nodes_,
              "appended delta deletes edge (", s, ",", d, ") outside the ",
              num_nodes_, "-node graph");
  const uint32_t prev_edges = edges_at_.back();
  STG_CHECK(prev_edges + delta.additions.size() >= delta.deletions.size(),
            "appended delta deletes more edges (", delta.deletions.size(),
            ") than the snapshot holds (", prev_edges, " + ",
            delta.additions.size(), " additions)");

  DeviceDelta dd;
  std::vector<uint64_t> add, del;
  add.reserve(delta.additions.size());
  del.reserve(delta.deletions.size());
  for (const auto& [s, d] : delta.additions) add.push_back(make_edge_key(s, d));
  for (const auto& [s, d] : delta.deletions) del.push_back(make_edge_key(s, d));
  dd.additions = DeviceBuffer<uint64_t>(add, MemCategory::kGraph);
  dd.deletions = DeviceBuffer<uint64_t>(del, MemCategory::kGraph);
  edges_at_.push_back(prev_edges + static_cast<uint32_t>(add.size()) -
                      static_cast<uint32_t>(del.size()));
  deltas_.push_back(std::move(dd));
}

uint32_t GpmaGraph::num_edges_at(uint32_t t) const {
  STG_CHECK(t < edges_at_.size(), "timestamp ", t, " out of range ",
            edges_at_.size());
  return edges_at_[t];
}

void GpmaGraph::apply_delta(uint32_t idx, bool forward) {
  // Rolling forward over delta idx applies (erase deletions, insert
  // additions); rolling backward inverts it.
  const DeviceDelta& d = deltas_[idx];
  const auto& to_erase = forward ? d.deletions : d.additions;
  const auto& to_insert = forward ? d.additions : d.deletions;
  const std::size_t erased = pma_.erase_batch(to_erase.to_host());
  const std::size_t inserted = pma_.insert_batch(to_insert.to_host());
  STG_CHECK(erased == to_erase.size() && inserted == to_insert.size(),
            "delta ", idx, " did not apply cleanly (erase ", erased, "/",
            to_erase.size(), ", insert ", inserted, "/", to_insert.size(),
            ")");
  // Incremental degree maintenance.
  for (uint64_t k : to_erase) {
    --out_deg_[edge_key_src(k)];
    --in_deg_[edge_key_dst(k)];
  }
  for (uint64_t k : to_insert) {
    ++out_deg_[edge_key_src(k)];
    ++in_deg_[edge_key_dst(k)];
  }
  ++delta_replays_;
}

void GpmaGraph::save_cache() {
  cache_pma_ = pma_.clone();
  cache_in_deg_ = in_deg_.to_host();
  cache_out_deg_ = out_deg_.to_host();
  cache_time_ = curr_time_;
}

void GpmaGraph::restore_cache() {
  pma_ = cache_pma_->clone();
  std::copy(cache_in_deg_.begin(), cache_in_deg_.end(), in_deg_.data());
  std::copy(cache_out_deg_.begin(), cache_out_deg_.end(), out_deg_.data());
  curr_time_ = cache_time_;
  views_fresh_ = false;
}

void GpmaGraph::position(uint32_t target) {
  STG_CHECK(target < num_timestamps(), "timestamp ", target, " out of range ",
            num_timestamps());
  if (target == curr_time_) return;
  if (target < curr_time_) {
    // First backward roll of a sequence: cache the furthest-forward state
    // so the next sequence's forward pass resumes from it instead of
    // replaying every delta (Algorithm 2 lines 1-5 / line 10).
    if (cache_enabled_ && (!cache_pma_ || cache_time_ < curr_time_))
      save_cache();
    while (curr_time_ > target) {
      apply_delta(curr_time_ - 1, /*forward=*/false);
      --curr_time_;
    }
  } else {
    if (cache_enabled_ && cache_pma_ && cache_time_ <= target &&
        cache_time_ > curr_time_) {
      restore_cache();
    }
    while (curr_time_ < target) {
      apply_delta(curr_time_, /*forward=*/true);
      ++curr_time_;
    }
  }
  views_fresh_ = false;
}

void GpmaGraph::rebuild_views() {
  const std::size_t cap = pma_.capacity();
  const uint32_t m = static_cast<uint32_t>(pma_.size());

  // Single O(capacity) pass: edge relabelling in slot order (Algorithm 2
  // line 8) + the dst/eid slot arrays + row offsets over slot positions.
  col_ = DeviceBuffer<uint32_t>(cap, MemCategory::kPma);
  eids_ = DeviceBuffer<uint32_t>(cap, MemCategory::kPma);
  row_offset_ = DeviceBuffer<uint32_t>(num_nodes_ + 1, MemCategory::kPma);
  const DeviceBuffer<uint64_t>& slots = pma_.slots();
  uint32_t next_eid = 0;
  uint32_t next_row = 0;
  for (std::size_t i = 0; i < cap; ++i) {
    if (slots[i] == Pma::kEmptyKey) {
      col_[i] = kSpace;
      eids_[i] = kSpace;
      continue;
    }
    const uint32_t src = edge_key_src(slots[i]);
    while (next_row <= src) row_offset_[next_row++] = static_cast<uint32_t>(i);
    col_[i] = edge_key_dst(slots[i]);
    eids_[i] = next_eid++;
  }
  while (next_row <= num_nodes_)
    row_offset_[next_row++] = static_cast<uint32_t>(cap);
  STG_CHECK(next_eid == m, "relabel pass saw ", next_eid, " edges, expected ", m);

  // Degree-sorted processing orders (paper Figure 3 auxiliary node_ids).
  const uint32_t* ind = in_deg_.data();
  const uint32_t* outd = out_deg_.data();
  fwd_order_ = DeviceBuffer<uint32_t>(
      device::sort_indices(num_nodes_,
                           [ind](uint32_t a, uint32_t b) { return ind[a] > ind[b]; }),
      MemCategory::kPma);
  bwd_order_ = DeviceBuffer<uint32_t>(
      device::sort_indices(num_nodes_,
                           [outd](uint32_t a, uint32_t b) { return outd[a] > outd[b]; }),
      MemCategory::kPma);

  // Algorithm 3: compacted reverse CSR for the forward pass.
  reverse_gpma(num_nodes_, row_offset_, col_, eids_, in_deg_, m,
               r_row_offset_, r_col_, r_eids_);
  views_fresh_ = true;
}

SnapshotView GpmaGraph::get_graph(uint32_t t) {
  {
    PhaseScope scope(update_timer_);
    position(t);
    if (!views_fresh_) rebuild_views();
  }
  SnapshotView v;
  v.num_nodes = num_nodes_;
  v.num_edges = static_cast<uint32_t>(pma_.size());
  // Forward pass: compacted reverse CSR (in-neighbors).
  v.in_view.num_nodes = num_nodes_;
  v.in_view.num_edges = v.num_edges;
  v.in_view.row_offset = r_row_offset_.data();
  v.in_view.col_indices = r_col_.data();
  v.in_view.eids = r_eids_.data();
  v.in_view.node_ids = fwd_order_.data();
  v.in_view.has_gaps = false;
  // Backward pass: gapped PMA arrays consumed in place.
  v.out_view.num_nodes = num_nodes_;
  v.out_view.num_edges = v.num_edges;
  v.out_view.row_offset = row_offset_.data();
  v.out_view.col_indices = col_.data();
  v.out_view.eids = eids_.data();
  v.out_view.node_ids = bwd_order_.data();
  v.out_view.has_gaps = true;
  v.in_degrees = in_deg_.data();
  v.out_degrees = out_deg_.data();
  return v;
}

SnapshotView GpmaGraph::get_backward_graph(uint32_t t) { return get_graph(t); }

std::size_t GpmaGraph::device_bytes() const {
  std::size_t total = pma_.device_bytes() + col_.bytes() + eids_.bytes() +
                      row_offset_.bytes() + in_deg_.bytes() + out_deg_.bytes() +
                      fwd_order_.bytes() + bwd_order_.bytes() +
                      r_row_offset_.bytes() + r_col_.bytes() + r_eids_.bytes();
  for (const DeviceDelta& d : deltas_)
    total += d.additions.bytes() + d.deletions.bytes();
  if (cache_pma_) {
    total += cache_pma_->device_bytes() +
             (cache_in_deg_.size() + cache_out_deg_.size()) * sizeof(uint32_t);
  }
  return total;
}

}  // namespace stgraph
