// Listening TCP socket for the network front-end: bind + listen at
// construction (port 0 picks an ephemeral port, reported by port() — how
// the tests and the load generator find their server), accept() drains
// the backlog non-blocking. Accepted sockets come back non-blocking with
// TCP_NODELAY set (latency-bound request/response traffic). The
// net.accept failpoint drops an accepted connection on the floor, which
// clients observe as an immediate close — chaos coverage for the accept
// path.
#pragma once

#include <cstdint>
#include <string>

namespace stgraph::net {

class Listener {
 public:
  Listener(const std::string& host, uint16_t port);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int fd() const { return fd_; }
  /// The actually bound port (resolves port-0 binds).
  uint16_t port() const { return port_; }

  /// Accept one pending connection; returns the non-blocking client fd or
  /// -1 when the backlog is empty (EAGAIN). Call in a loop on EPOLLIN.
  int accept_one();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace stgraph::net
