// Failure-semantics vocabulary of the serving runtime: the health state
// machine the server walks through its lifecycle, the typed rejection
// taxonomy for every request the server declines to execute, and the
// exception that carries a rejection back to the client.
//
// Health transitions:
//
//   STARTING ──start()──► HEALTHY ◄──recovered batch──┐
//                            │                        │
//                            ├─ circuit trips ──► DEGRADED
//                            │   (consecutive batch failures, non-finite
//                            │    outputs, or a watchdog-detected stall)
//                            └─ stop() ─────────► DRAINING
//
// While DEGRADED the circuit breaker is open: predict() is answered from
// the last-good cached step (version-tagged stale) instead of touching the
// execution path, and requests that cannot be served stale are shed with
// ShedReason::kCircuitOpen. A cooldown admits one probe batch; a clean
// batch closes the circuit and returns the server to HEALTHY.
//
// Every shed request is counted under exactly one ShedReason in
// ServerStats, so `issued == fulfilled + stale + failed + shed_total`
// holds at all times — no request is ever silently dropped.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace stgraph::serve {

/// Lifecycle state of a serve::Server (see diagram above).
enum class HealthState : uint8_t {
  kStarting = 0,  ///< constructed / stopped, not serving
  kHealthy = 1,   ///< serving normally
  kDegraded = 2,  ///< circuit open: stale reads only
  kDraining = 3,  ///< stop() in progress: queued requests are rejected
};

/// Why a request was declined without (full) execution. Each shed maps to
/// exactly one reason; ServerStats counts them separately.
enum class ShedReason : uint8_t {
  kQueueFull = 0,        ///< bounded queue at capacity, or quota exceeded
  kDeadlineExpired = 1,  ///< deadline passed (at admission, dequeue, or
                         ///< completion), or queue delay made it hopeless
  kDraining = 2,         ///< server stopping; request rejected promptly
  kCircuitOpen = 3,      ///< circuit open and no stale step to serve
};

inline const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kStarting: return "starting";
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kDraining: return "draining";
  }
  return "unknown";
}

inline const char* to_string(ShedReason r) {
  switch (r) {
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kDeadlineExpired: return "deadline_expired";
    case ShedReason::kDraining: return "draining";
    case ShedReason::kCircuitOpen: return "circuit_open";
  }
  return "unknown";
}

/// Thrown to the client when its request is shed. Derives from StgError so
/// existing catch sites keep working; new code can switch on reason().
class ShedError : public StgError {
 public:
  ShedError(ShedReason reason, const std::string& what)
      : StgError(what), reason_(reason) {}
  ShedReason reason() const { return reason_; }

 private:
  ShedReason reason_;
};

}  // namespace stgraph::serve
