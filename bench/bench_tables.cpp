// Tables I and II: the library capability matrix and the benchmark
// dataset summary (at the configured scale, with the paper's unscaled
// reference sizes alongside).
#include <iostream>

#include "common.hpp"

using namespace stgraph;
using namespace stgraph::bench;

int main(int argc, char** argv) {
  BenchOptions opts = parse_options(argc, argv);

  {
    CsvWriter t1({"Library", "Backend", "StaticGraph", "TemporalGraph"});
    t1.add_row({"PyTorch Geometric", "PyTorch", "yes", "no"});
    t1.add_row({"DGL", "Agnostic", "yes", "no"});
    t1.add_row({"GraphNets", "TensorFlow", "yes", "no"});
    t1.add_row({"Spektral", "TensorFlow", "yes", "no"});
    t1.add_row({"Seastar", "Agnostic", "yes", "no"});
    t1.add_row({"PyTorch Geometric Temporal", "PyTorch", "yes", "yes"});
    t1.add_row({"STGraph (this repo)", "Agnostic (factory)", "yes", "yes"});
    emit("table1_libraries", t1, opts);
  }

  {
    CsvWriter t2({"No", "Dataset", "Nodes", "Edges", "Type", "PaperNodes",
                  "PaperEdges"});
    datasets::StaticLoadOptions so;
    so.scale = opts.scale_static;
    so.num_timestamps = opts.timestamps;
    const char* paper_static[5][2] = {{"1068", "27K"},
                                      {"319", "102K"},
                                      {"20", "102"},
                                      {"675", "690"},
                                      {"15", "225"}};
    int row = 1;
    for (const auto& ds : datasets::load_all_static(so)) {
      t2.add_row({std::to_string(row), ds.name, std::to_string(ds.num_nodes),
                  std::to_string(ds.edges.size()), "Static",
                  paper_static[row - 1][0], paper_static[row - 1][1]});
      ++row;
    }
    datasets::DynamicLoadOptions dyo;
    dyo.scale = opts.scale_dynamic;
    const char* paper_dynamic[5][2] = {{"120K", "2000K"},
                                       {"194K", "1443K"},
                                       {"194K", "2000K"},
                                       {"24K", "506K"},
                                       {"55K", "858K"}};
    int drow = 0;
    for (const auto& ds : datasets::load_all_dynamic(dyo)) {
      t2.add_row({std::to_string(row), ds.name, std::to_string(ds.num_nodes),
                  std::to_string(ds.stream.size()), "Dynamic",
                  paper_dynamic[drow][0], paper_dynamic[drow][1]});
      ++row;
      ++drow;
    }
    emit("table2_datasets", t2, opts);
  }
  return 0;
}
