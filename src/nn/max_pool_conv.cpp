#include "nn/max_pool_conv.hpp"

#include <cmath>

#include "autograd/engine.hpp"
#include "compiler/trace.hpp"
#include "core/backend.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph::nn {
namespace {
// Argmax indices travel through the State Stack, which holds float
// tensors; vertex ids up to 2^24 round-trip exactly through float32.
constexpr uint32_t kMaxExactFloatId = 1u << 24;

Tensor encode_argmax(const DeviceBuffer<uint32_t>& argmax, int64_t rows,
                     int64_t cols) {
  Tensor t = Tensor::empty({rows, cols});
  float* p = t.data();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    // kSpace (no candidate) encodes as -1.
    p[i] = argmax[i] == kSpace ? -1.0f : static_cast<float>(argmax[i]);
  }
  return t;
}

DeviceBuffer<uint32_t> decode_argmax(const Tensor& t) {
  DeviceBuffer<uint32_t> out(static_cast<std::size_t>(t.numel()),
                             MemCategory::kScratch);
  const float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    out[static_cast<std::size_t>(i)] =
        p[i] < 0.0f ? kSpace : static_cast<uint32_t>(p[i]);
  }
  return out;
}
}  // namespace

SeastarMaxPoolConv::SeastarMaxPoolConv(int64_t in_features,
                                       int64_t out_features, Rng& rng,
                                       bool bias)
    : in_(in_features), out_(out_features) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_ + out_));
  weight_ = register_parameter(
      "weight", Tensor::uniform({in_, out_}, rng, -bound, bound));
  if (bias) bias_ = register_parameter("bias", Tensor::zeros({out_}));

  compiler::Program fwd =
      compiler::trace([](compiler::VertexContext& v) -> compiler::AggExpr {
        return v.agg_max(v.src_feature(0))
            .with_self_loop(v.constant(1.0f));
      });
  fwd_kernel_ = compiler::compile(fwd);
  bwd_kernel_ = compiler::compile(compiler::differentiate(fwd_kernel_.program));
  needs_ = compiler::backward_needs(fwd_kernel_.program);
  STG_CHECK(needs_.argmax, "max aggregation must report argmax needs");
}

Tensor SeastarMaxPoolConv::forward(core::TemporalExecutor& exec,
                                   const Tensor& x) const {
  const SnapshotView& view = exec.forward_view();
  STG_CHECK(x.dim() == 2 && x.cols() == in_, "SeastarMaxPoolConv(", in_, "→",
            out_, ") got input ", shape_str(x.shape()));
  STG_CHECK(view.num_nodes < kMaxExactFloatId,
            "argmax float encoding limited to 2^24 vertices");
  core::Backend& backend = core::native_backend();

  Tensor xw, out;
  DeviceBuffer<uint32_t> argmax(
      static_cast<std::size_t>(x.rows()) * static_cast<std::size_t>(out_),
      MemCategory::kScratch);
  {
    NoGradGuard ng;
    xw = ops::matmul(x, weight_);
    out = Tensor::empty({x.rows(), out_});
    compiler::KernelArgs args;
    args.view = view.in_view;
    args.in_degrees = view.in_degrees;
    args.gcn_coef = view.gcn_coef;
    const float* inputs[1] = {xw.data()};
    args.inputs = inputs;
    args.self_features = xw.data();
    args.out = out.data();
    args.argmax_out = argmax.data();
    args.num_feats = static_cast<uint32_t>(out_);
    args.producer_is_col = true;
    backend.launch_aggregation(fwd_kernel_, args);
    if (bias_.defined()) out = ops::add_bias(out, bias_);
  }

  if (!NoGradGuard::grad_enabled()) return out;

  // Saved set per needs analysis: X (weight grad) + the argmax routing.
  Tensor argmax_tensor = encode_argmax(argmax, x.rows(), out_);
  std::vector<Tensor> pruned = {x, argmax_tensor};
  std::vector<Tensor> unpruned = {x, argmax_tensor, xw, out.detach()};
  const core::StateStack::Ticket ticket =
      exec.save_for_backward(std::move(pruned), std::move(unpruned));

  const uint32_t t = exec.current_forward_timestamp();
  core::TemporalExecutor* exec_ptr = &exec;
  Tensor weight = weight_;
  const compiler::KernelSpec* bwd = &bwd_kernel_;
  const bool has_bias = bias_.defined();
  const int64_t out_f = out_;

  auto node = std::make_shared<autograd::LambdaNode>(
      "seastar_maxpool",
      [exec_ptr, t, ticket, weight, bwd, has_bias,
       out_f](const Tensor& grad_out) -> std::vector<Tensor> {
        NoGradGuard ng;
        const SnapshotView& bview = exec_ptr->backward_view(t);
        std::vector<Tensor> saved = exec_ptr->retrieve_saved(ticket);
        const Tensor& x_saved = saved[0];
        const DeviceBuffer<uint32_t> argmax = decode_argmax(saved[1]);

        Tensor g_xw = Tensor::empty({grad_out.rows(), out_f});
        compiler::KernelArgs args;
        args.view = bview.out_view;
        args.in_degrees = bview.in_degrees;
        args.gcn_coef = bview.gcn_coef;
        const float* inputs[1] = {grad_out.data()};
        args.inputs = inputs;
        args.self_features = grad_out.data();
        args.out = g_xw.data();
        args.argmax_in = argmax.data();
        args.num_feats = static_cast<uint32_t>(out_f);
        args.producer_is_col = false;
        core::native_backend().launch_aggregation(*bwd, args);

        Tensor grad_x = ops::matmul(g_xw, weight, false, true);
        Tensor grad_w = ops::matmul(x_saved, g_xw, true, false);
        Tensor grad_b;
        if (has_bias) {
          grad_b = Tensor::zeros({out_f});
          const float* pg = grad_out.data();
          float* pb = grad_b.data();
          for (int64_t r = 0; r < grad_out.rows(); ++r)
            for (int64_t c = 0; c < out_f; ++c) pb[c] += pg[r * out_f + c];
        }
        return {grad_x, grad_w, grad_b};
      });
  node->add_input(x);
  node->add_input(weight_);
  node->add_input(bias_);
  node->set_output(out);
  return out;
}

}  // namespace stgraph::nn
