#include "baseline/pyg_layers.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph::baseline {

PygGCNConv::PygGCNConv(int64_t in_features, int64_t out_features, Rng& rng,
                       bool bias)
    : in_(in_features), out_(out_features) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_ + out_));
  weight_ = register_parameter(
      "weight", Tensor::uniform({in_, out_}, rng, -bound, bound));
  if (bias) bias_ = register_parameter("bias", Tensor::zeros({out_}));
}

Tensor PygGCNConv::forward(const CooSnapshot& g, const Tensor& x,
                           const float* edge_weights) const {
  STG_CHECK(x.cols() == in_, "PygGCNConv(", in_, "→", out_, ") got ",
            shape_str(x.shape()));
  // PyG order: linear transform, then propagate.
  Tensor xw = ops::matmul(x, weight_);
  // gcn_norm is recomputed per call (PyG does this unless caching is on).
  Tensor coef = gcn_norm(g, edge_weights);
  // message(): duplicate source rows per edge, scale by norm.
  Tensor msg = gather_messages(xw, g);
  msg = scale_messages(msg, coef);
  // aggregate(): scatter-add into destinations + self-loop contribution.
  Tensor out = ops::add(scatter_add(msg, g), self_loop_contribution(xw, g));
  if (bias_.defined()) out = ops::add_bias(out, bias_);
  return out;
}

PygTGCN::PygTGCN(int64_t in_features, int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      conv_z_(in_features, out_features, rng),
      conv_r_(in_features, out_features, rng),
      conv_h_(in_features, out_features, rng),
      linear_z_(2 * out_features, out_features, rng),
      linear_r_(2 * out_features, out_features, rng),
      linear_h_(2 * out_features, out_features, rng) {
  register_module("conv_z", &conv_z_);
  register_module("conv_r", &conv_r_);
  register_module("conv_h", &conv_h_);
  register_module("linear_z", &linear_z_);
  register_module("linear_r", &linear_r_);
  register_module("linear_h", &linear_h_);
}

Tensor PygTGCN::initial_state(int64_t num_nodes) const {
  return Tensor::zeros({num_nodes, out_});
}

Tensor PygTGCN::forward(const CooSnapshot& g, const Tensor& x,
                        const Tensor& h_in, const float* edge_weights) const {
  Tensor h = h_in.defined() ? h_in : initial_state(x.rows());
  using namespace ops;
  Tensor z = sigmoid(
      linear_z_.forward(cat_cols(conv_z_.forward(g, x, edge_weights), h)));
  Tensor r = sigmoid(
      linear_r_.forward(cat_cols(conv_r_.forward(g, x, edge_weights), h)));
  Tensor h_tilde = tanh_op(linear_h_.forward(
      cat_cols(conv_h_.forward(g, x, edge_weights), mul(r, h))));
  return add(mul(z, h), mul(one_minus(z), h_tilde));
}

}  // namespace stgraph::baseline
