// PyG-T-style training loop: same sequence chunking and losses as the
// STGraph trainer, but over the baseline's COO snapshots and edge-parallel
// layers, with no executor — per-edge message tensors simply stay in the
// autograd graph until backward, as in the PyTorch original.
#pragma once

#include "baseline/pyg_layers.hpp"
#include "core/trainer.hpp"  // TrainConfig / EpochStats / Task
#include "datasets/signal.hpp"
#include "nn/optim.hpp"

namespace stgraph::baseline {

/// Baseline model mirroring nn::TGCNRegressor / nn::TGCNEncoder.
class PygTemporalModel : public nn::Module {
 public:
  /// head=true builds the regression head (node regression task).
  PygTemporalModel(int64_t in_features, int64_t hidden, Rng& rng, bool head);

  std::pair<Tensor, Tensor> step(const CooSnapshot& g, const Tensor& x,
                                 const Tensor& h, const float* edge_weights);
  Tensor initial_state(int64_t num_nodes) const {
    return tgcn_.initial_state(num_nodes);
  }

 private:
  PygTGCN tgcn_;
  std::unique_ptr<nn::Linear> head_;
};

class PygtTrainer {
 public:
  PygtTrainer(PygtTemporalGraph& graph, PygTemporalModel& model,
              const datasets::TemporalSignal& signal,
              core::TrainConfig config);

  core::EpochStats train_epoch();
  std::vector<core::EpochStats> train();
  double evaluate();

 private:
  core::EpochStats run_epoch(bool training);

  PygtTemporalGraph& graph_;
  PygTemporalModel& model_;
  const datasets::TemporalSignal& signal_;
  core::TrainConfig config_;
  nn::Adam optimizer_;
};

}  // namespace stgraph::baseline
