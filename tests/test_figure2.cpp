// Figure-2 walkthrough: the paper's diagram of forward and backward
// propagation over a three-timestamp sequence, asserted as the exact
// executor event trace — snapshots and states pushed in timestamp order
// during the forward pass and popped in reverse during backpropagation.
// Also covers the temporal_signal_split utility used by the examples.
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "datasets/synthetic.hpp"
#include "graph/naive_graph.hpp"
#include "graph/static_graph.hpp"
#include "nn/gcn.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

DtdgEvents three_step_dtdg() {
  DtdgEvents ev;
  ev.num_nodes = 5;
  ev.base_edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  ev.deltas.push_back({{{4, 0}}, {{0, 1}}});
  ev.deltas.push_back({{{1, 3}}, {{2, 3}}});
  return ev;
}

TEST(Figure2, ForwardBackwardEventOrder) {
  NaiveGraph graph(three_step_dtdg());
  core::TemporalExecutor exec(graph);
  std::vector<std::string> trace;
  exec.set_trace(&trace);

  Rng rng(1);
  nn::SeastarGCNConv conv(2, 3, rng);
  Tensor x = Tensor::randn({5, 2}, rng, 1.0f, /*requires_grad=*/true);

  // Forward propagation over the sequence t = 0, 1, 2 (Figure 2, top).
  Tensor loss;
  for (uint32_t t = 0; t < 3; ++t) {
    exec.begin_forward_step(t);
    Tensor h = conv.forward(exec, x);
    Tensor l = ops::mean(ops::mul(h, h));
    loss = loss.defined() ? ops::add(loss, l) : l;
  }
  // Backward propagation in reverse (Figure 2, bottom).
  loss.backward();
  exec.verify_drained();

  const std::vector<std::string> want{
      // clang-format off
      "fwd t=0", "push graph t=0", "push state #0",
      "fwd t=1", "push graph t=1", "push state #1",
      "fwd t=2", "push graph t=2", "push state #2",
      "bwd t=2", "pop graph t=2", "pop state #2",
      "bwd t=1", "pop graph t=1", "pop state #1",
      "bwd t=0", "pop graph t=0", "pop state #0",
      // clang-format on
  };
  EXPECT_EQ(trace, want);
}

TEST(Figure2, StaticGraphTraceHasNoGraphStackTraffic) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 3;
  o.feature_size = 2;
  auto ds = datasets::load_pedalme(o);
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  core::TemporalExecutor exec(graph);
  std::vector<std::string> trace;
  exec.set_trace(&trace);

  Rng rng(2);
  nn::SeastarGCNConv conv(2, 2, rng);
  Tensor x = Tensor::randn({ds.num_nodes, 2}, rng, 1.0f, true);
  Tensor loss;
  for (uint32_t t = 0; t < 3; ++t) {
    exec.begin_forward_step(t);
    Tensor h = conv.forward(exec, x);
    Tensor l = ops::mean(ops::mul(h, h));
    loss = loss.defined() ? ops::add(loss, l) : l;
  }
  loss.backward();
  exec.verify_drained();
  for (const std::string& e : trace) {
    EXPECT_EQ(e.find("graph"), std::string::npos)
        << "static graphs must not touch the Graph Stack: " << e;
  }
}

TEST(SignalSplit, PartitionsTimestampsAndSharesTensors) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 10;
  o.feature_size = 2;
  auto ds = datasets::load_chickenpox(o);
  auto [train, test] = datasets::temporal_signal_split(ds.signal, 0.7);
  EXPECT_EQ(train.num_timestamps(), 7u);
  EXPECT_EQ(test.num_timestamps(), 3u);
  // Shared handles, no copies.
  EXPECT_EQ(train.features[0].impl().get(), ds.signal.features[0].impl().get());
  EXPECT_EQ(test.features[0].impl().get(), ds.signal.features[7].impl().get());
  EXPECT_EQ(train.edge_weights, ds.signal.edge_weights);
  EXPECT_TRUE(train.has_node_targets());
}

TEST(SignalSplit, ExtremeRatiosClampToNonEmptyHalves) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 4;
  o.feature_size = 2;
  auto ds = datasets::load_pedalme(o);
  auto [tr1, te1] = datasets::temporal_signal_split(ds.signal, 0.01);
  EXPECT_GE(tr1.num_timestamps(), 1u);
  auto [tr2, te2] = datasets::temporal_signal_split(ds.signal, 0.99);
  EXPECT_GE(te2.num_timestamps(), 1u);
  EXPECT_THROW(datasets::temporal_signal_split(ds.signal, 0.0), StgError);
  EXPECT_THROW(datasets::temporal_signal_split(ds.signal, 1.0), StgError);
}

TEST(SignalSplit, LinkSignalSplitsToo) {
  Rng rng(3);
  EdgeList stream;
  for (int i = 0; i < 400; ++i) {
    uint32_t s = static_cast<uint32_t>(rng.next_below(15));
    uint32_t d = static_cast<uint32_t>(rng.next_below(15));
    if (s == d) d = (d + 1) % 15;
    stream.emplace_back(s, d);
  }
  DtdgEvents ev = window_edge_stream(15, stream, 10.0);
  datasets::DynamicLoadOptions o;
  o.link_samples_per_step = 8;
  auto signal = datasets::make_dynamic_signal(ev, o);
  auto [train, test] = datasets::temporal_signal_split(signal, 0.5);
  EXPECT_EQ(train.links.size() + test.links.size(), signal.links.size());
  EXPECT_TRUE(train.has_link_samples());
}

}  // namespace
}  // namespace stgraph
