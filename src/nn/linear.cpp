#include "nn/linear.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_(in_features), out_(out_features) {
  STG_CHECK(in_ > 0 && out_ > 0, "Linear dims must be positive: ", in_, "x",
            out_);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_ + out_));  // Glorot uniform
  weight_ = register_parameter(
      "weight", Tensor::uniform({in_, out_}, rng, -bound, bound));
  if (bias) {
    bias_ = register_parameter("bias", Tensor::zeros({out_}));
  }
}

Tensor Linear::forward(const Tensor& x) const {
  STG_CHECK(x.dim() == 2 && x.cols() == in_, "Linear(", in_, "→", out_,
            ") got input ", shape_str(x.shape()));
  Tensor y = ops::matmul(x, weight_);
  if (bias_.defined()) y = ops::add_bias(y, bias_);
  return y;
}

}  // namespace stgraph::nn
