// Tests for the extended layer APIs (ChebConvLite, GConvGRU) and model
// composition — the paper's §V-A1 claim that new temporal models are
// built by swapping building blocks.
#include <gtest/gtest.h>

#include <set>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "graph/static_graph.hpp"
#include "nn/gconv_gru.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

EdgeList random_edges(uint32_t n, int count, uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (int i = 0; i < count * 4 && static_cast<int>(edges.size()) < count; ++i) {
    uint32_t s = rng.next_below(n), d = rng.next_below(n);
    if (s == d || !seen.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  return edges;
}

TEST(ChebConvLite, OrderOneIsPureLinear) {
  Rng rng(1);
  const uint32_t n = 10;
  nn::ChebConvLite conv(3, 4, /*k=*/1, rng);
  StaticTemporalGraph graph(n, random_edges(n, 30, 2), 1);
  core::TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  NoGradGuard ng;
  Tensor x = Tensor::randn({n, 3}, rng);
  Tensor y = conv.forward(exec, x);
  EXPECT_EQ(y.shape(), (Shape{n, 4}));
  // K=1 ignores the graph entirely: permuting edges must not matter.
  StaticTemporalGraph other(n, random_edges(n, 30, 99), 1);
  core::TemporalExecutor exec2(other);
  exec2.begin_forward_step(0);
  Tensor y2 = conv.forward(exec2, x);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y.at(i), y2.at(i));
}

TEST(ChebConvLite, OrderTwoUsesTheGraph) {
  Rng rng(3);
  const uint32_t n = 10;
  nn::ChebConvLite conv(3, 4, /*k=*/2, rng);
  StaticTemporalGraph g1(n, random_edges(n, 30, 4), 1);
  StaticTemporalGraph g2(n, random_edges(n, 30, 77), 1);
  core::TemporalExecutor e1(g1), e2(g2);
  e1.begin_forward_step(0);
  e2.begin_forward_step(0);
  NoGradGuard ng;
  Tensor x = Tensor::randn({n, 3}, rng);
  Tensor y1 = conv.forward(e1, x);
  Tensor y2 = conv.forward(e2, x);
  bool any_diff = false;
  for (int64_t i = 0; i < y1.numel(); ++i)
    any_diff = any_diff || std::abs(y1.at(i) - y2.at(i)) > 1e-6f;
  EXPECT_TRUE(any_diff);
}

TEST(ChebConvLite, RejectsUnsupportedOrder) {
  Rng rng(5);
  EXPECT_THROW(nn::ChebConvLite(3, 4, 3, rng), StgError);
  EXPECT_THROW(nn::ChebConvLite(3, 4, 0, rng), StgError);
}

class GConvGruOrder : public ::testing::TestWithParam<int> {};

TEST_P(GConvGruOrder, CellStepShapesAndGrads) {
  const int k = GetParam();
  Rng rng(7);
  const uint32_t n = 12;
  nn::GConvGRU gru(3, 5, k, rng);
  StaticTemporalGraph graph(n, random_edges(n, 40, 8), 3);
  core::TemporalExecutor exec(graph);

  Tensor x = Tensor::randn({n, 3}, rng, 1.0f, /*requires_grad=*/true);
  exec.begin_forward_step(0);
  Tensor h = gru.forward(exec, x, Tensor());
  EXPECT_EQ(h.shape(), (Shape{n, 5}));
  // Hidden values live in (-1, 1): convex blend of 0-state and tanh.
  for (int64_t i = 0; i < h.numel(); ++i) {
    EXPECT_GT(h.at(i), -1.0f);
    EXPECT_LT(h.at(i), 1.0f);
  }
  ops::sum(h).backward();
  EXPECT_TRUE(x.grad().defined());
  for (const auto& p : gru.parameters()) {
    EXPECT_TRUE(p.tensor.grad().defined()) << p.name;
  }
  exec.verify_drained();
}

INSTANTIATE_TEST_SUITE_P(Orders, GConvGruOrder, ::testing::Values(1, 2));

TEST(GConvGru, TrainsOnStaticTemporalData) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 20;
  o.feature_size = 4;
  auto ds = datasets::load_chickenpox(o);
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(11);
  nn::GConvGRURegressor model(o.feature_size, 8, /*k=*/2, rng);
  core::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.sequence_length = 5;
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);
  auto stats = trainer.train();
  EXPECT_LT(stats.back().loss, stats.front().loss);
}

TEST(GConvGru, ParameterCountMatchesFormula) {
  Rng rng(13);
  nn::GConvGRU gru(4, 8, /*k=*/2, rng);
  // Per gate: x-conv (4·8 lin + 8 bias + 4·8 hop) + h-conv (8·8 lin + 8·8
  // hop, no bias). Three gates.
  const int64_t per_gate = (4 * 8 + 8 + 4 * 8) + (8 * 8 + 8 * 8);
  EXPECT_EQ(gru.parameter_count(), 3 * per_gate);
}

}  // namespace
}  // namespace stgraph
