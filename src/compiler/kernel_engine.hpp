// Internal entry points of the specialized kernel engine (kernel_engine.cpp).
// run_kernel() validates arguments and picks one of these; they assume a
// specializable spec (spec.plans populated, term count within
// kMaxSpecializedTerms).
#pragma once

#include "compiler/kernel.hpp"

namespace stgraph::compiler::detail {

/// Engine instantiated against the native vector ISA (AVX2/NEON, or the
/// width-1 ops when the target has neither).
void run_engine_native(const KernelSpec& spec, const KernelArgs& args);

/// Engine instantiated against the width-1 scalar ops — the STGRAPH_SIMD=off
/// escape hatch. Same specialization grid and scheduling, no vector ISA.
void run_engine_scalar(const KernelSpec& spec, const KernelArgs& args);

}  // namespace stgraph::compiler::detail
