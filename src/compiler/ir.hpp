// Intermediate representation for vertex-centric programs (the Seastar
// layer STGraph inherits, §IV). A user-written vertex function is traced
// into this IR, optimized, auto-differentiated, and lowered to a fused
// gather-aggregate kernel spec executed by the device runtime.
//
// The IR models the message-passing family the paper's models need:
//
//   out[v] = Σ / mean over in-neighbors u of v:
//              (Π coefs(u→v)) · x_input[u]
//          + (optional self term) (Π self_coefs(v)) · x_input[v]
//
// Coefficients never depend on feature values (they read degrees, per-edge
// weights or constants), so every program in this family is LINEAR in its
// feature inputs — which the autodiff pass exploits: the backward program
// is the same aggregation over the transposed graph, and — key for the
// paper's State-Stack memory optimization — it does not need the forward
// input features at all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stgraph::compiler {

/// Multiplicative coefficient attached to a message along edge u→v.
enum class CoefKind : uint8_t {
  kConst,        // literal
  kGcnNorm,      // 1 / sqrt((din(u)+1) (din(v)+1))  — symmetric GCN norm
  kInvDegree,    // 1 / din(v)            — mean aggregation (consumer side)
  kInvDegreeP1,  // 1 / (din(v)+1)        — mean with self loop
  kEdgeWeight,   // w[eid]                — per-edge scalar
};

struct Coef {
  CoefKind kind = CoefKind::kConst;
  float value = 1.0f;  // used by kConst
};

/// One additive message term: (Π coefs) · x_{input}[producer].
struct MessageTerm {
  std::vector<Coef> coefs;
  int input = 0;  // which feature input the producer value is read from
};

enum class AggKind : uint8_t { kSum, kMean, kMax };

/// A full vertex program (single fused aggregation stage).
struct Program {
  AggKind agg = AggKind::kSum;
  std::vector<MessageTerm> terms;
  bool include_self = false;
  std::vector<Coef> self_coefs;  // multiply x_{self_input}[v]
  int self_input = 0;
  float out_scale = 1.0f;  // post-aggregation scaling, fused into the kernel
  /// True for the derivative of a max aggregation: gather the output
  /// gradient, routed only along the argmax edges recorded in the forward
  /// pass (the kernel consumes KernelArgs::argmax_in).
  bool max_backward = false;
  /// Number of distinct feature inputs referenced.
  int num_inputs() const;
  std::string to_string() const;
};

/// Structural equality (used by pass tests).
bool operator==(const Coef& a, const Coef& b);
bool operator==(const MessageTerm& a, const MessageTerm& b);
bool operator==(const Program& a, const Program& b);

// ---------------------------------------------------------------------------
// Elementwise-program IR (the fusing tape compiler).
//
// Aggregations are one half of a temporal cell; the other half is the
// chain of elementwise ops around them — gate activations, bias adds,
// GRU/LSTM combines. Executed op-by-op through the autograd tape, every
// op materializes a full [N, F] intermediate. An EwProgram captures such a
// chain as a small dataflow DAG so the whole region runs as ONE pass over
// the feature arrays (and its derived backward as one more).
//
// Node operands reference earlier nodes by index, so a program listing is
// always in topological (creation) order — the same order the unfused
// reference path replays it through ops::, which is what makes the fused
// and unfused gradients accumulate bit-identically.
// ---------------------------------------------------------------------------

enum class EwOp : uint8_t {
  kInput,      // leaf: runtime input slot `input`
  kAdd,        // a + b
  kSub,        // a - b
  kMul,        // a * b
  kDiv,        // a / b
  kAddS,       // a + imm
  kMulS,       // a * imm
  kNeg,        // -a                      (backward programs only)
  kOneMinus,   // 1 - a
  kSigmoid,    // stable logistic
  kTanh,       // tanh
  kRelu,       // max(a, 0)
  kLeakyRelu,  // a > 0 ? a : imm * a
  kExp,        // exp(a)
  kAddBias,    // a[r,c] + b[c]  (b must be a kBias input)
  kReluGrad,   // a > 0 ? b : 0           (backward programs only)
  kLeakyGrad,  // a > 0 ? b : imm * b     (backward programs only)
};

/// How a runtime input broadcasts over the [N, F] iteration space.
enum class EwInputKind : uint8_t {
  kMat,   // full [N, F] operand
  kBias,  // [F] vector broadcast over rows (bias of kAddBias)
};

struct EwNode {
  EwOp op = EwOp::kInput;
  int a = -1;        // first operand node id
  int b = -1;        // second operand node id (binary ops)
  float imm = 0.0f;  // kAddS / kMulS / kLeakyRelu slope
  int input = -1;    // kInput: runtime input slot
};

/// A fused elementwise region: nodes in topological order, one or more
/// outputs (forward programs have one; derived backward programs have one
/// per differentiable forward input).
struct EwProgram {
  std::vector<EwNode> nodes;
  std::vector<EwInputKind> inputs;
  std::vector<int> outputs;

  int num_inputs() const { return static_cast<int>(inputs.size()); }
  /// Canonical signature, e.g. "sig(add(in0,in1))" — the structural half
  /// of the program-cache key.
  std::string to_string() const;
  /// FNV-1a over the structure (ops, operands, immediates, input kinds).
  uint64_t hash() const;
};

const char* ew_op_name(EwOp op);
bool operator==(const EwNode& a, const EwNode& b);
bool operator==(const EwProgram& a, const EwProgram& b);

}  // namespace stgraph::compiler
