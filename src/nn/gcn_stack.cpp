#include "nn/gcn_stack.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph::nn {

GCNStack::GCNStack(const std::vector<int64_t>& dims, Rng& rng, float dropout)
    : dropout_(dropout), dropout_rng_(rng.next_u64()) {
  STG_CHECK(dims.size() >= 2, "GCNStack needs at least {in, out} dims");
  STG_CHECK(dropout >= 0.0f && dropout < 1.0f, "dropout must be in [0, 1)");
  layers_.reserve(dims.size() - 1);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(
        std::make_unique<SeastarGCNConv>(dims[i], dims[i + 1], rng));
    register_module("conv" + std::to_string(i), layers_.back().get());
  }
}

Tensor GCNStack::forward(core::TemporalExecutor& exec, const Tensor& x,
                         const float* edge_weights) {
  Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(exec, h, edge_weights);
    if (i + 1 < layers_.size()) {
      h = ops::relu(h);
      if (dropout_ > 0.0f)
        h = ops::dropout(h, dropout_, dropout_rng_, is_training());
    }
  }
  return h;
}

}  // namespace stgraph::nn
