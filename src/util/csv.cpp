#include "util/csv.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace stgraph {

void CsvWriter::add_row(std::vector<std::string> row) {
  STG_CHECK(row.size() == header_.size(), "CSV row width ", row.size(),
            " != header width ", header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_table() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      oss << std::left << std::setw(static_cast<int>(widths[c]) + 2) << r[c];
    }
    oss << "\n";
  };
  emit(header_);
  std::string rule;
  for (size_t c = 0; c < header_.size(); ++c)
    rule += std::string(widths[c], '-') + "  ";
  oss << rule << "\n";
  for (const auto& r : rows_) emit(r);
  return oss.str();
}

std::string CsvWriter::to_csv() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      if (c) oss << ",";
      oss << r[c];
    }
    oss << "\n";
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return oss.str();
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

std::string CsvWriter::fmt(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

}  // namespace stgraph
