#include "baseline/edge_ops.hpp"

#include <atomic>
#include <cmath>

#include "autograd/engine.hpp"
#include "runtime/parallel.hpp"
#include "util/check.hpp"

namespace stgraph::baseline {
namespace {
using autograd::LambdaNode;

// In-degree (+1 for the self loop) per node; recomputed per call like
// PyG's gcn_norm.
std::vector<float> inv_sqrt_degree(const CooSnapshot& g) {
  std::vector<uint32_t> deg(g.num_nodes, 0);
  for (std::size_t e = 0; e < g.dst.size(); ++e) ++deg[g.dst[e]];
  std::vector<float> out(g.num_nodes);
  for (uint32_t v = 0; v < g.num_nodes; ++v)
    out[v] = 1.0f / std::sqrt(static_cast<float>(deg[v] + 1));
  return out;
}

Tensor edge_tensor(int64_t e, int64_t f) {
  auto impl = std::make_shared<TensorImpl>(Shape{e, f}, MemCategory::kEdgeMessage);
  return Tensor(std::move(impl));
}

}  // namespace

Tensor gather_messages(const Tensor& x, const CooSnapshot& g) {
  STG_CHECK(x.dim() == 2 && static_cast<uint32_t>(x.rows()) == g.num_nodes,
            "gather_messages: features ", shape_str(x.shape()), " vs ",
            g.num_nodes, " nodes");
  const int64_t E = g.num_edges();
  const int64_t F = x.cols();
  Tensor out = edge_tensor(E, F);
  const float* px = x.data();
  float* po = out.data();
  const uint32_t* src = g.src.data();
  device::parallel_for_ranges(
      static_cast<std::size_t>(E), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t e = lo; e < hi; ++e)
          std::copy(px + static_cast<std::size_t>(src[e]) * F,
                    px + static_cast<std::size_t>(src[e] + 1) * F, po + e * F);
      });
  if (!NoGradGuard::grad_enabled()) return out;
  auto node = std::make_shared<LambdaNode>(
      "gather_messages", [&g, F](const Tensor& grad) {
        // Scatter-add per-edge gradients back onto source rows (atomics:
        // many edges share a source).
        Tensor gx = Tensor::zeros({g.num_nodes, F});
        float* pgx = gx.data();
        const float* pg = grad.data();
        const uint32_t* src = g.src.data();
        device::parallel_for_ranges(
            g.src.size(), [&](std::size_t lo, std::size_t hi) {
              for (std::size_t e = lo; e < hi; ++e) {
                float* row = pgx + static_cast<std::size_t>(src[e]) * F;
                const float* grow = pg + e * F;
                for (int64_t f = 0; f < F; ++f) {
                  std::atomic_ref<float> cell(row[f]);
                  cell.fetch_add(grow[f], std::memory_order_relaxed);
                }
              }
            });
        return std::vector<Tensor>{gx};
      });
  node->add_input(x);
  node->set_output(out);
  return out;
}

Tensor scale_messages(const Tensor& messages, const Tensor& coef) {
  STG_CHECK(messages.dim() == 2 && coef.dim() == 1 &&
                coef.size(0) == messages.rows(),
            "scale_messages: ", shape_str(messages.shape()), " vs coef ",
            shape_str(coef.shape()));
  const int64_t E = messages.rows(), F = messages.cols();
  Tensor out = edge_tensor(E, F);
  const float* pm = messages.data();
  const float* pc = coef.data();
  float* po = out.data();
  device::parallel_for_ranges(
      static_cast<std::size_t>(E), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t e = lo; e < hi; ++e)
          for (int64_t f = 0; f < F; ++f) po[e * F + f] = pm[e * F + f] * pc[e];
      });
  if (!NoGradGuard::grad_enabled()) return out;
  // torch.mul's conservative saved-tensor set: BOTH operands, including the
  // [E, F] message tensor — this retention over the sequence is the
  // baseline memory behaviour the paper measures.
  auto node = std::make_shared<LambdaNode>(
      "scale_messages", [messages, coef, E, F](const Tensor& grad) {
        Tensor gm = Tensor::empty({E, F});
        const float* pg = grad.data();
        const float* pc = coef.data();
        float* pgm = gm.data();
        device::parallel_for_ranges(
            static_cast<std::size_t>(E), [&](std::size_t lo, std::size_t hi) {
              for (std::size_t e = lo; e < hi; ++e)
                for (int64_t f = 0; f < F; ++f)
                  pgm[e * F + f] = pg[e * F + f] * pc[e];
            });
        return std::vector<Tensor>{gm};
      });
  node->add_input(messages);
  node->set_output(out);
  return out;
}

Tensor scatter_add(const Tensor& messages, const CooSnapshot& g) {
  STG_CHECK(messages.dim() == 2 &&
                static_cast<uint32_t>(messages.rows()) == g.num_edges(),
            "scatter_add: ", shape_str(messages.shape()), " vs ",
            g.num_edges(), " edges");
  const int64_t F = messages.cols();
  Tensor out = Tensor::zeros({g.num_nodes, F});
  const float* pm = messages.data();
  float* po = out.data();
  const uint32_t* dst = g.dst.data();
  device::parallel_for_ranges(
      g.dst.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t e = lo; e < hi; ++e) {
          float* row = po + static_cast<std::size_t>(dst[e]) * F;
          const float* mrow = pm + e * F;
          for (int64_t f = 0; f < F; ++f) {
            std::atomic_ref<float> cell(row[f]);
            cell.fetch_add(mrow[f], std::memory_order_relaxed);
          }
        }
      });
  if (!NoGradGuard::grad_enabled()) return out;
  const int64_t E = g.num_edges();
  auto node = std::make_shared<LambdaNode>(
      "scatter_add", [&g, E, F](const Tensor& grad) {
        Tensor gm = Tensor::empty({E, F});
        const float* pg = grad.data();
        float* pgm = gm.data();
        const uint32_t* dst = g.dst.data();
        device::parallel_for_ranges(
            static_cast<std::size_t>(E), [&](std::size_t lo, std::size_t hi) {
              for (std::size_t e = lo; e < hi; ++e)
                std::copy(pg + static_cast<std::size_t>(dst[e]) * F,
                          pg + static_cast<std::size_t>(dst[e] + 1) * F,
                          pgm + e * F);
            });
        return std::vector<Tensor>{gm};
      });
  node->add_input(messages);
  node->set_output(out);
  return out;
}

Tensor gcn_norm(const CooSnapshot& g, const float* edge_weights) {
  const std::vector<float> inv_sqrt = inv_sqrt_degree(g);
  Tensor coef = Tensor::empty({static_cast<int64_t>(g.num_edges())});
  float* pc = coef.data();
  const uint32_t* src = g.src.data();
  const uint32_t* dst = g.dst.data();
  device::parallel_for_ranges(
      g.src.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t e = lo; e < hi; ++e) {
          float c = inv_sqrt[src[e]] * inv_sqrt[dst[e]];
          if (edge_weights) c *= edge_weights[e];
          pc[e] = c;
        }
      });
  return coef;
}

Tensor self_loop_contribution(const Tensor& x, const CooSnapshot& g) {
  const std::vector<float> inv_sqrt = inv_sqrt_degree(g);
  const int64_t F = x.cols();
  Tensor coef = Tensor::empty({x.rows()});
  for (int64_t v = 0; v < x.rows(); ++v)
    coef.data()[v] = inv_sqrt[v] * inv_sqrt[v];  // 1/(din+1)
  // Row-scale via a dedicated kernel with a linear backward.
  Tensor out = Tensor::empty({x.rows(), F});
  const float* px = x.data();
  const float* pc = coef.data();
  float* po = out.data();
  device::parallel_for_ranges(
      static_cast<std::size_t>(x.rows()), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r)
          for (int64_t f = 0; f < F; ++f) po[r * F + f] = px[r * F + f] * pc[r];
      });
  if (!NoGradGuard::grad_enabled()) return out;
  const int64_t N = x.rows();
  auto node = std::make_shared<LambdaNode>(
      "self_loop", [coef, N, F](const Tensor& grad) {
        Tensor gx = Tensor::empty({N, F});
        const float* pg = grad.data();
        const float* pc = coef.data();
        float* pgx = gx.data();
        for (int64_t r = 0; r < N; ++r)
          for (int64_t f = 0; f < F; ++f) pgx[r * F + f] = pg[r * F + f] * pc[r];
        return std::vector<Tensor>{gx};
      });
  node->add_input(x);
  node->set_output(out);
  return out;
}

}  // namespace stgraph::baseline
