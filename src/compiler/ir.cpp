#include "compiler/ir.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace stgraph::compiler {

int Program::num_inputs() const {
  int n = 0;
  for (const MessageTerm& t : terms) n = std::max(n, t.input + 1);
  if (include_self) n = std::max(n, self_input + 1);
  return n;
}

namespace {
const char* coef_name(CoefKind k) {
  switch (k) {
    case CoefKind::kConst: return "const";
    case CoefKind::kGcnNorm: return "gcn_norm";
    case CoefKind::kInvDegree: return "inv_deg";
    case CoefKind::kInvDegreeP1: return "inv_deg_p1";
    case CoefKind::kEdgeWeight: return "edge_w";
    default: return "?";
  }
}
void print_coefs(std::ostringstream& oss, const std::vector<Coef>& coefs) {
  if (coefs.empty()) {
    oss << "1";
    return;
  }
  for (size_t i = 0; i < coefs.size(); ++i) {
    if (i) oss << "*";
    oss << coef_name(coefs[i].kind);
    if (coefs[i].kind == CoefKind::kConst) oss << "(" << coefs[i].value << ")";
  }
}
}  // namespace

std::string Program::to_string() const {
  std::ostringstream oss;
  const char* agg_name = agg == AggKind::kSum    ? "sum"
                         : agg == AggKind::kMean ? "mean"
                                                 : "max";
  oss << "out[v] = " << (out_scale != 1.0f ? std::to_string(out_scale) + " * " : "")
      << (max_backward ? "max_bwd" : agg_name) << "_{u in N(v)} [";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i) oss << " + ";
    print_coefs(oss, terms[i].coefs);
    oss << " * x" << terms[i].input << "[u]";
  }
  oss << "]";
  if (include_self) {
    oss << " + ";
    print_coefs(oss, self_coefs);
    oss << " * x" << self_input << "[v]";
  }
  return oss.str();
}

bool operator==(const Coef& a, const Coef& b) {
  return a.kind == b.kind && (a.kind != CoefKind::kConst || a.value == b.value);
}
bool operator==(const MessageTerm& a, const MessageTerm& b) {
  return a.input == b.input && a.coefs == b.coefs;
}
bool operator==(const Program& a, const Program& b) {
  return a.agg == b.agg && a.terms == b.terms &&
         a.include_self == b.include_self && a.self_coefs == b.self_coefs &&
         a.self_input == b.self_input && a.out_scale == b.out_scale &&
         a.max_backward == b.max_backward;
}

// ---- elementwise-program IR ----------------------------------------------

const char* ew_op_name(EwOp op) {
  switch (op) {
    case EwOp::kInput: return "in";
    case EwOp::kAdd: return "add";
    case EwOp::kSub: return "sub";
    case EwOp::kMul: return "mul";
    case EwOp::kDiv: return "div";
    case EwOp::kAddS: return "add_s";
    case EwOp::kMulS: return "mul_s";
    case EwOp::kNeg: return "neg";
    case EwOp::kOneMinus: return "one_minus";
    case EwOp::kSigmoid: return "sig";
    case EwOp::kTanh: return "tanh";
    case EwOp::kRelu: return "relu";
    case EwOp::kLeakyRelu: return "leaky_relu";
    case EwOp::kExp: return "exp";
    case EwOp::kAddBias: return "add_bias";
    case EwOp::kReluGrad: return "relu_grad";
    case EwOp::kLeakyGrad: return "leaky_grad";
  }
  return "?";
}

std::string EwProgram::to_string() const {
  std::ostringstream oss;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const EwNode& n = nodes[i];
    if (i) oss << "; ";
    oss << "%" << i << "=" << ew_op_name(n.op);
    if (n.op == EwOp::kInput) {
      oss << n.input
          << (inputs[static_cast<size_t>(n.input)] == EwInputKind::kBias
                  ? "b"
                  : "");
      continue;
    }
    oss << "(%" << n.a;
    if (n.b >= 0) oss << ",%" << n.b;
    if (n.op == EwOp::kAddS || n.op == EwOp::kMulS ||
        n.op == EwOp::kLeakyRelu || n.op == EwOp::kLeakyGrad)
      oss << "," << n.imm;
    oss << ")";
  }
  oss << " -> ";
  for (size_t i = 0; i < outputs.size(); ++i)
    oss << (i ? "," : "") << "%" << outputs[i];
  return oss.str();
}

uint64_t EwProgram::hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const EwNode& n : nodes) {
    mix(static_cast<uint64_t>(n.op));
    mix(static_cast<uint64_t>(static_cast<int64_t>(n.a)) + 1);
    mix(static_cast<uint64_t>(static_cast<int64_t>(n.b)) + 1);
    uint32_t bits;
    static_assert(sizeof(bits) == sizeof(n.imm));
    std::memcpy(&bits, &n.imm, sizeof(bits));
    mix(bits);
    mix(static_cast<uint64_t>(static_cast<int64_t>(n.input)) + 1);
  }
  for (EwInputKind k : inputs) mix(static_cast<uint64_t>(k) + 0x9e);
  for (int o : outputs) mix(static_cast<uint64_t>(o) + 0x51);
  return h;
}

bool operator==(const EwNode& a, const EwNode& b) {
  return a.op == b.op && a.a == b.a && a.b == b.b && a.imm == b.imm &&
         a.input == b.input;
}

bool operator==(const EwProgram& a, const EwProgram& b) {
  return a.nodes == b.nodes && a.inputs == b.inputs && a.outputs == b.outputs;
}

}  // namespace stgraph::compiler
