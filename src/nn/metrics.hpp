// Evaluation metrics for the two benchmark tasks: regression errors for
// static-temporal node forecasting, classification quality for DTDG link
// prediction. Pure functions over tensors — no autograd involvement.
#pragma once

#include "tensor/tensor.hpp"

namespace stgraph::nn::metrics {

/// Mean absolute error.
double mae(const Tensor& pred, const Tensor& target);
/// Root mean squared error.
double rmse(const Tensor& pred, const Tensor& target);
/// Mean absolute percentage error (entries with |target| < eps skipped).
double mape(const Tensor& pred, const Tensor& target, float eps = 1e-6f);

/// Area under the ROC curve via the rank statistic (handles ties).
/// `scores` are arbitrary reals, `labels` are 0/1.
double roc_auc(const Tensor& scores, const Tensor& labels);

/// Classification accuracy of sign(logit) vs 0/1 labels at threshold 0.
double binary_accuracy(const Tensor& logits, const Tensor& labels);

/// Precision@k: fraction of the k highest-scoring entries whose label is 1.
double precision_at_k(const Tensor& scores, const Tensor& labels, int64_t k);

}  // namespace stgraph::nn::metrics
