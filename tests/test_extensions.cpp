// Tests for the extension utilities: RelationalGCNConv (typed edges over
// the weighted-kernel machinery), LR scheduling, early stopping, and
// signal normalization.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/executor.hpp"
#include "datasets/normalize.hpp"
#include "datasets/synthetic.hpp"
#include "graph/static_graph.hpp"
#include "nn/rgcn.hpp"
#include "nn/schedule.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

TEST(RelationAssignment, MasksPartitionTheEdges) {
  nn::RelationAssignment ra({0, 1, 0, 2, 1}, 3);
  ra.materialize();
  EXPECT_EQ(ra.mask(0), (std::vector<float>{1, 0, 1, 0, 0}));
  EXPECT_EQ(ra.mask(1), (std::vector<float>{0, 1, 0, 0, 1}));
  EXPECT_EQ(ra.mask(2), (std::vector<float>{0, 0, 0, 1, 0}));
  const float ew[5] = {2, 3, 4, 5, 6};
  ra.materialize(ew);
  EXPECT_EQ(ra.mask(0), (std::vector<float>{2, 0, 4, 0, 0}));
  EXPECT_THROW(ra.mask(3), StgError);
  EXPECT_THROW(nn::RelationAssignment({0, 5}, 3), StgError);
}

TEST(Rgcn, SingleRelationMatchesGcnPlusRoot) {
  // With one relation and all-ones masks, RGCN = SeastarGCNConv (bias
  // off) + root Linear. Construct both from the same seed stream.
  const uint32_t n = 12;
  Rng er(1);
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> dedup;
  while (edges.size() < 30) {
    uint32_t s = er.next_below(n), d = er.next_below(n);
    if (s == d || !dedup.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  StaticTemporalGraph graph(n, edges, 1);
  core::TemporalExecutor exec(graph);
  exec.begin_forward_step(0);

  Rng ra(7);
  nn::RelationalGCNConv rgcn(3, 4, /*num_relations=*/1, ra);
  // Same RNG stream rebuilds identical weights. RelationalGCNConv's
  // initialization order is: self_lin_ (member init, declaration order),
  // then the per-relation convs (ctor body) — mirror that here.
  Rng rc(7);
  nn::Linear ref_root(3, 4, rc);
  nn::SeastarGCNConv ref_conv(3, 4, rc, /*bias=*/false);

  NoGradGuard ng;
  Rng xd(9);
  Tensor x = Tensor::randn({n, 3}, xd);
  nn::RelationAssignment rel(std::vector<uint8_t>(edges.size(), 0), 1);
  rel.materialize();
  Tensor got = rgcn.forward(exec, x, rel);
  Tensor want = ops::add(ref_root.forward(x), ref_conv.forward(exec, x));
  ASSERT_TRUE(same_shape(got, want));
  for (int64_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got.at(i), want.at(i), 1e-4f) << i;
}

TEST(Rgcn, RelationsAreActuallyTyped) {
  // Moving an edge to a different relation must change the output.
  const uint32_t n = 6;
  const EdgeList edges{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  StaticTemporalGraph graph(n, edges, 1);
  core::TemporalExecutor exec(graph);
  Rng rng(11);
  nn::RelationalGCNConv rgcn(2, 3, 2, rng);
  NoGradGuard ng;
  Rng xd(13);
  Tensor x = Tensor::randn({n, 2}, xd);

  nn::RelationAssignment rel_a({0, 0, 0, 1, 1}, 2);
  nn::RelationAssignment rel_b({1, 0, 0, 1, 1}, 2);  // first edge retyped
  rel_a.materialize();
  rel_b.materialize();
  exec.begin_forward_step(0);
  Tensor ya = rgcn.forward(exec, x, rel_a);
  exec.begin_forward_step(0);
  Tensor yb = rgcn.forward(exec, x, rel_b);
  bool differs = false;
  for (int64_t i = 0; i < ya.numel(); ++i)
    differs = differs || std::abs(ya.at(i) - yb.at(i)) > 1e-6f;
  EXPECT_TRUE(differs);
}

TEST(Rgcn, GradientsFlowThroughEveryRelationWeight) {
  const uint32_t n = 8;
  const EdgeList edges{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}};
  StaticTemporalGraph graph(n, edges, 1);
  core::TemporalExecutor exec(graph);
  Rng rng(17);
  nn::RelationalGCNConv rgcn(2, 2, 2, rng);
  nn::RelationAssignment rel({0, 0, 0, 1, 1, 1}, 2);
  rel.materialize();
  Rng xd(19);
  Tensor x = Tensor::randn({n, 2}, xd, 1.0f, true);
  exec.begin_forward_step(0);
  Tensor y = rgcn.forward(exec, x, rel);
  ops::sum(ops::mul(y, y)).backward();
  exec.verify_drained();
  for (const auto& p : rgcn.parameters()) {
    ASSERT_TRUE(p.tensor.grad().defined()) << p.name;
    double norm = 0;
    for (int64_t i = 0; i < p.tensor.grad().numel(); ++i)
      norm += std::abs(p.tensor.grad().at(i));
    EXPECT_GT(norm, 0.0) << p.name;
  }
}

TEST(Schedule, StepLrDecaysAtBoundaries) {
  Tensor w = Tensor::ones({1}, true);
  nn::Sgd opt({{"w", w}}, 0.8f);
  nn::StepLR sched(opt, /*step_size=*/2, /*gamma=*/0.5f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.8f);
  sched.step();  // epoch 1
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.8f);
  sched.step();  // epoch 2: decay
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.4f);
  sched.step();
  sched.step();  // epoch 4: decay again
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.2f);
  EXPECT_THROW(nn::StepLR(opt, 0), StgError);
}

TEST(Schedule, EarlyStoppingPatience) {
  nn::EarlyStopping es(/*patience=*/2, /*min_delta=*/0.01);
  EXPECT_FALSE(es.update(1.0));   // best = 1.0
  EXPECT_FALSE(es.update(0.5));   // improves
  EXPECT_FALSE(es.update(0.495)); // within min_delta: stale 1
  EXPECT_TRUE(es.update(0.55));   // stale 2 → stop
  EXPECT_TRUE(es.should_stop());
  EXPECT_DOUBLE_EQ(es.best(), 0.5);
}

TEST(Normalize, NodeScalerZeroMeanUnitStd) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 30;
  o.feature_size = 3;
  auto ds = datasets::load_chickenpox(o);
  auto scaler = datasets::NodeScaler::fit(ds.signal);
  auto normed = scaler.transform(ds.signal);
  // Per-node target statistics after normalization: mean ≈ 0, std ≈ 1.
  const int64_t n = ds.num_nodes;
  for (int64_t v = 0; v < n; ++v) {
    double mean = 0, var = 0;
    for (const Tensor& y : normed.targets) mean += y.at(v, 0);
    mean /= normed.targets.size();
    for (const Tensor& y : normed.targets) {
      const double d = y.at(v, 0) - mean;
      var += d * d;
    }
    var /= normed.targets.size();
    EXPECT_NEAR(mean, 0.0, 1e-4) << v;
    EXPECT_NEAR(std::sqrt(var), 1.0, 1e-3) << v;
  }
}

TEST(Normalize, InverseRecoversOriginalUnits) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 10;
  o.feature_size = 2;
  auto ds = datasets::load_pedalme(o);
  auto scaler = datasets::NodeScaler::fit(ds.signal);
  auto normed = scaler.transform(ds.signal);
  Tensor back = scaler.inverse(normed.targets[3]);
  for (int64_t v = 0; v < back.rows(); ++v)
    EXPECT_NEAR(back.at(v, 0), ds.signal.targets[3].at(v, 0), 1e-4f);
}

TEST(Normalize, MinMaxBoundsFeatures) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 8;
  o.feature_size = 2;
  auto ds = datasets::load_chickenpox(o);
  auto scaler = datasets::MinMaxScaler::fit(ds.signal);
  auto normed = scaler.transform(ds.signal);
  float lo = 1e9f, hi = -1e9f;
  for (const Tensor& x : normed.features) {
    for (int64_t i = 0; i < x.numel(); ++i) {
      lo = std::min(lo, x.at(i));
      hi = std::max(hi, x.at(i));
    }
  }
  EXPECT_NEAR(lo, 0.0f, 1e-6f);
  EXPECT_NEAR(hi, 1.0f, 1e-6f);
}

}  // namespace
}  // namespace stgraph
