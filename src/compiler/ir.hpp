// Intermediate representation for vertex-centric programs (the Seastar
// layer STGraph inherits, §IV). A user-written vertex function is traced
// into this IR, optimized, auto-differentiated, and lowered to a fused
// gather-aggregate kernel spec executed by the device runtime.
//
// The IR models the message-passing family the paper's models need:
//
//   out[v] = Σ / mean over in-neighbors u of v:
//              (Π coefs(u→v)) · x_input[u]
//          + (optional self term) (Π self_coefs(v)) · x_input[v]
//
// Coefficients never depend on feature values (they read degrees, per-edge
// weights or constants), so every program in this family is LINEAR in its
// feature inputs — which the autodiff pass exploits: the backward program
// is the same aggregation over the transposed graph, and — key for the
// paper's State-Stack memory optimization — it does not need the forward
// input features at all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stgraph::compiler {

/// Multiplicative coefficient attached to a message along edge u→v.
enum class CoefKind : uint8_t {
  kConst,        // literal
  kGcnNorm,      // 1 / sqrt((din(u)+1) (din(v)+1))  — symmetric GCN norm
  kInvDegree,    // 1 / din(v)            — mean aggregation (consumer side)
  kInvDegreeP1,  // 1 / (din(v)+1)        — mean with self loop
  kEdgeWeight,   // w[eid]                — per-edge scalar
};

struct Coef {
  CoefKind kind = CoefKind::kConst;
  float value = 1.0f;  // used by kConst
};

/// One additive message term: (Π coefs) · x_{input}[producer].
struct MessageTerm {
  std::vector<Coef> coefs;
  int input = 0;  // which feature input the producer value is read from
};

enum class AggKind : uint8_t { kSum, kMean, kMax };

/// A full vertex program (single fused aggregation stage).
struct Program {
  AggKind agg = AggKind::kSum;
  std::vector<MessageTerm> terms;
  bool include_self = false;
  std::vector<Coef> self_coefs;  // multiply x_{self_input}[v]
  int self_input = 0;
  float out_scale = 1.0f;  // post-aggregation scaling, fused into the kernel
  /// True for the derivative of a max aggregation: gather the output
  /// gradient, routed only along the argmax edges recorded in the forward
  /// pass (the kernel consumes KernelArgs::argmax_in).
  bool max_backward = false;
  /// Number of distinct feature inputs referenced.
  int num_inputs() const;
  std::string to_string() const;
};

/// Structural equality (used by pass tests).
bool operator==(const Coef& a, const Coef& b);
bool operator==(const MessageTerm& a, const MessageTerm& b);
bool operator==(const Program& a, const Program& b);

}  // namespace stgraph::compiler
