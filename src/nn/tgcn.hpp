// TGCN cell — the model the paper benchmarks against PyG-T (its "default
// configuration of TGCN"). Structure follows PyG-T's implementation: a
// GRU-style cell whose input transform is a GCN convolution and whose
// gates are linear layers over [conv(X) ‖ H]:
//
//   Z  = σ(linear_z([conv_z(X) ‖ H]))          update gate
//   R  = σ(linear_r([conv_r(X) ‖ H]))          reset gate
//   H~ = tanh(linear_h([conv_h(X) ‖ R⊙H]))     candidate state
//   H' = Z⊙H + (1-Z)⊙H~
//
// The spatial component is the vertex-centric SeastarGCNConv; the temporal
// component is plain backend ops — exactly the division of labor §V-A1
// argues for (temporal state needs no spatial information, so it stays in
// the backend while aggregation goes through generated kernels).
#pragma once

#include "nn/gcn.hpp"
#include "nn/linear.hpp"

namespace stgraph::nn {

class TGCN : public Module {
 public:
  TGCN(int64_t in_features, int64_t out_features, Rng& rng);

  /// One timestep. `h` may be undefined (treated as zeros). Returns H'.
  Tensor forward(core::TemporalExecutor& exec, const Tensor& x,
                 const Tensor& h, const float* edge_weights = nullptr) const;

  /// Fresh zero hidden state for `num_nodes` vertices.
  Tensor initial_state(int64_t num_nodes) const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }

 private:
  int64_t in_, out_;
  SeastarGCNConv conv_z_, conv_r_, conv_h_;
  Linear linear_z_, linear_r_, linear_h_;
};

}  // namespace stgraph::nn
