// Reordering tests: permutation validity, bandwidth reduction on
// structured graphs, training invariance under relabelling.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/executor.hpp"
#include "graph/reorder.hpp"
#include "graph/static_graph.hpp"
#include "nn/gcn.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

EdgeList grid_graph(uint32_t side) {
  // side×side grid; a classic RCM showcase (banded structure exists).
  EdgeList edges;
  auto id = [side](uint32_t r, uint32_t c) { return r * side + c; };
  for (uint32_t r = 0; r < side; ++r)
    for (uint32_t c = 0; c < side; ++c) {
      if (c + 1 < side) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < side) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  return edges;
}

void expect_permutation(const VertexOrder& order, uint32_t n) {
  ASSERT_EQ(order.size(), n);
  std::set<uint32_t> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), n);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), n - 1);
}

TEST(Reorder, OrdersArePermutations) {
  Rng rng(1);
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> dedup;
  for (int i = 0; i < 200; ++i) {
    uint32_t s = rng.next_below(50), d = rng.next_below(50);
    if (s == d || !dedup.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  expect_permutation(bfs_order(50, edges), 50);
  expect_permutation(rcm_order(50, edges), 50);
}

TEST(Reorder, HandlesIsolatedVerticesAndComponents) {
  // Two components + two isolated vertices.
  const EdgeList edges{{0, 1}, {1, 2}, {5, 6}};
  expect_permutation(bfs_order(9, edges), 9);
  expect_permutation(rcm_order(9, edges), 9);
}

TEST(Reorder, InverseRoundTrips) {
  const VertexOrder order{3, 1, 0, 2};
  const auto inv = inverse_order(order);
  EXPECT_EQ(inv, (std::vector<uint32_t>{2, 1, 3, 0}));
  for (uint32_t new_id = 0; new_id < order.size(); ++new_id)
    EXPECT_EQ(inv[order[new_id]], new_id);
  EXPECT_THROW(inverse_order({0, 0, 1}), StgError);
}

TEST(Reorder, RcmReducesEdgeSpanOnShuffledGrid) {
  const uint32_t side = 16;
  EdgeList edges = grid_graph(side);
  const uint32_t n = side * side;
  // Scramble the natural (already banded) numbering first.
  Rng rng(7);
  VertexOrder scramble(n);
  std::iota(scramble.begin(), scramble.end(), 0);
  rng.shuffle(scramble);
  EdgeList shuffled = relabel_edges(edges, scramble);

  const double span_shuffled = mean_edge_span(n, shuffled);
  const double span_rcm =
      mean_edge_span(n, relabel_edges(shuffled, rcm_order(n, shuffled)));
  const double span_bfs =
      mean_edge_span(n, relabel_edges(shuffled, bfs_order(n, shuffled)));
  // RCM and BFS should both massively improve on random numbering; RCM at
  // least as good as plain BFS on a grid.
  EXPECT_LT(span_rcm, span_shuffled / 3.0);
  EXPECT_LT(span_bfs, span_shuffled / 2.0);
  EXPECT_LE(span_rcm, span_bfs * 1.25);
}

TEST(Reorder, PermuteRowsMatchesOrder) {
  Tensor x = Tensor::from_vector({10, 11, 20, 21, 30, 31}, {3, 2});
  const VertexOrder order{2, 0, 1};
  Tensor p = permute_rows(x, order);
  EXPECT_EQ(p.to_vector(), (std::vector<float>{30, 31, 10, 11, 20, 21}));
  EXPECT_THROW(permute_rows(x, {0, 1}), StgError);
}

TEST(Reorder, GcnOutputInvariantUnderRelabelling) {
  // Aggregation commutes with vertex relabelling: computing on the
  // relabelled graph with permuted features must equal permuting the
  // original output.
  Rng rng(5);
  const uint32_t n = 30;
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> dedup;
  for (int i = 0; i < 120; ++i) {
    uint32_t s = rng.next_below(n), d = rng.next_below(n);
    if (s == d || !dedup.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  Tensor x = Tensor::randn({n, 3}, rng);
  Rng wa(9), wb(9);
  nn::SeastarGCNConv conv_a(3, 4, wa), conv_b(3, 4, wb);

  NoGradGuard ng;
  StaticTemporalGraph g1(n, edges, 1);
  core::TemporalExecutor e1(g1);
  e1.begin_forward_step(0);
  Tensor out1 = conv_a.forward(e1, x);

  const VertexOrder order = rcm_order(n, edges);
  StaticTemporalGraph g2(n, relabel_edges(edges, order), 1);
  core::TemporalExecutor e2(g2);
  e2.begin_forward_step(0);
  Tensor out2 = conv_b.forward(e2, permute_rows(x, order));

  Tensor expected = permute_rows(out1, order);
  for (int64_t i = 0; i < expected.numel(); ++i)
    EXPECT_NEAR(out2.at(i), expected.at(i), 1e-4f) << i;
}

}  // namespace
}  // namespace stgraph
