// The specialized kernel engine — what Seastar's CUDA codegen emits per
// program, reproduced as a C++ template grid. Where the interpreted
// reference path (kernel.cpp) re-evaluates a coef-kind switch on every edge
// and walks features scalar-by-scalar, this engine:
//
//   * instantiates one row function per (mode, has-edge-weight, has-gaps,
//     has-eids, include-self) combination, so every per-edge branch of the
//     reference loop is resolved at compile time,
//   * hoists consumer-only coefficient factors (inverse-degree products on
//     the row vertex) out of the edge loop — in the forward direction the
//     per-edge work for a GCN-normalized sum collapses to one cached
//     multiply,
//   * serves kGcnNorm factors from the per-snapshot edge-coefficient cache
//     (KernelArgs::gcn_coef) when the graph provides one, replacing a
//     per-edge rsqrt with a load,
//   * keeps the output row in vector registers across the edge loop
//     (register tiling): up to 8 accumulator vectors per scan, so a 32-wide
//     feature tile on AVX2 reads and writes memory once per row instead of
//     once per edge.
//
// Bit-parity contract with the reference: compile() canonicalizes coef
// order, so the hoisted prefix is a literal prefix of the reference's
// left-to-right product; simd::Ops::madd is unfused; this translation unit
// is built with -ffp-contract=off. The fuzz suite (test_kernel_simd)
// asserts bitwise identity on every grid cell.
#include "compiler/kernel_engine.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <utility>

#include "runtime/parallel.hpp"
#include "runtime/simd.hpp"

namespace stgraph::compiler::detail {
namespace {

enum class Mode { kSumFwd, kSumBwd, kMaxFwd, kMaxBwd };

/// Widest feature span one row call covers in a single edge scan with
/// stack-resident accumulators. The untiled path caps F below
/// kFeatureTileThreshold and every tile is at most kFeatureTileThreshold
/// wide, so a row call never exceeds this.
inline constexpr uint32_t kMaxRange = 64;
static_assert(kFeatureTileThreshold <= kMaxRange);

/// Max accumulator vectors live at once (8 ymm on AVX2 = one 32-float tile).
inline constexpr uint32_t kMaxAccVecs = 8;

/// Edge-loop lookahead for gather prefetch. The producer-feature rows land
/// at random addresses (the graph decides), so the hardware prefetcher
/// cannot help; issuing the loads this many edges early hides the L2-miss
/// latency that otherwise dominates the scan.
inline constexpr uint32_t kPrefetchDist = 32;
inline constexpr uint32_t kPrefetchNear = 6;

inline void prefetch_read(const void* p, int locality) {
#if defined(__GNUC__) || defined(__clang__)
  switch (locality) {  // __builtin_prefetch needs a literal hint
    case 3:
      __builtin_prefetch(p, 0, 3);
      break;
    case 2:
      __builtin_prefetch(p, 0, 2);
      break;
    default:
      __builtin_prefetch(p, 0, 1);
      break;
  }
#else
  (void)p;
  (void)locality;
#endif
}

/// Everything one launch's row functions touch, flattened out of
/// KernelSpec/KernelArgs so the hot loop indexes plain pointers.
struct Launch {
  const uint32_t* row_offset = nullptr;
  const uint32_t* col = nullptr;
  const uint32_t* eids = nullptr;
  const uint32_t* deg = nullptr;
  const float* ew = nullptr;
  const float* cache = nullptr;  // eid-indexed gcn-norm cache; may be null
  const float* const* inputs = nullptr;
  const float* self_features = nullptr;
  float* out = nullptr;
  uint32_t* argmax_out = nullptr;
  const uint32_t* argmax_in = nullptr;
  const TermPlan* plans = nullptr;
  uint32_t num_terms = 0;
  TermPlan self_plan;
  float scale = 1.0f;
  uint32_t F = 0;
  /// Fused bias epilogue ([F] row added at accumulator writeback); sum
  /// modes only — validate_args rejects it for max programs.
  const float* epilogue = nullptr;
  /// One past the last valid slot index (row_offset[num_nodes]): the edge
  /// prefetch looks across row boundaries up to here, since rows tile the
  /// slot array contiguously.
  uint32_t slots_end = 0;
};

/// Prefetch the feature rows (and coefficients) the scan will gather a few
/// slots from now: a far touch pulls toward L2, a near one finishes the
/// line into L1 just before use. Looks across row boundaries (rows tile
/// the slot array, and consecutive rows run on the same lane in natural
/// order), so short rows still get covered.
template <bool Gaps, bool Eids>
inline void prefetch_edge(const Launch& L, const float* input, uint32_t j,
                          uint32_t f0) {
  const auto touch = [&](uint32_t ahead, int locality) {
    const uint32_t pcol = L.col[j + ahead];
    if constexpr (Gaps) {
      if (pcol == kSpace) return;
    }
    const float* p = input + static_cast<std::size_t>(pcol) * L.F + f0;
    prefetch_read(p, locality);
    if (L.F > 16) prefetch_read(p + 16, locality);  // second line of the row
    if constexpr (Eids) {
      if (L.cache) prefetch_read(L.cache + L.eids[j + ahead], locality);
    }
  };
  if (j + kPrefetchDist < L.slots_end) touch(kPrefetchDist, /*L2=*/2);
  if (j + kPrefetchNear < L.slots_end) touch(kPrefetchNear, /*L1=*/3);
}

/// Multiply in a plan's consumer-degree factors for vertex v. Canonical
/// order (inv-degree before inv-degree+1) matches the reference product.
inline float apply_consumer(const TermPlan& tp, float c, const Launch& L,
                            uint32_t v) {
  if (tp.inv_deg) {
    const uint32_t d = L.deg[v];
    const float f = d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
    for (uint32_t k = 0; k < tp.inv_deg; ++k) c *= f;
  }
  if (tp.inv_deg_p1) {
    const float f = 1.0f / static_cast<float>(L.deg[v] + 1);
    for (uint32_t k = 0; k < tp.inv_deg_p1; ++k) c *= f;
  }
  return c;
}

/// Per-row hoisted prefix of each term's coefficient product: the constant
/// fold always, plus the consumer factors when the row is the consumer
/// (forward sum, max forward). In the backward direction the consumer is
/// the column, so those factors stay per-edge.
template <Mode M>
inline void term_bases(const Launch& L, uint32_t row,
                       float* base /* kMaxSpecializedTerms */) {
  for (uint32_t t = 0; t < L.num_terms; ++t) {
    float c = L.plans[t].c0;
    if constexpr (M == Mode::kSumFwd || M == Mode::kMaxFwd)
      c = apply_consumer(L.plans[t], c, L, row);
    base[t] = c;
  }
}

/// Complete a hoisted base into the per-edge coefficient (canonical factor
/// order; out_scale is applied by the caller where the mode requires it).
/// The gcn argument order differs from the reference's (producer, consumer)
/// only by commutation, which is bitwise-exact for float multiplies.
template <Mode M, bool EW>
inline float edge_coef(const Launch& L, const TermPlan& tp, float base,
                       uint32_t row, uint32_t col, uint32_t eid) {
  float c = base;
  if constexpr (M == Mode::kSumBwd || M == Mode::kMaxBwd)
    c = apply_consumer(tp, c, L, col);
  if (tp.gcn) {
    const float g =
        L.cache ? L.cache[eid] : gcn_norm_coef(L.deg[col], L.deg[row]);
    for (uint32_t k = 0; k < tp.gcn; ++k) c *= g;
  }
  if constexpr (EW) {
    for (uint32_t k = 0; k < tp.edge_w; ++k) c *= L.ew[eid];
  }
  return c;
}

/// Self-term coefficient (producer == consumer == row in every mode; the
/// reference evaluates it with eid 0, preserved here). Always computed
/// inline — cache entry 0 belongs to a real edge, not the self loop.
template <bool EW>
inline float self_coef(const Launch& L, uint32_t row) {
  const TermPlan& tp = L.self_plan;
  float c = apply_consumer(tp, tp.c0, L, row);
  if (tp.gcn) {
    const float g = gcn_norm_coef(L.deg[row], L.deg[row]);
    for (uint32_t k = 0; k < tp.gcn; ++k) c *= g;
  }
  if constexpr (EW) {
    for (uint32_t k = 0; k < tp.edge_w; ++k) c *= L.ew[0];
  }
  return c;
}

// ---- register-tiled vector blocks (NV accumulator vectors per scan) ------

template <class Ops, int NV, Mode M, bool EW, bool Gaps, bool Eids, bool Self>
inline void sum_block(const Launch& L, uint32_t row, uint32_t f0,
                      const float* base) {
  using vf = typename Ops::vf;
  constexpr uint32_t W = Ops::kWidth;
  vf acc[NV];
  for (int i = 0; i < NV; ++i) acc[i] = Ops::zero();
  const uint32_t end = L.row_offset[row + 1];
  for (uint32_t j = L.row_offset[row]; j < end; ++j) {
    const uint32_t col = L.col[j];
    if constexpr (Gaps) {
      if (col == kSpace) continue;
    }
    prefetch_edge<Gaps, Eids>(L, L.inputs[L.plans[0].input], j, f0);
    const uint32_t eid = Eids ? L.eids[j] : j;
    for (uint32_t t = 0; t < L.num_terms; ++t) {
      const float c =
          edge_coef<M, EW>(L, L.plans[t], base[t], row, col, eid) * L.scale;
      if (c == 0.0f) continue;  // matches the reference's zero-skip
      const vf vc = Ops::set1(c);
      const float* src = L.inputs[L.plans[t].input] +
                         static_cast<std::size_t>(col) * L.F + f0;
      for (int i = 0; i < NV; ++i)
        acc[i] = Ops::madd(vc, Ops::load(src + i * W), acc[i]);
    }
  }
  if constexpr (Self) {
    const float c = self_coef<EW>(L, row) * L.scale;
    const vf vc = Ops::set1(c);
    const float* src =
        L.self_features + static_cast<std::size_t>(row) * L.F + f0;
    for (int i = 0; i < NV; ++i)
      acc[i] = Ops::madd(vc, Ops::load(src + i * W), acc[i]);
  }
  if (L.epilogue != nullptr) {
    // Fused bias writeback: the same float add the unfused path performs
    // after storing, applied while the row is still in registers.
    for (int i = 0; i < NV; ++i)
      acc[i] = Ops::add(acc[i], Ops::load(L.epilogue + f0 + i * W));
  }
  float* orow = L.out + static_cast<std::size_t>(row) * L.F + f0;
  for (int i = 0; i < NV; ++i) Ops::store(orow + i * W, acc[i]);
}

template <class Ops, int NV, bool EW, bool Gaps, bool Eids, bool Self>
inline void maxf_block(const Launch& L, uint32_t row, uint32_t f0,
                       float base) {
  using vf = typename Ops::vf;
  using vu = typename Ops::vu;
  constexpr uint32_t W = Ops::kWidth;
  vf best[NV];
  vu bidx[NV];
  for (int i = 0; i < NV; ++i) {
    best[i] = Ops::neg_inf();
    bidx[i] = Ops::set1u(kSpace);
  }
  const uint32_t end = L.row_offset[row + 1];
  for (uint32_t j = L.row_offset[row]; j < end; ++j) {
    const uint32_t col = L.col[j];
    if constexpr (Gaps) {
      if (col == kSpace) continue;
    }
    const uint32_t eid = Eids ? L.eids[j] : j;
    const float c =
        edge_coef<Mode::kMaxFwd, EW>(L, L.plans[0], base, row, col, eid);
    const vf vc = Ops::set1(c);
    const vu vcol = Ops::set1u(col);
    const float* src = L.inputs[L.plans[0].input] +
                       static_cast<std::size_t>(col) * L.F + f0;
    for (int i = 0; i < NV; ++i) {
      const vf val = Ops::mul(vc, Ops::load(src + i * W));
      const vu m = Ops::cmp_gt(val, best[i]);
      best[i] = Ops::blend(best[i], val, m);
      bidx[i] = Ops::blendu(bidx[i], vcol, m);
    }
  }
  if constexpr (Self) {
    const float c = self_coef<EW>(L, row);
    const vf vc = Ops::set1(c);
    const vu vrow = Ops::set1u(row);
    const float* src =
        L.self_features + static_cast<std::size_t>(row) * L.F + f0;
    for (int i = 0; i < NV; ++i) {
      const vf val = Ops::mul(vc, Ops::load(src + i * W));
      const vu m = Ops::cmp_gt(val, best[i]);
      best[i] = Ops::blend(best[i], val, m);
      bidx[i] = Ops::blendu(bidx[i], vrow, m);
    }
  }
  float* orow = L.out + static_cast<std::size_t>(row) * L.F + f0;
  uint32_t* arow = L.argmax_out + static_cast<std::size_t>(row) * L.F + f0;
  const vf vscale = Ops::set1(L.scale);
  const vu vspace = Ops::set1u(kSpace);
  for (int i = 0; i < NV; ++i) {
    const vu empty = Ops::cmp_eq_u(bidx[i], vspace);
    // empty max is defined as 0, otherwise scale the winner.
    Ops::store(orow + i * W,
               Ops::blend(Ops::mul(best[i], vscale), Ops::zero(), empty));
    Ops::storeu(arow + i * W, bidx[i]);
  }
}

template <class Ops, int NV, bool EW, bool Gaps, bool Eids, bool Self>
inline void maxb_block(const Launch& L, uint32_t row, uint32_t f0) {
  using vf = typename Ops::vf;
  using vu = typename Ops::vu;
  constexpr uint32_t W = Ops::kWidth;
  vf acc[NV];
  for (int i = 0; i < NV; ++i) acc[i] = Ops::zero();
  const vu vrow = Ops::set1u(row);
  const uint32_t end = L.row_offset[row + 1];
  for (uint32_t j = L.row_offset[row]; j < end; ++j) {
    const uint32_t col = L.col[j];  // consumer vertex
    if constexpr (Gaps) {
      if (col == kSpace) continue;
    }
    const uint32_t eid = Eids ? L.eids[j] : j;
    const float c = edge_coef<Mode::kMaxBwd, EW>(L, L.plans[0],
                                                 L.plans[0].c0, row, col,
                                                 eid) *
                    L.scale;
    const vf vc = Ops::set1(c);
    const uint32_t* amax =
        L.argmax_in + static_cast<std::size_t>(col) * L.F + f0;
    const float* grad = L.inputs[L.plans[0].input] +
                        static_cast<std::size_t>(col) * L.F + f0;
    for (int i = 0; i < NV; ++i) {
      const vu m = Ops::cmp_eq_u(Ops::loadu(amax + i * W), vrow);
      // Masked accumulate: losing lanes add +0.0, which cannot perturb an
      // accumulator that started at +0.0 (adds never produce -0.0 here).
      acc[i] = Ops::add(acc[i],
                        Ops::mask_keep(Ops::mul(vc, Ops::load(grad + i * W)),
                                       m));
    }
  }
  if constexpr (Self) {
    // The consumer `row` itself may have picked its self candidate.
    const float c = self_coef<EW>(L, row) * L.scale;
    const vf vc = Ops::set1(c);
    const uint32_t* amax =
        L.argmax_in + static_cast<std::size_t>(row) * L.F + f0;
    const float* grad =
        L.self_features + static_cast<std::size_t>(row) * L.F + f0;
    for (int i = 0; i < NV; ++i) {
      const vu m = Ops::cmp_eq_u(Ops::loadu(amax + i * W), vrow);
      acc[i] = Ops::add(acc[i],
                        Ops::mask_keep(Ops::mul(vc, Ops::load(grad + i * W)),
                                       m));
    }
  }
  float* orow = L.out + static_cast<std::size_t>(row) * L.F + f0;
  for (int i = 0; i < NV; ++i) Ops::store(orow + i * W, acc[i]);
}

// ---- scalar range path (sub-vector tails and the width-1 engine) ---------

/// Process feature columns [f0, f1) with plain-float stack accumulators in
/// one edge scan. len is bounded by kMaxRange; this is the whole row body
/// for the scalar-specialized engine and the remainder handler for the
/// vector engines.
template <Mode M, bool EW, bool Gaps, bool Eids, bool Self>
void range_row(const Launch& L, uint32_t row, uint32_t f0, uint32_t f1,
               const float* base) {
  const uint32_t len = f1 - f0;
  const uint32_t end = L.row_offset[row + 1];
  if constexpr (M == Mode::kMaxFwd) {
    float best[kMaxRange];
    uint32_t bidx[kMaxRange];
    for (uint32_t f = 0; f < len; ++f) {
      best[f] = -__builtin_inff();
      bidx[f] = kSpace;
    }
    for (uint32_t j = L.row_offset[row]; j < end; ++j) {
      const uint32_t col = L.col[j];
      if constexpr (Gaps) {
        if (col == kSpace) continue;
      }
      const uint32_t eid = Eids ? L.eids[j] : j;
      const float c =
          edge_coef<M, EW>(L, L.plans[0], base[0], row, col, eid);
      const float* src = L.inputs[L.plans[0].input] +
                         static_cast<std::size_t>(col) * L.F + f0;
      for (uint32_t f = 0; f < len; ++f) {
        const float val = c * src[f];
        if (val > best[f]) {
          best[f] = val;
          bidx[f] = col;
        }
      }
    }
    if constexpr (Self) {
      const float c = self_coef<EW>(L, row);
      const float* src =
          L.self_features + static_cast<std::size_t>(row) * L.F + f0;
      for (uint32_t f = 0; f < len; ++f) {
        const float val = c * src[f];
        if (val > best[f]) {
          best[f] = val;
          bidx[f] = row;
        }
      }
    }
    float* orow = L.out + static_cast<std::size_t>(row) * L.F + f0;
    uint32_t* arow = L.argmax_out + static_cast<std::size_t>(row) * L.F + f0;
    for (uint32_t f = 0; f < len; ++f) {
      orow[f] = bidx[f] == kSpace ? 0.0f : best[f] * L.scale;
      arow[f] = bidx[f];
    }
  } else if constexpr (M == Mode::kMaxBwd) {
    float acc[kMaxRange];
    for (uint32_t f = 0; f < len; ++f) acc[f] = 0.0f;
    for (uint32_t j = L.row_offset[row]; j < end; ++j) {
      const uint32_t col = L.col[j];
      if constexpr (Gaps) {
        if (col == kSpace) continue;
      }
      const uint32_t eid = Eids ? L.eids[j] : j;
      const float c = edge_coef<M, EW>(L, L.plans[0], L.plans[0].c0, row,
                                       col, eid) *
                      L.scale;
      const uint32_t* amax =
          L.argmax_in + static_cast<std::size_t>(col) * L.F + f0;
      const float* grad = L.inputs[L.plans[0].input] +
                          static_cast<std::size_t>(col) * L.F + f0;
      for (uint32_t f = 0; f < len; ++f)
        if (amax[f] == row) acc[f] += c * grad[f];
    }
    if constexpr (Self) {
      const float c = self_coef<EW>(L, row) * L.scale;
      const uint32_t* amax =
          L.argmax_in + static_cast<std::size_t>(row) * L.F + f0;
      const float* grad =
          L.self_features + static_cast<std::size_t>(row) * L.F + f0;
      for (uint32_t f = 0; f < len; ++f)
        if (amax[f] == row) acc[f] += c * grad[f];
    }
    float* orow = L.out + static_cast<std::size_t>(row) * L.F + f0;
    for (uint32_t f = 0; f < len; ++f) orow[f] = acc[f];
  } else {
    float acc[kMaxRange];
    for (uint32_t f = 0; f < len; ++f) acc[f] = 0.0f;
    for (uint32_t j = L.row_offset[row]; j < end; ++j) {
      const uint32_t col = L.col[j];
      if constexpr (Gaps) {
        if (col == kSpace) continue;
      }
      const uint32_t eid = Eids ? L.eids[j] : j;
      for (uint32_t t = 0; t < L.num_terms; ++t) {
        const float c =
            edge_coef<M, EW>(L, L.plans[t], base[t], row, col, eid) *
            L.scale;
        if (c == 0.0f) continue;
        const float* src = L.inputs[L.plans[t].input] +
                           static_cast<std::size_t>(col) * L.F + f0;
        for (uint32_t f = 0; f < len; ++f) acc[f] += c * src[f];
      }
    }
    if constexpr (Self) {
      const float c = self_coef<EW>(L, row) * L.scale;
      const float* src =
          L.self_features + static_cast<std::size_t>(row) * L.F + f0;
      for (uint32_t f = 0; f < len; ++f) acc[f] += c * src[f];
    }
    if (L.epilogue != nullptr) {
      for (uint32_t f = 0; f < len; ++f) acc[f] += L.epilogue[f0 + f];
    }
    float* orow = L.out + static_cast<std::size_t>(row) * L.F + f0;
    for (uint32_t f = 0; f < len; ++f) orow[f] = acc[f];
  }
}

// ---- row driver: register blocks + tail, one entry per grid cell ---------

template <class Ops, int NV, Mode M, bool EW, bool Gaps, bool Eids, bool Self>
inline void block_nv(const Launch& L, uint32_t row, uint32_t f0,
                     const float* base) {
  if constexpr (M == Mode::kMaxFwd)
    maxf_block<Ops, NV, EW, Gaps, Eids, Self>(L, row, f0, base[0]);
  else if constexpr (M == Mode::kMaxBwd)
    maxb_block<Ops, NV, EW, Gaps, Eids, Self>(L, row, f0);
  else
    sum_block<Ops, NV, M, EW, Gaps, Eids, Self>(L, row, f0, base);
}

template <class Ops, Mode M, bool EW, bool Gaps, bool Eids, bool Self>
void row_entry(const Launch& L, uint32_t row, uint32_t f0, uint32_t f1) {
  float base[kMaxSpecializedTerms];
  term_bases<M>(L, row, base);
  if constexpr (Ops::kWidth == 1) {
    // Width-1 engine: one stack-buffered scan beats rescanning the edge
    // list per 8-float register block.
    range_row<M, EW, Gaps, Eids, Self>(L, row, f0, f1, base);
    return;
  } else {
    constexpr uint32_t W = Ops::kWidth;
    uint32_t f = f0;
    uint32_t nvec = (f1 - f0) / W;
    while (nvec > 0) {
      const uint32_t nv = std::min(nvec, kMaxAccVecs);
      switch (nv) {
        case 1: block_nv<Ops, 1, M, EW, Gaps, Eids, Self>(L, row, f, base); break;
        case 2: block_nv<Ops, 2, M, EW, Gaps, Eids, Self>(L, row, f, base); break;
        case 3: block_nv<Ops, 3, M, EW, Gaps, Eids, Self>(L, row, f, base); break;
        case 4: block_nv<Ops, 4, M, EW, Gaps, Eids, Self>(L, row, f, base); break;
        case 5: block_nv<Ops, 5, M, EW, Gaps, Eids, Self>(L, row, f, base); break;
        case 6: block_nv<Ops, 6, M, EW, Gaps, Eids, Self>(L, row, f, base); break;
        case 7: block_nv<Ops, 7, M, EW, Gaps, Eids, Self>(L, row, f, base); break;
        default: block_nv<Ops, 8, M, EW, Gaps, Eids, Self>(L, row, f, base); break;
      }
      f += nv * W;
      nvec -= nv;
    }
    if (f < f1) range_row<M, EW, Gaps, Eids, Self>(L, row, f, f1, base);
  }
}

template <class Ops>
using RowFn = void (*)(const Launch&, uint32_t, uint32_t, uint32_t);

template <class Ops, Mode M, std::size_t... I>
constexpr std::array<RowFn<Ops>, 16> make_table(std::index_sequence<I...>) {
  return {{&row_entry<Ops, M, ((I >> 3) & 1) != 0, ((I >> 2) & 1) != 0,
                      ((I >> 1) & 1) != 0, (I & 1) != 0>...}};
}

template <class Ops, Mode M>
RowFn<Ops> pick_row(bool ew, bool gaps, bool eids, bool self) {
  static constexpr std::array<RowFn<Ops>, 16> table =
      make_table<Ops, M>(std::make_index_sequence<16>{});
  return table[(ew ? 8u : 0u) | (gaps ? 4u : 0u) | (eids ? 2u : 0u) |
               (self ? 1u : 0u)];
}

// ---- launch: specialization pick + feature-adaptive work shaping ---------

template <class Ops>
void run_engine(const KernelSpec& spec, const KernelArgs& a) {
  Launch L;
  L.row_offset = a.view.row_offset;
  L.col = a.view.col_indices;
  L.eids = a.view.eids;
  L.deg = a.in_degrees;
  L.ew = a.edge_weights;
  // The cache is eid-indexed; without an eid array positions stand in for
  // labels and the cache cannot be trusted, so fall back to inline gcn.
  L.cache = a.view.eids ? a.gcn_coef : nullptr;
  L.inputs = a.inputs;
  L.self_features = a.self_features;
  L.out = a.out;
  L.argmax_out = a.argmax_out;
  L.argmax_in = a.argmax_in;
  L.plans = spec.plans.data();
  L.num_terms = static_cast<uint32_t>(spec.plans.size());
  L.self_plan = spec.self_plan;
  L.scale = spec.program.out_scale;
  L.F = a.num_feats;
  L.epilogue = a.epilogue_bias;
  L.slots_end =
      a.view.row_offset ? a.view.row_offset[a.view.num_nodes] : 0;

  const bool ew = spec.uses_edge_weight;
  const bool gaps = a.view.has_gaps;
  const bool eids = a.view.eids != nullptr;
  const bool self = spec.program.include_self;
  RowFn<Ops> fn;
  if (spec.program.max_backward)
    fn = pick_row<Ops, Mode::kMaxBwd>(ew, gaps, eids, self);
  else if (spec.program.agg == AggKind::kMax)
    fn = pick_row<Ops, Mode::kMaxFwd>(ew, gaps, eids, self);
  else if (a.producer_is_col)
    fn = pick_row<Ops, Mode::kSumFwd>(ew, gaps, eids, self);
  else
    fn = pick_row<Ops, Mode::kSumBwd>(ew, gaps, eids, self);

  const uint32_t n = a.view.num_nodes;
  const uint32_t F = a.num_feats;

  // The degree-sorted order exists to balance strided lanes (paper
  // Figure 3); on a single lane it only scatters the row-offset/col/out
  // accesses, so fall back to natural (sequential) order there. Rows are
  // independent, so the output is bit-identical either way.
  const unsigned lanes = device::lane_count();
  const uint32_t* order = lanes == 1 ? nullptr : a.view.node_ids;

  // Sharded schedule (graph/shard.hpp): one lane per shard, shards
  // round-robined across lanes (they are weight-balanced, and the auto
  // policy makes ~2 per lane, so striding absorbs residual skew). Rows
  // within a shard run serially in the shard's slice of the degree order;
  // every output row is written by exactly one lane and its reduction
  // follows the same CSR index order as every other schedule, so results
  // are bit-identical to the unsharded paths at any shard count
  // (test_scaling fuzzes this). Feature tiles stay fused per row here —
  // with rows already lane-partitioned, splitting F would only rescan each
  // edge list once per tile.
  if (a.view.num_shards > 1 && lanes > 1 && a.view.shard_order != nullptr &&
      a.view.shard_bounds != nullptr) {
    device::parallel_for_strided(
        a.view.num_shards,
        [&](std::size_t s) {
          const uint32_t hi = a.view.shard_bounds[s + 1];
          for (uint32_t i = a.view.shard_bounds[s]; i < hi; ++i)
            fn(L, a.view.shard_order[i], 0, F);
        },
        /*grain=*/1);
    return;
  }

  // Feature-adaptive work shaping. Tile on wide features as before, but
  // also when the vertex count alone cannot keep the lanes busy (small
  // graphs used to run one item per vertex and leave most lanes idle).
  uint32_t tile_size = 0;  // 0 = untiled (vertex-per-item)
  if (F >= kFeatureTileThreshold) {
    tile_size = kFeatureTile;
  } else if (n < 4u * lanes && F > kMinFeatureTile && n > 0) {
    const uint32_t want = (4u * lanes + n - 1) / n;  // tiles/row to fill lanes
    const uint32_t max_tiles = (F + kMinFeatureTile - 1) / kMinFeatureTile;
    const uint32_t tiles = std::min(want, max_tiles);
    if (tiles > 1) {
      tile_size = (F + tiles - 1) / tiles;
      tile_size = (tile_size + kMinFeatureTile - 1) & ~(kMinFeatureTile - 1);
    }
  }

  if (tile_size == 0) {
    device::parallel_for_strided(n, [&](std::size_t i) {
      const uint32_t row = order ? order[i] : static_cast<uint32_t>(i);
      fn(L, row, 0, F);
    });
  } else {
    const uint32_t tiles = (F + tile_size - 1) / tile_size;
    device::parallel_for_2d_strided(
        n, tiles, [&](std::size_t i, std::size_t tile) {
          const uint32_t row = order ? order[i] : static_cast<uint32_t>(i);
          const uint32_t f0 = static_cast<uint32_t>(tile) * tile_size;
          const uint32_t f1 = std::min(F, f0 + tile_size);
          fn(L, row, f0, f1);
        });
  }
}

}  // namespace

void run_engine_native(const KernelSpec& spec, const KernelArgs& args) {
  run_engine<simd::NativeOps>(spec, args);
}

void run_engine_scalar(const KernelSpec& spec, const KernelArgs& args) {
  run_engine<simd::ScalarOps>(spec, args);
}

}  // namespace stgraph::compiler::detail
