#include "util/failpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "runtime/mutex.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace stgraph::failpoint {
namespace {

struct Point {
  Spec spec{};
  bool enabled = false;
  uint64_t hits_since_enable = 0;  // reset by enable()
  uint64_t total_hits = 0;
  uint64_t fires = 0;
};

struct Registry {
  Mutex mu{"failpoint::Registry::mu"};
  std::unordered_map<std::string, Point> points STG_GUARDED_BY(mu);
  bool env_loaded STG_GUARDED_BY(mu) = false;
  /// One PRNG for every probabilistic trigger: a fixed seed plus a fixed
  /// hit sequence replays the identical fire schedule, which is what makes
  /// chaos runs reproducible. Seeded lazily from $STGRAPH_FAILPOINT_SEED.
  Rng rng STG_GUARDED_BY(mu){0};
  bool rng_seeded STG_GUARDED_BY(mu) = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

Spec parse_spec(const std::string& text) {
  if (text.empty() || text == "always") return Spec::always();
  if (text == "once") return Spec::once();
  // "1inN": one-in-N randomized trigger (fires with probability 1/N).
  if (text.size() > 3 && text.compare(0, 3, "1in") == 0) {
    const std::string arg = text.substr(3);
    char* end = nullptr;
    const uint64_t n = std::strtoull(arg.c_str(), &end, 10);
    STG_CHECK(end && *end == '\0' && n >= 1, "failpoint spec '", text,
              "' has a malformed count");
    return Spec::one_in(n);
  }
  const auto colon = text.find(':');
  if (colon != std::string::npos) {
    const std::string kind = text.substr(0, colon);
    const std::string arg = text.substr(colon + 1);
    if (kind == "p" || kind == "prob") {
      char* end = nullptr;
      const double p = std::strtod(arg.c_str(), &end);
      STG_CHECK(end && end != arg.c_str() && *end == '\0' && p >= 0.0 &&
                    p <= 1.0,
                "failpoint spec '", text, "' needs a probability in [0, 1]");
      return Spec::prob(p);
    }
    char* end = nullptr;
    const uint64_t n = std::strtoull(arg.c_str(), &end, 10);
    STG_CHECK(end && *end == '\0' && n >= 1, "failpoint spec '", text,
              "' has a malformed count");
    if (kind == "on") return Spec::on_nth(n);
    if (kind == "every") return Spec::every_nth(n);
  }
  throw StgError("unknown failpoint trigger '" + text +
                 "' (want always|once|on:N|every:N|p:F|1inN)");
}

void activate_from_spec_locked(Registry& r, const std::string& spec_list)
    STG_REQUIRES(r.mu) {
  std::size_t pos = 0;
  while (pos < spec_list.size()) {
    std::size_t end = spec_list.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec_list.size();
    std::string entry = spec_list.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace.
    const auto b = entry.find_first_not_of(" \t");
    const auto e = entry.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    entry = entry.substr(b, e - b + 1);
    const auto eq = entry.find('=');
    const std::string name = entry.substr(0, eq);
    const std::string spec =
        eq == std::string::npos ? std::string() : entry.substr(eq + 1);
    STG_CHECK(!name.empty(), "empty failpoint name in spec list '", spec_list,
              "'");
    Point& p = r.points[name];
    p.spec = parse_spec(spec);
    p.enabled = true;
    p.hits_since_enable = 0;
  }
}

void load_env_locked(Registry& r) STG_REQUIRES(r.mu) {
  r.env_loaded = true;
  const char* env = std::getenv("STGRAPH_FAILPOINTS");
  if (env && *env) activate_from_spec_locked(r, env);
}

void seed_rng_locked(Registry& r) STG_REQUIRES(r.mu) {
  if (r.rng_seeded) return;
  r.rng_seeded = true;
  uint64_t seed = 0;
  if (const char* env = std::getenv("STGRAPH_FAILPOINT_SEED"); env && *env)
    seed = std::strtoull(env, nullptr, 10);
  r.rng = Rng(seed);
}

}  // namespace

void enable(const std::string& name, Spec spec) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  Point& p = r.points[name];
  p.spec = spec;
  p.enabled = true;
  p.hits_since_enable = 0;
}

void disable(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.points.find(name);
  if (it != r.points.end()) it->second.enabled = false;
}

void disable_all() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  for (auto& [name, p] : r.points) p.enabled = false;
}

void activate_from_spec(const std::string& spec_list) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  activate_from_spec_locked(r, spec_list);
}

void set_seed(uint64_t seed) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.rng_seeded = true;
  r.rng = Rng(seed);
}

bool should_fire(const char* name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  if (!r.env_loaded) load_env_locked(r);
  Point& p = r.points[name];
  ++p.total_hits;
  if (!p.enabled) return false;
  ++p.hits_since_enable;
  bool fire = false;
  switch (p.spec.mode) {
    case Spec::Mode::kAlways:
      fire = true;
      break;
    case Spec::Mode::kOnNth:
      fire = p.hits_since_enable == p.spec.n;
      break;
    case Spec::Mode::kEveryNth:
      fire = p.hits_since_enable % p.spec.n == 0;
      break;
    case Spec::Mode::kProb:
      seed_rng_locked(r);
      fire = r.rng.next_double() < p.spec.p;
      break;
  }
  if (fire) ++p.fires;
  return fire;
}

uint64_t hit_count(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.total_hits;
}

uint64_t fire_count(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.fires;
}

std::vector<std::string> registered() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.points.size());
  for (const auto& [name, p] : r.points) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace stgraph::failpoint
