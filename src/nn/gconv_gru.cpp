#include "nn/gconv_gru.hpp"

#include "compiler/fusion.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph::nn {

ChebConvLite::ChebConvLite(int64_t in_features, int64_t out_features, int k,
                           Rng& rng, bool bias)
    : k_(k), lin0_(in_features, out_features, rng, bias) {
  STG_CHECK(k == 1 || k == 2, "ChebConvLite supports K in {1, 2}, got ", k);
  register_module("lin0", &lin0_);
  if (k_ == 2) {
    hop1_ = std::make_unique<SeastarGCNConv>(in_features, out_features, rng,
                                             /*bias=*/false);
    register_module("hop1", hop1_.get());
  }
}

Tensor ChebConvLite::forward(core::TemporalExecutor& exec, const Tensor& x,
                             const float* edge_weights) const {
  Tensor y = lin0_.forward(x);
  if (k_ == 2) y = ops::add(y, hop1_->forward(exec, x, edge_weights));
  return y;
}

GConvGRU::GConvGRU(int64_t in_features, int64_t out_features, int k, Rng& rng)
    : in_(in_features),
      out_(out_features),
      conv_xz_(in_features, out_features, k, rng),
      conv_hz_(out_features, out_features, k, rng, /*bias=*/false),
      conv_xr_(in_features, out_features, k, rng),
      conv_hr_(out_features, out_features, k, rng, /*bias=*/false),
      conv_xh_(in_features, out_features, k, rng),
      conv_hh_(out_features, out_features, k, rng, /*bias=*/false) {
  register_module("conv_xz", &conv_xz_);
  register_module("conv_hz", &conv_hz_);
  register_module("conv_xr", &conv_xr_);
  register_module("conv_hr", &conv_hr_);
  register_module("conv_xh", &conv_xh_);
  register_module("conv_hh", &conv_hh_);
}

Tensor GConvGRU::initial_state(int64_t num_nodes) const {
  return Tensor::zeros({num_nodes, out_});
}

Tensor GConvGRU::forward(core::TemporalExecutor& exec, const Tensor& x,
                         const Tensor& h_in, const float* edge_weights) const {
  Tensor h = h_in.defined() ? h_in : initial_state(x.rows());
  using namespace ops;
  namespace fu = compiler::fusion;
  // Gate elementwise regions run through the fusing tape compiler: each
  // helper replays the same optimized program fused (one blocked pass) or
  // unfused (node-by-node through ops::) depending on STGRAPH_FUSION.
  Tensor z = fu::sigmoid_add(conv_xz_.forward(exec, x, edge_weights),
                             conv_hz_.forward(exec, h, edge_weights));
  Tensor r = fu::sigmoid_add(conv_xr_.forward(exec, x, edge_weights),
                             conv_hr_.forward(exec, h, edge_weights));
  Tensor h_tilde =
      fu::tanh_add(conv_xh_.forward(exec, x, edge_weights),
                   conv_hh_.forward(exec, mul(r, h), edge_weights));
  return fu::gate_combine(z, h, h_tilde);
}

GConvGRURegressor::GConvGRURegressor(int64_t in_features, int64_t hidden,
                                     int k, Rng& rng)
    : gru_(in_features, hidden, k, rng), head_(hidden, 1, rng) {
  register_module("gru", &gru_);
  register_module("head", &head_);
}

std::pair<Tensor, Tensor> GConvGRURegressor::step(core::TemporalExecutor& exec,
                                                  const Tensor& x,
                                                  const Tensor& h,
                                                  const float* edge_weights) {
  Tensor h_next = gru_.forward(exec, x, h, edge_weights);
  return {head_.forward(ops::relu(h_next)), h_next};
}

}  // namespace stgraph::nn
