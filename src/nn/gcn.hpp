// SeastarGCNConv — the STGraph GCN layer built on the vertex-centric
// compiler and the temporally-aware executor.
//
// The layer's forward is ONE fused unit (as Seastar's generated kernels
// are): X·W (GEMM) → fused gather-aggregate kernel over the in-neighbor
// view → bias. Its backward is registered as a single autograd node that
//   1. asks the executor for the backward snapshot of its timestamp
//      (Graph Stack pop + Get-Backward-Graph),
//   2. runs the compiler-derived backward kernel over the out-neighbor
//      view (gapped PMA views are consumed in place),
//   3. retrieves its saved tensors from the State Stack by ticket.
//
// Saved-state pruning: the compiler's backward-needs analysis shows the
// aggregation itself needs nothing from the forward pass; only the weight
// gradient needs X. With pruning enabled the layer saves exactly {X}; with
// pruning disabled (Figure 6 ablation) it saves the conservative set
// {X, X·W, out} a needs-unaware executor would keep.
#pragma once

#include "compiler/autodiff.hpp"
#include "compiler/kernel.hpp"
#include "core/executor.hpp"
#include "nn/module.hpp"

namespace stgraph {
class Rng;
}

namespace stgraph::nn {

class SeastarGCNConv : public Module {
 public:
  SeastarGCNConv(int64_t in_features, int64_t out_features, Rng& rng,
                 bool bias = true);

  /// Aggregate x [N, in] over the executor's current forward snapshot.
  /// `edge_weights` (indexed by the snapshot's shared edge labels) are
  /// optional; the kernel was compiled with GCN degree normalization.
  Tensor forward(core::TemporalExecutor& exec, const Tensor& x,
                 const float* edge_weights = nullptr) const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }

  const compiler::KernelSpec& forward_kernel() const { return fwd_weighted_; }
  const compiler::KernelSpec& backward_kernel() const { return bwd_weighted_; }

 private:
  int64_t in_, out_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out], optional
  // Kernels are compiled once per program variant at layer construction;
  // the edge-weighted variant is selected when weights are bound.
  compiler::KernelSpec fwd_weighted_, bwd_weighted_;
  compiler::KernelSpec fwd_plain_, bwd_plain_;
  compiler::BackwardNeeds needs_;
};

}  // namespace stgraph::nn
