// Tests for the graph substrate: CSR construction, reverse CSR, shared
// edge labels, degree-sorted node_ids, the STGraphBase abstraction,
// DTDG windowing, and NaiveGraph materialization.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/csr.hpp"
#include "graph/dtdg.hpp"
#include "graph/naive_graph.hpp"
#include "graph/static_graph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

std::vector<CooEdge> label(const EdgeList& edges) {
  std::vector<CooEdge> coo;
  uint32_t eid = 0;
  for (const auto& [s, d] : edges) coo.push_back({s, d, eid++});
  return coo;
}

// Decode a (possibly gapped) CSR into a set of (row, col, eid) triples.
std::set<std::tuple<uint32_t, uint32_t, uint32_t>> decode(const Csr& csr) {
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> out;
  for (uint32_t r = 0; r < csr.num_nodes; ++r) {
    for (uint32_t j = csr.row_offset[r]; j < csr.row_offset[r + 1]; ++j) {
      if (csr.col_indices[j] == kSpace) continue;
      out.insert({r, csr.col_indices[j], csr.eids[j]});
    }
  }
  return out;
}

TEST(Csr, BuildMatchesEdgeList) {
  const EdgeList edges{{0, 1}, {0, 2}, {1, 2}, {2, 0}, {2, 1}, {2, 3}};
  Csr csr = build_csr(4, label(edges));
  EXPECT_EQ(csr.num_edges, 6u);
  EXPECT_EQ(csr.row_offset[0], 0u);
  EXPECT_EQ(csr.row_offset[4], 6u);
  auto triples = decode(csr);
  for (uint32_t e = 0; e < edges.size(); ++e) {
    EXPECT_TRUE(triples.count({edges[e].first, edges[e].second, e}));
  }
}

TEST(Csr, ReverseSharesEdgeLabels) {
  Rng rng(31);
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (int i = 0; i < 200; ++i) {
    uint32_t s = rng.next_below(40), d = rng.next_below(40);
    if (s == d || !seen.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  auto coo = label(edges);
  Csr fwd = build_csr(40, coo);
  Csr rev = build_reverse_csr(40, coo);
  // Every (s, d, eid) in the forward CSR appears as (d, s, eid) reversed.
  auto ft = decode(fwd);
  auto rt = decode(rev);
  EXPECT_EQ(ft.size(), rt.size());
  for (const auto& [s, d, e] : ft) EXPECT_TRUE(rt.count({d, s, e}));
}

TEST(Csr, DegreesFromRowOffsets) {
  const EdgeList edges{{0, 1}, {0, 2}, {0, 3}, {2, 3}};
  Csr csr = build_csr(4, label(edges));
  const auto deg = csr_degrees(csr);
  EXPECT_EQ(deg, (std::vector<uint32_t>{3, 0, 1, 0}));
}

TEST(Csr, DegreeSortDescendingStable) {
  // Figure 3's example: V2 has out-degree 3, V0 and V1 have 2, V3 has 0.
  const EdgeList edges{{0, 1}, {0, 2}, {1, 0}, {1, 3},
                       {2, 0}, {2, 1}, {2, 3}};
  Csr csr = build_csr(4, label(edges));
  degree_sort(csr);
  const std::vector<uint32_t> want{2, 0, 1, 3};
  EXPECT_EQ(csr.node_ids.to_host(), want);
}

TEST(Csr, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(build_csr(2, label({{0, 5}})), StgError);
  EXPECT_THROW(build_reverse_csr(2, label({{5, 0}})), StgError);
}

TEST(Snapshot, BothDirectionsConsistent) {
  Rng rng(37);
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (int i = 0; i < 300; ++i) {
    uint32_t s = rng.next_below(50), d = rng.next_below(50);
    if (s == d || !seen.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  GraphSnapshot snap = build_snapshot(50, label(edges));
  EXPECT_EQ(snap.num_edges, edges.size());
  // in/out degree arrays match CSR row widths.
  for (uint32_t v = 0; v < 50; ++v) {
    EXPECT_EQ(snap.out_degrees[v],
              snap.out_csr.row_offset[v + 1] - snap.out_csr.row_offset[v]);
    EXPECT_EQ(snap.in_degrees[v],
              snap.in_csr.row_offset[v + 1] - snap.in_csr.row_offset[v]);
  }
  // Degree sums agree.
  uint64_t din = 0, dout = 0;
  for (uint32_t v = 0; v < 50; ++v) {
    din += snap.in_degrees[v];
    dout += snap.out_degrees[v];
  }
  EXPECT_EQ(din, edges.size());
  EXPECT_EQ(dout, edges.size());
}

TEST(StaticTemporalGraph, SameViewEveryTimestamp) {
  StaticTemporalGraph g(4, {{0, 1}, {1, 2}, {2, 3}}, 10);
  EXPECT_FALSE(g.is_dynamic());
  EXPECT_EQ(g.num_timestamps(), 10u);
  SnapshotView v0 = g.get_graph(0);
  SnapshotView v9 = g.get_graph(9);
  EXPECT_EQ(v0.in_view.row_offset, v9.in_view.row_offset);
  EXPECT_EQ(v0.num_edges, 3u);
  EXPECT_THROW(g.get_graph(10), StgError);
}

TEST(Dtdg, SnapshotEdgesReplayDeltas) {
  DtdgEvents ev;
  ev.num_nodes = 4;
  ev.base_edges = {{0, 1}, {1, 2}};
  ev.deltas.push_back({{{2, 3}}, {{0, 1}}});   // t=1: +one, -one
  ev.deltas.push_back({{{0, 1}, {3, 0}}, {}}); // t=2: +two
  EXPECT_EQ(ev.num_timestamps(), 3u);
  EXPECT_EQ(ev.snapshot_edges(0), (EdgeList{{0, 1}, {1, 2}}));
  EXPECT_EQ(ev.snapshot_edges(1), (EdgeList{{1, 2}, {2, 3}}));
  EXPECT_EQ(ev.snapshot_edges(2), (EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
}

TEST(Dtdg, DeletingAbsentEdgeThrows) {
  DtdgEvents ev;
  ev.num_nodes = 3;
  ev.base_edges = {{0, 1}};
  ev.deltas.push_back({{}, {{1, 2}}});
  EXPECT_THROW(ev.snapshot_edges(1), StgError);
}

class WindowingProperty : public ::testing::TestWithParam<double> {};

TEST_P(WindowingProperty, PercentChangeIsRespected) {
  const double pct = GetParam();
  Rng rng(53);
  EdgeList stream;
  for (int i = 0; i < 4000; ++i) {
    stream.emplace_back(static_cast<uint32_t>(rng.next_below(200)),
                        static_cast<uint32_t>(rng.next_below(200)));
  }
  DtdgEvents ev = window_edge_stream(200, stream, pct);
  ASSERT_GE(ev.deltas.size(), 1u);
  // Mean % change tracks the knob within the granularity of one slide.
  const double measured = ev.mean_percent_change();
  EXPECT_GT(measured, 0.0);
  EXPECT_LT(std::abs(measured - pct) / pct, 0.5) << "measured " << measured;
  // Window size stays constant: additions == deletions per delta.
  for (const EdgeDelta& d : ev.deltas)
    EXPECT_EQ(d.additions.size(), d.deletions.size());
}

INSTANTIATE_TEST_SUITE_P(Percentages, WindowingProperty,
                         ::testing::Values(1.0, 2.5, 5.0, 7.5, 10.0));

TEST(Windowing, DeltasApplyCleanlyInOrder) {
  Rng rng(59);
  EdgeList stream;
  for (int i = 0; i < 2000; ++i)
    stream.emplace_back(static_cast<uint32_t>(rng.next_below(100)),
                        static_cast<uint32_t>(rng.next_below(100)));
  DtdgEvents ev = window_edge_stream(100, stream, 5.0);
  // Every snapshot materializes without multiplicity errors.
  for (uint32_t t = 0; t < ev.num_timestamps(); ++t)
    EXPECT_NO_THROW(ev.snapshot_edges(t));
}

TEST(NaiveGraph, MatchesGroundTruthSnapshots) {
  Rng rng(61);
  EdgeList stream;
  for (int i = 0; i < 1500; ++i)
    stream.emplace_back(static_cast<uint32_t>(rng.next_below(60)),
                        static_cast<uint32_t>(rng.next_below(60)));
  DtdgEvents ev = window_edge_stream(60, stream, 8.0);
  NaiveGraph g(ev);
  EXPECT_TRUE(g.is_dynamic());
  EXPECT_EQ(g.num_timestamps(), ev.num_timestamps());
  for (uint32_t t = 0; t < g.num_timestamps(); ++t) {
    const EdgeList want = ev.snapshot_edges(t);
    EXPECT_EQ(g.num_edges_at(t), want.size());
    SnapshotView view = g.get_graph(t);
    // Decode the out view and compare edge sets.
    std::set<std::pair<uint32_t, uint32_t>> got;
    for (uint32_t r = 0; r < view.num_nodes; ++r)
      for (uint32_t j = view.out_view.row_offset[r];
           j < view.out_view.row_offset[r + 1]; ++j)
        got.insert({r, view.out_view.col_indices[j]});
    std::set<std::pair<uint32_t, uint32_t>> expect(want.begin(), want.end());
    EXPECT_EQ(got, expect) << "t=" << t;
  }
}

TEST(StaticTemporalGraph, DoesNotSupportStreamingAppend) {
  StaticTemporalGraph g(3, {{0, 1}, {1, 2}}, 5);
  EXPECT_FALSE(g.supports_append());
  EdgeDelta d;
  d.additions = {{2, 0}};
  EXPECT_THROW(g.append_delta(d), StgError);
  EXPECT_EQ(g.num_timestamps(), 5u);
}

TEST(NaiveGraph, DeviceBytesGrowWithTimestamps) {
  Rng rng(67);
  EdgeList stream;
  for (int i = 0; i < 2000; ++i)
    stream.emplace_back(static_cast<uint32_t>(rng.next_below(80)),
                        static_cast<uint32_t>(rng.next_below(80)));
  DtdgEvents ev_fine = window_edge_stream(80, stream, 2.0);
  DtdgEvents ev_coarse = window_edge_stream(80, stream, 10.0);
  NaiveGraph fine(ev_fine), coarse(ev_coarse);
  EXPECT_GT(fine.num_timestamps(), coarse.num_timestamps());
  // Smaller %-change → more snapshots → more resident bytes (Figure 8's
  // NaiveGraph blow-up).
  EXPECT_GT(fine.device_bytes(), coarse.device_bytes());
}

}  // namespace
}  // namespace stgraph
