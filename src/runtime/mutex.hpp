// Annotated mutex wrappers: the lock types the concurrency layer uses so
// Clang Thread Safety Analysis (-Wthread-safety, see
// util/thread_annotations.hpp) can prove lock discipline. libstdc++'s
// std::mutex carries no capability annotations, so locks taken through it
// are invisible to the analysis; Mutex/MutexLock are zero-overhead
// wrappers that make every acquire/release visible.
//
//   class Buffered {
//     Mutex mu_;
//     std::deque<Item> items_ STG_GUARDED_BY(mu_);
//     void push(Item it) {
//       MutexLock lock(mu_);
//       items_.push_back(std::move(it));   // provably under mu_
//     }
//   };
//
// Condition waits use ConditionVariable, whose wait() re-establishes the
// capability assertion after the native condition variable gives the lock
// back. The serving runtime's deadline discipline needs bounded blocking,
// so Mutex wraps std::timed_mutex (try_lock_for) and ConditionVariable
// wraps std::condition_variable_any (wait_for) — a client that cannot get
// the execution lock before its deadline is shed instead of parked.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace stgraph {

/// std::timed_mutex with capability annotations (timed_mutex rather than
/// mutex so deadline-bounded paths can bail out instead of blocking
/// forever; the uncontended fast path is the same futex acquire).
class STG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STG_ACQUIRE() { mu_.lock(); }
  void unlock() STG_RELEASE() { mu_.unlock(); }
  bool try_lock() STG_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  /// Bounded acquire: true iff the lock was taken before `timeout` passed.
  bool try_lock_for(std::chrono::nanoseconds timeout) STG_TRY_ACQUIRE(true) {
    return mu_.try_lock_for(timeout);
  }

  /// The wrapped std::timed_mutex, for interop that the analysis cannot
  /// follow (ConditionVariable waits go through here).
  std::timed_mutex& native() { return mu_; }

 private:
  std::timed_mutex mu_;
};

/// Scoped lock (std::unique_lock semantics: movable-from-nothing, always
/// owns for its full scope here — no deferred/adopted states, which keeps
/// the capability tracking trivially sound).
class STG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STG_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() STG_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying unique_lock, for condition-variable interop.
  std::unique_lock<std::timed_mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::timed_mutex> lock_;
};

/// Deadline-bounded scoped lock: tries to acquire for at most `timeout`
/// and records whether it succeeded. Callers MUST check owns() before
/// touching guarded state — the STG_ACQUIRE annotation tells the analysis
/// the capability is held (the conditional-acquire pattern it cannot
/// model), so the owns() check is the human half of the contract. A
/// non-owning instance releases nothing.
class STG_SCOPED_CAPABILITY MutexTimedLock {
 public:
  MutexTimedLock(Mutex& mu, std::chrono::nanoseconds timeout) STG_ACQUIRE(mu)
      : lock_(mu.native(), std::defer_lock) {
    owns_ = timeout.count() > 0 && lock_.try_lock_for(timeout);
  }
  ~MutexTimedLock() STG_RELEASE() = default;
  MutexTimedLock(const MutexTimedLock&) = delete;
  MutexTimedLock& operator=(const MutexTimedLock&) = delete;

  bool owns() const { return owns_; }

 private:
  std::unique_lock<std::timed_mutex> lock_;
  bool owns_ = false;
};

/// Condition variable that waits against a MutexLock. The native wait
/// unlocks and relocks outside the analysis's view; from the caller's
/// perspective the capability is held continuously across wait(), which is
/// exactly how the analysis models it. Deliberately predicate-free: a
/// predicate lambda would be analyzed as a separate function that does not
/// hold the capability, so callers spin `while (!cond) cv.wait(lock);`
/// with the condition read in their own (capability-holding) scope.
/// condition_variable_any pairs with the timed_mutex underneath Mutex.
class ConditionVariable {
 public:
  void wait(MutexLock& lock) { cv_.wait(lock.native()); }
  /// Bounded wait; returns false on timeout (spurious wakes return true —
  /// callers re-check their predicate either way).
  bool wait_for(MutexLock& lock, std::chrono::nanoseconds timeout) {
    return cv_.wait_for(lock.native(), timeout) == std::cv_status::no_timeout;
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace stgraph
