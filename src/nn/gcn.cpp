#include "nn/gcn.hpp"

#include <cmath>

#include "autograd/engine.hpp"
#include "compiler/fusion.hpp"
#include "compiler/trace.hpp"
#include "core/backend.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph::nn {

SeastarGCNConv::SeastarGCNConv(int64_t in_features, int64_t out_features,
                               Rng& rng, bool bias)
    : in_(in_features), out_(out_features) {
  STG_CHECK(in_ > 0 && out_ > 0, "GCN dims must be positive");
  const float bound = std::sqrt(6.0f / static_cast<float>(in_ + out_));
  weight_ = register_parameter(
      "weight", Tensor::uniform({in_, out_}, rng, -bound, bound));
  if (bias) bias_ = register_parameter("bias", Tensor::zeros({out_}));

  // The user-level vertex-centric programs: symmetric-normalized sum over
  // in-neighbors plus the self loop, with and without per-edge weights.
  compiler::Program weighted =
      compiler::trace([](compiler::VertexContext& v) -> compiler::AggExpr {
        auto msg = v.gcn_norm() * v.edge_weight() * v.src_feature(0);
        return v.agg_sum(msg).with_self_loop(v.gcn_norm());
      });
  compiler::Program plain =
      compiler::trace([](compiler::VertexContext& v) -> compiler::AggExpr {
        auto msg = v.gcn_norm() * v.src_feature(0);
        return v.agg_sum(msg).with_self_loop(v.gcn_norm());
      });
  fwd_weighted_ = compiler::compile(weighted);
  bwd_weighted_ = compiler::compile(
      compiler::differentiate(fwd_weighted_.program, /*input=*/0));
  fwd_plain_ = compiler::compile(plain);
  bwd_plain_ = compiler::compile(
      compiler::differentiate(fwd_plain_.program, /*input=*/0));
  needs_ = compiler::backward_needs(fwd_weighted_.program);
}

Tensor SeastarGCNConv::forward(core::TemporalExecutor& exec, const Tensor& x,
                               const float* edge_weights) const {
  const SnapshotView& view = exec.forward_view();
  STG_CHECK(x.dim() == 2 && x.cols() == in_, "SeastarGCNConv(", in_, "→",
            out_, ") got input ", shape_str(x.shape()));
  STG_CHECK(static_cast<uint32_t>(x.rows()) == view.num_nodes,
            "feature rows ", x.rows(), " != snapshot nodes ", view.num_nodes);
  core::Backend& backend = core::native_backend();
  const compiler::KernelSpec& fwd_kernel =
      edge_weights ? fwd_weighted_ : fwd_plain_;

  Tensor xw, out;
  {
    // Raw forward computation — autograd history is a single fused node
    // registered below, not a chain of op nodes.
    NoGradGuard ng;
    xw = ops::matmul(x, weight_);
    out = Tensor::empty({x.rows(), out_});
    compiler::KernelArgs args;
    args.view = view.in_view;
    args.in_degrees = view.in_degrees;
    args.gcn_coef = view.gcn_coef;
    const float* inputs[1] = {xw.data()};
    args.inputs = inputs;
    args.self_features = xw.data();
    args.edge_weights = edge_weights;
    args.out = out.data();
    args.num_feats = static_cast<uint32_t>(out_);
    args.producer_is_col = true;
    // Epilogue fusion: graft the bias add onto the aggregation's accumulator
    // writeback instead of a second read-modify-write pass over `out`. The
    // add sees the same two floats either way, so this is bit-identical to
    // the unfused kernel-then-add_bias sequence.
    const bool fuse_bias =
        bias_.defined() && compiler::fusion::fusion_enabled();
    if (fuse_bias) args.epilogue_bias = bias_.data();
    backend.launch_aggregation(fwd_kernel, args);
    if (bias_.defined() && !fuse_bias) out = ops::add_bias(out, bias_);
  }

  if (!NoGradGuard::grad_enabled()) return out;

  // Saved-state sets: pruned per backward-needs analysis vs conservative.
  // X always leads the saved set (the weight gradient needs it); the
  // backward node reads saved.front().
  std::vector<Tensor> pruned = {x};
  if (needs_.input_features) pruned.push_back(xw);
  // The conservative set a needs-unaware executor would keep: every
  // forward intermediate, materialized (detach() copies storage).
  std::vector<Tensor> unpruned = {x, xw, out.detach()};
  const core::StateStack::Ticket ticket =
      exec.save_for_backward(std::move(pruned), std::move(unpruned));

  const uint32_t t = exec.current_forward_timestamp();
  core::TemporalExecutor* exec_ptr = &exec;
  Tensor weight = weight_;
  Tensor bias = bias_;
  const compiler::KernelSpec* bwd = edge_weights ? &bwd_weighted_ : &bwd_plain_;
  const bool has_bias = bias_.defined();
  const int64_t out_f = out_;

  auto node = std::make_shared<autograd::LambdaNode>(
      "seastar_gcn",
      [exec_ptr, t, ticket, weight, bias, bwd, edge_weights, has_bias,
       out_f](const Tensor& grad_out) -> std::vector<Tensor> {
        NoGradGuard ng;
        // 1. Snapshot for this timestamp via the Graph Stack.
        const SnapshotView& bview = exec_ptr->backward_view(t);
        // 2. Backward aggregation over out-neighbors (gap-aware for GPMA).
        Tensor g_xw = Tensor::empty({grad_out.rows(), out_f});
        compiler::KernelArgs args;
        args.view = bview.out_view;
        args.in_degrees = bview.in_degrees;
        args.gcn_coef = bview.gcn_coef;
        const float* inputs[1] = {grad_out.data()};
        args.inputs = inputs;
        args.self_features = grad_out.data();
        args.edge_weights = edge_weights;
        args.out = g_xw.data();
        args.num_feats = static_cast<uint32_t>(out_f);
        args.producer_is_col = false;
        core::native_backend().launch_aggregation(*bwd, args);
        // 3. Saved forward state from the State Stack (LIFO-checked).
        std::vector<Tensor> saved = exec_ptr->retrieve_saved(ticket);
        const Tensor& x_saved = saved.front();  // X always leads the set
        // Weight/bias/input gradients of the fused GEMM.
        Tensor grad_x = ops::matmul(g_xw, weight, false, true);
        Tensor grad_w = ops::matmul(x_saved, g_xw, true, false);
        Tensor grad_b;
        if (has_bias) {
          // Column sums of grad_out.
          grad_b = Tensor::zeros({out_f});
          const float* pg = grad_out.data();
          float* pb = grad_b.data();
          const int64_t rows = grad_out.rows();
          for (int64_t r = 0; r < rows; ++r)
            for (int64_t c = 0; c < out_f; ++c) pb[c] += pg[r * out_f + c];
        }
        return {grad_x, grad_w, grad_b};
      });
  node->add_input(x);
  node->add_input(weight_);
  node->add_input(bias_);  // undefined tensor → non-differentiable edge
  node->set_output(out);
  return out;
}

}  // namespace stgraph::nn
