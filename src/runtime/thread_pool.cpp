#include "runtime/thread_pool.hpp"

#include <cstdlib>

#include "runtime/analyze.hpp"

namespace stgraph {

thread_local bool ThreadPool::in_pool_job_ = false;

namespace {
unsigned default_workers() {
  if (const char* e = std::getenv("STGRAPH_NUM_THREADS")) {
    int n = std::atoi(e);
    if (n >= 1) return static_cast<unsigned>(n - 1);  // n lanes total
  }
  unsigned hc = std::thread::hardware_concurrency();
  if (hc <= 1) return 0;
  return hc - 1;  // caller thread is a lane too
}
}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(default_workers());
  return pool;
}

ThreadPool::ThreadPool(unsigned workers) {
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  if (analyze::armed()) analyze::on_blocking_call("thread-join");
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_on_lanes(const std::function<void(unsigned)>& fn) {
  run_on_lanes_raw(
      [](void* ctx, unsigned lane) {
        (*static_cast<const std::function<void(unsigned)>*>(ctx))(lane);
      },
      const_cast<void*>(static_cast<const void*>(&fn)));
}

void ThreadPool::run_on_lanes_raw(RawJob fn, void* ctx) {
  if (workers_.empty() || in_pool_job_) {
    // Inline / reentrant execution: the caller covers every lane serially.
    // Reentrant launches see a single lane so grid math stays correct.
    fn(ctx, 0);
    return;
  }
  {
    MutexLock lock(mu_);
    job_fn_ = fn;
    job_ctx_ = ctx;
    pending_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();

  in_pool_job_ = true;
  fn(ctx, 0);  // lane 0 = calling thread
  in_pool_job_ = false;

  MutexLock lock(mu_);
  while (pending_ != 0) cv_done_.wait(lock);
  job_fn_ = nullptr;
  job_ctx_ = nullptr;
}

void ThreadPool::worker_loop(unsigned lane) {
  uint64_t seen = 0;
  for (;;) {
    RawJob job = nullptr;
    void* ctx = nullptr;
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen) cv_start_.wait(lock);
      if (stop_) return;
      seen = generation_;
      job = job_fn_;
      ctx = job_ctx_;
    }
    in_pool_job_ = true;
    job(ctx, lane);
    in_pool_job_ = false;
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace stgraph
