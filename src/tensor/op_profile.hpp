// Per-op-class tape profiling: every tensor op records how many launches of
// its class ran, how many output bytes it materialized, and (for the classes
// where the clock read is cheap relative to the work) how long it took.
// Counters are process-wide relaxed atomics — recording is a handful of
// fetch_adds on the hot path — and the trainer snapshots them around each
// epoch to report tape-vs-fused op counts and intermediate traffic, the
// before/after evidence for the fusing compiler (bench_table3 / bench_fig9
// columns, BENCH_fusion.json).
#pragma once

#include <cstdint>

namespace stgraph::ops {

enum class OpClass : uint8_t {
  kElementwise = 0,  // add/sub/mul/div/scalar/one_minus/add_bias
  kActivation,       // sigmoid/tanh/relu/leaky_relu/exp/softmax
  kMatmul,           // gemm launches (forward and backward)
  kShape,            // cat/slice/gather/reshape copies
  kReduction,        // sum/row_sum/losses
  kFused,            // fused elementwise programs (one launch each)
  kCount,
};

inline constexpr int kOpClassCount = static_cast<int>(OpClass::kCount);

const char* op_class_name(OpClass c);

/// Point-in-time copy of the counters (or a delta of two copies).
struct OpProfile {
  uint64_t count[kOpClassCount] = {};
  uint64_t bytes[kOpClassCount] = {};  // output bytes materialized
  uint64_t nanos[kOpClassCount] = {};  // 0 for classes recorded untimed

  /// Unfused tape launches: everything the fusing compiler is trying to
  /// collapse (elementwise + activation), not matmul/shape/reduction work
  /// that fusion leaves in place.
  uint64_t tape_ops() const;
  uint64_t tape_bytes() const;
  uint64_t fused_ops() const { return count[static_cast<int>(OpClass::kFused)]; }
  uint64_t fused_bytes() const { return bytes[static_cast<int>(OpClass::kFused)]; }

  OpProfile operator-(const OpProfile& rhs) const;
};

/// Record one launch of class `c` that materialized `out_bytes` of output.
void profile_record(OpClass c, uint64_t out_bytes, uint64_t elapsed_nanos = 0);

OpProfile profile_snapshot();
void profile_reset();

/// RAII timer for ops worth timing: records on destruction.
class ProfileScope {
 public:
  ProfileScope(OpClass c, uint64_t out_bytes);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  OpClass c_;
  uint64_t bytes_;
  uint64_t t0_;
};

}  // namespace stgraph::ops
