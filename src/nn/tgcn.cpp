#include "nn/tgcn.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace stgraph::nn {

TGCN::TGCN(int64_t in_features, int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      conv_z_(in_features, out_features, rng),
      conv_r_(in_features, out_features, rng),
      conv_h_(in_features, out_features, rng),
      linear_z_(2 * out_features, out_features, rng),
      linear_r_(2 * out_features, out_features, rng),
      linear_h_(2 * out_features, out_features, rng) {
  register_module("conv_z", &conv_z_);
  register_module("conv_r", &conv_r_);
  register_module("conv_h", &conv_h_);
  register_module("linear_z", &linear_z_);
  register_module("linear_r", &linear_r_);
  register_module("linear_h", &linear_h_);
}

Tensor TGCN::initial_state(int64_t num_nodes) const {
  return Tensor::zeros({num_nodes, out_});
}

Tensor TGCN::forward(core::TemporalExecutor& exec, const Tensor& x,
                     const Tensor& h_in, const float* edge_weights) const {
  Tensor h = h_in.defined() ? h_in : initial_state(x.rows());
  STG_CHECK(h.rows() == x.rows() && h.cols() == out_,
            "hidden state shape ", shape_str(h.shape()), " incompatible with ",
            x.rows(), " nodes x ", out_, " features");

  using namespace ops;
  Tensor z = sigmoid(
      linear_z_.forward(cat_cols(conv_z_.forward(exec, x, edge_weights), h)));
  Tensor r = sigmoid(
      linear_r_.forward(cat_cols(conv_r_.forward(exec, x, edge_weights), h)));
  Tensor h_tilde = tanh_op(linear_h_.forward(
      cat_cols(conv_h_.forward(exec, x, edge_weights), mul(r, h))));
  return add(mul(z, h), mul(one_minus(z), h_tilde));
}

}  // namespace stgraph::nn
