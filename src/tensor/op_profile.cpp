#include "tensor/op_profile.hpp"

#include <atomic>
#include <chrono>

namespace stgraph::ops {
namespace {

struct Counters {
  std::atomic<uint64_t> count[kOpClassCount] = {};
  std::atomic<uint64_t> bytes[kOpClassCount] = {};
  std::atomic<uint64_t> nanos[kOpClassCount] = {};
};

Counters& counters() {
  static Counters c;
  return c;
}

uint64_t now_nanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kElementwise: return "elementwise";
    case OpClass::kActivation: return "activation";
    case OpClass::kMatmul: return "matmul";
    case OpClass::kShape: return "shape";
    case OpClass::kReduction: return "reduction";
    case OpClass::kFused: return "fused";
    case OpClass::kCount: break;
  }
  return "?";
}

uint64_t OpProfile::tape_ops() const {
  return count[static_cast<int>(OpClass::kElementwise)] +
         count[static_cast<int>(OpClass::kActivation)];
}

uint64_t OpProfile::tape_bytes() const {
  return bytes[static_cast<int>(OpClass::kElementwise)] +
         bytes[static_cast<int>(OpClass::kActivation)];
}

OpProfile OpProfile::operator-(const OpProfile& rhs) const {
  OpProfile d;
  for (int i = 0; i < kOpClassCount; ++i) {
    d.count[i] = count[i] - rhs.count[i];
    d.bytes[i] = bytes[i] - rhs.bytes[i];
    d.nanos[i] = nanos[i] - rhs.nanos[i];
  }
  return d;
}

void profile_record(OpClass c, uint64_t out_bytes, uint64_t elapsed_nanos) {
  Counters& g = counters();
  const int i = static_cast<int>(c);
  g.count[i].fetch_add(1, std::memory_order_relaxed);
  g.bytes[i].fetch_add(out_bytes, std::memory_order_relaxed);
  if (elapsed_nanos)
    g.nanos[i].fetch_add(elapsed_nanos, std::memory_order_relaxed);
}

OpProfile profile_snapshot() {
  Counters& g = counters();
  OpProfile s;
  for (int i = 0; i < kOpClassCount; ++i) {
    s.count[i] = g.count[i].load(std::memory_order_relaxed);
    s.bytes[i] = g.bytes[i].load(std::memory_order_relaxed);
    s.nanos[i] = g.nanos[i].load(std::memory_order_relaxed);
  }
  return s;
}

void profile_reset() {
  Counters& g = counters();
  for (int i = 0; i < kOpClassCount; ++i) {
    g.count[i].store(0, std::memory_order_relaxed);
    g.bytes[i].store(0, std::memory_order_relaxed);
    g.nanos[i].store(0, std::memory_order_relaxed);
  }
}

ProfileScope::ProfileScope(OpClass c, uint64_t out_bytes)
    : c_(c), bytes_(out_bytes), t0_(now_nanos()) {}

ProfileScope::~ProfileScope() {
  profile_record(c_, bytes_, now_nanos() - t0_);
}

}  // namespace stgraph::ops
