// Fully connected layer y = x W + b with Glorot-uniform initialization
// (matching the torch.nn.Linear defaults used inside PyG-T's TGCN cell).
#pragma once

#include "nn/module.hpp"

namespace stgraph {
class Rng;
}

namespace stgraph::nn {

class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  /// x [N, in] -> [N, out].
  Tensor forward(const Tensor& x) const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  Tensor weight() const { return weight_; }
  Tensor bias() const { return bias_; }

 private:
  int64_t in_, out_;
  Tensor weight_;  // [in, out] so forward is a plain x @ W
  Tensor bias_;    // [out] (undefined when bias=false)
};

}  // namespace stgraph::nn
