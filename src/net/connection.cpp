#include "net/connection.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "util/failpoint.hpp"

namespace stgraph::net {

Connection::Connection(int fd, uint64_t id) : fd_(fd), id_(id) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

Connection::IoResult Connection::read_into_decoder() {
  char buf[64 * 1024];
  std::size_t want = sizeof(buf);
  // Worst-case fragmentation: one byte per event. Level-triggered epoll
  // re-fires until the kernel buffer drains, so this is slow, not stuck.
  STG_FAILPOINT("net.read.torn", want = 1);
  const ssize_t n = ::recv(fd_, buf, want, 0);
  if (n > 0) {
    decoder_.feed(buf, static_cast<std::size_t>(n));
    return IoResult::kOk;
  }
  if (n == 0) return IoResult::kClosed;  // orderly EOF
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
    return IoResult::kOk;
  return IoResult::kClosed;  // ECONNRESET etc.
}

void Connection::queue_write(const std::vector<uint8_t>& bytes) {
  // Compact the consumed prefix before growing, so a long-lived connection
  // does not accrete every response it ever sent.
  if (out_off_ > 0 && out_off_ == out_.size()) {
    out_.clear();
    out_off_ = 0;
  } else if (out_off_ > 64 * 1024) {
    out_.erase(out_.begin(), out_.begin() + static_cast<long>(out_off_));
    out_off_ = 0;
  }
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

Connection::IoResult Connection::flush() {
  while (out_off_ < out_.size()) {
    std::size_t n_bytes = out_.size() - out_off_;
    STG_FAILPOINT("net.write.short", n_bytes = 1);
    const ssize_t n = ::send(fd_, out_.data() + out_off_, n_bytes,
                             MSG_NOSIGNAL);
    if (n > 0) {
      out_off_ += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return IoResult::kOk;  // kernel buffer full — EPOLLOUT will re-arm
    if (errno == EINTR) continue;
    return IoResult::kClosed;  // EPIPE/ECONNRESET — peer is gone
  }
  return IoResult::kOk;
}

}  // namespace stgraph::net
