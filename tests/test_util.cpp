// Unit tests for util/: deterministic RNG, distribution sanity, CSV
// rendering, check macros, timers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace stgraph {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), StgError);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(19);
  for (uint64_t n : {10u, 100u, 1000u}) {
    for (uint64_t k : {uint64_t{0}, uint64_t{1}, n / 2, n}) {
      auto s = rng.sample_without_replacement(n, k);
      EXPECT_EQ(s.size(), k);
      std::set<uint64_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), k);
      for (uint64_t v : s) EXPECT_LT(v, n);
    }
  }
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(23);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), StgError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Check, ThrowsWithMessage) {
  try {
    STG_CHECK(false, "value was ", 42);
    FAIL() << "expected throw";
  } catch (const StgError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { STG_CHECK(1 + 1 == 2, "never shown"); }

TEST(Csv, TableAndCsvRendering) {
  CsvWriter w({"name", "value"});
  w.add_row({"alpha", "1.5"});
  w.add_row({"beta", "2"});
  const std::string csv = w.to_csv();
  EXPECT_EQ(csv, "name,value\nalpha,1.5\nbeta,2\n");
  const std::string table = w.to_table();
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("-----"), std::string::npos);
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"only one"}), StgError);
}

TEST(Csv, FmtPrecision) {
  EXPECT_EQ(CsvWriter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(CsvWriter::fmt(2.0, 0), "2");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  // Busy-wait until the steady clock visibly advances, then check units.
  while (t.seconds() <= 0.0) {
    volatile double x = 0;
    for (int i = 0; i < 1000; ++i) x += std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(t.seconds(), 0.0);
  const double s = t.seconds();
  EXPECT_GE(t.millis(), s * 1e3);
}

TEST(PhaseTimer, AccumulatesIntervals) {
  PhaseTimer pt;
  for (int i = 0; i < 3; ++i) {
    PhaseScope scope(pt);
    volatile double x = 0;
    for (int j = 0; j < 10000; ++j) x += j;
  }
  EXPECT_EQ(pt.intervals(), 3u);
  EXPECT_GT(pt.total_seconds(), 0.0);
  pt.reset();
  EXPECT_EQ(pt.intervals(), 0u);
  EXPECT_EQ(pt.total_seconds(), 0.0);
}

}  // namespace
}  // namespace stgraph
