#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gpma/gpma_graph.hpp"
#include "io/train_state.hpp"
#include "tensor/op_profile.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"
#include "verify/invariants.hpp"
#include "verify/validate.hpp"

namespace stgraph::core {
namespace {

/// FNV-1a over the raw bytes of a trivially-copyable value.
template <typename T>
uint64_t fnv1a(uint64_t h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool all_finite(const float* p, int64_t n) {
  for (int64_t i = 0; i < n; ++i)
    if (!std::isfinite(p[i])) return false;
  return true;
}

}  // namespace

STGraphTrainer::STGraphTrainer(STGraphBase& graph, nn::TemporalModel& model,
                               const datasets::TemporalSignal& signal,
                               TrainConfig config)
    : graph_(graph),
      model_(model),
      signal_(signal),
      config_(config),
      executor_(graph),
      optimizer_(model.parameters(), config.lr),
      rng_(config.seed) {
  STG_CHECK(signal_.num_timestamps() >= 1, "signal has no timestamps");
  STG_CHECK(config_.sequence_length >= 1, "sequence length must be positive");
  STG_CHECK(config_.task != Task::kNodeRegression || signal_.has_node_targets(),
            "node regression requires node targets in the signal");
  STG_CHECK(config_.task != Task::kLinkPrediction || signal_.has_link_samples(),
            "link prediction requires link samples in the signal");
  STG_CHECK(config_.checkpoint_every_n_sequences == 0 ||
                !config_.checkpoint_path.empty(),
            "checkpoint_every_n_sequences is set but checkpoint_path is "
            "empty");
  STG_CHECK(config_.lr_halve_after_failures >= 1,
            "lr_halve_after_failures must be positive");
  executor_.set_state_pruning(config_.state_pruning);
}

uint64_t STGraphTrainer::config_hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, config_.epochs);
  h = fnv1a(h, config_.sequence_length);
  h = fnv1a(h, config_.lr);
  h = fnv1a(h, config_.task);
  h = fnv1a(h, config_.state_pruning);
  h = fnv1a(h, config_.checkpoint_every_n_sequences);
  h = fnv1a(h, config_.numerical_guards);
  h = fnv1a(h, config_.lr_halve_after_failures);
  h = fnv1a(h, config_.max_grad_norm);
  h = fnv1a(h, config_.seed);
  // Pin the run shape too: a different model or dataset must not be
  // resumable even if the config matches.
  h = fnv1a(h, model_.parameter_count());
  h = fnv1a(h, signal_.num_timestamps());
  return h;
}

void STGraphTrainer::write_train_state(const std::string& path,
                                       uint32_t next_sequence,
                                       double epoch_loss_total,
                                       uint64_t epoch_steps) const {
  io::TrainState st;
  st.config_hash = config_hash();
  st.epoch = epoch_cursor_;
  st.next_sequence = next_sequence;
  st.lr = optimizer_.learning_rate();
  st.optimizer_step_count = optimizer_.step_count();
  st.params = model_.parameters();
  st.moment1 = optimizer_.moment1();
  st.moment2 = optimizer_.moment2();
  st.hidden = h_;
  st.rng = rng_.state();
  st.consecutive_failures = consecutive_failures_;
  st.non_finite_losses = failures_.non_finite_losses;
  st.non_finite_grads = failures_.non_finite_grads;
  st.skipped_steps = failures_.skipped_steps;
  st.lr_halvings = failures_.lr_halvings;
  st.epoch_loss_total = epoch_loss_total;
  st.epoch_steps = epoch_steps;
  io::save_train_state(st, path);
}

void STGraphTrainer::save_checkpoint(const std::string& path) const {
  write_train_state(path, sequence_cursor_, pending_loss_total_,
                    pending_steps_);
}

void STGraphTrainer::resume(const std::string& path) {
  io::TrainState st = io::load_train_state(path);
  STG_CHECK(st.config_hash == config_hash(), "train state '", path,
            "' was produced under a different TrainConfig, model, or "
            "dataset — refusing to resume");

  auto params = model_.parameters();
  io::restore_parameters(params, st.params, "train state '" + path + "'");
  optimizer_.restore_moments(st.moment1, st.moment2);
  optimizer_.set_step_count(st.optimizer_step_count);
  optimizer_.set_learning_rate(st.lr);
  rng_.set_state(st.rng);
  // The hidden state resumes detached, exactly as it was at the boundary.
  h_ = st.hidden;
  epoch_cursor_ = st.epoch;
  sequence_cursor_ = st.next_sequence;
  pending_loss_total_ = st.epoch_loss_total;
  pending_steps_ = st.epoch_steps;
  consecutive_failures_ = st.consecutive_failures;
  failures_.non_finite_losses = st.non_finite_losses;
  failures_.non_finite_grads = st.non_finite_grads;
  failures_.skipped_steps = st.skipped_steps;
  failures_.lr_halvings = st.lr_halvings;
}

EpochStats STGraphTrainer::run_epoch(bool training) {
  const uint32_t T =
      std::min<uint32_t>(signal_.num_timestamps(), graph_.num_timestamps());
  const uint32_t L = config_.sequence_length;
  const uint32_t num_sequences = (T + L - 1) / L;
  const float* edge_weights =
      signal_.edge_weights.empty() ? nullptr : signal_.edge_weights.data();

  Timer epoch_timer;
  // Per-op tape profile: counters are process-global, so the epoch's share
  // is the delta between snapshots taken at entry and exit.
  const ops::OpProfile profile_entry = ops::profile_snapshot();
  // Figure 9 attribution: snapshot-construction time accumulates in the
  // executor's positioning timer (which wraps Get-Graph / Algorithm 2 and
  // the Algorithm-3 rebuilds); reset so this epoch's share is isolated.
  executor_.positioning_timer().reset();
  if (auto* gpma = dynamic_cast<GpmaGraph*>(&graph_)) {
    gpma->update_timer().reset();
    gpma->reset_update_stats();
  }

  double loss_total = 0.0;
  uint64_t steps = 0;
  uint32_t first_seq = 0;
  PhaseTimer forward_timer;
  PhaseTimer backward_timer;
  // Evaluation carries its own hidden state so an interleaved evaluate()
  // never disturbs a resumed training position.
  Tensor eval_h;
  Tensor& h = training ? h_ : eval_h;
  if (training && sequence_cursor_ > 0) {
    // Resumed mid-epoch: pick up the cursor and accumulators; h_ was
    // restored by resume().
    first_seq = sequence_cursor_;
    loss_total = pending_loss_total_;
    steps = pending_steps_;
    sequence_cursor_ = 0;
    pending_loss_total_ = 0.0;
    pending_steps_ = 0;
  } else if (training) {
    h_ = Tensor();  // fresh epoch: hidden state restarts
  }

  for (uint32_t seq = first_seq; seq < num_sequences; ++seq) {
    const uint32_t seq_start = seq * L;
    const uint32_t seq_end = std::min(T, seq_start + L);

    // Rollback anchors: the (detached) hidden state at sequence entry and
    // a shadow copy of every parameter.
    const Tensor h_entry = h;
    std::vector<Tensor> shadow;
    if (training && config_.numerical_guards) {
      shadow.reserve(optimizer_.params().size());
      for (const nn::Parameter& p : optimizer_.params())
        shadow.push_back(p.tensor.clone());
    }

    Tensor loss_acc;
    try {
      {
        PhaseScope fwd_scope(forward_timer);
        for (uint32_t t = seq_start; t < seq_end; ++t) {
          executor_.begin_forward_step(t);
          // Pipeline hint: while this step's layers compute on the view
          // just positioned, the graph object may replay t+1's deltas and
          // publish its view in the background (bounded staleness of 1).
          if (t + 1 < seq_end) graph_.prefetch(t + 1);
          const Tensor& x = signal_.features[t];
          if (!h.defined()) h = model_.initial_state(x.rows());
          auto [out, h_next] = model_.step(executor_, x, h, edge_weights);
          h = h_next;

          Tensor loss_t;
          if (config_.task == Task::kNodeRegression) {
            loss_t = ops::mse_loss(out, signal_.targets[t]);
          } else {
            const datasets::LinkSamples& ls = signal_.links[t];
            Tensor logits = nn::link_logits(out, ls.src, ls.dst);
            loss_t = ops::bce_with_logits_loss(logits, ls.labels);
          }
          loss_acc = loss_acc.defined() ? ops::add(loss_acc, loss_t) : loss_t;
        }
      }
      if (training) {
        PhaseScope bwd_scope(backward_timer);
        optimizer_.zero_grad();
        loss_acc.backward();
      }
    } catch (...) {
      // Unwind to a consistent empty-stack state so the executor (and the
      // trainer) stay reusable after a mid-sequence throw.
      executor_.abort_sequence();
      h = h_entry;
      throw;
    }

    const double seq_loss = loss_acc.item();
    bool skipped = false;
    if (training) {
      STG_FAILPOINT("trainer.grad.nan", {
        // Poison one gradient value to exercise the guard path.
        for (const nn::Parameter& p : optimizer_.params()) {
          Tensor g = p.tensor.grad();
          if (g.defined() && g.numel() > 0) {
            g.data()[0] = std::numeric_limits<float>::quiet_NaN();
            break;
          }
        }
      });
      if (config_.numerical_guards) {
        const bool bad_loss = !std::isfinite(seq_loss);
        bool bad_grad = false;
        for (const nn::Parameter& p : optimizer_.params()) {
          const Tensor g = p.tensor.grad();
          if (g.defined() && !all_finite(g.data(), g.numel())) {
            bad_grad = true;
            break;
          }
        }
        if (bad_loss) ++failures_.non_finite_losses;
        if (bad_grad) ++failures_.non_finite_grads;
        if (bad_loss || bad_grad) {
          skipped = true;
          ++failures_.skipped_steps;
          // The step never runs, but restore from the shadow anyway: the
          // rollback contract is "parameters exactly as at sequence
          // entry" regardless of what a backward pass may have touched.
          {
            NoGradGuard ng;
            const auto& params = optimizer_.params();
            for (std::size_t i = 0; i < params.size(); ++i) {
              const Tensor& s = shadow[i];
              Tensor dst = params[i].tensor;  // shared handle, same storage
              std::copy(s.data(), s.data() + s.numel(), dst.data());
            }
          }
          h = h_entry;
          if (++consecutive_failures_ >= config_.lr_halve_after_failures) {
            optimizer_.set_learning_rate(optimizer_.learning_rate() * 0.5f);
            ++failures_.lr_halvings;
            consecutive_failures_ = 0;
          }
        }
      }
      if (!skipped) {
        consecutive_failures_ = 0;
        if (config_.max_grad_norm > 0.0f)
          nn::clip_grad_norm(optimizer_.params(), config_.max_grad_norm);
        optimizer_.step();
      }
      executor_.verify_drained();
      // STGRAPH_VALIDATE: end-of-sequence audit — both protocol stacks
      // drained, and the graph's current position still satisfies every
      // structural invariant after the sequence's worth of repositioning.
      if (verify::validation_enabled()) {
        verify::Report r = verify::check_executor_drained(executor_);
        r.merge(verify::check_graph_at(graph_, seq_end - 1));
        verify::require_ok(r, "STGraphTrainer sequence ending at t=" +
                                  std::to_string(seq_end - 1));
      }
    }

    if (!skipped) {
      loss_total += seq_loss;
      steps += seq_end - seq_start;
      h = h.detach();  // truncate BPTT at the sequence boundary
    }

    if (training && config_.checkpoint_every_n_sequences > 0 &&
        (seq + 1) % config_.checkpoint_every_n_sequences == 0) {
      write_train_state(config_.checkpoint_path, seq + 1, loss_total, steps);
    }
    // Crash injection at the exact sequence boundary — after any
    // checkpoint, mirroring a kill between sequences.
    STG_FAILPOINT("trainer.sequence.end",
                  throw StgError("failpoint trainer.sequence.end fired after "
                                 "sequence " +
                                 std::to_string(seq)));
  }

  EpochStats stats;
  stats.loss = steps ? loss_total / static_cast<double>(steps) : 0.0;
  stats.seconds = epoch_timer.seconds();
  stats.graph_update_seconds = executor_.positioning_timer().total_seconds();
  stats.gnn_seconds = stats.seconds - stats.graph_update_seconds;
  if (auto* gpma = dynamic_cast<GpmaGraph*>(&graph_)) {
    stats.position_seconds = gpma->position_timer().total_seconds();
    stats.view_seconds = gpma->view_timer().total_seconds();
    stats.incremental_view_updates = gpma->incremental_view_updates();
    stats.full_view_rebuilds = gpma->full_view_rebuilds();
    stats.stall_seconds = gpma->stall_timer().total_seconds();
    stats.prefetch_hits = gpma->prefetch_hits();
    stats.prefetch_misses = gpma->prefetch_misses();
  }
  stats.forward_seconds = forward_timer.total_seconds();
  stats.backward_seconds = backward_timer.total_seconds();
  const ops::OpProfile prof = ops::profile_snapshot() - profile_entry;
  stats.tape_op_count = prof.tape_ops();
  stats.tape_bytes = prof.tape_bytes();
  stats.fused_op_count = prof.fused_ops();
  stats.fused_bytes = prof.fused_bytes();
  stats.failures = failures_;
  return stats;
}

EpochStats STGraphTrainer::train_epoch() {
  EpochStats stats = run_epoch(/*training=*/true);
  ++epoch_cursor_;
  return stats;
}

std::vector<EpochStats> STGraphTrainer::train() {
  std::vector<EpochStats> stats;
  if (config_.epochs > epoch_cursor_)
    stats.reserve(config_.epochs - epoch_cursor_);
  while (epoch_cursor_ < config_.epochs) stats.push_back(train_epoch());
  return stats;
}

double STGraphTrainer::evaluate() {
  NoGradGuard ng;
  return run_epoch(/*training=*/false).loss;
}

std::vector<Tensor> STGraphTrainer::evaluate_outputs() {
  NoGradGuard ng;
  executor_.set_inference_mode(true);
  const uint32_t T =
      std::min<uint32_t>(signal_.num_timestamps(), graph_.num_timestamps());
  const float* edge_weights =
      signal_.edge_weights.empty() ? nullptr : signal_.edge_weights.data();
  std::vector<Tensor> outputs;
  outputs.reserve(T);
  Tensor h;
  for (uint32_t t = 0; t < T; ++t) {
    executor_.begin_forward_step(t);
    const Tensor& x = signal_.features[t];
    if (!h.defined()) h = model_.initial_state(x.rows());
    auto [out, h_next] = model_.step(executor_, x, h, edge_weights);
    h = h_next;
    outputs.push_back(out);
  }
  executor_.set_inference_mode(false);
  return outputs;
}

}  // namespace stgraph::core
