// Tests for the attention ops (div/scale/softmax/element) and the A3TGCN
// attention-temporal model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "graph/static_graph.hpp"
#include "nn/a3tgcn.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

// Light-weight finite-difference check (full version lives in
// test_autograd; these ops were added later).
void check_grad(Tensor& x, const std::function<Tensor()>& fn,
                float eps = 1e-2f, float tol = 2e-2f) {
  x.zero_grad();
  fn().backward();
  Tensor grad = x.grad();
  ASSERT_TRUE(grad.defined());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const float up = fn().item();
    x.data()[i] = orig - eps;
    const float down = fn().item();
    x.data()[i] = orig;
    const float fd = (up - down) / (2 * eps);
    const float scale = std::max({1.0f, std::abs(fd)});
    EXPECT_NEAR(grad.at(i), fd, tol * scale) << i;
  }
}

TEST(AttentionOps, DivForwardAndGrad) {
  Tensor a = Tensor::from_vector({6, 8}, {2}, true);
  Tensor b = Tensor::from_vector({2, 4}, {2}, true);
  EXPECT_EQ(ops::div(a, b).to_vector(), (std::vector<float>{3, 2}));
  check_grad(a, [&] { return ops::sum(ops::div(a, b)); });
  check_grad(b, [&] { return ops::sum(ops::div(a, b)); });
}

TEST(AttentionOps, ScaleForwardAndGradBothInputs) {
  Rng rng(1);
  Tensor x = Tensor::randn({3, 2}, rng, 1.0f, true);
  Tensor s = Tensor::full({1}, 0.7f, true);
  Tensor y = ops::scale(x, s);
  for (int64_t i = 0; i < x.numel(); ++i)
    EXPECT_FLOAT_EQ(y.at(i), 0.7f * x.at(i));
  check_grad(x, [&] { return ops::sum(ops::scale(x, s)); });
  check_grad(s, [&] { return ops::sum(ops::scale(x, s)); });
  EXPECT_THROW(ops::scale(x, Tensor::zeros({2})), StgError);
}

TEST(AttentionOps, SoftmaxNormalizedAndStable) {
  Tensor x = Tensor::from_vector({1.0f, 2.0f, 3.0f}, {3});
  Tensor y = ops::softmax(x);
  float total = 0;
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_GT(y.at(i), 0.0f);
    total += y.at(i);
  }
  EXPECT_NEAR(total, 1.0f, 1e-6f);
  EXPECT_GT(y.at(2), y.at(1));
  // Large logits must not overflow.
  Tensor big = ops::softmax(Tensor::from_vector({1000.0f, 1001.0f}, {2}));
  EXPECT_FALSE(std::isnan(big.at(0)));
  EXPECT_NEAR(big.at(0) + big.at(1), 1.0f, 1e-6f);
}

TEST(AttentionOps, SoftmaxGrad) {
  Rng rng(3);
  Tensor x = Tensor::randn({4}, rng, 1.0f, true);
  Tensor w = Tensor::randn({4}, rng);  // weight the outputs
  check_grad(x, [&] { return ops::sum(ops::mul(ops::softmax(x), w)); });
}

TEST(AttentionOps, ElementGradRoutesToOneEntry) {
  Tensor x = Tensor::from_vector({1, 2, 3}, {3}, true);
  ops::element(x, 1).backward();
  EXPECT_EQ(x.grad().to_vector(), (std::vector<float>{0, 1, 0}));
  EXPECT_THROW(ops::element(x, 3), StgError);
}

EdgeList ring(uint32_t n) {
  EdgeList e;
  for (uint32_t v = 0; v < n; ++v) e.emplace_back(v, (v + 1) % n);
  return e;
}

TEST(A3Tgcn, UniformAttentionInitially) {
  Rng rng(5);
  nn::A3TGCN cell(3, 4, /*periods=*/4, rng);
  Tensor att = cell.attention();
  for (int64_t p = 0; p < 4; ++p) EXPECT_NEAR(att.at(p), 0.25f, 1e-6f);
}

TEST(A3Tgcn, StateWindowShiftsNewestFirst) {
  Rng rng(7);
  const uint32_t n = 6;
  nn::A3TGCN cell(2, 3, /*periods=*/2, rng);
  StaticTemporalGraph graph(n, ring(n), 3);
  core::TemporalExecutor exec(graph);
  NoGradGuard ng;
  Tensor state = cell.initial_state(n);
  exec.begin_forward_step(0);
  Tensor x = Tensor::randn({n, 2}, rng);
  auto [out1, s1] = cell.forward(exec, x, state);
  // After one step: newest block non-zero, old block = previous newest (0).
  Tensor newest = ops::slice_cols(s1, 0, 3);
  Tensor oldest = ops::slice_cols(s1, 3, 6);
  bool newest_nonzero = false;
  for (int64_t i = 0; i < newest.numel(); ++i)
    newest_nonzero = newest_nonzero || newest.at(i) != 0.0f;
  EXPECT_TRUE(newest_nonzero);
  for (int64_t i = 0; i < oldest.numel(); ++i) EXPECT_EQ(oldest.at(i), 0.0f);

  exec.begin_forward_step(1);
  auto [out2, s2] = cell.forward(exec, x, s1);
  // The old block of s2 equals the newest block of s1.
  Tensor old2 = ops::slice_cols(s2, 3, 6);
  EXPECT_EQ(old2.to_vector(), newest.to_vector());
}

TEST(A3Tgcn, AttentionScoresReceiveGradients) {
  Rng rng(9);
  const uint32_t n = 8;
  nn::A3TGCNRegressor model(3, 4, /*periods=*/3, rng);
  StaticTemporalGraph graph(n, ring(n), 4);
  core::TemporalExecutor exec(graph);
  Tensor state = model.initial_state(n);
  Tensor loss;
  for (uint32_t t = 0; t < 3; ++t) {
    exec.begin_forward_step(t);
    Tensor x = Tensor::randn({n, 3}, rng);
    auto [y, next] = model.step(exec, x, state, nullptr);
    state = next;
    Tensor l = ops::mean(ops::mul(y, y));
    loss = loss.defined() ? ops::add(loss, l) : l;
  }
  loss.backward();
  exec.verify_drained();
  bool found_att = false;
  for (const auto& p : model.parameters()) {
    if (p.name.find("att_score") != std::string::npos) {
      found_att = true;
      ASSERT_TRUE(p.tensor.grad().defined());
      float norm = 0;
      for (int64_t i = 0; i < p.tensor.grad().numel(); ++i)
        norm += std::abs(p.tensor.grad().at(i));
      EXPECT_GT(norm, 0.0f);
    }
  }
  EXPECT_TRUE(found_att);
}

TEST(A3Tgcn, TrainsOnStaticTemporalData) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 18;
  o.feature_size = 4;
  auto ds = datasets::load_chickenpox(o);
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(11);
  nn::A3TGCNRegressor model(o.feature_size, 8, /*periods=*/3, rng);
  core::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.sequence_length = 6;
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);
  auto stats = trainer.train();
  EXPECT_LT(stats.back().loss, stats.front().loss);
}

TEST(A3Tgcn, SinglePeriodDegeneratesToTgcnShape) {
  Rng rng(13);
  nn::A3TGCN cell(3, 4, /*periods=*/1, rng);
  EXPECT_EQ(cell.initial_state(5).shape(), (Shape{5, 4}));
  EXPECT_NEAR(cell.attention().at(0), 1.0f, 1e-6f);
  EXPECT_THROW(nn::A3TGCN(3, 4, 0, rng), StgError);
}

}  // namespace
}  // namespace stgraph
