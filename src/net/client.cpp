#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/check.hpp"

namespace stgraph::net {

Client::Client(const std::string& host, uint16_t port, double timeout_ms) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  STG_CHECK(fd_ >= 0, "net: client socket() failed: ", std::strerror(errno));
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  STG_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
            "net: '", host, "' is not a valid IPv4 address");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    STG_CHECK(false, "net: connect(", host, ":", port, ") failed: ",
              std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      next_request_id_(other.next_request_id_),
      decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

void Client::send_raw(const void* data, std::size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw StgError(std::string("net: client send failed: ") +
                     std::strerror(errno));
    }
    sent += static_cast<std::size_t>(w);
  }
}

Frame Client::read_frame(uint64_t expect_request_id) {
  char buf[64 * 1024];
  while (true) {
    Frame f;
    std::string line;
    switch (decoder_.next(&f, &line)) {
      case FrameDecoder::Status::kFrame:
        // Responses arrive in completion order; a synchronous client has
        // exactly one request outstanding, so anything else is a protocol
        // violation by the server.
        STG_CHECK(f.request_id == expect_request_id,
                  "net: response request id ", f.request_id,
                  " does not match the outstanding request ",
                  expect_request_id);
        return f;
      case FrameDecoder::Status::kJsonLine:
        throw StgError("net: unexpected JSON line on a binary connection");
      case FrameDecoder::Status::kProtocolError:
        throw StgError("net: client decoder: " + decoder_.error());
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0)
      throw StgError("net: server closed the connection mid-response");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StgError(std::string("net: client recv failed: ") +
                     std::strerror(errno));
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

Frame Client::round_trip(Verb verb, uint16_t tenant,
                         std::vector<uint8_t> payload) {
  Frame req;
  req.verb = verb;
  req.tenant = tenant;
  req.request_id = next_request_id_++;
  req.payload = std::move(payload);
  const std::vector<uint8_t> bytes = encode_frame(req);
  send_raw(bytes.data(), bytes.size());
  Frame resp = read_frame(req.request_id);
  if (resp.verb == Verb::kError) {
    std::string message;
    const ErrorCode code = parse_error(resp.payload, &message);
    throw NetError(code, message);
  }
  const auto expected =
      static_cast<Verb>(static_cast<uint8_t>(verb) | 0x80);
  STG_CHECK(resp.verb == expected, "net: unexpected response verb ",
            static_cast<int>(resp.verb), " to request verb ",
            static_cast<int>(verb));
  return resp;
}

PredictWire Client::predict(const std::vector<uint32_t>& nodes,
                            uint16_t tenant) {
  Frame resp =
      round_trip(Verb::kPredict, tenant, build_predict_request(nodes));
  return parse_predict_response(resp.payload);
}

IngestWire Client::ingest(const EdgeDelta& delta, const Tensor& next_features,
                          uint16_t tenant) {
  Frame resp = round_trip(Verb::kIngest, tenant,
                          build_ingest_request(delta, next_features));
  return parse_ingest_response(resp.payload);
}

std::string Client::stats_json() {
  Frame resp = round_trip(Verb::kStats, 0, {});
  return std::string(resp.payload.begin(), resp.payload.end());
}

std::string Client::health_json() {
  Frame resp = round_trip(Verb::kHealth, 0, {});
  return std::string(resp.payload.begin(), resp.payload.end());
}

std::string Client::read_line() {
  std::string out;
  char c;
  while (true) {
    // Byte-at-a-time is fine here: the JSON fallback is a debug/demo
    // path, not the throughput path.
    const ssize_t n = ::recv(fd_, &c, 1, 0);
    if (n == 0) throw StgError("net: server closed mid-line");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StgError(std::string("net: client recv failed: ") +
                     std::strerror(errno));
    }
    if (c == '\n') return out;
    out += c;
  }
}

std::string Client::json_round_trip(const std::string& line) {
  std::string msg = line;
  if (msg.empty() || msg.back() != '\n') msg += '\n';
  send_raw(msg.data(), msg.size());
  return read_line();
}

std::vector<uint8_t> Client::read_until_close() {
  std::vector<uint8_t> out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      out.insert(out.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return out;  // EOF, timeout, or reset — caller inspects what arrived
  }
}

}  // namespace stgraph::net
