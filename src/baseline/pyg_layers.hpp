// Baseline layers re-implementing PyG's GCNConv and PyG-T's TGCN on the
// edge-parallel primitives. Same math as the STGraph layers (tests assert
// numerical equivalence), different system behaviour: per-edge message
// materialization, atomic scatter reduction, no degree-ordered scheduling,
// per-call norm recomputation.
#pragma once

#include "baseline/edge_ops.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace stgraph::baseline {

class PygGCNConv : public nn::Module {
 public:
  PygGCNConv(int64_t in_features, int64_t out_features, Rng& rng,
             bool bias = true);

  Tensor forward(const CooSnapshot& g, const Tensor& x,
                 const float* edge_weights = nullptr) const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }

 private:
  int64_t in_, out_;
  Tensor weight_;
  Tensor bias_;
};

/// PyG-T's TGCN cell on top of PygGCNConv (same gate structure as
/// stgraph::nn::TGCN).
class PygTGCN : public nn::Module {
 public:
  PygTGCN(int64_t in_features, int64_t out_features, Rng& rng);

  Tensor forward(const CooSnapshot& g, const Tensor& x, const Tensor& h,
                 const float* edge_weights = nullptr) const;
  Tensor initial_state(int64_t num_nodes) const;

  int64_t out_features() const { return out_; }

 private:
  int64_t in_, out_;
  PygGCNConv conv_z_, conv_r_, conv_h_;
  nn::Linear linear_z_, linear_r_, linear_h_;
};

}  // namespace stgraph::baseline
