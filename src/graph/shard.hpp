// Vertex sharding for multi-core edge aggregation (the partitioned-training
// lever from TGL, scaled down to one node: shards ≈ GPU partitions).
//
// A ShardPlan splits the vertex id space into `num_shards` contiguous
// ranges of near-equal edge weight (reorder::balanced_ranges over
// w(v) = in_deg(v) + out_deg(v) + 2 — the +2 keeps ranges balanced on
// sparse graphs where most vertices have degree 0 but still cost a row
// visit in every kernel). For each adjacency direction the plan carries a
// *sharded processing order*: the global descending-degree order, stably
// partitioned by shard, concatenated shard-by-shard. The kernel engine
// walks shard s's slice of that order on one lane — so STGraph's
// high-degree-first load-balancing argument survives inside each shard,
// and rows stay disjoint across lanes.
//
// Halo exchange: with row-disjoint shards over shared (read-only) column /
// feature arrays, a cross-shard edge u→v needs no explicit communication —
// shard(v) simply reads u's feature row, exactly as the unsharded kernel
// would. The "exchange" degenerates to coherent read-only loads, which is
// why sharded outputs are bit-identical to the serial reference at any S:
// each output row is reduced by exactly one lane, in the same CSR index
// order as the unsharded loop. cut_edges still measures the cross-shard
// traffic a distributed deployment would pay; bench_scaling reports it.
//
// NUMA: each shard's slice of the order arrays is written by the lane that
// owns the shard, so the writer lane matches the kernel-time reader lane;
// DeviceAllocator places large arrays on 2 MiB-aligned huge pages, keeping
// a shard's slice on few pages local to its lane's recent accesses.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "runtime/device_buffer.hpp"

namespace stgraph {

/// A range partition of the vertex set plus per-direction sharded
/// processing orders. Rebuilt whenever the owning graph's degree orders
/// change (cheap: O(n + S) given the global orders).
struct ShardPlan {
  uint32_t num_shards = 1;
  /// Vertex-id-space ranges: shard s owns ids [vertex_bounds[s],
  /// vertex_bounds[s+1]). Size num_shards + 1.
  std::vector<uint32_t> vertex_bounds;
  /// Offsets into the order arrays below; shard s's rows are
  /// order[bounds[s] .. bounds[s+1]). Identical for both directions (every
  /// vertex appears once in each order). Size num_shards + 1.
  DeviceBuffer<uint32_t> bounds;
  /// Per-shard concatenation of the forward (in-degree-descending) and
  /// backward (out-degree-descending) global orders. Size num_nodes each.
  DeviceBuffer<uint32_t> in_order;
  DeviceBuffer<uint32_t> out_order;

  bool active() const { return num_shards > 1; }
  /// Deep copy (DeviceBuffers are move-only; published snapshot views keep
  /// their own plan so they stay self-contained).
  ShardPlan clone() const;
  std::size_t device_bytes() const {
    return bounds.bytes() + in_order.bytes() + out_order.bytes();
  }
  /// Shard owning vertex v (linear scan: S is a handful).
  uint32_t shard_of(uint32_t v) const;
  /// Stamp the shard fields of a kernel-facing view.
  void annotate(CsrView& view, bool forward) const;
};

/// Resolve the shard count for an n-vertex graph from STGRAPH_SHARDS:
/// unset or 0 → auto (2 shards per ThreadPool lane for slack against
/// degree skew, capped so shards keep ≥256 vertices); 1 → sharding off;
/// k → exactly min(k, n) shards. Read once per call (tests re-set the env).
uint32_t resolve_shard_count(uint32_t num_nodes);

/// Build a plan: balanced_ranges over w(v) = in_deg + out_deg + 2, then a
/// stable partition of each global degree order by shard. `fwd_order` /
/// `bwd_order` list all n vertices (descending in/out degree). Passing
/// num_shards <= 1 yields an inactive plan with empty arrays.
ShardPlan build_shard_plan(uint32_t num_nodes, const uint32_t* in_deg,
                           const uint32_t* out_deg, const uint32_t* fwd_order,
                           const uint32_t* bwd_order, uint32_t num_shards);

/// Cross-shard edges of a (possibly gapped) CSR view under `plan` — the
/// halo traffic a distributed deployment would pay. Stats only; not on any
/// hot path.
uint64_t count_cut_edges(const CsrView& view, const ShardPlan& plan);

}  // namespace stgraph
