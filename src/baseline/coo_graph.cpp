#include "baseline/coo_graph.hpp"

#include "util/check.hpp"

namespace stgraph::baseline {

CooSnapshot make_coo(uint32_t num_nodes, const EdgeList& edges) {
  CooSnapshot s;
  s.num_nodes = num_nodes;
  std::vector<uint32_t> src, dst;
  src.reserve(edges.size());
  dst.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    STG_CHECK(u < num_nodes && v < num_nodes, "edge endpoint out of range");
    src.push_back(u);
    dst.push_back(v);
  }
  s.src = DeviceBuffer<uint32_t>(src, MemCategory::kGraph);
  s.dst = DeviceBuffer<uint32_t>(dst, MemCategory::kGraph);
  return s;
}

PygtTemporalGraph::PygtTemporalGraph(uint32_t num_nodes, const EdgeList& edges,
                                     uint32_t num_timestamps)
    : num_timestamps_(num_timestamps) {
  snapshots_.push_back(make_coo(num_nodes, edges));
}

PygtTemporalGraph::PygtTemporalGraph(const DtdgEvents& events)
    : num_timestamps_(events.num_timestamps()) {
  snapshots_.reserve(num_timestamps_);
  for (uint32_t t = 0; t < num_timestamps_; ++t) {
    snapshots_.push_back(make_coo(events.num_nodes, events.snapshot_edges(t)));
  }
}

const CooSnapshot& PygtTemporalGraph::snapshot(uint32_t t) const {
  STG_CHECK(t < num_timestamps_, "timestamp ", t, " out of range ",
            num_timestamps_);
  return snapshots_.size() == 1 ? snapshots_[0] : snapshots_[t];
}

std::size_t PygtTemporalGraph::device_bytes() const {
  std::size_t total = 0;
  for (const CooSnapshot& s : snapshots_) total += s.device_bytes();
  return total;
}

}  // namespace stgraph::baseline
