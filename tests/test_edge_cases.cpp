// Degenerate-input tests: empty graphs, single snapshots, single
// vertices, zero-feature corners — the inputs that crash frameworks whose
// tests only cover the happy path.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/naive_graph.hpp"
#include "graph/static_graph.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

TEST(EdgeCases, EdgelessGraphStillTrains) {
  // MB-like sparsity taken to the limit: no edges at all. Aggregation
  // reduces to the self term; training must stay finite.
  const uint32_t n = 6;
  StaticTemporalGraph graph(n, {}, 4);
  Rng rng(1);
  nn::TGCNRegressor model(2, 4, rng);

  datasets::TemporalSignal signal;
  for (uint32_t t = 0; t < 4; ++t) {
    signal.features.push_back(Tensor::randn({n, 2}, rng));
    signal.targets.push_back(Tensor::randn({n, 1}, rng, 0.3f));
  }
  core::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, model, signal, cfg);
  auto stats = trainer.train();
  EXPECT_FALSE(std::isnan(stats.back().loss));
}

TEST(EdgeCases, SingleVertexGraph) {
  StaticTemporalGraph graph(1, {}, 2);
  core::TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  Rng rng(2);
  nn::SeastarGCNConv conv(3, 3, rng);
  NoGradGuard ng;
  Tensor y = conv.forward(exec, Tensor::ones({1, 3}));
  EXPECT_EQ(y.shape(), (Shape{1, 3}));
  for (int64_t i = 0; i < 3; ++i) EXPECT_FALSE(std::isnan(y.at(i)));
}

TEST(EdgeCases, SingleSnapshotDtdg) {
  // A "dynamic" graph with no deltas degenerates to a static one.
  DtdgEvents ev;
  ev.num_nodes = 4;
  ev.base_edges = {{0, 1}, {1, 2}};
  EXPECT_EQ(ev.num_timestamps(), 1u);
  NaiveGraph naive(ev);
  GpmaGraph gpma(ev);
  EXPECT_EQ(naive.num_timestamps(), 1u);
  EXPECT_EQ(gpma.num_timestamps(), 1u);
  SnapshotView v = gpma.get_graph(0);
  EXPECT_EQ(v.num_edges, 2u);
  // Backward view of the only snapshot works with nothing to roll back.
  EXPECT_EQ(gpma.get_backward_graph(0).num_edges, 2u);
}

TEST(EdgeCases, SequenceLongerThanTimeline) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 3;
  o.feature_size = 2;
  auto ds = datasets::load_pedalme(o);
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(3);
  nn::TGCNRegressor model(2, 4, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.sequence_length = 100;  // far beyond T=3
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);
  EXPECT_NO_THROW(trainer.train());
}

TEST(EdgeCases, SingleTimestampTraining) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 1;
  o.feature_size = 2;
  auto ds = datasets::load_pedalme(o);
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, 1);
  Rng rng(4);
  nn::TGCNRegressor model(2, 4, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);
  EXPECT_NO_THROW(trainer.train());
}

TEST(EdgeCases, StarGraphDegreeExtremes) {
  // One hub with in-degree n-1: the degree-sorted order must put the hub
  // first in the forward order and the spokes first in the backward one.
  const uint32_t n = 10;
  EdgeList edges;
  for (uint32_t v = 1; v < n; ++v) edges.emplace_back(v, 0);
  StaticTemporalGraph graph(n, edges, 1);
  SnapshotView view = graph.get_graph(0);
  EXPECT_EQ(view.in_view.node_ids[0], 0u);     // hub has max in-degree
  EXPECT_NE(view.out_view.node_ids[0], 0u);    // hub has out-degree 0
  EXPECT_EQ(view.out_view.node_ids[n - 1], 0u);
  EXPECT_EQ(view.in_degrees[0], n - 1);
  EXPECT_EQ(view.out_degrees[0], 0u);
}

TEST(EdgeCases, WindowingTinyStream) {
  // Single-edge stream: no room to slide, base snapshot only.
  DtdgEvents one = window_edge_stream(3, {{0, 1}}, 10.0);
  EXPECT_EQ(one.num_timestamps(), 1u);
  EXPECT_EQ(one.base_edges.size(), 1u);
  // Two-edge stream: exactly one slide fits.
  DtdgEvents two = window_edge_stream(3, {{0, 1}, {1, 2}}, 10.0);
  EXPECT_EQ(two.num_timestamps(), 2u);
  EXPECT_EQ(two.snapshot_edges(1), (EdgeList{{1, 2}}));
}

TEST(EdgeCases, SelfLoopFreeGeneratorsEverywhere) {
  datasets::DynamicLoadOptions o;
  o.scale = 0.005;
  for (const auto& ds : datasets::load_all_dynamic(o)) {
    for (const auto& [s, d] : ds.stream) EXPECT_NE(s, d) << ds.name;
  }
}

TEST(EdgeCases, ZeroEpochTrainReturnsEmptyStats) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 2;
  o.feature_size = 2;
  auto ds = datasets::load_pedalme(o);
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, 2);
  Rng rng(5);
  nn::TGCNRegressor model(2, 4, rng);
  core::TrainConfig cfg;
  cfg.epochs = 0;
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);
  EXPECT_TRUE(trainer.train().empty());
}

TEST(EdgeCases, GpmaHandlesBurstDeltas) {
  // One delta replaces nearly everything at once (percent change ~100).
  DtdgEvents ev;
  ev.num_nodes = 8;
  ev.base_edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  EdgeDelta d;
  d.deletions = ev.base_edges;
  d.additions = {{4, 5}, {5, 6}, {6, 7}, {7, 0}};
  ev.deltas.push_back(d);
  GpmaGraph g(ev);
  EXPECT_EQ(g.get_graph(1).num_edges, 4u);
  EXPECT_EQ(g.get_graph(0).num_edges, 4u);
  std::string why;
  EXPECT_TRUE(g.pma().check_invariants(&why)) << why;
}

}  // namespace
}  // namespace stgraph
