// I/O round-trip and validation tests: binary dataset/DTDG/checkpoint
// formats and the SNAP-style text edge-list reader.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "datasets/synthetic.hpp"
#include "io/serialize.hpp"
#include "nn/tgcn.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

// Unique temp path per test, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_("/tmp/stgraph_io_test_" + tag + "_" +
              std::to_string(::getpid())) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(IoStaticDataset, RoundTripPreservesEverything) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 6;
  o.feature_size = 3;
  auto ds = datasets::load_chickenpox(o);
  TempFile f("static");
  io::save_static_dataset(ds, f.path());
  auto back = io::load_static_dataset(f.path());
  EXPECT_EQ(back.name, ds.name);
  EXPECT_EQ(back.num_nodes, ds.num_nodes);
  EXPECT_EQ(back.num_timestamps, ds.num_timestamps);
  EXPECT_EQ(back.edges, ds.edges);
  ASSERT_EQ(back.signal.num_timestamps(), ds.signal.num_timestamps());
  for (uint32_t t = 0; t < ds.signal.num_timestamps(); ++t) {
    EXPECT_EQ(back.signal.features[t].to_vector(),
              ds.signal.features[t].to_vector());
    EXPECT_EQ(back.signal.targets[t].to_vector(),
              ds.signal.targets[t].to_vector());
  }
  EXPECT_EQ(back.signal.edge_weights, ds.signal.edge_weights);
}

TEST(IoDtdg, RoundTripAndValidation) {
  Rng rng(5);
  EdgeList stream;
  for (int i = 0; i < 600; ++i)
    stream.emplace_back(static_cast<uint32_t>(rng.next_below(30)),
                        static_cast<uint32_t>(rng.next_below(30)));
  DtdgEvents ev = window_edge_stream(30, stream, 10.0);
  TempFile f("dtdg");
  io::save_dtdg(ev, f.path());
  DtdgEvents back = io::load_dtdg(f.path());
  EXPECT_EQ(back.num_nodes, ev.num_nodes);
  EXPECT_EQ(back.base_edges, ev.base_edges);
  ASSERT_EQ(back.deltas.size(), ev.deltas.size());
  for (size_t i = 0; i < ev.deltas.size(); ++i) {
    EXPECT_EQ(back.deltas[i].additions, ev.deltas[i].additions);
    EXPECT_EQ(back.deltas[i].deletions, ev.deltas[i].deletions);
  }
}

TEST(IoCheckpoint, RoundTripRestoresParameters) {
  Rng rng_a(1), rng_b(2);  // different seeds → different weights
  nn::TGCN original(3, 4, rng_a);
  nn::TGCN restored(3, 4, rng_b);
  TempFile f("ckpt");
  io::save_checkpoint(original, f.path());
  io::load_checkpoint(restored, f.path());
  auto pa = original.parameters();
  auto pb = restored.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].name, pb[i].name);
    EXPECT_EQ(pa[i].tensor.to_vector(), pb[i].tensor.to_vector()) << pa[i].name;
  }
}

TEST(IoCheckpoint, ShapeMismatchRejected) {
  Rng rng(1);
  nn::TGCN small(3, 4, rng);
  nn::TGCN big(3, 8, rng);
  TempFile f("ckpt_mismatch");
  io::save_checkpoint(small, f.path());
  EXPECT_THROW(io::load_checkpoint(big, f.path()), StgError);
}

TEST(IoCheckpoint, WrongMagicRejected) {
  TempFile f("bad_magic");
  {
    std::ofstream out(f.path(), std::ios::binary);
    out << "this is not a checkpoint";
  }
  Rng rng(1);
  nn::TGCN model(3, 4, rng);
  EXPECT_THROW(io::load_checkpoint(model, f.path()), StgError);
}

TEST(IoCheckpoint, TruncatedFileRejected) {
  Rng rng(1);
  nn::TGCN model(3, 4, rng);
  TempFile f("trunc");
  io::save_checkpoint(model, f.path());
  // Truncate the file to half its size.
  std::ifstream in(f.path(), std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::string content(static_cast<size_t>(size) / 2, '\0');
  in.read(content.data(), static_cast<std::streamsize>(content.size()));
  in.close();
  std::ofstream(f.path(), std::ios::binary) << content;
  EXPECT_THROW(io::load_checkpoint(model, f.path()), StgError);
}

// ---- corruption robustness ----------------------------------------------
// Every binary container must throw StgError — never crash, OOM, or
// silently truncate — when the file is cut at ANY byte boundary.

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

template <typename LoadFn>
void truncation_sweep(const std::string& tag, const std::string& valid_path,
                      LoadFn load) {
  const std::string bytes = file_bytes(valid_path);
  ASSERT_GT(bytes.size(), 0u) << tag;
  TempFile cut_file(tag + "_cut");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::ofstream(cut_file.path(), std::ios::binary | std::ios::trunc)
        << bytes.substr(0, cut);
    EXPECT_THROW(load(cut_file.path()), StgError)
        << tag << " cut at byte " << cut << " of " << bytes.size();
  }
}

TEST(IoCorruption, StaticDatasetTruncationSweep) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 2;
  o.feature_size = 2;
  auto ds = datasets::load_chickenpox(o);
  TempFile f("trunc_static");
  io::save_static_dataset(ds, f.path());
  truncation_sweep("static", f.path(),
                   [](const std::string& p) { io::load_static_dataset(p); });
}

TEST(IoCorruption, DtdgTruncationSweep) {
  Rng rng(9);
  EdgeList stream;
  for (int i = 0; i < 60; ++i)
    stream.emplace_back(static_cast<uint32_t>(rng.next_below(12)),
                        static_cast<uint32_t>(rng.next_below(12)));
  DtdgEvents ev = window_edge_stream(12, stream, 20.0);
  TempFile f("trunc_dtdg");
  io::save_dtdg(ev, f.path());
  truncation_sweep("dtdg", f.path(),
                   [](const std::string& p) { io::load_dtdg(p); });
}

TEST(IoCorruption, CheckpointTruncationSweep) {
  Rng rng(1);
  nn::TGCN model(2, 3, rng);
  TempFile f("trunc_ckpt");
  io::save_checkpoint(model, f.path());
  truncation_sweep("ckpt", f.path(), [&](const std::string& p) {
    Rng rng2(2);
    nn::TGCN target(2, 3, rng2);
    io::load_checkpoint(target, p);
  });
}

// ---- atomic publish ------------------------------------------------------

TEST(IoAtomicity, ShortWriteFailpointYieldsDetectablyTornFile) {
  Rng rng(1);
  nn::TGCN model(3, 4, rng);
  TempFile f("short_write");
  failpoint::enable("io.write.short", failpoint::Spec::once());
  io::save_checkpoint(model, f.path());
  failpoint::disable_all();
  EXPECT_THROW(io::load_checkpoint(model, f.path()), StgError)
      << "a torn write must be rejected on load, never UB";
  io::save_checkpoint(model, f.path());  // clean rewrite recovers
  Rng rng2(2);
  nn::TGCN restored(3, 4, rng2);
  io::load_checkpoint(restored, f.path());
}

TEST(IoAtomicity, FailedSaveKeepsThePreviousFileIntact) {
  // A save that dies before the rename must leave the previously
  // published checkpoint untouched (crash-consistency of the temp+rename
  // path). The writer throws on a non-creatable temp path; here we check
  // the temp file of an interrupted save never shadows the destination.
  Rng rng(1);
  nn::TGCN model(3, 4, rng);
  TempFile f("prev_intact");
  io::save_checkpoint(model, f.path());
  const std::string before = file_bytes(f.path());
  EXPECT_THROW(io::save_checkpoint(model, "/nonexistent-dir/stgraph.ckpt"),
               StgError);
  EXPECT_EQ(file_bytes(f.path()), before);
}

TEST(IoAtomicity, NoTempFileLeftBehindAfterSave) {
  Rng rng(1);
  nn::TGCN model(3, 4, rng);
  TempFile f("no_tmp");
  io::save_checkpoint(model, f.path());
  const std::string tmp = f.path() + ".tmp." + std::to_string(::getpid());
  std::ifstream probe(tmp, std::ios::binary);
  EXPECT_FALSE(probe.good()) << "temp file '" << tmp << "' left behind";
}

TEST(IoEdgeList, ParsesCommentsAndCompactsIds) {
  TempFile f("edges");
  {
    std::ofstream out(f.path());
    out << "# comment line\n"
        << "% another comment\n"
        << "100 200\n"
        << "200 300\n"
        << "100 300\n";
  }
  uint32_t n = 0;
  EdgeList edges = io::read_edge_list(f.path(), &n);
  EXPECT_EQ(n, 3u);
  // First-appearance compaction: 100→0, 200→1, 300→2.
  EXPECT_EQ(edges, (EdgeList{{0, 1}, {1, 2}, {0, 2}}));
}

TEST(IoEdgeList, TimestampColumnOrdersRows) {
  TempFile f("edges_ts");
  {
    std::ofstream out(f.path());
    out << "1 2 300\n"
        << "3 4 100\n"
        << "5 6 200\n";
  }
  uint32_t n = 0;
  EdgeList edges = io::read_edge_list(f.path(), &n);
  ASSERT_EQ(edges.size(), 3u);
  // Sorted by timestamp: (3,4), (5,6), (1,2) — then id-compacted in that
  // order: 3→0, 4→1, 5→2, 6→3, 1→4, 2→5.
  EXPECT_EQ(edges, (EdgeList{{0, 1}, {2, 3}, {4, 5}}));
  EXPECT_EQ(n, 6u);
}

TEST(IoEdgeList, MalformedLineRejected) {
  TempFile f("edges_bad");
  {
    std::ofstream out(f.path());
    out << "1 2\n"
        << "garbage\n";
  }
  EXPECT_THROW(io::read_edge_list(f.path(), nullptr), StgError);
}

TEST(IoEdgeList, WriteReadRoundTrip) {
  const EdgeList edges{{0, 1}, {1, 2}, {2, 0}};
  TempFile f("edges_rt");
  io::write_edge_list(edges, f.path());
  uint32_t n = 0;
  EXPECT_EQ(io::read_edge_list(f.path(), &n), edges);
  EXPECT_EQ(n, 3u);
}

TEST(IoEdgeList, MissingFileRejected) {
  EXPECT_THROW(io::read_edge_list("/nonexistent/stgraph/file", nullptr),
               StgError);
}

}  // namespace
}  // namespace stgraph
