// Serving observability (the serve subsystem's stats surface): per-request
// latency percentiles from a fixed-bucket histogram, micro-batch
// occupancy, queue pressure, delta-ingestion throughput, and the
// robustness counters (typed shed reasons, stale reads, circuit trips,
// watchdog stalls, WAL volume, recovery cost). Everything is lock-free
// (atomic counters and buckets) so the hot predict path never takes a
// lock to record a sample, and report() can be called from any thread
// while the server runs. The JSON form of a report is what
// `run_all.sh serve-smoke` writes to BENCH_serve.json and what
// bench_serve_robust writes to BENCH_serve_robust.json.
//
// Accounting invariant (asserted by the chaos harness): every request the
// server ever accepted a call for lands in exactly one of
//   requests (fulfilled) | stale_served | failed | shed[reason],
// so `issued == requests + stale_served + failed + shed_total` — nothing
// is silently dropped.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "serve/health.hpp"
#include "util/thread_annotations.hpp"

namespace stgraph::serve {

// Concurrency contract: every member of LatencyHistogram and ServerStats
// is a std::atomic touched with relaxed ordering — there is deliberately
// no lock for Clang Thread Safety Analysis to track here (the analysis
// sees atomics as unguarded by design). The TSan job is what exercises
// this file's lock-freedom claims; the lint job proves the rest of the
// serve layer never reaches these counters while holding exec_mu_ out of
// order (see Server's STG_ACQUIRED_BEFORE chain).

/// Fixed-bucket log-2 latency histogram: bucket i counts samples in
/// [2^i, 2^(i+1)) microseconds, so 40 buckets span 1 µs to ~12.7 days.
/// percentile() returns the upper bound of the bucket holding the
/// requested rank — resolution is a factor of two, which is what a serving
/// dashboard needs (is p99 1 ms or 1 s?), at the cost of zero allocation
/// and O(1) recording.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(double micros);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double mean_micros() const;
  double max_micros() const {
    return static_cast<double>(max_us_.load(std::memory_order_relaxed));
  }
  /// p in (0, 100]; returns 0 when no samples were recorded.
  double percentile(double p) const;
  void reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// One coherent read of the counters (values are sampled independently —
/// a report taken mid-flight can be off by in-flight requests, never torn).
struct StatsReport {
  // ---- request path ----------------------------------------------------
  uint64_t requests = 0;        ///< fulfilled predict() calls (fresh step)
  uint64_t rows = 0;            ///< output rows served across all requests
  uint64_t failed = 0;          ///< requests failed (dispatch fault, bad node)
  uint64_t rejected = 0;        ///< total shed requests (= shed_total)
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  double mean_us = 0.0, max_us = 0.0;
  // ---- load shedding (typed rejection taxonomy) ------------------------
  uint64_t shed_queue_full = 0;       ///< bounded queue / quota exceeded
  uint64_t shed_deadline_expired = 0; ///< at admission, dequeue or completion
  uint64_t shed_draining = 0;         ///< rejected during stop()
  uint64_t shed_circuit_open = 0;     ///< circuit open, no stale step
  uint64_t shed_total = 0;
  // ---- degraded mode ---------------------------------------------------
  uint64_t stale_served = 0;    ///< predicts answered from the last-good step
  uint64_t circuit_trips = 0;   ///< circuit open transitions
  uint64_t watchdog_stalls = 0; ///< exec-loop stalls the watchdog flagged
  std::string health = "starting";
  // ---- batching --------------------------------------------------------
  uint64_t batches = 0;         ///< micro-batches dispatched
  double batch_occupancy = 0.0; ///< mean requests per dispatched batch
  std::size_t max_queue_depth = 0;
  // ---- execution -------------------------------------------------------
  uint64_t forward_passes = 0;  ///< fresh forward executions
  uint64_t cache_hits = 0;      ///< batches/ingests served from the cached step
  double forward_seconds = 0.0;
  // ---- ingestion -------------------------------------------------------
  uint64_t deltas_applied = 0;
  uint64_t delta_edges = 0;     ///< additions + deletions across all batches
  double ingest_seconds = 0.0;
  double delta_edges_per_sec = 0.0;
  // ---- durability ------------------------------------------------------
  uint64_t wal_records = 0;     ///< records appended this run
  uint64_t wal_bytes = 0;
  uint64_t recovered_records = 0;  ///< WAL records replayed by recover()
  double recovery_seconds = 0.0;   ///< wall time of the last recover()
  // ---- snapshot lifecycle ----------------------------------------------
  uint64_t snapshot_swaps = 0;

  std::string to_json() const;
};

/// Thread-safe counter bundle owned by serve::Server.
class ServerStats {
 public:
  void record_request(double total_micros, uint64_t output_rows);
  void record_batch(std::size_t occupancy);
  void record_forward(double seconds);
  void record_cache_hit();
  void record_failed(uint64_t n);
  void record_shed(ShedReason reason, uint64_t n = 1);
  void record_stale_served(double total_micros, uint64_t output_rows);
  void record_circuit_trip();
  void record_watchdog_stall();
  void record_ingest(uint64_t edges, double seconds);
  void record_wal_append(uint64_t bytes);
  void set_recovery(uint64_t records, double seconds);
  void record_swap();

  const LatencyHistogram& latency() const { return latency_; }
  uint64_t shed(ShedReason reason) const {
    return shed_[static_cast<std::size_t>(reason)].load(
        std::memory_order_relaxed);
  }
  /// `max_queue_depth` comes from the request queue, which tracks it;
  /// `health` from the server's state machine.
  StatsReport report(std::size_t max_queue_depth,
                     HealthState health = HealthState::kStarting) const;

 private:
  LatencyHistogram latency_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> failed_{0};
  std::array<std::atomic<uint64_t>, 4> shed_{};
  std::atomic<uint64_t> stale_served_{0};
  std::atomic<uint64_t> circuit_trips_{0};
  std::atomic<uint64_t> watchdog_stalls_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_requests_{0};
  std::atomic<uint64_t> forward_passes_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> forward_ns_{0};
  std::atomic<uint64_t> deltas_applied_{0};
  std::atomic<uint64_t> delta_edges_{0};
  std::atomic<uint64_t> ingest_ns_{0};
  std::atomic<uint64_t> wal_records_{0};
  std::atomic<uint64_t> wal_bytes_{0};
  std::atomic<uint64_t> recovered_records_{0};
  std::atomic<uint64_t> recovery_ns_{0};
  std::atomic<uint64_t> snapshot_swaps_{0};
};

}  // namespace stgraph::serve
