#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "util/check.hpp"

namespace stgraph {

std::vector<uint32_t> out_degrees(uint32_t num_nodes, const EdgeList& edges) {
  std::vector<uint32_t> deg(num_nodes, 0);
  for (const auto& [s, d] : edges) {
    STG_CHECK(s < num_nodes && d < num_nodes, "edge endpoint out of range");
    ++deg[s];
  }
  return deg;
}

std::vector<uint32_t> in_degrees(uint32_t num_nodes, const EdgeList& edges) {
  std::vector<uint32_t> deg(num_nodes, 0);
  for (const auto& [s, d] : edges) {
    STG_CHECK(s < num_nodes && d < num_nodes, "edge endpoint out of range");
    ++deg[d];
  }
  return deg;
}

DegreeStats degree_stats(const std::vector<uint32_t>& degrees) {
  STG_CHECK(!degrees.empty(), "degree_stats of empty graph");
  DegreeStats s;
  s.min = *std::min_element(degrees.begin(), degrees.end());
  s.max = *std::max_element(degrees.begin(), degrees.end());
  double total = 0;
  for (uint32_t d : degrees) total += d;
  const double n = static_cast<double>(degrees.size());
  s.mean = total / n;
  double var = 0;
  for (uint32_t d : degrees) var += (d - s.mean) * (d - s.mean);
  s.stddev = std::sqrt(var / n);
  // Gini via the sorted-rank formula: G = (2 Σ_i i·x_i)/(n Σ x) - (n+1)/n.
  std::vector<uint32_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  if (total > 0) {
    double weighted = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i)
      weighted += static_cast<double>(i + 1) * sorted[i];
    s.gini = 2.0 * weighted / (n * total) - (n + 1.0) / n;
  }
  return s;
}

double edge_density(uint32_t num_nodes, std::size_t num_edges) {
  STG_CHECK(num_nodes > 0, "density of empty graph");
  return static_cast<double>(num_edges) /
         (static_cast<double>(num_nodes) * num_nodes);
}

double reciprocity(const EdgeList& edges) {
  if (edges.empty()) return 0.0;
  std::unordered_set<uint64_t> present;
  present.reserve(edges.size() * 2);
  for (const auto& [s, d] : edges)
    present.insert((static_cast<uint64_t>(s) << 32) | d);
  std::size_t mutual = 0;
  for (const auto& [s, d] : edges)
    mutual += present.count((static_cast<uint64_t>(d) << 32) | s);
  return static_cast<double>(mutual) / static_cast<double>(edges.size());
}

std::string summarize_graph(uint32_t num_nodes, const EdgeList& edges) {
  const DegreeStats out = degree_stats(out_degrees(num_nodes, edges));
  std::ostringstream oss;
  oss << "n=" << num_nodes << " m=" << edges.size()
      << " density=" << edge_density(num_nodes, edges.size())
      << " deg[mean=" << out.mean << " max=" << out.max
      << " gini=" << out.gini << "]"
      << " reciprocity=" << reciprocity(edges);
  return oss.str();
}

}  // namespace stgraph
