// Multi-core scaling sweep (PR 8): end-to-end GPMA training epoch time
// across a (threads x shards x pipeline) grid on the Fig. 9 DTDG
// datasets, emitted as BENCH_scaling.json.
//
// The ThreadPool freezes its lane count at first use, so every grid point
// runs in a fresh subprocess: the parent re-execs this binary with
// --child and the STGRAPH_NUM_THREADS / STGRAPH_SHARDS / STGRAPH_PIPELINE
// environment of that point, and aggregates the one-line JSON results.
//
// The sweep doubles as a parity audit: the final-epoch loss is compared
// bit-for-bit (hexfloat) across every configuration of a dataset — a
// shard count or schedule that changes a single ulp fails the bench.
//
//   --max-threads=N   cap the thread sweep (default: min(8, cores))
//   --hidden=N        model width (default 32; compute-heavy on purpose so
//                     the sweep exposes kernel + pipeline scaling)
//   --features=N      signal feature size (default 16)
//   --json-out=PATH   default BENCH_scaling.json; empty to skip
//   --datasets=K      sweep only the first K Fig. 9 datasets (default all)
// plus the common options (--scale-dynamic=, --epochs=, --warmup=,
// --seq-len=).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/shard.hpp"
#include "nn/models.hpp"
#include "runtime/parallel.hpp"
#include "util/rng.hpp"

using namespace stgraph;
using namespace stgraph::bench;

namespace {

constexpr uint64_t kModelSeed = 0xBEEF;

struct ScalingArgs {
  bool child = false;
  std::string dataset;
  uint32_t max_threads = 0;
  int64_t hidden = 32;
  int64_t features = 16;
  uint32_t datasets = 0;  // 0 = all
  double assert_speedup = 0.0;  // exit nonzero if best speedup falls below
  std::string json_out = "BENCH_scaling.json";
};

ScalingArgs parse_scaling(int argc, char** argv) {
  ScalingArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      if (arg.rfind(prefix, 0) == 0) return arg.c_str() + std::strlen(prefix);
      return nullptr;
    };
    if (arg == "--child") a.child = true;
    else if (const char* v = value("--dataset=")) a.dataset = v;
    else if (const char* v2 = value("--max-threads=")) a.max_threads = std::stoul(v2);
    else if (const char* v3 = value("--hidden=")) a.hidden = std::stol(v3);
    else if (const char* v4 = value("--features=")) a.features = std::stol(v4);
    else if (const char* v5 = value("--datasets=")) a.datasets = std::stoul(v5);
    else if (const char* v6 = value("--json-out=")) a.json_out = v6;
    else if (const char* v7 = value("--assert-speedup=")) a.assert_speedup = std::stod(v7);
  }
  return a;
}

std::string hex_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Child: run one grid point and print a single machine-readable line.
// Threads / shards / pipeline arrive via the environment set by the parent.
// ---------------------------------------------------------------------------

int run_child(const ScalingArgs& sa, const BenchOptions& opts) {
  datasets::DynamicLoadOptions dyo;
  dyo.scale = opts.scale_dynamic;
  dyo.feature_size = sa.features;

  datasets::DynamicDataset picked;
  bool found = false;
  for (auto& ds : datasets::load_all_dynamic(dyo)) {
    if (ds.name == sa.dataset) {
      picked = std::move(ds);
      found = true;
      break;
    }
  }
  if (!found) {
    std::cerr << "unknown dataset: " << sa.dataset << "\n";
    return 1;
  }

  const DtdgEvents events = datasets::make_dtdg(picked, 5.0);
  const datasets::TemporalSignal signal =
      datasets::make_dynamic_signal(events, dyo);

  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = opts.sequence_length;
  cfg.task = core::Task::kLinkPrediction;

  Rng rng(kModelSeed);
  GpmaGraph graph(events);  // shards + pipeline resolved from the env
  nn::TGCNEncoder model(signal.feature_size(), sa.hidden, rng);
  core::STGraphTrainer trainer(graph, model, signal, cfg);

  for (uint32_t w = 0; w < opts.warmup_epochs; ++w) trainer.train_epoch();
  core::EpochStats sum;
  for (uint32_t e = 0; e < opts.epochs; ++e) {
    const core::EpochStats s = trainer.train_epoch();
    sum.seconds += s.seconds;
    sum.graph_update_seconds += s.graph_update_seconds;
    sum.gnn_seconds += s.gnn_seconds;
    sum.position_seconds += s.position_seconds;
    sum.view_seconds += s.view_seconds;
    sum.forward_seconds += s.forward_seconds;
    sum.backward_seconds += s.backward_seconds;
    sum.stall_seconds += s.stall_seconds;
    sum.prefetch_hits += s.prefetch_hits;
    sum.prefetch_misses += s.prefetch_misses;
    sum.loss = s.loss;
  }
  const double inv = 1.0 / std::max(1u, opts.epochs);

  // Halo traffic a distributed deployment would pay for this partition.
  uint64_t cut_edges = 0;
  if (graph.num_shards() > 1) {
    const SnapshotView v = graph.get_graph(0);
    std::vector<uint32_t> ind(v.num_nodes), outd(v.num_nodes);
    for (uint32_t i = 0; i < v.num_nodes; ++i) {
      ind[i] = v.in_degrees[i];
      outd[i] = v.out_degrees[i];
    }
    const ShardPlan plan = build_shard_plan(
        v.num_nodes, ind.data(), outd.data(), v.in_view.node_ids,
        v.out_view.node_ids, graph.num_shards());
    cut_edges = count_cut_edges(v.out_view, plan);
  }

  std::cout << "SCALING {\"dataset\": \"" << sa.dataset
            << "\", \"threads\": " << device::lane_count()
            << ", \"shards\": " << graph.num_shards()
            << ", \"pipeline\": " << (graph.pipeline_enabled() ? 1 : 0)
            << ", \"epoch_s\": " << sum.seconds * inv
            << ", \"loss_hex\": \"" << hex_double(sum.loss)
            << "\", \"update_s\": " << sum.graph_update_seconds * inv
            << ", \"gnn_s\": " << sum.gnn_seconds * inv
            << ", \"position_s\": " << sum.position_seconds * inv
            << ", \"view_s\": " << sum.view_seconds * inv
            << ", \"forward_s\": " << sum.forward_seconds * inv
            << ", \"backward_s\": " << sum.backward_seconds * inv
            << ", \"stall_s\": " << sum.stall_seconds * inv
            << ", \"pf_hits\": " << sum.prefetch_hits
            << ", \"pf_misses\": " << sum.prefetch_misses
            << ", \"cut_edges\": " << cut_edges << "}\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Parent: sweep the grid via subprocesses and aggregate.
// ---------------------------------------------------------------------------

std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

struct Point {
  uint32_t threads = 1;
  uint32_t shards = 1;
  bool pipeline = false;
  std::string raw;  // child JSON line (without the SCALING prefix)

  double num(const char* key) const {
    const std::string pat = std::string("\"") + key + "\": ";
    const std::size_t at = raw.find(pat);
    if (at == std::string::npos) return 0.0;
    return std::strtod(raw.c_str() + at + pat.size(), nullptr);
  }
  std::string str(const char* key) const {
    const std::string pat = std::string("\"") + key + "\": \"";
    const std::size_t at = raw.find(pat);
    if (at == std::string::npos) return "";
    const std::size_t b = at + pat.size();
    return raw.substr(b, raw.find('"', b) - b);
  }
};

bool run_point(const std::string& exe, const std::string& dataset,
               const ScalingArgs& sa, const BenchOptions& opts, Point& p) {
  std::ostringstream cmd;
  cmd << "STGRAPH_NUM_THREADS=" << p.threads
      << " STGRAPH_SHARDS=" << p.shards
      << " STGRAPH_PIPELINE=" << (p.pipeline ? "on" : "off") << " '" << exe
      << "' --child --dataset='" << dataset << "'"
      << " --scale-dynamic=" << opts.scale_dynamic
      << " --epochs=" << opts.epochs << " --warmup=" << opts.warmup_epochs
      << " --seq-len=" << opts.sequence_length << " --hidden=" << sa.hidden
      << " --features=" << sa.features;
  FILE* pipe = ::popen(cmd.str().c_str(), "r");
  if (!pipe) return false;
  std::string line, out;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe)) {
    line = buf;
    if (line.rfind("SCALING ", 0) == 0) out = line.substr(8);
  }
  const int rc = ::pclose(pipe);
  if (rc != 0 || out.empty()) {
    std::cerr << "grid point failed (threads=" << p.threads
              << " shards=" << p.shards << "): rc=" << rc << "\n";
    return false;
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  p.raw = out;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  const ScalingArgs sa = parse_scaling(argc, argv);
  if (sa.child) return run_child(sa, opts);

  const std::string exe = self_exe(argv[0]);
  uint32_t max_threads = sa.max_threads;
  if (max_threads == 0) {
    // Always sweep to at least 4 lanes so the grid shape is stable across
    // hosts; on machines with fewer cores the extra points honestly report
    // oversubscription (expect ~1x there, not a parallel win).
    max_threads = std::min(8u, std::max(4u, std::thread::hardware_concurrency()));
  }

  // Thread ladder 1,2,4,...; per thread count one unsharded and one
  // sharded point (2 shards per lane, the auto policy's ratio).
  std::vector<Point> grid;
  grid.push_back({1, 1, false});  // serial reference: pre-PR schedule
  grid.push_back({1, 1, true});   // pipeline-only win
  for (uint32_t n = 2; n <= max_threads; n *= 2) {
    grid.push_back({n, 1, true});
    grid.push_back({n, 2 * n, true});
  }

  datasets::DynamicLoadOptions dyo;
  dyo.scale = opts.scale_dynamic;
  std::vector<std::string> names;
  for (const auto& ds : datasets::load_all_dynamic(dyo)) {
    names.push_back(ds.name);
    if (sa.datasets > 0 && names.size() >= sa.datasets) break;
  }

  CsvWriter csv({"dataset", "threads", "shards", "pipeline", "epoch_s",
                 "speedup", "update_s", "gnn_s", "stall_s", "pf_hits",
                 "pf_misses", "cut_edges", "parity"});
  std::ostringstream rows_json;
  bool first_row = true;
  bool parity_ok = true;
  double best_speedup = 0.0;
  double best_speedup_4t = 0.0;
  std::string best_dataset_4t;

  for (const std::string& name : names) {
    double base_epoch_s = 0.0;
    std::string base_loss;
    for (Point point : grid) {
      if (!run_point(exe, name, sa, opts, point)) return 1;
      const double epoch_s = point.num("epoch_s");
      const std::string loss = point.str("loss_hex");
      if (!point.pipeline && point.threads == 1 && point.shards == 1) {
        base_epoch_s = epoch_s;
        base_loss = loss;
      }
      const bool parity = loss == base_loss;
      parity_ok = parity_ok && parity;
      const double speedup = epoch_s > 0.0 ? base_epoch_s / epoch_s : 0.0;
      // The serial reference scores exactly 1x by construction; only the
      // sharded/pipelined points count toward the --assert-speedup floor.
      if (point.pipeline || point.threads > 1 || point.shards > 1)
        best_speedup = std::max(best_speedup, speedup);
      if (point.threads == 4 && speedup > best_speedup_4t) {
        best_speedup_4t = speedup;
        best_dataset_4t = name;
      }
      csv.add_row({name, std::to_string(point.threads),
                   std::to_string(static_cast<uint32_t>(point.num("shards"))),
                   point.pipeline ? "on" : "off", CsvWriter::fmt(epoch_s, 4),
                   CsvWriter::fmt(speedup, 2),
                   CsvWriter::fmt(point.num("update_s"), 4),
                   CsvWriter::fmt(point.num("gnn_s"), 4),
                   CsvWriter::fmt(point.num("stall_s"), 4),
                   std::to_string(static_cast<uint64_t>(point.num("pf_hits"))),
                   std::to_string(
                       static_cast<uint64_t>(point.num("pf_misses"))),
                   std::to_string(
                       static_cast<uint64_t>(point.num("cut_edges"))),
                   parity ? "ok" : "DIVERGED"});
      rows_json << (first_row ? "" : ",") << "\n    {"
                << point.raw.substr(1, point.raw.rfind('}') - 1)
                << ", \"requested_threads\": " << point.threads
                << ", \"requested_shards\": " << point.shards
                << ", \"speedup\": " << speedup
                << ", \"parity\": " << (parity ? "true" : "false") << "}";
      first_row = false;
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  emit("scaling_threads_shards", csv, opts);

  if (!sa.json_out.empty()) {
    std::ofstream f(sa.json_out);
    f << "{\n  \"bench\": \"scaling_threads_shards\",\n  \"rows\": ["
      << rows_json.str() << "\n  ],\n  \"parity_ok\": "
      << (parity_ok ? "true" : "false")
      << ",\n  \"best_speedup\": " << best_speedup
      << ",\n  \"best_speedup_at_4_threads\": " << best_speedup_4t
      << ",\n  \"best_dataset_at_4_threads\": \"" << best_dataset_4t
      << "\"\n}\n";
    std::cout << "(wrote " << sa.json_out << ", best 4-thread speedup "
              << CsvWriter::fmt(best_speedup_4t, 2) << "x on "
              << best_dataset_4t << ")\n";
  }
  if (!parity_ok) {
    std::cerr << "PARITY FAILURE: a sharded/pipelined configuration "
                 "diverged from the serial reference\n";
    return 1;
  }
  if (sa.assert_speedup > 0.0 && best_speedup < sa.assert_speedup) {
    std::cerr << "SPEEDUP FAILURE: best " << best_speedup << "x < required "
              << sa.assert_speedup << "x\n";
    return 1;
  }
  return 0;
}
