// Deterministic fault-injection facility: trigger arithmetic (always /
// once / on:N / every:N / p:F / 1inN), spec-string parsing, seeded
// probabilistic determinism, and registry bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace stgraph {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::disable_all(); }
};

TEST_F(FailpointTest, UnarmedPointNeverFiresButCountsHits) {
  const uint64_t before = failpoint::hit_count("test.unarmed");
  for (int i = 0; i < 5; ++i)
    EXPECT_FALSE(failpoint::should_fire("test.unarmed"));
  EXPECT_EQ(failpoint::hit_count("test.unarmed"), before + 5);
  EXPECT_EQ(failpoint::fire_count("test.unarmed"), 0u);
}

TEST_F(FailpointTest, AlwaysFiresEveryHit) {
  failpoint::enable("test.always", failpoint::Spec::always());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(failpoint::should_fire("test.always"));
  EXPECT_EQ(failpoint::fire_count("test.always"), 3u);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  failpoint::enable("test.once", failpoint::Spec::once());
  EXPECT_TRUE(failpoint::should_fire("test.once"));
  EXPECT_FALSE(failpoint::should_fire("test.once"));
  EXPECT_FALSE(failpoint::should_fire("test.once"));
}

TEST_F(FailpointTest, OnNthFiresOnlyOnTheNthHitAfterEnable) {
  failpoint::enable("test.on3", failpoint::Spec::on_nth(3));
  EXPECT_FALSE(failpoint::should_fire("test.on3"));
  EXPECT_FALSE(failpoint::should_fire("test.on3"));
  EXPECT_TRUE(failpoint::should_fire("test.on3"));
  EXPECT_FALSE(failpoint::should_fire("test.on3"));
  // Re-enabling resets the per-enable hit counter.
  failpoint::enable("test.on3", failpoint::Spec::on_nth(2));
  EXPECT_FALSE(failpoint::should_fire("test.on3"));
  EXPECT_TRUE(failpoint::should_fire("test.on3"));
}

TEST_F(FailpointTest, EveryNthFiresPeriodically) {
  failpoint::enable("test.every2", failpoint::Spec::every_nth(2));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i)
    fired.push_back(failpoint::should_fire("test.every2"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));
}

TEST_F(FailpointTest, DisableStopsFiring) {
  failpoint::enable("test.disable", failpoint::Spec::always());
  EXPECT_TRUE(failpoint::should_fire("test.disable"));
  failpoint::disable("test.disable");
  EXPECT_FALSE(failpoint::should_fire("test.disable"));
}

TEST_F(FailpointTest, SpecStringActivatesMultiplePoints) {
  failpoint::activate_from_spec(
      "test.spec.a; test.spec.b=on:2, test.spec.c=every:3");
  EXPECT_TRUE(failpoint::should_fire("test.spec.a"));  // bare name = always
  EXPECT_FALSE(failpoint::should_fire("test.spec.b"));
  EXPECT_TRUE(failpoint::should_fire("test.spec.b"));
  EXPECT_FALSE(failpoint::should_fire("test.spec.c"));
  EXPECT_FALSE(failpoint::should_fire("test.spec.c"));
  EXPECT_TRUE(failpoint::should_fire("test.spec.c"));
}

TEST_F(FailpointTest, MalformedSpecRejected) {
  EXPECT_THROW(failpoint::activate_from_spec("test.bad=sometimes"), StgError);
  EXPECT_THROW(failpoint::activate_from_spec("test.bad=on:zero"), StgError);
  EXPECT_THROW(failpoint::activate_from_spec("test.bad=every:0"), StgError);
  EXPECT_THROW(failpoint::activate_from_spec("=always"), StgError);
}

TEST_F(FailpointTest, RegisteredListsKnownPoints) {
  failpoint::should_fire("test.registered.hit");
  failpoint::enable("test.registered.armed", failpoint::Spec::always());
  const auto names = failpoint::registered();
  auto has = [&](const std::string& n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("test.registered.hit"));
  EXPECT_TRUE(has("test.registered.armed"));
}

TEST_F(FailpointTest, ProbSpecParsesAndRespectsBounds) {
  failpoint::activate_from_spec("test.prob.a=p:0.5; test.prob.b=prob:1.0");
  failpoint::set_seed(42);
  // p=1.0 fires on every hit, like always().
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(failpoint::should_fire("test.prob.b"));
  // p=0 never fires.
  failpoint::enable("test.prob.zero", failpoint::Spec::prob(0.0));
  for (int i = 0; i < 4; ++i)
    EXPECT_FALSE(failpoint::should_fire("test.prob.zero"));
  EXPECT_THROW(failpoint::activate_from_spec("test.bad=p:1.5"), StgError);
  EXPECT_THROW(failpoint::activate_from_spec("test.bad=p:-0.1"), StgError);
  EXPECT_THROW(failpoint::activate_from_spec("test.bad=p:nope"), StgError);
}

TEST_F(FailpointTest, ProbIsDeterministicUnderTheSameSeed) {
  auto draw = [](uint64_t seed) {
    failpoint::disable_all();
    failpoint::enable("test.prob.det", failpoint::Spec::prob(0.3));
    failpoint::set_seed(seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i)
      fired.push_back(failpoint::should_fire("test.prob.det"));
    return fired;
  };
  const auto a = draw(7);
  const auto b = draw(7);
  const auto c = draw(8);
  EXPECT_EQ(a, b);   // same seed, same schedule
  EXPECT_NE(a, c);   // different seed, different schedule
  // The trigger frequency lands in a sane band around p (64 draws, p=0.3).
  const auto fires = std::count(a.begin(), a.end(), true);
  EXPECT_GT(fires, 4);
  EXPECT_LT(fires, 40);
}

TEST_F(FailpointTest, OneInNSpecIsProbOneOverN) {
  failpoint::activate_from_spec("test.onein=1in5");
  failpoint::set_seed(11);
  uint64_t fires = 0;
  constexpr int kHits = 2000;
  for (int i = 0; i < kHits; ++i)
    if (failpoint::should_fire("test.onein")) ++fires;
  EXPECT_EQ(failpoint::fire_count("test.onein"), fires);
  EXPECT_EQ(failpoint::hit_count("test.onein"), kHits);
  // ~400 expected; 6-sigma band keeps this deterministic-seed test stable.
  EXPECT_GT(fires, 280u);
  EXPECT_LT(fires, 520u);
  EXPECT_THROW(failpoint::activate_from_spec("test.bad=1in0"), StgError);
}

TEST_F(FailpointTest, MacroRunsActionOnlyWhenFired) {
  failpoint::enable("test.macro", failpoint::Spec::on_nth(2));
  int runs = 0;
  STG_FAILPOINT("test.macro", ++runs);
  EXPECT_EQ(runs, 0);
  STG_FAILPOINT("test.macro", ++runs);
  EXPECT_EQ(runs, 1);
  STG_FAILPOINT("test.macro", ++runs);
  EXPECT_EQ(runs, 1);
}

}  // namespace
}  // namespace stgraph
