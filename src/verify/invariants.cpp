#include "verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <exception>
#include <sstream>

#include "compiler/autodiff.hpp"
#include "core/executor.hpp"
#include "gpma/gpma_graph.hpp"
#include "serve/wal.hpp"

namespace stgraph::verify {
namespace {

// Cap the findings one checker emits: a corrupted array should read as a
// handful of representative violations, not one line per slot.
constexpr int kMaxFindingsPerChecker = 8;

/// "eid not seen yet" sentinel for the transpose cross-check.
constexpr uint64_t kUnset = ~0ULL;

class Failer {
 public:
  Failer(Report& r, std::string checker)
      : report_(r), checker_(std::move(checker)) {}

  template <typename... Args>
  void operator()(const Args&... args) {
    ++count_;
    if (count_ > kMaxFindingsPerChecker) return;
    std::ostringstream oss;
    (oss << ... << args);
    if (count_ == kMaxFindingsPerChecker) oss << " (further findings elided)";
    report_.fail(checker_, oss.str());
  }

 private:
  Report& report_;
  std::string checker_;
  int count_ = 0;
};

}  // namespace

Report check_csr(const CsrView& v, const std::string& which) {
  Report r;
  Failer fail(r, "check_csr/" + which);
  const uint32_t n = v.num_nodes;
  const uint32_t m = v.num_edges;

  r.note_check();
  if (!v.row_offset || (m > 0 && (!v.col_indices || !v.eids))) {
    fail("null adjacency arrays (row_offset=", static_cast<const void*>(
             v.row_offset),
         ", col_indices=", static_cast<const void*>(v.col_indices),
         ", eids=", static_cast<const void*>(v.eids), ")");
    return r;
  }

  // Row offsets: monotone; compact views span exactly [0, m], gapped views
  // end at the slot-array capacity.
  r.note_check();
  for (uint32_t i = 0; i < n; ++i) {
    if (v.row_offset[i] > v.row_offset[i + 1]) {
      fail("row_offset not monotone at row ", i, ": ", v.row_offset[i], " > ",
           v.row_offset[i + 1]);
    }
  }
  if (!v.has_gaps) {
    r.note_check();
    if (v.row_offset[0] != 0)
      fail("compact view row_offset[0] = ", v.row_offset[0], ", want 0");
    if (v.row_offset[n] != m)
      fail("compact view row_offset[", n, "] = ", v.row_offset[n],
           " != edge count ", m);
  }
  // Bound all content reads by the backing array length so a corrupted
  // offset cannot walk past the allocation: compact arrays hold exactly m
  // entries; gapped arrays hold ro[n] slots by construction.
  const uint32_t span_end =
      v.has_gaps ? v.row_offset[n] : std::min(v.row_offset[n], m);

  // Column / eid contents. Live eids must form a permutation of 0..m-1;
  // in a gapped view the gap pattern of cols and eids must coincide and
  // live eids must ascend in slot order (relabel-in-slot-order contract).
  std::vector<uint8_t> seen(m, 0);
  uint32_t live = 0;
  int64_t last_eid = -1;
  r.note_check();
  if (v.has_gaps) {
    for (uint32_t j = 0; j < v.row_offset[0]; ++j)
      if (v.col_indices[j] != kSpace) {
        fail("live slot ", j, " before row_offset[0]=", v.row_offset[0]);
        break;
      }
  }
  for (uint32_t row = 0; row < n; ++row) {
    for (uint32_t j = v.row_offset[row]; j < v.row_offset[row + 1]; ++j) {
      if (j >= span_end) break;  // bounded by the (possibly corrupt) offsets
      const uint32_t c = v.col_indices[j];
      const uint32_t e = v.eids[j];
      if (c == kSpace) {
        if (!v.has_gaps) {
          fail("gap sentinel in compact view at slot ", j, " (row ", row, ")");
        } else if (e != kSpace) {
          fail("slot ", j, " is a column gap but carries eid ", e);
        }
        continue;
      }
      ++live;
      if (c >= n) {
        fail("column out of bounds at slot ", j, ": ", c, " >= ", n);
        continue;
      }
      if (e >= m) {
        fail("eid out of bounds at slot ", j, ": ", e, " >= ", m);
        continue;
      }
      if (seen[e]) fail("duplicate eid ", e, " at slot ", j);
      seen[e] = 1;
      if (v.has_gaps) {
        if (static_cast<int64_t>(e) <= last_eid)
          fail("gapped-view eids not ascending in slot order: eid ", e,
               " at slot ", j, " after eid ", last_eid);
        last_eid = e;
      }
    }
  }
  r.note_check();
  if (live != m)
    fail("live entry count ", live, " != declared edge count ", m);
  return r;
}

Report check_transpose(const CsrView& in_view, const CsrView& out_view) {
  Report r;
  Failer fail(r, "check_transpose");
  r.note_check();
  if (in_view.num_edges != out_view.num_edges) {
    fail("edge counts disagree: in_view ", in_view.num_edges, " vs out_view ",
         out_view.num_edges);
    return r;
  }
  const uint32_t m = in_view.num_edges;
  if (m == 0) return r;
  if (!in_view.row_offset || !out_view.row_offset || !in_view.col_indices ||
      !out_view.col_indices || !in_view.eids || !out_view.eids) {
    fail("null arrays; run check_csr on each view first");
    return r;
  }

  auto collect = [m](const CsrView& v, bool rows_are_src) {
    std::vector<uint64_t> by_eid(m, kUnset);
    for (uint32_t row = 0; row < v.num_nodes; ++row) {
      for (uint32_t j = v.row_offset[row]; j < v.row_offset[row + 1]; ++j) {
        const uint32_t c = v.col_indices[j];
        if (c == kSpace) continue;
        const uint32_t e = v.eids[j];
        if (e >= m) continue;  // reported by check_csr
        const uint32_t src = rows_are_src ? row : c;
        const uint32_t dst = rows_are_src ? c : row;
        by_eid[e] = (static_cast<uint64_t>(src) << 32) | dst;
      }
    }
    return by_eid;
  };
  const std::vector<uint64_t> fwd = collect(in_view, /*rows_are_src=*/false);
  const std::vector<uint64_t> bwd = collect(out_view, /*rows_are_src=*/true);
  r.note_check();
  for (uint32_t e = 0; e < m; ++e) {
    if (fwd[e] == bwd[e] && fwd[e] != kUnset) continue;
    if (fwd[e] == kUnset)
      fail("eid ", e, " missing from the in-view");
    else if (bwd[e] == kUnset)
      fail("eid ", e, " missing from the out-view");
    else
      fail("eid ", e, " names edge (", static_cast<uint32_t>(bwd[e] >> 32),
           ",", static_cast<uint32_t>(bwd[e]), ") in the out-view but (",
           static_cast<uint32_t>(fwd[e] >> 32), ",",
           static_cast<uint32_t>(fwd[e]),
           ") in the in-view — transpose bijection broken");
  }
  return r;
}

Report check_degree_order(const uint32_t* order, const uint32_t* deg,
                          uint32_t n, const std::string& which) {
  Report r;
  Failer fail(r, "check_degree_order/" + which);
  r.note_check();
  if (n == 0) return r;
  if (!order || !deg) {
    fail("null order/degree arrays");
    return r;
  }
  std::vector<uint8_t> seen(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t v = order[i];
    if (v >= n) {
      fail("order[", i, "] = ", v, " out of range ", n);
      continue;
    }
    if (seen[v]) fail("vertex ", v, " appears twice (position ", i, ")");
    seen[v] = 1;
  }
  r.note_check();
  for (uint32_t i = 0; i + 1 < n; ++i) {
    const uint32_t a = order[i], b = order[i + 1];
    if (a >= n || b >= n) continue;
    // Canonical strict total order: (degree desc, id asc).
    const bool canonical = deg[a] != deg[b] ? deg[a] > deg[b] : a < b;
    if (!canonical)
      fail("not degree-sorted at position ", i, ": vertex ", a, " (deg ",
           deg[a], ") before vertex ", b, " (deg ", deg[b], ")");
  }
  return r;
}

Report check_degrees(const CsrView& v, const uint32_t* deg,
                     const std::string& which) {
  Report r;
  Failer fail(r, "check_degrees/" + which);
  r.note_check();
  if (!deg || !v.row_offset || (v.num_edges > 0 && !v.col_indices)) {
    if (v.num_nodes > 0) fail("null degree/adjacency arrays");
    return r;
  }
  for (uint32_t row = 0; row < v.num_nodes; ++row) {
    uint32_t live = 0;
    for (uint32_t j = v.row_offset[row]; j < v.row_offset[row + 1]; ++j)
      if (v.col_indices[j] != kSpace) ++live;
    if (live != deg[row])
      fail("degree array says ", deg[row], " for row ", row,
           " but the view holds ", live, " live neighbors");
  }
  return r;
}

Report check_gcn_coef(const SnapshotView& v) {
  Report r;
  Failer fail(r, "check_gcn_coef");
  if (!v.gcn_coef) return r;  // cache disabled: nothing to verify
  r.note_check();
  if (!v.in_degrees || !v.in_view.row_offset || !v.in_view.col_indices ||
      !v.in_view.eids) {
    fail("view carries a coefficient cache but no in-view to verify against");
    return r;
  }
  const uint32_t m = v.num_edges;
  for (uint32_t dst = 0; dst < v.in_view.num_nodes; ++dst) {
    const uint32_t dv = v.in_degrees[dst];
    for (uint32_t j = v.in_view.row_offset[dst];
         j < v.in_view.row_offset[dst + 1]; ++j) {
      const uint32_t src = v.in_view.col_indices[j];
      if (src == kSpace) continue;
      const uint32_t e = v.in_view.eids[j];
      if (e >= m || src >= v.num_nodes) continue;  // check_csr's findings
      const float want = gcn_norm_coef(v.in_degrees[src], dv);
      const float got = v.gcn_coef[e];
      // Bit-exact contract: cached and inline coefficients must agree to
      // the last bit (the kernel parity fuzz depends on it).
      if (std::memcmp(&want, &got, sizeof(float)) != 0)
        fail("cached coefficient for eid ", e, " (edge ", src, "->", dst,
             ") is ", got, ", recompute gives ", want);
    }
  }
  return r;
}

Report check_snapshot_view(const SnapshotView& v) {
  Report r;
  {
    Failer fail(r, "check_snapshot_view");
    r.note_check();
    if (v.in_view.num_edges != v.num_edges ||
        v.out_view.num_edges != v.num_edges)
      fail("edge counts disagree: view ", v.num_edges, ", in_view ",
           v.in_view.num_edges, ", out_view ", v.out_view.num_edges);
    if (v.in_view.num_nodes != v.num_nodes ||
        v.out_view.num_nodes != v.num_nodes)
      fail("node counts disagree: view ", v.num_nodes, ", in_view ",
           v.in_view.num_nodes, ", out_view ", v.out_view.num_nodes);
  }
  r.merge(check_csr(v.in_view, "in_view"));
  r.merge(check_csr(v.out_view, "out_view"));
  r.merge(check_transpose(v.in_view, v.out_view));
  r.merge(check_degrees(v.in_view, v.in_degrees, "in"));
  r.merge(check_degrees(v.out_view, v.out_degrees, "out"));
  if (v.in_view.node_ids)
    r.merge(check_degree_order(v.in_view.node_ids, v.in_degrees, v.num_nodes,
                               "fwd"));
  if (v.out_view.node_ids)
    r.merge(check_degree_order(v.out_view.node_ids, v.out_degrees,
                               v.num_nodes, "bwd"));
  r.merge(check_gcn_coef(v));
  return r;
}

Report check_pma(const Pma& pma) {
  Report r;
  Failer fail(r, "check_pma");
  r.note_check();
  std::string why;
  if (!pma.check_invariants(&why)) fail(why);

  // Per-leaf live counts agree with the slot array (the rank source the
  // incremental relabel seeds from — a stale count silently shifts labels).
  r.note_check();
  const uint64_t* slots = pma.slots().data();
  const std::size_t seg = pma.segment_size();
  const auto& counts = pma.leaf_counts();
  if (counts.size() * seg != pma.capacity()) {
    fail("leaf_counts covers ", counts.size() * seg, " slots, capacity is ",
         pma.capacity());
    return r;
  }
  for (std::size_t l = 0; l < counts.size(); ++l) {
    uint32_t live = 0;
    for (std::size_t i = l * seg; i < (l + 1) * seg; ++i)
      if (slots[i] != Pma::kEmptyKey) ++live;
    if (live != counts[l])
      fail("leaf ", l, " holds ", live, " live keys but leaf_counts says ",
           counts[l]);
  }
  return r;
}

Report check_pma_view_agreement(const Pma& pma, const SnapshotView& v) {
  Report r;
  Failer fail(r, "check_pma_view_agreement");
  const CsrView& out = v.out_view;
  r.note_check();
  if (!out.has_gaps || !out.row_offset || !out.col_indices) {
    fail("out-view is not a gapped PMA view");
    return r;
  }
  if (out.row_offset[out.num_nodes] != pma.capacity()) {
    fail("view spans ", out.row_offset[out.num_nodes],
         " slots, PMA capacity is ", pma.capacity());
    return r;
  }
  r.note_check();
  if (v.num_edges != pma.size())
    fail("view reports ", v.num_edges, " edges, PMA holds ", pma.size());

  const uint64_t* slots = pma.slots().data();
  r.note_check();
  for (uint32_t j = 0; j < out.row_offset[0]; ++j)
    if (slots[j] != Pma::kEmptyKey)
      fail("PMA slot ", j, " is live but lies before row_offset[0]=",
           out.row_offset[0]);
  std::size_t live = 0;
  for (uint32_t s = 0; s < out.num_nodes; ++s) {
    for (uint32_t j = out.row_offset[s]; j < out.row_offset[s + 1]; ++j) {
      const uint32_t c = out.col_indices[j];
      if (c == kSpace) {
        if (slots[j] != Pma::kEmptyKey)
          fail("view slot ", j, " is a gap but PMA slot holds key (",
               edge_key_src(slots[j]), ",", edge_key_dst(slots[j]), ")");
        continue;
      }
      ++live;
      const uint64_t want = make_edge_key(s, c);
      if (slots[j] != want) {
        if (slots[j] == Pma::kEmptyKey)
          fail("view slot ", j, " holds edge (", s, ",", c,
               ") but the PMA slot is empty");
        else
          fail("view slot ", j, " holds edge (", s, ",", c,
               ") but the PMA slot holds (", edge_key_src(slots[j]), ",",
               edge_key_dst(slots[j]), ")");
      }
    }
  }
  r.note_check();
  if (live != pma.size())
    fail("view holds ", live, " live slots, PMA reports ", pma.size());
  return r;
}

Report check_program(const compiler::Program& p) {
  Report r;
  Failer fail(r, "check_program");
  const int n_inputs = p.num_inputs();

  r.note_check();
  for (std::size_t t = 0; t < p.terms.size(); ++t) {
    const compiler::MessageTerm& term = p.terms[t];
    if (term.input < 0 || term.input >= n_inputs)
      fail("term ", t, " reads input slot ", term.input, ", program has ",
           n_inputs);
    for (const compiler::Coef& c : term.coefs) {
      if (static_cast<uint8_t>(c.kind) >
          static_cast<uint8_t>(compiler::CoefKind::kEdgeWeight))
        fail("term ", t, " has an invalid coefficient kind ",
             static_cast<int>(c.kind));
      if (c.kind == compiler::CoefKind::kConst && !std::isfinite(c.value))
        fail("term ", t, " has a non-finite constant coefficient ", c.value);
    }
  }
  r.note_check();
  if (p.include_self) {
    if (p.self_input < 0 || p.self_input >= n_inputs)
      fail("self term reads input slot ", p.self_input, ", program has ",
           n_inputs);
    for (const compiler::Coef& c : p.self_coefs)
      if (c.kind == compiler::CoefKind::kConst && !std::isfinite(c.value))
        fail("self term has a non-finite constant coefficient ", c.value);
  }
  r.note_check();
  if (!std::isfinite(p.out_scale))
    fail("out_scale is non-finite (", p.out_scale, ")");
  r.note_check();
  if (p.agg == compiler::AggKind::kMax && p.terms.size() != 1)
    fail("max aggregation requires exactly one message term, got ",
         p.terms.size());

  // Every feature input must have a derivable backward rule — the traced
  // forward program is only executable end to end if autodiff accepts it.
  for (int input = 0; input < n_inputs; ++input) {
    r.note_check();
    try {
      const compiler::Program bwd = compiler::differentiate(p, input);
      (void)bwd;
    } catch (const std::exception& e) {
      fail("no backward rule for input ", input, ": ", e.what());
    }
  }
  r.note_check();
  try {
    (void)compiler::backward_needs(p);
  } catch (const std::exception& e) {
    fail("backward_needs analysis failed: ", e.what());
  }
  return r;
}

Report check_protocol_trace(const std::vector<std::string>& trace) {
  Report r;
  Failer fail(r, "check_protocol_trace");
  std::vector<uint32_t> graph_stack;
  std::vector<uint64_t> state_stack;
  auto suffix_num = [](const std::string& line, const char* prefix,
                       uint64_t* out) {
    const std::size_t plen = std::strlen(prefix);
    if (line.compare(0, plen, prefix) != 0) return false;
    *out = std::strtoull(line.c_str() + plen, nullptr, 10);
    return true;
  };
  r.note_check();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::string& line = trace[i];
    uint64_t n = 0;
    if (suffix_num(line, "push graph t=", &n)) {
      graph_stack.push_back(static_cast<uint32_t>(n));
    } else if (suffix_num(line, "pop graph t=", &n)) {
      if (graph_stack.empty()) {
        fail("event ", i, " '", line, "': Graph Stack already empty");
      } else if (graph_stack.back() != n) {
        fail("event ", i, " '", line, "': popped t=", n,
             " but the Graph Stack top is t=", graph_stack.back(),
             " — forward/backward order violated");
        graph_stack.pop_back();
      } else {
        graph_stack.pop_back();
      }
    } else if (suffix_num(line, "push state #", &n)) {
      state_stack.push_back(n);
    } else if (suffix_num(line, "pop state #", &n)) {
      if (state_stack.empty()) {
        fail("event ", i, " '", line, "': State Stack already empty");
      } else if (state_stack.back() != n) {
        fail("event ", i, " '", line, "': popped ticket #", n,
             " but the State Stack top is #", state_stack.back(),
             " — LIFO discipline violated");
        state_stack.pop_back();
      } else {
        state_stack.pop_back();
      }
    } else if (line.compare(0, 9, "abort seq") == 0) {
      graph_stack.clear();
      state_stack.clear();
    }
  }
  r.note_check();
  if (!graph_stack.empty())
    fail("trace ends with ", graph_stack.size(),
         " snapshots still on the Graph Stack (top t=", graph_stack.back(),
         ")");
  if (!state_stack.empty())
    fail("trace ends with ", state_stack.size(),
         " entries still on the State Stack (top #", state_stack.back(), ")");
  return r;
}

Report check_executor_drained(const core::TemporalExecutor& ex) {
  Report r;
  Failer fail(r, "check_executor_drained");
  r.note_check();
  if (!ex.state_stack().empty())
    fail("State Stack not drained: depth ", ex.state_stack().depth());
  if (!ex.graph_stack().empty())
    fail("Graph Stack not drained: depth ", ex.graph_stack().depth());
  return r;
}

Report check_graph_at(STGraphBase& g, uint32_t t) {
  const SnapshotView v = g.get_graph(t);
  Report r = check_snapshot_view(v);
  {
    Failer fail(r, "check_graph_at");
    r.note_check();
    if (g.num_edges_at(t) != v.num_edges)
      fail(g.format_name(), " reports ", g.num_edges_at(t),
           " edges at t=", t, " but the view holds ", v.num_edges);
  }
  if (auto* gpma = dynamic_cast<GpmaGraph*>(&g)) {
    r.merge(check_pma(gpma->pma()));
    r.merge(check_pma_view_agreement(gpma->pma(), v));
  }
  return r;
}

Report check_graph(STGraphBase& g) {
  Report r;
  const uint32_t T = g.num_timestamps();
  for (uint32_t t = 0; t < T; ++t) r.merge(check_graph_at(g, t));
  // Return sweep: delta-replaying formats roll their position structure
  // backward here, exercising the inverse-delta path too.
  if (g.is_dynamic() && T > 1) r.merge(check_graph_at(g, 0));
  return r;
}

Report check_wal(const std::string& path) {
  Report r;
  Failer fail(r, "check_wal");

  serve::wal::ReadResult rr;
  try {
    rr = serve::wal::read(path);  // header + per-record CRC framing
  } catch (const std::exception& e) {
    fail("unreadable WAL: ", e.what());
    return r;
  }
  r.note_check();  // header magic/version accepted

  if (rr.torn_tail)
    fail("torn tail: ", rr.total_bytes - rr.valid_bytes,
         " trailing bytes past the last valid record at offset ",
         rr.valid_bytes, " (Server::recover() truncates this)");
  r.note_check();

  if (rr.records.empty()) {
    fail("no valid records (a live log always starts with a start record)");
    return r;
  }
  if (rr.records.front().type != serve::wal::RecordType::kStart)
    fail("record 0 has type ",
         static_cast<int>(rr.records.front().type), ", want start (1)");
  r.note_check();

  const int64_t feat_cols =
      rr.records.front().features.defined() ? rr.records.front().features.cols()
                                            : -1;
  uint32_t prev_time = 0;
  uint64_t prev_version = 0;
  for (std::size_t i = 0; i < rr.records.size(); ++i) {
    const auto& rec = rr.records[i];
    if (i > 0 && rec.type != serve::wal::RecordType::kIngest)
      fail("record ", i, " has type ", static_cast<int>(rec.type),
           ", want ingest (2)");
    if (!rec.features.defined())
      fail("record ", i, " carries no feature matrix");
    else if (rec.features.cols() != feat_cols)
      fail("record ", i, " features have ", rec.features.cols(),
           " cols, want ", feat_cols, " (start record's width)");
    if (i > 0) {
      if (rec.time != prev_time + 1)
        fail("record ", i, " time ", rec.time, " does not advance t=",
             prev_time, " by exactly one");
      if (rec.version <= prev_version)
        fail("record ", i, " version ", rec.version,
             " not strictly greater than ", prev_version);
    }
    prev_time = rec.time;
    prev_version = rec.version;
    r.note_check();
  }
  return r;
}

}  // namespace stgraph::verify
