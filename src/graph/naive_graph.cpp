#include "graph/naive_graph.hpp"

#include "util/check.hpp"

namespace stgraph {

NaiveGraph::NaiveGraph(const DtdgEvents& events)
    : num_nodes_(events.num_nodes) {
  snapshots_.reserve(events.num_timestamps());
  for (uint32_t t = 0; t < events.num_timestamps(); ++t) {
    // Edges are relabelled 0..m_t-1 per snapshot; the paper notes this
    // preprocessing cost (and the double storage) as NaiveGraph's downside.
    const EdgeList edges = events.snapshot_edges(t);
    std::vector<CooEdge> coo;
    coo.reserve(edges.size());
    uint32_t eid = 0;
    for (const auto& [s, d] : edges) coo.push_back({s, d, eid++});
    snapshots_.push_back(build_snapshot(num_nodes_, coo));
  }
}

uint32_t NaiveGraph::num_edges_at(uint32_t t) const {
  return snapshot(t).num_edges;
}

const GraphSnapshot& NaiveGraph::snapshot(uint32_t t) const {
  STG_CHECK(t < snapshots_.size(), "timestamp ", t, " out of range ",
            snapshots_.size());
  return snapshots_[t];
}

SnapshotView NaiveGraph::get_graph(uint32_t t) {
  const GraphSnapshot& s = snapshot(t);
  SnapshotView v;
  v.in_view = view_of(s.in_csr);
  v.out_view = view_of(s.out_csr);
  v.in_degrees = s.in_degrees.data();
  v.out_degrees = s.out_degrees.data();
  v.num_nodes = s.num_nodes;
  v.num_edges = s.num_edges;
  return v;
}

SnapshotView NaiveGraph::get_backward_graph(uint32_t t) { return get_graph(t); }

std::size_t NaiveGraph::device_bytes() const {
  std::size_t total = 0;
  for (const GraphSnapshot& s : snapshots_) total += s.device_bytes();
  return total;
}

}  // namespace stgraph
