// Bounded MPSC request queue for the serving runtime: many client threads
// push predict requests, one execution thread pops them in micro-batches.
// The bound turns overload into explicit load shedding (push() returns
// false, the server reports the request as rejected) instead of unbounded
// memory growth — the same back-pressure posture a network-facing replica
// would need, kept in-process here.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <vector>

#include "runtime/mutex.hpp"
#include "tensor/tensor.hpp"
#include "util/thread_annotations.hpp"

namespace stgraph::serve {

/// What a fulfilled predict request resolves to.
struct PredictResult {
  uint32_t timestamp = 0;   ///< graph time the forward pass ran at
  uint64_t version = 0;     ///< server state version (bumps per ingest/swap)
  bool stale = false;       ///< served from the last-good cached step while
                            ///< the circuit was open (bounded staleness)
  Tensor outputs;           ///< one row per requested node (all nodes if
                            ///< the request listed none)
  double queue_micros = 0;  ///< time spent waiting for the batcher
  double total_micros = 0;  ///< enqueue -> promise fulfilled
};

struct PredictRequest {
  std::vector<uint32_t> nodes;  ///< empty = all nodes
  std::promise<PredictResult> promise;
  std::chrono::steady_clock::time_point enqueued;
  /// Absolute deadline; time_point::max() = none. Enforced at dequeue
  /// (expired requests shed without executing) and at completion.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

class RequestQueue {
 public:
  enum class PushResult : uint8_t {
    kOk,
    kFull,    ///< at capacity — load shed (queue_full)
    kClosed,  ///< close()d — server draining (draining)
  };

  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Request is untouched unless kOk is returned.
  PushResult push(PredictRequest&& req);

  /// Blocks until at least one request is available or the queue is closed,
  /// then moves out up to `max_batch` requests. An empty result means
  /// closed-and-drained: the exec loop should exit.
  std::vector<PredictRequest> pop_batch(std::size_t max_batch);

  /// Move out everything queued right now without blocking (watchdog
  /// flush, drain-time rejection). Never returns requests to the queue.
  std::vector<PredictRequest> drain_all();

  /// Wakes the popper; subsequent pushes fail, already-queued requests
  /// still drain (the exec loop rejects them promptly while draining).
  void close();
  /// Re-arm after close() so the server can be start()ed again.
  void reopen();

  std::size_t depth() const;
  std::size_t max_depth() const;

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  ConditionVariable cv_;
  std::deque<PredictRequest> queue_ STG_GUARDED_BY(mu_);
  std::size_t max_depth_ STG_GUARDED_BY(mu_) = 0;
  bool closed_ STG_GUARDED_BY(mu_) = false;
};

}  // namespace stgraph::serve
