// Optimization passes over the vertex-program IR, mirroring Seastar's
// pipeline of IR rewrites before CUDA code generation:
//
//  * constant folding      — collapse products of kConst coefficients,
//  * mean lowering         — rewrite mean aggregation as sum with an
//                            InvDegree coefficient so there is one fused
//                            kernel shape,
//  * term deduplication    — merge additive terms with identical coefs and
//                            input (their constants add),
//  * dead term elimination — drop terms whose folded constant is zero.
#pragma once

#include "compiler/ir.hpp"

namespace stgraph::compiler {

/// Run the full pass pipeline; idempotent.
Program optimize(Program p);

// Individual passes (exposed for pass unit tests).
Program fold_constants(Program p);
Program lower_mean(Program p);
Program dedup_terms(Program p);
Program eliminate_dead_terms(Program p);

}  // namespace stgraph::compiler
