#include "runtime/sort.hpp"

#include <algorithm>
#include <array>

#include "runtime/parallel.hpp"

namespace stgraph::device {
namespace {

constexpr int kRadixBits = 8;
constexpr std::size_t kBuckets = 1u << kRadixBits;

// One LSD pass over `pass`-th byte; stable.
void radix_pass(const std::vector<uint64_t>& in, std::vector<uint64_t>& out,
                const std::vector<uint64_t>* payload_in,
                std::vector<uint64_t>* payload_out, int pass) {
  const int shift = pass * kRadixBits;
  std::array<std::size_t, kBuckets> count{};
  for (uint64_t k : in) ++count[(k >> shift) & (kBuckets - 1)];
  std::size_t sum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    std::size_t c = count[b];
    count[b] = sum;
    sum += c;
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::size_t b = (in[i] >> shift) & (kBuckets - 1);
    out[count[b]] = in[i];
    if (payload_in) (*payload_out)[count[b]] = (*payload_in)[i];
    ++count[b];
  }
}

bool pass_needed(const std::vector<uint64_t>& keys, int pass) {
  // Skip passes whose byte is constant across the whole batch (common:
  // graph ids rarely use all 8 bytes).
  const int shift = pass * kRadixBits;
  if (keys.empty()) return false;
  const uint64_t first = (keys[0] >> shift) & (kBuckets - 1);
  for (uint64_t k : keys) {
    if (((k >> shift) & (kBuckets - 1)) != first) return true;
  }
  return false;
}

}  // namespace

void radix_sort(std::vector<uint64_t>& keys) {
  if (keys.size() < 2) return;
  std::vector<uint64_t> tmp(keys.size());
  std::vector<uint64_t>* src = &keys;
  std::vector<uint64_t>* dst = &tmp;
  for (int pass = 0; pass < 8; ++pass) {
    if (!pass_needed(*src, pass)) continue;
    radix_pass(*src, *dst, nullptr, nullptr, pass);
    std::swap(src, dst);
  }
  if (src != &keys) keys = std::move(*src);
}

void radix_sort_pairs(std::vector<uint64_t>& keys,
                      std::vector<uint64_t>& payload) {
  if (keys.size() < 2) return;
  std::vector<uint64_t> ktmp(keys.size()), ptmp(payload.size());
  std::vector<uint64_t>*ks = &keys, *kd = &ktmp, *ps = &payload, *pd = &ptmp;
  for (int pass = 0; pass < 8; ++pass) {
    if (!pass_needed(*ks, pass)) continue;
    radix_pass(*ks, *kd, ps, pd, pass);
    std::swap(ks, kd);
    std::swap(ps, pd);
  }
  if (ks != &keys) {
    keys = std::move(*ks);
    payload = std::move(*ps);
  }
}

std::vector<uint32_t> sort_indices(
    std::size_t n, const std::function<bool(uint32_t, uint32_t)>& less) {
  std::vector<uint32_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
  auto& pool = ThreadPool::instance();
  // Effective lanes so nested use (a pool lane or a ScopedInline worker)
  // sorts the whole range serially instead of only the first chunk.
  const unsigned lanes = detail::effective_lanes(pool);
  if (lanes == 1 || n < (1u << 14)) {
    std::stable_sort(idx.begin(), idx.end(), less);
    return idx;
  }
  // Per-lane sort of contiguous chunks, then sequential k-way merge via
  // repeated inplace_merge (lanes is small, merge depth is log2(lanes)).
  const std::size_t chunk = (n + lanes - 1) / lanes;
  pool.run_on_lanes([&](unsigned lane) {
    const std::size_t b = static_cast<std::size_t>(lane) * chunk;
    if (b >= n) return;
    const std::size_t e = std::min(n, b + chunk);
    std::stable_sort(idx.begin() + b, idx.begin() + e, less);
  });
  for (std::size_t width = chunk; width < n; width *= 2) {
    for (std::size_t b = 0; b + width < n; b += 2 * width) {
      const std::size_t mid = b + width;
      const std::size_t e = std::min(n, b + 2 * width);
      std::inplace_merge(idx.begin() + b, idx.begin() + mid, idx.begin() + e,
                         less);
    }
  }
  return idx;
}

}  // namespace stgraph::device
