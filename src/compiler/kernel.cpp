#include "compiler/kernel.hpp"

#include <cmath>
#include <limits>

#include "compiler/passes.hpp"
#include "runtime/parallel.hpp"
#include "util/check.hpp"

namespace stgraph::compiler {

KernelSpec compile(Program p) {
  KernelSpec spec;
  spec.program = optimize(std::move(p));
  if (spec.program.agg == AggKind::kMax) {
    STG_CHECK(spec.program.terms.size() == 1,
              "max aggregation supports exactly one message term");
    STG_CHECK(spec.program.out_scale > 0.0f,
              "max aggregation requires a positive output scale");
  } else {
    STG_CHECK(spec.program.agg == AggKind::kSum,
              "mean lowering should leave only sum aggregation");
  }
  spec.num_inputs = spec.program.num_inputs();
  auto scan = [&](const std::vector<Coef>& coefs) {
    for (const Coef& c : coefs) {
      if (c.kind == CoefKind::kEdgeWeight) spec.uses_edge_weight = true;
      if (c.kind == CoefKind::kGcnNorm || c.kind == CoefKind::kInvDegree ||
          c.kind == CoefKind::kInvDegreeP1)
        spec.uses_degrees = true;
    }
  };
  for (const MessageTerm& t : spec.program.terms) scan(t.coefs);
  if (spec.program.include_self) scan(spec.program.self_coefs);
  return spec;
}

namespace {

// Evaluate a coefficient product for edge producer→consumer.
inline float eval_coefs(const std::vector<Coef>& coefs, uint32_t producer,
                        uint32_t consumer, uint32_t eid,
                        const uint32_t* in_deg, const float* edge_w) {
  float c = 1.0f;
  for (const Coef& k : coefs) {
    switch (k.kind) {
      case CoefKind::kConst:
        c *= k.value;
        break;
      case CoefKind::kGcnNorm: {
        const float dp = static_cast<float>(in_deg[producer] + 1);
        const float dc = static_cast<float>(in_deg[consumer] + 1);
        c *= 1.0f / std::sqrt(dp * dc);
        break;
      }
      case CoefKind::kInvDegree: {
        const uint32_t d = in_deg[consumer];
        c *= d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
        break;
      }
      case CoefKind::kInvDegreeP1:
        c *= 1.0f / static_cast<float>(in_deg[consumer] + 1);
        break;
      case CoefKind::kEdgeWeight:
        c *= edge_w[eid];
        break;
    }
  }
  return c;
}

// Max-aggregation forward: element-wise max over neighbor candidates
// (plus the optional self candidate), recording the winning producer per
// (row, feature) cell into argmax_out.
inline void process_row_max(const KernelSpec& spec, const KernelArgs& a,
                            uint32_t row, uint32_t f0, uint32_t f1) {
  const Program& p = spec.program;
  float* orow = a.out + static_cast<std::size_t>(row) * a.num_feats;
  uint32_t* arow = a.argmax_out + static_cast<std::size_t>(row) * a.num_feats;
  for (uint32_t f = f0; f < f1; ++f) {
    orow[f] = -std::numeric_limits<float>::infinity();
    arow[f] = kSpace;
  }
  const MessageTerm& term = p.terms[0];
  const uint32_t start = a.view.row_offset[row];
  const uint32_t end = a.view.row_offset[row + 1];
  for (uint32_t j = start; j < end; ++j) {
    const uint32_t col = a.view.col_indices[j];
    if (a.view.has_gaps && col == kSpace) continue;
    const uint32_t eid = a.view.eids ? a.view.eids[j] : j;
    const float c =
        eval_coefs(term.coefs, col, row, eid, a.in_degrees, a.edge_weights);
    const float* src =
        a.inputs[term.input] + static_cast<std::size_t>(col) * a.num_feats;
    for (uint32_t f = f0; f < f1; ++f) {
      const float val = c * src[f];
      if (val > orow[f]) {
        orow[f] = val;
        arow[f] = col;
      }
    }
  }
  if (p.include_self) {
    const float c = eval_coefs(p.self_coefs, row, row, 0, a.in_degrees,
                               a.edge_weights);
    const float* src =
        a.self_features + static_cast<std::size_t>(row) * a.num_feats;
    for (uint32_t f = f0; f < f1; ++f) {
      const float val = c * src[f];
      if (val > orow[f]) {
        orow[f] = val;
        arow[f] = row;
      }
    }
  }
  for (uint32_t f = f0; f < f1; ++f) {
    if (arow[f] == kSpace) {
      orow[f] = 0.0f;  // no candidates: empty max defined as 0
    } else {
      orow[f] *= p.out_scale;
    }
  }
}

// Max-aggregation backward over the transposed view (rows are producers):
// gradient flows only along recorded argmax edges.
inline void process_row_max_bwd(const KernelSpec& spec, const KernelArgs& a,
                                uint32_t row, uint32_t f0, uint32_t f1) {
  const Program& p = spec.program;
  float* orow = a.out + static_cast<std::size_t>(row) * a.num_feats;
  for (uint32_t f = f0; f < f1; ++f) orow[f] = 0.0f;
  const MessageTerm& term = p.terms[0];
  const uint32_t start = a.view.row_offset[row];
  const uint32_t end = a.view.row_offset[row + 1];
  for (uint32_t j = start; j < end; ++j) {
    const uint32_t col = a.view.col_indices[j];  // consumer vertex
    if (a.view.has_gaps && col == kSpace) continue;
    const uint32_t eid = a.view.eids ? a.view.eids[j] : j;
    const uint32_t* amax =
        a.argmax_in + static_cast<std::size_t>(col) * a.num_feats;
    const float* grad =
        a.inputs[term.input] + static_cast<std::size_t>(col) * a.num_feats;
    float c = 0.0f;
    bool have_c = false;
    for (uint32_t f = f0; f < f1; ++f) {
      if (amax[f] != row) continue;
      if (!have_c) {
        c = eval_coefs(term.coefs, row, col, eid, a.in_degrees,
                       a.edge_weights) *
            p.out_scale;
        have_c = true;
      }
      orow[f] += c * grad[f];
    }
  }
  if (p.include_self) {
    // The consumer `row` itself may have picked its self candidate.
    const uint32_t* amax =
        a.argmax_in + static_cast<std::size_t>(row) * a.num_feats;
    const float* grad =
        a.self_features + static_cast<std::size_t>(row) * a.num_feats;
    const float c = eval_coefs(p.self_coefs, row, row, 0, a.in_degrees,
                               a.edge_weights) *
                    p.out_scale;
    for (uint32_t f = f0; f < f1; ++f) {
      if (amax[f] == row) orow[f] += c * grad[f];
    }
  }
}

// Process one row's aggregation over feature columns [f0, f1).
inline void process_row(const KernelSpec& spec, const KernelArgs& a,
                        uint32_t row, uint32_t f0, uint32_t f1) {
  if (spec.program.max_backward) {
    process_row_max_bwd(spec, a, row, f0, f1);
    return;
  }
  if (spec.program.agg == AggKind::kMax) {
    process_row_max(spec, a, row, f0, f1);
    return;
  }
  const Program& p = spec.program;
  float* orow = a.out + static_cast<std::size_t>(row) * a.num_feats;
  for (uint32_t f = f0; f < f1; ++f) orow[f] = 0.0f;

  const uint32_t start = a.view.row_offset[row];
  const uint32_t end = a.view.row_offset[row + 1];
  for (uint32_t j = start; j < end; ++j) {
    const uint32_t col = a.view.col_indices[j];
    if (a.view.has_gaps && col == kSpace) continue;  // skip SPACE slots
    const uint32_t eid = a.view.eids ? a.view.eids[j] : j;
    const uint32_t producer = a.producer_is_col ? col : row;
    const uint32_t consumer = a.producer_is_col ? row : col;
    for (const MessageTerm& t : p.terms) {
      const float c = eval_coefs(t.coefs, producer, consumer, eid,
                                 a.in_degrees, a.edge_weights) *
                      p.out_scale;
      if (c == 0.0f) continue;
      const float* src =
          a.inputs[t.input] + static_cast<std::size_t>(col) * a.num_feats;
      for (uint32_t f = f0; f < f1; ++f) orow[f] += c * src[f];
    }
  }
  if (p.include_self) {
    // Self loop: producer == consumer == row in both directions.
    const float c = eval_coefs(p.self_coefs, row, row, 0, a.in_degrees,
                               a.edge_weights) *
                    p.out_scale;
    const float* src =
        a.self_features + static_cast<std::size_t>(row) * a.num_feats;
    for (uint32_t f = f0; f < f1; ++f) orow[f] += c * src[f];
  }
}

}  // namespace

void run_kernel(const KernelSpec& spec, const KernelArgs& args) {
  STG_CHECK(args.out != nullptr && args.inputs != nullptr,
            "kernel launched without output/input buffers");
  STG_CHECK(!spec.uses_edge_weight || args.edge_weights != nullptr,
            "program uses edge weights but none were bound");
  STG_CHECK(!spec.uses_degrees || args.in_degrees != nullptr,
            "program uses degrees but no degree array was bound");
  STG_CHECK(!spec.program.include_self || args.self_features != nullptr,
            "program has a self term but self_features is unbound");
  STG_CHECK(spec.program.agg != AggKind::kMax || spec.program.max_backward ||
                args.argmax_out != nullptr,
            "max-aggregation forward needs an argmax_out buffer");
  STG_CHECK(!spec.program.max_backward || args.argmax_in != nullptr,
            "max-aggregation backward needs the recorded argmax_in");
  const uint32_t n = args.view.num_nodes;
  const uint32_t F = args.num_feats;
  const uint32_t* order = args.view.node_ids;

  if (F < kFeatureTileThreshold) {
    // One vertex per work item, degree-sorted order, strided lanes.
    device::parallel_for_strided(n, [&](std::size_t i) {
      const uint32_t row = order ? order[i] : static_cast<uint32_t>(i);
      process_row(spec, args, row, 0, F);
    });
  } else {
    // Feature-adaptive: (vertex × feature tile) grid.
    const uint32_t tiles = (F + kFeatureTile - 1) / kFeatureTile;
    device::parallel_for_strided(
        static_cast<std::size_t>(n) * tiles, [&](std::size_t item) {
          const std::size_t i = item / tiles;
          const uint32_t tile = static_cast<uint32_t>(item % tiles);
          const uint32_t row = order ? order[i] : static_cast<uint32_t>(i);
          const uint32_t f0 = tile * kFeatureTile;
          const uint32_t f1 = std::min(F, f0 + kFeatureTile);
          process_row(spec, args, row, f0, f1);
        });
  }
}

}  // namespace stgraph::compiler
