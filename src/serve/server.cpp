#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <future>
#include <limits>
#include <unordered_set>
#include <utility>

#include "runtime/analyze.hpp"
#include "tensor/ops.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace stgraph::serve {

using clock = std::chrono::steady_clock;

namespace {

double micros_between(clock::time_point a, clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

int64_t ns_between(clock::time_point a, clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             clock::now().time_since_epoch())
      .count();
}

std::exception_ptr make_shed(ShedReason reason, const std::string& what) {
  return std::make_exception_ptr(ShedError(reason, what));
}

}  // namespace

std::vector<TenantLane> Server::make_lanes(const ServeConfig& cfg) {
  std::vector<TenantLane> lanes = cfg.tenants;
  if (lanes.empty()) lanes.push_back(TenantLane{});
  std::unordered_set<uint16_t> seen;
  for (const TenantLane& l : lanes)
    STG_CHECK(seen.insert(l.id).second, "serve: duplicate tenant id ", l.id,
              " in ServeConfig::tenants");
  return lanes;
}

Server::Server(STGraphBase& graph, nn::TemporalModel& model, ServeConfig cfg)
    : graph_(graph),
      model_(model),
      cfg_(std::move(cfg)),
      executor_(graph),
      queue_(make_lanes(cfg_), cfg_.queue_capacity),
      admission_(cfg_.max_inflight_ingests) {
  STG_CHECK(cfg_.max_batch > 0, "serve: max_batch must be positive");
  STG_CHECK(cfg_.queue_capacity > 0, "serve: queue_capacity must be positive");
  STG_CHECK(cfg_.num_readers > 0, "serve: num_readers must be positive");
  STG_CHECK(cfg_.circuit_failure_threshold > 0,
            "serve: circuit_failure_threshold must be positive");
  std::vector<uint16_t> tenant_ids;
  tenant_ids.reserve(queue_.num_lanes());
  for (std::size_t i = 0; i < queue_.num_lanes(); ++i)
    tenant_ids.push_back(queue_.lane_id(i));
  stats_.configure(std::move(tenant_ids), cfg_.num_readers);
  readers_.reserve(cfg_.num_readers);
  for (std::size_t i = 0; i < cfg_.num_readers; ++i)
    readers_.push_back(std::make_unique<ReaderContext>(graph_));
}

Server::~Server() { stop(); }

void Server::load(const std::string& path) {
  install(std::make_shared<const ModelSnapshot>(ModelSnapshot::load(path)));
}

void Server::install(std::shared_ptr<const ModelSnapshot> snap) {
  STG_CHECK(snap != nullptr, "serve: cannot install a null snapshot");
  MutexLock lk(exec_mu_);
  snap->install(model_);  // copies params into the live module + eval()
  snapshot_ = std::move(snap);
  stats_.record_swap();
  if (version_ != 0) {
    // Live swap: bump the version so the cached/published step (computed
    // with the old weights) can never serve another batch — readers see
    // the live_version_ move and take the refresh path.
    ++version_;
    publish_view_locked();
  }
}

std::shared_ptr<const ModelSnapshot> Server::snapshot() const {
  MutexLock lk(exec_mu_);
  return snapshot_;
}

void Server::start(Tensor features) {
  STG_CHECK(!running(), "serve: server already running");
  MutexLock lk(exec_mu_);
  STG_CHECK(features.defined() &&
                features.rows() == static_cast<int64_t>(graph_.num_nodes()),
            "serve: start features must have one row per node (",
            graph_.num_nodes(), "), got ",
            features.defined() ? features.rows() : 0);
  time_ = cfg_.start_time;
  STG_CHECK(time_ < graph_.num_timestamps(), "serve: start_time ", time_,
            " outside the graph's ", graph_.num_timestamps(), " timestamps");
  features_ = std::move(features);
  hidden_ = start_hidden_override_.defined()
                ? start_hidden_override_.clone()
                : ((cfg_.resume_hidden && snapshot_ &&
                    snapshot_->hidden().defined())
                       ? snapshot_->hidden().clone()
                       : model_.initial_state(features_.rows()));
  model_.eval();
  executor_.set_inference_mode(true);

  // Build the live edge membership set from the snapshot we start at; it is
  // the server's source of truth for delta validation from here on.
  const SnapshotView view = graph_.get_graph(time_);
  edges_.clear();
  edges_.reserve(static_cast<std::size_t>(view.num_edges) * 2);
  const CsrView& out = view.out_view;
  for (uint32_t s = 0; s < out.num_nodes; ++s)
    for (uint32_t j = out.row_offset[s]; j < out.row_offset[s + 1]; ++j)
      if (out.col_indices[j] != kSpace)
        edges_.insert(edge_key(s, out.col_indices[j]));
  STG_CHECK(edges_.size() == view.num_edges,
            "serve: edge membership scan found ", edges_.size(),
            " edges but the snapshot reports ", view.num_edges);

  version_ = 1;
  step_version_ = 0;
  {
    // No step has been published for this run yet; readers must refresh.
    MutexLock plk(pub_mu_);
    published_.reset();
  }

  // Arm the WAL on a fresh start: journal the exact (features, hidden) we
  // begin from so recovery reseeds bit-identically. recover() opens the
  // writer itself after replay — it must not truncate the log it is
  // reading.
  if (!cfg_.wal_path.empty() && !recovering_) {
    STG_BLOCKING_OK(
        "start(): the kStart record must be durable before the server is "
        "visible — no request can race the journal of its own baseline");
    wal_ = std::make_unique<wal::Writer>(cfg_.wal_path, /*truncate=*/true,
                                         cfg_.wal_sync_every);
    wal::Record rec;
    rec.type = wal::RecordType::kStart;
    rec.time = time_;
    rec.version = version_;
    rec.features = features_;
    rec.hidden = hidden_;
    const uint64_t before = wal_->bytes_written();
    wal_->append(rec);
    stats_.record_wal_append(wal_->bytes_written() - before);
  }

  // Reset the overload/failure machinery for this run.
  admission_.reset();
  consecutive_failures_.store(0, std::memory_order_relaxed);
  circuit_open_.store(false, std::memory_order_relaxed);
  circuit_open_until_ns_.store(0, std::memory_order_relaxed);
  busy_readers_.store(0, std::memory_order_relaxed);
  touch_heartbeat();
  draining_.store(false, std::memory_order_release);

  publish_view_locked();
  queue_.reopen();
  {
    MutexLock wlk(wd_mu_);
    wd_stop_ = false;
  }
  running_.store(true, std::memory_order_release);
  health_.store(HealthState::kHealthy, std::memory_order_release);
  stats_.mark_serving_started(now_ns());
  reader_threads_.reserve(readers_.size());
  for (std::size_t i = 0; i < readers_.size(); ++i)
    reader_threads_.emplace_back(&Server::reader_loop, this, i);
  if (cfg_.watchdog_interval_ms > 0.0)
    watchdog_thread_ = std::thread(&Server::watchdog_loop, this);
  STG_LOG_INFO << "serve: started at t=" << time_ << " ("
               << graph_.format_name() << ", " << view.num_edges
               << " edges, max_batch=" << cfg_.max_batch << ", readers="
               << readers_.size() << ", tenants=" << queue_.num_lanes()
               << (wal_ ? ", wal=" + cfg_.wal_path : std::string()) << ")";
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  health_.store(HealthState::kDraining, std::memory_order_release);
  draining_.store(true, std::memory_order_release);
  queue_.close();  // pushes fail; the reader loops promptly reject the backlog
  {
    MutexLock lk(wd_mu_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  if (analyze::armed()) analyze::on_blocking_call("thread-join");
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  for (std::thread& t : reader_threads_)
    if (t.joinable()) t.join();
  reader_threads_.clear();
  // Belt and braces: nothing should remain after the loops exit, but a
  // parked waiter is the one failure mode drain must never produce.
  std::vector<PredictRequest> leftovers = queue_.drain_all();
  if (!leftovers.empty()) {
    const std::exception_ptr ep =
        make_shed(ShedReason::kDraining, "serve: server draining");
    for (auto& req : leftovers) {
      stats_.record_shed(ShedReason::kDraining, 1, req.tenant_slot);
      fail_request(req, ep);
    }
  }
  {
    MutexLock lk(exec_mu_);
    if (wal_) {
      STG_BLOCKING_OK(
          "stop(): final WAL sync under exec_mu_ — ingest is drained and the "
          "lock is what guarantees no append races the close");
      wal_->sync();
      wal_.reset();
    }
  }
  draining_.store(false, std::memory_order_release);
  health_.store(HealthState::kStarting, std::memory_order_release);
  STG_LOG_INFO << "serve: stopped after "
               << stats_.report(queue_.max_depth()).requests << " requests";
}

void Server::recover(const std::string& checkpoint_path,
                     const std::string& wal_path) {
  STG_CHECK(!running(), "serve: recover() on a running server");
  Timer timer;
  load(checkpoint_path);

  wal::ReadResult rr = wal::read(wal_path);
  STG_CHECK(!rr.records.empty() &&
                rr.records.front().type == wal::RecordType::kStart,
            "serve: WAL '", wal_path,
            "' has no start record — nothing to recover; start() fresh");
  if (rr.torn_tail) {
    STG_LOG_WARN << "serve: WAL '" << wal_path << "' has a torn tail ("
                 << (rr.total_bytes - rr.valid_bytes)
                 << " bytes past the last valid record) — truncating";
    wal::truncate_torn_tail(wal_path, rr);
  }

  const wal::Record& first = rr.records.front();
  cfg_.start_time = first.time;
  cfg_.wal_path = wal_path;
  recovering_ = true;  // start() must not truncate/journal; we do it below
  start_hidden_override_ = first.hidden;
  try {
    start(first.features.clone());
    // Replay every committed step through the normal ingest path: the
    // forward pass is deterministic, so the replayed hidden states — and
    // therefore the republished read view — are bit-identical to the run
    // that wrote the log.
    for (std::size_t i = 1; i < rr.records.size(); ++i) {
      const wal::Record& rec = rr.records[i];
      STG_CHECK(rec.type == wal::RecordType::kIngest,
                "serve: WAL record ", i, " is not an ingest record");
      ingest_with_deadline(rec.delta, rec.features.clone(), /*budget_ns=*/0);
    }
  } catch (...) {
    recovering_ = false;
    start_hidden_override_ = Tensor();
    throw;
  }
  recovering_ = false;
  start_hidden_override_ = Tensor();

  // Resume journaling into the same log (append mode — the replayed
  // records stay; future ingests extend them).
  {
    MutexLock lk(exec_mu_);
    STG_BLOCKING_OK(
        "recover(): reopening the journal in append mode under exec_mu_ — "
        "replay is done and no ingest may slip in before the writer exists");
    wal_ = std::make_unique<wal::Writer>(wal_path, /*truncate=*/false,
                                         cfg_.wal_sync_every);
  }
  stats_.set_recovery(rr.records.size(), timer.seconds());
  STG_LOG_INFO << "serve: recovered " << rr.records.size()
               << " WAL records in " << timer.seconds() << "s (t=" << cfg_.start_time
               << " + " << (rr.records.size() - 1) << " steps"
               << (rr.torn_tail ? ", torn tail truncated" : "") << ")";
}

PredictResult Server::predict(std::vector<uint32_t> nodes) {
  return predict_blocking(std::move(nodes), /*tenant=*/0,
                          default_deadline_ns());
}

PredictResult Server::predict(std::vector<uint32_t> nodes,
                              std::chrono::nanoseconds deadline) {
  return predict_blocking(std::move(nodes), /*tenant=*/0, deadline.count());
}

PredictResult Server::predict(std::vector<uint32_t> nodes,
                              const PredictOptions& opts) {
  const int64_t budget = opts.deadline_ms < 0
                             ? default_deadline_ns()
                             : static_cast<int64_t>(opts.deadline_ms * 1e6);
  return predict_blocking(std::move(nodes), opts.tenant, budget);
}

PredictResult Server::predict_blocking(std::vector<uint32_t> nodes,
                                       uint16_t tenant, int64_t budget_ns) {
  // The blocking API is the async one with a promise behind the callback.
  // The callback fires exactly once (possibly on this thread, on an
  // admission shed) before fut.get() returns, so the stack storage is safe.
  std::promise<PredictResult> prom;
  std::future<PredictResult> fut = prom.get_future();
  submit_predict(std::move(nodes), tenant, budget_ns,
                 [&prom](std::exception_ptr ep, PredictResult&& res) {
                   if (ep)
                     prom.set_exception(ep);
                   else
                     prom.set_value(std::move(res));
                 });
  return fut.get();  // rethrows the batch's failure or shed, if any
}

void Server::predict_async(std::vector<uint32_t> nodes,
                           const PredictOptions& opts, PredictCallback done) {
  const int64_t budget = opts.deadline_ms < 0
                             ? default_deadline_ns()
                             : static_cast<int64_t>(opts.deadline_ms * 1e6);
  submit_predict(std::move(nodes), opts.tenant, budget, std::move(done));
}

void Server::submit_predict(std::vector<uint32_t> nodes, uint16_t tenant,
                            int64_t budget_ns, PredictCallback done) {
  PredictRequest req;
  req.nodes = std::move(nodes);
  req.tenant = tenant;
  req.tenant_slot = queue_.lane_of(tenant);
  req.done = std::move(done);
  req.enqueued = clock::now();
  if (budget_ns > 0)
    req.deadline = req.enqueued + std::chrono::nanoseconds(budget_ns);
  // Every submission is `issued` exactly once, and every exit below —
  // fulfil, stale, fail, shed — records exactly once against the same
  // tenant slot: the accounting identity the chaos harness asserts.
  stats_.record_issued(req.tenant_slot);

  if (!running()) {
    stats_.record_shed(ShedReason::kDraining, 1, req.tenant_slot);
    fail_request(req, make_shed(ShedReason::kDraining,
                                "serve: predict() on a stopped server"));
    return;
  }

  // Circuit open: answer from the last-good step (version-tagged stale)
  // without queueing behind the failing execution path.
  if (circuit_blocks_now()) {
    serve_stale(req);
    return;
  }

  ShedReason reason = ShedReason::kQueueFull;
  if (admission_.admit_predict(budget_ns, &reason) ==
      AdmissionController::Decision::kShed) {
    stats_.record_shed(reason, 1, req.tenant_slot);
    fail_request(
        req,
        make_shed(reason,
                  "serve: admission shed — expected queue delay " +
                      std::to_string(admission_.expected_queue_delay_ns() /
                                     1000) +
                      "us exceeds the deadline budget " +
                      std::to_string(budget_ns / 1000) + "us"));
    return;
  }

  switch (queue_.push(std::move(req))) {
    case TenantQueueSet::PushResult::kOk:
      return;
    case TenantQueueSet::PushResult::kFull:
      stats_.record_shed(ShedReason::kQueueFull, 1, req.tenant_slot);
      fail_request(req,
                   make_shed(ShedReason::kQueueFull,
                             "serve: tenant " + std::to_string(tenant) +
                                 " queue full — request shed"));
      return;
    case TenantQueueSet::PushResult::kClosed:
      stats_.record_shed(ShedReason::kDraining, 1, req.tenant_slot);
      fail_request(req, make_shed(ShedReason::kDraining,
                                  "serve: server draining — request rejected"));
      return;
  }
}

void Server::serve_stale(PredictRequest& req) {
  MutexLock lk(stale_mu_);
  if (!last_good_out_.defined()) {
    stats_.record_shed(ShedReason::kCircuitOpen, 1, req.tenant_slot);
    fail_request(req,
                 make_shed(ShedReason::kCircuitOpen,
                           "serve: circuit open and no last-good step to "
                           "serve"));
    return;
  }
  const auto n = static_cast<uint32_t>(last_good_out_.rows());
  for (uint32_t node : req.nodes) {
    if (node >= n) {
      stats_.record_failed(1, req.tenant_slot);
      fail_request(req, std::make_exception_ptr(StgError(
                            "serve: predict node " + std::to_string(node) +
                            " outside the " + std::to_string(n) +
                            "-node graph")));
      return;
    }
  }
  PredictResult res;
  res.timestamp = last_good_time_;
  res.version = last_good_version_;
  res.stale = true;
  res.outputs = req.nodes.empty() ? last_good_out_
                                  : ops::gather_rows(last_good_out_, req.nodes);
  res.queue_micros = 0.0;
  res.total_micros = micros_between(req.enqueued, clock::now());
  stats_.record_stale_served(res.total_micros,
                             static_cast<uint64_t>(res.outputs.rows()),
                             req.tenant_slot);
  complete_request(req, std::move(res));
}

void Server::ingest(const EdgeDelta& delta, Tensor next_features) {
  ingest_with_deadline(delta, std::move(next_features), default_deadline_ns());
}

void Server::ingest(const EdgeDelta& delta, Tensor next_features,
                    std::chrono::nanoseconds deadline) {
  ingest_with_deadline(delta, std::move(next_features), deadline.count());
}

void Server::ingest_with_deadline(const EdgeDelta& delta, Tensor next_features,
                                  int64_t budget_ns) {
  if (!running()) {
    stats_.record_shed(ShedReason::kDraining);
    throw ShedError(ShedReason::kDraining,
                    "serve: ingest() on a stopped server");
  }
  ShedReason reason = ShedReason::kQueueFull;
  if (admission_.admit_ingest(&reason) ==
      AdmissionController::Decision::kShed) {
    stats_.record_shed(reason);
    throw ShedError(reason, "serve: ingest quota exhausted (" +
                                std::to_string(admission_.inflight_ingests()) +
                                " in flight)");
  }
  struct Ticket {
    AdmissionController& a;
    ~Ticket() { a.release_ingest(); }
  } ticket{admission_};

  Timer timer;
  if (budget_ns > 0) {
    MutexTimedLock lk(exec_mu_, std::chrono::nanoseconds(budget_ns));
    if (!lk.owns()) {
      stats_.record_shed(ShedReason::kDeadlineExpired);
      throw ShedError(ShedReason::kDeadlineExpired,
                      "serve: ingest could not acquire the execution lock "
                      "within its " +
                          std::to_string(budget_ns / 1000000) + "ms deadline");
    }
    ingest_locked(delta, std::move(next_features), timer);
  } else {
    MutexLock lk(exec_mu_);
    ingest_locked(delta, std::move(next_features), timer);
  }
}

void Server::ingest_locked(const EdgeDelta& delta, Tensor next_features,
                           const Timer& timer) {
  const auto n = static_cast<uint32_t>(graph_.num_nodes());
  STG_CHECK(next_features.defined() &&
                next_features.rows() == static_cast<int64_t>(n) &&
                next_features.cols() == features_.cols(),
            "serve: ingest features must be [", n, ", ", features_.cols(),
            "]");

  // ---- validate the whole delta BEFORE touching anything ----------------
  // A delta that fails any check (or the injected fault below) must leave
  // the read view on the previous consistent snapshot.
  std::unordered_set<uint64_t> batch_del;
  batch_del.reserve(delta.deletions.size() * 2);
  for (const auto& [s, d] : delta.deletions) {
    STG_CHECK(s < n && d < n, "serve: delta deletes edge (", s, ",", d,
              ") outside the ", n, "-node graph");
    const uint64_t k = edge_key(s, d);
    STG_CHECK(edges_.count(k) != 0, "serve: delta deletes non-existent edge (",
              s, ",", d, ")");
    STG_CHECK(batch_del.insert(k).second, "serve: delta deletes edge (", s,
              ",", d, ") twice");
  }
  std::unordered_set<uint64_t> batch_add;
  batch_add.reserve(delta.additions.size() * 2);
  for (const auto& [s, d] : delta.additions) {
    STG_CHECK(s < n && d < n, "serve: delta adds edge (", s, ",", d,
              ") outside the ", n, "-node graph");
    const uint64_t k = edge_key(s, d);
    STG_CHECK(edges_.count(k) == 0, "serve: delta re-adds existing edge (", s,
              ",", d, ")");
    STG_CHECK(batch_del.count(k) == 0 && batch_add.insert(k).second,
              "serve: delta lists edge (", s, ",", d, ") more than once");
  }

  STG_FAILPOINT("serve.delta.apply",
                throw StgError("failpoint serve.delta.apply fired at t=" +
                               std::to_string(time_)));

  // Timeline-position checks come before the forward pass and the WAL
  // append: a step that cannot commit must not be journaled.
  const uint32_t next = time_ + 1;
  const bool has_edges = !delta.additions.empty() || !delta.deletions.empty();
  const bool appendable =
      graph_.supports_append() && next == graph_.num_timestamps();
  if (has_edges) {
    STG_CHECK(graph_.supports_append(), "serve: ", graph_.format_name(),
              " cannot ingest edge deltas");
    STG_CHECK(next == graph_.num_timestamps(),
              "serve: can only append at the head of the timeline (t=", next,
              ", head=", graph_.num_timestamps(), ")");
  } else if (!appendable) {
    STG_CHECK(next < graph_.num_timestamps(), "serve: no timestamp ", next,
              " to advance to and ", graph_.format_name(),
              " cannot append one");
  }

  // h_{t+1} is a function of (x_t, h_t) on snapshot t — compute it before
  // the graph moves. Reuses the cached step when a batch already ran here.
  // A failed forward counts against the circuit like a failed batch. The
  // writer path runs on its own executor_ — never a reader's.
  try {
    if (ensure_step_locked(executor_)) stats_.record_cache_hit();
  } catch (...) {
    executor_.abort_sequence();
    step_version_ = 0;
    note_batch_failure();
    throw;
  }

  // ---- write-ahead point -------------------------------------------------
  // The step is fully validated and computed; journal it before mutating
  // the graph. A crash after this append but before the in-memory commit
  // replays to exactly the state this commit would have produced. A
  // *failed* append rolls the file back and aborts the ingest with nothing
  // committed.
  if (wal_) {
    STG_BLOCKING_OK(
        "ingest_locked(): the WAL append under exec_mu_ IS the commit point "
        "— write-ahead means durable before the in-memory mutation, and "
        "exec_mu_ is what orders the journal against concurrent queries");
    wal::Record rec;
    rec.type = wal::RecordType::kIngest;
    rec.time = next;
    rec.version = version_ + 1;
    rec.delta = delta;
    rec.features = next_features;
    const uint64_t before = wal_->bytes_written();
    wal_->append(rec);
    stats_.record_wal_append(wal_->bytes_written() - before);
  }

  if (has_edges || appendable) graph_.append_delta(delta);

  // ---- commit point ------------------------------------------------------
  hidden_ = step_h_next_;
  features_ = std::move(next_features);
  time_ = next;
  ++version_;
  step_version_ = 0;
  for (uint64_t k : batch_del) edges_.erase(k);
  for (uint64_t k : batch_add) edges_.insert(k);
  publish_view_locked();
  note_batch_success();
  stats_.record_ingest(delta.additions.size() + delta.deletions.size(),
                       timer.seconds());
}

ReadView Server::read_view() const {
  MutexLock lk(view_mu_);
  return view_;
}

StatsReport Server::stats() const {
  return stats_.report(queue_.max_depth(),
                       health_.load(std::memory_order_acquire), now_ns());
}

void Server::publish_view_locked() {
  {
    MutexLock lk(view_mu_);
    view_ = {time_, version_, static_cast<uint32_t>(edges_.size())};
  }
  // Readers compare their published step against this mirror without
  // taking exec_mu_; store AFTER the view so a reader that refreshes on a
  // version bump finds the committed state.
  live_version_.store(version_, std::memory_order_release);
}

bool Server::ensure_step_locked(core::TemporalExecutor& exec) {
  if (step_version_ == version_) return true;
  NoGradGuard ng;  // covers whichever thread runs the step (thread-local)
  Timer timer;
  exec.begin_forward_step(time_);
  const float* weights =
      cfg_.edge_weights.empty() ? nullptr : cfg_.edge_weights.data();
  auto [out, h_next] = model_.step(exec, features_, hidden_, weights);
  STG_FAILPOINT("serve.step.poison",
                out.data()[0] = std::numeric_limits<float>::quiet_NaN());
  if (cfg_.check_outputs) {
    const float* p = out.data();
    const int64_t numel = out.rows() * out.cols();
    for (int64_t i = 0; i < numel; ++i)
      STG_CHECK(std::isfinite(p[i]), "serve: non-finite model output at t=",
                time_, " (flat index ", i, ") — refusing to serve poison");
  }
  step_out_ = out;
  step_h_next_ = h_next;
  step_version_ = version_;
  stats_.record_forward(timer.seconds());
  // This step is known good: make it the stale-read fallback.
  {
    MutexLock slk(stale_mu_);
    last_good_out_ = step_out_;
    last_good_time_ = time_;
    last_good_version_ = version_;
  }
  return false;
}

std::shared_ptr<const PublishedStep> Server::published_step() const {
  MutexLock lk(pub_mu_);
  return published_;
}

std::shared_ptr<const PublishedStep> Server::refresh_step(
    std::size_t reader_idx) {
  MutexLock lk(exec_mu_);
  core::TemporalExecutor& exec = readers_[reader_idx]->executor;
  try {
    if (ensure_step_locked(exec)) stats_.record_cache_hit();
  } catch (...) {
    exec.abort_sequence();
    step_version_ = 0;
    throw;
  }
  auto step = std::make_shared<PublishedStep>();
  step->out = step_out_;
  step->time = time_;
  step->version = version_;  // == step_version_ here
  {
    // Published versions are monotone: we hold exec_mu_, and every other
    // publisher does too, so version_ can only have grown since the last
    // publication.
    MutexLock plk(pub_mu_);
    published_ = step;
  }
  return step;
}

bool Server::circuit_blocks_now() const {
  if (!circuit_open_.load(std::memory_order_acquire)) return false;
  // Past the cooldown the circuit half-opens: requests flow to the exec
  // path again as probes; the first success closes it, a failure re-arms
  // the cooldown.
  return now_ns() < circuit_open_until_ns_.load(std::memory_order_acquire);
}

void Server::trip_circuit() {
  circuit_open_until_ns_.store(
      now_ns() + static_cast<int64_t>(cfg_.circuit_cooldown_ms * 1e6),
      std::memory_order_release);
  if (!circuit_open_.exchange(true, std::memory_order_acq_rel)) {
    stats_.record_circuit_trip();
    if (running()) health_.store(HealthState::kDegraded,
                                 std::memory_order_release);
    STG_LOG_WARN << "serve: circuit OPEN (cooldown "
                 << cfg_.circuit_cooldown_ms
                 << "ms) — serving last-good step";
  }
}

void Server::note_batch_failure() {
  const uint32_t fails =
      consecutive_failures_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (fails >= cfg_.circuit_failure_threshold) trip_circuit();
}

void Server::note_batch_success() {
  consecutive_failures_.store(0, std::memory_order_release);
  if (circuit_open_.exchange(false, std::memory_order_acq_rel)) {
    if (running()) health_.store(HealthState::kHealthy,
                                 std::memory_order_release);
    STG_LOG_INFO << "serve: circuit CLOSED — probe succeeded";
  }
}

void Server::reader_loop(std::size_t reader_idx) {
  NoGradGuard ng;
  while (true) {
    std::vector<PredictRequest> batch = queue_.pop_batch(cfg_.max_batch);
    if (batch.empty()) return;  // queue closed and drained
    touch_heartbeat();
    busy_readers_.fetch_add(1, std::memory_order_acq_rel);
    const int64_t t0 = now_ns();
    process_batch(reader_idx, std::move(batch));
    stats_.add_reader_busy(reader_idx,
                           static_cast<uint64_t>(now_ns() - t0));
    busy_readers_.fetch_sub(1, std::memory_order_acq_rel);
    touch_heartbeat();
  }
}

void Server::process_batch(std::size_t reader_idx,
                           std::vector<PredictRequest> batch) {
  const auto dequeued = clock::now();

  // Draining: reject promptly with a typed error — never execute, never
  // leave a waiter parked behind a shutdown.
  if (draining_.load(std::memory_order_acquire)) {
    const std::exception_ptr ep =
        make_shed(ShedReason::kDraining, "serve: server draining");
    for (auto& req : batch) {
      stats_.record_shed(ShedReason::kDraining, 1, req.tenant_slot);
      fail_request(req, ep);
    }
    return;
  }

  // Deadline enforcement at dequeue: an expired request is shed without
  // spending a forward pass on it. Queue-delay samples feed the admission
  // controller's early-shed estimate either way.
  std::vector<PredictRequest> live;
  live.reserve(batch.size());
  for (auto& req : batch) {
    admission_.observe_queue_delay(ns_between(req.enqueued, dequeued));
    if (dequeued > req.deadline) {
      stats_.record_shed(ShedReason::kDeadlineExpired, 1, req.tenant_slot);
      fail_request(req, make_shed(
          ShedReason::kDeadlineExpired,
          "serve: deadline expired after " +
              std::to_string(static_cast<int64_t>(
                  micros_between(req.enqueued, dequeued))) +
              "us in queue"));
    } else {
      live.push_back(std::move(req));
    }
  }
  if (live.empty()) return;
  stats_.record_batch(live.size());

  std::size_t done = 0;
  try {
    // The per-batch failpoints fire OUTSIDE the exec lock: injected batch
    // latency models per-batch service time, and with N readers sleeping
    // concurrently the injected floor overlaps — which is exactly the
    // scaling the reader-replication bench measures.
    STG_FAILPOINT("serve.batch.delay",
                  std::this_thread::sleep_for(std::chrono::milliseconds(50)));
    touch_heartbeat();
    STG_FAILPOINT("serve.batch.dispatch",
                  throw StgError("failpoint serve.batch.dispatch fired"));

    // Fast path: the published step matches the live version — serve row
    // gathers without the exec lock. Slow path: whichever reader gets to
    // exec_mu_ first computes-or-reuses the step and publishes it.
    std::shared_ptr<const PublishedStep> step = published_step();
    if (step && step->version ==
                    live_version_.load(std::memory_order_acquire)) {
      stats_.record_cache_hit();
    } else {
      step = refresh_step(reader_idx);
    }
    note_batch_success();

    const auto fulfilled = clock::now();
    const auto num_nodes = static_cast<uint32_t>(step->out.rows());
    for (; done < live.size(); ++done) {
      PredictRequest& req = live[done];
      // Deadline enforcement at completion: the pass ran, but a client
      // whose budget elapsed mid-batch still gets the typed shed (it may
      // already have moved on).
      if (fulfilled > req.deadline) {
        stats_.record_shed(ShedReason::kDeadlineExpired, 1, req.tenant_slot);
        fail_request(req, make_shed(
            ShedReason::kDeadlineExpired,
            "serve: request completed past its deadline"));
        continue;
      }
      // A bad node id is that client's problem, not an execution fault:
      // fail only this request, like serve_stale does. Throwing here would
      // fail the rest of the batch (other tenants included) and tick the
      // circuit breaker toward stale-serving for everyone.
      bool bad_node = false;
      for (uint32_t node : req.nodes) {
        if (node >= num_nodes) {
          stats_.record_failed(1, req.tenant_slot);
          fail_request(req, std::make_exception_ptr(StgError(
                                "serve: predict node " +
                                std::to_string(node) + " outside the " +
                                std::to_string(num_nodes) + "-node graph")));
          bad_node = true;
          break;
        }
      }
      if (bad_node) continue;
      PredictResult res;
      res.timestamp = step->time;
      res.version = step->version;
      res.outputs = req.nodes.empty() ? step->out
                                      : ops::gather_rows(step->out, req.nodes);
      res.queue_micros = micros_between(req.enqueued, dequeued);
      res.total_micros = micros_between(req.enqueued, clock::now());
      stats_.record_request(res.total_micros,
                            static_cast<uint64_t>(res.outputs.rows()),
                            req.tenant_slot, reader_idx);
      complete_request(req, std::move(res));
    }
  } catch (...) {
    // A failed dispatch fails this batch's outstanding requests but the
    // server keeps serving (refresh_step already unwound the executor if
    // the throw came mid-forward). Repeated failures trip the circuit
    // into stale-serving mode.
    note_batch_failure();
    const std::exception_ptr ep = std::current_exception();
    for (; done < live.size(); ++done) {
      stats_.record_failed(1, live[done].tenant_slot);
      fail_request(live[done], ep);
    }
  }
}

void Server::watchdog_loop() {
  const auto interval = std::chrono::nanoseconds(
      static_cast<int64_t>(cfg_.watchdog_interval_ms * 1e6));
  const auto stall_ns =
      static_cast<int64_t>(cfg_.watchdog_stall_ms * 1e6);
  MutexLock lk(wd_mu_);
  while (!wd_stop_) {
    wd_cv_.wait_for(lk, interval);
    if (wd_stop_) break;
    if (busy_readers_.load(std::memory_order_acquire) == 0) continue;
    const int64_t hb = heartbeat_ns_.load(std::memory_order_acquire);
    if (now_ns() - hb < stall_ns) continue;
    // At least one reader has been inside one batch past the stall budget
    // with no liveness signal from any of them. We cannot rescue the
    // requests already in flight, but we can stop new ones from piling up
    // behind the stall: fail the circuit (predicts divert to the stale
    // path) and flush everything still queued.
    stats_.record_watchdog_stall();
    STG_LOG_WARN << "serve: watchdog — reader loop stalled for "
                 << (now_ns() - hb) / 1000000 << "ms; tripping circuit";
    trip_circuit();
    std::vector<PredictRequest> waiting = queue_.drain_all();
    if (!waiting.empty()) {
      const std::exception_ptr ep = make_shed(
          ShedReason::kCircuitOpen,
          "serve: reader thread stalled — request flushed by watchdog");
      for (auto& req : waiting) {
        stats_.record_shed(ShedReason::kCircuitOpen, 1, req.tenant_slot);
        fail_request(req, ep);
      }
    }
  }
}

}  // namespace stgraph::serve
