// Multi-threaded serving tests: client threads hammer predict() while
// another thread streams deltas through ingest(). Run under
// `./run_all.sh sanitize` these double as the data-race check for the
// serve subsystem. Invariants checked:
//   * every request is answered exactly once (fulfilled or rejected),
//   * each thread observes non-decreasing (version, timestamp) pairs,
//   * outputs are finite and correctly shaped throughout the churn,
//   * the final read view reflects every applied delta,
//   * deadline expiry under slow batches is a typed shed and the stats
//     classify every request exactly once,
//   * stop() promptly rejects parked waiters with the draining error.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "nn/models.hpp"
#include "serve/server.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace stgraph {
namespace {

TEST(ServeMt, ConcurrentPredictAndIngestStaysConsistent) {
  datasets::DynamicLoadOptions opts;
  opts.scale = 0.01;
  opts.feature_size = 8;
  opts.link_samples_per_step = 16;
  datasets::DynamicDataset ds = datasets::load_sx_mathoverflow(opts);
  const DtdgEvents events = datasets::make_dtdg(ds, /*percent_change=*/5.0);
  const datasets::TemporalSignal sig =
      datasets::make_dynamic_signal(events, opts);
  ASSERT_GE(events.num_timestamps(), 10u);

  GpmaGraph graph(DtdgEvents{ds.num_nodes, events.base_edges, {}});
  Rng rng(21);
  nn::TGCNEncoder model(opts.feature_size, 16, rng);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.queue_capacity = 4096;  // roomy: this test wants zero load shedding
  serve::Server server(graph, model, cfg);
  server.start(sig.features[0]);

  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kPerThread = 64;
  std::atomic<uint64_t> fulfilled{0};
  std::atomic<uint64_t> failures{0};
  auto client = [&](uint32_t id) {
    Rng crng(100 + id);
    uint64_t last_version = 0;
    uint32_t last_time = 0;
    for (uint32_t i = 0; i < kPerThread; ++i) {
      std::vector<uint32_t> nodes;
      if (i % 2 == 0)
        nodes.push_back(static_cast<uint32_t>(crng.next_below(ds.num_nodes)));
      serve::PredictResult res;
      try {
        res = server.predict(std::move(nodes));
      } catch (const StgError&) {
        failures.fetch_add(1);
        continue;
      }
      // Versions and time move forward only, per observer.
      EXPECT_GE(res.version, last_version);
      if (res.version == last_version) EXPECT_EQ(res.timestamp, last_time);
      last_version = res.version;
      last_time = res.timestamp;
      EXPECT_EQ(res.outputs.rows(), i % 2 == 0 ? 1 : ds.num_nodes);
      for (int64_t j = 0; j < res.outputs.numel(); ++j)
        ASSERT_TRUE(std::isfinite(res.outputs.data()[j]))
            << "non-finite output under concurrent ingest";
      fulfilled.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  for (uint32_t i = 0; i < kThreads; ++i) threads.emplace_back(client, i);

  const uint32_t deltas = events.num_timestamps() - 1;
  for (uint32_t t = 1; t <= deltas; ++t) {
    server.ingest(events.deltas[t - 1], sig.features[t]);
    std::this_thread::yield();
  }
  for (auto& th : threads) th.join();
  const serve::ReadView view = server.read_view();
  server.stop();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(fulfilled.load(), kThreads * kPerThread);
  EXPECT_EQ(view.time, deltas);
  // version = start(1) + one per ingest
  EXPECT_EQ(view.version, 1u + deltas);
  const serve::StatsReport report = server.stats();
  EXPECT_EQ(report.requests, kThreads * kPerThread);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.deltas_applied, deltas);
  // Micro-batching must have actually batched or cached: the number of
  // forward passes cannot exceed one per (version) plus one per ingest.
  EXPECT_LE(report.forward_passes, 2u * (deltas + 1));
}

TEST(ServeMt, DeadlineExpiryUnderConcurrencyClassifiesEveryRequestOnce) {
  DtdgEvents ev;
  ev.num_nodes = 8;
  for (uint32_t i = 0; i < 8; ++i) ev.base_edges.emplace_back(i, (i + 1) % 8);
  datasets::DynamicLoadOptions opts;
  opts.feature_size = 4;
  opts.link_samples_per_step = 8;
  const datasets::TemporalSignal sig = datasets::make_dynamic_signal(ev, opts);

  GpmaGraph graph(ev);
  Rng rng(13);
  nn::TGCNEncoder model(4, 8, rng);
  serve::ServeConfig cfg;
  cfg.max_batch = 1;             // serialize batches so queues actually form
  cfg.watchdog_interval_ms = 0;  // keep the schedule down to two threads
  serve::Server server(graph, model, cfg);
  server.start(sig.features[0]);

  // Phase 1: every batch takes >= 50ms (injected delay) but clients only
  // budget 5ms — nothing can legally be fulfilled. Expiry fires at
  // admission (EWMA), at dequeue, or at completion; each is the same typed
  // shed, and every request resolves exactly once.
  failpoint::enable("serve.batch.delay", failpoint::Spec::always());
  constexpr uint32_t kThreads = 3;
  constexpr uint32_t kOps = 6;
  std::atomic<uint64_t> fulfilled{0};
  std::atomic<uint64_t> expired{0};
  std::atomic<uint64_t> other_shed{0};
  std::atomic<uint64_t> errored{0};
  std::vector<std::thread> threads;
  for (uint32_t tid = 0; tid < kThreads; ++tid)
    threads.emplace_back([&, tid] {
      for (uint32_t k = 0; k < kOps; ++k) {
        try {
          server.predict({(tid + k) % 8}, std::chrono::milliseconds(5));
          fulfilled.fetch_add(1);
        } catch (const serve::ShedError& e) {
          if (e.reason() == serve::ShedReason::kDeadlineExpired)
            expired.fetch_add(1);
          else
            other_shed.fetch_add(1);
        } catch (const StgError&) {
          errored.fetch_add(1);
        }
      }
    });
  for (auto& th : threads) th.join();
  failpoint::disable_all();

  EXPECT_EQ(fulfilled.load(), 0u);  // 50ms floor vs 5ms budget
  EXPECT_GE(expired.load(), 1u);
  EXPECT_EQ(fulfilled.load() + expired.load() + other_shed.load() +
                errored.load(),
            kThreads * kOps);

  // Phase 2: same server, generous budgets — requests succeed again (the
  // delay EWMA must not keep shedding once the overload clears).
  uint64_t ok = 0;
  for (uint32_t k = 0; k < 10; ++k) {
    const serve::PredictResult res =
        server.predict({k % 8}, std::chrono::seconds(5));
    EXPECT_FALSE(res.stale);
    ++ok;
  }
  server.stop();

  const serve::StatsReport report = server.stats();
  EXPECT_EQ(report.requests, fulfilled.load() + ok);
  EXPECT_EQ(report.shed_deadline_expired, expired.load());
  EXPECT_EQ(report.shed_total,
            expired.load() + other_shed.load());
  EXPECT_EQ(report.failed, errored.load());
  // Full accounting: everything issued landed in exactly one bucket.
  EXPECT_EQ(kThreads * kOps + ok, report.requests + report.stale_served +
                                      report.failed + report.shed_total);
}

TEST(ServeMt, StopRejectsParkedWaitersPromptlyWithTypedDrainingError) {
  DtdgEvents ev;
  ev.num_nodes = 8;
  for (uint32_t i = 0; i < 8; ++i) ev.base_edges.emplace_back(i, (i + 1) % 8);
  datasets::DynamicLoadOptions opts;
  opts.feature_size = 4;
  opts.link_samples_per_step = 8;
  const datasets::TemporalSignal sig = datasets::make_dynamic_signal(ev, opts);

  GpmaGraph graph(ev);
  Rng rng(29);
  nn::TGCNEncoder model(4, 8, rng);
  serve::ServeConfig cfg;
  cfg.max_batch = 1;  // one request per 50ms batch: the rest park in queue
  serve::Server server(graph, model, cfg);
  server.start(sig.features[0]);
  failpoint::enable("serve.batch.delay", failpoint::Spec::always());

  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kOps = 3;
  std::atomic<uint64_t> resolved{0};
  std::atomic<uint64_t> draining_errs{0};
  std::vector<std::thread> threads;
  for (uint32_t tid = 0; tid < kThreads; ++tid)
    threads.emplace_back([&, tid] {
      for (uint32_t k = 0; k < kOps; ++k) {
        try {
          server.predict({tid});
        } catch (const serve::ShedError& e) {
          if (e.reason() == serve::ShedReason::kDraining) {
            draining_errs.fetch_add(1);
          }
        } catch (const StgError&) {
        }
        resolved.fetch_add(1);
      }
    });

  // Let requests pile up behind the slowed batcher, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  Timer stop_timer;
  server.stop();
  const double stop_seconds = stop_timer.seconds();
  for (auto& th : threads) th.join();
  failpoint::disable_all();

  // Every request resolved — none left parked on a promise — and stop()
  // did not wait out the whole backlog at 50ms per queued request.
  EXPECT_EQ(resolved.load(), kThreads * kOps);
  EXPECT_GE(draining_errs.load(), 1u);
  EXPECT_LT(stop_seconds, 5.0);
  const serve::StatsReport report = server.stats();
  EXPECT_EQ(report.shed_draining, draining_errs.load());
  EXPECT_EQ(report.health, "starting");  // back to cold after a full stop
}

TEST(ServeMt, StopWhileClientsAreInFlightDrainsGracefully) {
  DtdgEvents ev;
  ev.num_nodes = 8;
  for (uint32_t i = 0; i < 8; ++i) ev.base_edges.emplace_back(i, (i + 1) % 8);
  datasets::DynamicLoadOptions opts;
  opts.feature_size = 4;
  opts.link_samples_per_step = 8;
  const datasets::TemporalSignal sig = datasets::make_dynamic_signal(ev, opts);

  GpmaGraph graph(ev);
  Rng rng(9);
  nn::TGCNEncoder model(4, 8, rng);
  serve::Server server(graph, model);
  server.start(sig.features[0]);

  std::atomic<uint64_t> answered{0};  // fulfilled OR cleanly rejected
  std::vector<std::thread> threads;
  for (uint32_t i = 0; i < 3; ++i)
    threads.emplace_back([&] {
      for (uint32_t k = 0; k < 200; ++k) {
        try {
          server.predict({k % 8});
        } catch (const StgError&) {
          // shutdown race: rejected-at-push or drained with an error —
          // either way the request must resolve, never hang.
        }
        answered.fetch_add(1);
      }
    });
  server.predict();  // make sure serving is actually underway
  server.stop();
  for (auto& th : threads) th.join();
  EXPECT_EQ(answered.load(), 600u);
}

}  // namespace
}  // namespace stgraph
