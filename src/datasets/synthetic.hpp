// Synthetic equivalents of the ten Table-II benchmark datasets.
//
// The originals are public downloads (PyG-T bundled datasets and SNAP
// temporal networks); this repository ships generators instead, matched on
// the structural parameters that drive every figure: node count, edge
// count, edge density, and — for the dynamic datasets — the temporal
// interaction pattern the sliding-window preprocessing turns into
// snapshots. A `scale` factor shrinks node/edge counts proportionally so
// the figure sweeps finish on small machines; scale = 1 reproduces the
// paper's sizes (with the same 2M-edge pruning footnote for
// wiki-talk-temporal and sx-stackoverflow).
//
// Graph shapes:
//   WVM  — directed preferential attachment (hyperlink graph, power law)
//   WO   — complete directed graph (every windmill pair interacts)
//   HC   — county adjacency: ring + chords, density ≈ 0.255
//   MB   — sparse bus network: chain of stops + a few transfers
//   PM   — complete directed graph on 15 nodes
//   dynamic 5 — preferential-attachment interaction streams in time order
//
// Feature/target synthesis (static-temporal): a scalar diffusion process
// s_{t+1} = α·Â s_t + seasonal + noise runs on the graph; features are the
// last F lags per node (PyG-T's chickenpox formulation) and the target is
// the next value — so the node-regression task is actually learnable and
// losses fall, mirroring the paper's "loss ... similar over all tests".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datasets/signal.hpp"
#include "graph/dtdg.hpp"

namespace stgraph::datasets {

/// A loaded static-temporal dataset: fixed structure + temporal signal.
struct StaticTemporalDataset {
  std::string name;
  uint32_t num_nodes = 0;
  EdgeList edges;
  uint32_t num_timestamps = 0;
  TemporalSignal signal;
};

/// A loaded dynamic dataset: raw interaction stream, ready for windowing.
struct DynamicDataset {
  std::string name;
  uint32_t num_nodes = 0;
  /// Time-ordered interaction stream (may repeat pairs, as SNAP data does).
  EdgeList stream;
};

struct StaticLoadOptions {
  int64_t feature_size = 8;     // lags per node
  uint32_t num_timestamps = 100;
  uint64_t seed = 42;
  double scale = 1.0;           // shrink nodes/edges for small machines
};

struct DynamicLoadOptions {
  int64_t feature_size = 8;
  uint64_t seed = 42;
  double scale = 1.0;
  /// Link-prediction positives sampled per timestamp (negatives match).
  uint32_t link_samples_per_step = 256;
};

// ---- static-temporal datasets (Table II rows 1-5) ---------------------------
StaticTemporalDataset load_wikimath(const StaticLoadOptions& opts);      // WVM
StaticTemporalDataset load_windmill(const StaticLoadOptions& opts);      // WO
StaticTemporalDataset load_chickenpox(const StaticLoadOptions& opts);    // HC
StaticTemporalDataset load_montevideo_bus(const StaticLoadOptions& opts);// MB
StaticTemporalDataset load_pedalme(const StaticLoadOptions& opts);       // PM

/// All five, in Table II order.
std::vector<StaticTemporalDataset> load_all_static(const StaticLoadOptions& opts);

// ---- dynamic datasets (Table II rows 6-10) -------------------------------
DynamicDataset load_wiki_talk(const DynamicLoadOptions& opts);
DynamicDataset load_sx_superuser(const DynamicLoadOptions& opts);
DynamicDataset load_sx_stackoverflow(const DynamicLoadOptions& opts);
DynamicDataset load_sx_mathoverflow(const DynamicLoadOptions& opts);
DynamicDataset load_reddit_title(const DynamicLoadOptions& opts);

std::vector<DynamicDataset> load_all_dynamic(const DynamicLoadOptions& opts);

/// Window a dynamic dataset into DTDG events at the given %-change between
/// consecutive snapshots (the Figures 7-9 preprocessing).
DtdgEvents make_dtdg(const DynamicDataset& ds, double percent_change);

/// Build the link-prediction signal for a DTDG: persistent random node
/// features plus per-timestamp positive/negative edge samples.
TemporalSignal make_dynamic_signal(const DtdgEvents& events,
                                   const DynamicLoadOptions& opts);

/// Rebuild a static dataset's signal at a different feature size (figure
/// sweeps re-lag the same diffusion process).
TemporalSignal make_static_signal(const StaticTemporalDataset& ds,
                                  int64_t feature_size, uint64_t seed);

}  // namespace stgraph::datasets
