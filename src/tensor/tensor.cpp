#include "tensor/tensor.hpp"

#include <sstream>

#include "autograd/engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph {

namespace {
int64_t shape_numel(const Shape& s) {
  int64_t n = 1;
  for (int64_t d : s) {
    STG_CHECK(d >= 0, "negative dimension in shape");
    n *= d;
  }
  return n;
}

thread_local bool g_grad_enabled = true;
}  // namespace

TensorImpl::TensorImpl(Shape shape_in, MemCategory cat)
    : shape(std::move(shape_in)),
      data(static_cast<std::size_t>(shape_numel(shape)), cat) {
  STG_CHECK(shape.size() <= 2, "tensors are rank 0/1/2, got rank ",
            shape.size());
}

int64_t TensorImpl::numel() const { return shape_numel(shape); }

Tensor Tensor::empty(Shape shape, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>(std::move(shape));
  impl->requires_grad = requires_grad && g_grad_enabled;
  return Tensor(std::move(impl));
}

Tensor Tensor::zeros(Shape shape, bool requires_grad) {
  Tensor t = empty(std::move(shape), requires_grad);
  t.impl()->data.fill(0.0f);
  return t;
}

Tensor Tensor::ones(Shape shape, bool requires_grad) {
  return full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::full(Shape shape, float value, bool requires_grad) {
  Tensor t = empty(std::move(shape), requires_grad);
  t.impl()->data.fill(value);
  return t;
}

Tensor Tensor::from_vector(const std::vector<float>& values, Shape shape,
                           bool requires_grad) {
  Tensor t = empty(std::move(shape), requires_grad);
  STG_CHECK(static_cast<int64_t>(values.size()) == t.numel(),
            "from_vector: ", values.size(), " values for shape ",
            shape_str(t.shape()));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev, bool requires_grad) {
  Tensor t = empty(std::move(shape), requires_grad);
  float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) p[i] = rng.normal(0.0f, stddev);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi,
                       bool requires_grad) {
  Tensor t = empty(std::move(shape), requires_grad);
  float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) p[i] = rng.uniform(lo, hi);
  return t;
}

const Shape& Tensor::shape() const {
  STG_CHECK(defined(), "shape() on undefined tensor");
  return impl_->shape;
}

int64_t Tensor::dim() const { return static_cast<int64_t>(shape().size()); }

int64_t Tensor::size(int64_t d) const {
  STG_CHECK(d >= 0 && d < dim(), "size(", d, ") on rank-", dim(), " tensor");
  return shape()[static_cast<size_t>(d)];
}

int64_t Tensor::numel() const {
  STG_CHECK(defined(), "numel() on undefined tensor");
  return impl_->numel();
}

int64_t Tensor::rows() const { return dim() == 2 ? size(0) : 1; }
int64_t Tensor::cols() const {
  return dim() == 2 ? size(1) : (dim() == 1 ? size(0) : 1);
}

float* Tensor::data() {
  STG_CHECK(defined(), "data() on undefined tensor");
  return impl_->data.data();
}
const float* Tensor::data() const {
  STG_CHECK(defined(), "data() on undefined tensor");
  return impl_->data.data();
}

float Tensor::item() const {
  STG_CHECK(numel() == 1, "item() on tensor with ", numel(), " elements");
  return data()[0];
}

float Tensor::at(int64_t i) const {
  STG_CHECK(i >= 0 && i < numel(), "flat index ", i, " out of range ", numel());
  return data()[i];
}

float Tensor::at(int64_t r, int64_t c) const {
  STG_CHECK(dim() == 2, "at(r, c) needs a rank-2 tensor");
  STG_CHECK(r >= 0 && r < rows() && c >= 0 && c < cols(), "index (", r, ",", c,
            ") out of range (", rows(), ",", cols(), ")");
  return data()[r * cols() + c];
}

std::vector<float> Tensor::to_vector() const { return impl_->data.to_host(); }

bool Tensor::requires_grad() const {
  return defined() && impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool v) {
  STG_CHECK(defined(), "set_requires_grad on undefined tensor");
  STG_CHECK(!v || impl_->grad_fn == nullptr,
            "can only toggle requires_grad on leaf tensors");
  impl_->requires_grad = v;
  return *this;
}

Tensor Tensor::grad() const {
  if (!defined() || !impl_->grad) return Tensor();
  return Tensor(impl_->grad);
}

void Tensor::zero_grad() {
  if (defined() && impl_->grad) impl_->grad->data.fill(0.0f);
}

void Tensor::backward() const {
  STG_CHECK(defined() && numel() == 1,
            "backward() without an explicit seed requires a scalar loss");
  backward(Tensor::ones(shape()));
}

void Tensor::backward(const Tensor& grad_output) const {
  autograd::run_backward(*this, grad_output);
}

Tensor Tensor::detach() const {
  if (!defined()) return Tensor();
  auto impl = std::make_shared<TensorImpl>(impl_->shape);
  // Share nothing autograd-related; copy the data (cheap vs correctness —
  // aliasing storage across the graph boundary invites in-place hazards).
  std::copy(impl_->data.begin(), impl_->data.end(), impl->data.begin());
  return Tensor(std::move(impl));
}

Tensor Tensor::clone() const { return detach(); }

std::string Tensor::to_string(int64_t max_elems) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream oss;
  oss << "Tensor" << shape_str(shape()) << " [";
  const int64_t n = std::min<int64_t>(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i) oss << ", ";
    oss << data()[i];
  }
  if (numel() > n) oss << ", ...";
  oss << "]";
  return oss.str();
}

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }
bool NoGradGuard::grad_enabled() { return g_grad_enabled; }

bool same_shape(const Tensor& a, const Tensor& b) {
  return a.defined() && b.defined() && a.shape() == b.shape();
}

std::string shape_str(const Shape& s) {
  std::string out = "[";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(s[i]);
  }
  return out + "]";
}

}  // namespace stgraph
