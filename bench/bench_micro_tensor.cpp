// Micro benches for the tensor/runtime substrate: GEMM, elementwise
// chains, prefix scans and radix sort — the primitives whose throughput
// bounds everything the figure benches measure.
#include <benchmark/benchmark.h>

#include "runtime/scan.hpp"
#include "runtime/sort.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {
using namespace stgraph;

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  NoGradGuard ng;
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransposed(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  NoGradGuard ng;
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b, /*trans_a=*/true, /*trans_b=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTransposed)->Arg(128);

void BM_GruGateChain(benchmark::State& state) {
  // The elementwise chain a TGCN gate performs per timestep.
  const int64_t n = state.range(0);
  Rng rng(3);
  NoGradGuard ng;
  Tensor x = Tensor::randn({n, 32}, rng);
  Tensor h = Tensor::randn({n, 32}, rng);
  for (auto _ : state) {
    Tensor z = ops::sigmoid(ops::add(x, h));
    Tensor out = ops::add(ops::mul(z, h),
                          ops::mul(ops::one_minus(z), ops::tanh_op(x)));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 32);
}
BENCHMARK(BM_GruGateChain)->Arg(1000)->Arg(100000);

void BM_InclusiveScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<uint64_t> in(n), out(n);
  for (auto& v : in) v = rng.next_below(100);
  for (auto _ : state) {
    device::inclusive_scan(in.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InclusiveScan)->Arg(1 << 14)->Arg(1 << 20);

void BM_RadixSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<uint64_t> base(n);
  for (auto& v : base) v = rng.next_u64() >> 24;  // 40-bit edge-ish keys
  for (auto _ : state) {
    std::vector<uint64_t> keys = base;
    device::radix_sort(keys);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RadixSort)->Arg(1 << 14)->Arg(1 << 18);

void BM_AutogradOverhead(benchmark::State& state) {
  // Same gate chain with taping + backward: the bookkeeping the paper's
  // training loop pays per timestep.
  const int64_t n = 10000;
  Rng rng(6);
  Tensor x = Tensor::randn({n, 16}, rng, 1.0f, /*requires_grad=*/true);
  Tensor h = Tensor::randn({n, 16}, rng);
  for (auto _ : state) {
    Tensor z = ops::sigmoid(ops::add(x, h));
    Tensor loss = ops::sum(ops::mul(z, h));
    loss.backward();
    x.zero_grad();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_AutogradOverhead);

}  // namespace

BENCHMARK_MAIN();
