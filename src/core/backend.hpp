// STGraph Backend Interface (paper §VI-1): the single seam through which
// the framework touches tensor-backend functionality. Seastar reused
// DGL-Hack's backend interface, scattering the framework across two
// libraries and pinning it to one CUDA version; STGraph instead owns a
// dedicated interface and decouples concrete backends behind a factory.
//
// The native backend wraps this repository's tensor library and device
// runtime. The factory registry allows alternative backends (the paper
// mentions TensorFlow/MXNet as future work) to be plugged in without
// touching framework code; tests register a mock backend the same way.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compiler/kernel.hpp"
#include "tensor/tensor.hpp"

namespace stgraph::core {

class Backend {
 public:
  virtual ~Backend() = default;
  virtual std::string name() const = 0;
  /// Human-readable device description for bench/report output (the CUDA
  /// analogue would name the GPU; the native backend reports the SIMD ISA
  /// its kernel engine was compiled for and the lane count in use).
  virtual std::string device_info() const { return name(); }

  // ---- tensor factory ----------------------------------------------------
  virtual Tensor tensor_from_host(const std::vector<float>& values,
                                  Shape shape) const = 0;
  virtual Tensor zeros(Shape shape) const = 0;

  // ---- kernel launches ---------------------------------------------------
  /// Launch a compiled aggregation kernel (forward or backward direction is
  /// encoded in `args`).
  virtual void launch_aggregation(const compiler::KernelSpec& spec,
                                  const compiler::KernelArgs& args) const = 0;

  // ---- synchronization -----------------------------------------------------
  virtual void synchronize() const = 0;
};

/// Factory registry (Factory Class Design Pattern per the paper).
class BackendRegistry {
 public:
  using FactoryFn = std::function<std::unique_ptr<Backend>()>;

  static BackendRegistry& instance();

  void register_backend(const std::string& name, FactoryFn factory);
  std::unique_ptr<Backend> create(const std::string& name) const;
  std::vector<std::string> available() const;

 private:
  BackendRegistry();
  std::vector<std::pair<std::string, FactoryFn>> factories_;
};

/// The process-default backend ("native"), shared by layers that are not
/// given an explicit one.
Backend& native_backend();

}  // namespace stgraph::core
