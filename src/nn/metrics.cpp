#include "nn/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace stgraph::nn::metrics {

double mae(const Tensor& pred, const Tensor& target) {
  STG_CHECK(same_shape(pred, target), "mae shape mismatch");
  double total = 0;
  for (int64_t i = 0; i < pred.numel(); ++i)
    total += std::abs(static_cast<double>(pred.at(i)) - target.at(i));
  return total / static_cast<double>(pred.numel());
}

double rmse(const Tensor& pred, const Tensor& target) {
  STG_CHECK(same_shape(pred, target), "rmse shape mismatch");
  double total = 0;
  for (int64_t i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(pred.at(i)) - target.at(i);
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(pred.numel()));
}

double mape(const Tensor& pred, const Tensor& target, float eps) {
  STG_CHECK(same_shape(pred, target), "mape shape mismatch");
  double total = 0;
  int64_t counted = 0;
  for (int64_t i = 0; i < pred.numel(); ++i) {
    const double t = target.at(i);
    if (std::abs(t) < eps) continue;
    total += std::abs((pred.at(i) - t) / t);
    ++counted;
  }
  STG_CHECK(counted > 0, "mape: no targets above eps");
  return total / static_cast<double>(counted);
}

double roc_auc(const Tensor& scores, const Tensor& labels) {
  STG_CHECK(same_shape(scores, labels), "roc_auc shape mismatch");
  const int64_t n = scores.numel();
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return scores.at(a) < scores.at(b);
  });
  // Rank-sum (Mann–Whitney U) with midranks for ties.
  std::vector<double> rank(n);
  int64_t i = 0;
  while (i < n) {
    int64_t j = i;
    while (j + 1 < n && scores.at(order[j + 1]) == scores.at(order[i])) ++j;
    const double mid = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (int64_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  double pos_rank_sum = 0;
  int64_t pos = 0;
  for (int64_t k = 0; k < n; ++k) {
    if (labels.at(k) > 0.5f) {
      pos_rank_sum += rank[k];
      ++pos;
    }
  }
  const int64_t neg = n - pos;
  STG_CHECK(pos > 0 && neg > 0, "roc_auc needs both classes present");
  const double u = pos_rank_sum - static_cast<double>(pos) * (pos + 1) / 2.0;
  return u / (static_cast<double>(pos) * neg);
}

double binary_accuracy(const Tensor& logits, const Tensor& labels) {
  STG_CHECK(same_shape(logits, labels), "accuracy shape mismatch");
  int64_t correct = 0;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const bool pred = logits.at(i) > 0.0f;
    const bool truth = labels.at(i) > 0.5f;
    correct += pred == truth;
  }
  return static_cast<double>(correct) / static_cast<double>(logits.numel());
}

double precision_at_k(const Tensor& scores, const Tensor& labels, int64_t k) {
  STG_CHECK(same_shape(scores, labels), "precision_at_k shape mismatch");
  STG_CHECK(k > 0 && k <= scores.numel(), "k out of range");
  std::vector<int64_t> order(scores.numel());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](int64_t a, int64_t b) {
                      return scores.at(a) > scores.at(b);
                    });
  int64_t hits = 0;
  for (int64_t i = 0; i < k; ++i) hits += labels.at(order[i]) > 0.5f;
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace stgraph::nn::metrics
