// GPMAGraph (paper §V-D): a DTDG stored as a base graph inside a Packed
// Memory Array plus per-timestamp edge deltas. Snapshots are constructed
// on demand:
//
//   * Algorithm 2 (Get-Graph): roll the PMA from its cached position to the
//     requested timestamp by replaying (or inverting) deltas, then relabel
//     edges 0..m-1 in slot order so forward and backward views share
//     labels. A snapshot cache avoids replaying a whole sequence's deltas
//     when training moves from the backward pass of one sequence to the
//     forward pass of the next.
//   * Algorithm 3 (Reverse-GPMA): build the compacted reverse CSR
//     (in-neighbor view for the forward pass) straight from the gapped PMA
//     arrays with a per-destination prefix-sum + deterministic scatter.
//
// View maintenance is delta-bounded: the PMA reports which leaf segments a
// batch touched (Pma::dirty_leaves()), and when the touched fraction is
// below STGRAPH_VIEW_REBUILD_THRESHOLD the snapshot arrays are patched in
// place — edge labels are recomputed only inside the dirty windows and
// shifted by a constant elsewhere, row offsets are repaired with one
// forward sweep, the degree orders are repaired by merging the few
// vertices whose degree changed back into the (still sorted) survivor
// stream, and the reverse CSR is spliced per destination. Past the
// threshold (or after a capacity change) the full rebuild runs, itself
// parallelized with a count/prefix/scatter pass over slot ranges. Both
// paths produce bit-identical views for any thread count.
//
// The backward pass consumes the gapped PMA arrays directly (kernels skip
// SPACE slots), so no out-CSR is ever materialized.
//
// Bounded-staleness pipeline (STGRAPH_PIPELINE, default on): get_graph
// returns views over a *published copy* of the snapshot arrays, double-
// buffered, so a background worker can roll the live PMA to the next hinted
// timestamp (prefetch(), called by the trainer/executor) and publish its
// views into the standby buffer while kernels read the active one. The
// staleness bound is 1 — at most one prefetch in flight, into the one
// standby buffer — and the worker runs every pool-using builder under
// ThreadPool::ScopedInline (serially), both because run_on_lanes is a
// single-launcher protocol and because views are bit-identical at any lane
// count, so overlap changes nothing downstream. A published snapshot of
// timestamp t is immutable and stays valid across epochs (the DTDG's state
// at t is a pure function of t). With the pipeline off, get_graph points
// views directly at the live arrays exactly as before — zero copies.
//
// Vertex sharding (STGRAPH_SHARDS, default auto): each refresh also builds
// a ShardPlan (range partition + per-shard processing orders) and stamps it
// into the kernel-facing views, so the kernel engine runs edge aggregation
// shard-parallel with bit-identical outputs (see graph/shard.hpp).
#pragma once

#include <cstdlib>
#include <exception>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "gpma/pma.hpp"
#include "graph/dtdg.hpp"
#include "graph/shard.hpp"
#include "graph/stgraph_base.hpp"
#include "runtime/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace stgraph {

class GpmaGraph final : public STGraphBase {
 public:
  explicit GpmaGraph(const DtdgEvents& events);
  ~GpmaGraph() override;

  uint32_t num_nodes() const override { return num_nodes_; }
  uint32_t num_edges_at(uint32_t t) const override;
  uint32_t num_timestamps() const override {
    return static_cast<uint32_t>(deltas_.size()) + 1;
  }
  bool is_dynamic() const override { return true; }
  std::string format_name() const override { return "GPMAGraph"; }

  SnapshotView get_graph(uint32_t t) override;
  SnapshotView get_backward_graph(uint32_t t) override;
  /// Hand timestamp t to the pipeline worker: it rolls the live PMA there
  /// and publishes t's views into the standby buffer while the caller keeps
  /// computing on the active one. No-op when the pipeline is off or a
  /// prefetch is already in flight (staleness bound 1).
  void prefetch(uint32_t t) override;

  std::size_t device_bytes() const override;

  /// Streaming ingestion: record one more per-timestamp delta at the head
  /// of the timeline. O(|delta|) — the PMA itself is untouched until a
  /// get_graph() positions past the new timestamp, which is exactly the
  /// paper's lazy Algorithm-2 replay applied to serving. Strong exception
  /// guarantee (bounds are validated before anything is stored).
  bool supports_append() const override { return true; }
  void append_delta(const EdgeDelta& delta) override;

  /// Time spent replaying deltas + rebuilding views (Figure 9's
  /// "graph update time"). position_timer/view_timer split it into the
  /// Algorithm-2 replay phase and the view-maintenance phase.
  PhaseTimer& update_timer() { return update_timer_; }
  PhaseTimer& position_timer() { return position_timer_; }
  PhaseTimer& view_timer() { return view_timer_; }
  /// Time get_graph/get_backward_graph spent blocked on an in-flight
  /// prefetch (pipeline stall — the un-overlapped remainder of the update
  /// phase).
  PhaseTimer& stall_timer() { return stall_timer_; }

  /// Current PMA position (exposed for tests).
  uint32_t current_timestamp() const {
    sync();
    return curr_time_;
  }
  const Pma& pma() const {
    sync();
    return pma_;
  }
  /// Disable the Algorithm-2 snapshot cache (ablation bench).
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  /// Disable the delta-bounded incremental view path (ablation bench /
  /// parity tests); every refresh then takes the full-rebuild path.
  void set_incremental_views(bool enabled) {
    incremental_views_enabled_ = enabled;
  }
  /// Disable the per-snapshot GCN-norm edge-coefficient cache (ablation
  /// bench / parity tests); kernels then recompute the factor per edge.
  void set_coef_cache_enabled(bool enabled);
  /// Per-graph override of the incremental-view decision threshold (dirty
  /// slot fraction beyond which a refresh takes the full rebuild). The
  /// STGRAPH_VIEW_REBUILD_THRESHOLD env sets the process default; graphs
  /// with known churn profiles can tune their own cutoff.
  void set_rebuild_threshold(double threshold);
  double rebuild_threshold() const { return rebuild_threshold_; }
  /// Toggle the bounded-staleness pipeline (STGRAPH_PIPELINE sets the
  /// default). Off degrades to the serial schedule: get_graph does the
  /// replay + refresh inline and views point at the live arrays.
  void set_pipeline_enabled(bool enabled);
  bool pipeline_enabled() const { return pipeline_enabled_; }
  /// Override the shard count (0 = re-resolve via STGRAPH_SHARDS/auto,
  /// 1 = sharding off). Takes effect on the current views immediately.
  void set_num_shards(uint32_t shards);
  uint32_t num_shards() const { return live_shards_.num_shards; }
  uint64_t delta_replays() const { return delta_replays_; }
  uint64_t incremental_view_updates() const {
    return incremental_view_updates_;
  }
  uint64_t full_view_rebuilds() const { return full_view_rebuilds_; }
  uint64_t prefetch_hits() const { return prefetch_hits_; }
  uint64_t prefetch_misses() const { return prefetch_misses_; }
  /// Reset per-run instrumentation (timers + view counters).
  void reset_update_stats();

 private:
  struct DeviceDelta {
    DeviceBuffer<uint64_t> additions;
    DeviceBuffer<uint64_t> deletions;
  };

  /// One immutable published copy of the snapshot arrays for a timestamp —
  /// what kernels read while the pipeline worker mutates the live state.
  /// Two of these double-buffer the handoff: compute holds the active one,
  /// the worker overwrites the standby one (whose previous contents were
  /// invalidated by the last get_* call, per the view-lifetime contract).
  struct PublishedView {
    DeviceBuffer<uint32_t> col, eids, row_offset;
    DeviceBuffer<uint32_t> in_deg, out_deg;
    DeviceBuffer<uint32_t> fwd_order, bwd_order;
    DeviceBuffer<uint32_t> r_row_offset, r_col, r_eids;
    DeviceBuffer<float> gcn_coef;
    ShardPlan shards;
    uint32_t num_edges = 0;
    uint32_t timestamp = 0;
    /// live_epoch_ at publish time. A snapshot may only be served while
    /// this still matches: the PMA's physical slot layout at a timestamp
    /// is path-dependent (backward replay re-inserts deleted edges into
    /// possibly different gaps), and the serving contract promises the
    /// returned view agrees byte-for-byte with the live PMA positioned at
    /// t (see verify::check_pma_view_agreement).
    uint64_t live_epoch = 0;
    bool valid = false;

    std::size_t device_bytes() const {
      return col.bytes() + eids.bytes() + row_offset.bytes() +
             in_deg.bytes() + out_deg.bytes() + fwd_order.bytes() +
             bwd_order.bytes() + r_row_offset.bytes() + r_col.bytes() +
             r_eids.bytes() + gcn_coef.bytes() + shards.device_bytes();
    }
  };

  enum class PfState { kIdle, kPending, kDone };

  /// Roll the PMA to timestamp `target` (Algorithm 2 core).
  void position(uint32_t target);
  void apply_delta(uint32_t idx, bool forward);
  /// Bring every derived view array up to date with the PMA, choosing the
  /// incremental or full path; clears the delta bookkeeping.
  void refresh_views();
  /// Full O(capacity) rebuild: relabel + row offsets + degree orders +
  /// reverse CSR, parallelized over slot ranges. Reuses buffers.
  void full_rebuild_views();
  /// Delta-bounded in-place patch of every view array. Returns false if
  /// the delta shape turned out unpatchable (caller falls back).
  bool incremental_update();
  /// Recompute the whole eid-indexed GCN-norm cache from the reverse CSR
  /// (no-op clearing the buffer when the cache is disabled).
  void rebuild_coef_cache();
  /// Merge `affected` (vertices whose degree changed, sorted canonically)
  /// back into the degree order `order` under (deg desc, id asc).
  void repair_order(DeviceBuffer<uint32_t>& order, const uint32_t* deg,
                    std::vector<uint32_t>& affected);
  void save_cache();
  void restore_cache();
  /// Rebuild the live shard plan from the (fresh) degree orders.
  void rebuild_shard_plan();
  /// Assemble the kernel-facing view of the current position from the
  /// derived arrays (pointer packing only; requires fresh views).
  SnapshotView make_view() const;
  /// Assemble the kernel-facing view of a published copy.
  SnapshotView make_view(const PublishedView& pub) const;
  /// Position + refresh + publish timestamp `target` into the standby
  /// buffer. Runs on the caller's thread (prefetch miss / serial fill) or
  /// on the worker under ScopedInline.
  void prepare(uint32_t target);
  /// Copy the live view arrays + shard plan into `pub` and stamp it.
  void publish(PublishedView& pub);
  /// Wait until the worker is idle (observers and mutators call this
  /// before touching live state). Keeps any worker error stored for the
  /// next get_* to rethrow, and keeps a completed result published.
  void sync() const;
  /// Spawn the worker thread on first use.
  void ensure_worker();
  void worker_loop();

  uint32_t num_nodes_ = 0;
  Pma pma_;
  std::vector<DeviceDelta> deltas_;
  std::vector<uint32_t> edges_at_;  // |E_t| per timestamp

  // Derived per-snapshot arrays (device-resident).
  DeviceBuffer<uint32_t> col_;         // dst per slot, kSpace for gaps
  DeviceBuffer<uint32_t> eids_;        // edge label per slot
  DeviceBuffer<uint32_t> row_offset_;  // V+1, into slot positions
  DeviceBuffer<uint32_t> in_deg_, out_deg_;
  DeviceBuffer<uint32_t> fwd_order_, bwd_order_;
  // Algorithm-3 output.
  DeviceBuffer<uint32_t> r_row_offset_, r_col_, r_eids_;
  // Per-snapshot GCN-norm cache indexed by eid, maintained alongside the
  // views: rebuilt by full_rebuild_views(), patched (gather survivors
  // through eid_remap_, recompute around changed in-degrees) by
  // incremental_update(). Empty when disabled.
  DeviceBuffer<float> gcn_coef_, gcn_coef_scratch_;
  bool coef_cache_enabled_ = true;
  // Persistent scratch for the incremental splice / order repair (swapped
  // with the live arrays, so allocations amortize away).
  DeviceBuffer<uint32_t> r_row_offset_scratch_, r_col_scratch_,
      r_eids_scratch_;
  DeviceBuffer<uint32_t> order_scratch_;
  std::vector<uint8_t> order_mark_;
  // Host-side scratch for the incremental path (kept across refreshes so
  // the per-step patch allocates nothing in steady state): the dirty
  // windows' old/new live contents and the old-label -> new-label map.
  std::vector<uint64_t> win_old_keys_, win_new_keys_;
  std::vector<uint32_t> win_old_eids_, win_new_eids_;
  std::vector<uint32_t> eid_remap_;

  uint32_t curr_time_ = 0;
  // Bumped by every repositioning; published snapshots stamped with an
  // older epoch are no longer guaranteed byte-equal to the live PMA at
  // their timestamp and are treated as misses.
  uint64_t live_epoch_ = 0;
  bool views_fresh_ = false;

  // Delta bookkeeping between refreshes: every key actually applied to the
  // PMA since the views were last rebuilt (multiple applications of the
  // same key cancel out to a net add / net delete / survivor).
  std::vector<uint64_t> pending_add_, pending_del_;
  bool views_force_full_ = false;      // e.g. after a cache restore
  bool incremental_views_enabled_ = true;
  double rebuild_threshold_ = 0.25;    // dirty fraction beyond which we rebuild

  // Algorithm-2 cache: deep PMA copy + degrees at cache_time_.
  bool cache_enabled_ = true;
  std::optional<Pma> cache_pma_;
  std::vector<uint32_t> cache_in_deg_, cache_out_deg_;
  uint32_t cache_time_ = 0;

  PhaseTimer update_timer_;
  PhaseTimer position_timer_;
  PhaseTimer view_timer_;
  PhaseTimer stall_timer_;
  uint64_t delta_replays_ = 0;
  uint64_t incremental_view_updates_ = 0;
  uint64_t full_view_rebuilds_ = 0;
  uint64_t prefetch_hits_ = 0;
  uint64_t prefetch_misses_ = 0;
  bool warned_full_rebuilds_ = false;

  // ---- sharding ----------------------------------------------------------
  // Plan over the live degree orders, rebuilt with them; published copies
  // clone it so their views stay self-contained.
  ShardPlan live_shards_;
  uint32_t num_shards_cfg_ = 0;  // resolved in the constructor

  // ---- bounded-staleness pipeline ---------------------------------------
  // Protocol: pf_state_ is the single-slot job queue. Main thread moves
  // kIdle -> kPending (prefetch) and kDone -> kIdle (consume/sync); the
  // worker moves kPending -> kDone after running prepare(). All live
  // mutable state (pma_, degrees, view arrays, timers) is owned by whoever
  // the state machine says runs: the worker only between kPending and
  // kDone, the main thread only at kIdle/kDone — every transition passes
  // through pmu_, which carries the happens-before edge. Compute kernels
  // read only the active PublishedView, which nobody writes while active.
  bool pipeline_enabled_ = true;
  PublishedView pub_[2];
  int active_pub_ = 0;
  std::thread worker_;
  mutable Mutex pmu_{"gpma::GpmaGraph::pmu_"};
  mutable ConditionVariable pcv_;
  mutable PfState pf_state_ STG_GUARDED_BY(pmu_) = PfState::kIdle;
  uint32_t pf_target_ STG_GUARDED_BY(pmu_) = 0;
  bool pf_stop_ STG_GUARDED_BY(pmu_) = false;
  std::exception_ptr pf_error_ STG_GUARDED_BY(pmu_);
};

/// Algorithm 3, exposed standalone for unit tests and the ablation bench:
/// build the compacted reverse CSR of a gapped adjacency. Deterministic:
/// per-destination neighbor lists come out sorted by source (slot order)
/// regardless of the lane count. Reuses the output buffers' capacity.
void reverse_gpma(uint32_t num_nodes, const DeviceBuffer<uint32_t>& row_offset,
                  const DeviceBuffer<uint32_t>& col,
                  const DeviceBuffer<uint32_t>& eids,
                  const DeviceBuffer<uint32_t>& in_degrees, uint32_t num_edges,
                  DeviceBuffer<uint32_t>& r_row_offset,
                  DeviceBuffer<uint32_t>& r_col,
                  DeviceBuffer<uint32_t>& r_eids);

}  // namespace stgraph
