// Reverse-mode automatic differentiation engine (tape-free, graph-based —
// the same architecture as the PyTorch autograd the paper's Python
// implementation relies on).
//
// Every differentiable op creates one autograd::Node capturing whatever it
// needs for its vector–Jacobian product. run_backward() walks nodes in
// reverse creation order (a valid reverse-topological order because node
// sequence numbers increase monotonically at construction) and routes each
// produced gradient either to a downstream node's pending buffer or into a
// leaf tensor's .grad.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace stgraph::autograd {

class Node;

/// Where a node input's gradient must flow: either into another node
/// (intermediate tensor) or into a leaf tensor's grad accumulator.
struct InputEdge {
  std::shared_ptr<Node> producer;        // non-null for intermediates
  std::weak_ptr<TensorImpl> leaf;        // set for requires-grad leaves
  bool needs_grad = false;
};

class Node : public std::enable_shared_from_this<Node> {
 public:
  explicit Node(std::string name);
  virtual ~Node() = default;

  /// Vector–Jacobian product: gradient of the loss w.r.t. this node's
  /// output → gradients w.r.t. each registered input (same order as
  /// add_input calls; entries may be undefined for non-differentiable
  /// inputs).
  virtual std::vector<Tensor> backward(const Tensor& grad_output) = 0;

  /// Register `t` as a differentiable input and return whether gradients
  /// will flow through it.
  bool add_input(const Tensor& t);

  const std::string& name() const { return name_; }
  uint64_t seq() const { return seq_; }
  const std::vector<InputEdge>& edges() const { return edges_; }

  /// Attach this node as grad_fn of the op output and mark the output as
  /// requiring grad (iff any input needs it).
  void set_output(Tensor& out);

 private:
  std::string name_;
  uint64_t seq_;
  std::vector<InputEdge> edges_;
};

/// Convenience node defined by a lambda; most ops use this.
class LambdaNode final : public Node {
 public:
  using Fn = std::function<std::vector<Tensor>(const Tensor&)>;
  LambdaNode(std::string name, Fn fn) : Node(std::move(name)), fn_(std::move(fn)) {}
  std::vector<Tensor> backward(const Tensor& grad_output) override {
    return fn_(grad_output);
  }

 private:
  Fn fn_;
};

/// Run reverse-mode AD seeded with d(root)/d(root) = grad_output.
/// Accumulates into leaf .grad buffers (+=, PyTorch semantics).
void run_backward(const Tensor& root, const Tensor& grad_output);

/// Accumulate src into impl->grad (allocating it on first use).
void accumulate_grad(const std::shared_ptr<TensorImpl>& impl, const Tensor& src);

/// Nodes created so far (used by tests asserting graph sizes).
uint64_t node_count();

}  // namespace stgraph::autograd
