// Unit + property tests for the device runtime: thread pool, grid
// launches, scans, sorts, memory tracking.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/device_buffer.hpp"
#include "runtime/memory_tracker.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scan.hpp"
#include "runtime/sort.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

TEST(ThreadPool, RunsEveryLaneExactlyOnce) {
  auto& pool = ThreadPool::instance();
  std::vector<std::atomic<int>> hits(pool.lanes());
  pool.run_on_lanes([&](unsigned lane) { hits[lane].fetch_add(1); });
  for (unsigned l = 0; l < pool.lanes(); ++l) EXPECT_EQ(hits[l].load(), 1);
}

TEST(ThreadPool, ReentrantLaunchDoesNotDeadlock) {
  auto& pool = ThreadPool::instance();
  std::atomic<int> count{0};
  pool.run_on_lanes([&](unsigned) {
    pool.run_on_lanes([&](unsigned) { count.fetch_add(1); });
  });
  EXPECT_GE(count.load(), static_cast<int>(pool.lanes()));
}

TEST(Parallel, ForCoversAllIndices) {
  const std::size_t n = 10001;
  std::vector<std::atomic<int>> hits(n);
  device::parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); }, 1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, StridedCoversAllIndices) {
  const std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  device::parallel_for_strided(n, [&](std::size_t i) { hits[i].fetch_add(1); }, 1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, RangesPartitionWithoutOverlap) {
  const std::size_t n = 77777;
  std::vector<uint8_t> hit(n, 0);
  device::parallel_for_ranges(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hit[i]++;
  }, 1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hit[i], 1) << i;
}

TEST(Parallel, ReduceSumMatchesSerial) {
  const std::size_t n = 123457;
  const double got =
      device::parallel_reduce_sum(n, [](std::size_t i) { return double(i); }, 1);
  const double want = double(n - 1) * double(n) / 2.0;
  EXPECT_DOUBLE_EQ(got, want);
}

// Nested-use contract (see detail::effective_lanes): a parallel primitive
// launched from a ThreadPool lane — or from a thread under
// ThreadPool::ScopedInline — must run serially inline over its FULL
// range. Before the fix, nested launches sized their chunk grid with
// pool.lanes() but executed only the calling lane's chunk, silently
// dropping (lanes-1)/lanes of the work.
TEST(NestedParallel, InnerForCoversFullRangeFromPoolLane) {
  auto& pool = ThreadPool::instance();
  const std::size_t n = 4096;
  std::vector<std::atomic<uint32_t>> hits(n);
  pool.run_on_lanes([&](unsigned) {
    device::parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); }, 1);
  });
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[i].load(), pool.lanes()) << "index " << i;
}

TEST(NestedParallel, InnerRangesCoverFullRangeFromPoolLane) {
  auto& pool = ThreadPool::instance();
  const std::size_t n = 10001;
  std::vector<std::atomic<uint32_t>> hits(n);
  pool.run_on_lanes([&](unsigned) {
    device::parallel_for_ranges(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    }, 1);
  });
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[i].load(), pool.lanes()) << "index " << i;
}

TEST(NestedParallel, LaneCountIsOneOnPoolLane) {
  auto& pool = ThreadPool::instance();
  std::vector<unsigned> seen(pool.lanes(), 0);
  pool.run_on_lanes([&](unsigned lane) { seen[lane] = device::lane_count(); });
  for (unsigned lane = 0; lane < pool.lanes(); ++lane)
    EXPECT_EQ(seen[lane], 1u) << "lane " << lane;
  EXPECT_EQ(device::lane_count(), pool.lanes());
}

TEST(NestedParallel, NestedReduceSumMatchesSerial) {
  auto& pool = ThreadPool::instance();
  const std::size_t n = 54321;
  const double want = double(n - 1) * double(n) / 2.0;
  std::vector<double> got(pool.lanes(), 0.0);
  pool.run_on_lanes([&](unsigned lane) {
    got[lane] = device::parallel_reduce_sum(
        n, [](std::size_t i) { return double(i); }, 1);
  });
  for (unsigned lane = 0; lane < pool.lanes(); ++lane)
    EXPECT_DOUBLE_EQ(got[lane], want) << "lane " << lane;
}

TEST(NestedParallel, ScopedInlineForcesSerialFullCoverage) {
  // The pipeline worker thread runs under ScopedInline: primitives must
  // behave exactly as on a pool lane (serial, full range) even though the
  // thread is not owned by the pool.
  ThreadPool::ScopedInline guard;
  EXPECT_EQ(device::lane_count(), 1u);
  const std::size_t n = 4096;
  std::vector<uint32_t> hits(n, 0);  // serial: plain ints suffice
  device::parallel_for(n, [&](std::size_t i) { hits[i]++; }, 1);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1u) << i;
  const double got =
      device::parallel_reduce_sum(n, [](std::size_t i) { return double(i); }, 1);
  EXPECT_DOUBLE_EQ(got, double(n - 1) * double(n) / 2.0);
}

TEST(NestedParallel, SortIndicesFullySortedOnPoolLane) {
  // sort_indices sizes merge chunks with the lane count; nested use must
  // fall back to a full serial sort, not sort only the first chunk.
  auto& pool = ThreadPool::instance();
  const std::size_t n = 1u << 15;  // above the serial cutoff
  std::vector<uint32_t> keys(n);
  Rng rng(404);
  for (auto& k : keys) k = static_cast<uint32_t>(rng.next_below(1u << 20));
  std::vector<uint8_t> ok(pool.lanes(), 0);
  pool.run_on_lanes([&](unsigned lane) {
    auto idx = device::sort_indices(
        n, [&](uint32_t a, uint32_t b) { return keys[a] < keys[b]; });
    uint8_t sorted = idx.size() == n;
    for (std::size_t i = 1; i < idx.size(); ++i)
      if (keys[idx[i - 1]] > keys[idx[i]]) sorted = 0;
    ok[lane] = sorted;
  });
  for (unsigned lane = 0; lane < pool.lanes(); ++lane)
    EXPECT_TRUE(ok[lane]) << "lane " << lane;
}

TEST(Parallel, KernelStatsCountLaunches) {
  auto& stats = device::KernelStats::instance();
  stats.reset();
  device::parallel_for(10, [](std::size_t) {}, 1);
  device::parallel_for_strided(10, [](std::size_t) {}, 1);
  EXPECT_EQ(stats.launches.load(), 2u);
  EXPECT_EQ(stats.total_threads.load(), 20u);
}

class ScanProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanProperty, InclusiveMatchesSerialReference) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 1);
  std::vector<uint64_t> in(n);
  for (auto& v : in) v = rng.next_below(1000);
  std::vector<uint64_t> want(n);
  std::partial_sum(in.begin(), in.end(), want.begin());
  std::vector<uint64_t> got(n);
  device::inclusive_scan(in.data(), got.data(), n);
  EXPECT_EQ(got, want);
}

TEST_P(ScanProperty, ExclusiveMatchesSerialReferenceAndAliases) {
  const std::size_t n = GetParam();
  Rng rng(n * 37 + 5);
  std::vector<uint64_t> in(n);
  for (auto& v : in) v = rng.next_below(1000);
  uint64_t total_want = 0;
  std::vector<uint64_t> want(n);
  for (std::size_t i = 0; i < n; ++i) {
    want[i] = total_want;
    total_want += in[i];
  }
  // Aliased in-place form.
  std::vector<uint64_t> buf = in;
  const uint64_t total = device::exclusive_scan(buf.data(), buf.data(), n);
  EXPECT_EQ(buf, want);
  EXPECT_EQ(total, total_want);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanProperty,
                         ::testing::Values(0, 1, 2, 100, 16384, 16385, 100000));

class RadixSortProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RadixSortProperty, MatchesStdSort) {
  const std::size_t n = GetParam();
  Rng rng(n * 41 + 3);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.next_u64() >> (n % 3 == 0 ? 32 : 0);
  auto want = keys;
  std::sort(want.begin(), want.end());
  device::radix_sort(keys);
  EXPECT_EQ(keys, want);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSortProperty,
                         ::testing::Values(0, 1, 2, 3, 100, 4096, 65537));

TEST(RadixSortPairs, PayloadFollowsKeysStably) {
  Rng rng(99);
  const std::size_t n = 5000;
  std::vector<uint64_t> keys(n), payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.next_below(100);  // many duplicates -> stability matters
    payload[i] = i;
  }
  auto keys_copy = keys;
  device::radix_sort_pairs(keys, payload);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    EXPECT_LE(keys[i], keys[i + 1]);
    if (keys[i] == keys[i + 1]) EXPECT_LT(payload[i], payload[i + 1]);
  }
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(keys[i], keys_copy[payload[i]]);
}

TEST(SortIndices, DescendingDegreeOrderStable) {
  std::vector<uint32_t> deg{3, 1, 4, 1, 5, 9, 2, 6};
  auto idx = device::sort_indices(
      deg.size(), [&](uint32_t a, uint32_t b) { return deg[a] > deg[b]; });
  for (std::size_t i = 0; i + 1 < idx.size(); ++i) {
    EXPECT_GE(deg[idx[i]], deg[idx[i + 1]]);
    if (deg[idx[i]] == deg[idx[i + 1]]) EXPECT_LT(idx[i], idx[i + 1]);
  }
}

TEST(SortIndices, LargeInputSorted) {
  Rng rng(7);
  std::vector<uint32_t> deg(50000);
  for (auto& d : deg) d = static_cast<uint32_t>(rng.next_below(1000));
  auto idx = device::sort_indices(
      deg.size(), [&](uint32_t a, uint32_t b) { return deg[a] > deg[b]; });
  EXPECT_EQ(idx.size(), deg.size());
  for (std::size_t i = 0; i + 1 < idx.size(); ++i)
    EXPECT_GE(deg[idx[i]], deg[idx[i + 1]]);
}

TEST(MemoryTracker, ChargesAndReleases) {
  auto& mt = MemoryTracker::instance();
  const std::size_t before = mt.current_bytes();
  {
    DeviceBuffer<float> buf(1000, MemCategory::kScratch);
    EXPECT_EQ(mt.current_bytes(), before + 4000);
    EXPECT_GE(mt.peak_bytes(), before + 4000);
  }
  EXPECT_EQ(mt.current_bytes(), before);
}

TEST(MemoryTracker, PeakRegionTracksHighWater) {
  PeakMemoryRegion region;
  const std::size_t base = region.peak();
  {
    DeviceBuffer<uint64_t> a(512, MemCategory::kPma);
    DeviceBuffer<uint64_t> b(512, MemCategory::kPma);
    (void)a;
    (void)b;
  }
  EXPECT_GE(region.peak(), base + 2 * 512 * sizeof(uint64_t));
}

TEST(MemoryTracker, PerCategoryAccounting) {
  auto& mt = MemoryTracker::instance();
  const std::size_t before = mt.current_bytes(MemCategory::kEdgeMessage);
  DeviceBuffer<float> buf(10, MemCategory::kEdgeMessage);
  EXPECT_EQ(mt.current_bytes(MemCategory::kEdgeMessage), before + 40);
}

TEST(DeviceBuffer, MoveTransfersCharge) {
  auto& mt = MemoryTracker::instance();
  const std::size_t before = mt.current_bytes();
  DeviceBuffer<int> a(100, MemCategory::kGraph);
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(mt.current_bytes(), before + 400);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT: post-move inspection is the test
}

TEST(DeviceBuffer, CloneCopiesContent) {
  DeviceBuffer<int> a(5, MemCategory::kGraph);
  for (int i = 0; i < 5; ++i) a[i] = i * i;
  DeviceBuffer<int> b = a.clone();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(b[i], i * i);
  b[0] = 99;
  EXPECT_EQ(a[0], 0);
}

TEST(DeviceBuffer, HostRoundTrip) {
  std::vector<float> host{1.f, 2.f, 3.f};
  DeviceBuffer<float> buf(host, MemCategory::kTensor);
  EXPECT_EQ(buf.to_host(), host);
}

}  // namespace
}  // namespace stgraph
