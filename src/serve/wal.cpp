#include "serve/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "runtime/analyze.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"

namespace stgraph::serve::wal {

namespace {

void put_u32(std::string& buf, uint32_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_u64(std::string& buf, uint64_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_tensor(std::string& buf, const Tensor& t) {
  const uint32_t rows = t.defined() ? static_cast<uint32_t>(t.rows()) : 0;
  const uint32_t cols = t.defined() ? static_cast<uint32_t>(t.cols()) : 0;
  put_u32(buf, rows);
  put_u32(buf, cols);
  if (rows && cols)
    buf.append(reinterpret_cast<const char*>(t.data()),
               static_cast<std::size_t>(rows) * cols * sizeof(float));
}

std::string encode_payload(const Record& rec) {
  std::string buf;
  buf.push_back(static_cast<char>(rec.type));
  put_u32(buf, rec.time);
  put_u64(buf, rec.version);
  if (rec.type == RecordType::kStart) {
    put_tensor(buf, rec.features);
    put_tensor(buf, rec.hidden);
  } else {
    put_u32(buf, static_cast<uint32_t>(rec.delta.additions.size()));
    put_u32(buf, static_cast<uint32_t>(rec.delta.deletions.size()));
    for (const auto& [s, d] : rec.delta.additions) {
      put_u32(buf, s);
      put_u32(buf, d);
    }
    for (const auto& [s, d] : rec.delta.deletions) {
      put_u32(buf, s);
      put_u32(buf, d);
    }
    put_tensor(buf, rec.features);
  }
  return buf;
}

/// Bounds-checked cursor over one record payload. Returns false from any
/// getter once the payload is exhausted — the caller treats that record
/// (and everything after it) as the torn tail.
struct Cursor {
  const char* p;
  std::size_t left;

  bool bytes(void* out, std::size_t n) {
    if (left < n) return false;
    std::memcpy(out, p, n);
    p += n;
    left -= n;
    return true;
  }
  template <typename T>
  bool scalar(T* out) {
    return bytes(out, sizeof(T));
  }
  bool tensor(Tensor* out) {
    uint32_t rows = 0, cols = 0;
    if (!scalar(&rows) || !scalar(&cols)) return false;
    if (rows == 0 || cols == 0) {
      *out = Tensor();
      return true;
    }
    const std::size_t n = static_cast<std::size_t>(rows) * cols;
    if (left < n * sizeof(float)) return false;
    Tensor t = Tensor::empty({static_cast<int64_t>(rows),
                              static_cast<int64_t>(cols)});
    if (!bytes(t.data(), n * sizeof(float))) return false;
    *out = t;
    return true;
  }
};

bool decode_payload(const char* data, std::size_t n, Record* rec) {
  Cursor c{data, n};
  uint8_t type = 0;
  if (!c.scalar(&type)) return false;
  if (type != static_cast<uint8_t>(RecordType::kStart) &&
      type != static_cast<uint8_t>(RecordType::kIngest))
    return false;
  rec->type = static_cast<RecordType>(type);
  if (!c.scalar(&rec->time) || !c.scalar(&rec->version)) return false;
  if (rec->type == RecordType::kStart) {
    if (!c.tensor(&rec->features) || !c.tensor(&rec->hidden)) return false;
  } else {
    uint32_t n_add = 0, n_del = 0;
    if (!c.scalar(&n_add) || !c.scalar(&n_del)) return false;
    // Sanity-bound the claimed counts against the remaining payload before
    // reserving (the corrupt-file discipline of io::Reader).
    if (c.left < (static_cast<std::size_t>(n_add) + n_del) * 8) return false;
    rec->delta.additions.clear();
    rec->delta.deletions.clear();
    rec->delta.additions.reserve(n_add);
    rec->delta.deletions.reserve(n_del);
    for (uint32_t i = 0; i < n_add; ++i) {
      uint32_t s = 0, d = 0;
      if (!c.scalar(&s) || !c.scalar(&d)) return false;
      rec->delta.additions.emplace_back(s, d);
    }
    for (uint32_t i = 0; i < n_del; ++i) {
      uint32_t s = 0, d = 0;
      if (!c.scalar(&s) || !c.scalar(&d)) return false;
      rec->delta.deletions.emplace_back(s, d);
    }
    if (!c.tensor(&rec->features)) return false;
  }
  return c.left == 0;  // trailing garbage inside a record = invalid
}

}  // namespace

Writer::Writer(const std::string& path, bool truncate, uint32_t sync_every)
    : path_(path), sync_every_(sync_every) {
  if (analyze::armed()) analyze::on_blocking_call("file-io(wal)");
  int flags = O_CREAT | O_WRONLY | (truncate ? O_TRUNC : 0);
  fd_ = ::open(path.c_str(), flags, 0644);
  STG_CHECK(fd_ >= 0, "wal: cannot open '", path, "': ", std::strerror(errno));
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  STG_CHECK(end >= 0, "wal: lseek failed on '", path, "'");
  if (end == 0) {
    std::string hdr;
    put_u32(hdr, kMagic);
    put_u32(hdr, kVersion);
    const ssize_t n = ::write(fd_, hdr.data(), hdr.size());
    STG_CHECK(n == static_cast<ssize_t>(hdr.size()),
              "wal: header write to '", path, "' failed");
    STG_CHECK(::fsync(fd_) == 0, "wal: fsync failed on '", path, "'");
  }
}

Writer::~Writer() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

void Writer::append(const Record& rec) {
  if (analyze::armed()) analyze::on_blocking_call("file-io(wal)");
  STG_CHECK(fd_ >= 0, "wal: append on a closed writer");
  const off_t before = ::lseek(fd_, 0, SEEK_END);
  STG_CHECK(before >= 0, "wal: lseek failed on '", path_, "'");
  try {
    STG_FAILPOINT("serve.wal.append",
                  throw StgError("failpoint serve.wal.append fired at t=" +
                                 std::to_string(rec.time)));
    const std::string payload = encode_payload(rec);
    std::string frame;
    put_u32(frame, static_cast<uint32_t>(payload.size()));
    put_u32(frame, crc32(payload.data(), payload.size()));
    frame += payload;
    std::size_t done = 0;
    while (done < frame.size()) {
      const ssize_t n = ::write(fd_, frame.data() + done, frame.size() - done);
      STG_CHECK(n > 0, "wal: write to '", path_, "' failed: ",
                std::strerror(errno));
      done += static_cast<std::size_t>(n);
    }
    ++records_;
    bytes_ += frame.size();
    ++unsynced_;
    if (sync_every_ != 0 && unsynced_ >= sync_every_) sync();
  } catch (...) {
    // Roll the file back to the pre-record offset: the live log must never
    // carry a torn record (torn tails are for kill -9, not soft failures).
    if (::ftruncate(fd_, before) == 0) ::fsync(fd_);
    throw;
  }
}

void Writer::sync() {
  if (analyze::armed()) analyze::on_blocking_call("file-io(wal)");
  STG_CHECK(fd_ >= 0, "wal: sync on a closed writer");
  STG_CHECK(::fsync(fd_) == 0, "wal: fsync failed on '", path_, "': ",
            std::strerror(errno));
  unsynced_ = 0;
}

ReadResult read(const std::string& path) {
  if (analyze::armed()) analyze::on_blocking_call("file-io(wal)");
  std::ifstream in(path, std::ios::binary);
  STG_CHECK(in.good(), "wal: cannot open '", path, "'");
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  STG_CHECK(buf.size() >= 8, "wal: '", path, "' is shorter than a header");
  uint32_t magic = 0, version = 0;
  std::memcpy(&magic, buf.data(), 4);
  std::memcpy(&version, buf.data() + 4, 4);
  STG_CHECK(magic == kMagic, "wal: '", path, "' has wrong magic");
  STG_CHECK(version == kVersion, "wal: '", path, "' has unsupported version ",
            version);

  ReadResult r;
  r.total_bytes = buf.size();
  std::size_t pos = 8;
  r.valid_bytes = pos;
  while (pos < buf.size()) {
    if (buf.size() - pos < 8) break;  // partial frame header → torn
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, buf.data() + pos, 4);
    std::memcpy(&crc, buf.data() + pos + 4, 4);
    if (buf.size() - pos - 8 < len) break;  // partial payload → torn
    const char* payload = buf.data() + pos + 8;
    if (crc32(payload, len) != crc) break;  // bit rot / torn write → torn
    Record rec;
    if (!decode_payload(payload, len, &rec)) break;
    r.records.push_back(std::move(rec));
    pos += 8 + len;
    r.valid_bytes = pos;
  }
  r.torn_tail = r.valid_bytes != r.total_bytes;
  return r;
}

void truncate_torn_tail(const std::string& path, const ReadResult& r) {
  if (!r.torn_tail) return;
  const int fd = ::open(path.c_str(), O_WRONLY);
  STG_CHECK(fd >= 0, "wal: cannot open '", path, "' for truncation");
  const int rc = ::ftruncate(fd, static_cast<off_t>(r.valid_bytes));
  ::fsync(fd);
  ::close(fd);
  STG_CHECK(rc == 0, "wal: truncating '", path, "' to ", r.valid_bytes,
            " bytes failed");
}

}  // namespace stgraph::serve::wal
