// Compiler tests: tracing, pass pipeline, IR autodiff, and kernel
// execution against dense-matrix references (including gapped views and
// the feature-tile scheduling path).
#include <gtest/gtest.h>

#include <cmath>

#include "compiler/autodiff.hpp"
#include "compiler/kernel.hpp"
#include "compiler/passes.hpp"
#include "compiler/trace.hpp"
#include "graph/dtdg.hpp"
#include "graph/static_graph.hpp"
#include <set>
#include "util/rng.hpp"

namespace stgraph {
namespace {

using namespace compiler;

TEST(Trace, GcnProgramStructure) {
  Program p = trace([](VertexContext& v) -> AggExpr {
    auto msg = v.gcn_norm() * v.edge_weight() * v.src_feature(0);
    return v.agg_sum(msg).with_self_loop(v.gcn_norm());
  });
  EXPECT_EQ(p.agg, AggKind::kSum);
  ASSERT_EQ(p.terms.size(), 1u);
  EXPECT_EQ(p.terms[0].coefs.size(), 2u);
  EXPECT_TRUE(p.include_self);
  EXPECT_EQ(p.num_inputs(), 1);
  EXPECT_NE(p.to_string().find("gcn_norm"), std::string::npos);
}

TEST(Trace, SumOfTermsAndScale) {
  Program p = trace([](VertexContext& v) -> AggExpr {
    auto msg = v.constant(2.0f) * v.src_feature(0) +
               v.inv_degree() * v.src_feature(1);
    return v.agg_sum(msg).scaled(0.5f);
  });
  EXPECT_EQ(p.terms.size(), 2u);
  EXPECT_EQ(p.num_inputs(), 2);
  EXPECT_EQ(p.out_scale, 0.5f);
}

TEST(Passes, FoldConstantsCollapsesProducts) {
  Program p = trace([](VertexContext& v) -> AggExpr {
    auto msg = v.constant(2.0f) * (v.constant(3.0f) * v.src_feature(0));
    return v.agg_sum(msg);
  });
  Program f = fold_constants(p);
  ASSERT_EQ(f.terms[0].coefs.size(), 1u);
  EXPECT_EQ(f.terms[0].coefs[0].kind, CoefKind::kConst);
  EXPECT_EQ(f.terms[0].coefs[0].value, 6.0f);
}

TEST(Passes, LowerMeanAddsInvDegree) {
  Program p = trace([](VertexContext& v) -> AggExpr {
    return v.agg_mean(v.src_feature(0));
  });
  Program l = lower_mean(p);
  EXPECT_EQ(l.agg, AggKind::kSum);
  ASSERT_EQ(l.terms[0].coefs.size(), 1u);
  EXPECT_EQ(l.terms[0].coefs[0].kind, CoefKind::kInvDegree);
}

TEST(Passes, DedupMergesStructurallyEqualTerms) {
  Program p = trace([](VertexContext& v) -> AggExpr {
    auto msg = v.constant(2.0f) * v.src_feature(0) +
               v.constant(3.0f) * v.src_feature(0);
    return v.agg_sum(msg);
  });
  Program d = optimize(p);
  ASSERT_EQ(d.terms.size(), 1u);
  EXPECT_EQ(d.terms[0].coefs[0].value, 5.0f);
}

TEST(Passes, DeadTermElimination) {
  Program p = trace([](VertexContext& v) -> AggExpr {
    auto msg = v.constant(0.0f) * v.src_feature(0) +
               v.constant(1.0f) * v.src_feature(0);
    return v.agg_sum(msg).with_self_loop(v.constant(0.0f));
  });
  Program o = optimize(p);
  EXPECT_EQ(o.terms.size(), 1u);
  EXPECT_FALSE(o.include_self);
}

TEST(Passes, OptimizeIsIdempotent) {
  Program p = trace([](VertexContext& v) -> AggExpr {
    auto msg = v.gcn_norm() * v.constant(2.0f) * v.src_feature(0);
    return v.agg_mean(msg).with_self_loop(v.gcn_norm());
  });
  Program once = optimize(p);
  Program twice = optimize(once);
  EXPECT_TRUE(once == twice);
}

TEST(Autodiff, BackwardProgramMirrorsForward) {
  Program fwd = optimize(trace([](VertexContext& v) -> AggExpr {
    auto msg = v.gcn_norm() * v.src_feature(0);
    return v.agg_sum(msg).with_self_loop(v.gcn_norm());
  }));
  Program bwd = differentiate(fwd, 0);
  ASSERT_EQ(bwd.terms.size(), 1u);
  EXPECT_EQ(bwd.terms[0].coefs, fwd.terms[0].coefs);
  EXPECT_TRUE(bwd.include_self);
  BackwardNeeds needs = backward_needs(fwd);
  EXPECT_FALSE(needs.input_features);  // the State-Stack pruning enabler
  EXPECT_FALSE(needs.output_values);
  EXPECT_TRUE(needs.graph);
}

TEST(Autodiff, InputSelectionFiltersTerms) {
  Program fwd = optimize(trace([](VertexContext& v) -> AggExpr {
    auto msg = v.constant(2.0f) * v.src_feature(0) +
               v.constant(3.0f) * v.src_feature(1);
    return v.agg_sum(msg);
  }));
  Program b0 = differentiate(fwd, 0);
  Program b1 = differentiate(fwd, 1);
  ASSERT_EQ(b0.terms.size(), 1u);
  ASSERT_EQ(b1.terms.size(), 1u);
  EXPECT_EQ(b0.terms[0].coefs[0].value, 2.0f);
  EXPECT_EQ(b1.terms[0].coefs[0].value, 3.0f);
  EXPECT_THROW(differentiate(fwd, 2), StgError);
}

// ---- kernel execution vs dense reference ------------------------------

// Dense reference: out[v] = Σ_u A[u][v]-weighted messages + self term.
std::vector<float> dense_gcn_reference(
    uint32_t n, const EdgeList& edges, const std::vector<float>& x, int64_t F,
    const std::vector<float>* edge_w) {
  std::vector<uint32_t> din(n, 0);
  for (const auto& [u, v] : edges) ++din[v];
  std::vector<float> out(n * F, 0.0f);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto& [u, v] = edges[e];
    float c = 1.0f / std::sqrt(float(din[u] + 1) * float(din[v] + 1));
    if (edge_w) c *= (*edge_w)[e];
    for (int64_t f = 0; f < F; ++f) out[v * F + f] += c * x[u * F + f];
  }
  for (uint32_t v = 0; v < n; ++v) {
    const float c = 1.0f / float(din[v] + 1);
    for (int64_t f = 0; f < F; ++f) out[v * F + f] += c * x[v * F + f];
  }
  return out;
}

class KernelVsDense : public ::testing::TestWithParam<int64_t> {};

TEST_P(KernelVsDense, ForwardMatchesAcrossFeatureSizes) {
  const int64_t F = GetParam();  // crosses the feature-tile threshold
  Rng rng(5);
  const uint32_t n = 30;
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (int i = 0; i < 150; ++i) {
    uint32_t s = rng.next_below(n), d = rng.next_below(n);
    if (s == d || !seen.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  std::vector<float> x(n * F);
  for (auto& v : x) v = rng.normal();
  std::vector<float> ew(edges.size());
  for (auto& w : ew) w = rng.uniform(0.5f, 1.5f);

  StaticTemporalGraph graph(n, edges, 1);
  SnapshotView view = graph.get_graph(0);

  KernelSpec spec = compile(trace([](VertexContext& v) -> AggExpr {
    auto msg = v.gcn_norm() * v.edge_weight() * v.src_feature(0);
    return v.agg_sum(msg).with_self_loop(v.gcn_norm());
  }));

  std::vector<float> out(n * F, -1.0f);
  KernelArgs args;
  args.view = view.in_view;
  args.in_degrees = view.in_degrees;
  const float* inputs[1] = {x.data()};
  args.inputs = inputs;
  args.self_features = x.data();
  args.edge_weights = ew.data();
  args.out = out.data();
  args.num_feats = static_cast<uint32_t>(F);
  args.producer_is_col = true;

  run_kernel(spec, args);
  const auto want = dense_gcn_reference(n, edges, x, F, &ew);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], want[i], 1e-4f) << i;
}

INSTANTIATE_TEST_SUITE_P(FeatureSizes, KernelVsDense,
                         ::testing::Values(1, 4, 16, 63, 64, 100, 128));

TEST(Kernel, BackwardIsTransposeOfForward) {
  // For a linear operator Y = L(X): <L(X), G> == <X, Lᵀ(G)> for all X, G.
  Rng rng(7);
  const uint32_t n = 25;
  const int64_t F = 6;
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (int i = 0; i < 120; ++i) {
    uint32_t s = rng.next_below(n), d = rng.next_below(n);
    if (s == d || !seen.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  StaticTemporalGraph graph(n, edges, 1);
  SnapshotView view = graph.get_graph(0);

  Program fwd_prog = optimize(trace([](VertexContext& v) -> AggExpr {
    auto msg = v.gcn_norm() * v.src_feature(0);
    return v.agg_sum(msg).with_self_loop(v.gcn_norm());
  }));
  KernelSpec fwd = compile(fwd_prog);
  KernelSpec bwd = compile(differentiate(fwd_prog, 0));

  std::vector<float> x(n * F), g(n * F);
  for (auto& v : x) v = rng.normal();
  for (auto& v : g) v = rng.normal();

  std::vector<float> lx(n * F), ltg(n * F);
  {
    KernelArgs a;
    a.view = view.in_view;
    a.in_degrees = view.in_degrees;
    const float* in[1] = {x.data()};
    a.inputs = in;
    a.self_features = x.data();
    a.out = lx.data();
    a.num_feats = F;
    a.producer_is_col = true;
    run_kernel(fwd, a);
  }
  {
    KernelArgs a;
    a.view = view.out_view;
    a.in_degrees = view.in_degrees;
    const float* in[1] = {g.data()};
    a.inputs = in;
    a.self_features = g.data();
    a.out = ltg.data();
    a.num_feats = F;
    a.producer_is_col = false;
    run_kernel(bwd, a);
  }
  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    lhs += double(lx[i]) * g[i];
    rhs += double(x[i]) * ltg[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::abs(lhs)));
}

TEST(Kernel, GappedViewSkipsSpaceSlots) {
  // Manually gapped adjacency: same result as the compact equivalent.
  const uint32_t n = 3;
  const int64_t F = 2;
  // Edges 0→1, 2→1 with in-degrees [0, 2, 0].
  DeviceBuffer<uint32_t> ro(std::vector<uint32_t>{0, 2, 3, 5},
                            MemCategory::kGraph);
  DeviceBuffer<uint32_t> col(std::vector<uint32_t>{1, kSpace, kSpace, 1, kSpace},
                             MemCategory::kGraph);
  DeviceBuffer<uint32_t> eids(std::vector<uint32_t>{0, kSpace, kSpace, 1, kSpace},
                              MemCategory::kGraph);
  std::vector<uint32_t> din{0, 2, 0};

  KernelSpec spec = compile(trace([](VertexContext& v) -> AggExpr {
    return v.agg_sum(v.constant(1.0f) * v.src_feature(0));
  }));
  // Backward-direction iteration over the gapped out view: rows are
  // producers; out[u] += Σ_{v ∈ out(u)} g[v].
  std::vector<float> g{1, 2, 3, 4, 5, 6};  // 3×2
  std::vector<float> out(n * F, -1);
  KernelArgs a;
  a.view.num_nodes = n;
  a.view.num_edges = 2;
  a.view.row_offset = ro.data();
  a.view.col_indices = col.data();
  a.view.eids = eids.data();
  a.view.has_gaps = true;
  a.in_degrees = din.data();
  const float* in[1] = {g.data()};
  a.inputs = in;
  a.self_features = g.data();
  a.out = out.data();
  a.num_feats = F;
  a.producer_is_col = false;
  run_kernel(spec, a);
  // Row 0 gathers g[1] = (3,4); row 1 has only a SPACE slot; row 2 gathers
  // g[1] again.
  EXPECT_EQ(out, (std::vector<float>{3, 4, 0, 0, 3, 4}));
}

TEST(Kernel, MissingBindingsThrow) {
  KernelSpec spec = compile(trace([](VertexContext& v) -> AggExpr {
    return v.agg_sum(v.edge_weight() * v.src_feature(0));
  }));
  std::vector<float> buf(4);
  KernelArgs a;
  a.view.num_nodes = 0;
  const float* in[1] = {buf.data()};
  a.inputs = in;
  a.out = buf.data();
  a.num_feats = 1;
  a.edge_weights = nullptr;  // required by the program
  EXPECT_THROW(run_kernel(spec, a), StgError);
}

}  // namespace
}  // namespace stgraph
