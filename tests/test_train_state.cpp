// Full-state checkpoint container ("STGT"): field-exact round trips, CRC
// torn-write detection, truncation robustness at every byte boundary, and
// the atomic publish contract of io::Writer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "io/binary_format.hpp"
#include "io/train_state.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_("/tmp/stgraph_ts_test_" + tag + "_" +
              std::to_string(::getpid())) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

io::TrainState sample_state() {
  Rng rng(123);
  io::TrainState st;
  st.config_hash = 0xfeedfacecafef00dULL;
  st.epoch = 3;
  st.next_sequence = 7;
  st.lr = 2.5e-3f;
  st.optimizer_step_count = 41;
  st.consecutive_failures = 2;
  st.non_finite_losses = 1;
  st.non_finite_grads = 4;
  st.skipped_steps = 5;
  st.lr_halvings = 1;
  st.epoch_loss_total = 17.25;
  st.epoch_steps = 96;
  rng.normal();  // populate the Box–Muller carry
  st.rng = rng.state();
  st.params.push_back({"layer.weight", Tensor::randn({4, 3}, rng)});
  st.params.push_back({"layer.bias", Tensor::randn({1, 3}, rng)});
  for (const auto& p : st.params) {
    st.moment1.push_back(Tensor::randn(p.tensor.shape(), rng));
    st.moment2.push_back(Tensor::randn(p.tensor.shape(), rng));
  }
  st.hidden = Tensor::randn({6, 2}, rng);
  return st;
}

class TrainStateTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::disable_all(); }
};

TEST_F(TrainStateTest, RoundTripRestoresEveryField) {
  io::TrainState st = sample_state();
  TempFile f("roundtrip");
  io::save_train_state(st, f.path());
  io::TrainState back = io::load_train_state(f.path());

  EXPECT_EQ(back.config_hash, st.config_hash);
  EXPECT_EQ(back.epoch, st.epoch);
  EXPECT_EQ(back.next_sequence, st.next_sequence);
  EXPECT_EQ(back.lr, st.lr);
  EXPECT_EQ(back.optimizer_step_count, st.optimizer_step_count);
  EXPECT_EQ(back.consecutive_failures, st.consecutive_failures);
  EXPECT_EQ(back.non_finite_losses, st.non_finite_losses);
  EXPECT_EQ(back.non_finite_grads, st.non_finite_grads);
  EXPECT_EQ(back.skipped_steps, st.skipped_steps);
  EXPECT_EQ(back.lr_halvings, st.lr_halvings);
  EXPECT_EQ(back.epoch_loss_total, st.epoch_loss_total);
  EXPECT_EQ(back.epoch_steps, st.epoch_steps);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back.rng.s[i], st.rng.s[i]);
  EXPECT_EQ(back.rng.has_cached_normal, st.rng.has_cached_normal);
  EXPECT_EQ(back.rng.cached_normal, st.rng.cached_normal);
  ASSERT_EQ(back.params.size(), st.params.size());
  for (std::size_t i = 0; i < st.params.size(); ++i) {
    EXPECT_EQ(back.params[i].name, st.params[i].name);
    EXPECT_EQ(back.params[i].tensor.to_vector(),
              st.params[i].tensor.to_vector());
    EXPECT_EQ(back.moment1[i].to_vector(), st.moment1[i].to_vector());
    EXPECT_EQ(back.moment2[i].to_vector(), st.moment2[i].to_vector());
  }
  ASSERT_TRUE(back.hidden.defined());
  EXPECT_EQ(back.hidden.to_vector(), st.hidden.to_vector());
}

TEST_F(TrainStateTest, UndefinedHiddenStateRoundTrips) {
  io::TrainState st = sample_state();
  st.hidden = Tensor();
  TempFile f("nohidden");
  io::save_train_state(st, f.path());
  EXPECT_FALSE(io::load_train_state(f.path()).hidden.defined());
}

TEST_F(TrainStateTest, RestoredRngContinuesTheStreamExactly) {
  Rng original(777);
  for (int i = 0; i < 13; ++i) original.normal();  // advance mid-stream
  io::TrainState st = sample_state();
  st.rng = original.state();
  TempFile f("rngstream");
  io::save_train_state(st, f.path());

  Rng restored(1);  // wrong seed, fully overwritten by set_state
  restored.set_state(io::load_train_state(f.path()).rng);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(restored.next_u64(), original.next_u64()) << "draw " << i;
  }
}

TEST_F(TrainStateTest, FlippedByteFailsCrcCheck) {
  io::TrainState st = sample_state();
  TempFile f("crcflip");
  io::save_train_state(st, f.path());
  std::string bytes = slurp(f.path());
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x40;  // corrupt one payload byte
  std::ofstream(f.path(), std::ios::binary) << bytes;
  EXPECT_THROW(io::load_train_state(f.path()), StgError);
}

TEST_F(TrainStateTest, TruncationAtEveryByteBoundaryThrows) {
  io::TrainState st = sample_state();
  TempFile f("truncsweep");
  io::save_train_state(st, f.path());
  const std::string bytes = slurp(f.path());
  ASSERT_GT(bytes.size(), 0u);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::ofstream(f.path(), std::ios::binary | std::ios::trunc)
        << bytes.substr(0, cut);
    EXPECT_THROW(io::load_train_state(f.path()), StgError)
        << "cut at byte " << cut << " of " << bytes.size();
  }
}

TEST_F(TrainStateTest, ValidCrcWithWrongMagicStillRejected) {
  TempFile f("badmagic");
  std::string payload = "XXXXYYYYnot a train state at all";
  const uint32_t crc = crc32(payload.data(), payload.size());
  payload.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  std::ofstream(f.path(), std::ios::binary) << payload;
  EXPECT_THROW(io::load_train_state(f.path()), StgError);
}

TEST_F(TrainStateTest, ShortWriteFailpointIsDetectedOnLoad) {
  io::TrainState st = sample_state();
  TempFile f("shortwrite");
  failpoint::enable("io.write.short", failpoint::Spec::once());
  io::save_train_state(st, f.path());  // publishes a torn file
  EXPECT_THROW(io::load_train_state(f.path()), StgError);
  // A clean rewrite over the torn file recovers.
  io::save_train_state(st, f.path());
  EXPECT_EQ(io::load_train_state(f.path()).epoch, st.epoch);
}

TEST_F(TrainStateTest, AbandonedWriterLeavesDestinationUntouched) {
  io::TrainState st = sample_state();
  TempFile f("abandon");
  io::save_train_state(st, f.path());
  const std::string before = slurp(f.path());
  {
    io::Writer w(f.path());
    const uint64_t junk = 0xdeadbeef;
    w.scalar(junk);
    // No finish(): simulates a crash mid-write. Destructor discards the
    // temp file; the published file must be byte-identical.
  }
  EXPECT_EQ(slurp(f.path()), before);
  EXPECT_THROW(io::Reader((f.path() + ".tmp." + std::to_string(::getpid())))
                   .scalar<uint8_t>(),
               StgError);  // temp file must be gone
}

}  // namespace
}  // namespace stgraph
