// Full-state training checkpoints ("STGT" container): everything the
// fault-tolerant trainer needs to restart a multi-epoch DTDG run at an
// exact sequence boundary and reproduce the uninterrupted run bit for bit
// — model parameters, Adam moments and step count, the current (possibly
// guard-halved) learning rate, the trainer's RNG stream, the carried
// hidden state, the epoch/sequence cursor, and the epoch's running loss
// accumulators.
//
// The container is written atomically (temp + fsync + rename) and closes
// with a CRC-32 footer, so a torn write is detected by load_train_state
// before a single field is trusted. `config_hash` pins the TrainConfig
// that produced the state; the trainer refuses to resume under a
// different configuration.
#pragma once

#include <string>
#include <vector>

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace stgraph::io {

struct TrainState {
  // ---- identity ----------------------------------------------------------
  /// FNV-1a hash of the producing TrainConfig (see STGraphTrainer).
  uint64_t config_hash = 0;

  // ---- position ---------------------------------------------------------
  uint32_t epoch = 0;          ///< epoch the run is inside
  uint32_t next_sequence = 0;  ///< first sequence index NOT yet trained

  // ---- optimization state ----------------------------------------------
  float lr = 0.0f;  ///< current learning rate (after any guard halvings)
  int64_t optimizer_step_count = 0;           ///< Adam t_
  std::vector<nn::Parameter> params;          ///< model tensors, dotted names
  std::vector<Tensor> moment1;                ///< Adam m_, aligned with params
  std::vector<Tensor> moment2;                ///< Adam v_, aligned with params
  Tensor hidden;  ///< carried hidden state at the cursor (may be undefined)

  // ---- rng / guards / epoch accumulators --------------------------------
  RngState rng;
  uint32_t consecutive_failures = 0;
  uint64_t non_finite_losses = 0;
  uint64_t non_finite_grads = 0;
  uint64_t skipped_steps = 0;
  uint64_t lr_halvings = 0;
  double epoch_loss_total = 0.0;
  uint64_t epoch_steps = 0;
};

/// Strict positional restore of `saved` parameters into the `live`
/// parameters of a model. Both lists derive from Module::parameters()
/// traversal order, so a positional name + shape match is the right check;
/// data is copied into the live tensors (shared storage — the model sees
/// the new values). `context` prefixes error messages (typically the
/// checkpoint path). Shared by STGraphTrainer::resume() and
/// serve::ModelSnapshot::install().
void restore_parameters(std::vector<nn::Parameter>& live,
                        const std::vector<nn::Parameter>& saved,
                        const std::string& context);

/// Serialize `state` to `path` atomically with a CRC-32 footer.
void save_train_state(const TrainState& state, const std::string& path);

/// Load and validate a train state; throws StgError on any torn,
/// truncated, or corrupted file.
TrainState load_train_state(const std::string& path);

}  // namespace stgraph::io
