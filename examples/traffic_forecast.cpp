// Traffic forecasting on a bus network — the workload class the TGCN
// paper (and PyG-T's Montevideo-Bus dataset) targets: predict passenger
// inflow at each stop from the last F observations, using the road-graph
// structure for spatial smoothing.
//
// This example goes further than the quickstart:
//   * train/validation split over time,
//   * a custom vertex-centric layer traced by the user (mean-aggregation
//     GraphSAGE-style), stacked under the TGCN head,
//   * per-node error reporting for the worst-predicted stops.
//
// Build & run:  ./build/examples/traffic_forecast
#include <algorithm>
#include <iostream>

#include "compiler/autodiff.hpp"
#include "compiler/passes.hpp"
#include "compiler/trace.hpp"
#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "graph/static_graph.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

using namespace stgraph;

int main() {
  datasets::StaticLoadOptions opts;
  opts.feature_size = 6;  // six past observations per stop
  opts.num_timestamps = 72;
  opts.scale = 0.5;       // ~340 stops
  datasets::StaticTemporalDataset ds = datasets::load_montevideo_bus(opts);
  std::cout << "bus network: " << ds.num_nodes << " stops, "
            << ds.edges.size() << " road segments, " << ds.num_timestamps
            << " intervals\n";

  // Demonstrate the vertex-centric frontend directly: trace the mean
  // aggregation a GraphSAGE-style layer would use and inspect the IR the
  // compiler optimizes it into.
  compiler::Program sage = compiler::trace(
      [](compiler::VertexContext& v) -> compiler::AggExpr {
        return v.agg_mean(v.src_feature(0));
      });
  std::cout << "traced vertex program: " << sage.to_string() << "\n";
  std::cout << "optimized:             "
            << compiler::optimize(sage).to_string() << "\n";
  std::cout << "backward program:      "
            << compiler::differentiate(compiler::optimize(sage)).to_string()
            << "\n\n";

  // Temporal split: train on the first 3/4 of the signal, validate on the
  // rest. (The split slices the per-timestamp tensors — no copying.)
  const uint32_t t_split = ds.num_timestamps * 3 / 4;
  datasets::TemporalSignal train_sig, valid_sig;
  train_sig.edge_weights = ds.signal.edge_weights;
  valid_sig.edge_weights = ds.signal.edge_weights;
  for (uint32_t t = 0; t < ds.num_timestamps; ++t) {
    auto& dst = t < t_split ? train_sig : valid_sig;
    dst.features.push_back(ds.signal.features[t]);
    dst.targets.push_back(ds.signal.targets[t]);
  }

  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(7);
  nn::TGCNRegressor model(opts.feature_size, 16, rng);

  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = 12;
  cfg.lr = 1e-2f;
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, model, train_sig, cfg);
  core::STGraphTrainer validator(graph, model, valid_sig, cfg);

  double best_valid = 1e30;
  for (int epoch = 1; epoch <= 25; ++epoch) {
    const double train_mse = trainer.train_epoch().loss;
    const double valid_mse = validator.evaluate();
    best_valid = std::min(best_valid, valid_mse);
    if (epoch % 5 == 0) {
      std::cout << "epoch " << epoch << "  train " << train_mse << "  valid "
                << valid_mse << "\n";
    }
  }
  std::cout << "best validation mse: " << best_valid << "\n\n";

  // Per-stop error analysis on the last validation interval.
  {
    NoGradGuard ng;
    core::TemporalExecutor exec(graph);
    Tensor h = model.initial_state(ds.num_nodes);
    Tensor pred;
    for (uint32_t t = 0; t < valid_sig.num_timestamps(); ++t) {
      exec.begin_forward_step(t_split + t);
      auto [y, h_next] =
          model.step(exec, valid_sig.features[t], h,
                     valid_sig.edge_weights.data());
      pred = y;
      h = h_next;
    }
    const Tensor& target = valid_sig.targets.back();
    std::vector<std::pair<float, uint32_t>> errors;
    for (uint32_t v = 0; v < ds.num_nodes; ++v) {
      const float e = std::abs(pred.at(v, 0) - target.at(v, 0));
      errors.emplace_back(e, v);
    }
    std::sort(errors.rbegin(), errors.rend());
    std::cout << "worst-predicted stops (last interval):\n";
    for (int i = 0; i < 5; ++i) {
      std::cout << "  stop " << errors[i].second << "  |error| = "
                << errors[i].first << "\n";
    }
  }
  return 0;
}
