// State Stack (paper §V-A2): the executor-owned LIFO that matches forward
// and backward passes over a training sequence. During the forward pass of
// timestamps t_1..t_N the executor pushes each timestamp's input tensors;
// the backward pass pops them in reverse order. Keeping this inside the
// framework (instead of relying on backend storage) is what keeps STGraph
// backend-agnostic.
//
// Push returns a ticket; pop requires the matching ticket so the LIFO
// discipline is enforced — a mismatched pop is a framework bug and throws.
//
// The memory optimization from the paper (compare forward vs backward IR
// and store only what backward needs) is applied by the callers: layers
// consult compiler::backward_needs() and push the pruned tensor set. The
// stack itself reports held device bytes so benches can attribute memory.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace stgraph::core {

class StateStack {
 public:
  using Ticket = uint64_t;

  /// Push one timestamp's saved tensors; returns the ticket the matching
  /// backward step must pop with.
  Ticket push(std::vector<Tensor> tensors);

  /// Pop the top entry. `expected` must be the ticket of the top entry
  /// (LIFO discipline violated otherwise).
  std::vector<Tensor> pop(Ticket expected);

  bool empty() const { return entries_.empty(); }
  std::size_t depth() const { return entries_.size(); }

  /// Drop every held entry (executor abort path): releases the saved
  /// tensors of a sequence whose backward pass will never run. Ticket
  /// numbering continues — outstanding tickets become permanently invalid.
  void clear() { entries_.clear(); }

  /// Bytes of tensor storage currently held alive by the stack.
  std::size_t device_bytes() const;

  /// High-water mark of device_bytes() since construction/reset.
  std::size_t peak_device_bytes() const { return peak_bytes_; }
  void reset_peak() { peak_bytes_ = device_bytes(); }

  /// Total pushes (tests/benches).
  uint64_t push_count() const { return next_ticket_; }

 private:
  struct Entry {
    Ticket ticket;
    std::vector<Tensor> tensors;
  };
  std::vector<Entry> entries_;
  Ticket next_ticket_ = 0;
  std::size_t peak_bytes_ = 0;
};

}  // namespace stgraph::core
