// GCNStack — a deep GCN encoder: K SeastarGCNConv layers with ReLU and
// optional inverted dropout between them. The multi-layer spatial
// building block for models that need more than one hop of context per
// timestep (each layer widens the receptive field by one hop).
#pragma once

#include <memory>
#include <vector>

#include "nn/gcn.hpp"
#include "util/rng.hpp"

namespace stgraph::nn {

class GCNStack : public Module {
 public:
  /// dims = {in, hidden..., out}; dims.size() - 1 conv layers.
  GCNStack(const std::vector<int64_t>& dims, Rng& rng, float dropout = 0.0f);

  /// Forward through all layers over the executor's current snapshot.
  /// Dropout is applied between layers only in training mode (uses the
  /// module's own RNG stream for reproducibility).
  Tensor forward(core::TemporalExecutor& exec, const Tensor& x,
                 const float* edge_weights = nullptr);

  std::size_t depth() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<SeastarGCNConv>> layers_;
  float dropout_;
  Rng dropout_rng_;
};

}  // namespace stgraph::nn
