#include "core/state_stack.hpp"

#include "util/check.hpp"

namespace stgraph::core {

StateStack::Ticket StateStack::push(std::vector<Tensor> tensors) {
  const Ticket ticket = next_ticket_++;
  entries_.push_back(Entry{ticket, std::move(tensors)});
  peak_bytes_ = std::max(peak_bytes_, device_bytes());
  return ticket;
}

std::vector<Tensor> StateStack::pop(Ticket expected) {
  STG_CHECK(!entries_.empty(), "State Stack pop on empty stack (ticket ",
            expected, ")");
  STG_CHECK(entries_.back().ticket == expected,
            "State Stack LIFO discipline violated: top ticket ",
            entries_.back().ticket, ", popped ", expected,
            " — forward/backward timestamp order mismatch");
  std::vector<Tensor> out = std::move(entries_.back().tensors);
  entries_.pop_back();
  return out;
}

std::size_t StateStack::device_bytes() const {
  std::size_t total = 0;
  for (const Entry& e : entries_) {
    for (const Tensor& t : e.tensors) {
      if (t.defined()) total += static_cast<std::size_t>(t.numel()) * sizeof(float);
    }
  }
  return total;
}

}  // namespace stgraph::core
