// Micro/ablation benches for the GPMA design choices:
//   * PMA batch update vs rebuilding CSR snapshots from scratch,
//   * Algorithm-3 atomic-scatter reverse CSR vs sort-based reversal,
//   * Algorithm-2 snapshot cache vs cold delta replay,
//   * PMA insert throughput across batch sizes.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "gpma/gpma_graph.hpp"
#include "gpma/pma.hpp"
#include "graph/naive_graph.hpp"
#include "runtime/sort.hpp"
#include "util/rng.hpp"

namespace {
using namespace stgraph;

EdgeList make_stream(uint32_t nodes, std::size_t events, uint64_t seed) {
  Rng rng(seed);
  EdgeList stream;
  for (std::size_t i = 0; i < events; ++i) {
    uint32_t s = static_cast<uint32_t>(rng.next_below(nodes));
    uint32_t d = static_cast<uint32_t>(rng.next_below(nodes));
    if (s == d) d = (d + 1) % nodes;
    stream.emplace_back(s, d);
  }
  return stream;
}

void BM_PmaBatchInsert(benchmark::State& state) {
  const std::size_t batch = state.range(0);
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    Pma pma;
    std::vector<std::vector<uint64_t>> batches;
    for (int b = 0; b < 20; ++b) {
      std::vector<uint64_t> keys(batch);
      for (auto& k : keys) k = rng.next_u64() >> 20;
      batches.push_back(std::move(keys));
    }
    state.ResumeTiming();
    for (auto& keys : batches) pma.insert_batch(std::move(keys));
    benchmark::DoNotOptimize(pma.size());
  }
  state.SetItemsProcessed(state.iterations() * 20 * batch);
}
BENCHMARK(BM_PmaBatchInsert)->Arg(64)->Arg(512)->Arg(4096);

void BM_GpmaUpdateVsCsrRebuild(benchmark::State& state) {
  // Apply one 5% delta: either a PMA batch update (GPMAGraph path) or a
  // full CSR snapshot rebuild (what NaiveGraph pre-computes per snapshot).
  const bool use_pma = state.range(0) != 0;
  DtdgEvents ev = window_edge_stream(2000, make_stream(2000, 40000, 5), 5.0);
  if (use_pma) {
    GpmaGraph g(ev);
    uint32_t t = 0;
    for (auto _ : state) {
      t = (t + 1) % g.num_timestamps();
      g.get_graph(t);
    }
  } else {
    for (auto _ : state) {
      static uint32_t t = 0;
      t = (t + 1) % ev.num_timestamps();
      const EdgeList edges = ev.snapshot_edges(t);
      std::vector<CooEdge> coo;
      uint32_t eid = 0;
      coo.reserve(edges.size());
      for (const auto& [s, d] : edges) coo.push_back({s, d, eid++});
      GraphSnapshot snap = build_snapshot(ev.num_nodes, coo);
      benchmark::DoNotOptimize(snap.num_edges);
    }
  }
  state.SetLabel(use_pma ? "pma_batch_update" : "csr_rebuild");
}
BENCHMARK(BM_GpmaUpdateVsCsrRebuild)->Arg(1)->Arg(0);

void BM_ReverseAlgorithm3(benchmark::State& state) {
  DtdgEvents ev = window_edge_stream(2000, make_stream(2000, 40000, 7), 10.0);
  GpmaGraph g(ev);
  SnapshotView v = g.get_graph(0);
  // Re-run Algorithm 3 against the gapped arrays the graph exposes.
  DeviceBuffer<uint32_t> ro(std::vector<uint32_t>(
                                v.out_view.row_offset,
                                v.out_view.row_offset + v.num_nodes + 1),
                            MemCategory::kGraph);
  const std::size_t cap = ro[v.num_nodes];
  DeviceBuffer<uint32_t> col(
      std::vector<uint32_t>(v.out_view.col_indices,
                            v.out_view.col_indices + cap),
      MemCategory::kGraph);
  DeviceBuffer<uint32_t> eids(
      std::vector<uint32_t>(v.out_view.eids, v.out_view.eids + cap),
      MemCategory::kGraph);
  DeviceBuffer<uint32_t> in_deg(
      std::vector<uint32_t>(v.in_degrees, v.in_degrees + v.num_nodes),
      MemCategory::kGraph);
  for (auto _ : state) {
    DeviceBuffer<uint32_t> r1, r2, r3;
    reverse_gpma(v.num_nodes, ro, col, eids, in_deg, v.num_edges, r1, r2, r3);
    benchmark::DoNotOptimize(r1.data());
  }
  state.SetItemsProcessed(state.iterations() * v.num_edges);
}
BENCHMARK(BM_ReverseAlgorithm3);

void BM_ReverseBySort(benchmark::State& state) {
  // Alternative reversal: sort (dst, src) pairs — the classic approach
  // Algorithm 3's scatter avoids.
  DtdgEvents ev = window_edge_stream(2000, make_stream(2000, 40000, 7), 10.0);
  const EdgeList edges = ev.snapshot_edges(0);
  for (auto _ : state) {
    std::vector<uint64_t> keys;
    std::vector<uint64_t> payload;
    keys.reserve(edges.size());
    payload.reserve(edges.size());
    uint64_t eid = 0;
    for (const auto& [s, d] : edges) {
      keys.push_back(make_edge_key(d, s));
      payload.push_back(eid++);
    }
    device::radix_sort_pairs(keys, payload);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_ReverseBySort);

void BM_PositionCacheAblation(benchmark::State& state) {
  // Algorithm 2's snapshot cache: sequence-boundary positioning cost with
  // the cache on vs off.
  const bool cache = state.range(0) != 0;
  DtdgEvents ev = window_edge_stream(1000, make_stream(1000, 30000, 11), 2.0);
  GpmaGraph g(ev);
  g.set_cache_enabled(cache);
  const uint32_t seq = std::min(8u, g.num_timestamps() / 2);
  for (auto _ : state) {
    for (uint32_t t = 0; t < seq; ++t) g.get_graph(t);
    for (uint32_t t = seq; t-- > 0;) g.get_backward_graph(t);
    for (uint32_t t = seq; t < 2 * seq; ++t) g.get_graph(t);
    for (uint32_t t = 2 * seq; t-- > seq;) g.get_backward_graph(t);
    benchmark::DoNotOptimize(g.current_timestamp());
  }
  state.SetLabel(cache ? "with_cache" : "no_cache");
  state.counters["delta_replays"] = static_cast<double>(g.delta_replays());
}
BENCHMARK(BM_PositionCacheAblation)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
