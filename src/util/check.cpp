#include "util/check.hpp"

namespace stgraph::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream oss;
  oss << "STG_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw StgError(oss.str());
}

}  // namespace stgraph::detail
