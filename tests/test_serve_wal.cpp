// Durability tests for the serving runtime: WAL record framing
// (roundtrip, CRC rejection, torn-tail discipline, failed-append
// rollback), check_wal/stgraph_check-level validation, and
// Server::recover() — checkpoint + WAL replay must republish a read view
// bit-identical to the server that wrote the log.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "io/train_state.hpp"
#include "nn/models.hpp"
#include "serve/server.hpp"
#include "serve/wal.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "verify/invariants.hpp"

namespace stgraph {
namespace {

constexpr int64_t kFeat = 5;
constexpr int64_t kHidden = 7;
const char* kWal = "/tmp/stgraph_test_serve.stgw";
const char* kCkpt = "/tmp/stgraph_test_serve_wal.stgt";

class ServeWalTest : public ::testing::Test {
 protected:
  void TearDown() override {
    failpoint::disable_all();
    std::remove(kWal);
    std::remove(kCkpt);
  }
};

Tensor filled(int64_t rows, int64_t cols, float base) {
  Tensor t = Tensor::empty({rows, cols});
  for (int64_t i = 0; i < rows * cols; ++i)
    t.data()[i] = base + 0.25f * static_cast<float>(i);
  return t;
}

uint64_t file_size(const char* path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.good() ? static_cast<uint64_t>(in.tellg()) : 0;
}

/// A start record plus two ingest records, written through the Writer.
std::vector<serve::wal::Record> write_sample_log() {
  std::vector<serve::wal::Record> recs(3);
  recs[0].type = serve::wal::RecordType::kStart;
  recs[0].time = 0;
  recs[0].version = 1;
  recs[0].features = filled(4, 3, 1.0f);
  recs[0].hidden = filled(4, 2, -2.0f);
  recs[1].type = serve::wal::RecordType::kIngest;
  recs[1].time = 1;
  recs[1].version = 2;
  recs[1].delta.additions = {{0, 2}, {1, 3}};
  recs[1].features = filled(4, 3, 5.0f);
  recs[2].type = serve::wal::RecordType::kIngest;
  recs[2].time = 2;
  recs[2].version = 3;
  recs[2].delta.deletions = {{0, 2}};
  recs[2].features = filled(4, 3, 9.0f);
  serve::wal::Writer w(kWal, /*truncate=*/true);
  for (const auto& r : recs) w.append(r);
  return recs;
}

void expect_tensor_eq(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0)
      << what;
}

TEST_F(ServeWalTest, RecordsRoundtripBitExact) {
  const auto want = write_sample_log();
  const serve::wal::ReadResult rr = serve::wal::read(kWal);
  EXPECT_FALSE(rr.torn_tail);
  EXPECT_EQ(rr.valid_bytes, rr.total_bytes);
  ASSERT_EQ(rr.records.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(rr.records[i].type, want[i].type) << "record " << i;
    EXPECT_EQ(rr.records[i].time, want[i].time) << "record " << i;
    EXPECT_EQ(rr.records[i].version, want[i].version) << "record " << i;
    EXPECT_EQ(rr.records[i].delta.additions, want[i].delta.additions);
    EXPECT_EQ(rr.records[i].delta.deletions, want[i].delta.deletions);
    expect_tensor_eq(rr.records[i].features, want[i].features, "features");
  }
  expect_tensor_eq(rr.records[0].hidden, want[0].hidden, "start hidden");
  EXPECT_TRUE(verify::check_wal(kWal).ok());
}

TEST_F(ServeWalTest, TornTailIsDetectedAndTruncatable) {
  write_sample_log();
  const uint64_t clean = file_size(kWal);
  {
    // A crash mid-append: half a record of garbage at the tail.
    std::ofstream out(kWal, std::ios::binary | std::ios::app);
    const char junk[] = "\x40\x00\x00\x00junkjun";
    out.write(junk, sizeof(junk) - 1);  // drop the terminator
  }
  serve::wal::ReadResult rr = serve::wal::read(kWal);
  EXPECT_TRUE(rr.torn_tail);
  EXPECT_EQ(rr.valid_bytes, clean);
  EXPECT_EQ(rr.records.size(), 3u);  // the valid prefix survives
  EXPECT_FALSE(verify::check_wal(kWal).ok());  // the auditor flags the tear

  serve::wal::truncate_torn_tail(kWal, rr);
  EXPECT_EQ(file_size(kWal), clean);
  rr = serve::wal::read(kWal);
  EXPECT_FALSE(rr.torn_tail);
  EXPECT_TRUE(verify::check_wal(kWal).ok());
}

TEST_F(ServeWalTest, CorruptedRecordStopsTheReplayAtTheLastValidPrefix) {
  write_sample_log();
  // Flip one payload byte of the final record.
  std::fstream f(kWal, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(-3, std::ios::end);
  char b = 0;
  f.read(&b, 1);
  f.seekp(-3, std::ios::end);
  b = static_cast<char>(b ^ 0x5a);
  f.write(&b, 1);
  f.close();
  const serve::wal::ReadResult rr = serve::wal::read(kWal);
  EXPECT_TRUE(rr.torn_tail);  // CRC catches the flip; record 3 is dropped
  EXPECT_EQ(rr.records.size(), 2u);
}

TEST_F(ServeWalTest, HeaderProblemsAreHardErrors) {
  EXPECT_THROW(serve::wal::read("/tmp/stgraph_no_such_wal.stgw"), StgError);
  {
    std::ofstream out(kWal, std::ios::binary);
    out.write("STGX????", 8);
  }
  EXPECT_THROW(serve::wal::read(kWal), StgError);
  EXPECT_FALSE(verify::check_wal(kWal).ok());  // finding, not a throw
}

TEST_F(ServeWalTest, CheckWalFlagsNonMonotonicRecords) {
  std::vector<serve::wal::Record> recs = write_sample_log();
  {
    serve::wal::Writer w(kWal, /*truncate=*/true);
    w.append(recs[0]);
    serve::wal::Record bad = recs[1];
    bad.time = 5;      // does not advance t=0 by one
    bad.version = 1;   // not strictly greater than the start version
    w.append(bad);
  }
  const verify::Report r = verify::check_wal(kWal);
  EXPECT_FALSE(r.ok());
  EXPECT_GE(r.findings().size(), 2u);
}

TEST_F(ServeWalTest, FailedAppendRollsTheFileBack) {
  write_sample_log();
  const uint64_t clean = file_size(kWal);
  serve::wal::Writer w(kWal, /*truncate=*/false);
  serve::wal::Record rec;
  rec.type = serve::wal::RecordType::kIngest;
  rec.time = 3;
  rec.version = 4;
  rec.features = filled(4, 3, 13.0f);
  failpoint::enable("serve.wal.append", failpoint::Spec::once());
  EXPECT_THROW(w.append(rec), StgError);
  EXPECT_EQ(file_size(kWal), clean);  // rolled back, no torn record
  EXPECT_TRUE(verify::check_wal(kWal).ok());
  w.append(rec);  // and the writer still works afterwards
  EXPECT_EQ(serve::wal::read(kWal).records.size(), 4u);
}

// ---- end-to-end recovery ---------------------------------------------------

DtdgEvents ring_events() {
  DtdgEvents ev;
  ev.num_nodes = 9;
  for (uint32_t i = 0; i < 9; ++i)
    ev.base_edges.emplace_back(i, (i + 1) % 9);
  EdgeDelta d1;
  d1.additions = {{0, 4}, {2, 6}};
  EdgeDelta d2;
  d2.deletions = {{0, 1}};
  d2.additions = {{1, 0}};
  EdgeDelta d3;
  d3.additions = {{3, 7}};
  d3.deletions = {{2, 6}};
  ev.deltas = {d1, d2, d3};
  return ev;
}

/// Checkpoint `model`'s weights so recover() can reinstall them.
void checkpoint_model(nn::TGCNEncoder& model) {
  io::TrainState st;
  st.params = model.parameters();
  for (const auto& p : st.params) {
    st.moment1.push_back(Tensor::zeros(p.tensor.shape()));
    st.moment2.push_back(Tensor::zeros(p.tensor.shape()));
  }
  io::save_train_state(st, kCkpt);
}

TEST_F(ServeWalTest, RecoverReplaysTheWalToABitIdenticalReadView) {
  const DtdgEvents events = ring_events();
  datasets::DynamicLoadOptions opts;
  opts.feature_size = kFeat;
  opts.link_samples_per_step = 8;
  const datasets::TemporalSignal sig = datasets::make_dynamic_signal(events, opts);
  const DtdgEvents base{events.num_nodes, events.base_edges, {}};

  // Reference run: journal every step, remember the outputs at each t.
  std::vector<Tensor> ref;
  serve::ReadView ref_view;
  {
    GpmaGraph graph(base);
    Rng rng(31);
    nn::TGCNEncoder model(kFeat, kHidden, rng);
    checkpoint_model(model);
    serve::ServeConfig cfg;
    cfg.wal_path = kWal;
    serve::Server server(graph, model, cfg);
    server.load(kCkpt);
    server.start(sig.features[0]);
    for (uint32_t t = 0; t < events.num_timestamps(); ++t) {
      ref.push_back(server.predict().outputs.clone());
      if (t + 1 < events.num_timestamps())
        server.ingest(events.deltas[t], sig.features[t + 1]);
    }
    ref_view = server.read_view();
    const serve::StatsReport rep = server.stats();
    EXPECT_EQ(rep.wal_records, 1u + events.deltas.size());  // start + ingests
    EXPECT_GT(rep.wal_bytes, 0u);
    server.stop();  // the process "crashes" here as far as recovery cares
  }

  // Recovered run: fresh graph/model/server, rebuilt purely from
  // checkpoint + WAL.
  GpmaGraph graph2(base);
  Rng rng2(777);  // different init — recover() must overwrite it
  nn::TGCNEncoder model2(kFeat, kHidden, rng2);
  serve::Server server2(graph2, model2);
  server2.recover(kCkpt, kWal);

  const serve::ReadView got = server2.read_view();
  EXPECT_EQ(got.time, ref_view.time);
  EXPECT_EQ(got.version, ref_view.version);
  EXPECT_EQ(got.num_edges, ref_view.num_edges);
  serve::PredictResult res = server2.predict();
  EXPECT_EQ(res.timestamp, events.num_timestamps() - 1);
  expect_tensor_eq(res.outputs, ref.back(), "recovered outputs");

  const serve::StatsReport rep2 = server2.stats();
  EXPECT_EQ(rep2.recovered_records, 1u + events.deltas.size());
  EXPECT_GT(rep2.recovery_seconds, 0.0);

  // The recovered server keeps journaling into the same log: one more
  // (empty) ingest extends it, and the extended log recovers too.
  server2.ingest(EdgeDelta{}, sig.features[3]);
  server2.stop();
  const serve::wal::ReadResult rr = serve::wal::read(kWal);
  EXPECT_EQ(rr.records.size(), 2u + events.deltas.size());
  EXPECT_TRUE(verify::check_wal(kWal).ok());
}

TEST_F(ServeWalTest, RecoverTruncatesATornTailAndStillReplays) {
  const DtdgEvents events = ring_events();
  datasets::DynamicLoadOptions opts;
  opts.feature_size = kFeat;
  opts.link_samples_per_step = 8;
  const datasets::TemporalSignal sig = datasets::make_dynamic_signal(events, opts);
  const DtdgEvents base{events.num_nodes, events.base_edges, {}};

  Tensor want_out;
  {
    GpmaGraph graph(base);
    Rng rng(31);
    nn::TGCNEncoder model(kFeat, kHidden, rng);
    checkpoint_model(model);
    serve::ServeConfig cfg;
    cfg.wal_path = kWal;
    serve::Server server(graph, model, cfg);
    server.load(kCkpt);
    server.start(sig.features[0]);
    server.ingest(events.deltas[0], sig.features[1]);
    want_out = server.predict().outputs.clone();
    server.stop();
  }
  {
    // kill -9 mid-append: garbage past the last durable record.
    std::ofstream out(kWal, std::ios::binary | std::ios::app);
    out.write("\x99\x00\x00\x00to", 6);
  }

  GpmaGraph graph2(base);
  Rng rng2(1);
  nn::TGCNEncoder model2(kFeat, kHidden, rng2);
  serve::Server server2(graph2, model2);
  server2.recover(kCkpt, kWal);
  EXPECT_EQ(server2.read_view().time, 1u);
  expect_tensor_eq(server2.predict().outputs, want_out, "post-tear outputs");
  server2.stop();
  // recover() truncated the tear: the log on disk is clean again.
  EXPECT_FALSE(serve::wal::read(kWal).torn_tail);
}

TEST_F(ServeWalTest, RecoverRefusesALogWithoutAStartRecord) {
  {
    serve::wal::Writer w(kWal, /*truncate=*/true);  // header only
  }
  const DtdgEvents events = ring_events();
  const DtdgEvents base{events.num_nodes, events.base_edges, {}};
  GpmaGraph graph(base);
  Rng rng(2);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  checkpoint_model(model);
  serve::Server server(graph, model);
  EXPECT_THROW(server.recover(kCkpt, kWal), StgError);
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace stgraph
