// PyG-T-style graph storage: COO edge index per snapshot, every snapshot
// resident on the device for the whole run (PyG-T iterates a list of
// `Data(edge_index=...)` snapshots). This is the baseline whose memory
// behaviour Figures 6 and 8 compare against.
#pragma once

#include <vector>

#include "graph/dtdg.hpp"
#include "runtime/device_buffer.hpp"

namespace stgraph::baseline {

/// One snapshot's edge index (2 × E in PyG terms; stored as two arrays).
struct CooSnapshot {
  uint32_t num_nodes = 0;
  DeviceBuffer<uint32_t> src;
  DeviceBuffer<uint32_t> dst;

  CooSnapshot() = default;
  CooSnapshot(CooSnapshot&&) = default;
  CooSnapshot& operator=(CooSnapshot&&) = default;
  CooSnapshot(const CooSnapshot&) = delete;
  CooSnapshot& operator=(const CooSnapshot&) = delete;

  uint32_t num_edges() const { return static_cast<uint32_t>(src.size()); }
  std::size_t device_bytes() const { return src.bytes() + dst.bytes(); }
};

CooSnapshot make_coo(uint32_t num_nodes, const EdgeList& edges);

/// The baseline's temporal container: one COO for static-temporal graphs,
/// or every materialized snapshot for DTDGs.
class PygtTemporalGraph {
 public:
  /// Static-temporal constructor.
  PygtTemporalGraph(uint32_t num_nodes, const EdgeList& edges,
                    uint32_t num_timestamps);
  /// DTDG constructor: materializes every snapshot (PyG-T's iterator does
  /// exactly this before training).
  explicit PygtTemporalGraph(const DtdgEvents& events);

  const CooSnapshot& snapshot(uint32_t t) const;
  uint32_t num_timestamps() const { return num_timestamps_; }
  bool is_dynamic() const { return snapshots_.size() > 1; }
  std::size_t device_bytes() const;

 private:
  std::vector<CooSnapshot> snapshots_;
  uint32_t num_timestamps_ = 0;
};

}  // namespace stgraph::baseline
