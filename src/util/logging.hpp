// Minimal leveled logger. Level comes from the STGRAPH_LOG env var
// (trace|debug|info|warn|error, default warn) so tests and benches stay
// quiet unless asked.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace stgraph::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log level (resolved once from the environment).
Level level();

/// Override the level programmatically (tests use this).
void set_level(Level lvl);

namespace detail {
void emit(Level lvl, const std::string& msg);
}

class LineLogger {
 public:
  LineLogger(Level lvl, bool enabled) : lvl_(lvl), enabled_(enabled) {}
  ~LineLogger() {
    if (enabled_) detail::emit(lvl_, oss_.str());
  }
  template <typename T>
  LineLogger& operator<<(const T& v) {
    if (enabled_) oss_ << v;
    return *this;
  }

 private:
  Level lvl_;
  bool enabled_;
  std::ostringstream oss_;
};

inline LineLogger at(Level lvl) { return LineLogger(lvl, lvl >= level()); }

}  // namespace stgraph::log

#define STG_LOG_TRACE ::stgraph::log::at(::stgraph::log::Level::kTrace)
#define STG_LOG_DEBUG ::stgraph::log::at(::stgraph::log::Level::kDebug)
#define STG_LOG_INFO ::stgraph::log::at(::stgraph::log::Level::kInfo)
#define STG_LOG_WARN ::stgraph::log::at(::stgraph::log::Level::kWarn)
#define STG_LOG_ERROR ::stgraph::log::at(::stgraph::log::Level::kError)
