// Figure 6: peak device memory vs sequence length on the five
// static-temporal datasets at feature size 8 — STGraph vs PyG-T, plus the
// State-Stack-pruning ablation called out in DESIGN.md. Expected shape:
// the baseline's curve grows steeply with sequence length (per-edge
// message tensors retained until backward); STGraph's grows slowly; the
// gap tracks edge density (largest on WO/PM, near parity on MB/WVM).
#include <iostream>

#include "common.hpp"
#include "core/trainer.hpp"
#include "graph/static_graph.hpp"
#include "util/rng.hpp"

using namespace stgraph;
using namespace stgraph::bench;

namespace {

// Variant of run_static with an explicit sequence length and pruning flag.
RunResult run_with_seq(const datasets::StaticTemporalDataset& ds,
                       const datasets::TemporalSignal& signal, System system,
                       BenchOptions opts, uint32_t seq_len, bool pruning) {
  opts.sequence_length = seq_len;
  if (system == System::kPygt || pruning) {
    return run_static(ds, signal, system, opts);
  }
  // Pruning-disabled STGraph run (conservative saved sets).
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = seq_len;
  cfg.task = core::Task::kNodeRegression;
  cfg.state_pruning = false;
  Rng rng(0xBEEF);
  PeakMemoryRegion region;
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  nn::TGCNRegressor model(signal.feature_size(), 16, rng);
  core::STGraphTrainer trainer(graph, model, signal, cfg);
  RunResult r;
  for (uint32_t e = 0; e < opts.warmup_epochs + opts.epochs; ++e)
    trainer.train_epoch();
  r.peak_device_mib = region.peak() / (1024.0 * 1024.0);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = parse_options(argc, argv);
  opts.epochs = 1;  // memory is deterministic across epochs

  datasets::StaticLoadOptions so;
  so.scale = opts.scale_static;
  so.num_timestamps = opts.timestamps;

  const std::vector<uint32_t> seq_lens =
      opts.full ? std::vector<uint32_t>{10, 25, 50, 100}
                : std::vector<uint32_t>{4, 8, 16, 24};

  CsvWriter csv({"dataset", "seq_len", "stgraph_mib", "stgraph_nopruning_mib",
                 "pygt_mib", "memory_ratio"});

  for (const auto& ds : datasets::load_all_static(so)) {
    const datasets::TemporalSignal signal =
        datasets::make_static_signal(ds, /*feature_size=*/8, 1234);
    for (uint32_t seq : seq_lens) {
      if (seq > so.num_timestamps) continue;
      const RunResult st =
          run_with_seq(ds, signal, System::kStgraphStatic, opts, seq, true);
      const RunResult st_np =
          run_with_seq(ds, signal, System::kStgraphStatic, opts, seq, false);
      const RunResult pt =
          run_with_seq(ds, signal, System::kPygt, opts, seq, true);
      csv.add_row({ds.name, std::to_string(seq),
                   CsvWriter::fmt(st.peak_device_mib, 3),
                   CsvWriter::fmt(st_np.peak_device_mib, 3),
                   CsvWriter::fmt(pt.peak_device_mib, 3),
                   CsvWriter::fmt(pt.peak_device_mib /
                                      std::max(st.peak_device_mib, 1e-9),
                                  2)});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  emit("fig6_static_memory_vs_seqlen", csv, opts);
  return 0;
}
