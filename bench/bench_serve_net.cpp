// Network serving benchmark (`run_all.sh bench` → BENCH_serve_net.json):
// drives a real net::Frontend over loopback TCP with two generator modes
// and a reader-scaling sweep, reporting CLIENT-side latency percentiles,
// throughput, and the typed shed taxonomy as observed on the wire.
//
//   1. reader sweep — closed-loop clients (one outstanding request per
//      connection) against servers with 1, 2 and 4 replicated readers
//      while serve.batch.delay pins every micro-batch at a 50 ms floor.
//      Capacity is num_readers * max_batch per interval, so throughput
//      must scale with reader count (the contract checks >= 2x from
//      1 -> 4) while the full output matrix stays bit-identical to the
//      single-executor run.
//   2. open loop — a paced sender pipelines PREDICT frames at a fixed
//      arrival rate over one connection (a tenant mix cycles across the
//      configured lanes) while a receiver matches responses by request id.
//      Run at 1x and 2x the injected service capacity with a default
//      deadline armed: at 2x the excess must come back as typed sheds, and
//      no ACCEPTED request may complete later than deadline + one batch
//      interval (client-observed, stricter than the server's own check).
//
//   ./build/bench/bench_serve_net --out=BENCH_serve_net.json
//       --connections=8 --ops=10 --requests=400 --deadline-ms=200 --seed=42
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gpma/gpma_graph.hpp"
#include "io/train_state.hpp"
#include "net/client.hpp"
#include "net/frontend.hpp"
#include "nn/models.hpp"
#include "serve/server.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace stgraph;

namespace {

constexpr int64_t kFeat = 6;
constexpr int64_t kHidden = 12;
constexpr uint32_t kNodes = 16;
constexpr double kBatchIntervalMs = 50.0;  // serve.batch.delay's floor

DtdgEvents ring_base() {
  DtdgEvents ev;
  ev.num_nodes = kNodes;
  for (uint32_t i = 0; i < kNodes; ++i)
    ev.base_edges.emplace_back(i, (i + 1) % kNodes);
  return ev;
}

Tensor features_at(uint32_t t) {
  Tensor x = Tensor::empty({kNodes, kFeat});
  for (int64_t i = 0; i < kNodes * kFeat; ++i)
    x.data()[i] = 0.1f * static_cast<float>(t + 1) +
                  0.01f * static_cast<float>(i % 13);
  return x;
}

void checkpoint_model(nn::TGCNEncoder& model, const char* path) {
  io::TrainState st;
  st.params = model.parameters();
  for (const auto& p : st.params) {
    st.moment1.push_back(Tensor::zeros(p.tensor.shape()));
    st.moment2.push_back(Tensor::zeros(p.tensor.shape()));
  }
  io::save_train_state(st, path);
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::max(0.0, p / 100.0 * static_cast<double>(sorted.size()) - 1.0));
  return sorted[std::min(rank, sorted.size() - 1)];
}

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One full serving stack on an ephemeral loopback port.
struct Stack {
  GpmaGraph graph;
  Rng rng;
  nn::TGCNEncoder model;
  serve::Server server;
  net::Frontend frontend;

  Stack(const char* ckpt, serve::ServeConfig cfg)
      : graph(ring_base()),
        rng(31),
        model(kFeat, kHidden, rng),
        server(graph, model, std::move(cfg)),
        frontend(server) {
    server.load(ckpt);
    server.start(features_at(0));
    frontend.start();
  }

  ~Stack() {
    frontend.stop();
    server.stop();
  }
};

// ---- closed loop -----------------------------------------------------------

struct ClosedLoopResult {
  uint64_t ok = 0, shed = 0, errors = 0;
  double wall_s = 0.0;
  std::vector<double> lat_us;  // sorted on return
  double throughput_rps() const {
    return wall_s > 0 ? static_cast<double>(ok) / wall_s : 0.0;
  }
};

/// `connections` synchronous clients, one outstanding request each.
ClosedLoopResult run_closed_loop(uint16_t port, uint32_t connections,
                                 uint32_t ops_per_conn, uint64_t seed) {
  ClosedLoopResult res;
  std::vector<std::vector<double>> lat(connections);
  std::atomic<uint64_t> ok{0}, shed{0}, errors{0};
  const Timer wall;
  std::vector<std::thread> threads;
  for (uint32_t c = 0; c < connections; ++c)
    threads.emplace_back([&, c] {
      net::Client client("127.0.0.1", port, 60000.0);
      Rng crng(seed ^ (0xBEEFull + c));
      lat[c].reserve(ops_per_conn);
      for (uint32_t k = 0; k < ops_per_conn; ++k) {
        const Timer t;
        try {
          client.predict({static_cast<uint32_t>(crng.next_below(kNodes))});
          lat[c].push_back(t.seconds() * 1e6);
          ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const net::NetError&) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } catch (const StgError&) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  for (auto& th : threads) th.join();
  res.wall_s = wall.seconds();
  res.ok = ok.load();
  res.shed = shed.load();
  res.errors = errors.load();
  for (auto& v : lat) res.lat_us.insert(res.lat_us.end(), v.begin(), v.end());
  std::sort(res.lat_us.begin(), res.lat_us.end());
  return res;
}

// ---- open loop -------------------------------------------------------------

struct OpenLoopResult {
  uint64_t issued = 0, accepted = 0, errors = 0;
  uint64_t shed_by_code[4] = {0, 0, 0, 0};  // indexed by wire ErrorCode 0..3
  uint64_t deadline_violations = 0;
  double wall_s = 0.0;
  std::vector<double> lat_us;  // accepted only, sorted on return
  uint64_t shed_total() const {
    return shed_by_code[0] + shed_by_code[1] + shed_by_code[2] +
           shed_by_code[3];
  }
};

/// Paced sender + request-id-matching receiver on ONE pipelined
/// connection: the arrival process never waits for service (open loop).
/// `tenant_cycle` spreads the stream across lanes in proportion to how
/// often each id appears.
OpenLoopResult run_open_loop(uint16_t port, double rate_hz, uint32_t total,
                             double deadline_ms,
                             const std::vector<uint16_t>& tenant_cycle,
                             uint64_t seed) {
  OpenLoopResult res;
  res.issued = total;
  net::Client conn("127.0.0.1", port, 60000.0);

  std::mutex mu;
  std::unordered_map<uint64_t, int64_t> sent_ns;  // rid -> send stamp

  std::atomic<uint64_t> received{0};
  std::thread receiver([&] {
    net::FrameDecoder dec;
    char buf[64 * 1024];
    net::Frame f;
    std::string line;
    while (received.load(std::memory_order_acquire) < total) {
      switch (dec.next(&f, &line)) {
        case net::FrameDecoder::Status::kFrame: {
          int64_t t0 = 0;
          {
            std::lock_guard<std::mutex> lk(mu);
            t0 = sent_ns.at(f.request_id);
          }
          const double us = static_cast<double>(now_ns() - t0) / 1e3;
          if (f.verb == net::Verb::kPredictResp) {
            res.lat_us.push_back(us);
            ++res.accepted;
            if (us > deadline_ms * 1000.0 + kBatchIntervalMs * 1000.0)
              ++res.deadline_violations;
          } else if (f.verb == net::Verb::kError) {
            std::string msg;
            const auto code =
                static_cast<uint8_t>(net::parse_error(f.payload, &msg));
            if (code < 4)
              ++res.shed_by_code[code];
            else
              ++res.errors;
          } else {
            ++res.errors;
          }
          received.fetch_add(1, std::memory_order_release);
          continue;
        }
        case net::FrameDecoder::Status::kNeedMore:
          break;
        default:
          std::cerr << "open loop: protocol error: " << dec.error() << "\n";
          received.store(total, std::memory_order_release);
          return;
      }
      const ssize_t n = ::recv(conn.fd(), buf, sizeof(buf), 0);
      if (n <= 0) {
        std::cerr << "open loop: connection lost mid-run\n";
        received.store(total, std::memory_order_release);
        return;
      }
      dec.feed(buf, static_cast<std::size_t>(n));
    }
  });

  Rng prng(seed ^ 0xF00Dull);
  const int64_t start = now_ns();
  const double gap_ns = 1e9 / rate_hz;
  for (uint32_t i = 0; i < total; ++i) {
    // Fixed-rate pacing against the global clock, so service-time spikes
    // never throttle the arrival process.
    const int64_t due = start + static_cast<int64_t>(gap_ns * i);
    while (now_ns() < due) std::this_thread::yield();
    net::Frame req;
    req.verb = net::Verb::kPredict;
    req.tenant = tenant_cycle[i % tenant_cycle.size()];
    req.request_id = i + 1;
    req.payload = net::build_predict_request(
        {static_cast<uint32_t>(prng.next_below(kNodes))});
    const std::vector<uint8_t> bytes = net::encode_frame(req);
    {
      std::lock_guard<std::mutex> lk(mu);
      sent_ns[req.request_id] = now_ns();
    }
    conn.send_raw(bytes.data(), bytes.size());
  }
  receiver.join();
  res.wall_s = static_cast<double>(now_ns() - start) / 1e9;
  std::sort(res.lat_us.begin(), res.lat_us.end());
  return res;
}

std::string lat_json(std::vector<double>& sorted) {
  std::ostringstream js;
  js << "\"p50_us\": " << percentile(sorted, 50.0)
     << ", \"p99_us\": " << percentile(sorted, 99.0)
     << ", \"p999_us\": " << percentile(sorted, 99.9)
     << ", \"max_us\": " << (sorted.empty() ? 0.0 : sorted.back());
  return js.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_serve_net.json";
  uint32_t connections = 8;
  uint32_t ops_per_conn = 10;
  uint32_t open_loop_requests = 400;
  double deadline_ms = 200.0;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0)
        return arg.substr(std::string(prefix).size());
      return std::nullopt;
    };
    if (auto v = value("--out=")) out = *v;
    else if (auto v = value("--connections=")) connections = std::stoul(*v);
    else if (auto v = value("--ops=")) ops_per_conn = std::stoul(*v);
    else if (auto v = value("--requests=")) open_loop_requests = std::stoul(*v);
    else if (auto v = value("--deadline-ms=")) deadline_ms = std::stod(*v);
    else if (auto v = value("--seed=")) seed = std::stoull(*v);
    else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const char* ckpt = "/tmp/stgraph_bench_net.stgt";
  {
    Rng rng(31);
    nn::TGCNEncoder model(kFeat, kHidden, rng);
    checkpoint_model(model, ckpt);
  }
  int rc = 0;

  // ---- phase 1: reader-scaling sweep (closed loop) -----------------------
  // max_batch=2 so a single reader can serve at most 2 requests per 50 ms
  // interval; extra readers process additional batches CONCURRENTLY (the
  // injected delay sleeps outside every lock), so capacity is
  // 2 * num_readers / interval and the closed-loop clients saturate it.
  const std::vector<std::size_t> sweep_readers = {1, 2, 4};
  std::vector<ClosedLoopResult> sweep;
  std::vector<Tensor> canonical;  // full output matrix per config
  for (const std::size_t nr : sweep_readers) {
    serve::ServeConfig cfg;
    cfg.num_readers = nr;
    cfg.max_batch = 2;
    cfg.queue_capacity = 256;
    Stack stack(ckpt, cfg);
    {
      // Bit-identity probe before the delay failpoint goes live.
      net::Client probe("127.0.0.1", stack.frontend.port(), 30000.0);
      canonical.push_back(probe.predict().outputs);
    }
    failpoint::enable("serve.batch.delay", failpoint::Spec::always());
    sweep.push_back(run_closed_loop(stack.frontend.port(), connections,
                                    ops_per_conn, seed));
    failpoint::disable_all();
    const serve::StatsReport rep = stack.server.stats();
    if (rep.reader_threads != nr) {
      std::cerr << "FAIL: expected " << nr << " reader threads, got "
                << rep.reader_threads << "\n";
      rc = 1;
    }
  }
  for (std::size_t i = 1; i < canonical.size(); ++i) {
    if (canonical[i].numel() != canonical[0].numel() ||
        std::memcmp(canonical[i].data(), canonical[0].data(),
                    static_cast<std::size_t>(canonical[0].numel()) *
                        sizeof(float)) != 0) {
      std::cerr << "FAIL: " << sweep_readers[i]
                << "-reader output is not bit-identical to 1 reader\n";
      rc = 1;
    }
  }
  const double scaling =
      sweep[0].throughput_rps() > 0
          ? sweep.back().throughput_rps() / sweep[0].throughput_rps()
          : 0.0;
  if (scaling < 2.0) {
    std::cerr << "FAIL: 1 -> " << sweep_readers.back()
              << " reader throughput scaled only " << scaling << "x (< 2x)\n";
    rc = 1;
  }

  // ---- phase 2: open loop at 1x and 2x capacity --------------------------
  // Capacity with 2 readers and max_batch=4 under the 50 ms floor:
  // 2 * 4 / 50ms = 160 req/s. The tenant mix sends 3 parts tenant 1 to
  // 1 part tenant 2, matching the lanes' 3:1 WRR weights.
  const double capacity_rps =
      2.0 * 4.0 * 1000.0 / kBatchIntervalMs;
  std::vector<OpenLoopResult> open_loop;
  const std::vector<double> factors = {1.0, 2.0};
  for (const double factor : factors) {
    serve::ServeConfig cfg;
    cfg.num_readers = 2;
    cfg.max_batch = 4;
    cfg.queue_capacity = 16;  // shallow lanes: overload sheds fast, typed
    cfg.default_deadline_ms = deadline_ms;
    cfg.tenants = {{1, 3, 0}, {2, 1, 0}};
    Stack stack(ckpt, cfg);
    failpoint::enable("serve.batch.delay", failpoint::Spec::always());
    open_loop.push_back(run_open_loop(stack.frontend.port(),
                                      capacity_rps * factor,
                                      open_loop_requests, deadline_ms,
                                      {1, 1, 1, 2}, seed));
    failpoint::disable_all();
    const OpenLoopResult& r = open_loop.back();
    if (r.accepted + r.shed_total() + r.errors != r.issued) {
      std::cerr << "FAIL: open loop " << factor << "x lost requests ("
                << r.accepted << "+" << r.shed_total() << "+" << r.errors
                << " != " << r.issued << ")\n";
      rc = 1;
    }
    if (r.deadline_violations > 0) {
      std::cerr << "FAIL: " << r.deadline_violations << " accepted requests"
                << " at " << factor
                << "x exceeded deadline + one batch interval\n";
      rc = 1;
    }
  }
  if (open_loop[1].shed_total() == 0) {
    std::cerr << "FAIL: 2x overload shed nothing — capacity model is wrong\n";
    rc = 1;
  }
  std::remove(ckpt);

  // ---- emit --------------------------------------------------------------
  std::ostringstream js;
  js << "{\n  \"bench\": \"serve_net\",\n  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    js << "    {\"readers\": " << sweep_readers[i]
       << ", \"throughput_rps\": " << sweep[i].throughput_rps()
       << ", \"ok\": " << sweep[i].ok << ", \"shed\": " << sweep[i].shed
       << ", \"errors\": " << sweep[i].errors << ", "
       << lat_json(sweep[i].lat_us) << "}"
       << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  js << "  ],\n"
     << "  \"scaling_1_to_" << sweep_readers.back() << "\": " << scaling
     << ",\n"
     << "  \"bit_identical_across_readers\": " << (rc == 0 ? "true" : "false")
     << ",\n  \"open_loop\": {\n";
  for (std::size_t i = 0; i < open_loop.size(); ++i) {
    OpenLoopResult& r = open_loop[i];
    js << "    \"" << factors[i] << "x\": {\"rate_rps\": "
       << capacity_rps * factors[i] << ", \"issued\": " << r.issued
       << ", \"accepted\": " << r.accepted
       << ", \"shed_queue_full\": " << r.shed_by_code[0]
       << ", \"shed_deadline_expired\": " << r.shed_by_code[1]
       << ", \"shed_draining\": " << r.shed_by_code[2]
       << ", \"shed_circuit_open\": " << r.shed_by_code[3]
       << ", \"errors\": " << r.errors
       << ", \"deadline_violations\": " << r.deadline_violations
       << ", \"wall_s\": " << r.wall_s << ", " << lat_json(r.lat_us) << "}"
       << (i + 1 < open_loop.size() ? "," : "") << "\n";
  }
  js << "  },\n"
     << "  \"capacity_rps\": " << capacity_rps << ",\n"
     << "  \"deadline_ms\": " << deadline_ms << ",\n"
     << "  \"batch_interval_ms\": " << kBatchIntervalMs << "\n}\n";
  std::ofstream f(out);
  f << js.str();
  f.close();

  for (std::size_t i = 0; i < sweep.size(); ++i)
    std::cout << "sweep " << sweep_readers[i]
              << " readers: " << sweep[i].throughput_rps() << " req/s (p99 "
              << percentile(sweep[i].lat_us, 99.0) << " us)\n";
  std::cout << "scaling 1 -> " << sweep_readers.back() << " readers: "
            << scaling << "x\n";
  for (std::size_t i = 0; i < open_loop.size(); ++i)
    std::cout << "open loop " << factors[i] << "x: " << open_loop[i].accepted
              << "/" << open_loop[i].issued << " accepted, "
              << open_loop[i].shed_total() << " shed, "
              << open_loop[i].deadline_violations << " deadline violations, "
              << "p99 " << percentile(open_loop[i].lat_us, 99.0) << " us\n";
  std::cout << "wrote " << out << (rc == 0 ? "" : "  [CONTRACT FAILURES]")
            << "\n";
  return rc;
}
