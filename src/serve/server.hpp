// Streaming inference server (the serve subsystem's core): owns a
// forward-only TemporalExecutor over a live graph object and a frozen
// TemporalModel, and exposes two concurrent entry points —
//
//   predict(nodes)  — blocking micro-batched inference. Requests from any
//                     number of client threads land in a bounded queue; a
//                     dedicated execution thread pops them in batches of
//                     up to ServeConfig::max_batch and serves an entire
//                     batch from at most ONE forward pass (the step output
//                     for the current server version is cached; per-request
//                     node subsets are row gathers on it).
//
//   ingest(delta, x) — advance the timeline by one step: validate the edge
//                      delta against the live edge set, compute h_{t+1}
//                      from (x_t, h_t) on the OLD snapshot, append the
//                      delta to the graph, commit the new (time, features,
//                      hidden) and bump the version. Validation happens
//                      before any mutation, so a rejected or fault-injected
//                      delta leaves the published read view on the previous
//                      consistent snapshot (tested via the
//                      serve.delta.apply failpoint).
//
// Consistency model: exec_mu_ serializes all model/graph access (one model
// instance, one executor — the paper's execution model is single-stream).
// The published ReadView and the ModelSnapshot handle are the only state
// clients observe without that lock; both swap atomically under it.
// Failpoints: serve.checkpoint.load (in ModelSnapshot::load),
// serve.delta.apply, serve.batch.dispatch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/executor.hpp"
#include "graph/stgraph_base.hpp"
#include "nn/models.hpp"
#include "runtime/mutex.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/request_queue.hpp"
#include "serve/stats.hpp"
#include "util/thread_annotations.hpp"

namespace stgraph::serve {

struct ServeConfig {
  std::size_t max_batch = 16;       ///< micro-batch ceiling per dispatch
  std::size_t queue_capacity = 1024;///< bound before load shedding kicks in
  uint32_t start_time = 0;          ///< timestamp start() positions at
  bool resume_hidden = false;       ///< seed h from the snapshot's carried
                                    ///< hidden state instead of initial_state
  std::vector<float> edge_weights;  ///< optional per-edge weights (by eid)
};

/// Snapshot-consistent summary of what the server is currently serving.
/// version bumps on every committed ingest and every snapshot install;
/// a PredictResult carries the version its outputs were computed at.
struct ReadView {
  uint32_t time = 0;
  uint64_t version = 0;
  uint32_t num_edges = 0;
};

class Server {
 public:
  /// The graph and model outlive the server; the server owns its own
  /// executor (inference mode) so a trainer's executor is never shared.
  Server(STGraphBase& graph, nn::TemporalModel& model, ServeConfig cfg = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Load an STGT checkpoint and install it (serve.checkpoint.load
  /// failpoint fires inside). Callable before start() or live.
  void load(const std::string& path);
  /// Swap the active model snapshot: copies the frozen parameters into the
  /// live module under the exec lock and bumps the version, so in-flight
  /// batches finish on the old weights and the next batch runs on the new
  /// ones — the atomic snapshot swap.
  void install(std::shared_ptr<const ModelSnapshot> snap);
  std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// Begin serving at cfg.start_time with the given node features
  /// ([num_nodes, F]). Spawns the execution thread.
  void start(Tensor features);
  /// Graceful shutdown: stop accepting requests, drain the queue, join.
  /// Idempotent; the destructor calls it.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Blocking predict. Empty `nodes` returns the full output matrix;
  /// otherwise one row per listed node. Throws StgError when the queue is
  /// full (load shed) or the batch failed (fault injection, bad node id).
  PredictResult predict(std::vector<uint32_t> nodes = {});

  /// Advance the served timeline by one timestep (synchronous, called from
  /// any thread). For appendable graphs the delta extends the timeline; a
  /// graph with precomputed snapshots (static-temporal) only accepts empty
  /// deltas and steps within its existing history.
  void ingest(const EdgeDelta& delta, Tensor next_features);

  ReadView read_view() const;
  StatsReport stats() const;

 private:
  void exec_loop();
  /// Run (or reuse) the forward pass for the current version. Returns true
  /// when the cached step was reused.
  bool ensure_step_locked() STG_REQUIRES(exec_mu_);
  void publish_view_locked() STG_REQUIRES(exec_mu_) STG_EXCLUDES(view_mu_);
  static uint64_t edge_key(uint32_t s, uint32_t d) {
    return (static_cast<uint64_t>(s) << 32) | d;
  }

  STGraphBase& graph_;
  nn::TemporalModel& model_;
  ServeConfig cfg_;
  core::TemporalExecutor executor_ STG_GUARDED_BY(exec_mu_);
  RequestQueue queue_;
  ServerStats stats_;
  std::thread exec_thread_;
  std::atomic<bool> running_{false};

  /// Serializes all model/graph/executor access; acquired before view_mu_.
  mutable Mutex exec_mu_ STG_ACQUIRED_BEFORE(view_mu_);
  std::shared_ptr<const ModelSnapshot> snapshot_ STG_GUARDED_BY(exec_mu_);
  /// Live edge set (delta validation).
  std::unordered_set<uint64_t> edges_ STG_GUARDED_BY(exec_mu_);
  /// x_t of the current timestep.
  Tensor features_ STG_GUARDED_BY(exec_mu_);
  /// h_t entering the current timestep.
  Tensor hidden_ STG_GUARDED_BY(exec_mu_);
  uint32_t time_ STG_GUARDED_BY(exec_mu_) = 0;
  /// 0 = not started; bumped per ingest/install.
  uint64_t version_ STG_GUARDED_BY(exec_mu_) = 0;
  /// Cached model output for step_version_.
  Tensor step_out_ STG_GUARDED_BY(exec_mu_);
  /// Cached next hidden for step_version_.
  Tensor step_h_next_ STG_GUARDED_BY(exec_mu_);
  /// 0 = cache invalid.
  uint64_t step_version_ STG_GUARDED_BY(exec_mu_) = 0;

  mutable Mutex view_mu_;
  ReadView view_ STG_GUARDED_BY(view_mu_);
};

}  // namespace stgraph::serve
