#include "util/rng.hpp"

#include <cmath>
#include <unordered_set>

#include "util/check.hpp"

namespace stgraph {
namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_cached_normal = has_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  STG_CHECK(bound > 0, "next_below requires a positive bound");
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  return lo + static_cast<float>(next_double()) * (hi - lo);
}

float Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; guard against log(0).
  double u1 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = static_cast<float>(r * std::sin(theta));
  has_cached_normal_ = true;
  return static_cast<float>(r * std::cos(theta));
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return next_double() < p; }

std::vector<uint64_t> Rng::sample_without_replacement(uint64_t n, uint64_t k) {
  STG_CHECK(k <= n, "cannot sample ", k, " distinct values from ", n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k > n / 2) {
    // Dense case: shuffle a full index vector and take a prefix.
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    shuffle(all);
    all.resize(k);
    return all;
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    uint64_t v = next_below(n);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace stgraph
