#include "io/serialize.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "io/binary_format.hpp"
#include "runtime/analyze.hpp"
#include "util/check.hpp"

namespace stgraph::io {
namespace {

constexpr uint32_t kMagicStatic = 0x53544753;  // "STGS"
constexpr uint32_t kMagicDtdg = 0x53544744;    // "STGD"
constexpr uint32_t kMagicCkpt = 0x53544743;    // "STGC"
constexpr uint32_t kVersion = 1;

void write_edges(Writer& w, const EdgeList& edges) {
  w.scalar<uint64_t>(edges.size());
  for (const auto& [s, d] : edges) {
    w.scalar<uint32_t>(s);
    w.scalar<uint32_t>(d);
  }
}

EdgeList read_edges(Reader& r, uint32_t num_nodes) {
  const uint64_t m = r.scalar<uint64_t>();
  r.expect_payload(m, 2 * sizeof(uint32_t), "edge");
  EdgeList edges;
  edges.reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    const uint32_t s = r.scalar<uint32_t>();
    const uint32_t d = r.scalar<uint32_t>();
    STG_CHECK(s < num_nodes && d < num_nodes, "edge (", s, ",", d,
              ") out of range in '", r.path(), "'");
    edges.emplace_back(s, d);
  }
  return edges;
}

}  // namespace

void save_static_dataset(const datasets::StaticTemporalDataset& ds,
                         const std::string& path) {
  Writer w(path);
  w.scalar(kMagicStatic);
  w.scalar(kVersion);
  w.str(ds.name);
  w.scalar<uint32_t>(ds.num_nodes);
  w.scalar<uint32_t>(ds.num_timestamps);
  write_edges(w, ds.edges);
  const auto& sig = ds.signal;
  w.scalar<uint32_t>(sig.num_timestamps());
  for (uint32_t t = 0; t < sig.num_timestamps(); ++t) {
    write_tensor(w, sig.features[t]);
    write_tensor(w, sig.targets[t]);
  }
  w.scalar<uint64_t>(sig.edge_weights.size());
  if (!sig.edge_weights.empty())
    w.bytes(sig.edge_weights.data(), sig.edge_weights.size() * sizeof(float));
  w.finish();
}

datasets::StaticTemporalDataset load_static_dataset(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicStatic, kVersion);
  datasets::StaticTemporalDataset ds;
  ds.name = r.str(4096);
  ds.num_nodes = r.scalar<uint32_t>();
  ds.num_timestamps = r.scalar<uint32_t>();
  ds.edges = read_edges(r, ds.num_nodes);
  const uint32_t t_count = r.scalar<uint32_t>();
  for (uint32_t t = 0; t < t_count; ++t) {
    Tensor feat = read_tensor(r);
    Tensor target = read_tensor(r);
    STG_CHECK(feat.rows() == ds.num_nodes && target.rows() == ds.num_nodes,
              "signal row count mismatch at t=", t, " in '", path, "'");
    ds.signal.features.push_back(std::move(feat));
    ds.signal.targets.push_back(std::move(target));
  }
  const uint64_t wn = r.scalar<uint64_t>();
  STG_CHECK(wn == 0 || wn == ds.edges.size(),
            "edge-weight count ", wn, " != edge count ", ds.edges.size(),
            " in '", path, "'");
  r.expect_payload(wn, sizeof(float), "edge-weight");
  ds.signal.edge_weights.resize(wn);
  if (wn) r.bytes(ds.signal.edge_weights.data(), wn * sizeof(float));
  return ds;
}

void save_dtdg(const DtdgEvents& events, const std::string& path) {
  Writer w(path);
  w.scalar(kMagicDtdg);
  w.scalar(kVersion);
  w.scalar<uint32_t>(events.num_nodes);
  write_edges(w, events.base_edges);
  w.scalar<uint32_t>(static_cast<uint32_t>(events.deltas.size()));
  for (const EdgeDelta& d : events.deltas) {
    write_edges(w, d.additions);
    write_edges(w, d.deletions);
  }
  w.finish();
}

DtdgEvents load_dtdg(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicDtdg, kVersion);
  DtdgEvents events;
  events.num_nodes = r.scalar<uint32_t>();
  events.base_edges = read_edges(r, events.num_nodes);
  const uint32_t deltas = r.scalar<uint32_t>();
  events.deltas.reserve(deltas);
  for (uint32_t i = 0; i < deltas; ++i) {
    EdgeDelta d;
    d.additions = read_edges(r, events.num_nodes);
    d.deletions = read_edges(r, events.num_nodes);
    events.deltas.push_back(std::move(d));
  }
  // Structural validation: every delta must apply cleanly.
  events.snapshot_edges(events.num_timestamps() - 1);
  return events;
}

void save_checkpoint(const nn::Module& module, const std::string& path) {
  Writer w(path);
  w.scalar(kMagicCkpt);
  w.scalar(kVersion);
  const auto params = module.parameters();
  w.scalar<uint32_t>(static_cast<uint32_t>(params.size()));
  for (const nn::Parameter& p : params) {
    w.str(p.name);
    write_tensor(w, p.tensor);
  }
  w.finish();
}

std::vector<std::pair<std::string, Tensor>> load_checkpoint_tensors(
    const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicCkpt, kVersion);
  std::vector<std::pair<std::string, Tensor>> loaded;
  const uint32_t count = r.scalar<uint32_t>();
  loaded.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name = r.str(4096);
    loaded.emplace_back(std::move(name), read_tensor(r));
  }
  return loaded;
}

void load_checkpoint(nn::Module& module, const std::string& path) {
  std::unordered_map<std::string, Tensor> loaded;
  for (auto& [name, t] : load_checkpoint_tensors(path))
    loaded.emplace(std::move(name), std::move(t));
  auto params = module.parameters();
  STG_CHECK(params.size() == loaded.size(), "checkpoint '", path, "' has ",
            loaded.size(), " tensors, model has ", params.size());
  for (nn::Parameter& p : params) {
    auto it = loaded.find(p.name);
    STG_CHECK(it != loaded.end(), "checkpoint '", path,
              "' is missing parameter '", p.name, "'");
    STG_CHECK(it->second.shape() == p.tensor.shape(), "parameter '", p.name,
              "' shape mismatch: checkpoint ", shape_str(it->second.shape()),
              " vs model ", shape_str(p.tensor.shape()));
    std::copy(it->second.data(), it->second.data() + it->second.numel(),
              p.tensor.data());
  }
}

EdgeList read_edge_list(const std::string& path, uint32_t* num_nodes_out) {
  if (analyze::armed()) analyze::on_blocking_call("file-io(edge-list)");
  std::ifstream in(path);
  STG_CHECK(in.good(), "cannot open edge list '", path, "'");
  struct Row {
    uint64_t src, dst;
    int64_t ts;
    uint64_t order;
  };
  std::vector<Row> rows;
  std::string line;
  uint64_t order = 0;
  bool any_ts = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    Row row{0, 0, 0, order++};
    STG_CHECK(static_cast<bool>(ls >> row.src >> row.dst),
              "malformed line in '", path, "': '", line, "'");
    if (ls >> row.ts) any_ts = true;
    rows.push_back(row);
  }
  if (any_ts) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) { return a.ts < b.ts; });
  }
  // Compact node ids in first-appearance order (deterministic).
  std::unordered_map<uint64_t, uint32_t> remap;
  remap.reserve(rows.size() * 2);
  auto id_of = [&](uint64_t raw) {
    auto [it, fresh] =
        remap.emplace(raw, static_cast<uint32_t>(remap.size()));
    (void)fresh;
    return it->second;
  };
  EdgeList edges;
  edges.reserve(rows.size());
  for (const Row& row : rows) {
    // Sequence the lookups: argument evaluation order is unspecified and
    // id assignment must follow (src, dst) appearance order.
    const uint32_t s = id_of(row.src);
    const uint32_t d = id_of(row.dst);
    edges.emplace_back(s, d);
  }
  if (num_nodes_out) *num_nodes_out = static_cast<uint32_t>(remap.size());
  return edges;
}

void write_edge_list(const EdgeList& edges, const std::string& path) {
  // Text format, but the same atomicity contract as the binary writers:
  // render everything, then publish through the temp+rename path.
  std::string text = "# src dst\n";
  for (const auto& [s, d] : edges) {
    text += std::to_string(s);
    text += ' ';
    text += std::to_string(d);
    text += '\n';
  }
  Writer w(path);
  w.bytes(text.data(), text.size());
  w.finish();
}

}  // namespace stgraph::io
