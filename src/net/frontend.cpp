#include "net/frontend.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <utility>

#include "runtime/analyze.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace stgraph::net {

namespace {

/// Minimal JSON string escaping for error messages and health strings.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<uint8_t> to_bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string predict_json_line(const PredictWire& r) {
  std::string out = "{\"time\": " + std::to_string(r.time) +
                    ", \"version\": " + std::to_string(r.version) +
                    ", \"stale\": " + (r.stale ? "true" : "false") +
                    ", \"outputs\": [";
  const float* p = r.outputs.data();
  const int64_t rows = r.outputs.rows(), cols = r.outputs.cols();
  for (int64_t i = 0; i < rows; ++i) {
    out += i ? ", [" : "[";
    for (int64_t j = 0; j < cols; ++j) {
      if (j) out += ", ";
      out += std::to_string(p[i * cols + j]);
    }
    out += "]";
  }
  out += "]}\n";
  return out;
}

std::string error_json_line(ErrorCode code, const std::string& message) {
  return std::string("{\"error\": \"") + to_string(code) +
         "\", \"message\": \"" + json_escape(message) + "\"}\n";
}

}  // namespace

Frontend::Frontend(serve::Server& server, FrontendConfig cfg)
    : server_(server), cfg_(std::move(cfg)) {}

Frontend::~Frontend() { stop(); }

void Frontend::start() {
  STG_CHECK(!running(), "net: frontend already running");
  listener_ = std::make_unique<Listener>(cfg_.host, cfg_.port);
  {
    MutexLock lk(ingest_mu_);
    ingest_stop_ = false;
  }
  accepting_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] {
    loop_.add(listener_->fd(), EPOLLIN, [this](uint32_t) { on_accept(); });
    loop_.run();
  });
  ingest_thread_ = std::thread(&Frontend::ingest_loop, this);
  STG_LOG_INFO << "net: frontend listening on " << cfg_.host << ":"
               << listener_->port();
}

void Frontend::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // 1. Stop accepting — existing connections keep draining.
  accepting_.store(false, std::memory_order_release);
  loop_.post([this] { loop_.remove(listener_->fd()); });

  // 2. Drain the ingest queue: the worker finishes every queued job (each
  //    produces a response) and exits; join it while the loop still runs
  //    so those responses can be delivered.
  {
    MutexLock lk(ingest_mu_);
    ingest_stop_ = true;
  }
  ingest_cv_.notify_all();
  if (analyze::armed()) analyze::on_blocking_call("thread-join");
  if (ingest_thread_.joinable()) ingest_thread_.join();

  // Test hook: hold the stop sequence here — ingest worker joined, loop
  // thread still serving — so tests can land an INGEST in the window and
  // assert it gets the typed draining reject instead of a silent drop.
  STG_FAILPOINT("net.stop.ingest_window",
                std::this_thread::sleep_for(std::chrono::milliseconds(500)));

  // 3. Wait for in-flight predicts. The server guarantees completion
  //    delivery (fulfil, shed, or drain-reject on its own stop()), so
  //    this converges; the timeout is a watchdog against server bugs,
  //    not an expected path.
  const auto wait_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (inflight_predicts_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < wait_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  if (inflight_predicts_.load(std::memory_order_acquire) > 0)
    STG_LOG_WARN << "net: frontend stop() timed out with "
                 << inflight_predicts_.load() << " predicts in flight";

  // 4. Final flush on the loop thread, then stop the loop.
  loop_.post([this] {
    for (auto& [id, conn] : conns_) {
      conn->flush();  // best-effort: whatever the kernel will take now
      loop_.remove(conn->fd());
    }
  });
  loop_.stop();
  if (analyze::armed()) analyze::on_blocking_call("thread-join");
  if (loop_thread_.joinable()) loop_thread_.join();

  // 5. Loop is gone — no thread can touch the maps; closing the fds here
  //    (Connection destructors) is single-threaded teardown.
  closed_.fetch_add(conns_.size(), std::memory_order_relaxed);
  conns_.clear();
  listener_.reset();
  STG_LOG_INFO << "net: frontend stopped";
}

uint16_t Frontend::port() const {
  STG_CHECK(listener_ != nullptr, "net: frontend not started");
  return listener_->port();
}

FrontendStats Frontend::stats() const {
  FrontendStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.json_lines_in = json_lines_in_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

// ---- loop thread ----------------------------------------------------------

void Frontend::on_accept() {
  while (true) {
    const int cfd = listener_->accept_one();
    if (cfd < 0) return;
    if (!accepting_.load(std::memory_order_acquire)) {
      ::close(cfd);
      continue;
    }
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(cfd, id);
    loop_.add(cfd, EPOLLIN,
              [this, id](uint32_t events) { on_conn_event(id, events); });
    conns_.emplace(id, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    num_conns_.store(conns_.size(), std::memory_order_release);
  }
}

void Frontend::close_conn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  loop_.remove(it->second->fd());
  conns_.erase(it);  // destructor closes the fd
  closed_.fetch_add(1, std::memory_order_relaxed);
  num_conns_.store(conns_.size(), std::memory_order_release);
}

void Frontend::update_write_interest(Connection& conn) {
  loop_.modify(conn.fd(),
               EPOLLIN | (conn.wants_write() ? EPOLLOUT : 0u));
}

void Frontend::on_conn_event(uint64_t conn_id, uint32_t events) {
  {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    Connection& conn = *it->second;
    if (events & (EPOLLHUP | EPOLLERR)) {
      close_conn(conn_id);
      return;
    }
    if (events & EPOLLOUT) {
      if (conn.flush() == Connection::IoResult::kClosed) {
        close_conn(conn_id);
        return;
      }
      if (!conn.wants_write()) {
        if (conn.close_after_flush()) {
          close_conn(conn_id);
          return;
        }
        update_write_interest(conn);
      }
    }
    if ((events & EPOLLIN) &&
        conn.read_into_decoder() == Connection::IoResult::kClosed) {
      close_conn(conn_id);
      return;
    }
  }

  // Drain every complete message. Re-look-up per iteration: a handler's
  // write path may close the connection (dead peer) mid-drain.
  while (true) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    Connection& conn = *it->second;
    if (conn.close_after_flush()) return;  // goodbye pending; stop parsing
    Frame frame;
    std::string line;
    switch (conn.decoder().next(&frame, &line)) {
      case FrameDecoder::Status::kNeedMore:
        return;
      case FrameDecoder::Status::kProtocolError:
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        // The stream has lost framing: say why, then hang up.
        send_error(conn, /*request_id=*/0, ErrorCode::kBadRequest,
                   conn.decoder().error());
        {
          auto it2 = conns_.find(conn_id);
          if (it2 != conns_.end()) {
            if (it2->second->wants_write())
              it2->second->set_close_after_flush();
            else
              close_conn(conn_id);
          }
        }
        return;
      case FrameDecoder::Status::kFrame: {
        // Backstop: handlers answer expected errors (NetError, sheds)
        // themselves, but anything that still escapes (bad_alloc on a huge
        // tensor, a server-side invariant) must not unwind the loop thread
        // — that would std::terminate the whole frontend. Answer kInternal
        // and keep serving. Re-look-up the connection: the handler may
        // have closed it before throwing.
        const uint64_t rid = frame.request_id;
        try {
          handle_frame(conn, std::move(frame));
        } catch (const std::exception& e) {
          auto it2 = conns_.find(conn_id);
          if (it2 != conns_.end())
            send_error(*it2->second, rid, ErrorCode::kInternal, e.what());
        }
        break;
      }
      case FrameDecoder::Status::kJsonLine:
        try {
          handle_json_line(conn, line);
        } catch (const std::exception& e) {
          auto it2 = conns_.find(conn_id);
          if (it2 != conns_.end()) {
            Connection& c = *it2->second;
            c.queue_write(to_bytes(
                error_json_line(ErrorCode::kInternal, e.what())));
            frames_out_.fetch_add(1, std::memory_order_relaxed);
            if (c.flush() == Connection::IoResult::kClosed) {
              close_conn(conn_id);
              return;
            }
            update_write_interest(c);
          }
        }
        break;
    }
  }
}

void Frontend::send_frame(Connection& conn, const Frame& frame) {
  const uint64_t conn_id = conn.id();
  conn.queue_write(encode_frame(frame));
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  if (conn.flush() == Connection::IoResult::kClosed) {
    close_conn(conn_id);
    return;
  }
  update_write_interest(conn);
}

void Frontend::send_error(Connection& conn, uint64_t request_id,
                          ErrorCode code, const std::string& message) {
  Frame f;
  f.verb = Verb::kError;
  f.request_id = request_id;
  f.payload = build_error(code, message);
  send_frame(conn, f);
}

void Frontend::deliver(uint64_t conn_id, std::vector<uint8_t> bytes) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // client vanished; completion dropped
  Connection& conn = *it->second;
  conn.queue_write(bytes);
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  if (conn.flush() == Connection::IoResult::kClosed) {
    close_conn(conn_id);
    return;
  }
  update_write_interest(conn);
}

ErrorCode Frontend::map_exception(const std::exception_ptr& ep,
                                  std::string* message) {
  try {
    std::rethrow_exception(ep);
  } catch (const serve::ShedError& e) {
    *message = e.what();
    // ShedReason and the wire codes 0..3 are the same taxonomy.
    return static_cast<ErrorCode>(static_cast<uint8_t>(e.reason()));
  } catch (const NetError& e) {
    *message = e.what();
    return e.code();
  } catch (const std::exception& e) {
    *message = e.what();
    return ErrorCode::kInternal;
  } catch (...) {
    *message = "unknown server error";
    return ErrorCode::kInternal;
  }
}

void Frontend::submit_predict(Connection& conn, uint64_t request_id,
                              uint16_t tenant, std::vector<uint32_t> nodes,
                              bool as_json) {
  const uint64_t conn_id = conn.id();
  inflight_predicts_.fetch_add(1, std::memory_order_acq_rel);
  serve::PredictOptions opts;
  opts.tenant = tenant;
  // The completion callback runs on whichever server thread finishes the
  // request (a reader, or this loop thread on an admission shed). It
  // encodes the response HERE — off the loop when possible — and posts
  // only the socket write back.
  server_.predict_async(
      std::move(nodes), opts,
      [this, conn_id, request_id, tenant, as_json](
          std::exception_ptr ep, serve::PredictResult&& res) {
        std::vector<uint8_t> bytes;
        if (ep) {
          std::string message;
          const ErrorCode code = map_exception(ep, &message);
          if (as_json) {
            bytes = to_bytes(error_json_line(code, message));
          } else {
            Frame f;
            f.verb = Verb::kError;
            f.tenant = tenant;
            f.request_id = request_id;
            f.payload = build_error(code, message);
            bytes = encode_frame(f);
          }
        } else {
          PredictWire wire;
          wire.time = res.timestamp;
          wire.version = res.version;
          wire.stale = res.stale;
          wire.outputs = std::move(res.outputs);
          if (as_json) {
            bytes = to_bytes(predict_json_line(wire));
          } else {
            Frame f;
            f.verb = Verb::kPredictResp;
            f.tenant = tenant;
            f.request_id = request_id;
            f.payload = build_predict_response(wire);
            bytes = encode_frame(f);
          }
        }
        loop_.post([this, conn_id, b = std::move(bytes)]() mutable {
          deliver(conn_id, std::move(b));
          inflight_predicts_.fetch_sub(1, std::memory_order_acq_rel);
        });
      });
}

void Frontend::handle_frame(Connection& conn, Frame&& frame) {
  frames_in_.fetch_add(1, std::memory_order_relaxed);
  switch (frame.verb) {
    case Verb::kPredict: {
      std::vector<uint32_t> nodes;
      try {
        nodes = parse_predict_request(frame.payload);
      } catch (const NetError& e) {
        send_error(conn, frame.request_id, e.code(), e.what());
        return;
      }
      submit_predict(conn, frame.request_id, frame.tenant, std::move(nodes),
                     /*as_json=*/false);
      return;
    }
    case Verb::kIngest: {
      PendingIngest job;
      job.conn_id = conn.id();
      job.request_id = frame.request_id;
      job.tenant = frame.tenant;
      try {
        parse_ingest_request(frame.payload, &job.delta, &job.features);
      } catch (const NetError& e) {
        send_error(conn, frame.request_id, e.code(), e.what());
        return;
      }
      bool full = false, draining = false;
      {
        MutexLock lk(ingest_mu_);
        // Once stop() has set ingest_stop_ the worker may already be
        // joined; a push here would be queued forever and silently
        // dropped. Reject with the typed draining error instead.
        if (ingest_stop_)
          draining = true;
        else if (ingest_q_.size() >= cfg_.max_pending_ingests)
          full = true;
        else
          ingest_q_.push_back(std::move(job));
      }
      if (draining) {
        send_error(conn, frame.request_id, ErrorCode::kDraining,
                   "net: frontend draining — ingest rejected");
        return;
      }
      if (full) {
        send_error(conn, frame.request_id, ErrorCode::kQueueFull,
                   "net: ingest queue full (" +
                       std::to_string(cfg_.max_pending_ingests) +
                       " pending) — request shed");
        return;
      }
      ingest_cv_.notify_one();
      return;
    }
    case Verb::kStats: {
      Frame f;
      f.verb = Verb::kStatsResp;
      f.request_id = frame.request_id;
      f.payload = to_bytes(server_.stats().to_json());
      send_frame(conn, f);
      return;
    }
    case Verb::kHealth: {
      const serve::ReadView view = server_.read_view();
      const std::string body =
          std::string("{\"health\": \"") +
          serve::to_string(server_.health()) +
          "\", \"time\": " + std::to_string(view.time) +
          ", \"version\": " + std::to_string(view.version) +
          ", \"num_edges\": " + std::to_string(view.num_edges) + "}";
      Frame f;
      f.verb = Verb::kHealthResp;
      f.request_id = frame.request_id;
      f.payload = to_bytes(body);
      send_frame(conn, f);
      return;
    }
    default:
      send_error(conn, frame.request_id, ErrorCode::kBadRequest,
                 "net: unknown request verb " +
                     std::to_string(static_cast<int>(frame.verb)));
      return;
  }
}

void Frontend::handle_json_line(Connection& conn, const std::string& line) {
  json_lines_in_.fetch_add(1, std::memory_order_relaxed);
  JsonRequest req;
  try {
    req = parse_json_request(line);
  } catch (const NetError& e) {
    // Line framing survives a bad request: answer the error, keep parsing.
    conn.queue_write(to_bytes(error_json_line(e.code(), e.what())));
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    if (conn.flush() == Connection::IoResult::kClosed) {
      close_conn(conn.id());
      return;
    }
    update_write_interest(conn);
    return;
  }
  if (req.op == "predict") {
    submit_predict(conn, /*request_id=*/0, req.tenant, std::move(req.nodes),
                   /*as_json=*/true);
    return;
  }
  std::string body;
  if (req.op == "stats") {
    // StatsReport::to_json() is pretty-printed; fold it onto one line to
    // keep the one-object-per-line contract of the fallback.
    body = server_.stats().to_json();
    for (char& c : body)
      if (c == '\n') c = ' ';
    body += "\n";
  } else {  // health
    const serve::ReadView view = server_.read_view();
    body = std::string("{\"health\": \"") +
           serve::to_string(server_.health()) +
           "\", \"time\": " + std::to_string(view.time) +
           ", \"version\": " + std::to_string(view.version) + "}\n";
  }
  conn.queue_write(to_bytes(body));
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  if (conn.flush() == Connection::IoResult::kClosed) {
    close_conn(conn.id());
    return;
  }
  update_write_interest(conn);
}

// ---- ingest thread --------------------------------------------------------

void Frontend::ingest_loop() {
  while (true) {
    PendingIngest job;
    {
      MutexLock lk(ingest_mu_);
      while (!ingest_stop_ && ingest_q_.empty()) ingest_cv_.wait(lk);
      if (ingest_q_.empty()) return;  // stop requested and fully drained
      job = std::move(ingest_q_.front());
      ingest_q_.pop_front();
    }
    std::vector<uint8_t> bytes;
    try {
      server_.ingest(job.delta, std::move(job.features));
      const serve::ReadView view = server_.read_view();
      IngestWire wire;
      wire.time = view.time;
      wire.version = view.version;
      wire.num_edges = view.num_edges;
      Frame f;
      f.verb = Verb::kIngestResp;
      f.tenant = job.tenant;
      f.request_id = job.request_id;
      f.payload = build_ingest_response(wire);
      bytes = encode_frame(f);
    } catch (...) {
      std::string message;
      const ErrorCode code = map_exception(std::current_exception(), &message);
      Frame f;
      f.verb = Verb::kError;
      f.tenant = job.tenant;
      f.request_id = job.request_id;
      f.payload = build_error(code, message);
      bytes = encode_frame(f);
    }
    loop_.post([this, cid = job.conn_id, b = std::move(bytes)]() mutable {
      deliver(cid, std::move(b));
    });
  }
}

}  // namespace stgraph::net
