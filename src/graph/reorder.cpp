#include "graph/reorder.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/check.hpp"

namespace stgraph {
namespace {

// Undirected adjacency (CSR-ish) for traversals.
struct Adjacency {
  std::vector<uint32_t> offsets;
  std::vector<uint32_t> nbrs;
};

Adjacency build_undirected(uint32_t n, const EdgeList& edges) {
  std::vector<uint32_t> deg(n, 0);
  for (const auto& [s, d] : edges) {
    STG_CHECK(s < n && d < n, "edge endpoint out of range");
    ++deg[s];
    ++deg[d];
  }
  Adjacency adj;
  adj.offsets.assign(n + 1, 0);
  for (uint32_t v = 0; v < n; ++v) adj.offsets[v + 1] = adj.offsets[v] + deg[v];
  adj.nbrs.resize(adj.offsets[n]);
  std::vector<uint32_t> cursor(adj.offsets.begin(), adj.offsets.end() - 1);
  for (const auto& [s, d] : edges) {
    adj.nbrs[cursor[s]++] = d;
    adj.nbrs[cursor[d]++] = s;
  }
  return adj;
}

// BFS from `seed`, expanding neighbors in `ascending_degree` order when
// requested (the Cuthill–McKee rule). Appends visited ids to `out`.
void bfs_component(const Adjacency& adj, const std::vector<uint32_t>& deg,
                   uint32_t seed, bool ascending_degree,
                   std::vector<uint8_t>& visited, VertexOrder& out) {
  std::queue<uint32_t> queue;
  queue.push(seed);
  visited[seed] = 1;
  std::vector<uint32_t> nbrs;
  while (!queue.empty()) {
    const uint32_t v = queue.front();
    queue.pop();
    out.push_back(v);
    nbrs.assign(adj.nbrs.begin() + adj.offsets[v],
                adj.nbrs.begin() + adj.offsets[v + 1]);
    if (ascending_degree) {
      std::sort(nbrs.begin(), nbrs.end(), [&](uint32_t a, uint32_t b) {
        return deg[a] != deg[b] ? deg[a] < deg[b] : a < b;
      });
    }
    for (uint32_t u : nbrs) {
      if (!visited[u]) {
        visited[u] = 1;
        queue.push(u);
      }
    }
  }
}

// A far-from-center start vertex: run BFS from the lowest-degree vertex of
// the component and take the last vertex reached.
uint32_t pseudo_peripheral(const Adjacency& adj, uint32_t start,
                           const std::vector<uint8_t>& visited_global) {
  std::vector<uint8_t> visited = visited_global;
  std::queue<uint32_t> queue;
  queue.push(start);
  visited[start] = 1;
  uint32_t last = start;
  while (!queue.empty()) {
    last = queue.front();
    queue.pop();
    for (uint32_t i = adj.offsets[last]; i < adj.offsets[last + 1]; ++i) {
      const uint32_t u = adj.nbrs[i];
      if (!visited[u]) {
        visited[u] = 1;
        queue.push(u);
      }
    }
  }
  return last;
}

VertexOrder traversal_order(uint32_t n, const EdgeList& edges,
                            bool ascending_degree) {
  const Adjacency adj = build_undirected(n, edges);
  std::vector<uint32_t> deg(n);
  for (uint32_t v = 0; v < n; ++v) deg[v] = adj.offsets[v + 1] - adj.offsets[v];

  VertexOrder order;
  order.reserve(n);
  std::vector<uint8_t> visited(n, 0);
  // Visit components in order of their lowest-id vertex; pick a
  // pseudo-peripheral seed per component for shallow BFS trees.
  for (uint32_t v = 0; v < n; ++v) {
    if (visited[v]) continue;
    if (deg[v] == 0) {
      visited[v] = 1;
      order.push_back(v);  // isolated vertices keep id order
      continue;
    }
    const uint32_t seed = pseudo_peripheral(adj, v, visited);
    bfs_component(adj, deg, seed, ascending_degree, visited, order);
  }
  STG_CHECK(order.size() == n, "traversal missed vertices");
  return order;
}

}  // namespace

VertexOrder bfs_order(uint32_t num_nodes, const EdgeList& edges) {
  return traversal_order(num_nodes, edges, /*ascending_degree=*/false);
}

VertexOrder rcm_order(uint32_t num_nodes, const EdgeList& edges) {
  VertexOrder order = traversal_order(num_nodes, edges,
                                      /*ascending_degree=*/true);
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<uint32_t> inverse_order(const VertexOrder& order) {
  std::vector<uint32_t> inv(order.size(), 0);
  std::vector<uint8_t> seen(order.size(), 0);
  for (uint32_t new_id = 0; new_id < order.size(); ++new_id) {
    const uint32_t old_id = order[new_id];
    STG_CHECK(old_id < order.size() && !seen[old_id],
              "order array is not a permutation");
    seen[old_id] = 1;
    inv[old_id] = new_id;
  }
  return inv;
}

EdgeList relabel_edges(const EdgeList& edges, const VertexOrder& order) {
  const std::vector<uint32_t> inv = inverse_order(order);
  EdgeList out;
  out.reserve(edges.size());
  for (const auto& [s, d] : edges) {
    STG_CHECK(s < inv.size() && d < inv.size(), "edge endpoint out of range");
    out.emplace_back(inv[s], inv[d]);
  }
  return out;
}

Tensor permute_rows(const Tensor& x, const VertexOrder& order) {
  STG_CHECK(x.dim() == 2 && x.rows() == static_cast<int64_t>(order.size()),
            "permute_rows: ", shape_str(x.shape()), " vs order of ",
            order.size());
  Tensor out = Tensor::empty(x.shape());
  const int64_t f = x.cols();
  for (uint32_t new_id = 0; new_id < order.size(); ++new_id) {
    std::copy(x.data() + static_cast<int64_t>(order[new_id]) * f,
              x.data() + static_cast<int64_t>(order[new_id] + 1) * f,
              out.data() + static_cast<int64_t>(new_id) * f);
  }
  return out;
}

std::vector<uint32_t> balanced_ranges(const std::vector<uint64_t>& weights,
                                      uint32_t parts) {
  STG_CHECK(parts > 0, "balanced_ranges: parts must be positive");
  const uint32_t n = static_cast<uint32_t>(weights.size());
  std::vector<uint32_t> bounds(parts + 1, n);
  bounds[0] = 0;
  uint64_t total = 0;
  for (uint64_t w : weights) total += w;
  if (total == 0) {
    // Degenerate all-zero weights: fall back to an even count split.
    for (uint32_t p = 1; p < parts; ++p)
      bounds[p] = static_cast<uint32_t>(
          (static_cast<uint64_t>(n) * p + parts / 2) / parts);
    return bounds;
  }
  // One sweep over the prefix weights; cut p closes when the prefix first
  // reaches p/parts of the total (ties resolved toward the earlier vertex,
  // keeping the split independent of `parts` evaluation order).
  uint64_t prefix = 0;
  uint32_t p = 1;
  for (uint32_t v = 0; v < n && p < parts; ++v) {
    prefix += weights[v];
    while (p < parts && prefix * parts >= total * p) bounds[p++] = v + 1;
  }
  return bounds;
}

double mean_edge_span(uint32_t num_nodes, const EdgeList& edges) {
  STG_CHECK(num_nodes > 0, "empty graph");
  if (edges.empty()) return 0.0;
  double total = 0;
  for (const auto& [s, d] : edges)
    total += std::abs(static_cast<double>(s) - static_cast<double>(d));
  return total / static_cast<double>(edges.size());
}

}  // namespace stgraph
