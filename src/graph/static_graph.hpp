// Static-temporal graph: one structure shared by every timestamp; only the
// feature signal changes over time (paper Definition II.1).
#pragma once

#include <memory>
#include <vector>

#include "graph/stgraph_base.hpp"

namespace stgraph {

class StaticTemporalGraph final : public STGraphBase {
 public:
  /// Edges are labelled 0..m-1 in input order; both CSRs share the labels.
  StaticTemporalGraph(uint32_t num_nodes,
                      const std::vector<std::pair<uint32_t, uint32_t>>& edges,
                      uint32_t num_timestamps);

  uint32_t num_nodes() const override { return snapshot_.num_nodes; }
  uint32_t num_edges_at(uint32_t) const override { return snapshot_.num_edges; }
  uint32_t num_timestamps() const override { return num_timestamps_; }
  bool is_dynamic() const override { return false; }
  std::string format_name() const override { return "StaticTemporalGraph"; }

  SnapshotView get_graph(uint32_t t) override;
  SnapshotView get_backward_graph(uint32_t t) override;

  std::size_t device_bytes() const override { return snapshot_.device_bytes(); }

  const GraphSnapshot& snapshot() const { return snapshot_; }

 private:
  SnapshotView make_view() const;
  GraphSnapshot snapshot_;
  uint32_t num_timestamps_;
};

}  // namespace stgraph
