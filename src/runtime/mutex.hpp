// Annotated mutex wrappers: the lock types the concurrency layer uses so
// Clang Thread Safety Analysis (-Wthread-safety, see
// util/thread_annotations.hpp) can prove lock discipline. libstdc++'s
// std::mutex carries no capability annotations, so locks taken through it
// are invisible to the analysis; Mutex/MutexLock are zero-overhead
// wrappers that make every acquire/release visible.
//
//   class Buffered {
//     Mutex mu_;
//     std::deque<Item> items_ STG_GUARDED_BY(mu_);
//     void push(Item it) {
//       MutexLock lock(mu_);
//       items_.push_back(std::move(it));   // provably under mu_
//     }
//   };
//
// Condition waits use ConditionVariable, whose wait() re-establishes the
// capability assertion after std::condition_variable gives the lock back.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace stgraph {

/// std::mutex with capability annotations.
class STG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STG_ACQUIRE() { mu_.lock(); }
  void unlock() STG_RELEASE() { mu_.unlock(); }
  bool try_lock() STG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop that the analysis cannot follow
  /// (ConditionVariable waits go through here).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock (std::unique_lock semantics: movable-from-nothing, always
/// owns for its full scope here — no deferred/adopted states, which keeps
/// the capability tracking trivially sound).
class STG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STG_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() STG_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying unique_lock, for std::condition_variable interop.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable that waits against a MutexLock. std::condition_
/// variable::wait unlocks and relocks outside the analysis's view; from
/// the caller's perspective the capability is held continuously across
/// wait(), which is exactly how the analysis models it. Deliberately
/// predicate-free: a predicate lambda would be analyzed as a separate
/// function that does not hold the capability, so callers spin
/// `while (!cond) cv.wait(lock);` with the condition read in their own
/// (capability-holding) scope.
class ConditionVariable {
 public:
  void wait(MutexLock& lock) { cv_.wait(lock.native()); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace stgraph
