#include "nn/tgcn.hpp"

#include "compiler/fusion.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace stgraph::nn {

TGCN::TGCN(int64_t in_features, int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      conv_z_(in_features, out_features, rng),
      conv_r_(in_features, out_features, rng),
      conv_h_(in_features, out_features, rng),
      linear_z_(2 * out_features, out_features, rng),
      linear_r_(2 * out_features, out_features, rng),
      linear_h_(2 * out_features, out_features, rng) {
  register_module("conv_z", &conv_z_);
  register_module("conv_r", &conv_r_);
  register_module("conv_h", &conv_h_);
  register_module("linear_z", &linear_z_);
  register_module("linear_r", &linear_r_);
  register_module("linear_h", &linear_h_);
}

Tensor TGCN::initial_state(int64_t num_nodes) const {
  return Tensor::zeros({num_nodes, out_});
}

Tensor TGCN::forward(core::TemporalExecutor& exec, const Tensor& x,
                     const Tensor& h_in, const float* edge_weights) const {
  Tensor h = h_in.defined() ? h_in : initial_state(x.rows());
  STG_CHECK(h.rows() == x.rows() && h.cols() == out_,
            "hidden state shape ", shape_str(h.shape()), " incompatible with ",
            x.rows(), " nodes x ", out_, " features");

  using namespace ops;
  namespace fu = compiler::fusion;
  // Each gate's bias add + activation is one fused elementwise region
  // (σ(xW + b) / tanh(xW + b)); the matmul stays a tape op. The bias add
  // inside the region sees the same floats as Linear::forward's
  // add_bias-then-activation sequence, so fused and unfused paths agree
  // bitwise.
  Tensor z = fu::bias_sigmoid(
      matmul(cat_cols(conv_z_.forward(exec, x, edge_weights), h),
             linear_z_.weight()),
      linear_z_.bias());
  Tensor r = fu::bias_sigmoid(
      matmul(cat_cols(conv_r_.forward(exec, x, edge_weights), h),
             linear_r_.weight()),
      linear_r_.bias());
  Tensor h_tilde = fu::bias_tanh(
      matmul(cat_cols(conv_h_.forward(exec, x, edge_weights), mul(r, h)),
             linear_h_.weight()),
      linear_h_.bias());
  return fu::gate_combine(z, h, h_tilde);
}

}  // namespace stgraph::nn
