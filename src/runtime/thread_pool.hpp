// Persistent worker pool backing all "kernel launches" in the CPU device
// substrate. One pool per process (like one CUDA context); workers park on
// a condition variable between launches.
//
// Thread count comes from STGRAPH_NUM_THREADS if set, otherwise
// hardware_concurrency. With a single hardware thread the pool degrades to
// inline execution (zero workers) so tests remain fast on tiny machines.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace stgraph {

class ThreadPool {
 public:
  /// The process-wide pool.
  static ThreadPool& instance();

  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel lanes = workers + the calling thread.
  unsigned lanes() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run fn(lane) on every lane (0..lanes-1) and wait for completion.
  /// The calling thread executes lane 0. Reentrant calls (fn itself calling
  /// run_on_lanes) execute inline on the calling lane to avoid deadlock.
  void run_on_lanes(const std::function<void(unsigned)>& fn);

  /// Type-erased launch used by the non-allocating templated parallel
  /// primitives: `fn(ctx, lane)` runs on every lane with `ctx` pointing at
  /// a caller-owned callable, so no std::function is constructed per
  /// launch. Same inline/reentrant semantics as run_on_lanes.
  using RawJob = void (*)(void* ctx, unsigned lane);
  void run_on_lanes_raw(RawJob fn, void* ctx);

 private:
  void worker_loop(unsigned lane);

  std::vector<std::thread> workers_;
  Mutex mu_;
  ConditionVariable cv_start_;
  ConditionVariable cv_done_;
  RawJob job_fn_ STG_GUARDED_BY(mu_) = nullptr;
  void* job_ctx_ STG_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ STG_GUARDED_BY(mu_) = 0;
  unsigned pending_ STG_GUARDED_BY(mu_) = 0;
  bool stop_ STG_GUARDED_BY(mu_) = false;
  static thread_local bool in_pool_job_;
};

}  // namespace stgraph
