// Layer tests: numerical equivalence between STGraph's fused
// SeastarGCNConv and the baseline edge-parallel PygGCNConv (forward AND
// gradients), the TGCN cells, Linear, optimizers, and module plumbing.
#include <gtest/gtest.h>

#include <set>

#include "baseline/pyg_layers.hpp"
#include "core/executor.hpp"
#include "graph/static_graph.hpp"
#include "nn/gcn.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/optim.hpp"
#include "nn/tgcn.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

EdgeList random_edges(uint32_t n, int count, uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (int i = 0; i < count * 4 && static_cast<int>(edges.size()) < count; ++i) {
    uint32_t s = rng.next_below(n), d = rng.next_below(n);
    if (s == d || !seen.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  return edges;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-4f,
                  const char* what = "") {
  ASSERT_TRUE(same_shape(a, b)) << what;
  for (int64_t i = 0; i < a.numel(); ++i)
    ASSERT_NEAR(a.at(i), b.at(i), tol) << what << " entry " << i;
}

TEST(Linear, ForwardMatchesManualGemm) {
  Rng rng(1);
  nn::Linear lin(3, 2, rng);
  Tensor x = Tensor::randn({4, 3}, rng);
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.shape(), (Shape{4, 2}));
  Tensor manual = ops::add_bias(ops::matmul(x, lin.weight()), lin.bias());
  expect_close(y, manual);
  EXPECT_THROW(lin.forward(Tensor::zeros({4, 5})), StgError);
}

TEST(Module, ParameterCollectionAndCounts) {
  Rng rng(2);
  nn::TGCN tgcn(4, 8, rng);
  auto params = tgcn.parameters();
  // 3 convs × (weight+bias) + 3 linears × (weight+bias) = 12 tensors.
  EXPECT_EQ(params.size(), 12u);
  // Dotted names include the submodule path.
  bool found = false;
  for (const auto& p : params) found = found || p.name == "conv_z.weight";
  EXPECT_TRUE(found);
  const int64_t expect_count = 3 * (4 * 8 + 8) + 3 * (16 * 8 + 8);
  EXPECT_EQ(tgcn.parameter_count(), expect_count);
}

TEST(Module, ZeroGradClearsAll) {
  Rng rng(3);
  nn::Linear lin(2, 2, rng);
  Tensor x = Tensor::randn({3, 2}, rng);
  ops::sum(lin.forward(x)).backward();
  EXPECT_TRUE(lin.weight().grad().defined());
  EXPECT_NE(lin.weight().grad().at(0), 0.0f);
  lin.zero_grad();
  EXPECT_EQ(lin.weight().grad().at(0), 0.0f);
}

// The headline correctness test: the fused vertex-centric layer and the
// edge-parallel baseline compute the same function and the same gradients.
class GcnEquivalence : public ::testing::TestWithParam<int64_t> {};

TEST_P(GcnEquivalence, ForwardAndGradientsMatchBaseline) {
  const int64_t F = GetParam();
  const uint32_t n = 20;
  EdgeList edges = random_edges(n, 80, 7);
  Rng rng_data(11);
  Tensor x_st = Tensor::randn({n, 3}, rng_data, 1.0f, true);
  Tensor x_bl = x_st.detach();
  x_bl.set_requires_grad(true);
  std::vector<float> ew(edges.size());
  {
    Rng rng_w(13);
    for (auto& w : ew) w = rng_w.uniform(0.5f, 1.5f);
  }

  // Same seed → identical weight init in both layers.
  Rng rng_a(99), rng_b(99);
  nn::SeastarGCNConv stconv(3, F, rng_a);
  baseline::PygGCNConv blconv(3, F, rng_b);

  StaticTemporalGraph graph(n, edges, 1);
  core::TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  Tensor y_st = stconv.forward(exec, x_st, ew.data());

  baseline::CooSnapshot coo = baseline::make_coo(n, edges);
  Tensor y_bl = blconv.forward(coo, x_bl, ew.data());

  expect_close(y_st, y_bl, 1e-4f, "forward");

  // Same downstream loss; gradients must match for x, W and b.
  ops::sum(ops::mul(y_st, y_st)).backward();
  ops::sum(ops::mul(y_bl, y_bl)).backward();
  exec.verify_drained();

  expect_close(x_st.grad(), x_bl.grad(), 1e-3f, "grad_x");
  expect_close(stconv.parameters()[0].tensor.grad(),
               blconv.parameters()[0].tensor.grad(), 1e-3f, "grad_W");
  expect_close(stconv.parameters()[1].tensor.grad(),
               blconv.parameters()[1].tensor.grad(), 1e-3f, "grad_b");
}

INSTANTIATE_TEST_SUITE_P(FeatureSizes, GcnEquivalence,
                         ::testing::Values(1, 2, 8, 64, 80));

TEST(GcnEquivalence, UnweightedEdgesAlsoMatch) {
  const uint32_t n = 15;
  EdgeList edges = random_edges(n, 50, 17);
  Rng ra(5), rb(5), rd(6);
  nn::SeastarGCNConv stconv(4, 4, ra);
  baseline::PygGCNConv blconv(4, 4, rb);
  Tensor x = Tensor::randn({n, 4}, rd);

  StaticTemporalGraph graph(n, edges, 1);
  core::TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  // Unweighted: pass uniform weights to both (GCN norm only).
  std::vector<float> ones(edges.size(), 1.0f);
  Tensor y_st = stconv.forward(exec, x, ones.data());
  baseline::CooSnapshot coo = baseline::make_coo(n, edges);
  Tensor y_bl = blconv.forward(coo, x, nullptr);
  expect_close(y_st, y_bl, 1e-4f);
}

TEST(TgcnEquivalence, CellsMatchAcrossTimesteps) {
  const uint32_t n = 12;
  EdgeList edges = random_edges(n, 40, 23);
  Rng ra(31), rb(31), rd(32);
  nn::TGCN st(3, 5, ra);
  baseline::PygTGCN bl(3, 5, rb);

  StaticTemporalGraph graph(n, edges, 4);
  core::TemporalExecutor exec(graph);
  baseline::CooSnapshot coo = baseline::make_coo(n, edges);
  std::vector<float> ones(edges.size(), 1.0f);

  // Forward-only comparison: run in inference mode so no backward state
  // accumulates on the State Stack (gradient equivalence is covered by
  // GcnEquivalence above).
  NoGradGuard ng;
  Tensor h_st, h_bl;
  for (uint32_t t = 0; t < 4; ++t) {
    Tensor x = Tensor::randn({n, 3}, rd);
    exec.begin_forward_step(t);
    h_st = st.forward(exec, x, h_st, ones.data());
    h_bl = bl.forward(coo, x, h_bl, nullptr);
    expect_close(h_st, h_bl, 2e-4f, "hidden state");
  }
  exec.verify_drained();
}

TEST(Optim, SgdDescendsQuadratic) {
  Tensor w = Tensor::from_vector({4.0f}, {1}, true);
  nn::Sgd opt({{"w", w}}, 0.1f);
  for (int i = 0; i < 50; ++i) {
    opt.zero_grad();
    ops::mse_loss(w, Tensor::zeros({1})).backward();
    opt.step();
  }
  EXPECT_NEAR(w.item(), 0.0f, 1e-3f);
}

TEST(Optim, SgdMomentumFasterOnIllConditioned) {
  // Same steps; momentum should end closer to the optimum on a shallow
  // direction.
  auto run = [](float momentum) {
    Tensor w = Tensor::from_vector({4.0f}, {1}, true);
    nn::Sgd opt({{"w", w}}, 0.02f, momentum);
    for (int i = 0; i < 30; ++i) {
      opt.zero_grad();
      ops::mse_loss(w, Tensor::zeros({1})).backward();
      opt.step();
    }
    return std::abs(w.item());
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(Optim, AdamDescendsQuadratic) {
  Tensor w = Tensor::from_vector({2.0f, -3.0f}, {2}, true);
  nn::Adam opt({{"w", w}}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    ops::mse_loss(w, Tensor::zeros({2})).backward();
    opt.step();
  }
  EXPECT_NEAR(w.at(0), 0.0f, 1e-2f);
  EXPECT_NEAR(w.at(1), 0.0f, 1e-2f);
}

TEST(Models, RegressorShapesAndState) {
  Rng rng(41);
  const uint32_t n = 10;
  nn::TGCNRegressor model(4, 6, rng);
  StaticTemporalGraph graph(n, random_edges(n, 30, 43), 2);
  core::TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  Tensor x = Tensor::randn({n, 4}, rng);
  Tensor h = model.initial_state(n);
  auto [y, h2] = model.step(exec, x, h, nullptr);
  EXPECT_EQ(y.shape(), (Shape{n, 1}));
  EXPECT_EQ(h2.shape(), (Shape{n, 6}));
}

TEST(Models, LinkLogitsAreDotProducts) {
  Tensor h = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {3, 2});
  Tensor logits = nn::link_logits(h, {0, 1}, {2, 0});
  // <h0,h2> = 1*5+2*6 = 17; <h1,h0> = 3*1+4*2 = 11.
  EXPECT_EQ(logits.to_vector(), (std::vector<float>{17, 11}));
}

}  // namespace
}  // namespace stgraph
