#include "datasets/normalize.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stgraph::datasets {

NodeScaler NodeScaler::fit(const TemporalSignal& signal) {
  STG_CHECK(signal.has_node_targets(), "NodeScaler fits target series");
  const int64_t n = signal.targets[0].rows();
  NodeScaler s;
  s.mean.assign(n, 0.0f);
  s.stddev.assign(n, 0.0f);
  const uint32_t T = signal.num_timestamps();
  for (uint32_t t = 0; t < T; ++t) {
    for (int64_t v = 0; v < n; ++v) s.mean[v] += signal.targets[t].at(v, 0);
  }
  for (float& m : s.mean) m /= static_cast<float>(T);
  for (uint32_t t = 0; t < T; ++t) {
    for (int64_t v = 0; v < n; ++v) {
      const float d = signal.targets[t].at(v, 0) - s.mean[v];
      s.stddev[v] += d * d;
    }
  }
  for (float& sd : s.stddev) {
    sd = std::sqrt(sd / static_cast<float>(T));
    if (sd < 1e-8f) sd = 1.0f;  // constant series: identity scaling
  }
  return s;
}

TemporalSignal NodeScaler::transform(const TemporalSignal& signal) const {
  const int64_t n = static_cast<int64_t>(mean.size());
  TemporalSignal out;
  out.edge_weights = signal.edge_weights;
  out.links = signal.links;
  for (const Tensor& x : signal.features) {
    STG_CHECK(x.rows() == n, "feature rows mismatch scaler");
    Tensor t = Tensor::empty(x.shape());
    for (int64_t v = 0; v < n; ++v)
      for (int64_t f = 0; f < x.cols(); ++f)
        t.data()[v * x.cols() + f] =
            (x.at(v, f) - mean[v]) / stddev[v];
    out.features.push_back(std::move(t));
  }
  for (const Tensor& y : signal.targets) {
    Tensor t = Tensor::empty(y.shape());
    for (int64_t v = 0; v < n; ++v)
      t.data()[v] = (y.at(v, 0) - mean[v]) / stddev[v];
    out.targets.push_back(std::move(t));
  }
  return out;
}

Tensor NodeScaler::inverse(const Tensor& pred) const {
  STG_CHECK(pred.dim() == 2 && pred.cols() == 1 &&
                pred.rows() == static_cast<int64_t>(mean.size()),
            "inverse expects [N, 1] predictions");
  Tensor out = Tensor::empty(pred.shape());
  for (int64_t v = 0; v < pred.rows(); ++v)
    out.data()[v] = pred.at(v, 0) * stddev[v] + mean[v];
  return out;
}

MinMaxScaler MinMaxScaler::fit(const TemporalSignal& signal) {
  STG_CHECK(!signal.features.empty(), "empty signal");
  MinMaxScaler s;
  s.min = signal.features[0].at(0);
  s.max = s.min;
  for (const Tensor& x : signal.features) {
    for (int64_t i = 0; i < x.numel(); ++i) {
      s.min = std::min(s.min, x.at(i));
      s.max = std::max(s.max, x.at(i));
    }
  }
  if (s.max - s.min < 1e-12f) s.max = s.min + 1.0f;
  return s;
}

TemporalSignal MinMaxScaler::transform(const TemporalSignal& signal) const {
  TemporalSignal out;
  out.edge_weights = signal.edge_weights;
  out.targets = signal.targets;
  out.links = signal.links;
  const float range = max - min;
  for (const Tensor& x : signal.features) {
    Tensor t = Tensor::empty(x.shape());
    for (int64_t i = 0; i < x.numel(); ++i)
      t.data()[i] = (x.at(i) - min) / range;
    out.features.push_back(std::move(t));
  }
  return out;
}

}  // namespace stgraph::datasets
