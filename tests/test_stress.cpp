// Stress / fuzz tests: the executor's stack discipline and the
// cross-format training equivalence must survive arbitrary sequence
// lengths, timestamp counts, snapshot-change rates and model mixes —
// these parameterized sweeps are the repository's failure-injection net.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/trainer.hpp"
#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/naive_graph.hpp"
#include "graph/static_graph.hpp"
#include "nn/gconv_gru.hpp"
#include "nn/gconv_lstm.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using namespace datasets;

struct StressParams {
  uint64_t seed;
  uint32_t nodes;
  uint32_t timestamps;
  uint32_t seq_len;
  double percent_change;
};

EdgeList stream_for(const StressParams& p) {
  Rng rng(p.seed);
  EdgeList stream;
  const std::size_t events = p.nodes * 40;
  for (std::size_t i = 0; i < events; ++i) {
    uint32_t s = static_cast<uint32_t>(rng.next_below(p.nodes));
    uint32_t d = static_cast<uint32_t>(rng.next_below(p.nodes));
    if (s == d) d = (d + 1) % p.nodes;
    stream.emplace_back(s, d);
  }
  return stream;
}

class DtdgStress : public ::testing::TestWithParam<StressParams> {};

TEST_P(DtdgStress, NaiveAndGpmaStayInLockstep) {
  const StressParams p = GetParam();
  DtdgEvents ev = window_edge_stream(p.nodes, stream_for(p), p.percent_change);
  DynamicLoadOptions o;
  o.feature_size = 3;
  o.link_samples_per_step = 16;
  o.seed = p.seed;
  TemporalSignal signal = make_dynamic_signal(ev, o);

  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.sequence_length = p.seq_len;
  cfg.lr = 5e-3f;
  cfg.task = core::Task::kLinkPrediction;

  NaiveGraph naive(ev);
  GpmaGraph gpma(ev);
  Rng ra(p.seed ^ 0xAA), rb(p.seed ^ 0xAA);
  nn::TGCNEncoder ma(3, 4, ra), mb(3, 4, rb);
  core::STGraphTrainer ta(naive, ma, signal, cfg);
  core::STGraphTrainer tb(gpma, mb, signal, cfg);

  for (uint32_t e = 0; e < cfg.epochs; ++e) {
    const double la = ta.train_epoch().loss;
    const double lb = tb.train_epoch().loss;
    ASSERT_FALSE(std::isnan(la));
    ASSERT_NEAR(la, lb, std::abs(la) * 1e-3 + 1e-5)
        << "seed " << p.seed << " epoch " << e;
  }
  // Stacks drained; GPMA back in a consistent position.
  ta.executor().verify_drained();
  tb.executor().verify_drained();
  std::string why;
  EXPECT_TRUE(gpma.pma().check_invariants(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DtdgStress,
    ::testing::Values(
        StressParams{101, 25, 0, 1, 3.0},   // seq_len 1: backward every step
        StressParams{102, 30, 0, 3, 5.0},
        StressParams{103, 40, 0, 7, 2.0},   // seq doesn't divide T
        StressParams{104, 20, 0, 100, 8.0}, // one sequence spans everything
        StressParams{105, 35, 0, 4, 10.0}));

struct ModelMixParams {
  uint64_t seed;
  int which;  // 0 = TGCN, 1 = GConvGRU, 2 = GConvLSTM
  uint32_t seq_len;
};

class ModelMixStress : public ::testing::TestWithParam<ModelMixParams> {};

TEST_P(ModelMixStress, EveryModelDrainsAndLearns) {
  const ModelMixParams p = GetParam();
  StaticLoadOptions o;
  o.num_timestamps = 15;
  o.feature_size = 3;
  o.seed = p.seed;
  auto ds = load_chickenpox(o);
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(p.seed);
  std::unique_ptr<nn::TemporalModel> model;
  switch (p.which) {
    case 0: model = std::make_unique<nn::TGCNRegressor>(3, 6, rng); break;
    case 1:
      model = std::make_unique<nn::GConvGRURegressor>(3, 6, 2, rng);
      break;
    default:
      model = std::make_unique<nn::GConvLSTMRegressor>(3, 6, 2, rng);
      break;
  }
  core::TrainConfig cfg;
  cfg.epochs = 5;
  cfg.sequence_length = p.seq_len;
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, *model, ds.signal, cfg);
  auto stats = trainer.train();
  EXPECT_FALSE(std::isnan(stats.back().loss));
  EXPECT_LT(stats.back().loss, stats.front().loss * 1.05);
  trainer.executor().verify_drained();
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, ModelMixStress,
    ::testing::Values(ModelMixParams{1, 0, 4}, ModelMixParams{2, 0, 1},
                      ModelMixParams{3, 1, 4}, ModelMixParams{4, 1, 15},
                      ModelMixParams{5, 2, 4}, ModelMixParams{6, 2, 5}));

TEST(GpmaLongRun, ManyEpochsKeepInvariantsAndPosition) {
  // Long alternating fwd/bwd traffic with caching: the PMA must stay
  // structurally valid and end exactly where training leaves it.
  Rng rng(777);
  EdgeList stream;
  for (int i = 0; i < 3000; ++i) {
    uint32_t s = static_cast<uint32_t>(rng.next_below(50));
    uint32_t d = static_cast<uint32_t>(rng.next_below(50));
    if (s == d) d = (d + 1) % 50;
    stream.emplace_back(s, d);
  }
  DtdgEvents ev = window_edge_stream(50, stream, 2.0);
  GpmaGraph g(ev);
  const uint32_t T = g.num_timestamps();
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (uint32_t s = 0; s < T; s += 6) {
      const uint32_t e = std::min(T, s + 6);
      for (uint32_t t = s; t < e; ++t) g.get_graph(t);
      for (uint32_t t = e; t-- > s;) g.get_backward_graph(t);
    }
    std::string why;
    ASSERT_TRUE(g.pma().check_invariants(&why)) << "epoch " << epoch << ": "
                                                << why;
  }
  // After the last backward the PMA sits at the last sequence's start.
  EXPECT_LT(g.current_timestamp(), T);
  // A final sweep must still produce the right edge counts.
  for (uint32_t t = 0; t < T; t += 7)
    EXPECT_EQ(g.get_graph(t).num_edges, ev.snapshot_edges(t).size());
}

TEST(BaselineStress, OddSequenceLengthsMatchStgraphLoss) {
  StaticLoadOptions o;
  o.num_timestamps = 13;
  o.feature_size = 3;
  auto ds = load_pedalme(o);
  TemporalSignal unweighted = ds.signal;
  unweighted.edge_weights.clear();

  for (uint32_t seq : {1u, 5u, 13u}) {
    core::TrainConfig cfg;
    cfg.epochs = 1;
    cfg.sequence_length = seq;
    cfg.task = core::Task::kNodeRegression;

    StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
    Rng ra(9), rb(9);
    nn::TGCNRegressor sm(3, 4, ra);
    baseline::PygTemporalModel bm(3, 4, rb, true);
    core::STGraphTrainer st(graph, sm, unweighted, cfg);
    baseline::PygtTemporalGraph bgraph(ds.num_nodes, ds.edges,
                                       ds.num_timestamps);
    baseline::PygtTrainer bt(bgraph, bm, unweighted, cfg);
    const double ls = st.train_epoch().loss;
    const double lb = bt.train_epoch().loss;
    EXPECT_NEAR(ls, lb, std::abs(lb) * 0.02 + 1e-4) << "seq " << seq;
  }
}

}  // namespace
}  // namespace stgraph
