// Grid-style parallel primitives — the CPU analogue of CUDA kernel
// launches. `parallel_for` plays the role of a 1-D grid launch;
// `KernelStats` counts launches the way the original system counts kernel
// invocations (used by the fusion ablation bench: fewer launches == fused).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "runtime/thread_pool.hpp"

namespace stgraph::device {

/// Global launch statistics (reset per measured region in benches).
struct KernelStats {
  std::atomic<uint64_t> launches{0};
  std::atomic<uint64_t> total_threads{0};
  static KernelStats& instance();
  void reset() { launches = 0; total_threads = 0; }
};

/// Launch `fn(i)` for i in [0, n). Static block partitioning across lanes;
/// below `grain` elements the launch runs inline (launch overhead would
/// dominate, mirroring how tiny kernels are not worth a grid launch).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1024);

/// Launch `fn(begin, end)` over contiguous index ranges — the analogue of a
/// thread-block processing a tile. Lower per-element overhead than
/// parallel_for; preferred in kernels.
void parallel_for_ranges(std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain = 1024);

/// Launch `fn(i)` for i in [0, n) with ROUND-ROBIN lane assignment (lane k
/// processes k, k+L, k+2L, ...). This emulates GPU warp scheduling: when
/// work items are sorted by descending cost (degree-ordered vertices),
/// striding balances lanes where contiguous blocks would not.
void parallel_for_strided(std::size_t n,
                          const std::function<void(std::size_t)>& fn,
                          std::size_t grain = 512);

/// Parallel sum-reduction of fn(i) over [0, n).
double parallel_reduce_sum(std::size_t n,
                           const std::function<double(std::size_t)>& fn,
                           std::size_t grain = 4096);

/// Number of parallel lanes available (threads in the device).
unsigned lane_count();

/// No-op on the CPU substrate (kernels are synchronous) but kept so call
/// sites read like the CUDA original.
inline void synchronize() {}

}  // namespace stgraph::device
