// Admission controller in front of the serving runtime's request paths:
// decides, per class (predict vs ingest), whether a request is allowed to
// even join the queue / contend for the execution lock, and sheds it with
// a typed reason when it is not. Shedding at admission is strictly cheaper
// than shedding at dequeue — a doomed request never occupies a queue slot
// or wakes the execution thread.
//
// Two mechanisms:
//   * per-class quotas — predicts are bounded by the request queue's
//     capacity (checked by the queue itself); ingests are bounded by a
//     concurrent-waiter quota so a stalled execution lock cannot pile up
//     unbounded ingestion threads.
//   * queue-delay-based early shedding — the controller keeps an EWMA of
//     observed queue delay (fed by the execution thread at dequeue); a
//     predict whose deadline budget is already smaller than the expected
//     queue delay is shed immediately as deadline_expired rather than
//     being enqueued to expire later.
//
// Everything is atomics; admission never takes a lock.
#pragma once

#include <atomic>
#include <cstdint>

#include "serve/health.hpp"

namespace stgraph::serve {

class AdmissionController {
 public:
  /// `max_inflight_ingests` bounds concurrently admitted ingest calls
  /// (waiters included); 0 disables the quota.
  explicit AdmissionController(std::size_t max_inflight_ingests = 0)
      : max_inflight_ingests_(max_inflight_ingests) {}

  /// Admit a predict with `budget_ns` of deadline budget left (<=0 means
  /// no deadline). Returns the shed reason, or admits when nullopt-like
  /// `admitted` (encoded as kAdmitted below) — we avoid optional to keep
  /// the hot path branch-light.
  enum class Decision : uint8_t { kAdmit, kShed };

  /// Queue-delay-based early shedding: a request whose remaining budget is
  /// below the expected queue delay is declined up front.
  Decision admit_predict(int64_t budget_ns, ShedReason* reason_out) {
    if (budget_ns > 0 &&
        expected_queue_delay_ns() > static_cast<uint64_t>(budget_ns)) {
      *reason_out = ShedReason::kDeadlineExpired;
      early_sheds_.fetch_add(1, std::memory_order_relaxed);
      return Decision::kShed;
    }
    return Decision::kAdmit;
  }

  /// Per-class quota for ingest: admit unless `max_inflight_ingests` calls
  /// are already inside (or waiting on) the ingest path. Pair every kAdmit
  /// with release_ingest().
  Decision admit_ingest(ShedReason* reason_out) {
    const std::size_t prev =
        inflight_ingests_.fetch_add(1, std::memory_order_acq_rel);
    if (max_inflight_ingests_ != 0 && prev >= max_inflight_ingests_) {
      inflight_ingests_.fetch_sub(1, std::memory_order_acq_rel);
      *reason_out = ShedReason::kQueueFull;
      return Decision::kShed;
    }
    return Decision::kAdmit;
  }
  void release_ingest() {
    inflight_ingests_.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Fed by the execution thread for every dequeued request: how long it
  /// sat in the queue. EWMA with alpha 1/8 (shift arithmetic, no float
  /// contention).
  void observe_queue_delay(uint64_t delay_ns) {
    uint64_t cur = ewma_queue_delay_ns_.load(std::memory_order_relaxed);
    const uint64_t next = cur - cur / 8 + delay_ns / 8;
    ewma_queue_delay_ns_.store(next, std::memory_order_relaxed);
  }
  uint64_t expected_queue_delay_ns() const {
    return ewma_queue_delay_ns_.load(std::memory_order_relaxed);
  }

  uint64_t early_sheds() const {
    return early_sheds_.load(std::memory_order_relaxed);
  }
  std::size_t inflight_ingests() const {
    return inflight_ingests_.load(std::memory_order_relaxed);
  }

  /// Forget the delay estimate (server restart).
  void reset() {
    ewma_queue_delay_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  const std::size_t max_inflight_ingests_;
  std::atomic<std::size_t> inflight_ingests_{0};
  std::atomic<uint64_t> ewma_queue_delay_ns_{0};
  std::atomic<uint64_t> early_sheds_{0};
};

}  // namespace stgraph::serve
