// Fault-tolerant training runtime, end to end: numerical guards with
// parameter rollback and LR halving, exception-safe executor unwind,
// global-norm gradient clipping, and the flagship crash/resume
// equivalence guarantee — a run killed at an injected fault and resumed
// from its last checkpoint finishes with bit-identical parameters.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "graph/static_graph.hpp"
#include "io/train_state.hpp"
#include "tensor/ops.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using namespace datasets;

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_("/tmp/stgraph_ft_test_" + tag + "_" +
              std::to_string(::getpid())) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class FaultToleranceTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::disable_all(); }
};

StaticTemporalDataset tiny_static() {
  StaticLoadOptions o;
  o.scale = 1.0;
  o.num_timestamps = 24;
  o.feature_size = 4;
  return load_chickenpox(o);
}

core::TrainConfig base_config() {
  core::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.sequence_length = 4;
  cfg.lr = 1e-2f;
  cfg.task = core::Task::kNodeRegression;
  return cfg;
}

std::vector<std::vector<float>> param_values(nn::Module& m) {
  std::vector<std::vector<float>> out;
  for (const auto& p : m.parameters()) out.push_back(p.tensor.to_vector());
  return out;
}

// ---- numerical guards ----------------------------------------------------

TEST_F(FaultToleranceTest, InjectedNanGradientRollsBackAndTrainingContinues) {
  auto ds = tiny_static();
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(77);
  nn::TGCNRegressor model(ds.signal.feature_size(), 8, rng);
  auto cfg = base_config();
  cfg.sequence_length = 24;  // one sequence per epoch
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);

  trainer.train_epoch();  // healthy epoch
  const auto before = param_values(model);

  failpoint::enable("trainer.grad.nan", failpoint::Spec::always());
  const auto stats = trainer.train_epoch();
  EXPECT_EQ(stats.failures.skipped_steps, 1u);
  EXPECT_EQ(stats.failures.non_finite_grads, 1u);
  EXPECT_EQ(param_values(model), before)
      << "rollback must leave parameters bit-identical";

  failpoint::disable("trainer.grad.nan");
  const auto healthy = trainer.train_epoch();  // training continues
  EXPECT_TRUE(std::isfinite(healthy.loss));
  EXPECT_GT(healthy.loss, 0.0);
  EXPECT_NE(param_values(model), before) << "healthy step must train again";
  EXPECT_EQ(trainer.failure_stats().skipped_steps, 1u);
}

TEST_F(FaultToleranceTest, ConsecutiveFailuresHalveTheLearningRate) {
  auto ds = tiny_static();
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(78);
  nn::TGCNRegressor model(ds.signal.feature_size(), 8, rng);
  auto cfg = base_config();
  cfg.lr_halve_after_failures = 2;
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);

  failpoint::enable("trainer.grad.nan", failpoint::Spec::always());
  const auto stats = trainer.train_epoch();  // 6 sequences, all guarded
  EXPECT_EQ(stats.failures.skipped_steps, 6u);
  EXPECT_EQ(stats.failures.lr_halvings, 3u);  // pairs of failures
  EXPECT_FLOAT_EQ(trainer.optimizer().learning_rate(), cfg.lr / 8.0f);
}

TEST_F(FaultToleranceTest, GuardsDisabledLetNanThrough) {
  auto ds = tiny_static();
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(79);
  nn::TGCNRegressor model(ds.signal.feature_size(), 8, rng);
  auto cfg = base_config();
  cfg.numerical_guards = false;
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);

  failpoint::enable("trainer.grad.nan", failpoint::Spec::once());
  trainer.train_epoch();
  EXPECT_EQ(trainer.failure_stats().skipped_steps, 0u);
  bool any_nan = false;
  for (const auto& vals : param_values(model))
    for (float v : vals) any_nan |= !std::isfinite(v);
  EXPECT_TRUE(any_nan) << "without guards the NaN step must contaminate";
}

// ---- exception-safe executor unwind -------------------------------------

TEST_F(FaultToleranceTest, MidSequenceThrowLeavesExecutorReusable) {
  auto ds = tiny_static();
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(80);
  nn::TGCNRegressor model(ds.signal.feature_size(), 8, rng);
  core::STGraphTrainer trainer(graph, model, ds.signal, base_config());

  // Fire inside the second sequence, with saved state already pushed.
  failpoint::enable("executor.forward.throw", failpoint::Spec::on_nth(6));
  EXPECT_THROW(trainer.train_epoch(), StgError);
  EXPECT_NO_THROW(trainer.executor().verify_drained())
      << "abort_sequence must drain both stacks";

  failpoint::disable("executor.forward.throw");
  const auto stats = trainer.train_epoch();  // executor is reusable
  EXPECT_TRUE(std::isfinite(stats.loss));
  EXPECT_GT(stats.loss, 0.0);
}

// ---- gradient clipping ---------------------------------------------------

TEST_F(FaultToleranceTest, ClipGradNormScalesOnlyAboveThreshold) {
  Tensor w1 = Tensor::from_vector({3.0f, 4.0f}, {1, 2}, true);
  Tensor w2 = Tensor::from_vector({0.0f, 0.0f}, {1, 2}, true);
  Tensor loss = ops::add(ops::mse_loss(w1, Tensor::zeros({1, 2})),
                         ops::mse_loss(w2, Tensor::zeros({1, 2})));
  loss.backward();
  // d/dw mean((w-0)^2) = w, so grad(w1) = [3, 4]: global norm 5.
  std::vector<nn::Parameter> params{{"w1", w1}, {"w2", w2}};

  // Below threshold: exact no-op.
  EXPECT_NEAR(nn::clip_grad_norm(params, 10.0f), 5.0f, 1e-5f);
  EXPECT_EQ(w1.grad().to_vector(), (std::vector<float>{3.0f, 4.0f}));

  // Above threshold: scaled to max_norm.
  EXPECT_NEAR(nn::clip_grad_norm(params, 1.0f), 5.0f, 1e-5f);
  const auto clipped = w1.grad().to_vector();
  EXPECT_NEAR(clipped[0], 0.6f, 1e-4f);
  EXPECT_NEAR(clipped[1], 0.8f, 1e-4f);
  double sq = 0.0;
  for (float g : clipped) sq += g * g;
  EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-4);
  EXPECT_EQ(w2.grad().to_vector(), (std::vector<float>{0.0f, 0.0f}));
  EXPECT_THROW(nn::clip_grad_norm(params, 0.0f), StgError);
}

TEST_F(FaultToleranceTest, TrainerAppliesConfiguredClipping) {
  auto ds = tiny_static();
  auto cfg = base_config();
  cfg.epochs = 2;

  auto run = [&](float max_norm) {
    StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
    Rng rng(81);
    nn::TGCNRegressor model(ds.signal.feature_size(), 8, rng);
    cfg.max_grad_norm = max_norm;
    core::STGraphTrainer trainer(graph, model, ds.signal, cfg);
    trainer.train();
    return param_values(model);
  };
  // An aggressively small clip norm must change the trajectory.
  EXPECT_NE(run(0.0f), run(1e-4f));
}

// ---- crash / resume equivalence -----------------------------------------

TEST_F(FaultToleranceTest, KillAndResumeMatchesStraightRunBitForBit) {
  auto ds = tiny_static();
  TempFile ckpt_a("straight");
  TempFile ckpt_b("killed");

  auto cfg = base_config();
  cfg.checkpoint_every_n_sequences = 2;

  // Straight run: 3 epochs, 6 sequences each, no interruption.
  cfg.checkpoint_path = ckpt_a.path();
  StaticTemporalGraph graph_a(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng_a(42);
  nn::TGCNRegressor model_a(ds.signal.feature_size(), 8, rng_a);
  core::STGraphTrainer trainer_a(graph_a, model_a, ds.signal, cfg);
  const auto stats_a = trainer_a.train();
  ASSERT_EQ(stats_a.size(), 3u);

  // Killed run: same init, crash injected at the 9th sequence boundary
  // (mid-epoch 1, one sequence past the last checkpoint).
  cfg.checkpoint_path = ckpt_b.path();
  StaticTemporalGraph graph_b(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng_b(42);
  nn::TGCNRegressor model_b(ds.signal.feature_size(), 8, rng_b);
  core::STGraphTrainer trainer_b(graph_b, model_b, ds.signal, cfg);
  failpoint::enable("trainer.sequence.end", failpoint::Spec::on_nth(9));
  EXPECT_THROW(trainer_b.train(), StgError);
  failpoint::disable_all();

  // The checkpoint on disk is from mid-epoch 1.
  const io::TrainState snap = io::load_train_state(ckpt_b.path());
  EXPECT_EQ(snap.epoch, 1u);
  EXPECT_EQ(snap.next_sequence, 2u);

  // Resumed run: a FRESH trainer and differently-initialized model — every
  // trained value must come from the checkpoint, not the constructor.
  StaticTemporalGraph graph_c(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng_c(4242);
  nn::TGCNRegressor model_c(ds.signal.feature_size(), 8, rng_c);
  core::STGraphTrainer trainer_c(graph_c, model_c, ds.signal, cfg);
  trainer_c.resume(ckpt_b.path());
  EXPECT_EQ(trainer_c.completed_epochs(), 1u);
  const auto stats_c = trainer_c.train();
  EXPECT_EQ(stats_c.size(), 2u);  // epochs 1 (resumed mid-way) and 2

  EXPECT_EQ(param_values(model_c), param_values(model_a))
      << "kill + resume must reproduce the uninterrupted run bit for bit";
  // The resumed epoch's loss statistic also matches: the checkpoint
  // carries the epoch accumulators.
  EXPECT_DOUBLE_EQ(stats_c.back().loss, stats_a.back().loss);
  EXPECT_DOUBLE_EQ(stats_c.front().loss, stats_a[1].loss);
}

TEST_F(FaultToleranceTest, ResumeRejectsMismatchedConfig) {
  auto ds = tiny_static();
  TempFile ckpt("cfg_mismatch");
  auto cfg = base_config();
  cfg.checkpoint_every_n_sequences = 2;
  cfg.checkpoint_path = ckpt.path();

  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(83);
  nn::TGCNRegressor model(ds.signal.feature_size(), 8, rng);
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);
  trainer.train_epoch();

  auto other_cfg = cfg;
  other_cfg.sequence_length = 8;  // different chunking → different run
  StaticTemporalGraph graph2(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng2(84);
  nn::TGCNRegressor model2(ds.signal.feature_size(), 8, rng2);
  core::STGraphTrainer trainer2(graph2, model2, ds.signal, other_cfg);
  EXPECT_THROW(trainer2.resume(ckpt.path()), StgError);
}

TEST_F(FaultToleranceTest, SaveCheckpointBetweenEpochsRoundTrips) {
  auto ds = tiny_static();
  TempFile ckpt("manual");
  auto cfg = base_config();

  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(85);
  nn::TGCNRegressor model(ds.signal.feature_size(), 8, rng);
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);
  trainer.train_epoch();
  trainer.save_checkpoint(ckpt.path());
  trainer.train();  // run to completion
  const auto full = param_values(model);

  StaticTemporalGraph graph2(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng2(86);
  nn::TGCNRegressor model2(ds.signal.feature_size(), 8, rng2);
  core::STGraphTrainer trainer2(graph2, model2, ds.signal, cfg);
  trainer2.resume(ckpt.path());
  trainer2.train();
  EXPECT_EQ(param_values(model2), full);
}

}  // namespace
}  // namespace stgraph
