#include "verify/report.hpp"

#include <sstream>

namespace stgraph::verify {

void Report::fail(std::string checker, std::string message) {
  findings_.push_back({std::move(checker), std::move(message)});
}

void Report::merge(Report other) {
  checks_run_ += other.checks_run_;
  findings_.insert(findings_.end(),
                   std::make_move_iterator(other.findings_.begin()),
                   std::make_move_iterator(other.findings_.end()));
}

std::string Report::to_string() const {
  std::ostringstream oss;
  if (ok()) {
    oss << "OK (" << checks_run_ << " invariants checked)";
    return oss.str();
  }
  oss << findings_.size() << " invariant violation"
      << (findings_.size() == 1 ? "" : "s") << " (" << checks_run_
      << " invariants checked):";
  for (const Finding& f : findings_)
    oss << "\n  [" << f.checker << "] " << f.message;
  return oss.str();
}

}  // namespace stgraph::verify
