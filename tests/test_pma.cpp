// Packed Memory Array tests: structural invariants under randomized batch
// workloads (TEST_P property sweeps), ordering, lower_bound semantics,
// growth/shrink behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gpma/pma.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

void expect_valid(const Pma& pma) {
  std::string why;
  EXPECT_TRUE(pma.check_invariants(&why)) << why;
}

TEST(Pma, StartsEmptyAndValid) {
  Pma pma;
  EXPECT_EQ(pma.size(), 0u);
  EXPECT_GE(pma.capacity(), 64u);
  expect_valid(pma);
  EXPECT_FALSE(pma.contains(42));
  EXPECT_EQ(pma.lower_bound_slot(0), pma.capacity());
}

TEST(Pma, SingleBatchInsertSortedExtraction) {
  Pma pma;
  EXPECT_EQ(pma.insert_batch({5, 3, 9, 1, 7}), 5u);
  expect_valid(pma);
  EXPECT_EQ(pma.extract_sorted(), (std::vector<uint64_t>{1, 3, 5, 7, 9}));
  for (uint64_t k : {1, 3, 5, 7, 9}) EXPECT_TRUE(pma.contains(k));
  EXPECT_FALSE(pma.contains(4));
}

TEST(Pma, DuplicateInsertIsNoop) {
  Pma pma;
  pma.insert_batch({1, 2, 3});
  EXPECT_EQ(pma.insert_batch({2, 3, 4}), 1u);  // only 4 is new
  EXPECT_EQ(pma.size(), 4u);
  EXPECT_EQ(pma.insert_batch({1, 1, 1}), 0u);  // batch-internal dups too
  expect_valid(pma);
}

TEST(Pma, EraseRemovesAndIgnoresMissing) {
  Pma pma;
  pma.insert_batch({10, 20, 30, 40});
  EXPECT_EQ(pma.erase_batch({20, 99}), 1u);
  EXPECT_EQ(pma.size(), 3u);
  EXPECT_FALSE(pma.contains(20));
  EXPECT_TRUE(pma.contains(30));
  expect_valid(pma);
}

TEST(Pma, GrowsUnderLoad) {
  Pma pma;
  const std::size_t initial_cap = pma.capacity();
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 10000; ++i) keys.push_back(i * 7 + 1);
  pma.insert_batch(keys);
  EXPECT_EQ(pma.size(), keys.size());
  EXPECT_GT(pma.capacity(), initial_cap);
  EXPECT_GE(pma.resize_count(), 1u);
  expect_valid(pma);
  // Order preserved across the growth.
  auto sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(pma.extract_sorted(), sorted);
}

TEST(Pma, ShrinksAfterMassDeletion) {
  Pma pma;
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 20000; ++i) keys.push_back(i);
  pma.insert_batch(keys);
  const std::size_t big_cap = pma.capacity();
  std::vector<uint64_t> to_erase(keys.begin(), keys.begin() + 19900);
  pma.erase_batch(to_erase);
  EXPECT_EQ(pma.size(), 100u);
  EXPECT_LT(pma.capacity(), big_cap);
  expect_valid(pma);
}

TEST(Pma, LowerBoundSlotSemantics) {
  Pma pma;
  pma.insert_batch({10, 20, 30});
  const auto& slots = pma.slots();
  // lower_bound(15) → slot holding 20.
  EXPECT_EQ(slots[pma.lower_bound_slot(15)], 20u);
  EXPECT_EQ(slots[pma.lower_bound_slot(20)], 20u);
  EXPECT_EQ(slots[pma.lower_bound_slot(0)], 10u);
  EXPECT_EQ(pma.lower_bound_slot(31), pma.capacity());
}

TEST(Pma, CloneIsDeepAndIndependent) {
  Pma pma;
  pma.insert_batch({1, 2, 3});
  Pma copy = pma.clone();
  pma.erase_batch({2});
  EXPECT_TRUE(copy.contains(2));
  EXPECT_FALSE(pma.contains(2));
  expect_valid(copy);
}

struct WorkloadParams {
  uint64_t seed;
  std::size_t batches;
  std::size_t batch_size;
  double delete_fraction;
};

class PmaWorkload : public ::testing::TestWithParam<WorkloadParams> {};

TEST_P(PmaWorkload, InvariantsHoldUnderRandomBatches) {
  const auto p = GetParam();
  Rng rng(p.seed);
  Pma pma;
  std::set<uint64_t> reference;

  for (std::size_t b = 0; b < p.batches; ++b) {
    // Mixed batch: deletes drawn from keys present BEFORE the batch (the
    // erase runs first, so same-batch inserts must not be delete targets),
    // inserts of fresh keys.
    std::set<uint64_t> present_before = reference;
    std::vector<uint64_t> inserts, deletes;
    for (std::size_t i = 0; i < p.batch_size; ++i) {
      if (!present_before.empty() && rng.bernoulli(p.delete_fraction)) {
        auto it = present_before.begin();
        std::advance(it, rng.next_below(
                             std::min<std::size_t>(present_before.size(), 50)));
        deletes.push_back(*it);
        reference.erase(*it);
        present_before.erase(it);
      } else {
        const uint64_t k = rng.next_below(1u << 20);
        if (reference.insert(k).second && !present_before.count(k))
          inserts.push_back(k);
      }
    }
    pma.erase_batch(deletes);
    pma.insert_batch(inserts);

    std::string why;
    ASSERT_TRUE(pma.check_invariants(&why)) << "batch " << b << ": " << why;
    ASSERT_EQ(pma.size(), reference.size()) << "batch " << b;
  }
  // Full content equality at the end.
  std::vector<uint64_t> want(reference.begin(), reference.end());
  EXPECT_EQ(pma.extract_sorted(), want);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PmaWorkload,
    ::testing::Values(WorkloadParams{1, 30, 50, 0.0},    // insert-only
                      WorkloadParams{2, 30, 50, 0.3},    // mixed
                      WorkloadParams{3, 50, 20, 0.5},    // delete-heavy
                      WorkloadParams{4, 10, 500, 0.2},   // large batches
                      WorkloadParams{5, 100, 5, 0.4}));  // many tiny batches

TEST(Pma, SequentialAndReverseSequentialInserts) {
  // Adversarial patterns for PMA rebalancing: monotone fronts.
  for (bool reverse : {false, true}) {
    Pma pma;
    for (int b = 0; b < 50; ++b) {
      std::vector<uint64_t> batch;
      for (int i = 0; i < 40; ++i) {
        const uint64_t v = static_cast<uint64_t>(b * 40 + i + 1);
        batch.push_back(reverse ? 1000000 - v : v);
      }
      pma.insert_batch(batch);
      std::string why;
      ASSERT_TRUE(pma.check_invariants(&why)) << why;
    }
    EXPECT_EQ(pma.size(), 2000u);
  }
}

TEST(Pma, EdgeKeyPackingRoundTrip) {
  const uint64_t k = make_edge_key(0xABCD, 0x1234);
  EXPECT_EQ(edge_key_src(k), 0xABCDu);
  EXPECT_EQ(edge_key_dst(k), 0x1234u);
  // Ordering: keys sort by (src, dst).
  EXPECT_LT(make_edge_key(1, 99999), make_edge_key(2, 0));
}

}  // namespace
}  // namespace stgraph
