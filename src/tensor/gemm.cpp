#include "tensor/gemm.hpp"

#include "runtime/parallel.hpp"
#include "tensor/op_profile.hpp"
#include "util/check.hpp"

namespace stgraph::ops::detail {

Tensor gemm(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  STG_CHECK(a.dim() == 2 && b.dim() == 2, "matmul needs rank-2 tensors, got ",
            shape_str(a.shape()), " and ", shape_str(b.shape()));
  const int64_t m = ta ? a.size(1) : a.size(0);
  const int64_t k = ta ? a.size(0) : a.size(1);
  const int64_t kb = tb ? b.size(1) : b.size(0);
  const int64_t n = tb ? b.size(0) : b.size(1);
  STG_CHECK(k == kb, "matmul inner dims mismatch: ", k, " vs ", kb, " (",
            shape_str(a.shape()), (ta ? "ᵀ" : ""), " @ ", shape_str(b.shape()),
            (tb ? "ᵀ" : ""), ")");
  Tensor out = Tensor::zeros({m, n});
  ProfileScope prof(OpClass::kMatmul,
                    static_cast<uint64_t>(out.numel()) * sizeof(float));
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  const int64_t lda = a.size(1), ldb = b.size(1);
  // Parallel over output rows; ikj loop order keeps the B row and C row
  // streaming (the cache-friendly classic for row-major GEMM).
  device::parallel_for_ranges(
      static_cast<std::size_t>(m), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          float* crow = pc + i * n;
          for (int64_t kk = 0; kk < k; ++kk) {
            const float aval = ta ? pa[kk * lda + i] : pa[i * lda + kk];
            if (aval == 0.0f) continue;
            if (!tb) {
              const float* brow = pb + kk * ldb;
              for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
            } else {
              for (int64_t j = 0; j < n; ++j) crow[j] += aval * pb[j * ldb + kk];
            }
          }
        }
      },
      /*grain=*/16);
  return out;
}

}  // namespace stgraph::ops::detail
