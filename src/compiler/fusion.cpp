#include "compiler/fusion.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <utility>

#include "autograd/engine.hpp"
#include "compiler/passes.hpp"
#include "runtime/device_buffer.hpp"
#include "runtime/mutex.hpp"
#include "runtime/parallel.hpp"
#include "tensor/ew_scalar.hpp"
#include "tensor/op_profile.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/thread_annotations.hpp"
#include "verify/validate.hpp"

namespace stgraph::compiler::fusion {
namespace {

// ---- switch, stats --------------------------------------------------------

std::atomic<int> g_enabled{-1};  // -1 = environment not read yet

struct StatCounters {
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> fused_forward{0};
  std::atomic<uint64_t> fused_backward{0};
  std::atomic<uint64_t> unfused_replays{0};
  std::atomic<uint64_t> scratch_acquires{0};
  std::atomic<uint64_t> scratch_reuses{0};
};

StatCounters& stat_counters() {
  static StatCounters s;
  return s;
}

// ---- per-signature program cache -----------------------------------------

/// A compiled program specialized to one (signature, rows, cols) shape.
/// Holding the programs by value keeps a cached plan (and everything a
/// pending backward needs) alive independently of the FusedOp that built
/// it.
struct ExecPlan {
  uint64_t sig = 0;
  int64_t rows = 0;
  int64_t cols = 0;
  EwProgram fwd;
  EwBackward bwd;
};

struct CacheKey {
  uint64_t sig;
  int64_t rows;
  int64_t cols;
  bool operator==(const CacheKey& o) const {
    return sig == o.sig && rows == o.rows && cols == o.cols;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    uint64_t h = k.sig;
    h ^= static_cast<uint64_t>(k.rows) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    h ^= static_cast<uint64_t>(k.cols) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

struct ProgramCache {
  Mutex mu{"fusion::ProgramCache::mu"};
  std::unordered_map<CacheKey, std::shared_ptr<ExecPlan>, CacheKeyHash> map
      STG_GUARDED_BY(mu);
};

ProgramCache& program_cache() {
  static ProgramCache c;
  return c;
}

std::shared_ptr<const ExecPlan> lookup_or_compile(const std::string& name,
                                                  uint64_t sig,
                                                  const EwProgram& fwd,
                                                  const EwBackward& bwd,
                                                  int64_t rows, int64_t cols) {
  ProgramCache& c = program_cache();
  const CacheKey key{sig, rows, cols};
  std::shared_ptr<ExecPlan> plan;
  {
    MutexLock lock(c.mu);
    auto it = c.map.find(key);
    if (it != c.map.end()) {
      stat_counters().cache_hits.fetch_add(1, std::memory_order_relaxed);
      plan = it->second;
    } else {
      stat_counters().cache_misses.fetch_add(1, std::memory_order_relaxed);
      plan = std::make_shared<ExecPlan>();
      plan->sig = sig;
      plan->rows = rows;
      plan->cols = cols;
      plan->fwd = fwd;
      plan->bwd = bwd;
      c.map.emplace(key, plan);
    }
  }
  // STGRAPH_VALIDATE audit: the plan a lookup returns must describe the
  // live view shape. A healthy cache cannot fail this (the shape is part
  // of the key); a stale or aliased entry fails here, at the step that
  // would have used it.
  if (verify::validation_enabled()) {
    STG_CHECK(plan->sig == sig && plan->rows == rows && plan->cols == cols,
              "fused program cache audit failed for ", name, ": cached (sig=",
              plan->sig, ", ", plan->rows, "x", plan->cols, ") vs live (sig=",
              sig, ", ", rows, "x", cols, ")");
  }
  return plan;
}

// ---- bias-grad scratch arena ---------------------------------------------

/// Thread-local free list of DeviceAllocator-backed scratch buffers for the
/// pointwise bias gradients the backward program materializes before the
/// column reduction. Training backwards all run on the training thread, so
/// the steady state is one acquire → one reuse per step, zero allocation.
class ScratchArena {
 public:
  DeviceBuffer<float> acquire(std::size_t n) {
    stat_counters().scratch_acquires.fetch_add(1, std::memory_order_relaxed);
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->size() >= n) {
        stat_counters().scratch_reuses.fetch_add(1, std::memory_order_relaxed);
        DeviceBuffer<float> b = std::move(*it);
        free_.erase(it);
        return b;
      }
    }
    return DeviceBuffer<float>(n, MemCategory::kScratch);
  }

  void release(DeviceBuffer<float> b) {
    if (free_.size() < kMaxRetained) free_.push_back(std::move(b));
  }

 private:
  static constexpr std::size_t kMaxRetained = 8;
  std::vector<DeviceBuffer<float>> free_;
};

ScratchArena& scratch_arena() {
  thread_local ScratchArena a;
  return a;
}

// ---- autograd attachment --------------------------------------------------

template <typename Fn>
void attach(Tensor& out, const std::string& name,
            const std::vector<Tensor>& inputs, Fn&& fn) {
  if (!NoGradGuard::grad_enabled()) return;
  auto node =
      std::make_shared<autograd::LambdaNode>(name, std::forward<Fn>(fn));
  bool any = false;
  for (const Tensor& t : inputs) any = node->add_input(t) || any;
  if (any) node->set_output(out);
}

}  // namespace

// ---- switch / stats API ---------------------------------------------------

bool fusion_enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    bool on = true;
    if (const char* e = std::getenv("STGRAPH_FUSION")) {
      std::string s(e);
      std::transform(s.begin(), s.end(), s.begin(),
                     [](unsigned char ch) { return std::tolower(ch); });
      on = !(s.empty() || s == "off" || s == "0" || s == "false");
    }
    v = on ? 1 : 0;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_fusion_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

FusionStats fusion_stats() {
  StatCounters& s = stat_counters();
  FusionStats out;
  out.cache_hits = s.cache_hits.load(std::memory_order_relaxed);
  out.cache_misses = s.cache_misses.load(std::memory_order_relaxed);
  out.fused_forward = s.fused_forward.load(std::memory_order_relaxed);
  out.fused_backward = s.fused_backward.load(std::memory_order_relaxed);
  out.unfused_replays = s.unfused_replays.load(std::memory_order_relaxed);
  out.scratch_acquires = s.scratch_acquires.load(std::memory_order_relaxed);
  out.scratch_reuses = s.scratch_reuses.load(std::memory_order_relaxed);
  return out;
}

void reset_fusion_stats() {
  StatCounters& s = stat_counters();
  s.cache_hits.store(0, std::memory_order_relaxed);
  s.cache_misses.store(0, std::memory_order_relaxed);
  s.fused_forward.store(0, std::memory_order_relaxed);
  s.fused_backward.store(0, std::memory_order_relaxed);
  s.unfused_replays.store(0, std::memory_order_relaxed);
  s.scratch_acquires.store(0, std::memory_order_relaxed);
  s.scratch_reuses.store(0, std::memory_order_relaxed);
}

std::size_t fusion_cache_size() {
  ProgramCache& c = program_cache();
  MutexLock lock(c.mu);
  return c.map.size();
}

void clear_fusion_cache() {
  ProgramCache& c = program_cache();
  MutexLock lock(c.mu);
  c.map.clear();
}

void debug_corrupt_cached_shapes(int64_t rows, int64_t cols) {
  ProgramCache& c = program_cache();
  MutexLock lock(c.mu);
  for (auto& kv : c.map) {
    kv.second->rows = rows;
    kv.second->cols = cols;
  }
}

// ---- blocked interpreter --------------------------------------------------

void run_ew_program(const EwProgram& p, const float* const* inputs,
                    int64_t rows, int64_t cols, float* const* outputs) {
  const int nn = static_cast<int>(p.nodes.size());
  STG_CHECK(nn <= kMaxEwNodes, "elementwise program too large: ", nn,
            " nodes (max ", kMaxEwNodes, ")");
  STG_CHECK(rows > 0 && cols > 0, "elementwise program on empty view");
  const std::size_t total =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  const EwNode* nodes = p.nodes.data();
  const EwInputKind* kinds = p.inputs.data();
  device::parallel_for_ranges(total, [&](std::size_t lo, std::size_t hi) {
    float reg[kMaxEwNodes][kEwBlock];
    for (std::size_t base = lo; base < hi; base += kEwBlock) {
      const int len =
          static_cast<int>(std::min<std::size_t>(kEwBlock, hi - base));
      for (int ni = 0; ni < nn; ++ni) {
        const EwNode& n = nodes[ni];
        float* r = reg[ni];
        const float* ra = n.a >= 0 ? reg[n.a] : nullptr;
        const float* rb = n.b >= 0 ? reg[n.b] : nullptr;
        switch (n.op) {
          case EwOp::kInput: {
            const float* src = inputs[n.input];
            if (kinds[n.input] == EwInputKind::kMat) {
              const float* s = src + base;
              for (int j = 0; j < len; ++j) r[j] = s[j];
            } else {
              // Bias broadcast: element (base+j) reads column (base+j)%F.
              int64_t c = static_cast<int64_t>(
                  base % static_cast<std::size_t>(cols));
              for (int j = 0; j < len; ++j) {
                r[j] = src[c];
                if (++c == cols) c = 0;
              }
            }
            break;
          }
          case EwOp::kAdd:
            for (int j = 0; j < len; ++j) r[j] = ra[j] + rb[j];
            break;
          case EwOp::kSub:
            for (int j = 0; j < len; ++j) r[j] = ra[j] - rb[j];
            break;
          case EwOp::kMul:
            for (int j = 0; j < len; ++j) r[j] = ra[j] * rb[j];
            break;
          case EwOp::kDiv:
            for (int j = 0; j < len; ++j) r[j] = ra[j] / rb[j];
            break;
          case EwOp::kAddS:
            for (int j = 0; j < len; ++j) r[j] = ra[j] + n.imm;
            break;
          case EwOp::kMulS:
            for (int j = 0; j < len; ++j) r[j] = ra[j] * n.imm;
            break;
          case EwOp::kNeg:
            for (int j = 0; j < len; ++j) r[j] = -ra[j];
            break;
          case EwOp::kOneMinus:
            for (int j = 0; j < len; ++j) r[j] = 1.0f - ra[j];
            break;
          case EwOp::kSigmoid:
            for (int j = 0; j < len; ++j) r[j] = ewmath::sigmoid(ra[j]);
            break;
          case EwOp::kTanh:
            for (int j = 0; j < len; ++j) r[j] = std::tanh(ra[j]);
            break;
          case EwOp::kRelu:
            for (int j = 0; j < len; ++j) r[j] = ewmath::relu(ra[j]);
            break;
          case EwOp::kLeakyRelu:
            for (int j = 0; j < len; ++j)
              r[j] = ewmath::leaky_relu(ra[j], n.imm);
            break;
          case EwOp::kExp:
            for (int j = 0; j < len; ++j) r[j] = std::exp(ra[j]);
            break;
          case EwOp::kAddBias:
            // The bias operand is a kInput register already holding the
            // broadcast row, so this is a plain register add.
            for (int j = 0; j < len; ++j) r[j] = ra[j] + rb[j];
            break;
          case EwOp::kReluGrad:
            // a = forward input x, b = incoming gradient.
            for (int j = 0; j < len; ++j) r[j] = ra[j] > 0 ? rb[j] : 0.0f;
            break;
          case EwOp::kLeakyGrad:
            for (int j = 0; j < len; ++j)
              r[j] = ra[j] > 0 ? rb[j] : n.imm * rb[j];
            break;
        }
      }
      for (std::size_t oi = 0; oi < p.outputs.size(); ++oi) {
        float* dst = outputs[oi] + base;
        const float* src = reg[p.outputs[oi]];
        for (int j = 0; j < len; ++j) dst[j] = src[j];
      }
    }
  });
}

// ---- unfused replay (STGRAPH_FUSION=off) ----------------------------------

Tensor replay_unfused(const EwProgram& p, const std::vector<Tensor>& inputs) {
  STG_CHECK(p.outputs.size() == 1,
            "replay_unfused expects a single-output forward program");
  std::vector<Tensor> vals(p.nodes.size());
  for (std::size_t i = 0; i < p.nodes.size(); ++i) {
    const EwNode& n = p.nodes[i];
    const Tensor& a = n.a >= 0 ? vals[static_cast<std::size_t>(n.a)] : vals[0];
    const Tensor& b = n.b >= 0 ? vals[static_cast<std::size_t>(n.b)] : vals[0];
    switch (n.op) {
      case EwOp::kInput:
        vals[i] = inputs[static_cast<std::size_t>(n.input)];
        break;
      case EwOp::kAdd: vals[i] = ops::add(a, b); break;
      case EwOp::kSub: vals[i] = ops::sub(a, b); break;
      case EwOp::kMul: vals[i] = ops::mul(a, b); break;
      case EwOp::kDiv: vals[i] = ops::div(a, b); break;
      case EwOp::kAddS: vals[i] = ops::add_scalar(a, n.imm); break;
      case EwOp::kMulS: vals[i] = ops::mul_scalar(a, n.imm); break;
      case EwOp::kOneMinus: vals[i] = ops::one_minus(a); break;
      case EwOp::kSigmoid: vals[i] = ops::sigmoid(a); break;
      case EwOp::kTanh: vals[i] = ops::tanh_op(a); break;
      case EwOp::kRelu: vals[i] = ops::relu(a); break;
      case EwOp::kLeakyRelu: vals[i] = ops::leaky_relu(a, n.imm); break;
      case EwOp::kExp: vals[i] = ops::exp_op(a); break;
      case EwOp::kAddBias: vals[i] = ops::add_bias(a, b); break;
      case EwOp::kNeg:
      case EwOp::kReluGrad:
      case EwOp::kLeakyGrad:
        STG_CHECK(false, "gradient-only op in a forward replay");
    }
  }
  return vals[static_cast<std::size_t>(p.outputs[0])];
}

// ---- FusedOp ---------------------------------------------------------------

FusedOp::FusedOp(std::string name,
                 const std::function<EwExpr(EwTracer&)>& build)
    : name_(std::move(name)) {
  fwd_ = optimize_elementwise(trace_elementwise(build));
  bwd_ = differentiate_elementwise(fwd_);
  sig_ = fwd_.hash();
  // The executed forward additionally materializes every transcendental
  // value the backward wants to read back (kEwBlock-sized register blocks
  // spill to [N,F] buffers the backward takes as inputs). A saved node
  // that IS the program output still gets its own buffer: capturing the
  // output tensor inside its own grad node would create an ownership
  // cycle (tensor → grad_fn → closure → tensor) and leak the pair.
  fwd_exec_ = fwd_;
  for (int sid : bwd_.saved) fwd_exec_.outputs.push_back(sid);
  STG_CHECK(static_cast<int>(fwd_.nodes.size()) <= kMaxEwNodes &&
                static_cast<int>(bwd_.prog.nodes.size()) <= kMaxEwNodes,
            "fused region ", name_, " exceeds the interpreter node budget");
}

Tensor FusedOp::operator()(const std::vector<Tensor>& inputs) const {
  STG_CHECK(inputs.size() == static_cast<std::size_t>(fwd_.num_inputs()),
            "fused op ", name_, ": expected ", fwd_.num_inputs(),
            " inputs, got ", inputs.size());
  int64_t rows = -1, cols = -1;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Tensor& t = inputs[i];
    STG_CHECK(t.defined(), "fused op ", name_, ": undefined input ", i);
    if (fwd_.inputs[i] == EwInputKind::kMat) {
      STG_CHECK(t.dim() == 2, "fused op ", name_, ": input ", i,
                " must be rank-2");
      if (rows < 0) {
        rows = t.rows();
        cols = t.cols();
      } else {
        STG_CHECK(t.rows() == rows && t.cols() == cols, "fused op ", name_,
                  ": input ", i, " shape mismatch");
      }
    }
  }
  STG_CHECK(rows >= 0, "fused op ", name_,
            ": program has no matrix input");
  for (std::size_t i = 0; i < inputs.size(); ++i)
    if (fwd_.inputs[i] == EwInputKind::kBias)
      STG_CHECK(inputs[i].dim() == 1 && inputs[i].numel() == cols,
                "fused op ", name_, ": bias input ", i, " must be [", cols,
                "]");

  if (!fusion_enabled()) {
    stat_counters().unfused_replays.fetch_add(1, std::memory_order_relaxed);
    return replay_unfused(fwd_, inputs);
  }

  std::shared_ptr<const ExecPlan> plan =
      lookup_or_compile(name_, sig_, fwd_exec_, bwd_, rows, cols);

  Tensor out = Tensor::empty({rows, cols});
  // Saved transcendental values (the tape's saved-output VJP analogue):
  // extra forward outputs the backward reads instead of re-evaluating the
  // exponentials. Each lives in its own buffer — never the output tensor
  // itself, which would cycle through its grad node and leak.
  std::vector<Tensor> saved_vals;
  saved_vals.reserve(plan->bwd.saved.size());
  {
    std::vector<float*> outps;
    outps.reserve(plan->fwd.outputs.size());
    outps.push_back(out.data());
    uint64_t fwd_bytes = static_cast<uint64_t>(out.numel()) * sizeof(float);
    for (std::size_t j = 0; j < plan->bwd.saved.size(); ++j) {
      Tensor s = Tensor::empty({rows, cols});
      outps.push_back(s.data());
      saved_vals.push_back(std::move(s));
      fwd_bytes += static_cast<uint64_t>(rows * cols) * sizeof(float);
    }
    ops::ProfileScope ps(ops::OpClass::kFused, fwd_bytes);
    std::vector<const float*> ins(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) ins[i] = inputs[i].data();
    run_ew_program(plan->fwd, ins.data(), rows, cols, outps.data());
  }
  stat_counters().fused_forward.fetch_add(1, std::memory_order_relaxed);

  attach(out, name_, inputs,
         [plan, inputs, saved_vals](const Tensor& g) {
           stat_counters().fused_backward.fetch_add(1,
                                                    std::memory_order_relaxed);
           const int64_t rows = plan->rows, cols = plan->cols;
           const std::size_t nin = inputs.size();
           std::vector<const float*> ins(nin + 1 + saved_vals.size());
           for (std::size_t i = 0; i < nin; ++i) ins[i] = inputs[i].data();
           ins[nin] = g.data();
           for (std::size_t j = 0; j < saved_vals.size(); ++j)
             ins[nin + 1 + j] = saved_vals[j].data();

           std::vector<Tensor> grads(nin);  // undefined = zero gradient
           std::vector<float*> outs;
           // kBias gradients come out pointwise [N,F]; park them in arena
           // scratch, then column-reduce below.
           std::vector<std::pair<std::size_t, DeviceBuffer<float>>> bias_tmp;
           uint64_t out_bytes = 0;
           for (std::size_t slot = 0; slot < nin; ++slot) {
             if (plan->bwd.input_grads[slot] < 0) continue;
             if (plan->fwd.inputs[slot] == EwInputKind::kMat) {
               grads[slot] = Tensor::empty({rows, cols});
               outs.push_back(grads[slot].data());
               out_bytes +=
                   static_cast<uint64_t>(rows * cols) * sizeof(float);
             } else {
               DeviceBuffer<float> buf = scratch_arena().acquire(
                   static_cast<std::size_t>(rows) *
                   static_cast<std::size_t>(cols));
               outs.push_back(buf.data());
               bias_tmp.emplace_back(slot, std::move(buf));
               out_bytes += static_cast<uint64_t>(cols) * sizeof(float);
             }
           }
           {
             ops::ProfileScope ps(ops::OpClass::kFused, out_bytes);
             run_ew_program(plan->bwd.prog, ins.data(), rows, cols,
                            outs.data());
             for (auto& [slot, buf] : bias_tmp) {
               // Serial row-major column reduction — the exact loop (and
               // accumulation order) of ops::add_bias's backward: one
               // sequential pass over the pointwise grads.
               grads[slot] = Tensor::zeros({cols});
               float* gb = grads[slot].data();
               const float* src = buf.data();
               const std::size_t f = static_cast<std::size_t>(cols);
               const std::size_t nrows = static_cast<std::size_t>(rows);
               for (std::size_t r = 0; r < nrows; ++r)
                 for (std::size_t c = 0; c < f; ++c) gb[c] += src[r * f + c];
             }
           }
           for (auto& [slot, buf] : bias_tmp)
             scratch_arena().release(std::move(buf));
           return grads;
         });
  return out;
}

// ---- cell regions ----------------------------------------------------------
// in() calls are sequenced as statements: C++ does not order function
// argument evaluation, and input slots must be assigned left-to-right.

Tensor sigmoid_add(const Tensor& a, const Tensor& b) {
  static const FusedOp op("fused_sigmoid_add", [](EwTracer& t) {
    EwExpr x = t.in();
    EwExpr y = t.in();
    return t.sigmoid(t.add(x, y));
  });
  return op({a, b});
}

Tensor tanh_add(const Tensor& a, const Tensor& b) {
  static const FusedOp op("fused_tanh_add", [](EwTracer& t) {
    EwExpr x = t.in();
    EwExpr y = t.in();
    return t.tanh(t.add(x, y));
  });
  return op({a, b});
}

Tensor gate_combine(const Tensor& z, const Tensor& h, const Tensor& c) {
  static const FusedOp op("fused_gate_combine", [](EwTracer& t) {
    EwExpr z_ = t.in();
    EwExpr h_ = t.in();
    EwExpr c_ = t.in();
    EwExpr zh = t.mul(z_, h_);
    EwExpr omz = t.one_minus(z_);
    EwExpr omc = t.mul(omz, c_);
    return t.add(zh, omc);
  });
  return op({z, h, c});
}

Tensor lstm_cell_state(const Tensor& f, const Tensor& c, const Tensor& i,
                       const Tensor& g) {
  static const FusedOp op("fused_lstm_cell_state", [](EwTracer& t) {
    EwExpr f_ = t.in();
    EwExpr c_ = t.in();
    EwExpr i_ = t.in();
    EwExpr g_ = t.in();
    EwExpr fc = t.mul(f_, c_);
    EwExpr ig = t.mul(i_, g_);
    return t.add(fc, ig);
  });
  return op({f, c, i, g});
}

Tensor mul_tanh(const Tensor& o, const Tensor& c) {
  static const FusedOp op("fused_mul_tanh", [](EwTracer& t) {
    EwExpr o_ = t.in();
    EwExpr c_ = t.in();
    return t.mul(o_, t.tanh(c_));
  });
  return op({o, c});
}

Tensor bias_sigmoid(const Tensor& x, const Tensor& bias) {
  static const FusedOp op("fused_bias_sigmoid", [](EwTracer& t) {
    EwExpr x_ = t.in();
    EwExpr b_ = t.in_bias();
    return t.sigmoid(t.add_bias(x_, b_));
  });
  return op({x, bias});
}

Tensor bias_tanh(const Tensor& x, const Tensor& bias) {
  static const FusedOp op("fused_bias_tanh", [](EwTracer& t) {
    EwExpr x_ = t.in();
    EwExpr b_ = t.in_bias();
    return t.tanh(t.add_bias(x_, b_));
  });
  return op({x, bias});
}

}  // namespace stgraph::compiler::fusion
