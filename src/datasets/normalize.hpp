// Signal normalization — PyG-T's bundled datasets ship z-score
// standardized; these utilities provide the same preprocessing for
// user-supplied signals, with the inverse transform for reporting
// predictions in original units.
#pragma once

#include "datasets/signal.hpp"

namespace stgraph::datasets {

/// Per-node affine normalization parameters: x' = (x - mean) / std.
struct NodeScaler {
  std::vector<float> mean;  // per node
  std::vector<float> stddev;

  /// Fit per-node statistics over all timestamps of the TARGET series
  /// (the quantity being forecast).
  static NodeScaler fit(const TemporalSignal& signal);

  /// Normalized copy of the signal (features AND targets, per node).
  TemporalSignal transform(const TemporalSignal& signal) const;

  /// Map a prediction tensor [N, 1] back to original units.
  Tensor inverse(const Tensor& pred) const;
};

/// Global min-max scaling of features to [0, 1] (fit over all
/// timestamps); common for bounded sensor signals.
struct MinMaxScaler {
  float min = 0.0f;
  float max = 1.0f;

  static MinMaxScaler fit(const TemporalSignal& signal);
  TemporalSignal transform(const TemporalSignal& signal) const;
};

}  // namespace stgraph::datasets
