// Figure 8: peak device memory vs percentage change between snapshots on
// the five DTDGs at feature size 8 — STGraph-Naive vs STGraph-GPMA vs
// PyG-T. Expected shape: GPMA nearly flat (base graph + deltas); Naive and
// PyG-T blow up as the %-change shrinks because more, highly redundant
// snapshots are stored.
#include <iostream>

#include "common.hpp"

using namespace stgraph;
using namespace stgraph::bench;

int main(int argc, char** argv) {
  BenchOptions opts = parse_options(argc, argv);
  opts.epochs = 1;  // memory is deterministic

  datasets::DynamicLoadOptions dyo;
  dyo.scale = opts.scale_dynamic;
  dyo.feature_size = 8;

  const std::vector<double> changes = {1.0, 2.5, 5.0, 7.5, 10.0};

  CsvWriter csv({"dataset", "percent_change", "naive_mib", "gpma_mib",
                 "pygt_mib", "gpma_vs_naive", "gpma_vs_pygt"});

  for (const auto& ds : datasets::load_all_dynamic(dyo)) {
    for (double pct : changes) {
      const DtdgEvents events = datasets::make_dtdg(ds, pct);
      const datasets::TemporalSignal signal =
          datasets::make_dynamic_signal(events, dyo);
      const RunResult naive =
          run_dtdg(events, signal, System::kStgraphNaive, opts);
      const RunResult gpma =
          run_dtdg(events, signal, System::kStgraphGpma, opts);
      const RunResult pygt = run_dtdg(events, signal, System::kPygt, opts);
      csv.add_row(
          {ds.name, CsvWriter::fmt(pct, 1),
           CsvWriter::fmt(naive.peak_device_mib, 3),
           CsvWriter::fmt(gpma.peak_device_mib, 3),
           CsvWriter::fmt(pygt.peak_device_mib, 3),
           CsvWriter::fmt(
               naive.peak_device_mib / std::max(gpma.peak_device_mib, 1e-9), 2),
           CsvWriter::fmt(
               pygt.peak_device_mib / std::max(gpma.peak_device_mib, 1e-9),
               2)});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  emit("fig8_dtdg_memory_vs_change", csv, opts);
  return 0;
}
