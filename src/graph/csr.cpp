#include "graph/csr.hpp"

#include <algorithm>

#include "runtime/scan.hpp"
#include "runtime/sort.hpp"
#include "util/check.hpp"

namespace stgraph {

Csr Csr::clone() const {
  Csr out;
  out.num_nodes = num_nodes;
  out.num_edges = num_edges;
  out.row_offset = row_offset.clone();
  out.col_indices = col_indices.clone();
  out.eids = eids.clone();
  out.node_ids = node_ids.clone();
  return out;
}

CsrView view_of(const Csr& csr) {
  CsrView v;
  v.num_nodes = csr.num_nodes;
  v.num_edges = csr.num_edges;
  v.row_offset = csr.row_offset.data();
  v.col_indices = csr.col_indices.data();
  v.eids = csr.eids.data();
  v.node_ids = csr.node_ids.empty() ? nullptr : csr.node_ids.data();
  v.has_gaps = false;
  return v;
}

namespace {

Csr build_keyed(uint32_t num_nodes, const std::vector<CooEdge>& edges,
                bool key_by_dst) {
  Csr csr;
  csr.num_nodes = num_nodes;
  csr.num_edges = static_cast<uint32_t>(edges.size());
  csr.row_offset = DeviceBuffer<uint32_t>(num_nodes + 1, 0u, MemCategory::kGraph);
  csr.col_indices = DeviceBuffer<uint32_t>(edges.size(), MemCategory::kGraph);
  csr.eids = DeviceBuffer<uint32_t>(edges.size(), MemCategory::kGraph);

  // Counting pass.
  std::vector<uint32_t> counts(num_nodes + 1, 0);
  for (const CooEdge& e : edges) {
    const uint32_t key = key_by_dst ? e.dst : e.src;
    STG_CHECK(key < num_nodes, "edge endpoint ", key, " >= num_nodes ",
              num_nodes);
    const uint32_t other = key_by_dst ? e.src : e.dst;
    STG_CHECK(other < num_nodes, "edge endpoint ", other, " >= num_nodes ",
              num_nodes);
    ++counts[key];
  }
  device::exclusive_scan(counts.data(), counts.data(), counts.size());
  std::copy(counts.begin(), counts.end(), csr.row_offset.data());

  // Scatter pass (stable w.r.t. input order within a row).
  std::vector<uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (const CooEdge& e : edges) {
    const uint32_t key = key_by_dst ? e.dst : e.src;
    const uint32_t pos = cursor[key]++;
    csr.col_indices[pos] = key_by_dst ? e.src : e.dst;
    csr.eids[pos] = e.eid;
  }
  return csr;
}

}  // namespace

Csr build_csr(uint32_t num_nodes, const std::vector<CooEdge>& edges) {
  return build_keyed(num_nodes, edges, /*key_by_dst=*/false);
}

Csr build_reverse_csr(uint32_t num_nodes, const std::vector<CooEdge>& edges) {
  return build_keyed(num_nodes, edges, /*key_by_dst=*/true);
}

std::vector<uint32_t> csr_degrees(const Csr& csr) {
  std::vector<uint32_t> deg(csr.num_nodes);
  for (uint32_t v = 0; v < csr.num_nodes; ++v)
    deg[v] = csr.row_offset[v + 1] - csr.row_offset[v];
  return deg;
}

void degree_sort(Csr& csr) {
  const std::vector<uint32_t> deg = csr_degrees(csr);
  // Descending-degree processing order (paper Figure 3). sort_indices is
  // stable so ties break by ascending vertex id.
  std::vector<uint32_t> order = device::sort_indices(
      csr.num_nodes,
      [&deg](uint32_t a, uint32_t b) { return deg[a] > deg[b]; });
  csr.node_ids = DeviceBuffer<uint32_t>(order, MemCategory::kGraph);
}

GraphSnapshot build_snapshot(uint32_t num_nodes,
                             const std::vector<CooEdge>& edges) {
  GraphSnapshot snap;
  snap.num_nodes = num_nodes;
  snap.num_edges = static_cast<uint32_t>(edges.size());
  snap.out_csr = build_csr(num_nodes, edges);
  snap.in_csr = build_reverse_csr(num_nodes, edges);
  degree_sort(snap.out_csr);
  degree_sort(snap.in_csr);
  snap.in_degrees =
      DeviceBuffer<uint32_t>(csr_degrees(snap.in_csr), MemCategory::kGraph);
  snap.out_degrees =
      DeviceBuffer<uint32_t>(csr_degrees(snap.out_csr), MemCategory::kGraph);
  // Coef cache is eid-indexed; labels are caller-controlled, so size by the
  // largest label rather than the edge count.
  uint32_t max_eid = 0;
  for (const CooEdge& e : edges) max_eid = std::max(max_eid, e.eid);
  snap.gcn_coef = DeviceBuffer<float>(edges.empty() ? 0 : max_eid + 1,
                                      MemCategory::kGraph);
  const uint32_t* ind = snap.in_degrees.data();
  for (const CooEdge& e : edges)
    snap.gcn_coef[e.eid] = gcn_norm_coef(ind[e.src], ind[e.dst]);
  return snap;
}

}  // namespace stgraph
