// STGRAPH_VALIDATE wiring: a process-wide switch that makes the graph
// formats and the trainer run the structural invariant analyzer
// (verify/invariants.hpp) after every mutation that could corrupt a view —
// GPMA incremental patches, streaming appends, and each completed training
// sequence. Off (the default) the hooks cost one cached-bool branch; on,
// every violation surfaces as an StgError thrown AT the mutation that
// introduced it instead of as a wrong gradient three layers later.
//
//   STGRAPH_VALIDATE=1 ./build/tests/test_training
//   STGRAPH_VALIDATE=1 ctest --test-dir build
#pragma once

#include "verify/report.hpp"

namespace stgraph::verify {

/// True when STGRAPH_VALIDATE is set to a truthy value (anything but "",
/// "0", "false", "off"). The environment is read once and cached; the
/// off-path is a single branch on a bool.
bool validation_enabled();

/// Test override: force the switch regardless of the environment.
void set_validation_enabled(bool on);

/// Throw StgError with the report text if `r` holds violations. `where`
/// names the mutation site (e.g. "GpmaGraph::refresh_views(t=3)").
void require_ok(const Report& r, const std::string& where);

}  // namespace stgraph::verify
