// Figure 5: per-epoch training time vs feature size on the five
// static-temporal datasets — STGraph (fused vertex-centric kernels) vs the
// PyG-T baseline (edge-parallel message passing). Expected shape: STGraph
// at or below PyG-T everywhere; tiny graphs (PM, HC, MB) nearly flat in F.
#include <iostream>

#include "common.hpp"

using namespace stgraph;
using namespace stgraph::bench;

int main(int argc, char** argv) {
  BenchOptions opts = parse_options(argc, argv);

  datasets::StaticLoadOptions so;
  so.scale = opts.scale_static;
  so.num_timestamps = opts.timestamps;

  CsvWriter csv({"dataset", "feature_size", "stgraph_epoch_s", "pygt_epoch_s",
                 "speedup", "stgraph_loss", "pygt_loss"});

  for (const auto& ds : datasets::load_all_static(so)) {
    for (int64_t F : feature_sweep(opts)) {
      const datasets::TemporalSignal signal =
          datasets::make_static_signal(ds, F, /*seed=*/1234);
      const RunResult st =
          run_static(ds, signal, System::kStgraphStatic, opts);
      const RunResult pt = run_static(ds, signal, System::kPygt, opts);
      csv.add_row({ds.name, std::to_string(F),
                   CsvWriter::fmt(st.per_epoch_seconds, 4),
                   CsvWriter::fmt(pt.per_epoch_seconds, 4),
                   CsvWriter::fmt(pt.per_epoch_seconds /
                                      std::max(st.per_epoch_seconds, 1e-9),
                                  2),
                   CsvWriter::fmt(st.final_loss, 4),
                   CsvWriter::fmt(pt.final_loss, 4)});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  emit("fig5_static_time_vs_feature", csv, opts);
  return 0;
}
