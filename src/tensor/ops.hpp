// Differentiable tensor operations. Every op is a free function that
// builds an autograd::Node recording its vector–Jacobian product; all
// forward loops run as device kernels (parallel_for_ranges) so op cost is
// attributed to the same substrate as the graph kernels.
#pragma once

#include "tensor/tensor.hpp"

namespace stgraph {
class Rng;
}

namespace stgraph::ops {

// ---- elementwise ------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
/// x [N, F] + bias [F], broadcast over rows.
Tensor add_bias(const Tensor& x, const Tensor& bias);
/// 1 - x (used by GRU-style gates).
Tensor one_minus(const Tensor& x);
/// Elementwise a / b.
Tensor div(const Tensor& a, const Tensor& b);
/// x scaled by a one-element tensor (gradients flow into the scalar too —
/// attention-weighted sums use this).
Tensor scale(const Tensor& x, const Tensor& scalar);

// ---- activations -------------------------------------------------------
Tensor sigmoid(const Tensor& x);
Tensor tanh_op(const Tensor& x);
Tensor relu(const Tensor& x);
Tensor leaky_relu(const Tensor& x, float slope = 0.01f);
/// exp(x) — building block; used by softmax-ish post-processing in tests.
Tensor exp_op(const Tensor& x);
/// Softmax over a rank-1 tensor (attention weights over periods).
Tensor softmax(const Tensor& x);
/// One element of a rank-1 tensor as a [1] tensor (differentiable view).
Tensor element(const Tensor& x, int64_t index);

// ---- linear algebra ------------------------------------------------------
/// op(A) @ op(B) where op is optional transpose; A [M,K], B [K,N] after ops.
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

// ---- shape ops -------------------------------------------------------
/// Concatenate along columns: [N, Fa] ++ [N, Fb] -> [N, Fa+Fb].
Tensor cat_cols(const Tensor& a, const Tensor& b);
/// Columns [begin, end) of x.
Tensor slice_cols(const Tensor& x, int64_t begin, int64_t end);
/// Rows [begin, end) of x.
Tensor slice_rows(const Tensor& x, int64_t begin, int64_t end);
/// Gather rows: out[i] = x[index[i]].
Tensor gather_rows(const Tensor& x, const std::vector<uint32_t>& index);
Tensor reshape(const Tensor& x, Shape new_shape);

// ---- reductions -------------------------------------------------------
Tensor sum(const Tensor& x);
Tensor mean(const Tensor& x);
/// Row-wise sum of a [N, F] tensor -> [N] (link-prediction dot scores).
Tensor row_sum(const Tensor& x);

// ---- losses -------------------------------------------------------------
/// mean((pred - target)^2); target is a constant (no grad).
Tensor mse_loss(const Tensor& pred, const Tensor& target);
/// mean BCE with logits, numerically stable:
/// max(z,0) - z*y + log(1 + exp(-|z|)).
Tensor bce_with_logits_loss(const Tensor& logits, const Tensor& targets);

// ---- regularization -----------------------------------------------------
/// Inverted dropout; identity when !training.
Tensor dropout(const Tensor& x, float p, Rng& rng, bool training);

}  // namespace stgraph::ops
