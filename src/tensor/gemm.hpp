// Raw GEMM, no autograd. Lives in its own translation unit so it keeps the
// compiler's default FP contraction (the inner `c += a*b` becomes an FMA,
// which dominates matmul throughput) while tensor/ops.cpp compiles with
// -ffp-contract=off for bit-parity with the fusing compiler's interpreter.
// GEMM results are identical on the fused and unfused paths either way —
// both call this one kernel — so contraction here cannot break parity.
#pragma once

#include "tensor/tensor.hpp"

namespace stgraph::ops::detail {

/// C[M,N] = op(A)·op(B), row-major. ta/tb transpose the operand reads.
Tensor gemm(const Tensor& a, const Tensor& b, bool ta, bool tb);

}  // namespace stgraph::ops::detail
