// GConvGRU — the Chebyshev-convolutional GRU from PyG-T's layer zoo
// (Seo et al., "Structured Sequence Modeling with Graph Convolutional
// Recurrent Networks"). Included to demonstrate the paper's §V-A1 claim:
// new temporal models are built by swapping the GNN building block or the
// temporal structure, with no new kernels.
//
// Unlike TGCN (which convolves only the input X), GConvGRU convolves BOTH
// the input and the hidden state in every gate:
//
//   Z  = σ(conv_xz(X) + conv_hz(H))
//   R  = σ(conv_xr(X) + conv_hr(H))
//   H~ = tanh(conv_xh(X) + conv_hh(R⊙H))
//   H' = Z⊙H + (1-Z)⊙H~
//
// The convolution is a ChebConv-lite of order K ∈ {1, 2}: K=1 is a plain
// linear map; K=2 adds one graph-aggregated hop (both hops share the
// SeastarGCNConv fused kernel machinery).
#pragma once

#include "nn/gcn.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"

namespace stgraph::nn {

/// ChebConv-lite: y = X·W0 (+ Agg(X)·W1 when K=2), Agg = symmetric-norm
/// neighborhood aggregation through the vertex-centric kernel.
class ChebConvLite : public Module {
 public:
  ChebConvLite(int64_t in_features, int64_t out_features, int k, Rng& rng,
               bool bias = true);

  Tensor forward(core::TemporalExecutor& exec, const Tensor& x,
                 const float* edge_weights = nullptr) const;

  int order() const { return k_; }

 private:
  int k_;
  Linear lin0_;
  std::unique_ptr<SeastarGCNConv> hop1_;  // K=2 only
};

class GConvGRU : public Module {
 public:
  GConvGRU(int64_t in_features, int64_t out_features, int k, Rng& rng);

  Tensor forward(core::TemporalExecutor& exec, const Tensor& x,
                 const Tensor& h, const float* edge_weights = nullptr) const;
  Tensor initial_state(int64_t num_nodes) const;

  int64_t out_features() const { return out_; }

 private:
  int64_t in_, out_;
  ChebConvLite conv_xz_, conv_hz_;
  ChebConvLite conv_xr_, conv_hr_;
  ChebConvLite conv_xh_, conv_hh_;
};

/// Node-regression model over GConvGRU (mirrors TGCNRegressor).
class GConvGRURegressor final : public TemporalModel {
 public:
  GConvGRURegressor(int64_t in_features, int64_t hidden, int k, Rng& rng);
  std::pair<Tensor, Tensor> step(core::TemporalExecutor& exec, const Tensor& x,
                                 const Tensor& h,
                                 const float* edge_weights) override;
  Tensor initial_state(int64_t num_nodes) const override {
    return gru_.initial_state(num_nodes);
  }

 private:
  GConvGRU gru_;
  Linear head_;
};

}  // namespace stgraph::nn
