// Remaining small-surface tests: logging levels, CSV save failure paths,
// cross-format magic rejection in the I/O module.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "datasets/synthetic.hpp"
#include "io/serialize.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

namespace stgraph {
namespace {

TEST(Logging, LevelGateControlsEmission) {
  const log::Level prev = log::level();
  log::set_level(log::Level::kError);
  // Below-threshold loggers must not touch the stream; this is observable
  // only through the enabled flag, so exercise both paths for coverage.
  STG_LOG_DEBUG << "suppressed";
  STG_LOG_ERROR << "emitted to stderr";
  log::set_level(log::Level::kOff);
  STG_LOG_ERROR << "also suppressed";
  log::set_level(prev);
  SUCCEED();
}

TEST(Csv, SaveToInvalidPathReturnsFalse) {
  CsvWriter w({"a"});
  w.add_row({"1"});
  EXPECT_FALSE(w.save("/nonexistent_dir_xyz/file.csv"));
}

TEST(Csv, SaveRoundTrip) {
  CsvWriter w({"x", "y"});
  w.add_row({"1", "2"});
  const std::string path =
      "/tmp/stgraph_csv_test_" + std::to_string(::getpid());
  ASSERT_TRUE(w.save(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(IoCrossFormat, StaticLoaderRejectsDtdgFile) {
  // Save a DTDG, then try to read it as a static dataset: the magic check
  // must reject it with a clear error instead of misparsing.
  DtdgEvents ev;
  ev.num_nodes = 3;
  ev.base_edges = {{0, 1}};
  const std::string path =
      "/tmp/stgraph_cross_test_" + std::to_string(::getpid());
  io::save_dtdg(ev, path);
  EXPECT_THROW(io::load_static_dataset(path), StgError);
  // And the right loader still works.
  EXPECT_NO_THROW(io::load_dtdg(path));
  std::remove(path.c_str());
}

TEST(IoCrossFormat, DtdgLoaderRejectsStaticFile) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 2;
  o.feature_size = 2;
  auto ds = datasets::load_pedalme(o);
  const std::string path =
      "/tmp/stgraph_cross_test2_" + std::to_string(::getpid());
  io::save_static_dataset(ds, path);
  EXPECT_THROW(io::load_dtdg(path), StgError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stgraph
