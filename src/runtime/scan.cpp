#include "runtime/scan.hpp"

#include <algorithm>

#include "runtime/parallel.hpp"

namespace stgraph::device {
namespace {

// Three-phase chunked scan (reduce / scan-of-sums / downsweep): the classic
// work-efficient parallel scan, with each phase a lane-parallel pass.
template <typename T>
void inclusive_scan_impl(const T* in, T* out, std::size_t n) {
  if (n == 0) return;
  auto& pool = ThreadPool::instance();
  // Effective lanes: on a pool lane (nested use) the launch below would run
  // inline on one lane only, so sizing chunks with pool.lanes() would scan
  // just the first chunk. See detail::effective_lanes.
  const unsigned lanes = detail::effective_lanes(pool);
  constexpr std::size_t kSerialCutoff = 1 << 14;
  if (lanes == 1 || n <= kSerialCutoff) {
    T acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += in[i];
      out[i] = acc;
    }
    return;
  }
  const std::size_t chunk = (n + lanes - 1) / lanes;
  std::vector<T> sums(lanes, 0);
  pool.run_on_lanes([&](unsigned lane) {
    const std::size_t b = static_cast<std::size_t>(lane) * chunk;
    if (b >= n) return;
    const std::size_t e = std::min(n, b + chunk);
    T acc = 0;
    for (std::size_t i = b; i < e; ++i) {
      acc += in[i];
      out[i] = acc;
    }
    sums[lane] = acc;
  });
  // Scan of per-chunk sums (lanes is small; serial).
  T carry = 0;
  for (unsigned l = 0; l < lanes; ++l) {
    T s = sums[l];
    sums[l] = carry;
    carry += s;
  }
  pool.run_on_lanes([&](unsigned lane) {
    const std::size_t b = static_cast<std::size_t>(lane) * chunk;
    if (b >= n || sums[lane] == 0) return;
    const std::size_t e = std::min(n, b + chunk);
    const T offset = sums[lane];
    for (std::size_t i = b; i < e; ++i) out[i] += offset;
  });
}

template <typename T>
T exclusive_scan_impl(const T* in, T* out, std::size_t n) {
  if (n == 0) return 0;
  // Compute the inclusive scan, then shift. Keep the grand total before the
  // shift destroys it when aliased.
  inclusive_scan_impl(in, out, n);
  const T total = out[n - 1];
  for (std::size_t i = n; i-- > 1;) out[i] = out[i - 1];
  out[0] = 0;
  return total;
}

}  // namespace

void inclusive_scan(const uint64_t* in, uint64_t* out, std::size_t n) {
  inclusive_scan_impl(in, out, n);
}
void inclusive_scan(const uint32_t* in, uint32_t* out, std::size_t n) {
  inclusive_scan_impl(in, out, n);
}
uint64_t exclusive_scan(const uint64_t* in, uint64_t* out, std::size_t n) {
  return exclusive_scan_impl(in, out, n);
}
uint32_t exclusive_scan(const uint32_t* in, uint32_t* out, std::size_t n) {
  return exclusive_scan_impl(in, out, n);
}

std::vector<uint64_t> inclusive_scan(const std::vector<uint64_t>& in) {
  std::vector<uint64_t> out(in.size());
  inclusive_scan(in.data(), out.data(), in.size());
  return out;
}
std::vector<uint64_t> exclusive_scan(const std::vector<uint64_t>& in) {
  std::vector<uint64_t> out(in.size());
  exclusive_scan(in.data(), out.data(), in.size());
  return out;
}

}  // namespace stgraph::device
