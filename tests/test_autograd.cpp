// Autograd tests: numerical gradient checks against central finite
// differences for every differentiable op, engine ordering/accumulation
// semantics, and NoGradGuard behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/engine.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

// Central-difference gradient of scalar_fn w.r.t. x, compared entrywise to
// the autograd gradient. scalar_fn must rebuild the graph each call.
void check_gradient(Tensor& x,
                    const std::function<Tensor()>& scalar_fn,
                    float eps = 1e-2f, float tol = 2e-2f) {
  x.zero_grad();
  Tensor loss = scalar_fn();
  loss.backward();
  Tensor grad = x.grad();
  ASSERT_TRUE(grad.defined());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const float up = scalar_fn().item();
    x.data()[i] = orig - eps;
    const float down = scalar_fn().item();
    x.data()[i] = orig;
    const float fd = (up - down) / (2 * eps);
    const float ad = grad.at(i);
    const float scale = std::max({1.0f, std::abs(fd), std::abs(ad)});
    EXPECT_NEAR(ad, fd, tol * scale) << "entry " << i;
  }
}

struct OpCase {
  const char* name;
  std::function<Tensor(const Tensor&)> fn;  // builds a non-scalar output
};

class UnaryGradient : public ::testing::TestWithParam<OpCase> {};

TEST_P(UnaryGradient, MatchesFiniteDifference) {
  Rng rng(42);
  Tensor x = Tensor::randn({3, 4}, rng, 0.8f, /*requires_grad=*/true);
  const auto& op = GetParam().fn;
  check_gradient(x, [&] { return ops::sum(op(x)); });
}

INSTANTIATE_TEST_SUITE_P(
    Ops, UnaryGradient,
    ::testing::Values(
        OpCase{"sigmoid", [](const Tensor& x) { return ops::sigmoid(x); }},
        OpCase{"tanh", [](const Tensor& x) { return ops::tanh_op(x); }},
        OpCase{"leaky_relu",
               [](const Tensor& x) { return ops::leaky_relu(x, 0.1f); }},
        OpCase{"exp", [](const Tensor& x) { return ops::exp_op(x); }},
        OpCase{"mul_scalar",
               [](const Tensor& x) { return ops::mul_scalar(x, -1.7f); }},
        OpCase{"add_scalar",
               [](const Tensor& x) { return ops::add_scalar(x, 0.3f); }},
        OpCase{"one_minus", [](const Tensor& x) { return ops::one_minus(x); }},
        OpCase{"mul_self", [](const Tensor& x) { return ops::mul(x, x); }},
        OpCase{"reshape",
               [](const Tensor& x) { return ops::reshape(x, {4, 3}); }},
        OpCase{"slice_cols",
               [](const Tensor& x) { return ops::slice_cols(x, 1, 3); }},
        OpCase{"slice_rows",
               [](const Tensor& x) { return ops::slice_rows(x, 0, 2); }},
        OpCase{"row_sum", [](const Tensor& x) { return ops::row_sum(x); }},
        OpCase{"gather_rows",
               [](const Tensor& x) {
                 return ops::gather_rows(x, {0, 2, 2, 1});
               }},
        OpCase{"cat_with_const",
               [](const Tensor& x) {
                 return ops::cat_cols(x, Tensor::ones({3, 2}));
               }}),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      return info.param.name;
    });

TEST(Gradient, AddBothOperands) {
  Rng rng(1);
  Tensor a = Tensor::randn({2, 3}, rng, 1.0f, true);
  Tensor b = Tensor::randn({2, 3}, rng, 1.0f, true);
  check_gradient(a, [&] { return ops::sum(ops::add(a, b)); });
  check_gradient(b, [&] { return ops::sum(ops::add(a, b)); });
}

TEST(Gradient, SubBothOperands) {
  Rng rng(2);
  Tensor a = Tensor::randn({2, 3}, rng, 1.0f, true);
  Tensor b = Tensor::randn({2, 3}, rng, 1.0f, true);
  check_gradient(b, [&] { return ops::sum(ops::sub(a, b)); });
}

TEST(Gradient, MulBothOperands) {
  Rng rng(3);
  Tensor a = Tensor::randn({2, 3}, rng, 1.0f, true);
  Tensor b = Tensor::randn({2, 3}, rng, 1.0f, true);
  check_gradient(a, [&] { return ops::sum(ops::mul(a, b)); });
  check_gradient(b, [&] { return ops::sum(ops::mul(a, b)); });
}

TEST(Gradient, AddBias) {
  Rng rng(4);
  Tensor x = Tensor::randn({3, 4}, rng, 1.0f, true);
  Tensor b = Tensor::randn({4}, rng, 1.0f, true);
  // Weighted sum so bias grads differ per column.
  Tensor w = Tensor::randn({3, 4}, rng);
  auto fn = [&] { return ops::sum(ops::mul(ops::add_bias(x, b), w)); };
  check_gradient(x, fn);
  check_gradient(b, fn);
}

class MatmulGradient
    : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(MatmulGradient, AllTransposeVariants) {
  const auto [ta, tb] = GetParam();
  Rng rng(5);
  Tensor a = Tensor::randn(ta ? Shape{3, 2} : Shape{2, 3}, rng, 1.0f, true);
  Tensor b = Tensor::randn(tb ? Shape{4, 3} : Shape{3, 4}, rng, 1.0f, true);
  Tensor w = Tensor::randn({2, 4}, rng);  // weights the output entries
  auto fn = [&] { return ops::sum(ops::mul(ops::matmul(a, b, ta, tb), w)); };
  check_gradient(a, fn);
  check_gradient(b, fn);
}

INSTANTIATE_TEST_SUITE_P(Variants, MatmulGradient,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{true, false},
                                           std::pair{false, true},
                                           std::pair{true, true}));

TEST(Gradient, MseLoss) {
  Rng rng(6);
  Tensor p = Tensor::randn({3, 2}, rng, 1.0f, true);
  Tensor t = Tensor::randn({3, 2}, rng, 1.0f);
  check_gradient(p, [&] { return ops::mse_loss(p, t); });
}

TEST(Gradient, BceWithLogits) {
  Rng rng(7);
  Tensor z = Tensor::randn({6}, rng, 1.5f, true);
  Tensor y = Tensor::from_vector({1, 0, 1, 1, 0, 0}, {6});
  check_gradient(z, [&] { return ops::bce_with_logits_loss(z, y); });
}

TEST(Gradient, ChainedGruStyleCell) {
  // Composite check through a GRU-gate-like expression — exercises the
  // same op chain the TGCN cell builds.
  Rng rng(8);
  Tensor x = Tensor::randn({4, 3}, rng, 0.5f, true);
  Tensor h = Tensor::randn({4, 3}, rng, 0.5f, true);
  auto fn = [&] {
    Tensor z = ops::sigmoid(ops::add(x, h));
    Tensor cand = ops::tanh_op(ops::mul(x, h));
    Tensor out = ops::add(ops::mul(z, h), ops::mul(ops::one_minus(z), cand));
    return ops::sum(out);
  };
  check_gradient(x, fn, 1e-2f, 3e-2f);
  check_gradient(h, fn, 1e-2f, 3e-2f);
}

TEST(Engine, GradientsAccumulateAcrossBackwardCalls) {
  Tensor x = Tensor::ones({2}, true);
  Tensor loss1 = ops::sum(ops::mul_scalar(x, 2.0f));
  loss1.backward();
  Tensor loss2 = ops::sum(ops::mul_scalar(x, 3.0f));
  loss2.backward();
  EXPECT_EQ(x.grad().at(0), 5.0f);
  x.zero_grad();
  EXPECT_EQ(x.grad().at(0), 0.0f);
}

TEST(Engine, DiamondDependencyAccumulatesOnce) {
  // y = x*x + x*x reuses the same intermediate twice.
  Tensor x = Tensor::full({1}, 3.0f, true);
  Tensor sq = ops::mul(x, x);
  Tensor y = ops::add(sq, sq);
  y.backward();
  EXPECT_NEAR(x.grad().item(), 12.0f, 1e-5);  // d(2x²)/dx = 4x
}

TEST(Engine, BackwardRequiresScalarWithoutSeed) {
  Tensor x = Tensor::ones({2, 2}, true);
  Tensor y = ops::mul_scalar(x, 2.0f);
  EXPECT_THROW(y.backward(), StgError);
  y.backward(Tensor::ones({2, 2}));
  EXPECT_EQ(x.grad().at(0), 2.0f);
}

TEST(Engine, LeafWithoutGradFnAccumulatesDirectly) {
  Tensor x = Tensor::ones({2}, true);
  x.backward(Tensor::from_vector({5, 7}, {2}));
  EXPECT_EQ(x.grad().at(1), 7.0f);
}

TEST(Engine, NoGradGuardDisablesTaping) {
  Tensor x = Tensor::ones({2}, true);
  {
    NoGradGuard ng;
    Tensor y = ops::mul_scalar(x, 2.0f);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_EQ(y.impl()->grad_fn, nullptr);
  }
  Tensor y = ops::mul_scalar(x, 2.0f);
  EXPECT_TRUE(y.requires_grad());
}

TEST(Engine, NonRequiringInputsGetNoGradient) {
  Tensor a = Tensor::ones({2}, true);
  Tensor b = Tensor::ones({2});  // no grad
  Tensor y = ops::sum(ops::mul(a, b));
  y.backward();
  EXPECT_TRUE(a.grad().defined());
  EXPECT_FALSE(b.grad().defined());
}

TEST(Engine, SetRequiresGradOnNonLeafThrows) {
  Tensor x = Tensor::ones({2}, true);
  Tensor y = ops::mul_scalar(x, 2.0f);
  EXPECT_THROW(y.set_requires_grad(true), StgError);
}

}  // namespace
}  // namespace stgraph
