// Serving smoke benchmark (`run_all.sh serve-smoke`): checkpoint a tiny
// link-prediction model, stand up an in-process serve::Server, then hammer
// it with concurrent predict() clients while the main thread streams delta
// batches through ingest(). Emits the server's stats report (p50/p99
// latency, batch occupancy, delta-apply throughput) as BENCH_serve.json.
//
//   ./build/bench/bench_serve --out=BENCH_serve.json \
//       --requests=1000 --deltas=50 --threads=4
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "nn/models.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

using namespace stgraph;

int main(int argc, char** argv) {
  std::string out = "BENCH_serve.json";
  uint64_t total_requests = 1000;
  uint32_t num_deltas = 50;
  uint32_t num_threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(std::string(prefix).size());
      return std::nullopt;
    };
    if (auto v = value("--out=")) out = *v;
    else if (auto v = value("--requests=")) total_requests = std::stoull(*v);
    else if (auto v = value("--deltas=")) num_deltas = std::stoul(*v);
    else if (auto v = value("--threads=")) num_threads = std::stoul(*v);
    else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  // ---- tiny model + checkpoint -------------------------------------------
  datasets::DynamicLoadOptions opts;
  opts.scale = 0.02;
  opts.feature_size = 8;
  opts.link_samples_per_step = 64;
  datasets::DynamicDataset ds = datasets::load_sx_mathoverflow(opts);
  const DtdgEvents events = datasets::make_dtdg(ds, /*percent_change=*/2.0);
  const datasets::TemporalSignal signal =
      datasets::make_dynamic_signal(events, opts);
  if (num_deltas > events.num_timestamps() - 1) {
    num_deltas = events.num_timestamps() - 1;
    std::cerr << "clamping --deltas to the " << num_deltas
              << " available snapshot transitions\n";
  }

  const char* ckpt = "/tmp/stgraph_bench_serve.stgt";
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = 8;
  cfg.lr = 2e-2f;
  cfg.task = core::Task::kLinkPrediction;
  {
    GpmaGraph train_graph(events);
    Rng rng(7);
    nn::TGCNEncoder model(opts.feature_size, 16, rng);
    core::STGraphTrainer trainer(train_graph, model, signal, cfg);
    trainer.train();
    trainer.save_checkpoint(ckpt);
  }

  // ---- serve: concurrent clients + streaming ingest ----------------------
  GpmaGraph graph(DtdgEvents{ds.num_nodes, events.base_edges, {}});
  Rng rng(7);
  nn::TGCNEncoder model(opts.feature_size, 16, rng);
  serve::ServeConfig scfg;
  scfg.max_batch = 16;
  scfg.queue_capacity = 4096;
  serve::Server server(graph, model, scfg);
  server.load(ckpt);
  server.start(signal.features[0]);

  std::atomic<uint64_t> issued{0};
  std::atomic<uint64_t> errors{0};
  auto client = [&](uint32_t seed) {
    Rng crng(1000 + seed);
    while (issued.fetch_add(1, std::memory_order_relaxed) < total_requests) {
      std::vector<uint32_t> nodes;
      if (crng.next_below(4) != 0) {  // 3/4 of requests ask for a subset
        const uint32_t k = 1 + static_cast<uint32_t>(crng.next_below(8));
        for (uint32_t j = 0; j < k; ++j)
          nodes.push_back(static_cast<uint32_t>(crng.next_below(ds.num_nodes)));
      }
      try {
        server.predict(std::move(nodes));
      } catch (const StgError&) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> clients;
  clients.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) clients.emplace_back(client, i);

  for (uint32_t t = 1; t <= num_deltas; ++t)
    server.ingest(events.deltas[t - 1], signal.features[t]);

  for (auto& th : clients) th.join();
  const serve::ReadView view = server.read_view();
  server.stop();
  std::remove(ckpt);

  const serve::StatsReport report = server.stats();
  std::ofstream f(out);
  f << report.to_json();
  f.close();

  std::cout << "served " << report.requests << " requests ("
            << report.failed + errors.load() << " failed/rejected) across "
            << report.batches << " batches; " << report.deltas_applied
            << " deltas → t=" << view.time << " v" << view.version << "\n"
            << "p50 " << report.p50_us << " us, p99 " << report.p99_us
            << " us, ingest " << report.delta_edges_per_sec << " edges/s\n"
            << "wrote " << out << "\n";
  return report.requests > 0 ? 0 : 1;
}
