// Dedicated tests for the PyG-T baseline module: COO construction,
// per-edge GCN normalization, gradient correctness of the edge-parallel
// primitives, and the memory attribution of message tensors.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>

#include "baseline/coo_graph.hpp"
#include "baseline/edge_ops.hpp"
#include "baseline/pyg_layers.hpp"
#include "runtime/memory_tracker.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using namespace baseline;

TEST(CooGraph, ConstructionAndBytes) {
  CooSnapshot g = make_coo(4, {{0, 1}, {1, 2}, {3, 0}});
  EXPECT_EQ(g.num_nodes, 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.src.to_host(), (std::vector<uint32_t>{0, 1, 3}));
  EXPECT_EQ(g.dst.to_host(), (std::vector<uint32_t>{1, 2, 0}));
  EXPECT_EQ(g.device_bytes(), 2 * 3 * sizeof(uint32_t));
  EXPECT_THROW(make_coo(2, {{0, 5}}), StgError);
}

TEST(PygtTemporalGraph, StaticSharesOneSnapshot) {
  PygtTemporalGraph g(3, {{0, 1}, {1, 2}}, 10);
  EXPECT_FALSE(g.is_dynamic());
  EXPECT_EQ(&g.snapshot(0), &g.snapshot(9));
  EXPECT_THROW(g.snapshot(10), StgError);
}

TEST(PygtTemporalGraph, DynamicMaterializesEverySnapshot) {
  DtdgEvents ev;
  ev.num_nodes = 3;
  ev.base_edges = {{0, 1}};
  ev.deltas.push_back({{{1, 2}}, {}});
  ev.deltas.push_back({{{2, 0}}, {{0, 1}}});
  PygtTemporalGraph g(ev);
  EXPECT_TRUE(g.is_dynamic());
  EXPECT_EQ(g.snapshot(0).num_edges(), 1u);
  EXPECT_EQ(g.snapshot(1).num_edges(), 2u);
  EXPECT_EQ(g.snapshot(2).num_edges(), 2u);
}

TEST(EdgeOps, GcnNormMatchesFormula) {
  // 0→1, 2→1: din+1 = [1, 3, 1].
  CooSnapshot g = make_coo(3, {{0, 1}, {2, 1}});
  Tensor norm = gcn_norm(g);
  const float want = 1.0f / std::sqrt(1.0f * 3.0f);
  EXPECT_NEAR(norm.at(0), want, 1e-6f);
  EXPECT_NEAR(norm.at(1), want, 1e-6f);
  // Edge weights multiply in.
  const float ew[2] = {2.0f, 0.5f};
  Tensor weighted = gcn_norm(g, ew);
  EXPECT_NEAR(weighted.at(0), 2.0f * want, 1e-6f);
  EXPECT_NEAR(weighted.at(1), 0.5f * want, 1e-6f);
}

TEST(EdgeOps, GatherScatterRoundTripIsDegreeScaling) {
  // scatter_add(gather(x)) multiplies each row by its (out→in) fan.
  CooSnapshot g = make_coo(3, {{0, 1}, {0, 2}, {1, 2}});
  Tensor x = Tensor::from_vector({1, 10, 100}, {3, 1});
  NoGradGuard ng;
  Tensor msg = gather_messages(x, g);
  EXPECT_EQ(msg.to_vector(), (std::vector<float>{1, 1, 10}));
  Tensor agg = scatter_add(msg, g);
  EXPECT_EQ(agg.to_vector(), (std::vector<float>{0, 1, 11}));
}

TEST(EdgeOps, MessageTensorsChargedToEdgeMessageCategory) {
  auto& mt = MemoryTracker::instance();
  CooSnapshot g = make_coo(3, {{0, 1}, {1, 2}});
  Tensor x = Tensor::ones({3, 4});
  const std::size_t before = mt.current_bytes(MemCategory::kEdgeMessage);
  NoGradGuard ng;
  Tensor msg = gather_messages(x, g);
  EXPECT_EQ(mt.current_bytes(MemCategory::kEdgeMessage),
            before + 2 * 4 * sizeof(float));
}

TEST(EdgeOps, RetainedMessagesSurviveUntilBackward) {
  // The baseline's defining memory behaviour: with autograd recording,
  // scale_messages' node keeps the [E, F] tensor alive after the forward
  // pass, and backward releases it.
  auto& mt = MemoryTracker::instance();
  CooSnapshot g = make_coo(3, {{0, 1}, {1, 2}});
  Tensor x = Tensor::ones({3, 8}, /*requires_grad=*/true);
  const std::size_t before = mt.current_bytes(MemCategory::kEdgeMessage);
  Tensor out;
  {
    Tensor coef = gcn_norm(g);
    Tensor msg = scale_messages(gather_messages(x, g), coef);
    out = scatter_add(msg, g);
    // `msg` handle goes out of scope here...
  }
  // ...but the gather output stays retained by scale_messages' node
  // (torch.mul saved-tensor semantics). scatter_add's backward needs only
  // indices, so the scaled copy is freed — exactly one [E, F] tensor per
  // conv per timestep survives to backward.
  EXPECT_EQ(mt.current_bytes(MemCategory::kEdgeMessage),
            before + 2 * 8 * sizeof(float));
  ops::sum(out).backward();
  out = Tensor();  // drop the graph
  EXPECT_EQ(mt.current_bytes(MemCategory::kEdgeMessage), before);
}

void check_grad(Tensor& x, const std::function<Tensor()>& fn) {
  x.zero_grad();
  fn().backward();
  Tensor grad = x.grad();
  ASSERT_TRUE(grad.defined());
  const float eps = 1e-2f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const float up = fn().item();
    x.data()[i] = orig - eps;
    const float down = fn().item();
    x.data()[i] = orig;
    const float fd = (up - down) / (2 * eps);
    EXPECT_NEAR(grad.at(i), fd, 2e-2f * std::max(1.0f, std::abs(fd))) << i;
  }
}

TEST(EdgeOps, GatherMessagesGradient) {
  Rng rng(1);
  CooSnapshot g = make_coo(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}});
  Tensor x = Tensor::randn({4, 2}, rng, 1.0f, true);
  Tensor w = Tensor::randn({5, 2}, rng);
  check_grad(x, [&] { return ops::sum(ops::mul(gather_messages(x, g), w)); });
}

TEST(EdgeOps, FullConvPipelineGradient) {
  Rng rng(2);
  CooSnapshot g = make_coo(4, {{0, 1}, {1, 2}, {2, 3}, {3, 1}});
  Tensor x = Tensor::randn({4, 2}, rng, 1.0f, true);
  auto fn = [&] {
    Tensor coef = gcn_norm(g);
    Tensor msg = scale_messages(gather_messages(x, g), coef);
    Tensor out = ops::add(scatter_add(msg, g), self_loop_contribution(x, g));
    return ops::sum(ops::mul(out, out));
  };
  check_grad(x, fn);
}

TEST(PygLayers, ConvShapeChecksAndDeterminism) {
  Rng ra(3), rb(3), rd(4);
  PygGCNConv a(3, 5, ra), b(3, 5, rb);
  CooSnapshot g = make_coo(6, {{0, 1}, {1, 2}, {4, 5}});
  Tensor x = Tensor::randn({6, 3}, rd);
  NoGradGuard ng;
  Tensor ya = a.forward(g, x);
  Tensor yb = b.forward(g, x);
  EXPECT_EQ(ya.to_vector(), yb.to_vector());  // same seed → same layer
  EXPECT_THROW(a.forward(g, Tensor::zeros({6, 4})), StgError);
}

TEST(PygLayers, TgcnStatePropagation) {
  Rng rng(5);
  PygTGCN cell(2, 3, rng);
  CooSnapshot g = make_coo(4, {{0, 1}, {1, 2}, {2, 3}});
  NoGradGuard ng;
  Tensor x = Tensor::randn({4, 2}, rng);
  Tensor h = cell.forward(g, x, Tensor());
  EXPECT_EQ(h.shape(), (Shape{4, 3}));
  Tensor h2 = cell.forward(g, x, h);
  // The recurrence must actually depend on h.
  bool differs = false;
  for (int64_t i = 0; i < h.numel(); ++i)
    differs = differs || h.at(i) != h2.at(i);
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace stgraph
