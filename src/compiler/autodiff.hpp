// IR-level automatic differentiation (Seastar derives the backward CUDA
// kernel from the forward IR; we derive a backward Program).
//
// Every traced program is linear in its feature inputs (coefficients only
// read degrees / edge weights / constants), so:
//
//   forward:  out[v] = Σ_{u→v} c(u,v)·x[u] + s(v)·x[v]
//   backward: gx[u]  = Σ_{v: u→v} c(u,v)·g[v] + s(u)·g[u]
//
// i.e. the backward pass runs the SAME aggregation over the transposed
// adjacency (the paper's out-neighbor CSR), gathering the output gradient
// instead of features. Crucially the backward program never reads the
// forward input features — backward_needs() reports this, and the
// executor's State Stack uses it to avoid storing feature tensors that the
// backward pass will not touch (the paper's State-Stack memory
// optimization).
#pragma once

#include <vector>

#include "compiler/ir.hpp"

namespace stgraph::compiler {

/// What the backward kernel of a program requires at backward time.
struct BackwardNeeds {
  bool input_features = false;  // x from the forward pass
  bool output_values = false;   // out from the forward pass
  bool graph = true;            // the snapshot (always, via the Graph Stack)
  /// Max aggregation only: the argmax indices recorded during forward.
  /// The executor's State Stack is what carries them to the backward pass.
  bool argmax = false;
};

/// Derive the backward program of `p` with respect to feature input
/// `input`. The returned program gathers the OUTPUT GRADIENT (its terms
/// reference input slot 0 = grad_out) and must be executed with the
/// producer/consumer roles swapped (KernelArgs::producer_is_col = false)
/// over the transposed adjacency views.
Program differentiate(const Program& p, int input = 0);

/// Static analysis of what `p`'s backward pass needs saved.
BackwardNeeds backward_needs(const Program& p);

// ---- elementwise-program autodiff ----------------------------------------

/// Derived backward of an elementwise program. `prog` takes the forward
/// inputs, the output gradient (one kMat slot), then one kMat slot per
/// `saved` forward value; cheap forward intermediates are recomputed from
/// the inputs, but transcendental nodes (sigmoid/tanh/exp) read the value
/// the forward pass materialized instead — the fused analogue of the
/// tape's saved-output VJPs (ops::sigmoid backward reads the saved y, it
/// never re-evaluates the exponential). The saved value is bitwise the
/// float the recompute would have produced, so this is purely a
/// performance choice.
struct EwBackward {
  EwProgram prog;
  /// Per forward input: node id in `prog` producing its gradient, or -1
  /// when the input is unused (its gradient is identically zero).
  /// Gradients of kBias inputs are pointwise [N, F] values the executor
  /// column-reduces (serial over rows, matching ops::add_bias backward).
  std::vector<int> input_grads;
  /// Forward node ids whose values the backward reads as inputs, in slot
  /// order: saved[j] is fed through input slot num_fwd_inputs + 1 + j.
  /// The executor extends the forward program's outputs with these nodes.
  std::vector<int> saved;
};

/// Derive the backward program of an elementwise region. The VJP formulas
/// and the gradient-accumulation order (reverse node order; contributions
/// folded left-associatively in arrival order) replicate exactly what
/// autograd::run_backward does when the same program is replayed op-by-op
/// through ops:: — the fused and unfused gradients are bit-identical.
EwBackward differentiate_elementwise(const EwProgram& fwd);

}  // namespace stgraph::compiler
