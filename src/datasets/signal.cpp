#include "datasets/signal.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stgraph::datasets {

std::pair<TemporalSignal, TemporalSignal> temporal_signal_split(
    const TemporalSignal& signal, double train_ratio) {
  STG_CHECK(train_ratio > 0.0 && train_ratio < 1.0,
            "train_ratio must be in (0, 1)");
  const uint32_t total = signal.num_timestamps();
  STG_CHECK(total >= 2, "need at least two timestamps to split");
  const uint32_t cut = std::clamp<uint32_t>(
      static_cast<uint32_t>(total * train_ratio), 1, total - 1);
  TemporalSignal train, test;
  train.edge_weights = signal.edge_weights;
  test.edge_weights = signal.edge_weights;
  for (uint32_t t = 0; t < total; ++t) {
    TemporalSignal& dst = t < cut ? train : test;
    dst.features.push_back(signal.features[t]);
    if (signal.has_node_targets()) dst.targets.push_back(signal.targets[t]);
    if (signal.has_link_samples()) dst.links.push_back(signal.links[t]);
  }
  return {std::move(train), std::move(test)};
}

std::size_t TemporalSignal::device_bytes() const {
  std::size_t total = edge_weights.size() * sizeof(float);
  for (const Tensor& t : features)
    total += static_cast<std::size_t>(t.numel()) * sizeof(float);
  for (const Tensor& t : targets)
    total += static_cast<std::size_t>(t.numel()) * sizeof(float);
  for (const LinkSamples& l : links) {
    total += (l.src.size() + l.dst.size()) * sizeof(uint32_t);
    if (l.labels.defined())
      total += static_cast<std::size_t>(l.labels.numel()) * sizeof(float);
  }
  return total;
}

}  // namespace stgraph::datasets
