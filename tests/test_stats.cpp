// Graph-statistics tests, including the dataset-shape assertions the
// paper's evaluation narrative depends on (densities and heavy tails).
#include <gtest/gtest.h>

#include "datasets/synthetic.hpp"
#include "graph/stats.hpp"

namespace stgraph {
namespace {

TEST(Stats, DegreesOfKnownGraph) {
  const EdgeList edges{{0, 1}, {0, 2}, {1, 2}, {2, 0}};
  EXPECT_EQ(out_degrees(4, edges), (std::vector<uint32_t>{2, 1, 1, 0}));
  EXPECT_EQ(in_degrees(4, edges), (std::vector<uint32_t>{1, 1, 2, 0}));
  EXPECT_THROW(out_degrees(2, edges), StgError);
}

TEST(Stats, DegreeStatsRegularGraph) {
  // Every vertex has degree 3 → zero spread, zero Gini.
  std::vector<uint32_t> deg(10, 3);
  DegreeStats s = degree_stats(deg);
  EXPECT_EQ(s.min, 3u);
  EXPECT_EQ(s.max, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_NEAR(s.gini, 0.0, 1e-9);
}

TEST(Stats, GiniOfMaximallySkewedDistribution) {
  // One vertex holds everything: Gini → (n-1)/n.
  std::vector<uint32_t> deg(10, 0);
  deg[0] = 100;
  EXPECT_NEAR(degree_stats(deg).gini, 0.9, 1e-9);
}

TEST(Stats, DensityAndReciprocity) {
  EXPECT_DOUBLE_EQ(edge_density(10, 25), 0.25);
  const EdgeList mutual{{0, 1}, {1, 0}, {1, 2}};
  EXPECT_NEAR(reciprocity(mutual), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(reciprocity({}), 0.0);
}

TEST(Stats, SummaryMentionsKeyNumbers) {
  const std::string s = summarize_graph(3, {{0, 1}, {1, 2}});
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("m=2"), std::string::npos);
}

// The structural claims behind the figures: WVM and the dynamic streams
// are heavy-tailed; complete graphs are uniform; densities are ordered
// the way the paper's memory-gap narrative requires.
TEST(Stats, SyntheticDatasetsMatchPaperShapes) {
  datasets::StaticLoadOptions so;
  so.scale = 0.5;
  so.num_timestamps = 4;
  so.feature_size = 2;

  auto wvm = datasets::load_wikimath(so);
  auto wo = datasets::load_windmill(so);
  auto mb = datasets::load_montevideo_bus(so);
  auto hc = datasets::load_chickenpox(so);

  const DegreeStats wvm_deg =
      degree_stats(out_degrees(wvm.num_nodes, wvm.edges));
  const DegreeStats wo_deg = degree_stats(out_degrees(wo.num_nodes, wo.edges));
  // Hyperlink graph is heavy-tailed; complete graph is perfectly uniform.
  EXPECT_GT(wvm_deg.gini, 0.3);
  EXPECT_NEAR(wo_deg.gini, 0.0, 1e-9);
  // Density ordering: WO (complete) > HC > WVM > MB (paper's quoted
  // densities: 1.0 vs 0.255 vs 0.024 vs 0.0015).
  const double d_wo = edge_density(wo.num_nodes, wo.edges.size());
  const double d_hc = edge_density(hc.num_nodes, hc.edges.size());
  const double d_wvm = edge_density(wvm.num_nodes, wvm.edges.size());
  const double d_mb = edge_density(mb.num_nodes, mb.edges.size());
  EXPECT_GT(d_wo, d_hc);
  EXPECT_GT(d_hc, d_wvm);
  EXPECT_GT(d_wvm, d_mb);
}

TEST(Stats, DynamicStreamsAreHeavyTailed) {
  datasets::DynamicLoadOptions dyo;
  dyo.scale = 0.01;
  for (const auto& ds : datasets::load_all_dynamic(dyo)) {
    const DegreeStats s =
        degree_stats(out_degrees(ds.num_nodes, ds.stream));
    EXPECT_GT(s.gini, 0.4) << ds.name << " should be heavy-tailed";
    EXPECT_GT(s.max, 10 * std::max(1.0, s.mean)) << ds.name;
  }
}

}  // namespace
}  // namespace stgraph
