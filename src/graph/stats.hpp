// Graph statistics used to validate the synthetic dataset generators
// against the structural claims the paper's evaluation leans on (edge
// density driving the memory gap, heavy-tailed degrees driving the
// degree-sorted scheduling win) and to power dataset summaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dtdg.hpp"

namespace stgraph {

struct DegreeStats {
  uint32_t min = 0;
  uint32_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// Gini coefficient of the degree distribution in [0, 1): ~0 for
  /// regular graphs, large for heavy-tailed (power-law-ish) ones.
  double gini = 0.0;
};

/// Out-degree / in-degree arrays of an edge list.
std::vector<uint32_t> out_degrees(uint32_t num_nodes, const EdgeList& edges);
std::vector<uint32_t> in_degrees(uint32_t num_nodes, const EdgeList& edges);

DegreeStats degree_stats(const std::vector<uint32_t>& degrees);

/// Edge density m / n² (the paper quotes e.g. HC 0.255, MB 0.0015).
double edge_density(uint32_t num_nodes, std::size_t num_edges);

/// Fraction of edges whose reverse edge is also present.
double reciprocity(const EdgeList& edges);

/// Human-readable one-line summary ("n=.. m=.. density=.. gini=..").
std::string summarize_graph(uint32_t num_nodes, const EdgeList& edges);

}  // namespace stgraph
