// Shared harness code for the figure/table benches: experiment runners for
// each system (STGraph static, STGraph-Naive, STGraph-GPMA, PyG-T
// baseline), wall-clock + peak-device-memory measurement, CLI parsing and
// CSV emission.
//
// Scaling: the paper ran 100 epochs per point on an A100; these binaries
// default to a scale factor and epoch count that finish each figure in
// minutes on a small CPU host. Pass --scale/--epochs/--timestamps to
// approach paper-sized runs; shapes (who wins, where crossovers fall) are
// stable across scales because they are driven by V/E/density ratios.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "util/csv.hpp"

namespace stgraph::bench {

struct BenchOptions {
  double scale_static = 0.25;
  double scale_dynamic = 0.02;
  uint32_t timestamps = 24;   // static-temporal signal length
  uint32_t warmup_epochs = 1; // ignored in reported numbers (GPU-warmup analogue)
  uint32_t epochs = 2;        // measured epochs
  uint32_t sequence_length = 8;
  std::string csv_dir;        // when set, each bench also writes <name>.csv
  bool full = false;          // paper-sized sweeps
};

/// Parse --scale-static= --scale-dynamic= --timestamps= --epochs=
/// --warmup= --seq-len= --csv-dir= --full from argv.
BenchOptions parse_options(int argc, char** argv);

/// One measured configuration's result.
struct RunResult {
  double per_epoch_seconds = 0.0;
  double peak_device_mib = 0.0;
  double final_loss = 0.0;
  double graph_update_seconds = 0.0;  // per epoch
  double gnn_seconds = 0.0;           // per epoch
  // GPMAGraph-only split of graph_update_seconds (zero for other systems):
  // Algorithm-2 delta replay vs snapshot-view maintenance, and how the
  // view refreshes divided into incremental patches vs full rebuilds
  // (counters summed over the measured epochs).
  double position_seconds = 0.0;      // per epoch
  double view_seconds = 0.0;          // per epoch
  uint64_t incremental_view_updates = 0;
  uint64_t full_view_rebuilds = 0;
  // Pipeline phase split (zero for non-GPMA systems or pipeline off):
  // model compute per direction, time Get-Graph spent blocked on an
  // in-flight background prepare, and the prefetch hit/miss counters
  // (counters summed over the measured epochs).
  double forward_seconds = 0.0;       // per epoch
  double backward_seconds = 0.0;      // per epoch
  double stall_seconds = 0.0;         // per epoch
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;
  // Fusing-compiler evidence (PR 9): unfused tape launches (elementwise +
  // activation) and the intermediate bytes they materialized, vs fused
  // region launches and their output bytes — per epoch, averaged over the
  // measured epochs. With fusion on, tape_* shrinks and fused_* absorbs
  // the collapsed regions.
  uint64_t tape_op_count = 0;
  uint64_t tape_bytes = 0;
  uint64_t fused_op_count = 0;
  uint64_t fused_bytes = 0;
};

enum class System { kStgraphStatic, kStgraphNaive, kStgraphGpma, kPygt };
const char* system_name(System s);

/// Train a TGCN regressor on a static-temporal dataset and measure.
RunResult run_static(const datasets::StaticTemporalDataset& ds,
                     const datasets::TemporalSignal& signal, System system,
                     const BenchOptions& opts, int64_t hidden = 16);

/// Train a TGCN link-prediction encoder on a DTDG and measure.
/// `events` must come from the same dataset for every system compared.
RunResult run_dtdg(const DtdgEvents& events,
                   const datasets::TemporalSignal& signal, System system,
                   const BenchOptions& opts, int64_t hidden = 16);

/// Print a table and optionally persist CSV under opts.csv_dir.
void emit(const std::string& bench_name, const CsvWriter& csv,
          const BenchOptions& opts);

/// Feature sizes swept by the time figures.
std::vector<int64_t> feature_sweep(const BenchOptions& opts);

}  // namespace stgraph::bench
