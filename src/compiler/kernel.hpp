// Kernel lowering and execution — the stand-in for Seastar's CUDA code
// generation. A Program is compiled into a KernelSpec (flattened coef
// products + dispatch flags); run_kernel() executes it with:
//
//   * vertex parallelism in the degree-sorted node_ids order (heaviest
//     vertices first, round-robin lane striding — the CPU analogue of the
//     paper's "pre-sorting the CSR lets high-degree vertices overlap with
//     many low-degree ones"),
//   * feature-adaptive work shaping: small feature sizes run one vertex
//     per work item; large feature sizes split rows into feature tiles so
//     lanes stay busy on small graphs (the paper's feature-adaptive thread
//     group allocation),
//   * gap awareness: gapped PMA views are consumed in place by skipping
//     kSpace slots, so GPMAGraph's backward pass needs no compaction.
//
// One launch performs gather + coefficient product + aggregate + self loop
// + output scaling — the operator fusion Seastar's codegen performs (the
// unfused path exists only as an ablation baseline in bench/).
#pragma once

#include "compiler/ir.hpp"
#include "graph/csr.hpp"

namespace stgraph::compiler {

/// A compiled, executable kernel (forward or backward direction chosen at
/// run time via KernelArgs::producer_is_col).
struct KernelSpec {
  Program program;              // optimized (mean-lowered, folded)
  bool uses_edge_weight = false;
  bool uses_degrees = false;
  int num_inputs = 1;
};

KernelSpec compile(Program p);

/// Runtime arguments for one launch.
struct KernelArgs {
  CsrView view;                    // adjacency rows iterated by the kernel
  const uint32_t* in_degrees = nullptr;  // semantic in-degree array
  /// Gather sources, indexed by MessageTerm::input. inputs[i] is a row-major
  /// [num_nodes, num_feats] array read at the producer vertex.
  const float* const* inputs = nullptr;
  /// Row-side features for the self term (usually inputs[self_input]).
  const float* self_features = nullptr;
  const float* edge_weights = nullptr;   // indexed by eid; may be null
  float* out = nullptr;                  // [num_nodes, num_feats], overwritten
  /// Max aggregation forward: records the winning producer id per
  /// (vertex, feature) cell (kSpace when no candidate existed).
  uint32_t* argmax_out = nullptr;
  /// Max-backward: the argmax recorded by the matching forward launch.
  const uint32_t* argmax_in = nullptr;
  uint32_t num_feats = 0;
  /// true  → forward  (rows are consumers; producer is the column)
  /// false → backward (rows are producers; consumer is the column)
  bool producer_is_col = true;
};

void run_kernel(const KernelSpec& spec, const KernelArgs& args);

/// Feature-size threshold at which the scheduler switches from
/// vertex-per-item to (vertex × feature-tile) work shaping.
inline constexpr uint32_t kFeatureTileThreshold = 64;
inline constexpr uint32_t kFeatureTile = 32;

}  // namespace stgraph::compiler
