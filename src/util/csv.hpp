// Tiny CSV emitter: every figure bench prints its series both as an
// aligned human-readable table and (optionally) writes a CSV file so the
// paper's plots can be regenerated.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace stgraph {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);
  /// Render as an aligned text table (for stdout).
  std::string to_table() const;
  /// Render as CSV text.
  std::string to_csv() const;
  /// Write CSV to a file; returns false on I/O failure.
  bool save(const std::string& path) const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stgraph
