#include "net/event_loop.hpp"

#include <pthread.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "runtime/analyze.hpp"
#include "util/check.hpp"

namespace stgraph::net {

namespace {

uint64_t this_thread_id() {
  // gettid(2) without the glibc-version dependency: the pthread handle is
  // unique per live thread, which is all the on-loop-thread assert needs.
  return static_cast<uint64_t>(pthread_self());
}

}  // namespace

EventLoop::EventLoop() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  STG_CHECK(epfd_ >= 0, "net: epoll_create1 failed: ", std::strerror(errno));
  wakefd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  STG_CHECK(wakefd_ >= 0, "net: eventfd failed: ", std::strerror(errno));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakefd_;
  STG_CHECK(::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev) == 0,
            "net: epoll_ctl(wakefd) failed: ", std::strerror(errno));
}

EventLoop::~EventLoop() {
  if (wakefd_ >= 0) ::close(wakefd_);
  if (epfd_ >= 0) ::close(epfd_);
}

bool EventLoop::on_loop_thread() const {
  return loop_tid_.load(std::memory_order_acquire) == this_thread_id();
}

void EventLoop::add(int fd, uint32_t events, IoCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  STG_CHECK(::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0,
            "net: epoll_ctl(ADD, fd=", fd, ") failed: ",
            std::strerror(errno));
  handlers_[fd] = std::make_shared<IoCallback>(std::move(cb));
}

void EventLoop::modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  STG_CHECK(::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0,
            "net: epoll_ctl(MOD, fd=", fd, ") failed: ",
            std::strerror(errno));
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);  // best-effort
  handlers_.erase(fd);
}

void EventLoop::post(std::function<void()> fn) {
  {
    MutexLock lk(post_mu_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::wake() {
  const uint64_t one = 1;
  // A full eventfd counter still wakes the loop; short/failed writes are
  // benign here.
  [[maybe_unused]] ssize_t n = ::write(wakefd_, &one, sizeof(one));
}

void EventLoop::drain_posted() {
  // Swap out under the lock, run outside it: a task may post() again.
  std::deque<std::function<void()>> tasks;
  {
    MutexLock lk(post_mu_);
    tasks.swap(posted_);
  }
  for (auto& fn : tasks) fn();
}

void EventLoop::run() {
  loop_tid_.store(this_thread_id(), std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  std::vector<epoll_event> events(64);
  while (!stop_.load(std::memory_order_acquire)) {
    drain_posted();
    if (stop_.load(std::memory_order_acquire)) break;
    if (analyze::armed()) analyze::on_blocking_call("epoll_wait");
    const int n = ::epoll_wait(epfd_, events.data(),
                               static_cast<int>(events.size()), /*ms=*/100);
    if (n < 0) {
      STG_CHECK(errno == EINTR, "net: epoll_wait failed: ",
                std::strerror(errno));
      continue;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakefd_) {
        uint64_t drained;
        while (::read(wakefd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // Look up at dispatch time: an earlier callback in this batch may
      // have removed this fd (e.g. closed a sibling connection).
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      std::shared_ptr<IoCallback> cb = it->second;
      (*cb)(events[i].events);
    }
  }
  drain_posted();  // run anything posted up to the stop
  loop_tid_.store(0, std::memory_order_release);
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

}  // namespace stgraph::net
