#include "compiler/passes.hpp"

#include <algorithm>

namespace stgraph::compiler {
namespace {

// Fold kConst factors of a coef product into a single leading constant;
// non-const factors keep their order (they commute, but stable order keeps
// pass output deterministic and comparable).
std::vector<Coef> fold_product(const std::vector<Coef>& coefs) {
  float c = 1.0f;
  std::vector<Coef> rest;
  for (const Coef& k : coefs) {
    if (k.kind == CoefKind::kConst) {
      c *= k.value;
    } else {
      rest.push_back(k);
    }
  }
  std::vector<Coef> out;
  if (c != 1.0f || rest.empty()) out.push_back(Coef{CoefKind::kConst, c});
  out.insert(out.end(), rest.begin(), rest.end());
  return out;
}

float leading_const(const std::vector<Coef>& coefs) {
  return (!coefs.empty() && coefs[0].kind == CoefKind::kConst) ? coefs[0].value
                                                               : 1.0f;
}

// Non-const tail of a folded product (for structural comparison).
std::vector<Coef> non_const(const std::vector<Coef>& coefs) {
  std::vector<Coef> out;
  for (const Coef& k : coefs)
    if (k.kind != CoefKind::kConst) out.push_back(k);
  return out;
}

}  // namespace

Program fold_constants(Program p) {
  for (MessageTerm& t : p.terms) t.coefs = fold_product(t.coefs);
  if (p.include_self) p.self_coefs = fold_product(p.self_coefs);
  return p;
}

Program lower_mean(Program p) {
  if (p.agg != AggKind::kMean) return p;
  p.agg = AggKind::kSum;
  for (MessageTerm& t : p.terms)
    t.coefs.push_back(Coef{CoefKind::kInvDegree, 1.0f});
  // The self term is not part of the neighbor mean; it is unchanged.
  return p;
}

Program dedup_terms(Program p) {
  // Additive-term merging is only sound for sum aggregation; max treats
  // terms as independent candidates.
  if (p.agg == AggKind::kMax) return p;
  std::vector<MessageTerm> merged;
  std::vector<float> consts;
  for (const MessageTerm& t : p.terms) {
    const std::vector<Coef> tail = non_const(t.coefs);
    const float c = leading_const(fold_product(t.coefs));
    bool found = false;
    for (size_t i = 0; i < merged.size(); ++i) {
      if (merged[i].input == t.input && non_const(merged[i].coefs) == tail) {
        consts[i] += c;
        found = true;
        break;
      }
    }
    if (!found) {
      merged.push_back(t);
      consts.push_back(c);
    }
  }
  for (size_t i = 0; i < merged.size(); ++i) {
    std::vector<Coef> coefs;
    coefs.push_back(Coef{CoefKind::kConst, consts[i]});
    const std::vector<Coef> tail = non_const(merged[i].coefs);
    coefs.insert(coefs.end(), tail.begin(), tail.end());
    merged[i].coefs = fold_product(coefs);
  }
  p.terms = std::move(merged);
  return p;
}

Program eliminate_dead_terms(Program p) {
  // A zero-coefficient candidate still participates in a max (it
  // contributes 0), so the pass only applies to sum aggregation.
  if (p.agg == AggKind::kMax) return p;
  auto dead = [](const MessageTerm& t) {
    return leading_const(t.coefs) == 0.0f;
  };
  p.terms.erase(std::remove_if(p.terms.begin(), p.terms.end(), dead),
                p.terms.end());
  if (p.include_self && leading_const(p.self_coefs) == 0.0f) {
    p.include_self = false;
    p.self_coefs.clear();
  }
  return p;
}

Program optimize(Program p) {
  p = lower_mean(std::move(p));
  p = fold_constants(std::move(p));
  p = dedup_terms(std::move(p));
  p = eliminate_dead_terms(std::move(p));
  return p;
}

// ---- elementwise-program passes ------------------------------------------

EwProgram ew_eliminate_common(EwProgram p) {
  std::vector<int> remap(p.nodes.size());
  std::vector<EwNode> kept;
  std::vector<int> kept_of;  // original index of each kept node
  for (size_t i = 0; i < p.nodes.size(); ++i) {
    EwNode n = p.nodes[i];
    if (n.a >= 0) n.a = remap[static_cast<size_t>(n.a)];
    if (n.b >= 0) n.b = remap[static_cast<size_t>(n.b)];
    int found = -1;
    // Inputs are never merged: two in() calls are distinct runtime slots.
    if (n.op != EwOp::kInput) {
      for (size_t j = 0; j < kept.size(); ++j) {
        if (kept[j] == n) {
          found = static_cast<int>(j);
          break;
        }
      }
    }
    if (found >= 0) {
      remap[i] = found;
    } else {
      remap[i] = static_cast<int>(kept.size());
      kept.push_back(n);
      kept_of.push_back(static_cast<int>(i));
    }
  }
  for (int& o : p.outputs) o = remap[static_cast<size_t>(o)];
  p.nodes = std::move(kept);
  return p;
}

EwProgram ew_eliminate_dead(EwProgram p) {
  std::vector<bool> live(p.nodes.size(), false);
  for (int o : p.outputs) live[static_cast<size_t>(o)] = true;
  for (size_t i = p.nodes.size(); i-- > 0;) {
    if (!live[i]) continue;
    const EwNode& n = p.nodes[i];
    if (n.a >= 0) live[static_cast<size_t>(n.a)] = true;
    if (n.b >= 0) live[static_cast<size_t>(n.b)] = true;
  }
  // Keep every input node so the program's runtime arity is stable even
  // when an input ends up unused (its gradient is then identically zero).
  for (size_t i = 0; i < p.nodes.size(); ++i)
    if (p.nodes[i].op == EwOp::kInput) live[i] = true;
  std::vector<int> remap(p.nodes.size(), -1);
  std::vector<EwNode> kept;
  for (size_t i = 0; i < p.nodes.size(); ++i) {
    if (!live[i]) continue;
    EwNode n = p.nodes[i];
    if (n.a >= 0) n.a = remap[static_cast<size_t>(n.a)];
    if (n.b >= 0) n.b = remap[static_cast<size_t>(n.b)];
    remap[i] = static_cast<int>(kept.size());
    kept.push_back(n);
  }
  for (int& o : p.outputs) o = remap[static_cast<size_t>(o)];
  p.nodes = std::move(kept);
  return p;
}

EwProgram optimize_elementwise(EwProgram p) {
  p = ew_eliminate_common(std::move(p));
  p = ew_eliminate_dead(std::move(p));
  return p;
}

}  // namespace stgraph::compiler
