// Module base class — parameter registration and train/eval mode, the
// same contract PyG-T layers rely on from torch.nn.Module.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace stgraph::nn {

/// Named parameter handle.
struct Parameter {
  std::string name;
  Tensor tensor;
};

class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters, including those of registered submodules,
  /// with dotted names ("conv_z.linear.weight").
  std::vector<Parameter> parameters() const;

  void train() { set_training(true); }
  void eval() { set_training(false); }
  bool is_training() const { return training_; }

  void zero_grad();
  /// Total parameter count (for model summaries).
  int64_t parameter_count() const;

 protected:
  /// Register a leaf parameter (the tensor must be a requires-grad leaf).
  Tensor register_parameter(const std::string& name, Tensor t);
  /// Register a child module for recursive parameter collection.
  void register_module(const std::string& name, Module* child);

  virtual void set_training(bool training);

 private:
  std::vector<Parameter> own_params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace stgraph::nn
