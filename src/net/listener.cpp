#include "net/listener.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace stgraph::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  STG_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
            "net: fcntl(O_NONBLOCK) failed: ", std::strerror(errno));
}

}  // namespace

Listener::Listener(const std::string& host, uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  STG_CHECK(fd_ >= 0, "net: socket() failed: ", std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  STG_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
            "net: '", host, "' is not a valid IPv4 address");
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    STG_CHECK(false, "net: bind(", host, ":", port, ") failed: ",
              std::strerror(err));
  }
  STG_CHECK(::listen(fd_, SOMAXCONN) == 0, "net: listen failed: ",
            std::strerror(errno));
  set_nonblocking(fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  STG_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
            "net: getsockname failed: ", std::strerror(errno));
  port_ = ntohs(bound.sin_port);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

int Listener::accept_one() {
  while (true) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return -1;  // EAGAIN or transient accept error — nothing pending
    }
    bool dropped = false;
    STG_FAILPOINT("net.accept", {
      ::close(cfd);
      dropped = true;
    });
    if (dropped) continue;  // injected accept failure — try the next one
    set_nonblocking(cfd);
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return cfd;
  }
}

}  // namespace stgraph::net
