// Unit tests for the tensor library: construction, metadata, forward
// semantics of every op (gradients are covered in test_autograd).
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

TEST(Tensor, ZerosOnesFull) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.rows(), 2);
  EXPECT_EQ(z.cols(), 3);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(z.at(i), 0.0f);
  Tensor o = Tensor::ones({4});
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(o.at(i), 1.0f);
  Tensor f = Tensor::full({2, 2}, 3.5f);
  EXPECT_EQ(f.at(1, 1), 3.5f);
}

TEST(Tensor, FromVectorRoundTrip) {
  std::vector<float> v{1, 2, 3, 4, 5, 6};
  Tensor t = Tensor::from_vector(v, {2, 3});
  EXPECT_EQ(t.to_vector(), v);
  EXPECT_EQ(t.at(1, 2), 6.0f);
  EXPECT_THROW(Tensor::from_vector(v, {2, 2}), StgError);
}

TEST(Tensor, RankLimits) {
  EXPECT_NO_THROW(Tensor::zeros({}));
  EXPECT_NO_THROW(Tensor::zeros({5}));
  EXPECT_NO_THROW(Tensor::zeros({5, 5}));
  EXPECT_THROW(Tensor::zeros({2, 2, 2}), StgError);
}

TEST(Tensor, ItemRequiresSingleElement) {
  EXPECT_EQ(Tensor::full({1}, 7.0f).item(), 7.0f);
  EXPECT_THROW(Tensor::zeros({2}).item(), StgError);
}

TEST(Tensor, RandnMoments) {
  Rng rng(5);
  Tensor t = Tensor::randn({100, 100}, rng, 2.0f);
  double sum = 0, sq = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    sum += t.at(i);
    sq += t.at(i) * t.at(i);
  }
  EXPECT_NEAR(sum / t.numel(), 0.0, 0.1);
  EXPECT_NEAR(sq / t.numel(), 4.0, 0.2);
}

TEST(Tensor, DetachSharesNothing) {
  Tensor a = Tensor::ones({2, 2});
  Tensor d = a.detach();
  d.data()[0] = 9.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(Tensor, UndefinedHandleRejectsAccess) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.numel(), StgError);
  EXPECT_THROW(t.data(), StgError);
}

TEST(Ops, AddSubMulElementwise) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::from_vector({10, 20, 30, 40}, {2, 2});
  EXPECT_EQ(ops::add(a, b).to_vector(), (std::vector<float>{11, 22, 33, 44}));
  EXPECT_EQ(ops::sub(b, a).to_vector(), (std::vector<float>{9, 18, 27, 36}));
  EXPECT_EQ(ops::mul(a, b).to_vector(), (std::vector<float>{10, 40, 90, 160}));
  EXPECT_THROW(ops::add(a, Tensor::zeros({3})), StgError);
}

TEST(Ops, ScalarOpsAndOneMinus) {
  Tensor a = Tensor::from_vector({1, 2}, {2});
  EXPECT_EQ(ops::add_scalar(a, 1.5f).to_vector(), (std::vector<float>{2.5f, 3.5f}));
  EXPECT_EQ(ops::mul_scalar(a, -2.0f).to_vector(), (std::vector<float>{-2, -4}));
  EXPECT_EQ(ops::one_minus(a).to_vector(), (std::vector<float>{0, -1}));
}

TEST(Ops, AddBiasBroadcastsRows) {
  Tensor x = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::from_vector({10, 20, 30}, {3});
  EXPECT_EQ(ops::add_bias(x, b).to_vector(),
            (std::vector<float>{11, 22, 33, 14, 25, 36}));
  EXPECT_THROW(ops::add_bias(x, Tensor::zeros({2})), StgError);
}

TEST(Ops, ActivationsPointwise) {
  Tensor x = Tensor::from_vector({-2, 0, 2}, {3});
  Tensor s = ops::sigmoid(x);
  EXPECT_NEAR(s.at(0), 1.0f / (1.0f + std::exp(2.0f)), 1e-6);
  EXPECT_NEAR(s.at(1), 0.5f, 1e-6);
  Tensor t = ops::tanh_op(x);
  EXPECT_NEAR(t.at(2), std::tanh(2.0f), 1e-6);
  Tensor r = ops::relu(x);
  EXPECT_EQ(r.to_vector(), (std::vector<float>{0, 0, 2}));
  Tensor l = ops::leaky_relu(x, 0.1f);
  EXPECT_NEAR(l.at(0), -0.2f, 1e-6);
}

TEST(Ops, SigmoidStableAtExtremes) {
  Tensor x = Tensor::from_vector({-100.0f, 100.0f}, {2});
  Tensor s = ops::sigmoid(x);
  EXPECT_NEAR(s.at(0), 0.0f, 1e-6);
  EXPECT_NEAR(s.at(1), 1.0f, 1e-6);
  EXPECT_FALSE(std::isnan(s.at(0)));
}

TEST(Ops, MatmulPlain) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::from_vector({7, 8, 9, 10, 11, 12}, {3, 2});
  Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.to_vector(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(Ops, MatmulTransposeVariants) {
  Rng rng(3);
  Tensor a = Tensor::randn({4, 3}, rng);
  Tensor b = Tensor::randn({4, 5}, rng);
  // aᵀ @ b : [3,5]
  Tensor c = ops::matmul(a, b, true, false);
  for (int64_t i = 0; i < 3; ++i)
    for (int64_t j = 0; j < 5; ++j) {
      float want = 0;
      for (int64_t k = 0; k < 4; ++k) want += a.at(k, i) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), want, 1e-4);
    }
  // a @ bᵀ with b2 [5,3]
  Tensor b2 = Tensor::randn({5, 3}, rng);
  Tensor d = ops::matmul(a, b2, false, true);
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 5; ++j) {
      float want = 0;
      for (int64_t k = 0; k < 3; ++k) want += a.at(i, k) * b2.at(j, k);
      EXPECT_NEAR(d.at(i, j), want, 1e-4);
    }
}

TEST(Ops, MatmulShapeMismatchThrows) {
  EXPECT_THROW(ops::matmul(Tensor::zeros({2, 3}), Tensor::zeros({2, 3})),
               StgError);
}

TEST(Ops, CatAndSliceCols) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::from_vector({5, 6}, {2, 1});
  Tensor c = ops::cat_cols(a, b);
  EXPECT_EQ(c.to_vector(), (std::vector<float>{1, 2, 5, 3, 4, 6}));
  EXPECT_EQ(ops::slice_cols(c, 2, 3).to_vector(), (std::vector<float>{5, 6}));
  EXPECT_EQ(ops::slice_cols(c, 0, 2).to_vector(), a.to_vector());
}

TEST(Ops, SliceRowsAndGather) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {3, 2});
  EXPECT_EQ(ops::slice_rows(a, 1, 3).to_vector(),
            (std::vector<float>{3, 4, 5, 6}));
  Tensor g = ops::gather_rows(a, {2, 0, 2});
  EXPECT_EQ(g.to_vector(), (std::vector<float>{5, 6, 1, 2, 5, 6}));
}

TEST(Ops, Reductions) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, {2, 2});
  EXPECT_EQ(ops::sum(a).item(), 10.0f);
  EXPECT_EQ(ops::mean(a).item(), 2.5f);
  EXPECT_EQ(ops::row_sum(a).to_vector(), (std::vector<float>{3, 7}));
}

TEST(Ops, MseLossValue) {
  Tensor p = Tensor::from_vector({1, 2, 3}, {3});
  Tensor t = Tensor::from_vector({1, 4, 6}, {3});
  EXPECT_NEAR(ops::mse_loss(p, t).item(), (0 + 4 + 9) / 3.0f, 1e-6);
}

TEST(Ops, BceWithLogitsMatchesReference) {
  Tensor z = Tensor::from_vector({0.0f, 2.0f, -3.0f}, {3});
  Tensor y = Tensor::from_vector({1.0f, 0.0f, 1.0f}, {3});
  double want = 0;
  for (int i = 0; i < 3; ++i) {
    const double zi = z.at(i), yi = y.at(i);
    const double p = 1.0 / (1.0 + std::exp(-zi));
    want += -(yi * std::log(p) + (1 - yi) * std::log(1 - p));
  }
  EXPECT_NEAR(ops::bce_with_logits_loss(z, y).item(), want / 3.0, 1e-5);
}

TEST(Ops, BceStableAtExtremeLogits) {
  Tensor z = Tensor::from_vector({80.0f, -80.0f}, {2});
  Tensor y = Tensor::from_vector({1.0f, 0.0f}, {2});
  const float loss = ops::bce_with_logits_loss(z, y).item();
  EXPECT_FALSE(std::isnan(loss));
  EXPECT_NEAR(loss, 0.0f, 1e-5);
}

TEST(Ops, DropoutTrainVsEval) {
  Rng rng(11);
  Tensor x = Tensor::ones({100, 10});
  Tensor eval = ops::dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(eval.to_vector(), x.to_vector());
  Tensor train = ops::dropout(x, 0.5f, rng, /*training=*/true);
  int zeros = 0;
  double sum = 0;
  for (int64_t i = 0; i < train.numel(); ++i) {
    if (train.at(i) == 0.0f) ++zeros;
    sum += train.at(i);
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.08);
  EXPECT_NEAR(sum / train.numel(), 1.0, 0.15);  // inverted dropout keeps mean
}

TEST(Ops, ReshapePreservesData) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor r = ops::reshape(a, {3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_EQ(r.to_vector(), a.to_vector());
  EXPECT_THROW(ops::reshape(a, {4, 2}), StgError);
}

}  // namespace
}  // namespace stgraph
