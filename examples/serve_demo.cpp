// Streaming inference serving, end to end (docs/serving.md):
//
//   1. train a TGCN link-prediction encoder on a windowed DTDG and write
//      an STGT checkpoint (the same fault-tolerant container resume()
//      uses),
//   2. stand up a serve::Server over a FRESH GpmaGraph holding only the
//      base snapshot, load the frozen model from the checkpoint,
//   3. replay the dataset's edge deltas through ingest() while client
//      code issues predict() calls between steps — full-graph outputs and
//      per-node subsets,
//   4. print the server's latency/throughput stats report.
//
// Build & run:  ./build/examples/serve_demo
#include <cstdio>
#include <iostream>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "nn/models.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

using namespace stgraph;

int main() {
  const char* ckpt = "/tmp/stgraph_serve_demo.stgt";

  // ---- offline: train and checkpoint ------------------------------------
  datasets::DynamicLoadOptions opts;
  opts.scale = 0.01;
  opts.feature_size = 8;
  opts.link_samples_per_step = 64;
  datasets::DynamicDataset ds = datasets::load_sx_mathoverflow(opts);
  const DtdgEvents events = datasets::make_dtdg(ds, /*percent_change=*/5.0);
  const datasets::TemporalSignal signal =
      datasets::make_dynamic_signal(events, opts);
  std::cout << ds.name << ": " << ds.num_nodes << " nodes, "
            << events.num_timestamps() << " snapshots\n";

  core::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.sequence_length = 8;
  cfg.lr = 2e-2f;
  cfg.task = core::Task::kLinkPrediction;
  {
    GpmaGraph train_graph(events);
    Rng rng(7);
    nn::TGCNEncoder model(opts.feature_size, 16, rng);
    core::STGraphTrainer trainer(train_graph, model, signal, cfg);
    for (const auto& e : trainer.train())
      std::cout << "train: bce " << e.loss << " in " << e.seconds << " s\n";
    trainer.save_checkpoint(ckpt);
    std::cout << "checkpoint written to " << ckpt << "\n\n";
  }

  // ---- online: serve from the checkpoint ---------------------------------
  // The serving graph starts from the base snapshot only; the timeline is
  // extended live by ingest(), exactly how a deployed replica would follow
  // a stream it has never seen materialized.
  GpmaGraph graph(DtdgEvents{ds.num_nodes, events.base_edges, {}});
  Rng rng(7);
  nn::TGCNEncoder model(opts.feature_size, 16, rng);
  serve::ServeConfig scfg;
  scfg.max_batch = 8;
  serve::Server server(graph, model, scfg);
  server.load(ckpt);
  std::cout << "serving frozen model: "
            << server.snapshot()->parameter_count() << " parameters from epoch "
            << server.snapshot()->source_epoch() << "\n";

  server.start(signal.features[0]);
  for (uint32_t t = 1; t < events.num_timestamps(); ++t) {
    // A couple of client predictions against the current snapshot...
    serve::PredictResult full = server.predict();
    serve::PredictResult pair = server.predict({0, ds.num_nodes / 2});
    if (t % 8 == 1)
      std::cout << "t=" << full.timestamp << " v" << full.version
                << ": embeddings " << full.outputs.rows() << "x"
                << full.outputs.cols() << ", subset " << pair.outputs.rows()
                << " rows, " << full.total_micros << " us\n";
    // ...then the next delta batch arrives and the timeline advances.
    server.ingest(events.deltas[t - 1], signal.features[t]);
  }
  const serve::ReadView view = server.read_view();
  std::cout << "\nread view: t=" << view.time << " v" << view.version << " ("
            << view.num_edges << " edges)\n";
  server.stop();

  std::cout << "stats: " << server.stats().to_json();
  std::remove(ckpt);
  return 0;
}
