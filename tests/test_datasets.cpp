// Dataset generator tests: Table-II structural parameters, signal
// learnability shape, link-sample validity, scaling behaviour.
#include <gtest/gtest.h>

#include <set>

#include "datasets/synthetic.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using namespace datasets;

StaticLoadOptions small_static() {
  StaticLoadOptions o;
  o.scale = 1.0;
  o.num_timestamps = 20;
  o.feature_size = 4;
  return o;
}

TEST(StaticDatasets, TableTwoShapes) {
  const auto o = small_static();
  auto wvm = load_wikimath(o);
  EXPECT_EQ(wvm.num_nodes, 1068u);
  EXPECT_NEAR(static_cast<double>(wvm.edges.size()), 27000.0, 27000.0 * 0.1);

  auto wo = load_windmill(o);
  EXPECT_EQ(wo.num_nodes, 319u);
  EXPECT_EQ(wo.edges.size(), 319u * 319u);  // complete incl. self pairs

  auto hc = load_chickenpox(o);
  EXPECT_EQ(hc.num_nodes, 20u);
  EXPECT_GE(hc.edges.size(), 40u);  // ring both directions at minimum

  auto mb = load_montevideo_bus(o);
  EXPECT_EQ(mb.num_nodes, 675u);
  EXPECT_NEAR(static_cast<double>(mb.edges.size()), 690.0, 690.0 * 0.15);

  auto pm = load_pedalme(o);
  EXPECT_EQ(pm.num_nodes, 15u);
  EXPECT_EQ(pm.edges.size(), 225u);  // 15²
}

TEST(StaticDatasets, EdgesAreValidAndUnique) {
  for (const auto& ds : load_all_static(small_static())) {
    std::set<std::pair<uint32_t, uint32_t>> seen;
    for (const auto& [s, d] : ds.edges) {
      EXPECT_LT(s, ds.num_nodes) << ds.name;
      EXPECT_LT(d, ds.num_nodes) << ds.name;
      EXPECT_TRUE(seen.insert({s, d}).second) << ds.name << " duplicate edge";
    }
  }
}

TEST(StaticDatasets, SignalShapesAndWeights) {
  auto o = small_static();
  auto hc = load_chickenpox(o);
  const auto& sig = hc.signal;
  ASSERT_EQ(sig.num_timestamps(), o.num_timestamps);
  EXPECT_EQ(sig.feature_size(), o.feature_size);
  ASSERT_TRUE(sig.has_node_targets());
  for (uint32_t t = 0; t < sig.num_timestamps(); ++t) {
    EXPECT_EQ(sig.features[t].shape(), (Shape{hc.num_nodes, o.feature_size}));
    EXPECT_EQ(sig.targets[t].shape(), (Shape{hc.num_nodes, 1}));
  }
  EXPECT_EQ(sig.edge_weights.size(), hc.edges.size());
  for (float w : sig.edge_weights) {
    EXPECT_GE(w, 0.5f);
    EXPECT_LT(w, 1.5f);
  }
}

TEST(StaticDatasets, SignalIsAutoregressive) {
  // The diffusion construction makes the target the next lag: the first
  // F-1 feature columns at t+1 equal the last F-1 at t shifted, and the
  // target at t equals feature column F-1 at t+1.
  auto o = small_static();
  auto pm = load_pedalme(o);
  const auto& sig = pm.signal;
  const int64_t F = o.feature_size;
  for (uint32_t v = 0; v < pm.num_nodes; ++v) {
    EXPECT_FLOAT_EQ(sig.features[1].at(v, F - 1), sig.targets[0].at(v, 0));
    for (int64_t l = 0; l + 1 < F; ++l)
      EXPECT_FLOAT_EQ(sig.features[1].at(v, l), sig.features[0].at(v, l + 1));
  }
}

TEST(StaticDatasets, ScaleShrinksProportionally) {
  StaticLoadOptions big = small_static();
  StaticLoadOptions small = small_static();
  small.scale = 0.25;
  auto b = load_wikimath(big);
  auto s = load_wikimath(small);
  EXPECT_NEAR(static_cast<double>(s.num_nodes) / b.num_nodes, 0.25, 0.02);
}

TEST(StaticDatasets, ResignalAtDifferentFeatureSize) {
  auto o = small_static();
  auto hc = load_chickenpox(o);
  TemporalSignal re = make_static_signal(hc, 16, 7);
  EXPECT_EQ(re.feature_size(), 16);
  EXPECT_EQ(re.num_timestamps(), hc.num_timestamps);
}

DynamicLoadOptions small_dynamic() {
  DynamicLoadOptions o;
  o.scale = 0.01;  // keep streams small for unit tests
  o.link_samples_per_step = 16;
  return o;
}

TEST(DynamicDatasets, TableTwoShapesScaled) {
  const auto o = small_dynamic();
  auto wiki = load_wiki_talk(o);
  EXPECT_EQ(wiki.name, "wiki-talk-temporal");
  EXPECT_EQ(wiki.num_nodes, 1200u);
  EXPECT_EQ(wiki.stream.size(), 20000u);
  auto math = load_sx_mathoverflow(o);
  EXPECT_EQ(math.num_nodes, 240u);
  EXPECT_EQ(math.stream.size(), 5060u);
}

TEST(DynamicDatasets, StreamEndpointsValid) {
  for (const auto& ds : load_all_dynamic(small_dynamic())) {
    for (const auto& [s, d] : ds.stream) {
      EXPECT_LT(s, ds.num_nodes) << ds.name;
      EXPECT_LT(d, ds.num_nodes) << ds.name;
      EXPECT_NE(s, d) << ds.name;
    }
  }
}

TEST(DynamicDatasets, DtdgWindowingProducesUsableEvents) {
  auto ds = load_sx_mathoverflow(small_dynamic());
  DtdgEvents ev = make_dtdg(ds, 5.0);
  EXPECT_EQ(ev.num_nodes, ds.num_nodes);
  EXPECT_GE(ev.num_timestamps(), 3u);
  EXPECT_NO_THROW(ev.snapshot_edges(ev.num_timestamps() - 1));
}

TEST(DynamicDatasets, DenserGraphHasHigherDensity) {
  // sx-mathoverflow is the paper's "relatively denser" dynamic dataset.
  auto o = small_dynamic();
  auto math = load_sx_mathoverflow(o);
  auto super_user = load_sx_superuser(o);
  const double d_math =
      static_cast<double>(math.stream.size()) / math.num_nodes;
  const double d_super =
      static_cast<double>(super_user.stream.size()) / super_user.num_nodes;
  EXPECT_GT(d_math, d_super);
}

TEST(DynamicDatasets, LinkSignalValidSamples) {
  auto o = small_dynamic();
  auto ds = load_reddit_title(o);
  DtdgEvents ev = make_dtdg(ds, 10.0);
  TemporalSignal sig = make_dynamic_signal(ev, o);
  ASSERT_TRUE(sig.has_link_samples());
  ASSERT_EQ(sig.links.size(), ev.num_timestamps());
  for (const auto& ls : sig.links) {
    ASSERT_EQ(ls.src.size(), ls.dst.size());
    ASSERT_EQ(static_cast<int64_t>(ls.src.size()), ls.labels.numel());
    // First half positives, second half negatives.
    const std::size_t half = ls.src.size() / 2;
    for (std::size_t i = 0; i < ls.src.size(); ++i) {
      EXPECT_LT(ls.src[i], ev.num_nodes);
      EXPECT_LT(ls.dst[i], ev.num_nodes);
      EXPECT_EQ(ls.labels.at(static_cast<int64_t>(i)), i < half ? 1.0f : 0.0f);
    }
  }
  // Features are persistent (same handle reused across timestamps).
  EXPECT_EQ(sig.features[0].impl().get(), sig.features[1].impl().get());
}

TEST(DynamicDatasets, DeterministicForFixedSeed) {
  auto o = small_dynamic();
  auto a = load_wiki_talk(o);
  auto b = load_wiki_talk(o);
  EXPECT_EQ(a.stream, b.stream);
  o.seed = 123;
  auto c = load_wiki_talk(o);
  EXPECT_NE(a.stream, c.stream);
}

}  // namespace
}  // namespace stgraph
