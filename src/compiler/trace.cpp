#include "compiler/trace.hpp"

#include "util/check.hpp"

namespace stgraph::compiler {

AggExpr& AggExpr::with_self_loop(const CoefExpr& coef, int input) {
  has_self_ = true;
  self_coef_ = coef;
  self_input_ = input;
  return *this;
}

AggExpr& AggExpr::scaled(float s) {
  scale_ *= s;
  return *this;
}

MsgExpr VertexContext::src_feature(int i) const {
  STG_CHECK(i >= 0, "feature input slot must be non-negative");
  MessageTerm t;
  t.input = i;
  return MsgExpr({t});
}

CoefExpr VertexContext::gcn_norm() const {
  return CoefExpr({Coef{CoefKind::kGcnNorm, 1.0f}});
}
CoefExpr VertexContext::inv_degree() const {
  return CoefExpr({Coef{CoefKind::kInvDegree, 1.0f}});
}
CoefExpr VertexContext::inv_degree_p1() const {
  return CoefExpr({Coef{CoefKind::kInvDegreeP1, 1.0f}});
}
CoefExpr VertexContext::edge_weight() const {
  return CoefExpr({Coef{CoefKind::kEdgeWeight, 1.0f}});
}
CoefExpr VertexContext::constant(float c) const {
  return CoefExpr({Coef{CoefKind::kConst, c}});
}

Program trace(const std::function<AggExpr(VertexContext&)>& fn) {
  VertexContext ctx;
  AggExpr agg = fn(ctx);
  Program p;
  p.agg = agg.kind();
  p.terms = agg.msg().terms();
  STG_CHECK(!p.terms.empty(), "vertex program aggregates an empty message");
  p.include_self = agg.has_self();
  p.self_coefs = agg.self_coef().coefs();
  p.self_input = agg.self_input();
  p.out_scale = agg.scale();
  return p;
}

}  // namespace stgraph::compiler
