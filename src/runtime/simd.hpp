// Portable SIMD layer for the specialized kernel engine — the CPU analogue
// of the CUDA vector width the paper's generated kernels get for free from
// warp lanes. One instruction-set backend is selected at compile time
// (AVX2 on x86-64, NEON on arm64, a width-1 scalar fallback elsewhere);
// the runtime escape hatch STGRAPH_SIMD=off routes every launch through
// the scalar-specialized engine instead, so SIMD codegen can be excluded
// when debugging numerical issues without rebuilding.
//
// Parity contract: `madd` is REQUIRED to be an unfused multiply-then-add
// (never an FMA) so that every lane performs exactly the IEEE operation
// sequence of the scalar reference kernel — the fuzz suite asserts bitwise
// identity between the two paths, which a fused madd would break.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace stgraph::simd {

/// Width-1 backend: the specialization grid compiled against plain floats.
/// Used when no vector ISA is available and for the STGRAPH_SIMD=off
/// escape hatch (it exercises the same engine code paths minus the ISA).
struct ScalarOps {
  static constexpr uint32_t kWidth = 1;
  using vf = float;
  using vu = uint32_t;
  static vf zero() { return 0.0f; }
  static vf neg_inf() { return -__builtin_inff(); }
  static vf set1(float x) { return x; }
  static vu set1u(uint32_t x) { return x; }
  static vf load(const float* p) { return *p; }
  static void store(float* p, vf v) { *p = v; }
  static vu loadu(const uint32_t* p) { return *p; }
  static void storeu(uint32_t* p, vu v) { *p = v; }
  static vf add(vf a, vf b) { return a + b; }
  static vf mul(vf a, vf b) { return a * b; }
  /// acc + a*b, deliberately unfused (see header comment).
  static vf madd(vf a, vf b, vf acc) { return add(acc, mul(a, b)); }
  static vf max(vf a, vf b) { return a > b ? a : b; }
  /// Lane mask with a > b (ordered: false on NaN, like scalar `>`).
  static vu cmp_gt(vf a, vf b) { return a > b ? 0xFFFFFFFFu : 0u; }
  static vu cmp_eq_u(vu a, vu b) { return a == b ? 0xFFFFFFFFu : 0u; }
  /// mask ? b : a, per lane.
  static vf blend(vf a, vf b, vu mask) { return mask ? b : a; }
  static vu blendu(vu a, vu b, vu mask) { return mask ? b : a; }
  /// Zero out lanes where mask is false.
  static vf mask_keep(vf v, vu mask) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    bits &= mask;
    vf out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
  }
};

#if defined(__AVX2__)

/// 8-lane f32 backend (AVX2). Masks are carried as __m256i full-lane masks.
struct AvxOps {
  static constexpr uint32_t kWidth = 8;
  using vf = __m256;
  using vu = __m256i;
  static vf zero() { return _mm256_setzero_ps(); }
  static vf neg_inf() { return _mm256_set1_ps(-__builtin_inff()); }
  static vf set1(float x) { return _mm256_set1_ps(x); }
  static vu set1u(uint32_t x) {
    return _mm256_set1_epi32(static_cast<int>(x));
  }
  static vf load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, vf v) { _mm256_storeu_ps(p, v); }
  static vu loadu(const uint32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu(uint32_t* p, vu v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static vf add(vf a, vf b) { return _mm256_add_ps(a, b); }
  static vf mul(vf a, vf b) { return _mm256_mul_ps(a, b); }
  /// acc + a*b, deliberately unfused (see header comment).
  static vf madd(vf a, vf b, vf acc) { return add(acc, mul(a, b)); }
  static vf max(vf a, vf b) { return _mm256_max_ps(a, b); }
  static vu cmp_gt(vf a, vf b) {
    return _mm256_castps_si256(_mm256_cmp_ps(a, b, _CMP_GT_OQ));
  }
  static vu cmp_eq_u(vu a, vu b) { return _mm256_cmpeq_epi32(a, b); }
  static vf blend(vf a, vf b, vu mask) {
    return _mm256_blendv_ps(a, b, _mm256_castsi256_ps(mask));
  }
  static vu blendu(vu a, vu b, vu mask) {
    return _mm256_castps_si256(_mm256_blendv_ps(
        _mm256_castsi256_ps(a), _mm256_castsi256_ps(b),
        _mm256_castsi256_ps(mask)));
  }
  static vf mask_keep(vf v, vu mask) {
    return _mm256_and_ps(v, _mm256_castsi256_ps(mask));
  }
};
using NativeOps = AvxOps;
inline constexpr const char* kArchName = "avx2";

#elif defined(__ARM_NEON)

/// 4-lane f32 backend (NEON).
struct NeonOps {
  static constexpr uint32_t kWidth = 4;
  using vf = float32x4_t;
  using vu = uint32x4_t;
  static vf zero() { return vdupq_n_f32(0.0f); }
  static vf neg_inf() { return vdupq_n_f32(-__builtin_inff()); }
  static vf set1(float x) { return vdupq_n_f32(x); }
  static vu set1u(uint32_t x) { return vdupq_n_u32(x); }
  static vf load(const float* p) { return vld1q_f32(p); }
  static void store(float* p, vf v) { vst1q_f32(p, v); }
  static vu loadu(const uint32_t* p) { return vld1q_u32(p); }
  static void storeu(uint32_t* p, vu v) { vst1q_u32(p, v); }
  static vf add(vf a, vf b) { return vaddq_f32(a, b); }
  static vf mul(vf a, vf b) { return vmulq_f32(a, b); }
  /// acc + a*b, deliberately unfused (see header comment) — NOT vfmaq.
  static vf madd(vf a, vf b, vf acc) { return add(acc, mul(a, b)); }
  static vf max(vf a, vf b) { return vmaxq_f32(a, b); }
  static vu cmp_gt(vf a, vf b) { return vcgtq_f32(a, b); }
  static vu cmp_eq_u(vu a, vu b) { return vceqq_u32(a, b); }
  static vf blend(vf a, vf b, vu mask) { return vbslq_f32(mask, b, a); }
  static vu blendu(vu a, vu b, vu mask) { return vbslq_u32(mask, b, a); }
  static vf mask_keep(vf v, vu mask) {
    return vreinterpretq_f32_u32(
        vandq_u32(vreinterpretq_u32_f32(v), mask));
  }
};
using NativeOps = NeonOps;
inline constexpr const char* kArchName = "neon";

#else

using NativeOps = ScalarOps;
inline constexpr const char* kArchName = "scalar";

#endif

/// Compile-time ISA of the native backend ("avx2", "neon" or "scalar").
inline const char* arch_name() { return kArchName; }

/// Runtime escape hatch: STGRAPH_SIMD=off|0|false disables the vector
/// backend for the whole process (read once, first use).
inline bool enabled() {
  static const bool on = [] {
    const char* s = std::getenv("STGRAPH_SIMD");
    if (!s || !*s) return true;
    return !(std::strcmp(s, "off") == 0 || std::strcmp(s, "OFF") == 0 ||
             std::strcmp(s, "0") == 0 || std::strcmp(s, "false") == 0);
  }();
  return on;
}

/// The ISA launches actually run with (arch_name() unless disabled).
inline const char* active_arch() {
  return enabled() ? arch_name() : "scalar";
}

}  // namespace stgraph::simd
