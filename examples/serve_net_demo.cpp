// Network serving quickstart: bring up the full serving stack — a
// serve::Server with replicated readers behind a net::Frontend on
// loopback TCP — then talk to it over the wire with the binary client
// (predict / ingest / stats) and over the JSON fallback (what netcat
// speaks).
//
//   ./build/examples/serve_net_demo            scripted round trips, exits
//   ./build/examples/serve_net_demo --serve    keep serving until Enter;
//                                              try from another shell:
//       printf '{"op": "health"}\n' | nc 127.0.0.1 <port>
//       printf '{"op": "predict", "nodes": [0, 3]}\n' | nc 127.0.0.1 <port>
#include <iostream>
#include <string>

#include "gpma/gpma_graph.hpp"
#include "net/client.hpp"
#include "net/frontend.hpp"
#include "nn/models.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

using namespace stgraph;

int main(int argc, char** argv) {
  const bool serve_forever = argc > 1 && std::string(argv[1]) == "--serve";

  // A 16-node ring with random TGCN weights — stand-in for a trained
  // checkpoint (a real deployment calls server.load("model.stgt")).
  constexpr uint32_t kNodes = 16;
  constexpr int64_t kFeat = 4, kHidden = 8;
  DtdgEvents ev;
  ev.num_nodes = kNodes;
  for (uint32_t i = 0; i < kNodes; ++i)
    ev.base_edges.emplace_back(i, (i + 1) % kNodes);
  GpmaGraph graph(ev);
  Rng rng(7);
  nn::TGCNEncoder model(kFeat, kHidden, rng);

  serve::ServeConfig cfg;
  cfg.num_readers = 2;                  // replicated snapshot readers
  cfg.tenants = {{1, 3, 0}, {2, 1, 0}};  // two lanes, 3:1 WRR weights
  serve::Server server(graph, model, cfg);
  Tensor x0 = Tensor::zeros({kNodes, kFeat});
  for (int64_t i = 0; i < x0.numel(); ++i)
    x0.data()[i] = 0.05f * static_cast<float>(i % 11);
  server.start(x0);

  net::Frontend frontend(server);
  frontend.start();
  std::cout << "serving on 127.0.0.1:" << frontend.port() << " with "
            << server.num_readers() << " readers\n\n";

  // ---- binary protocol ----------------------------------------------------
  net::Client client("127.0.0.1", frontend.port());
  const net::PredictWire full = client.predict({}, /*tenant=*/1);
  std::cout << "PREDICT (all nodes): [" << full.outputs.rows() << " x "
            << full.outputs.cols() << "] at t=" << full.time << " v"
            << full.version << "\n";

  EdgeDelta delta;
  delta.additions = {{0, 8}, {3, 11}};
  Tensor x1 = Tensor::zeros({kNodes, kFeat});
  const net::IngestWire ing = client.ingest(delta, x1);
  std::cout << "INGEST  (+2 edges): now t=" << ing.time << " v" << ing.version
            << ", " << ing.num_edges << " edges\n";

  const net::PredictWire rows = client.predict({0, 8}, /*tenant=*/2);
  std::cout << "PREDICT (nodes 0,8): first value " << rows.outputs.data()[0]
            << " at t=" << rows.time << "\n";
  std::cout << "STATS: " << client.stats_json().substr(0, 120) << "...\n\n";

  // ---- JSON fallback (the netcat path) ------------------------------------
  std::cout << "JSON health  -> " << client.json_round_trip("{\"op\": \"health\"}")
            << "\n";
  std::cout << "JSON predict -> "
            << client.json_round_trip("{\"op\": \"predict\", \"nodes\": [5]}")
            << "\n";

  if (serve_forever) {
    std::cout << "\npress Enter to stop...\n";
    std::cin.get();
  }
  frontend.stop();
  server.stop();
  std::cout << "done\n";
  return 0;
}
