// A3TGCN — attention-temporal TGCN (Bai et al., also in PyG-T's zoo):
// a TGCN cell whose output is an attention-weighted combination of the
// last `periods` hidden states,
//
//   H_t        = TGCN(X_t, H_{t-1})
//   α          = softmax(w),  w ∈ R^periods (learned)
//   H_att(t)   = Σ_{p=0}^{periods-1} α_p · H_{t-p}
//
// so recent history contributes by learned importance rather than only
// through the recurrence. The rolling window of hidden states is packed
// into the model's state tensor ([N, hidden·periods], newest block first),
// keeping the model a pure function of (x, state) as the Algorithm-1
// trainer expects.
#pragma once

#include "nn/models.hpp"
#include "nn/tgcn.hpp"

namespace stgraph::nn {

class A3TGCN : public Module {
 public:
  A3TGCN(int64_t in_features, int64_t out_features, int64_t periods, Rng& rng);

  /// One step over the packed state; returns (attention output, new state).
  std::pair<Tensor, Tensor> forward(core::TemporalExecutor& exec,
                                    const Tensor& x, const Tensor& packed,
                                    const float* edge_weights = nullptr) const;
  Tensor initial_state(int64_t num_nodes) const;

  int64_t periods() const { return periods_; }
  int64_t out_features() const { return out_; }
  /// Current attention distribution (softmax of the learned scores).
  Tensor attention() const;

 private:
  int64_t in_, out_, periods_;
  TGCN tgcn_;
  Tensor att_score_;  // [periods], learned
};

class A3TGCNRegressor final : public TemporalModel {
 public:
  A3TGCNRegressor(int64_t in_features, int64_t hidden, int64_t periods,
                  Rng& rng);
  std::pair<Tensor, Tensor> step(core::TemporalExecutor& exec, const Tensor& x,
                                 const Tensor& state,
                                 const float* edge_weights) override;
  Tensor initial_state(int64_t num_nodes) const override {
    return a3_.initial_state(num_nodes);
  }
  const A3TGCN& cell() const { return a3_; }

 private:
  A3TGCN a3_;
  Linear head_;
};

}  // namespace stgraph::nn
