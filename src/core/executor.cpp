#include "core/executor.hpp"

#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace stgraph::core {

TemporalExecutor::TemporalExecutor(STGraphBase& graph) : graph_(graph) {}

void TemporalExecutor::begin_forward_step(uint32_t t) {
  STG_FAILPOINT("executor.forward.throw",
                throw StgError("failpoint executor.forward.throw fired at t=" +
                               std::to_string(t)));
  {
    PhaseScope scope(positioning_timer_);
    current_view_ = graph_.get_graph(t);
  }
  fwd_timestamp_ = t;
  bwd_timestamp_.reset();
  record("fwd t=" + std::to_string(t));
  // No backward pass will pop during evaluation or serving, so record
  // snapshots only when autograd is recording and the executor is not in
  // forward-only inference mode.
  if (graph_.is_dynamic() && !inference_mode_ && NoGradGuard::grad_enabled()) {
    graph_stack_.push(t);
    record("push graph t=" + std::to_string(t));
  }
}

void TemporalExecutor::set_inference_mode(bool on) {
  STG_CHECK(state_stack_.empty() && graph_stack_.empty(),
            "cannot toggle inference mode mid-sequence: State Stack depth ",
            state_stack_.depth(), ", Graph Stack depth ",
            graph_stack_.depth());
  inference_mode_ = on;
  record(on ? "inference on" : "inference off");
}

const SnapshotView& TemporalExecutor::forward_view() const {
  STG_CHECK(fwd_timestamp_.has_value(),
            "forward_view() before begin_forward_step()");
  return current_view_;
}

uint32_t TemporalExecutor::current_forward_timestamp() const {
  STG_CHECK(fwd_timestamp_.has_value(), "no forward step in progress");
  return *fwd_timestamp_;
}

StateStack::Ticket TemporalExecutor::save_for_backward(
    std::vector<Tensor> pruned, std::vector<Tensor> unpruned) {
  if (inference_mode_) {
    // Forward-only: the saved set is dropped on the floor (no backward
    // pass will ever retrieve it), so serving retains no per-timestep
    // state regardless of the caller's grad mode.
    record("skip state (inference)");
    return kInferenceTicket;
  }
  const StateStack::Ticket ticket = state_stack_.push(
      state_pruning_ ? std::move(pruned) : std::move(unpruned));
  record("push state #" + std::to_string(ticket));
  return ticket;
}

const SnapshotView& TemporalExecutor::backward_view(uint32_t t) {
  STG_CHECK(!inference_mode_,
            "backward_view(t=", t, ") called in inference mode");
  if (bwd_timestamp_ == t) return current_view_;  // sibling node, same step
  record("bwd t=" + std::to_string(t));
  if (graph_.is_dynamic()) {
    const uint32_t popped = graph_stack_.pop();
    STG_CHECK(popped == t, "Graph Stack returned snapshot ", popped,
              " for backward step of timestamp ", t,
              " — forward/backward order mismatch");
    record("pop graph t=" + std::to_string(popped));
  }
  {
    PhaseScope scope(positioning_timer_);
    current_view_ = graph_.get_backward_graph(t);
  }
  bwd_timestamp_ = t;
  fwd_timestamp_.reset();
  // Pipeline hint: the next backward step will pop the timestamp now on
  // top of the Graph Stack, so the graph object can replay deltas toward
  // it while this step's gradient kernels run. Advisory — correctness
  // never depends on it (see STGraphBase::prefetch).
  if (graph_.is_dynamic() && !graph_stack_.empty())
    graph_.prefetch(graph_stack_.top());
  return current_view_;
}

std::vector<Tensor> TemporalExecutor::retrieve_saved(StateStack::Ticket ticket) {
  STG_CHECK(!inference_mode_ && ticket != kInferenceTicket,
            "retrieve_saved() called for a forward-only (inference) pass");
  record("pop state #" + std::to_string(ticket));
  return state_stack_.pop(ticket);
}

void TemporalExecutor::abort_sequence() {
  record("abort seq (state depth " + std::to_string(state_stack_.depth()) +
         ", graph depth " + std::to_string(graph_stack_.depth()) + ")");
  state_stack_.clear();
  graph_stack_.clear();
  fwd_timestamp_.reset();
  bwd_timestamp_.reset();
}

void TemporalExecutor::verify_drained() const {
  STG_CHECK(state_stack_.empty(), "State Stack not drained: depth ",
            state_stack_.depth());
  STG_CHECK(graph_stack_.empty(), "Graph Stack not drained: depth ",
            graph_stack_.depth());
}

}  // namespace stgraph::core
