#include "core/backend.hpp"

#include "runtime/parallel.hpp"
#include "runtime/simd.hpp"
#include "util/check.hpp"

namespace stgraph::core {
namespace {

class NativeBackend final : public Backend {
 public:
  std::string name() const override { return "native"; }

  std::string device_info() const override {
    return "native cpu, simd=" + std::string(simd::active_arch()) +
           " (built for " + simd::arch_name() + "), lanes=" +
           std::to_string(device::lane_count());
  }

  Tensor tensor_from_host(const std::vector<float>& values,
                          Shape shape) const override {
    return Tensor::from_vector(values, std::move(shape));
  }

  Tensor zeros(Shape shape) const override {
    return Tensor::zeros(std::move(shape));
  }

  void launch_aggregation(const compiler::KernelSpec& spec,
                          const compiler::KernelArgs& args) const override {
    compiler::run_kernel(spec, args);
  }

  void synchronize() const override { device::synchronize(); }
};

}  // namespace

BackendRegistry::BackendRegistry() {
  register_backend("native", [] { return std::make_unique<NativeBackend>(); });
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_backend(const std::string& name,
                                       FactoryFn factory) {
  for (auto& [n, f] : factories_) {
    if (n == name) {
      f = std::move(factory);  // re-registration replaces (tests)
      return;
    }
  }
  factories_.emplace_back(name, std::move(factory));
}

std::unique_ptr<Backend> BackendRegistry::create(const std::string& name) const {
  for (const auto& [n, f] : factories_) {
    if (n == name) return f();
  }
  STG_CHECK(false, "unknown backend '", name, "'");
  return nullptr;
}

std::vector<std::string> BackendRegistry::available() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [n, f] : factories_) names.push_back(n);
  return names;
}

Backend& native_backend() {
  static std::unique_ptr<Backend> backend =
      BackendRegistry::instance().create("native");
  return *backend;
}

}  // namespace stgraph::core
