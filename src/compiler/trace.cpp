#include "compiler/trace.hpp"

#include "util/check.hpp"

namespace stgraph::compiler {

AggExpr& AggExpr::with_self_loop(const CoefExpr& coef, int input) {
  has_self_ = true;
  self_coef_ = coef;
  self_input_ = input;
  return *this;
}

AggExpr& AggExpr::scaled(float s) {
  scale_ *= s;
  return *this;
}

MsgExpr VertexContext::src_feature(int i) const {
  STG_CHECK(i >= 0, "feature input slot must be non-negative");
  MessageTerm t;
  t.input = i;
  return MsgExpr({t});
}

CoefExpr VertexContext::gcn_norm() const {
  return CoefExpr({Coef{CoefKind::kGcnNorm, 1.0f}});
}
CoefExpr VertexContext::inv_degree() const {
  return CoefExpr({Coef{CoefKind::kInvDegree, 1.0f}});
}
CoefExpr VertexContext::inv_degree_p1() const {
  return CoefExpr({Coef{CoefKind::kInvDegreeP1, 1.0f}});
}
CoefExpr VertexContext::edge_weight() const {
  return CoefExpr({Coef{CoefKind::kEdgeWeight, 1.0f}});
}
CoefExpr VertexContext::constant(float c) const {
  return CoefExpr({Coef{CoefKind::kConst, c}});
}

Program trace(const std::function<AggExpr(VertexContext&)>& fn) {
  VertexContext ctx;
  AggExpr agg = fn(ctx);
  Program p;
  p.agg = agg.kind();
  p.terms = agg.msg().terms();
  STG_CHECK(!p.terms.empty(), "vertex program aggregates an empty message");
  p.include_self = agg.has_self();
  p.self_coefs = agg.self_coef().coefs();
  p.self_input = agg.self_input();
  p.out_scale = agg.scale();
  return p;
}

// ---- elementwise tracing --------------------------------------------------

EwExpr EwTracer::emit(EwOp op, int a, int b, float imm) {
  STG_CHECK(a >= 0 && a < static_cast<int>(prog_.nodes.size()),
            "elementwise trace references an unknown operand");
  STG_CHECK(b < static_cast<int>(prog_.nodes.size()),
            "elementwise trace references an unknown operand");
  EwNode n;
  n.op = op;
  n.a = a;
  n.b = b;
  n.imm = imm;
  prog_.nodes.push_back(n);
  return EwExpr(this, static_cast<int>(prog_.nodes.size()) - 1);
}

EwExpr EwTracer::in() {
  EwNode n;
  n.op = EwOp::kInput;
  n.input = static_cast<int>(prog_.inputs.size());
  prog_.inputs.push_back(EwInputKind::kMat);
  prog_.nodes.push_back(n);
  return EwExpr(this, static_cast<int>(prog_.nodes.size()) - 1);
}

EwExpr EwTracer::in_bias() {
  EwNode n;
  n.op = EwOp::kInput;
  n.input = static_cast<int>(prog_.inputs.size());
  prog_.inputs.push_back(EwInputKind::kBias);
  prog_.nodes.push_back(n);
  return EwExpr(this, static_cast<int>(prog_.nodes.size()) - 1);
}

EwExpr EwTracer::add(EwExpr a, EwExpr b) {
  return emit(EwOp::kAdd, a.id(), b.id(), 0.0f);
}
EwExpr EwTracer::sub(EwExpr a, EwExpr b) {
  return emit(EwOp::kSub, a.id(), b.id(), 0.0f);
}
EwExpr EwTracer::mul(EwExpr a, EwExpr b) {
  return emit(EwOp::kMul, a.id(), b.id(), 0.0f);
}
EwExpr EwTracer::div(EwExpr a, EwExpr b) {
  return emit(EwOp::kDiv, a.id(), b.id(), 0.0f);
}
EwExpr EwTracer::add_scalar(EwExpr a, float s) {
  return emit(EwOp::kAddS, a.id(), -1, s);
}
EwExpr EwTracer::mul_scalar(EwExpr a, float s) {
  return emit(EwOp::kMulS, a.id(), -1, s);
}
EwExpr EwTracer::one_minus(EwExpr a) {
  return emit(EwOp::kOneMinus, a.id(), -1, 0.0f);
}
EwExpr EwTracer::sigmoid(EwExpr a) {
  return emit(EwOp::kSigmoid, a.id(), -1, 0.0f);
}
EwExpr EwTracer::tanh(EwExpr a) {
  return emit(EwOp::kTanh, a.id(), -1, 0.0f);
}
EwExpr EwTracer::relu(EwExpr a) {
  return emit(EwOp::kRelu, a.id(), -1, 0.0f);
}
EwExpr EwTracer::leaky_relu(EwExpr a, float slope) {
  return emit(EwOp::kLeakyRelu, a.id(), -1, slope);
}
EwExpr EwTracer::exp(EwExpr a) {
  return emit(EwOp::kExp, a.id(), -1, 0.0f);
}
EwExpr EwTracer::add_bias(EwExpr x, EwExpr bias) {
  const EwNode& bn = prog_.nodes[static_cast<size_t>(bias.id())];
  STG_CHECK(bn.op == EwOp::kInput &&
                prog_.inputs[static_cast<size_t>(bn.input)] ==
                    EwInputKind::kBias,
            "add_bias operand must come from in_bias()");
  return emit(EwOp::kAddBias, x.id(), bias.id(), 0.0f);
}

EwProgram trace_elementwise(const std::function<EwExpr(EwTracer&)>& fn) {
  EwTracer t;
  EwExpr out = fn(t);
  STG_CHECK(out.id() >= 0, "elementwise trace produced no output");
  t.prog_.outputs = {out.id()};
  STG_CHECK(!t.prog_.inputs.empty(), "elementwise trace declared no inputs");
  return t.prog_;
}

}  // namespace stgraph::compiler
