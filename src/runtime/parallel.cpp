#include "runtime/parallel.hpp"

#include <vector>

namespace stgraph::device {

KernelStats& KernelStats::instance() {
  static KernelStats stats;
  return stats;
}

unsigned lane_count() {
  return detail::effective_lanes(ThreadPool::instance());
}

void parallel_for_ranges(std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain) {
  parallel_for_ranges(
      n, [&fn](std::size_t b, std::size_t e) { fn(b, e); }, grain);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for(
      n, [&fn](std::size_t i) { fn(i); }, grain);
}

void parallel_for_strided(std::size_t n,
                          const std::function<void(std::size_t)>& fn,
                          std::size_t grain) {
  parallel_for_strided(
      n, [&fn](std::size_t i) { fn(i); }, grain);
}

double parallel_reduce_sum(std::size_t n,
                           const std::function<double(std::size_t)>& fn,
                           std::size_t grain) {
  if (n == 0) return 0.0;
  auto& pool = ThreadPool::instance();
  const unsigned lanes = detail::effective_lanes(pool);
  if (lanes == 1 || n <= grain) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += fn(i);
    return acc;
  }
  KernelStats::instance().launches.fetch_add(1, std::memory_order_relaxed);
  std::vector<double> partial(lanes, 0.0);
  const std::size_t chunk = (n + lanes - 1) / lanes;
  pool.run_on_lanes([&](unsigned lane) {
    const std::size_t begin = static_cast<std::size_t>(lane) * chunk;
    if (begin >= n) return;
    const std::size_t end = std::min(n, begin + chunk);
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += fn(i);
    partial[lane] = acc;
  });
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

}  // namespace stgraph::device
