#include "io/binary_format.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "runtime/analyze.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"

namespace stgraph::io {

struct Writer::OutFile {
  std::ofstream stream;
};

void Writer::OutFileDeleter::operator()(OutFile* f) const { delete f; }

Writer::Writer(const std::string& path, bool crc_footer)
    : path_(path),
      tmp_path_(path + ".tmp." + std::to_string(::getpid())),
      crc_footer_(crc_footer),
      out_(new OutFile) {
  if (analyze::armed()) analyze::on_blocking_call("file-io(checkpoint)");
  out_->stream.open(tmp_path_, std::ios::binary | std::ios::trunc);
  STG_CHECK(out_->stream.good(), "cannot open '", tmp_path_,
            "' for writing");
}

Writer::~Writer() {
  if (!finished_) {
    // Abandoned write (exception unwinding): the destination is untouched;
    // drop the temp file.
    out_->stream.close();
    std::remove(tmp_path_.c_str());
  }
}

void Writer::bytes(const void* data, std::size_t n) {
  if (crc_footer_) crc_ = crc32(data, n, crc_);
  out_->stream.write(static_cast<const char*>(data),
                     static_cast<std::streamsize>(n));
}

void Writer::finish() {
  STG_CHECK(!finished_, "Writer::finish() called twice for '", path_, "'");
  if (crc_footer_) {
    // The footer itself is excluded from the CRC.
    const uint32_t crc = crc_;
    out_->stream.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  }
  out_->stream.flush();
  STG_CHECK(out_->stream.good(), "write to '", tmp_path_, "' failed");
  out_->stream.close();

  // Torn-write injection: shorten the already-closed temp file so the
  // rename publishes a truncated payload.
  STG_FAILPOINT("io.write.short", {
    struct ::stat st{};
    STG_CHECK(::stat(tmp_path_.c_str(), &st) == 0, "stat('", tmp_path_,
              "') failed");
    STG_CHECK(::truncate(tmp_path_.c_str(), st.st_size / 2) == 0,
              "truncate('", tmp_path_, "') failed");
  });

  if (analyze::armed()) analyze::on_blocking_call("file-io(checkpoint)");
  const int fd = ::open(tmp_path_.c_str(), O_WRONLY);
  STG_CHECK(fd >= 0, "cannot reopen '", tmp_path_, "' for fsync");
  const int sync_rc = ::fsync(fd);
  ::close(fd);
  STG_CHECK(sync_rc == 0, "fsync('", tmp_path_, "') failed");
  STG_CHECK(::rename(tmp_path_.c_str(), path_.c_str()) == 0, "rename('",
            tmp_path_, "' -> '", path_, "') failed");
  finished_ = true;
}

Reader::Reader(const std::string& path, bool crc_footer) : path_(path) {
  if (analyze::armed()) analyze::on_blocking_call("file-io(checkpoint)");
  std::ifstream in(path, std::ios::binary);
  STG_CHECK(in.good(), "cannot open '", path, "' for reading");
  std::ostringstream slurp;
  slurp << in.rdbuf();
  STG_CHECK(!in.bad(), "read from '", path, "' failed");
  buf_ = std::move(slurp).str();
  if (crc_footer) {
    STG_CHECK(buf_.size() >= sizeof(uint32_t), "'", path,
              "' is too short to hold a CRC footer — truncated file");
    uint32_t stored = 0;
    std::memcpy(&stored, buf_.data() + buf_.size() - sizeof(uint32_t),
                sizeof(uint32_t));
    buf_.resize(buf_.size() - sizeof(uint32_t));
    const uint32_t computed = crc32(buf_.data(), buf_.size());
    STG_CHECK(stored == computed, "'", path, "' failed its CRC check (stored 0x",
              std::hex, stored, ", computed 0x", computed,
              ") — torn or corrupted write");
  }
}

void Reader::bytes(void* data, std::size_t n) {
  STG_CHECK(n <= remaining(), "unexpected end of file in '", path_,
            "' (want ", n, " bytes, have ", remaining(), ")");
  std::memcpy(data, buf_.data() + pos_, n);
  pos_ += n;
}

std::string Reader::str(uint32_t max_len) {
  const uint32_t n = scalar<uint32_t>();
  STG_CHECK(n <= max_len, "string length ", n, " too large in '", path_, "'");
  STG_CHECK(n <= remaining(), "unexpected end of file in '", path_,
            "' reading a string of ", n, " bytes");
  std::string s = buf_.substr(pos_, n);
  pos_ += n;
  return s;
}

void Reader::expect_magic(uint32_t magic, uint32_t version) {
  const uint32_t got = scalar<uint32_t>();
  STG_CHECK(got == magic, "'", path_, "' has wrong magic (got 0x", std::hex,
            got, ", want 0x", magic, ")");
  const uint32_t got_version = scalar<uint32_t>();
  STG_CHECK(got_version == version, "'", path_, "' has unsupported version ",
            got_version);
}

void Reader::expect_payload(uint64_t count, std::size_t elem_size,
                            const char* what) {
  STG_CHECK(count <= remaining() / elem_size, "claimed ", what, " count ",
            count, " exceeds the remaining ", remaining(), " bytes of '",
            path_, "' — truncated or corrupt file");
}

void write_tensor(Writer& w, const Tensor& t) {
  w.scalar<uint32_t>(static_cast<uint32_t>(t.dim()));
  for (int64_t d = 0; d < t.dim(); ++d) w.scalar<int64_t>(t.size(d));
  w.bytes(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

Tensor read_tensor(Reader& r) {
  const uint32_t rank = r.scalar<uint32_t>();
  STG_CHECK(rank <= 2, "tensor rank ", rank, " unsupported in '", r.path(),
            "'");
  Shape shape;
  int64_t numel = 1;
  for (uint32_t d = 0; d < rank; ++d) {
    const int64_t dim = r.scalar<int64_t>();
    STG_CHECK(dim >= 0 && dim <= (1 << 30), "tensor dim ", dim,
              " implausible in '", r.path(), "'");
    shape.push_back(dim);
    numel *= dim;
  }
  r.expect_payload(static_cast<uint64_t>(numel), sizeof(float),
                   "tensor element");
  Tensor t = Tensor::empty(shape);
  if (t.numel())
    r.bytes(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  return t;
}

}  // namespace stgraph::io
