// SIMD kernel-engine parity fuzz: the specialized engine behind run_kernel
// (vector or scalar, selected by STGRAPH_SIMD) must reproduce the retained
// interpreted reference bit for bit — same float accumulation order, same
// c == 0 skip (and hence NaN/Inf propagation), same argmax winners — across
// every coefficient product, aggregation kind, direction, view shape
// (gapped/ungapped, eids present/absent, coef cache present/absent) and odd
// feature sizes that exercise the sub-vector tails and both tiling paths.
// ctest reruns the binary under STGRAPH_SIMD=off and STGRAPH_NUM_THREADS=1,
// so the scalar engine and the serial schedule are held to the same oracle.
//
// Also pins the per-snapshot GCN-norm cache contract: the eid-indexed array
// served by the graph classes must equal the inline per-edge computation
// exactly, including after GPMA deltas take the incremental view-patch path
// (a stale cache after an insert/delete is precisely the regression this
// guards against).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <vector>

#include "compiler/autodiff.hpp"
#include "compiler/kernel.hpp"
#include "compiler/passes.hpp"
#include "compiler/trace.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/csr.hpp"
#include "graph/dtdg.hpp"
#include "graph/static_graph.hpp"
#include "runtime/simd.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using namespace compiler;

// Which coefficient kinds the edge term multiplies together.
struct CoefSet {
  bool cst, inv, invp1, gcn, ew;
};

Program make_program(const CoefSet& cs, AggKind agg, bool self, bool scale) {
  return trace([&](VertexContext& v) -> AggExpr {
    MsgExpr msg = v.src_feature(0);
    if (cs.ew) msg = v.edge_weight() * msg;
    if (cs.gcn) msg = v.gcn_norm() * msg;
    if (cs.invp1) msg = v.inv_degree_p1() * msg;
    if (cs.inv) msg = v.inv_degree() * msg;
    if (cs.cst) msg = v.constant(1.375f) * msg;
    AggExpr e = agg == AggKind::kSum    ? v.agg_sum(msg)
                : agg == AggKind::kMean ? v.agg_mean(msg)
                                        : v.agg_max(msg);
    if (self) e.with_self_loop(cs.gcn ? v.gcn_norm() : v.constant(0.75f));
    if (scale) e.scaled(0.5f);
    return e;
  });
}

void expect_bits_equal(const std::vector<float>& eng,
                       const std::vector<float>& ref, const char* what) {
  ASSERT_EQ(eng.size(), ref.size());
  for (std::size_t i = 0; i < eng.size(); ++i) {
    uint32_t be, br;
    std::memcpy(&be, &eng[i], sizeof(be));
    std::memcpy(&br, &ref[i], sizeof(br));
    ASSERT_EQ(be, br) << what << " diverges at " << i << ": engine "
                      << eng[i] << " vs reference " << ref[i];
  }
}

// Random fuzz graph: compact forward/backward views with shared eids plus
// per-eid edge weights (a few exact zeros to exercise the c == 0 skip) and
// features salted with NaN/Inf/-0 so parity covers special-value handling.
struct FuzzGraph {
  uint32_t n;
  std::unique_ptr<StaticTemporalGraph> graph;
  SnapshotView view;
  std::vector<float> ew;

  FuzzGraph(uint32_t nodes, std::size_t tries, uint64_t seed) : n(nodes) {
    Rng rng(seed);
    EdgeList edges;
    std::set<std::pair<uint32_t, uint32_t>> seen;
    for (std::size_t i = 0; i < tries; ++i) {
      uint32_t s = static_cast<uint32_t>(rng.next_below(n));
      uint32_t d = static_cast<uint32_t>(rng.next_below(n));
      if (s == d || !seen.insert({s, d}).second) continue;
      edges.emplace_back(s, d);
    }
    graph = std::make_unique<StaticTemporalGraph>(n, edges, 1);
    view = graph->get_graph(0);
    ew.resize(edges.size());
    for (auto& w : ew)
      w = rng.next_below(8) == 0 ? 0.0f : rng.uniform(0.5f, 1.5f);
  }

  std::vector<float> features(int64_t F, Rng& rng, bool specials) const {
    std::vector<float> x(static_cast<std::size_t>(n) * F);
    for (auto& v : x) v = rng.normal();
    if (specials && x.size() > 8) {
      x[rng.next_below(x.size())] = std::numeric_limits<float>::quiet_NaN();
      x[rng.next_below(x.size())] = std::numeric_limits<float>::infinity();
      x[rng.next_below(x.size())] = -std::numeric_limits<float>::infinity();
      x[rng.next_below(x.size())] = -0.0f;
    }
    return x;
  }
};

// Copy of a compact CsrView with kSpace slots sprinkled in (the gapped PMA
// layout); rows stay contiguous, labels are unchanged.
struct GappedCopy {
  std::vector<uint32_t> ro, col, eids;

  GappedCopy(const CsrView& v, Rng& rng) {
    ro.resize(static_cast<std::size_t>(v.num_nodes) + 1);
    for (uint32_t r = 0; r < v.num_nodes; ++r) {
      ro[r] = static_cast<uint32_t>(col.size());
      for (uint32_t j = v.row_offset[r]; j < v.row_offset[r + 1]; ++j) {
        while (rng.next_below(3) == 0) {
          col.push_back(kSpace);
          eids.push_back(kSpace);
        }
        col.push_back(v.col_indices[j]);
        eids.push_back(v.eids[j]);
      }
      if (rng.next_below(2) == 0) {
        col.push_back(kSpace);
        eids.push_back(kSpace);
      }
    }
    ro[v.num_nodes] = static_cast<uint32_t>(col.size());
  }

  CsrView view_of(const CsrView& v) const {
    CsrView g = v;
    g.row_offset = ro.data();
    g.col_indices = col.data();
    g.eids = eids.data();
    g.node_ids = nullptr;
    g.has_gaps = true;
    return g;
  }
};

enum class ViewShape { kCompact, kGapped, kNoEids };

// Run the same launch through the engine (run_kernel) and the interpreted
// reference and assert bitwise-identical outputs (and argmax for max).
void check_parity(const KernelSpec& spec, KernelArgs args, uint32_t n,
                  int64_t F, const char* what) {
  ASSERT_TRUE(spec.specializable);
  std::vector<float> out_eng(static_cast<std::size_t>(n) * F, -2.0f);
  std::vector<float> out_ref(static_cast<std::size_t>(n) * F, -2.0f);
  std::vector<uint32_t> am_eng, am_ref;
  const bool max_fwd =
      spec.program.agg == AggKind::kMax && !spec.program.max_backward;
  if (max_fwd) {
    am_eng.assign(static_cast<std::size_t>(n) * F, 0xCCCCCCCCu);
    am_ref.assign(static_cast<std::size_t>(n) * F, 0xCCCCCCCCu);
  }

  args.out = out_eng.data();
  if (max_fwd) args.argmax_out = am_eng.data();
  run_kernel(spec, args);

  args.out = out_ref.data();
  if (max_fwd) args.argmax_out = am_ref.data();
  run_kernel_reference(spec, args);

  expect_bits_equal(out_eng, out_ref, what);
  if (max_fwd) {
    for (std::size_t i = 0; i < am_eng.size(); ++i)
      ASSERT_EQ(am_eng[i], am_ref[i])
          << what << " argmax diverges at " << i;
  }
}

constexpr int64_t kFeatureSizes[] = {1, 3, 8, 31, 32, 33, 127};

TEST(KernelSimdFuzz, SumAndMeanParity) {
  const CoefSet kSets[] = {
      {true, false, false, false, false},   // const
      {false, true, false, false, false},   // 1/deg
      {false, false, true, false, false},   // 1/(deg+1)
      {false, false, false, true, false},   // gcn
      {false, false, false, true, true},    // gcn * ew  (GCN with weights)
      {true, true, false, false, true},     // const * 1/deg * ew
  };
  int cfg = 0;
  for (int64_t F : kFeatureSizes) {
    // Alternate between a graph too small to fill the lanes (small-n
    // tiling path) and one that is not.
    const uint32_t n = (F % 2) ? 193 : 7;
    FuzzGraph fg(n, static_cast<std::size_t>(n) * 10, 1000 + F);
    Rng rng(2000 + F);
    const GappedCopy gap_fwd(fg.view.in_view, rng);
    const GappedCopy gap_bwd(fg.view.out_view, rng);
    const std::vector<float> x = fg.features(F, rng, /*specials=*/true);
    const float* inputs[1] = {x.data()};

    for (const CoefSet& cs : kSets) {
      for (AggKind agg : {AggKind::kSum, AggKind::kMean}) {
        for (bool fwd : {true, false}) {
          const bool self = (++cfg % 2) == 0;
          const bool scale = (cfg % 3) == 0;
          KernelSpec spec = compile(make_program(cs, agg, self, scale));

          KernelArgs base;
          base.in_degrees = fg.view.in_degrees;
          base.inputs = inputs;
          base.self_features = x.data();
          base.edge_weights = cs.ew ? fg.ew.data() : nullptr;
          base.num_feats = static_cast<uint32_t>(F);
          base.producer_is_col = fwd;
          const CsrView& compact =
              fwd ? fg.view.in_view : fg.view.out_view;
          const GappedCopy& gapped = fwd ? gap_fwd : gap_bwd;

          for (ViewShape shape :
               {ViewShape::kCompact, ViewShape::kGapped, ViewShape::kNoEids}) {
            KernelArgs a = base;
            switch (shape) {
              case ViewShape::kCompact:
                a.view = compact;
                a.gcn_coef = fg.view.gcn_coef;  // cache vs inline reference
                break;
              case ViewShape::kGapped:
                a.view = gapped.view_of(compact);
                a.gcn_coef = fg.view.gcn_coef;
                break;
              case ViewShape::kNoEids:
                // Positions stand in for labels; the engine must ignore the
                // eid-indexed cache even though one is bound.
                a.view = compact;
                a.view.eids = nullptr;
                a.gcn_coef = fg.view.gcn_coef;
                if (cs.ew) continue;  // weights would need eids
                break;
            }
            SCOPED_TRACE(::testing::Message()
                         << "F=" << F << " n=" << n << " agg=" << int(agg)
                         << " fwd=" << fwd << " shape=" << int(shape)
                         << " cfg=" << cfg);
            check_parity(spec, a, n, F, "sum/mean");
            if (HasFatalFailure()) return;
          }
        }
      }
    }
  }
}

TEST(KernelSimdFuzz, MaxForwardAndBackwardParity) {
  const CoefSet kSets[] = {
      {true, false, false, false, false},
      {false, false, false, true, false},
      {false, false, false, false, true},
      {false, false, false, true, true},
      {false, true, false, false, false},
  };
  int cfg = 0;
  for (int64_t F : kFeatureSizes) {
    const uint32_t n = (F % 2) ? 151 : 9;
    FuzzGraph fg(n, static_cast<std::size_t>(n) * 8, 3000 + F);
    Rng rng(4000 + F);
    const GappedCopy gap_bwd(fg.view.out_view, rng);
    const std::vector<float> x = fg.features(F, rng, /*specials=*/true);
    const std::vector<float> g = fg.features(F, rng, /*specials=*/false);

    for (const CoefSet& cs : kSets) {
      const bool self = (++cfg % 2) == 0;
      Program fwd_prog = optimize(make_program(cs, AggKind::kMax, self, true));
      KernelSpec fwd = compile(fwd_prog);
      KernelSpec bwd = compile(differentiate(fwd_prog, 0));
      ASSERT_TRUE(bwd.program.max_backward);

      // Forward parity (out + argmax, cached and inline gcn).
      std::vector<uint32_t> argmax(static_cast<std::size_t>(n) * F,
                                   0xCCCCCCCCu);
      {
        const float* inputs[1] = {x.data()};
        KernelArgs a;
        a.view = fg.view.in_view;
        a.in_degrees = fg.view.in_degrees;
        a.inputs = inputs;
        a.self_features = x.data();
        a.edge_weights = cs.ew ? fg.ew.data() : nullptr;
        a.gcn_coef = fg.view.gcn_coef;
        a.num_feats = static_cast<uint32_t>(F);
        a.producer_is_col = true;
        SCOPED_TRACE(::testing::Message() << "max fwd F=" << F << " cfg=" << cfg);
        check_parity(fwd, a, n, F, "max fwd");
        if (HasFatalFailure()) return;
        // Keep the reference argmax for the backward launch below.
        std::vector<float> out(static_cast<std::size_t>(n) * F);
        a.out = out.data();
        a.argmax_out = argmax.data();
        run_kernel_reference(fwd, a);
      }

      // Backward parity over compact and gapped producer views.
      for (bool gapped : {false, true}) {
        const float* inputs[1] = {g.data()};
        KernelArgs a;
        a.view = gapped ? gap_bwd.view_of(fg.view.out_view) : fg.view.out_view;
        a.in_degrees = fg.view.in_degrees;
        a.inputs = inputs;
        a.self_features = g.data();
        a.edge_weights = cs.ew ? fg.ew.data() : nullptr;
        a.gcn_coef = fg.view.gcn_coef;
        a.argmax_in = argmax.data();
        a.num_feats = static_cast<uint32_t>(F);
        a.producer_is_col = false;
        SCOPED_TRACE(::testing::Message()
                     << "max bwd F=" << F << " cfg=" << cfg
                     << " gapped=" << gapped);
        check_parity(bwd, a, n, F, "max bwd");
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(KernelSimdFuzz, MultiTermMultiInputParity) {
  for (int64_t F : {3LL, 32LL, 127LL}) {
    const uint32_t n = 61;
    FuzzGraph fg(n, 500, 500 + F);
    Rng rng(600 + F);
    const std::vector<float> x = fg.features(F, rng, true);
    const std::vector<float> y = fg.features(F, rng, true);
    KernelSpec spec = compile(trace([](VertexContext& v) -> AggExpr {
      MsgExpr msg = v.constant(2.0f) * v.src_feature(0) +
                    v.inv_degree_p1() * v.src_feature(1) +
                    v.gcn_norm() * v.edge_weight() * v.src_feature(0);
      return v.agg_sum(msg).with_self_loop(v.gcn_norm(), 1).scaled(0.25f);
    }));
    const float* inputs[2] = {x.data(), y.data()};
    KernelArgs a;
    a.view = fg.view.in_view;
    a.in_degrees = fg.view.in_degrees;
    a.inputs = inputs;
    a.self_features = y.data();
    a.edge_weights = fg.ew.data();
    a.gcn_coef = fg.view.gcn_coef;
    a.num_feats = static_cast<uint32_t>(F);
    a.producer_is_col = true;
    SCOPED_TRACE(::testing::Message() << "multi-term F=" << F);
    check_parity(spec, a, n, F, "multi-term");
    if (HasFatalFailure()) return;
  }
}

TEST(KernelSimdFuzz, CachedCoefBitIdenticalToInline) {
  // Same engine, cache bound vs not: the per-snapshot array must be
  // indistinguishable from the inline computation.
  const uint32_t n = 97;
  const int64_t F = 32;
  FuzzGraph fg(n, 900, 42);
  Rng rng(43);
  const std::vector<float> x = fg.features(F, rng, false);
  KernelSpec spec = compile(trace([](VertexContext& v) -> AggExpr {
    return v.agg_sum(v.gcn_norm() * v.src_feature(0))
        .with_self_loop(v.gcn_norm());
  }));
  const float* inputs[1] = {x.data()};
  std::vector<float> with_cache(n * F), inline_only(n * F);
  KernelArgs a;
  a.view = fg.view.in_view;
  a.in_degrees = fg.view.in_degrees;
  a.inputs = inputs;
  a.self_features = x.data();
  a.num_feats = static_cast<uint32_t>(F);
  a.producer_is_col = true;
  ASSERT_NE(fg.view.gcn_coef, nullptr);
  a.gcn_coef = fg.view.gcn_coef;
  a.out = with_cache.data();
  run_kernel(spec, a);
  a.gcn_coef = nullptr;
  a.out = inline_only.data();
  run_kernel(spec, a);
  expect_bits_equal(with_cache, inline_only, "cache-vs-inline");
}

// ---- per-snapshot cache maintenance on the dynamic graph ------------------

EdgeList random_stream(uint32_t nodes, std::size_t events, uint64_t seed) {
  Rng rng(seed);
  EdgeList stream;
  for (std::size_t i = 0; i < events; ++i)
    stream.emplace_back(static_cast<uint32_t>(rng.next_below(nodes)),
                        static_cast<uint32_t>(rng.next_below(nodes)));
  return stream;
}

// Every served coefficient must equal the from-scratch per-edge value.
void expect_cache_exact(const SnapshotView& v) {
  ASSERT_NE(v.gcn_coef, nullptr);
  const CsrView& in = v.in_view;
  for (uint32_t dst = 0; dst < in.num_nodes; ++dst) {
    for (uint32_t j = in.row_offset[dst]; j < in.row_offset[dst + 1]; ++j) {
      const uint32_t src = in.col_indices[j];
      const uint32_t eid = in.eids[j];
      const float want = gcn_norm_coef(v.in_degrees[src], v.in_degrees[dst]);
      uint32_t bg, bw;
      std::memcpy(&bg, &v.gcn_coef[eid], sizeof(bg));
      std::memcpy(&bw, &want, sizeof(bw));
      ASSERT_EQ(bg, bw) << "stale coef for edge " << src << "->" << dst
                        << " (eid " << eid << "): cached " << v.gcn_coef[eid]
                        << ", expected " << want;
    }
  }
}

TEST(CoefCache, GpmaDeltasInvalidateTheCache) {
  // Rolls small enough to take the incremental view path: inserts and
  // deletes must patch the coefficient array too, never serve stale norms.
  DtdgEvents ev = window_edge_stream(100, random_stream(100, 3000, 77), 0.03);
  GpmaGraph g(ev);
  const uint32_t T = ev.num_timestamps();
  ASSERT_GT(T, 4u);
  for (uint32_t t = 0; t < T; ++t) expect_cache_exact(g.get_graph(t));
  for (uint32_t t = T; t-- > 0;) expect_cache_exact(g.get_graph(t));
  // The whole point: the sweep must actually have exercised the patch.
  EXPECT_GT(g.incremental_view_updates(), 0u);
}

TEST(CoefCache, IncrementalPatchMatchesFullRebuildBitForBit) {
  DtdgEvents ev = window_edge_stream(90, random_stream(90, 2500, 31), 0.04);
  GpmaGraph inc(ev);
  GpmaGraph full(ev);
  full.set_incremental_views(false);
  const uint32_t T = ev.num_timestamps();
  for (uint32_t t = 0; t < T; ++t) {
    SnapshotView a = inc.get_graph(t);
    SnapshotView b = full.get_graph(t);
    ASSERT_EQ(a.num_edges, b.num_edges);
    ASSERT_NE(a.gcn_coef, nullptr);
    ASSERT_NE(b.gcn_coef, nullptr);
    EXPECT_EQ(std::memcmp(a.gcn_coef, b.gcn_coef,
                          a.num_edges * sizeof(float)),
              0)
        << "cache diverged from full rebuild at t=" << t;
  }
  EXPECT_GT(inc.incremental_view_updates(), 0u);
}

TEST(CoefCache, DisableServesNullAndReenableRebuilds) {
  DtdgEvents ev = window_edge_stream(60, random_stream(60, 1200, 5), 0.05);
  GpmaGraph g(ev);
  const uint32_t T = ev.num_timestamps();
  expect_cache_exact(g.get_graph(0));
  g.set_coef_cache_enabled(false);
  EXPECT_EQ(g.get_graph(0).gcn_coef, nullptr);
  EXPECT_EQ(g.get_graph(T - 1).gcn_coef, nullptr);  // rolls stay null
  g.set_coef_cache_enabled(true);
  expect_cache_exact(g.get_graph(T - 1));
  expect_cache_exact(g.get_graph(0));
}

TEST(CoefCache, StaticAndNaiveViewsServeExactCaches) {
  FuzzGraph fg(50, 400, 9);
  expect_cache_exact(fg.view);
}

}  // namespace
}  // namespace stgraph
